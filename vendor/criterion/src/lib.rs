//! Offline stand-in for the `criterion` benchmark harness.
//!
//! The PrIU workspace builds in environments without network access, so the
//! real crates-io `criterion` cannot be fetched. This vendored shim exposes
//! the (small) API subset the workspace's benches use — benchmark groups,
//! parameterised ids, `Bencher::iter`, `black_box` and the `criterion_group!`
//! / `criterion_main!` macros — and implements it with a plain
//! warmup-then-measure loop that prints mean / min wall-clock times per
//! benchmark. Swap the `[patch]`-style path dependency for the real crate to
//! get statistics, plots and regression detection.

pub use std::hint::black_box;

use std::fmt::Display;
use std::sync::OnceLock;
use std::time::{Duration, Instant};

/// The substring filter passed on the command line (the first non-flag
/// argument, mirroring criterion's positional filter): benchmarks whose
/// full `group/id` label does not contain it are skipped. `cargo bench --
/// <filter>` forwards it here; cargo's own `--bench` flag is ignored.
fn filter() -> Option<&'static str> {
    static FILTER: OnceLock<Option<String>> = OnceLock::new();
    FILTER
        .get_or_init(|| std::env::args().skip(1).find(|arg| !arg.starts_with('-')))
        .as_deref()
}

/// Top-level handle passed to every bench function.
#[derive(Debug, Default)]
pub struct Criterion {
    _private: (),
}

impl Criterion {
    /// Starts a named group of related benchmarks.
    pub fn benchmark_group(&mut self, name: impl Into<String>) -> BenchmarkGroup {
        let name = name.into();
        println!("\n== bench group: {name} ==");
        BenchmarkGroup {
            name,
            sample_size: 10,
            warm_up_time: Duration::from_millis(300),
            measurement_time: Duration::from_secs(2),
        }
    }

    /// Runs a standalone benchmark outside any group.
    pub fn bench_function<F>(&mut self, id: &str, f: F) -> &mut Self
    where
        F: FnMut(&mut Bencher),
    {
        let mut group = self.benchmark_group(id);
        group.bench_function("", f);
        group.finish();
        self
    }
}

/// A parameterised benchmark identifier, rendered as `name/parameter`.
#[derive(Debug, Clone)]
pub struct BenchmarkId {
    full: String,
}

impl BenchmarkId {
    /// An id with a function name and a parameter value.
    pub fn new(name: impl Into<String>, parameter: impl Display) -> Self {
        Self {
            full: format!("{}/{}", name.into(), parameter),
        }
    }

    /// An id consisting of the parameter value only.
    pub fn from_parameter(parameter: impl Display) -> Self {
        Self {
            full: parameter.to_string(),
        }
    }
}

impl Display for BenchmarkId {
    fn fmt(&self, f: &mut std::fmt::Formatter<'_>) -> std::fmt::Result {
        f.write_str(&self.full)
    }
}

/// A group of benchmarks sharing measurement settings.
#[derive(Debug)]
pub struct BenchmarkGroup {
    name: String,
    sample_size: usize,
    warm_up_time: Duration,
    measurement_time: Duration,
}

impl BenchmarkGroup {
    /// Sets the number of measured samples.
    pub fn sample_size(&mut self, n: usize) -> &mut Self {
        self.sample_size = n.max(1);
        self
    }

    /// Sets the warm-up duration.
    pub fn warm_up_time(&mut self, d: Duration) -> &mut Self {
        self.warm_up_time = d;
        self
    }

    /// Sets the measurement duration budget.
    pub fn measurement_time(&mut self, d: Duration) -> &mut Self {
        self.measurement_time = d;
        self
    }

    /// Benchmarks a closure with an explicit input value.
    pub fn bench_with_input<I: ?Sized, F>(
        &mut self,
        id: BenchmarkId,
        input: &I,
        mut f: F,
    ) -> &mut Self
    where
        F: FnMut(&mut Bencher, &I),
    {
        self.run(&id.to_string(), |b| f(b, input));
        self
    }

    /// Benchmarks a closure without a parameter.
    pub fn bench_function<F>(&mut self, id: impl Display, mut f: F) -> &mut Self
    where
        F: FnMut(&mut Bencher),
    {
        self.run(&id.to_string(), |b| f(b));
        self
    }

    /// Ends the group (a no-op in the shim; kept for API compatibility).
    pub fn finish(self) {}

    fn run(&mut self, id: &str, mut f: impl FnMut(&mut Bencher)) {
        if let Some(filter) = filter() {
            let label = if id.is_empty() {
                self.name.clone()
            } else {
                format!("{}/{}", self.name, id)
            };
            if !label.contains(filter) {
                return;
            }
        }
        let mut bencher = Bencher {
            mode: Mode::WarmUp {
                until: Instant::now() + self.warm_up_time,
            },
        };
        f(&mut bencher);
        bencher.mode = Mode::Measure {
            budget: self.measurement_time,
            sample_size: self.sample_size,
            samples: Vec::new(),
        };
        f(&mut bencher);
        if let Mode::Measure { samples, .. } = &bencher.mode {
            if samples.is_empty() {
                return;
            }
            let mean = samples.iter().sum::<f64>() / samples.len() as f64;
            let min = samples.iter().cloned().fold(f64::INFINITY, f64::min);
            let label = if id.is_empty() {
                self.name.clone()
            } else {
                format!("{}/{}", self.name, id)
            };
            println!(
                "{label:<60} mean {:>12}  min {:>12}  ({} samples)",
                fmt_time(mean),
                fmt_time(min),
                samples.len()
            );
        }
    }
}

#[derive(Debug)]
enum Mode {
    WarmUp {
        until: Instant,
    },
    Measure {
        budget: Duration,
        sample_size: usize,
        samples: Vec<f64>,
    },
}

/// Drives the timed iterations of one benchmark.
#[derive(Debug)]
pub struct Bencher {
    mode: Mode,
}

impl Bencher {
    /// Runs the routine repeatedly, timing each sample.
    pub fn iter<O, R: FnMut() -> O>(&mut self, mut routine: R) {
        match &mut self.mode {
            Mode::WarmUp { until } => {
                let until = *until;
                loop {
                    black_box(routine());
                    if Instant::now() >= until {
                        break;
                    }
                }
            }
            Mode::Measure {
                budget,
                sample_size,
                samples,
            } => {
                let deadline = Instant::now() + *budget;
                for _ in 0..*sample_size {
                    let start = Instant::now();
                    black_box(routine());
                    samples.push(start.elapsed().as_secs_f64());
                    if Instant::now() >= deadline {
                        break;
                    }
                }
            }
        }
    }
}

fn fmt_time(seconds: f64) -> String {
    if seconds < 1e-6 {
        format!("{:.1}ns", seconds * 1e9)
    } else if seconds < 1e-3 {
        format!("{:.2}us", seconds * 1e6)
    } else if seconds < 1.0 {
        format!("{:.2}ms", seconds * 1e3)
    } else {
        format!("{seconds:.3}s")
    }
}

/// Declares a benchmark group function, mirroring criterion's macro.
#[macro_export]
macro_rules! criterion_group {
    ($group:ident, $($target:path),+ $(,)?) => {
        pub fn $group() {
            let mut criterion = $crate::Criterion::default();
            $( $target(&mut criterion); )+
        }
    };
}

/// Declares the benchmark entry point, mirroring criterion's macro.
#[macro_export]
macro_rules! criterion_main {
    ($($group:path),+ $(,)?) => {
        fn main() {
            $( $group(); )+
        }
    };
}

#[cfg(test)]
mod tests {
    use super::*;

    #[test]
    fn bench_ids_render_like_criterion() {
        assert_eq!(
            BenchmarkId::new("matvec", "200x54").to_string(),
            "matvec/200x54"
        );
        assert_eq!(BenchmarkId::from_parameter(42).to_string(), "42");
    }

    #[test]
    fn groups_measure_and_do_not_panic() {
        let mut c = Criterion::default();
        let mut group = c.benchmark_group("shim");
        group.sample_size(3);
        group.warm_up_time(Duration::from_millis(1));
        group.measurement_time(Duration::from_millis(10));
        let mut runs = 0usize;
        group.bench_function("noop", |b| b.iter(|| runs += 1));
        group.finish();
        assert!(runs > 0);
    }

    #[test]
    fn time_formatting_adapts() {
        assert!(fmt_time(5e-9).ends_with("ns"));
        assert!(fmt_time(5e-6).ends_with("us"));
        assert!(fmt_time(5e-3).ends_with("ms"));
        assert!(fmt_time(5.0).ends_with('s'));
    }
}
