//! Cross-crate consistency: the optimized PrIU path (cached contributions),
//! the provenance-annotated reference implementation (explicit token
//! zeroing-out), and retraining from scratch must all tell the same story.

use priu::core::baseline::retrain::retrain_linear;
use priu::core::reference::AnnotatedLinearGd;
use priu::core::trainer::linear::train_linear;
use priu::core::update::priu_linear::priu_update_linear;
use priu::core::TrainerConfig;
use priu::data::catalog::Hyperparameters;
use priu::data::synthetic::regression::{generate_regression, RegressionConfig};
use priu::provenance::Valuation;

fn tiny_dataset() -> priu::data::dataset::DenseDataset {
    generate_regression(&RegressionConfig {
        num_samples: 24,
        num_features: 4,
        noise_std: 0.05,
        seed: 123,
        ..Default::default()
    })
}

/// Full-batch gradient descent expressed three ways: (a) the provenance-
/// annotated reference with zeroed-out tokens, (b) PrIU over a full-batch
/// schedule, (c) plain retraining over the survivors. All three must agree
/// to within floating-point noise for linear regression, where no
/// linearisation is involved.
#[test]
fn annotated_reference_priu_and_retraining_agree_on_full_batch_gd() {
    let data = tiny_dataset();
    let eta = 0.04;
    let lambda = 0.02;
    let iterations = 120;
    let removed = vec![2usize, 5, 13, 17];

    // (a) Annotated reference.
    let reference = AnnotatedLinearGd::build(&data, eta, lambda, iterations).unwrap();
    let annotated = reference.update_after_deletion(&removed).unwrap();

    // (b)/(c) PrIU and BaseL over a full-batch (GD) schedule.
    let config = TrainerConfig::from_hyper(Hyperparameters {
        batch_size: data.num_samples(),
        num_iterations: iterations,
        learning_rate: eta,
        regularization: lambda,
    })
    .with_opt_capture(false);
    let trained = train_linear(&data, &config).unwrap();
    let priu = priu_update_linear(&data, &trained.provenance, &removed).unwrap();
    let retrained = retrain_linear(&data, &trained.provenance, &removed).unwrap();

    let ab = (&annotated.flatten() - &priu.flatten()).norm_inf();
    let ac = (&annotated.flatten() - &retrained.flatten()).norm_inf();
    assert!(ab < 1e-9, "annotated vs PrIU differ by {ab}");
    assert!(ac < 1e-9, "annotated vs retrained differ by {ac}");
}

/// Deleting via a `Valuation` (token-level) and via sample indices must be
/// the same operation.
#[test]
fn valuation_deletion_equals_index_deletion() {
    let data = tiny_dataset();
    let reference = AnnotatedLinearGd::build(&data, 0.05, 0.01, 50).unwrap();
    let by_index = reference.update_after_deletion(&[1, 6]).unwrap();
    let valuation = Valuation::deleting([reference.tokens()[1], reference.tokens()[6]]);
    let by_valuation = reference.model_for_valuation(&valuation).unwrap();
    assert_eq!(by_index, by_valuation);
}

/// Deletions compose: removing R1 ∪ R2 in one go equals building the
/// valuation incrementally.
#[test]
fn deletions_compose_across_valuations() {
    let data = tiny_dataset();
    let reference = AnnotatedLinearGd::build(&data, 0.05, 0.01, 50).unwrap();
    let together = reference.update_after_deletion(&[0, 3, 9, 20]).unwrap();
    let mut valuation = Valuation::all_present();
    for &i in &[0usize, 3, 9, 20] {
        valuation.delete(reference.tokens()[i]);
    }
    let stepwise = reference.model_for_valuation(&valuation).unwrap();
    assert_eq!(together, stepwise);
}
