//! End-to-end integration tests of the public facade: the data-cleaning
//! pipeline (train on dirty data → remove the dirty samples → incrementally
//! update) across all model families, driven exclusively through the
//! `DeletionEngine` API, plus the chained-deletion scenario.

use priu::core::metrics::{
    classification_accuracy, compare_models, mean_squared_error, sparse_classification_accuracy,
};
use priu::core::prelude::*;
use priu::data::prelude::*;

#[test]
fn linear_regression_cleaning_pipeline_recovers_model_quality() {
    let mut spec = DatasetCatalog::sgemm_original().scaled(0.05);
    spec.hyper.num_iterations = 250;
    spec.hyper.learning_rate = 0.01;
    let dense = spec.generate().as_dense().unwrap().clone();
    let split = dense.split(0.9, 1);

    let injection = inject_dirty_samples(&split.train, 0.05, 3.0, 2);
    let session = SessionBuilder::dense(
        injection.dirty_dataset.clone(),
        TrainerConfig::from_hyper(spec.hyper),
    )
    .seed(3)
    .fit()
    .unwrap();

    let dirty_mse = mean_squared_error(session.model(), &split.validation).unwrap();
    let report = session.run_all(&injection.dirty_indices).unwrap();
    let basel = report.get(Method::Retrain).unwrap();
    let priu = report.get(Method::Priu).unwrap();
    let priu_opt = report.get(Method::PriuOpt).unwrap();

    let basel_mse = mean_squared_error(&basel.model, &split.validation).unwrap();
    let priu_mse = mean_squared_error(&priu.model, &split.validation).unwrap();
    let opt_mse = mean_squared_error(&priu_opt.model, &split.validation).unwrap();

    // Cleaning helps, and the incremental updates recover (essentially) the
    // retrained model's quality — the paper's Q3.
    assert!(basel_mse < dirty_mse, "cleaning should reduce MSE");
    assert!((priu_mse - basel_mse).abs() < 0.1 * basel_mse.max(0.01));
    assert!(opt_mse < dirty_mse);

    let cmp = compare_models(&basel.model, &priu.model).unwrap();
    assert!(cmp.cosine_similarity > 0.999);

    // The outcome carries its own context.
    assert_eq!(priu.method, Method::Priu);
    assert_eq!(priu.num_removed, injection.dirty_indices.len());
}

#[test]
fn binary_logistic_cleaning_pipeline_matches_retraining() {
    let mut spec = DatasetCatalog::higgs().scaled(0.01);
    spec.hyper.num_iterations = 200;
    spec.hyper.batch_size = 100;
    let dense = spec.generate().as_dense().unwrap().clone();
    let split = dense.split(0.9, 5);

    let injection = inject_dirty_samples(&split.train, 0.05, 10.0, 6);
    let session = SessionBuilder::dense(
        injection.dirty_dataset.clone(),
        TrainerConfig::from_hyper(spec.hyper),
    )
    .seed(7)
    .fit()
    .unwrap();

    let removed = &injection.dirty_indices;
    let basel = session.update(Method::Retrain, removed).unwrap();
    let priu = session.update(Method::Priu, removed).unwrap();
    let opt = session.update(Method::PriuOpt, removed).unwrap();
    let infl = session.update(Method::Influence, removed).unwrap();

    let basel_acc = classification_accuracy(&basel.model, &split.validation).unwrap();
    let priu_acc = classification_accuracy(&priu.model, &split.validation).unwrap();
    assert!((basel_acc - priu_acc).abs() < 0.05);

    let priu_cmp = compare_models(&basel.model, &priu.model).unwrap();
    let opt_cmp = compare_models(&basel.model, &opt.model).unwrap();
    let infl_cmp = compare_models(&basel.model, &infl.model).unwrap();
    assert!(priu_cmp.cosine_similarity > 0.99);
    assert!(opt_cmp.cosine_similarity > 0.97);
    // PrIU tracks the retrained parameters at least as well as INFL.
    assert!(priu_cmp.l2_distance <= infl_cmp.l2_distance + 1e-9);

    // Closed-form is discoverably linear-only rather than silently missing.
    assert!(!session.supports(Method::ClosedForm));
    assert!(matches!(
        session.update(Method::ClosedForm, removed),
        Err(CoreError::UnsupportedMethod { .. })
    ));
}

#[test]
fn multinomial_cleaning_pipeline_matches_retraining() {
    let mut spec = DatasetCatalog::cov_small().scaled(0.01);
    spec.hyper.num_iterations = 120;
    let dense = spec.generate().as_dense().unwrap().clone();
    let split = dense.split(0.9, 9);

    let injection = inject_dirty_samples(&split.train, 0.05, 10.0, 10);
    let session = SessionBuilder::dense(
        injection.dirty_dataset.clone(),
        TrainerConfig::from_hyper(spec.hyper),
    )
    .seed(11)
    .fit()
    .unwrap();

    let removed = &injection.dirty_indices;
    let basel = session.update(Method::Retrain, removed).unwrap();
    let priu = session.update(Method::Priu, removed).unwrap();
    let cmp = compare_models(&basel.model, &priu.model).unwrap();
    assert!(
        cmp.cosine_similarity > 0.99,
        "similarity {}",
        cmp.cosine_similarity
    );
    // Only a handful of near-zero coordinates may flip sign (the paper's Q4
    // analysis sees 2 flips out of 58 coordinates at a 20% deletion rate).
    assert!(
        cmp.drift.sign_flips <= basel.model.num_parameters() / 50,
        "{} sign flips",
        cmp.drift.sign_flips
    );
    assert!(session.provenance_bytes() > 0);
}

#[test]
fn sparse_pipeline_runs_and_matches_retraining() {
    let mut spec = DatasetCatalog::rcv1();
    spec.num_samples = 400;
    spec.num_features = 800;
    spec.hyper.num_iterations = 80;
    let sparse = spec.generate().as_sparse().unwrap().clone();

    let session = SessionBuilder::sparse(sparse, TrainerConfig::from_hyper(spec.hyper))
        .seed(13)
        .fit()
        .unwrap();
    let removed = random_subsets(400, 0.02, 1, 14)[0].clone();
    let basel = session.update(Method::Retrain, &removed).unwrap();
    let priu = session.update(Method::Priu, &removed).unwrap();
    let cmp = compare_models(&basel.model, &priu.model).unwrap();
    assert!(cmp.cosine_similarity > 0.995);
    let acc = sparse_classification_accuracy(
        &priu.model,
        session.sparse_dataset().expect("sparse session"),
    )
    .unwrap();
    assert!(acc > 0.6, "accuracy {acc}");
    assert_eq!(
        session.supported_methods(),
        vec![Method::Retrain, Method::Priu]
    );
}

#[test]
fn repeated_subset_probes_are_deterministic_and_fast() {
    let mut spec = DatasetCatalog::higgs().scaled(0.005);
    spec.hyper.num_iterations = 100;
    spec.hyper.batch_size = 64;
    let dense = spec.generate().as_dense().unwrap().clone();
    let session = SessionBuilder::dense(dense.clone(), TrainerConfig::from_hyper(spec.hyper))
        .seed(21)
        .fit()
        .unwrap();

    let subsets = random_subsets(dense.num_samples(), 0.01, 3, 22);
    let mut updated = Vec::new();
    for subset in &subsets {
        updated.push(session.update(Method::PriuOpt, subset).unwrap().model);
    }
    // Re-running the same probes yields identical models.
    for (subset, model) in subsets.iter().zip(&updated) {
        assert_eq!(
            &session.update(Method::PriuOpt, subset).unwrap().model,
            model
        );
    }
    // Different subsets yield different models.
    assert_ne!(updated[0], updated[1]);
}

#[test]
fn chained_deletions_compose_to_one_retraining_on_the_union() {
    // The Fig. 4 scenario as a first-class API: deletion requests arrive one
    // after another, each consumed into a successor session. The end state
    // must match a single retraining pass on the union of the removals.
    let mut spec = DatasetCatalog::higgs().scaled(0.008);
    spec.hyper.num_iterations = 120;
    spec.hyper.batch_size = 64;
    let dense = spec.generate().as_dense().unwrap().clone();
    let n = dense.num_samples();
    let session = SessionBuilder::dense(dense, TrainerConfig::from_hyper(spec.hyper))
        .seed(29)
        .fit()
        .unwrap();

    let first = random_subsets(n, 0.01, 1, 30)[0].clone();
    let step1 = session.apply(Method::Priu, &first).unwrap();
    assert_eq!(step1.session.num_samples(), n - first.len());

    let second_local = random_subsets(step1.session.num_samples(), 0.01, 1, 31)[0].clone();
    let step2 = step1.session.apply(Method::Priu, &second_local).unwrap();

    // Map the second (survivor-relative) removal back to original indices.
    let survivors: Vec<usize> = (0..n).filter(|i| !first.contains(i)).collect();
    let mut union = first.clone();
    union.extend(second_local.iter().map(|&i| survivors[i]));

    let retrained = session.update(Method::Retrain, &union).unwrap();
    let cmp = compare_models(&retrained.model, step2.session.model()).unwrap();
    assert!(
        cmp.cosine_similarity > 0.99,
        "two chained applies vs one retrain on the union: similarity {}",
        cmp.cosine_similarity
    );
    assert_eq!(step2.session.num_samples(), n - union.len());
}
