//! End-to-end integration tests of the public facade: the data-cleaning
//! pipeline (train on dirty data → remove the dirty samples → incrementally
//! update) across all model families.

use priu::core::metrics::{
    classification_accuracy, compare_models, mean_squared_error, sparse_classification_accuracy,
};
use priu::core::prelude::*;
use priu::data::prelude::*;

#[test]
fn linear_regression_cleaning_pipeline_recovers_model_quality() {
    let mut spec = DatasetCatalog::sgemm_original().scaled(0.05);
    spec.hyper.num_iterations = 250;
    spec.hyper.learning_rate = 0.01;
    let dense = spec.generate().as_dense().unwrap().clone();
    let split = dense.split(0.9, 1);

    let injection = inject_dirty_samples(&split.train, 0.05, 3.0, 2);
    let config = TrainerConfig::from_hyper(spec.hyper).with_seed(3);
    let session = LinearSession::fit(injection.dirty_dataset.clone(), config).unwrap();

    let dirty_mse = mean_squared_error(session.initial_model(), &split.validation).unwrap();
    let basel = session.retrain(&injection.dirty_indices).unwrap();
    let priu = session.priu(&injection.dirty_indices).unwrap();
    let priu_opt = session.priu_opt(&injection.dirty_indices).unwrap();

    let basel_mse = mean_squared_error(&basel.model, &split.validation).unwrap();
    let priu_mse = mean_squared_error(&priu.model, &split.validation).unwrap();
    let opt_mse = mean_squared_error(&priu_opt.model, &split.validation).unwrap();

    // Cleaning helps, and the incremental updates recover (essentially) the
    // retrained model's quality — the paper's Q3.
    assert!(basel_mse < dirty_mse, "cleaning should reduce MSE");
    assert!((priu_mse - basel_mse).abs() < 0.1 * basel_mse.max(0.01));
    assert!(opt_mse < dirty_mse);

    let cmp = compare_models(&basel.model, &priu.model).unwrap();
    assert!(cmp.cosine_similarity > 0.999);
}

#[test]
fn binary_logistic_cleaning_pipeline_matches_retraining() {
    let mut spec = DatasetCatalog::higgs().scaled(0.01);
    spec.hyper.num_iterations = 200;
    spec.hyper.batch_size = 100;
    let dense = spec.generate().as_dense().unwrap().clone();
    let split = dense.split(0.9, 5);

    let injection = inject_dirty_samples(&split.train, 0.05, 10.0, 6);
    let config = TrainerConfig::from_hyper(spec.hyper).with_seed(7);
    let session = BinaryLogisticSession::fit(injection.dirty_dataset.clone(), config).unwrap();

    let removed = &injection.dirty_indices;
    let basel = session.retrain(removed).unwrap();
    let priu = session.priu(removed).unwrap();
    let opt = session.priu_opt(removed).unwrap();
    let infl = session.influence(removed).unwrap();

    let basel_acc = classification_accuracy(&basel.model, &split.validation).unwrap();
    let priu_acc = classification_accuracy(&priu.model, &split.validation).unwrap();
    assert!((basel_acc - priu_acc).abs() < 0.05);

    let priu_cmp = compare_models(&basel.model, &priu.model).unwrap();
    let opt_cmp = compare_models(&basel.model, &opt.model).unwrap();
    let infl_cmp = compare_models(&basel.model, &infl.model).unwrap();
    assert!(priu_cmp.cosine_similarity > 0.99);
    assert!(opt_cmp.cosine_similarity > 0.97);
    // PrIU tracks the retrained parameters at least as well as INFL.
    assert!(priu_cmp.l2_distance <= infl_cmp.l2_distance + 1e-9);
}

#[test]
fn multinomial_cleaning_pipeline_matches_retraining() {
    let mut spec = DatasetCatalog::cov_small().scaled(0.01);
    spec.hyper.num_iterations = 120;
    let dense = spec.generate().as_dense().unwrap().clone();
    let split = dense.split(0.9, 9);

    let injection = inject_dirty_samples(&split.train, 0.05, 10.0, 10);
    let config = TrainerConfig::from_hyper(spec.hyper).with_seed(11);
    let session = MultinomialSession::fit(injection.dirty_dataset.clone(), config).unwrap();

    let removed = &injection.dirty_indices;
    let basel = session.retrain(removed).unwrap();
    let priu = session.priu(removed).unwrap();
    let cmp = compare_models(&basel.model, &priu.model).unwrap();
    assert!(cmp.cosine_similarity > 0.99, "similarity {}", cmp.cosine_similarity);
    // Only a handful of near-zero coordinates may flip sign (the paper's Q4
    // analysis sees 2 flips out of 58 coordinates at a 20% deletion rate).
    assert!(
        cmp.drift.sign_flips <= basel.model.num_parameters() / 50,
        "{} sign flips",
        cmp.drift.sign_flips
    );
    assert!(session.provenance_bytes() > 0);
}

#[test]
fn sparse_pipeline_runs_and_matches_retraining() {
    let mut spec = DatasetCatalog::rcv1();
    spec.num_samples = 400;
    spec.num_features = 800;
    spec.hyper.num_iterations = 80;
    let sparse = spec.generate().as_sparse().unwrap().clone();

    let config = TrainerConfig::from_hyper(spec.hyper).with_seed(13);
    let session = SparseLogisticSession::fit(sparse, config).unwrap();
    let removed = random_subsets(400, 0.02, 1, 14)[0].clone();
    let basel = session.retrain(&removed).unwrap();
    let priu = session.priu(&removed).unwrap();
    let cmp = compare_models(&basel.model, &priu.model).unwrap();
    assert!(cmp.cosine_similarity > 0.995);
    let acc = sparse_classification_accuracy(&priu.model, session.dataset()).unwrap();
    assert!(acc > 0.6, "accuracy {acc}");
}

#[test]
fn repeated_subset_probes_are_deterministic_and_fast() {
    let mut spec = DatasetCatalog::higgs().scaled(0.005);
    spec.hyper.num_iterations = 100;
    spec.hyper.batch_size = 64;
    let dense = spec.generate().as_dense().unwrap().clone();
    let config = TrainerConfig::from_hyper(spec.hyper).with_seed(21);
    let session = BinaryLogisticSession::fit(dense.clone(), config).unwrap();

    let subsets = random_subsets(dense.num_samples(), 0.01, 3, 22);
    let mut updated = Vec::new();
    for subset in &subsets {
        updated.push(session.priu_opt(subset).unwrap().model);
    }
    // Re-running the same probes yields identical models.
    for (subset, model) in subsets.iter().zip(&updated) {
        assert_eq!(&session.priu_opt(subset).unwrap().model, model);
    }
    // Different subsets yield different models.
    assert_ne!(updated[0], updated[1]);
}
