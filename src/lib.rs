//! # priu — Provenance-based Incremental Updates of regression models
//!
//! Facade crate for the PrIU reproduction (Wu, Tannen, Davidson,
//! *"PrIU: A Provenance-Based Approach for Incrementally Updating Regression
//! Models"*, SIGMOD 2020). It re-exports the public API of the workspace
//! crates so downstream users need a single dependency:
//!
//! * [`linalg`] — dense/sparse linear algebra substrate,
//! * [`provenance`] — the provenance-semiring framework and annotated
//!   matrices,
//! * [`data`] — synthetic dataset generators, dirty-data injection, and
//!   deterministic mini-batch schedules,
//! * [`core`] — the PrIU / PrIU-opt incremental-update algorithms, the
//!   baselines (retraining, closed-form, influence functions), the
//!   evaluation metrics, and the unified `engine` API
//!   (`SessionBuilder` / `DeletionEngine` / `Method`) every session kind is
//!   programmed through — including chained deletions via `apply`.
//!
//! See `examples/quickstart.rs` for a five-minute tour and `DESIGN.md` /
//! `EXPERIMENTS.md` for the experiment-by-experiment reproduction notes.

pub use priu_core as core;
pub use priu_data as data;
pub use priu_linalg as linalg;
pub use priu_provenance as provenance;

/// Convenience prelude bringing the most commonly used types into scope.
pub mod prelude {
    pub use priu_core::prelude::*;
    pub use priu_data::prelude::*;
    pub use priu_linalg::{Matrix, Vector};
    pub use priu_provenance::{Polynomial, Token, Valuation};
}
