//! Data-cleaning scenario (the paper's first experiment set): a binary
//! classifier is trained on a dataset that contains corrupted samples; once
//! the dirty samples are identified they are removed and the model is
//! brought up to date — either by retraining (BaseL), incrementally with
//! PrIU-opt, or with the influence-function shortcut (INFL), all through the
//! uniform `DeletionEngine` API.
//!
//! Run with: `cargo run --release --example data_cleaning`

use priu::core::metrics::{classification_accuracy, compare_models};
use priu::core::prelude::*;
use priu::data::prelude::*;

fn main() {
    // A HIGGS-like binary classification task.
    let spec = DatasetCatalog::higgs().scaled(0.05);
    let dataset = spec.generate();
    let dense = dataset.as_dense().expect("HIGGS analogue is dense");
    let split = dense.split(0.9, 11);

    // Corrupt 5% of the training samples by rescaling their features — the
    // cleaning pipeline upstream of PrIU is assumed to have flagged them.
    let injection = inject_dirty_samples(&split.train, 0.05, 10.0, 17);
    println!(
        "training on {} samples of which {} are corrupted",
        injection.dirty_dataset.num_samples(),
        injection.dirty_indices.len()
    );

    let session = SessionBuilder::dense(
        injection.dirty_dataset.clone(),
        TrainerConfig::from_hyper(spec.hyper),
    )
    .seed(5)
    .fit()
    .expect("training should converge");
    let dirty_accuracy =
        classification_accuracy(session.model(), &split.validation).expect("accuracy");
    println!("validation accuracy of the model trained on dirty data: {dirty_accuracy:.4}");

    // Remove the dirty samples with each method.
    let removed = &injection.dirty_indices;
    let basel = session.update(Method::Retrain, removed).expect("BaseL");
    let priu_opt = session.update(Method::PriuOpt, removed).expect("PrIU-opt");
    let infl = session.update(Method::Influence, removed).expect("INFL");

    println!("\nafter removing the corrupted samples:");
    for outcome in [&basel, &priu_opt, &infl] {
        let acc = classification_accuracy(&outcome.model, &split.validation).expect("accuracy");
        let cmp = compare_models(&basel.model, &outcome.model).expect("same shape");
        println!(
            "  {:<9} update time {:>10.3?}  validation accuracy {acc:.4}  L2 distance to BaseL {:.4}  similarity {:.4}",
            outcome.method.name(),
            outcome.duration,
            cmp.l2_distance,
            cmp.cosine_similarity
        );
    }
    println!(
        "\nPrIU-opt speed-up over retraining: {:.1}x",
        basel.duration.as_secs_f64() / priu_opt.duration.as_secs_f64().max(1e-12)
    );
}
