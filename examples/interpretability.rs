//! Interpretability scenario (the paper's second experiment set): repeatedly
//! remove different subsets of the training data and observe how much the
//! model changes — the "influence of a group of samples" question that
//! motivates fast incremental updates, because every probe would otherwise be
//! a full retraining run.
//!
//! Here we train a multinomial classifier on a Covtype-like dataset and ask:
//! *which class's training samples does the model depend on the most?* Each
//! probe removes a slice of one class's samples and measures the parameter
//! drift via `update(Method::PriuOpt, ..)`.
//!
//! Run with: `cargo run --release --example interpretability`

use std::time::Duration;

use priu::core::metrics::compare_models;
use priu::core::prelude::*;
use priu::data::prelude::*;

fn main() {
    let spec = DatasetCatalog::cov_small().scaled(0.08);
    let dataset = spec.generate();
    let dense = dataset.as_dense().expect("Cov analogue is dense");
    let split = dense.split(0.9, 23);
    let train = split.train;
    let (classes, num_classes) = match &train.labels {
        Labels::Multiclass {
            classes,
            num_classes,
        } => (classes.clone(), *num_classes),
        _ => unreachable!("Cov analogue is multiclass"),
    };

    let session = SessionBuilder::dense(train.clone(), TrainerConfig::from_hyper(spec.hyper))
        .seed(31)
        .fit()
        .expect("training should converge");
    println!(
        "trained a {}-class model on {} samples in {:?}",
        num_classes,
        train.num_samples(),
        session.training_time()
    );

    // Probe: for every class, remove half of that class's training samples
    // and measure how far the model moves. One retraining-free update per
    // probe — this is where incremental updates pay off the most.
    let mut total_update_time = Duration::ZERO;
    let mut drifts: Vec<(usize, f64)> = Vec::new();
    for class in 0..num_classes {
        let members: Vec<usize> = (0..train.num_samples())
            .filter(|&i| classes[i] as usize == class)
            .collect();
        let removed: Vec<usize> = members.iter().step_by(2).copied().collect();
        if removed.is_empty() {
            continue;
        }
        let outcome = session
            .update(Method::PriuOpt, &removed)
            .expect("PrIU-opt update");
        total_update_time += outcome.duration;
        let cmp = compare_models(session.model(), &outcome.model).expect("same model shape");
        drifts.push((class, cmp.l2_distance));
        println!(
            "  removing {:>4} samples of class {class}: parameter drift {:.4} (update took {:?})",
            outcome.num_removed, cmp.l2_distance, outcome.duration
        );
    }

    drifts.sort_by(|a, b| b.1.partial_cmp(&a.1).expect("finite drifts"));
    println!(
        "\nmost influential class: {} (drift {:.4}); least influential: {} (drift {:.4})",
        drifts.first().expect("probes ran").0,
        drifts.first().expect("probes ran").1,
        drifts.last().expect("probes ran").0,
        drifts.last().expect("probes ran").1,
    );

    // For scale: answering the same probes by retraining would cost one full
    // retraining pass per probe.
    let one_retrain = session.update(Method::Retrain, &[0]).expect("BaseL probe");
    println!(
        "\nall {} incremental probes together took {:?}; retraining for every probe would take about {:?}",
        drifts.len(),
        total_update_time,
        one_retrain.duration * drifts.len() as u32
    );
}
