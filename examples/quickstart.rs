//! Quickstart: train a linear-regression model with provenance capture,
//! delete a slice of the training data, and update the model incrementally
//! with PrIU / PrIU-opt instead of retraining.
//!
//! Run with: `cargo run --release --example quickstart`

use priu::core::metrics::{compare_models, mean_squared_error};
use priu::core::prelude::*;
use priu::data::prelude::*;

fn main() {
    // 1. A synthetic stand-in for the UCI SGEMM regression dataset
    //    (see DESIGN.md §3 for the substitution rationale).
    let spec = DatasetCatalog::sgemm_original().scaled(0.25);
    let dataset = spec.generate();
    let dense = dataset.as_dense().expect("SGEMM analogue is dense");
    let split = dense.split(0.9, 42);
    println!(
        "dataset: {} ({} train / {} validation samples, {} features)",
        spec.name,
        split.train.num_samples(),
        split.validation.num_samples(),
        split.train.num_features()
    );

    // 2. Train once, capturing provenance (the offline phase).
    let config = TrainerConfig::from_hyper(spec.hyper).with_seed(7);
    let session =
        LinearSession::fit(split.train.clone(), config).expect("training should converge");
    println!(
        "trained initial model in {:?} (captured {:.2} MiB of provenance)",
        session.training_time(),
        session.provenance_bytes() as f64 / (1024.0 * 1024.0)
    );

    // 3. Pretend 1% of the training samples turned out to be bad and must be
    //    removed. PrIU updates the model without retraining.
    let removed = random_subsets(split.train.num_samples(), 0.01, 1, 3)[0].clone();
    let priu = session.priu(&removed).expect("PrIU update");
    let priu_opt = session.priu_opt(&removed).expect("PrIU-opt update");
    let retrained = session.retrain(&removed).expect("BaseL retraining");

    println!("\nremoved {} samples:", removed.len());
    for (name, outcome) in [
        ("BaseL (retrain)", &retrained),
        ("PrIU", &priu),
        ("PrIU-opt", &priu_opt),
    ] {
        let cmp = compare_models(&retrained.model, &outcome.model).expect("same model shape");
        let mse = mean_squared_error(&outcome.model, &split.validation).expect("validation MSE");
        println!(
            "  {name:<16} update time {:>10.3?}  validation MSE {mse:.5}  cosine similarity to BaseL {:.6}",
            outcome.duration, cmp.cosine_similarity
        );
    }
    let speedup =
        retrained.duration.as_secs_f64() / priu_opt.duration.as_secs_f64().max(1e-12);
    println!("\nPrIU-opt speed-up over retraining: {speedup:.1}x");
}
