//! Quickstart: train a linear-regression model with provenance capture
//! through the `SessionBuilder`, delete a slice of the training data, and
//! update the model incrementally with any registered `Method` instead of
//! retraining.
//!
//! Run with: `cargo run --release --example quickstart`

use priu::core::metrics::{compare_models, mean_squared_error};
use priu::core::prelude::*;
use priu::data::prelude::*;

fn main() {
    // 1. A synthetic stand-in for the UCI SGEMM regression dataset
    //    (see DESIGN.md §3 for the substitution rationale).
    let spec = DatasetCatalog::sgemm_original().scaled(0.25);
    let dataset = spec.generate();
    let dense = dataset.as_dense().expect("SGEMM analogue is dense");
    let split = dense.split(0.9, 42);
    println!(
        "dataset: {} ({} train / {} validation samples, {} features)",
        spec.name,
        split.train.num_samples(),
        split.validation.num_samples(),
        split.train.num_features()
    );

    // 2. Train once, capturing provenance (the offline phase). The builder
    //    infers the model family from the labels — continuous targets give a
    //    linear session, so closed-form is available too.
    let session = SessionBuilder::dense(split.train.clone(), TrainerConfig::from_hyper(spec.hyper))
        .seed(7)
        .fit()
        .expect("training should converge");
    println!(
        "trained initial model in {:?} (captured {:.2} MiB of provenance)",
        session.training_time(),
        session.provenance_bytes() as f64 / (1024.0 * 1024.0)
    );
    println!(
        "methods this session supports: {}",
        session
            .supported_methods()
            .iter()
            .map(Method::name)
            .collect::<Vec<_>>()
            .join(", ")
    );

    // 3. Pretend 1% of the training samples turned out to be bad and must be
    //    removed. One `run_all` call answers with every supported method.
    let removed = random_subsets(split.train.num_samples(), 0.01, 1, 3)[0].clone();
    let report = session.run_all(&removed).expect("updates should succeed");
    let retrained = report.get(Method::Retrain).expect("BaseL always runs");

    println!("\nremoved {} samples:", removed.len());
    for outcome in report.outcomes() {
        let cmp = compare_models(&retrained.model, &outcome.model).expect("same model shape");
        let mse = mean_squared_error(&outcome.model, &split.validation).expect("validation MSE");
        println!(
            "  {:<11} update time {:>10.3?}  validation MSE {mse:.5}  cosine similarity to BaseL {:.6}",
            outcome.method.name(),
            outcome.duration,
            cmp.cosine_similarity
        );
    }
    let priu_opt = report.get(Method::PriuOpt).expect("opt capture is on");
    let speedup = retrained.duration.as_secs_f64() / priu_opt.duration.as_secs_f64().max(1e-12);
    println!("\nPrIU-opt speed-up over retraining: {speedup:.1}x");

    // 4. Chained deletion: consume the outcome into a successor session over
    //    the survivors — the next deletion request starts from here.
    let chained = session
        .apply(Method::PriuOpt, &removed)
        .expect("chained deletion");
    println!(
        "after apply: session now covers {} samples and still supports {} methods",
        chained.session.num_samples(),
        chained.session.supported_methods().len()
    );
}
