//! A tour of the provenance-semiring substrate (§4.1 of the paper): tokens,
//! polynomials, annotated matrices, and deletion propagation by zeroing out
//! tokens — including the reference gradient-descent trainer built directly
//! on annotated expressions.
//!
//! Run with: `cargo run --release --example provenance_semiring`

use priu::core::reference::AnnotatedLinearGd;
use priu::data::prelude::*;
use priu::data::synthetic::regression::{generate_regression, RegressionConfig};
use priu::linalg::Vector;
use priu::provenance::{AnnotatedVector, Polynomial, Token, Valuation};

fn main() {
    // The paper's running example: w = p²q ∗ u + q r⁴ ∗ v + p s ∗ z.
    let (p, q, r, s) = (Token(0), Token(1), Token(2), Token(3));
    let u = Vector::from_vec(vec![1.0, 0.0]);
    let v = Vector::from_vec(vec![0.0, 1.0]);
    let z = Vector::from_vec(vec![2.0, 2.0]);
    let w = AnnotatedVector::annotated(
        Polynomial::token_power(p, 2).mul(&Polynomial::from_token(q)),
        u,
    )
    .add(&AnnotatedVector::annotated(
        Polynomial::from_token(q).mul(&Polynomial::token_power(r, 4)),
        v,
    ))
    .add(&AnnotatedVector::annotated(
        Polynomial::from_token(p).mul(&Polynomial::from_token(s)),
        z,
    ));
    println!("annotated expression with {} terms", w.num_terms());
    println!(
        "  all tokens present  -> {:?}",
        w.specialize(&Valuation::all_present()).as_slice()
    );
    println!(
        "  delete the r sample -> {:?}   (the qr^4 term vanished, w = u + z)",
        w.specialize(&Valuation::deleting([r])).as_slice()
    );

    // The same mechanism drives the reference trainer: annotate every
    // training sample, build the GD update rule as an annotated expression,
    // and propagate a deletion by zeroing out tokens.
    let data = generate_regression(&RegressionConfig {
        num_samples: 16,
        num_features: 3,
        noise_std: 0.05,
        seed: 7,
        ..Default::default()
    });
    let reference = AnnotatedLinearGd::build(&data, 0.05, 0.01, 80).expect("annotated build");
    let full = reference.update_after_deletion(&[]).expect("full model");
    let without = reference
        .update_after_deletion(&[3, 7, 11])
        .expect("deletion-propagated model");
    println!(
        "\nreference annotated GD: {} samples, {} annotated Gram terms",
        data.num_samples(),
        reference.gram_expression().num_terms()
    );
    println!(
        "  model on all samples      : {:?}",
        full.weight().as_slice()
    );
    println!(
        "  after zeroing out 3 tokens: {:?}",
        without.weight().as_slice()
    );

    // And the catalog names every dataset analogue the evaluation uses.
    println!("\ndataset analogues available in the catalog:");
    for spec in DatasetCatalog::all() {
        println!(
            "  {:<22} {:>8} samples x {:>5} features ({} classes{})",
            spec.name,
            spec.num_samples,
            spec.num_features,
            spec.num_classes(),
            if spec.is_sparse() { ", sparse" } else { "" }
        );
    }
}
