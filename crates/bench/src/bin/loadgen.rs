//! `loadgen` — load generator for the delta service (`priu-server`).
//!
//! Drives a grid of (concurrent sessions) × (coalescing on/off) ×
//! (durability on/off) cells. Each cell starts one server, registers N
//! linear sessions and runs, per session, one predict client plus one
//! deletion client issuing **single-row** deletions (the workload the
//! coalescing planner exists for). Latencies are recorded per request —
//! predict latency is the synchronous snapshot round trip, delete
//! latency spans admission to batch commit (so it includes the
//! coalescing window, and with the WAL enabled the pre-commit group
//! fsync, by design) — and summarised as p50/p99 into a `BENCH_10.json`
//! next to the other BENCH records. Durable cells also report the WAL's
//! cumulative durability counters (fsyncs, frames, bytes, group sizes,
//! checkpoints) and finish with a restart-and-recover cycle on the same
//! store — timed separately as `recovery_seconds`, outside the measured
//! wall clock: the reopened server must report every session recovered,
//! so the benchmark doubles as a durability smoke. A **sliding-window** section additionally runs the
//! bidirectional workload: per session one streamer issues single-row
//! `tick`s (append one fresh row, retain the last `W`) while a deleter
//! removes mid-window rows and a predictor hammers the snapshot —
//! predict/delete/add latencies all recorded. A **rank-1** section
//! measures appending one row to a 2000×256 closed-form capture via the
//! rank-1 Gram/Cholesky update against rebuilding the capture from
//! scratch. A wire section round-trips predicts through the
//! length-prefixed protocol over the in-memory duplex transport.
//!
//! ```text
//! loadgen [--sessions 1,4,16] [--seconds 0.5] [--coalesce both|on|off]
//!         [--durability both|on|off] [--out BENCH_10.json] [--date YYYY-MM-DD]
//! ```

use std::collections::HashMap;
use std::sync::atomic::{AtomicBool, Ordering};
use std::sync::mpsc::channel;
use std::sync::{Arc, Barrier};
use std::time::{Duration, Instant, SystemTime};
use std::{env, process::ExitCode, thread};

use priu_bench::report::JsonValue;
use priu_core::baseline::closed_form::{
    closed_form_delta_with, closed_form_full, ClosedFormCapture,
};
use priu_core::{Session, SessionBuilder, TrainerConfig, Workspace};
use priu_data::catalog::Hyperparameters;
use priu_data::dataset::{DenseDataset, Labels};
use priu_data::synthetic::regression::{generate_regression, RegressionConfig};
use priu_linalg::simd;
use priu_linalg::{Matrix, Vector};
use priu_server::{
    decode_response, duplex, encode_request, read_frame, write_frame, AddedRows, DurabilityConfig,
    PlannerConfig, Request, RequestEnvelope, Response, Server, ServerConfig, WalStats,
};

const SAMPLES_PER_SESSION: usize = 300;
const FEATURES: usize = 6;
/// Single-row deletions issued per session (≤ half the rows, so the drift
/// trigger fires mid-run and the decision histogram shows retrains).
const DELETE_BUDGET: u64 = 120;

struct Cli {
    sessions: Vec<usize>,
    seconds: f64,
    modes: Vec<bool>,
    durability: Vec<bool>,
    out: String,
    date: Option<String>,
}

fn parse_args() -> Result<Cli, String> {
    let mut cli = Cli {
        sessions: vec![1, 4, 16],
        seconds: 0.5,
        modes: vec![true, false],
        durability: vec![false, true],
        out: "BENCH_10.json".to_string(),
        date: None,
    };
    let mut args = env::args().skip(1);
    while let Some(arg) = args.next() {
        match arg.as_str() {
            "--sessions" => {
                let value = args.next().ok_or("--sessions needs a value")?;
                cli.sessions = value
                    .split(',')
                    .map(|s| {
                        s.trim()
                            .parse::<usize>()
                            .map_err(|_| format!("bad session count '{s}'"))
                    })
                    .collect::<Result<_, _>>()?;
                if cli.sessions.is_empty() || cli.sessions.contains(&0) {
                    return Err("--sessions needs positive counts".to_string());
                }
            }
            "--seconds" => {
                let value = args.next().ok_or("--seconds needs a value")?;
                cli.seconds = value
                    .parse::<f64>()
                    .map_err(|_| format!("invalid seconds '{value}'"))?;
                if !cli.seconds.is_finite() || cli.seconds <= 0.0 {
                    return Err("--seconds must be positive".to_string());
                }
            }
            "--coalesce" => {
                cli.modes = match args.next().as_deref() {
                    Some("both") => vec![true, false],
                    Some("on") => vec![true],
                    Some("off") => vec![false],
                    other => return Err(format!("--coalesce both|on|off, got {other:?}")),
                };
            }
            "--durability" => {
                cli.durability = match args.next().as_deref() {
                    Some("both") => vec![false, true],
                    Some("on") => vec![true],
                    Some("off") => vec![false],
                    other => return Err(format!("--durability both|on|off, got {other:?}")),
                };
            }
            "--out" => cli.out = args.next().ok_or("--out needs a path")?,
            "--date" => cli.date = Some(args.next().ok_or("--date needs a value")?),
            "--help" | "-h" => {
                eprintln!(
                    "loadgen [--sessions 1,4,16] [--seconds 0.5] \
                     [--coalesce both|on|off] [--durability both|on|off] \
                     [--out BENCH_10.json] [--date YYYY-MM-DD]"
                );
                std::process::exit(0);
            }
            other => return Err(format!("unknown argument '{other}'")),
        }
    }
    Ok(cli)
}

fn fit_session(seed: u64) -> Session {
    let data = generate_regression(&RegressionConfig {
        num_samples: SAMPLES_PER_SESSION,
        num_features: FEATURES,
        noise_std: 0.1,
        seed,
        ..Default::default()
    });
    let config = TrainerConfig::from_hyper(Hyperparameters {
        batch_size: 25,
        num_iterations: 40,
        learning_rate: 0.05,
        regularization: 0.05,
    });
    SessionBuilder::dense(data, config)
        .seed(11)
        .opt_capture(false)
        .fit()
        .expect("loadgen session fit")
}

/// Percentile over sorted per-request latencies in nanoseconds, reported
/// in microseconds (sub-microsecond predicts stay resolvable).
fn percentile_us(sorted_ns: &[u64], p: f64) -> f64 {
    if sorted_ns.is_empty() {
        return 0.0;
    }
    let ix = ((p / 100.0) * (sorted_ns.len() - 1) as f64).round() as usize;
    sorted_ns[ix.min(sorted_ns.len() - 1)] as f64 / 1000.0
}

struct CellResult {
    sessions: usize,
    coalesce: bool,
    durable: bool,
    wall_seconds: f64,
    predicts: Vec<u64>,
    deletes: Vec<u64>,
    rows_deleted: u64,
    batches: u64,
    decisions: HashMap<&'static str, u64>,
    /// Durable cells only: the WAL's cumulative counters after the run
    /// (snapshot queue drained first, so checkpoints are final).
    durability: Option<WalStats>,
    /// Durable cells only: sessions the restart-and-recover cycle
    /// brought back, WAL records it redid past the latest snapshots, and
    /// the wall-clock seconds the recovery took (kept out of the cell's
    /// measured `wall_seconds`).
    recovery: Option<(u64, u64, f64)>,
}

fn run_cell(sessions: usize, coalesce: bool, durable: bool, seconds: f64) -> CellResult {
    let store = durable.then(|| {
        let dir = std::env::temp_dir().join(format!(
            "priu-loadgen-{}-s{sessions}-c{}",
            std::process::id(),
            u8::from(coalesce)
        ));
        let _ = std::fs::remove_dir_all(&dir);
        dir
    });
    let config = || ServerConfig {
        planner: PlannerConfig {
            window: Duration::from_millis(2),
            max_batch: 64,
            coalesce,
        },
        durability: store.clone().map(|dir| {
            let mut durability = DurabilityConfig::new(dir);
            // Small enough that the default snapshot cadence fires a few
            // compactions even in a short cell.
            durability.checkpoint_bytes = 4096;
            durability
        }),
        ..ServerConfig::default()
    };
    let server = Arc::new(Server::start(config()).expect("start server"));
    let names: Vec<String> = (0..sessions).map(|s| format!("s{s}")).collect();
    for (s, name) in names.iter().enumerate() {
        server
            .register_session(name, fit_session(0x6000 + s as u64))
            .expect("register");
    }

    // One predictor + one deletion submitter + one ticket waiter per
    // session, all released together.
    let barrier = Arc::new(Barrier::new(2 * sessions + 1));
    let done = Arc::new(AtomicBool::new(false));
    let mut predictors = Vec::new();
    let mut deleters = Vec::new();
    let mut waiters = Vec::new();
    for name in &names {
        let name = name.clone();
        {
            let server = Arc::clone(&server);
            let barrier = Arc::clone(&barrier);
            let done = Arc::clone(&done);
            let name = name.clone();
            predictors.push(thread::spawn(move || {
                let probe: Vec<f64> = (0..FEATURES).map(|i| 0.25 * (i as f64 + 1.0)).collect();
                let mut latencies = Vec::new();
                barrier.wait();
                while !done.load(Ordering::Acquire) {
                    let t0 = Instant::now();
                    server.predict(&name, &probe).expect("predict");
                    latencies.push(t0.elapsed().as_nanos() as u64);
                }
                latencies
            }));
        }
        let (tickets_tx, tickets_rx) = channel();
        {
            let server = Arc::clone(&server);
            let barrier = Arc::clone(&barrier);
            let done = Arc::clone(&done);
            let name = name.clone();
            deleters.push(thread::spawn(move || {
                barrier.wait();
                let mut issued = 0u64;
                while !done.load(Ordering::Acquire) && issued < DELETE_BUDGET {
                    let ticket = server.delete(&name, &[issued]).expect("delete");
                    let _ = tickets_tx.send((Instant::now(), ticket));
                    issued += 1;
                    if issued.is_multiple_of(4) {
                        // Pace arrivals so the coalescing window has
                        // something to fold (a burst every ~300 µs).
                        thread::sleep(Duration::from_micros(300));
                    }
                }
                let _ = server.flush(&name);
            }));
        }
        waiters.push(thread::spawn(move || {
            let mut latencies = Vec::new();
            let mut rows = 0u64;
            for (sent, ticket) in tickets_rx {
                let reply = ticket.wait().expect("ticket");
                latencies.push(sent.elapsed().as_nanos() as u64);
                rows += reply.applied as u64;
            }
            (latencies, rows)
        }));
    }

    barrier.wait();
    let t0 = Instant::now();
    thread::sleep(Duration::from_secs_f64(seconds));
    done.store(true, Ordering::Release);
    let mut predicts: Vec<u64> = Vec::new();
    for handle in predictors {
        predicts.extend(handle.join().expect("predictor"));
    }
    for handle in deleters {
        handle.join().expect("deleter");
    }
    let mut deletes: Vec<u64> = Vec::new();
    let mut rows_deleted = 0u64;
    for handle in waiters {
        let (latencies, rows) = handle.join().expect("waiter");
        deletes.extend(latencies);
        rows_deleted += rows;
    }
    let wall_seconds = t0.elapsed().as_secs_f64();

    let mut batches = 0u64;
    let mut decisions: HashMap<&'static str, u64> = HashMap::new();
    for name in &names {
        let stats = server.stats(name).expect("stats");
        batches += stats.epoch;
        for (method, count) in stats.decisions {
            *decisions.entry(method.name()).or_insert(0) += count;
        }
    }
    // Settle the background snapshot/checkpoint queue before reading the
    // counters, so the reported checkpoint count is final.
    let durability = store.is_some().then(|| {
        server.drain_durability();
        server.durability_stats().expect("durable cell has stats")
    });
    server.shutdown();

    // Durable cells double as a recovery smoke: reopen the store and
    // require every session back, then discard it. Timed on its own —
    // the cell's wall clock was captured before this point.
    let recovery = store.as_ref().map(|dir| {
        let t0 = Instant::now();
        let recovered = Server::start(config()).expect("recover store");
        let recovery_seconds = t0.elapsed().as_secs_f64();
        let report = recovered.recovery_report().expect("recovery report");
        assert_eq!(
            report.sessions.len(),
            sessions,
            "recovery lost sessions: {report:?}"
        );
        assert!(
            report.sessions.iter().all(|s| s.skipped.is_empty()),
            "recovery skipped records: {report:?}"
        );
        let redone = report.sessions.iter().map(|s| s.redone).sum();
        let count = report.sessions.len() as u64;
        recovered.shutdown();
        let _ = std::fs::remove_dir_all(dir);
        (count, redone, recovery_seconds)
    });

    predicts.sort_unstable();
    deletes.sort_unstable();
    CellResult {
        sessions,
        coalesce,
        durable,
        wall_seconds,
        predicts,
        deletes,
        rows_deleted,
        batches,
        decisions,
        durability,
        recovery,
    }
}

struct WindowResult {
    sessions: usize,
    wall_seconds: f64,
    predicts: Vec<u64>,
    deletes: Vec<u64>,
    adds: Vec<u64>,
    rows_added: u64,
    rows_expired: u64,
    rows_deleted: u64,
    batches: u64,
    final_samples: usize,
}

/// A deterministic fresh row for the streaming workload (a tiny
/// splitmix-style hash keeps rows distinct without an RNG dependency).
fn fresh_row(counter: u64) -> AddedRows {
    let mut features = Vec::with_capacity(FEATURES);
    for i in 0..FEATURES {
        let mut z = counter
            .wrapping_mul(0x9e37_79b9_7f4a_7c15)
            .wrapping_add(i as u64);
        z = (z ^ (z >> 30)).wrapping_mul(0xbf58_476d_1ce4_e5b9);
        features.push(((z >> 11) as f64 / (1u64 << 53) as f64) * 2.0 - 1.0);
    }
    let label = features.iter().sum::<f64>() * 0.5;
    AddedRows {
        num_features: FEATURES,
        features,
        labels: vec![label],
    }
}

/// The bidirectional sliding-window workload: per session one streamer
/// issues single-row `tick`s (append one row, retain the last
/// `SAMPLES_PER_SESSION`), one deleter removes mid-window rows by stable
/// id, one predictor hammers the snapshot. Coalescing is always on — the
/// planner folds ticks and deletes into mixed batches.
fn run_window_cell(sessions: usize, seconds: f64) -> WindowResult {
    let server = Arc::new(
        Server::start(ServerConfig {
            planner: PlannerConfig {
                window: Duration::from_millis(2),
                max_batch: 64,
                coalesce: true,
            },
            ..ServerConfig::default()
        })
        .expect("start server"),
    );
    let names: Vec<String> = (0..sessions).map(|s| format!("w{s}")).collect();
    for (s, name) in names.iter().enumerate() {
        server
            .register_session(name, fit_session(0x8000 + s as u64))
            .expect("register");
    }

    let barrier = Arc::new(Barrier::new(3 * sessions + 1));
    let done = Arc::new(AtomicBool::new(false));
    let mut predictors = Vec::new();
    let mut streamers = Vec::new();
    let mut deleters = Vec::new();
    for (s, name) in names.iter().enumerate() {
        {
            let server = Arc::clone(&server);
            let barrier = Arc::clone(&barrier);
            let done = Arc::clone(&done);
            let name = name.clone();
            predictors.push(thread::spawn(move || {
                let probe: Vec<f64> = (0..FEATURES).map(|i| 0.25 * (i as f64 + 1.0)).collect();
                let mut latencies = Vec::new();
                barrier.wait();
                while !done.load(Ordering::Acquire) {
                    let t0 = Instant::now();
                    server.predict(&name, &probe).expect("predict");
                    latencies.push(t0.elapsed().as_nanos() as u64);
                }
                latencies
            }));
        }
        {
            // The streamer: single-row ticks with a constant retention
            // window, so every committed tick expires the oldest row.
            let server = Arc::clone(&server);
            let barrier = Arc::clone(&barrier);
            let done = Arc::clone(&done);
            let name = name.clone();
            let seed = 0x9000 + ((s as u64) << 8);
            streamers.push(thread::spawn(move || {
                let mut latencies = Vec::new();
                let (mut added, mut expired) = (0u64, 0u64);
                let mut counter = seed;
                barrier.wait();
                // A window slightly below the registration size, so the
                // very first tick batch already expires the oldest rows.
                let keep = SAMPLES_PER_SESSION as u64 - 20;
                while !done.load(Ordering::Acquire) && added < DELETE_BUDGET {
                    counter += 1;
                    let t0 = Instant::now();
                    let ticket = server
                        .tick(&name, Some(fresh_row(counter)), keep)
                        .expect("tick");
                    let reply = ticket.wait().expect("tick ticket");
                    latencies.push(t0.elapsed().as_nanos() as u64);
                    added += reply.added as u64;
                    expired += reply.expired as u64;
                    thread::sleep(Duration::from_micros(200));
                }
                let _ = server.flush(&name);
                (latencies, added, expired)
            }));
        }
        {
            // The deleter: single-row deletes walking down from the top of
            // the registration-time ids — the rows retention expires last,
            // so early requests hit live rows even as the window slides.
            let server = Arc::clone(&server);
            let barrier = Arc::clone(&barrier);
            let done = Arc::clone(&done);
            let name = name.clone();
            deleters.push(thread::spawn(move || {
                let mut latencies = Vec::new();
                let mut removed = 0u64;
                let mut issued = 0u64;
                barrier.wait();
                while !done.load(Ordering::Acquire) && issued < DELETE_BUDGET {
                    let id = SAMPLES_PER_SESSION as u64 - 1 - issued;
                    issued += 1;
                    let t0 = Instant::now();
                    let ticket = server.delete(&name, &[id]).expect("delete");
                    let reply = ticket.wait().expect("delete ticket");
                    latencies.push(t0.elapsed().as_nanos() as u64);
                    removed += reply.applied as u64;
                    thread::sleep(Duration::from_micros(400));
                }
                let _ = server.flush(&name);
                (latencies, removed)
            }));
        }
    }

    barrier.wait();
    let t0 = Instant::now();
    thread::sleep(Duration::from_secs_f64(seconds));
    done.store(true, Ordering::Release);
    let mut predicts: Vec<u64> = Vec::new();
    for handle in predictors {
        predicts.extend(handle.join().expect("predictor"));
    }
    let mut adds: Vec<u64> = Vec::new();
    let (mut rows_added, mut rows_expired) = (0u64, 0u64);
    for handle in streamers {
        let (latencies, added, expired) = handle.join().expect("streamer");
        adds.extend(latencies);
        rows_added += added;
        rows_expired += expired;
    }
    let mut deletes: Vec<u64> = Vec::new();
    let mut rows_deleted = 0u64;
    for handle in deleters {
        let (latencies, removed) = handle.join().expect("deleter");
        deletes.extend(latencies);
        rows_deleted += removed;
    }
    let wall_seconds = t0.elapsed().as_secs_f64();

    let mut batches = 0u64;
    let mut final_samples = 0usize;
    for name in &names {
        let stats = server.stats(name).expect("stats");
        batches += stats.epoch;
        final_samples += stats.num_samples;
    }
    server.shutdown();
    predicts.sort_unstable();
    deletes.sort_unstable();
    adds.sort_unstable();
    WindowResult {
        sessions,
        wall_seconds,
        predicts,
        deletes,
        adds,
        rows_added,
        rows_expired,
        rows_deleted,
        batches,
        final_samples,
    }
}

/// Rank-1 addition against capture rebuild at 2000×256: appending one row
/// to the closed-form normal equations via the rank-1 Gram/Cholesky
/// update (+ solve) versus recomputing `XᵀX`/`XᵀY` over all 2001 rows
/// from scratch (+ solve). The ratio is what makes warm additions
/// serveable online.
fn run_rank1_section() -> (f64, f64, f64) {
    const N: usize = 2000;
    const M: usize = 256;
    let data = generate_regression(&RegressionConfig {
        num_samples: N,
        num_features: M,
        noise_std: 0.1,
        seed: 0x8801,
        ..Default::default()
    });
    let capture = ClosedFormCapture::build(&data, 0.05).expect("capture");
    let row: Vec<f64> = (0..M)
        .map(|i| ((i * 37 + 11) % 97) as f64 / 97.0 - 0.5)
        .collect();
    let added = DenseDataset::new(
        Matrix::from_vec(1, M, row).expect("added row"),
        Labels::Continuous(Vector::from_vec(vec![0.75])),
    );
    let mut appended = data.clone();
    appended.append(&added).expect("append");
    let mut ws = Workspace::new();

    // Warm both paths once, then time fixed iteration counts.
    let _ = closed_form_delta_with(&data, &capture, &[], &added, &mut ws).expect("rank-1");
    let rebuilt = ClosedFormCapture::build(&appended, 0.05).expect("rebuild");
    let _ = closed_form_full(&rebuilt).expect("solve");

    const RANK1_ITERS: u32 = 20;
    let t0 = Instant::now();
    for _ in 0..RANK1_ITERS {
        let _ = closed_form_delta_with(&data, &capture, &[], &added, &mut ws).expect("rank-1");
    }
    let rank1_us = t0.elapsed().as_secs_f64() * 1e6 / f64::from(RANK1_ITERS);

    const REBUILD_ITERS: u32 = 5;
    let t0 = Instant::now();
    for _ in 0..REBUILD_ITERS {
        let rebuilt = ClosedFormCapture::build(&appended, 0.05).expect("rebuild");
        let _ = closed_form_full(&rebuilt).expect("solve");
    }
    let rebuild_us = t0.elapsed().as_secs_f64() * 1e6 / f64::from(REBUILD_ITERS);
    (rank1_us, rebuild_us, rebuild_us / rank1_us)
}

/// Predict round trips through the length-prefixed protocol over the
/// in-memory duplex (reader thread + responder included in the measured
/// path). Returns sorted per-request latencies in µs.
fn run_wire_section(rounds: u64) -> Vec<u64> {
    let server = Server::start(ServerConfig::default()).expect("start server");
    server
        .register_session("wire", fit_session(0x7000))
        .expect("register");
    let ((mut client_w, mut client_r), (server_w, server_r)) = duplex();
    let connection = server.serve_connection(server_r, server_w);
    let probe: Vec<f64> = (0..FEATURES).map(|i| 0.1 * (i as f64 + 1.0)).collect();
    let mut latencies = Vec::with_capacity(rounds as usize);
    for id in 0..rounds {
        let t0 = Instant::now();
        let payload = encode_request(&RequestEnvelope {
            id,
            request: Request::Predict {
                session: "wire".to_string(),
                features: probe.clone(),
            },
        });
        write_frame(&mut client_w, &payload).expect("wire write");
        let frame = read_frame(&mut client_r).expect("wire read").expect("open");
        let envelope = decode_response(&frame).expect("wire decode");
        assert_eq!(envelope.id, id);
        assert!(matches!(envelope.response, Response::Predicted { .. }));
        latencies.push(t0.elapsed().as_nanos() as u64);
    }
    drop(client_w);
    connection.join();
    server.shutdown();
    latencies.sort_unstable();
    latencies
}

/// Civil date from the system clock (days-from-epoch → y-m-d).
fn today() -> String {
    let days = SystemTime::now()
        .duration_since(SystemTime::UNIX_EPOCH)
        .map(|d| d.as_secs() / 86_400)
        .unwrap_or(0) as i64;
    let z = days + 719_468;
    let era = z.div_euclid(146_097);
    let doe = z.rem_euclid(146_097);
    let yoe = (doe - doe / 1460 + doe / 36_524 - doe / 146_096) / 365;
    let year = yoe + era * 400;
    let doy = doe - (365 * yoe + yoe / 4 - yoe / 100);
    let mp = (5 * doy + 2) / 153;
    let day = doy - (153 * mp + 2) / 5 + 1;
    let month = if mp < 10 { mp + 3 } else { mp - 9 };
    let year = if month <= 2 { year + 1 } else { year };
    format!("{year:04}-{month:02}-{day:02}")
}

fn cell_json(cell: &CellResult) -> JsonValue {
    let mut predict = JsonValue::object();
    predict
        .push("count", cell.predicts.len())
        .push("p50_us", percentile_us(&cell.predicts, 50.0))
        .push("p99_us", percentile_us(&cell.predicts, 99.0))
        .push(
            "throughput_per_s",
            cell.predicts.len() as f64 / cell.wall_seconds,
        );
    let mut delete = JsonValue::object();
    delete
        .push("count", cell.deletes.len())
        .push("p50_us", percentile_us(&cell.deletes, 50.0))
        .push("p99_us", percentile_us(&cell.deletes, 99.0))
        .push("rows_deleted", cell.rows_deleted)
        .push("batches", cell.batches)
        .push(
            "rows_per_batch",
            if cell.batches == 0 {
                0.0
            } else {
                cell.rows_deleted as f64 / cell.batches as f64
            },
        );
    let mut decisions = JsonValue::object();
    let mut methods: Vec<_> = cell.decisions.iter().collect();
    methods.sort();
    for (method, count) in methods {
        decisions.push(method, *count);
    }
    let mut out = JsonValue::object();
    out.push("sessions", cell.sessions)
        .push("coalesce", cell.coalesce)
        .push("durable", cell.durable)
        .push("wall_seconds", cell.wall_seconds)
        .push("predict", predict)
        .push("delete", delete)
        .push("scheduler_decisions", decisions);
    if let Some(stats) = cell.durability {
        let mut durability = JsonValue::object();
        durability
            .push("fsyncs", stats.fsyncs)
            .push("wal_frames", stats.frames)
            .push("wal_bytes_appended", stats.bytes)
            .push(
                "mean_group",
                if stats.fsyncs == 0 {
                    0.0
                } else {
                    stats.frames as f64 / stats.fsyncs as f64
                },
            )
            .push("max_group", stats.max_group)
            .push("checkpoints", stats.checkpoints);
        out.push("durability", durability);
    }
    if let Some((recovered, redone, recovery_seconds)) = cell.recovery {
        let mut recovery = JsonValue::object();
        recovery
            .push("sessions_recovered", recovered)
            .push("wal_records_redone", redone)
            .push("recovery_seconds", recovery_seconds);
        out.push("recovery", recovery);
    }
    out
}

fn window_json(cell: &WindowResult) -> JsonValue {
    let latency = |sorted: &[u64], wall: f64| {
        let mut out = JsonValue::object();
        out.push("count", sorted.len())
            .push("p50_us", percentile_us(sorted, 50.0))
            .push("p99_us", percentile_us(sorted, 99.0))
            .push("throughput_per_s", sorted.len() as f64 / wall);
        out
    };
    let mut out = JsonValue::object();
    out.push("sessions", cell.sessions)
        .push("wall_seconds", cell.wall_seconds)
        .push("window_rows", SAMPLES_PER_SESSION - 20)
        .push("predict", latency(&cell.predicts, cell.wall_seconds))
        .push("delete", latency(&cell.deletes, cell.wall_seconds))
        .push("add", latency(&cell.adds, cell.wall_seconds))
        .push("rows_added", cell.rows_added)
        .push("rows_expired", cell.rows_expired)
        .push("rows_deleted", cell.rows_deleted)
        .push("batches", cell.batches)
        .push("final_samples", cell.final_samples);
    out
}

fn main() -> ExitCode {
    let cli = match parse_args() {
        Ok(cli) => cli,
        Err(message) => {
            eprintln!("loadgen: {message}");
            return ExitCode::FAILURE;
        }
    };

    let mut cells = Vec::new();
    for &sessions in &cli.sessions {
        for &coalesce in &cli.modes {
            for &durable in &cli.durability {
                eprintln!(
                    "loadgen: {sessions} session(s), coalesce={}, wal={}, {}s ...",
                    if coalesce { "on" } else { "off" },
                    if durable { "on" } else { "off" },
                    cli.seconds
                );
                cells.push(run_cell(sessions, coalesce, durable, cli.seconds));
            }
        }
    }
    let mut windows = Vec::new();
    for &sessions in &cli.sessions {
        eprintln!(
            "loadgen: sliding window, {sessions} session(s), {}s ...",
            cli.seconds
        );
        windows.push(run_window_cell(sessions, cli.seconds));
    }
    eprintln!("loadgen: rank-1 add vs capture rebuild at 2000x256 ...");
    let (rank1_us, rebuild_us, speedup) = run_rank1_section();
    let wire = run_wire_section(200);

    let mut environment = JsonValue::object();
    environment
        .push(
            "cpus_available",
            thread::available_parallelism().map_or(0, |n| n.get()),
        )
        .push("avx2_fma_detected", simd::available_levels().len() > 1)
        .push(
            "session_shape",
            format!("{SAMPLES_PER_SESSION}x{FEATURES} linear regression, single-row deletes"),
        )
        .push(
            "notes",
            "single-core shared container: all sessions, the applier thread and every \
             client thread share one CPU, so p99 latencies are dominated by scheduling \
             noise and absolute throughputs are a floor, not a capability. Delete \
             latency spans admission -> batch commit and therefore includes the 2 ms \
             coalescing window by design; compare the coalesce on/off rows per session \
             count, not across machines. Durable rows additionally pay one WAL append + \
             fsync per batch before acknowledgement — the delete p50/p99 delta against \
             the matching wal=off row is the price of the durability guarantee. \
             Coalescing amortises it across every request folded into the batch; \
             with coalescing off, group commit amortises it instead by sharing one \
             fsync across the chained backlog (see the per-cell durability counters). \
             Decision histograms come from the online cost model (BaseL entries are \
             the forced drift retrains).",
        );
    let mut commands = JsonValue::object();
    commands.push(
        "loadgen",
        "cargo run --release -p priu-bench --bin loadgen -- --sessions 1,4,16 --seconds 0.5 \
         --durability both",
    );
    let mut wire_json = JsonValue::object();
    wire_json
        .push("predict_round_trips", wire.len())
        .push("p50_us", percentile_us(&wire, 50.0))
        .push("p99_us", percentile_us(&wire, 99.0));
    let mut rank1_json = JsonValue::object();
    rank1_json
        .push("shape", "2000x256 linear, append 1 row")
        .push("rank1_update_us", rank1_us)
        .push("rebuild_capture_us", rebuild_us)
        .push("speedup", speedup);

    let mut doc = JsonValue::object();
    doc.push("pr", 10i64)
        .push(
            "label",
            "durability fast path: WAL group commit + background snapshots + checkpoint \
             compaction; grid compares acknowledged delete latency with the pre-ack \
             (group) fsync on vs off, durable cells report fsync/group/checkpoint \
             counters and end in a separately-timed restart-and-recover cycle",
        )
        .push("date", cli.date.unwrap_or_else(today))
        .push("environment", environment)
        .push("commands", commands)
        .push(
            "grid",
            JsonValue::Array(cells.iter().map(cell_json).collect()),
        )
        .push(
            "sliding_window",
            JsonValue::Array(windows.iter().map(window_json).collect()),
        )
        .push("rank1_add", rank1_json)
        .push("wire", wire_json);

    let rendered = doc.render();
    if let Err(err) = std::fs::write(&cli.out, rendered + "\n") {
        eprintln!("loadgen: writing {}: {err}", cli.out);
        return ExitCode::FAILURE;
    }
    for cell in &cells {
        eprintln!(
            "loadgen: sessions={:2} coalesce={:3} wal={:3} predicts={:6} \
             (p50 {:5.0}us p99 {:6.0}us) deletes={:4} batches={:3} rows/batch={:4.1}",
            cell.sessions,
            if cell.coalesce { "on" } else { "off" },
            if cell.durable { "on" } else { "off" },
            cell.predicts.len(),
            percentile_us(&cell.predicts, 50.0),
            percentile_us(&cell.predicts, 99.0),
            cell.deletes.len(),
            cell.batches,
            if cell.batches == 0 {
                0.0
            } else {
                cell.rows_deleted as f64 / cell.batches as f64
            },
        );
    }
    for cell in &windows {
        eprintln!(
            "loadgen: window sessions={:2} adds={:4} (p50 {:5.0}us) deletes={:4} \
             expired={:4} batches={:3} final_samples={}",
            cell.sessions,
            cell.rows_added,
            percentile_us(&cell.adds, 50.0),
            cell.rows_deleted,
            cell.rows_expired,
            cell.batches,
            cell.final_samples,
        );
    }
    eprintln!("loadgen: rank-1 add {rank1_us:.0}us vs rebuild {rebuild_us:.0}us ({speedup:.1}x)");
    eprintln!("loadgen: wrote {}", cli.out);
    ExitCode::SUCCESS
}
