//! `loadgen` — load generator for the deletion service (`priu-server`).
//!
//! Drives a grid of (concurrent sessions) × (coalescing on/off) cells.
//! Each cell starts one server, registers N linear sessions and runs, per
//! session, one predict client plus one deletion client issuing
//! **single-row** deletions (the workload the coalescing planner exists
//! for). Latencies are recorded per request — predict latency is the
//! synchronous snapshot round trip, delete latency spans admission to
//! batch commit (so it includes the coalescing window by design) — and
//! summarised as p50/p99 into a `BENCH_6.json` next to the other BENCH
//! records. A wire section additionally round-trips predicts through the
//! length-prefixed protocol over the in-memory duplex transport.
//!
//! ```text
//! loadgen [--sessions 1,4,16] [--seconds 0.5] [--coalesce both|on|off]
//!         [--out BENCH_6.json] [--date YYYY-MM-DD]
//! ```

use std::collections::HashMap;
use std::sync::atomic::{AtomicBool, Ordering};
use std::sync::mpsc::channel;
use std::sync::{Arc, Barrier};
use std::time::{Duration, Instant, SystemTime};
use std::{env, process::ExitCode, thread};

use priu_bench::report::JsonValue;
use priu_core::{Session, SessionBuilder, TrainerConfig};
use priu_data::catalog::Hyperparameters;
use priu_data::synthetic::regression::{generate_regression, RegressionConfig};
use priu_linalg::simd;
use priu_server::{
    decode_response, duplex, encode_request, read_frame, write_frame, PlannerConfig, Request,
    RequestEnvelope, Response, Server, ServerConfig,
};

const SAMPLES_PER_SESSION: usize = 300;
const FEATURES: usize = 6;
/// Single-row deletions issued per session (≤ half the rows, so the drift
/// trigger fires mid-run and the decision histogram shows retrains).
const DELETE_BUDGET: u64 = 120;

struct Cli {
    sessions: Vec<usize>,
    seconds: f64,
    modes: Vec<bool>,
    out: String,
    date: Option<String>,
}

fn parse_args() -> Result<Cli, String> {
    let mut cli = Cli {
        sessions: vec![1, 4, 16],
        seconds: 0.5,
        modes: vec![true, false],
        out: "BENCH_6.json".to_string(),
        date: None,
    };
    let mut args = env::args().skip(1);
    while let Some(arg) = args.next() {
        match arg.as_str() {
            "--sessions" => {
                let value = args.next().ok_or("--sessions needs a value")?;
                cli.sessions = value
                    .split(',')
                    .map(|s| {
                        s.trim()
                            .parse::<usize>()
                            .map_err(|_| format!("bad session count '{s}'"))
                    })
                    .collect::<Result<_, _>>()?;
                if cli.sessions.is_empty() || cli.sessions.contains(&0) {
                    return Err("--sessions needs positive counts".to_string());
                }
            }
            "--seconds" => {
                let value = args.next().ok_or("--seconds needs a value")?;
                cli.seconds = value
                    .parse::<f64>()
                    .map_err(|_| format!("invalid seconds '{value}'"))?;
                if !cli.seconds.is_finite() || cli.seconds <= 0.0 {
                    return Err("--seconds must be positive".to_string());
                }
            }
            "--coalesce" => {
                cli.modes = match args.next().as_deref() {
                    Some("both") => vec![true, false],
                    Some("on") => vec![true],
                    Some("off") => vec![false],
                    other => return Err(format!("--coalesce both|on|off, got {other:?}")),
                };
            }
            "--out" => cli.out = args.next().ok_or("--out needs a path")?,
            "--date" => cli.date = Some(args.next().ok_or("--date needs a value")?),
            "--help" | "-h" => {
                eprintln!(
                    "loadgen [--sessions 1,4,16] [--seconds 0.5] \
                     [--coalesce both|on|off] [--out BENCH_6.json] [--date YYYY-MM-DD]"
                );
                std::process::exit(0);
            }
            other => return Err(format!("unknown argument '{other}'")),
        }
    }
    Ok(cli)
}

fn fit_session(seed: u64) -> Session {
    let data = generate_regression(&RegressionConfig {
        num_samples: SAMPLES_PER_SESSION,
        num_features: FEATURES,
        noise_std: 0.1,
        seed,
        ..Default::default()
    });
    let config = TrainerConfig::from_hyper(Hyperparameters {
        batch_size: 25,
        num_iterations: 40,
        learning_rate: 0.05,
        regularization: 0.05,
    });
    SessionBuilder::dense(data, config)
        .seed(11)
        .opt_capture(false)
        .fit()
        .expect("loadgen session fit")
}

/// Percentile over sorted per-request latencies in nanoseconds, reported
/// in microseconds (sub-microsecond predicts stay resolvable).
fn percentile_us(sorted_ns: &[u64], p: f64) -> f64 {
    if sorted_ns.is_empty() {
        return 0.0;
    }
    let ix = ((p / 100.0) * (sorted_ns.len() - 1) as f64).round() as usize;
    sorted_ns[ix.min(sorted_ns.len() - 1)] as f64 / 1000.0
}

struct CellResult {
    sessions: usize,
    coalesce: bool,
    wall_seconds: f64,
    predicts: Vec<u64>,
    deletes: Vec<u64>,
    rows_deleted: u64,
    batches: u64,
    decisions: HashMap<&'static str, u64>,
}

fn run_cell(sessions: usize, coalesce: bool, seconds: f64) -> CellResult {
    let server = Arc::new(Server::start(ServerConfig {
        planner: PlannerConfig {
            window: Duration::from_millis(2),
            max_batch: 64,
            coalesce,
        },
        ..ServerConfig::default()
    }));
    let names: Vec<String> = (0..sessions).map(|s| format!("s{s}")).collect();
    for (s, name) in names.iter().enumerate() {
        server
            .register_session(name, fit_session(0x6000 + s as u64))
            .expect("register");
    }

    // One predictor + one deletion submitter + one ticket waiter per
    // session, all released together.
    let barrier = Arc::new(Barrier::new(2 * sessions + 1));
    let done = Arc::new(AtomicBool::new(false));
    let mut predictors = Vec::new();
    let mut deleters = Vec::new();
    let mut waiters = Vec::new();
    for name in &names {
        let name = name.clone();
        {
            let server = Arc::clone(&server);
            let barrier = Arc::clone(&barrier);
            let done = Arc::clone(&done);
            let name = name.clone();
            predictors.push(thread::spawn(move || {
                let probe: Vec<f64> = (0..FEATURES).map(|i| 0.25 * (i as f64 + 1.0)).collect();
                let mut latencies = Vec::new();
                barrier.wait();
                while !done.load(Ordering::Acquire) {
                    let t0 = Instant::now();
                    server.predict(&name, &probe).expect("predict");
                    latencies.push(t0.elapsed().as_nanos() as u64);
                }
                latencies
            }));
        }
        let (tickets_tx, tickets_rx) = channel();
        {
            let server = Arc::clone(&server);
            let barrier = Arc::clone(&barrier);
            let done = Arc::clone(&done);
            let name = name.clone();
            deleters.push(thread::spawn(move || {
                barrier.wait();
                let mut issued = 0u64;
                while !done.load(Ordering::Acquire) && issued < DELETE_BUDGET {
                    let ticket = server.delete(&name, &[issued]).expect("delete");
                    let _ = tickets_tx.send((Instant::now(), ticket));
                    issued += 1;
                    if issued.is_multiple_of(4) {
                        // Pace arrivals so the coalescing window has
                        // something to fold (a burst every ~300 µs).
                        thread::sleep(Duration::from_micros(300));
                    }
                }
                let _ = server.flush(&name);
            }));
        }
        waiters.push(thread::spawn(move || {
            let mut latencies = Vec::new();
            let mut rows = 0u64;
            for (sent, ticket) in tickets_rx {
                let reply = ticket.wait().expect("ticket");
                latencies.push(sent.elapsed().as_nanos() as u64);
                rows += reply.applied as u64;
            }
            (latencies, rows)
        }));
    }

    barrier.wait();
    let t0 = Instant::now();
    thread::sleep(Duration::from_secs_f64(seconds));
    done.store(true, Ordering::Release);
    let mut predicts: Vec<u64> = Vec::new();
    for handle in predictors {
        predicts.extend(handle.join().expect("predictor"));
    }
    for handle in deleters {
        handle.join().expect("deleter");
    }
    let mut deletes: Vec<u64> = Vec::new();
    let mut rows_deleted = 0u64;
    for handle in waiters {
        let (latencies, rows) = handle.join().expect("waiter");
        deletes.extend(latencies);
        rows_deleted += rows;
    }
    let wall_seconds = t0.elapsed().as_secs_f64();

    let mut batches = 0u64;
    let mut decisions: HashMap<&'static str, u64> = HashMap::new();
    for name in &names {
        let stats = server.stats(name).expect("stats");
        batches += stats.epoch;
        for (method, count) in stats.decisions {
            *decisions.entry(method.name()).or_insert(0) += count;
        }
    }
    server.shutdown();
    predicts.sort_unstable();
    deletes.sort_unstable();
    CellResult {
        sessions,
        coalesce,
        wall_seconds,
        predicts,
        deletes,
        rows_deleted,
        batches,
        decisions,
    }
}

/// Predict round trips through the length-prefixed protocol over the
/// in-memory duplex (reader thread + responder included in the measured
/// path). Returns sorted per-request latencies in µs.
fn run_wire_section(rounds: u64) -> Vec<u64> {
    let server = Server::start(ServerConfig::default());
    server
        .register_session("wire", fit_session(0x7000))
        .expect("register");
    let ((mut client_w, mut client_r), (server_w, server_r)) = duplex();
    let connection = server.serve_connection(server_r, server_w);
    let probe: Vec<f64> = (0..FEATURES).map(|i| 0.1 * (i as f64 + 1.0)).collect();
    let mut latencies = Vec::with_capacity(rounds as usize);
    for id in 0..rounds {
        let t0 = Instant::now();
        let payload = encode_request(&RequestEnvelope {
            id,
            request: Request::Predict {
                session: "wire".to_string(),
                features: probe.clone(),
            },
        });
        write_frame(&mut client_w, &payload).expect("wire write");
        let frame = read_frame(&mut client_r).expect("wire read").expect("open");
        let envelope = decode_response(&frame).expect("wire decode");
        assert_eq!(envelope.id, id);
        assert!(matches!(envelope.response, Response::Predicted { .. }));
        latencies.push(t0.elapsed().as_nanos() as u64);
    }
    drop(client_w);
    connection.join();
    server.shutdown();
    latencies.sort_unstable();
    latencies
}

/// Civil date from the system clock (days-from-epoch → y-m-d).
fn today() -> String {
    let days = SystemTime::now()
        .duration_since(SystemTime::UNIX_EPOCH)
        .map(|d| d.as_secs() / 86_400)
        .unwrap_or(0) as i64;
    let z = days + 719_468;
    let era = z.div_euclid(146_097);
    let doe = z.rem_euclid(146_097);
    let yoe = (doe - doe / 1460 + doe / 36_524 - doe / 146_096) / 365;
    let year = yoe + era * 400;
    let doy = doe - (365 * yoe + yoe / 4 - yoe / 100);
    let mp = (5 * doy + 2) / 153;
    let day = doy - (153 * mp + 2) / 5 + 1;
    let month = if mp < 10 { mp + 3 } else { mp - 9 };
    let year = if month <= 2 { year + 1 } else { year };
    format!("{year:04}-{month:02}-{day:02}")
}

fn cell_json(cell: &CellResult) -> JsonValue {
    let mut predict = JsonValue::object();
    predict
        .push("count", cell.predicts.len())
        .push("p50_us", percentile_us(&cell.predicts, 50.0))
        .push("p99_us", percentile_us(&cell.predicts, 99.0))
        .push(
            "throughput_per_s",
            cell.predicts.len() as f64 / cell.wall_seconds,
        );
    let mut delete = JsonValue::object();
    delete
        .push("count", cell.deletes.len())
        .push("p50_us", percentile_us(&cell.deletes, 50.0))
        .push("p99_us", percentile_us(&cell.deletes, 99.0))
        .push("rows_deleted", cell.rows_deleted)
        .push("batches", cell.batches)
        .push(
            "rows_per_batch",
            if cell.batches == 0 {
                0.0
            } else {
                cell.rows_deleted as f64 / cell.batches as f64
            },
        );
    let mut decisions = JsonValue::object();
    let mut methods: Vec<_> = cell.decisions.iter().collect();
    methods.sort();
    for (method, count) in methods {
        decisions.push(method, *count);
    }
    let mut out = JsonValue::object();
    out.push("sessions", cell.sessions)
        .push("coalesce", cell.coalesce)
        .push("wall_seconds", cell.wall_seconds)
        .push("predict", predict)
        .push("delete", delete)
        .push("scheduler_decisions", decisions);
    out
}

fn main() -> ExitCode {
    let cli = match parse_args() {
        Ok(cli) => cli,
        Err(message) => {
            eprintln!("loadgen: {message}");
            return ExitCode::FAILURE;
        }
    };

    let mut cells = Vec::new();
    for &sessions in &cli.sessions {
        for &coalesce in &cli.modes {
            eprintln!(
                "loadgen: {sessions} session(s), coalesce={}, {}s ...",
                if coalesce { "on" } else { "off" },
                cli.seconds
            );
            cells.push(run_cell(sessions, coalesce, cli.seconds));
        }
    }
    let wire = run_wire_section(200);

    let mut environment = JsonValue::object();
    environment
        .push(
            "cpus_available",
            thread::available_parallelism().map_or(0, |n| n.get()),
        )
        .push("avx2_fma_detected", simd::available_levels().len() > 1)
        .push(
            "session_shape",
            format!("{SAMPLES_PER_SESSION}x{FEATURES} linear regression, single-row deletes"),
        )
        .push(
            "notes",
            "single-core shared container: all sessions, the applier thread and every \
             client thread share one CPU, so p99 latencies are dominated by scheduling \
             noise and absolute throughputs are a floor, not a capability. Delete \
             latency spans admission -> batch commit and therefore includes the 2 ms \
             coalescing window by design; compare the coalesce on/off rows per session \
             count, not across machines. Decision histograms come from the online \
             cost model (BaseL entries are the forced drift retrains).",
        );
    let mut commands = JsonValue::object();
    commands.push(
        "loadgen",
        "cargo run --release -p priu-bench --bin loadgen -- --sessions 1,4,16 --seconds 0.5",
    );
    let mut wire_json = JsonValue::object();
    wire_json
        .push("predict_round_trips", wire.len())
        .push("p50_us", percentile_us(&wire, 50.0))
        .push("p99_us", percentile_us(&wire, 99.0));

    let mut doc = JsonValue::object();
    doc.push("pr", 6i64)
        .push(
            "label",
            "deletion-as-a-service: multi-session server, coalescing planner, cost-model scheduler",
        )
        .push("date", cli.date.unwrap_or_else(today))
        .push("environment", environment)
        .push("commands", commands)
        .push(
            "grid",
            JsonValue::Array(cells.iter().map(cell_json).collect()),
        )
        .push("wire", wire_json);

    let rendered = doc.render();
    if let Err(err) = std::fs::write(&cli.out, rendered + "\n") {
        eprintln!("loadgen: writing {}: {err}", cli.out);
        return ExitCode::FAILURE;
    }
    for cell in &cells {
        eprintln!(
            "loadgen: sessions={:2} coalesce={:3} predicts={:6} (p50 {:5.0}us p99 {:6.0}us) \
             deletes={:4} batches={:3} rows/batch={:4.1}",
            cell.sessions,
            if cell.coalesce { "on" } else { "off" },
            cell.predicts.len(),
            percentile_us(&cell.predicts, 50.0),
            percentile_us(&cell.predicts, 99.0),
            cell.deletes.len(),
            cell.batches,
            if cell.batches == 0 {
                0.0
            } else {
                cell.rows_deleted as f64 / cell.batches as f64
            },
        );
    }
    eprintln!("loadgen: wrote {}", cli.out);
    ExitCode::SUCCESS
}
