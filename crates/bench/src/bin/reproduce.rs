//! `reproduce` — regenerates every table and figure of the PrIU paper's
//! evaluation section on the synthetic dataset analogues.
//!
//! Usage:
//!
//! ```text
//! reproduce [EXPERIMENT ...] [--scale S] [--no-influence] [--json]
//!
//! EXPERIMENT ∈ {table1, table2, table3, table4,
//!               fig1a, fig1b, fig2, fig3a, fig3b, fig3c, fig4, all}
//! ```
//!
//! `--scale` multiplies every configuration's sample count and iteration
//! count (default 1.0 — the catalog defaults). `--json` additionally prints
//! machine-readable rows.

use std::env;
use std::process::ExitCode;

use priu_bench::report::{fmt_seconds, render_table, to_json_array};
use priu_bench::runner::{
    default_deletion_rates, fig1_linear, fig2_and_3_logistic, fig3c_large_feature_space,
    fig4_repeated, table1, table2, table3_memory, table4_accuracy, ExperimentOptions,
};
use priu_bench::FigureRow;
use priu_data::catalog::DatasetCatalog;

struct Cli {
    experiments: Vec<String>,
    options: ExperimentOptions,
    json: bool,
}

fn parse_args() -> Result<Cli, String> {
    let mut experiments = Vec::new();
    let mut options = ExperimentOptions::default();
    let mut json = false;
    let mut args = env::args().skip(1);
    while let Some(arg) = args.next() {
        match arg.as_str() {
            "--scale" => {
                let value = args.next().ok_or("--scale needs a value")?;
                options.scale = value
                    .parse::<f64>()
                    .map_err(|_| format!("invalid scale '{value}'"))?;
                if options.scale <= 0.0 {
                    return Err("--scale must be positive".to_string());
                }
            }
            "--no-influence" => options.include_influence = false,
            "--seed" => {
                let value = args.next().ok_or("--seed needs a value")?;
                options.seed = value
                    .parse::<u64>()
                    .map_err(|_| format!("invalid seed '{value}'"))?;
            }
            "--json" => json = true,
            "--help" | "-h" => {
                experiments.push("help".to_string());
            }
            other if other.starts_with("--") => {
                return Err(format!("unknown flag '{other}'"));
            }
            other => experiments.push(other.to_lowercase()),
        }
    }
    if experiments.is_empty() {
        experiments.push("all".to_string());
    }
    Ok(Cli {
        experiments,
        options,
        json,
    })
}

fn print_figure_rows(title: &str, rows: &[FigureRow], json: bool) {
    println!("\n== {title} ==");
    let text = render_table(
        &[
            "dataset",
            "deletion rate",
            "method",
            "update time",
            "quality",
            "distance",
            "similarity",
            "speedup vs BaseL",
        ],
        rows,
        |r| {
            let basel = rows
                .iter()
                .find(|b| {
                    b.method == "BaseL"
                        && b.dataset == r.dataset
                        && (b.deletion_rate - r.deletion_rate).abs() < 1e-12
                })
                .map(|b| b.update_seconds)
                .unwrap_or(f64::NAN);
            vec![
                r.dataset.clone(),
                format!("{:.4}%", r.deletion_rate * 100.0),
                r.method.clone(),
                fmt_seconds(r.update_seconds),
                format!("{:.4}", r.quality),
                format!("{:.4}", r.distance),
                format!("{:.4}", r.similarity),
                if r.method == "BaseL" {
                    "1.00x".to_string()
                } else {
                    format!("{:.2}x", r.speedup_over(basel))
                },
            ]
        },
    );
    print!("{text}");
    if json {
        println!("{}", to_json_array(rows));
    }
}

fn run(cli: &Cli) {
    let options = cli.options;
    let rates = default_deletion_rates();
    let wants = |name: &str| {
        cli.experiments.iter().any(|e| e == name) || cli.experiments.iter().any(|e| e == "all")
    };

    if cli.experiments.iter().any(|e| e == "help") {
        println!(
            "usage: reproduce [table1 table2 table3 table4 fig1a fig1b fig2 fig3a fig3b fig3c fig4 | all] \
             [--scale S] [--seed N] [--no-influence] [--json]"
        );
        return;
    }

    println!("PrIU reproduction harness (scale {:.2})", options.scale);

    if wants("table1") {
        println!("\n== Table 1: dataset analogues ==");
        let rows = table1(&options);
        print!(
            "{}",
            render_table(
                &["name", "# features", "# classes", "# samples", "sparse"],
                &rows,
                |r| vec![
                    r.0.clone(),
                    r.1.to_string(),
                    r.2.to_string(),
                    r.3.to_string(),
                    r.4.to_string()
                ],
            )
        );
    }
    if wants("table2") {
        println!("\n== Table 2: hyperparameters ==");
        let rows = table2(&options);
        print!(
            "{}",
            render_table(
                &[
                    "name",
                    "mini-batch",
                    "# iterations",
                    "learning rate",
                    "lambda"
                ],
                &rows,
                |r| vec![
                    r.0.clone(),
                    r.1.to_string(),
                    r.2.to_string(),
                    format!("{:e}", r.3),
                    format!("{:e}", r.4)
                ],
            )
        );
    }
    if wants("fig1a") {
        let rows = fig1_linear(&DatasetCatalog::sgemm_original(), &rates, &options);
        print_figure_rows(
            "Figure 1a: SGEMM (original), linear regression",
            &rows,
            cli.json,
        );
    }
    if wants("fig1b") {
        let rows = fig1_linear(&DatasetCatalog::sgemm_extended(), &rates, &options);
        print_figure_rows(
            "Figure 1b: SGEMM (extended), linear regression",
            &rows,
            cli.json,
        );
    }
    if wants("fig2") {
        for spec in [
            DatasetCatalog::cov_small(),
            DatasetCatalog::cov_large1(),
            DatasetCatalog::cov_large2(),
        ] {
            let rows = fig2_and_3_logistic(&spec, &rates, &options);
            print_figure_rows(
                &format!("Figure 2: {} (multinomial logistic regression)", spec.name),
                &rows,
                cli.json,
            );
        }
    }
    if wants("fig3a") {
        let rows = fig2_and_3_logistic(&DatasetCatalog::heartbeat(), &rates, &options);
        print_figure_rows("Figure 3a: Heartbeat", &rows, cli.json);
    }
    if wants("fig3b") {
        let rows = fig2_and_3_logistic(&DatasetCatalog::higgs(), &rates, &options);
        print_figure_rows("Figure 3b: HIGGS", &rows, cli.json);
    }
    if wants("fig3c") {
        let rows = fig3c_large_feature_space(
            &DatasetCatalog::rcv1(),
            &DatasetCatalog::cifar10(),
            &options,
        );
        print_figure_rows(
            "Figure 3c: RCV1 and cifar10 (deletion rate 0.1%)",
            &rows,
            cli.json,
        );
    }
    if wants("fig4") {
        let specs = [
            DatasetCatalog::cov_extended(),
            DatasetCatalog::higgs_extended(),
            DatasetCatalog::heartbeat_extended(),
        ];
        let rows = fig4_repeated(&specs, &options);
        println!("\n== Figure 4: repeatedly removing 10 subsets (0.1% each) ==");
        print!(
            "{}",
            render_table(
                &["dataset", "method", "# subsets", "total time"],
                &rows,
                |r| vec![
                    r.dataset.clone(),
                    r.method.clone(),
                    r.num_subsets.to_string(),
                    fmt_seconds(r.total_seconds)
                ],
            )
        );
        if cli.json {
            println!("{}", to_json_array(&rows));
        }
    }
    if wants("table3") {
        let specs = [
            DatasetCatalog::cov_small(),
            DatasetCatalog::cov_large1(),
            DatasetCatalog::cov_large2(),
            DatasetCatalog::higgs(),
            DatasetCatalog::sgemm_original(),
            DatasetCatalog::sgemm_extended(),
            DatasetCatalog::heartbeat(),
            DatasetCatalog::rcv1(),
            DatasetCatalog::cifar10(),
        ];
        let rows = table3_memory(&specs, &options);
        println!("\n== Table 3: provenance memory consumption ==");
        print!(
            "{}",
            render_table(
                &[
                    "dataset",
                    "BaseL working set (MiB)",
                    "provenance (MiB)",
                    "ratio"
                ],
                &rows,
                |r| vec![
                    r.dataset.clone(),
                    format!("{:.2}", r.basel_mib),
                    format!("{:.2}", r.provenance_mib),
                    format!("{:.2}x", r.ratio)
                ],
            )
        );
        if cli.json {
            println!("{}", to_json_array(&rows));
        }
    }
    if wants("table4") {
        let specs = [
            DatasetCatalog::cov_small(),
            DatasetCatalog::cov_large1(),
            DatasetCatalog::cov_large2(),
            DatasetCatalog::higgs(),
            DatasetCatalog::heartbeat(),
            DatasetCatalog::sgemm_original(),
            DatasetCatalog::sgemm_extended(),
        ];
        let rows = table4_accuracy(&specs, &options);
        println!("\n== Table 4: accuracy and similarity at deletion rate 20% ==");
        print!(
            "{}",
            render_table(
                &[
                    "dataset",
                    "BaseL=PrIU quality",
                    "PrIU quality",
                    "INFL quality",
                    "PrIU dist",
                    "INFL dist",
                    "PrIU sim",
                    "INFL sim",
                    "PrIU sign flips",
                ],
                &rows,
                |r| vec![
                    r.dataset.clone(),
                    format!("{:.4}", r.basel_quality),
                    format!("{:.4}", r.priu_quality),
                    format!("{:.4}", r.infl_quality),
                    format!("{:.4}", r.priu_distance),
                    format!("{:.4}", r.infl_distance),
                    format!("{:.4}", r.priu_similarity),
                    format!("{:.4}", r.infl_similarity),
                    r.priu_sign_flips.to_string(),
                ],
            )
        );
        if cli.json {
            println!("{}", to_json_array(&rows));
        }
    }
}

fn main() -> ExitCode {
    match parse_args() {
        Ok(cli) => {
            run(&cli);
            ExitCode::SUCCESS
        }
        Err(message) => {
            eprintln!("error: {message}");
            ExitCode::FAILURE
        }
    }
}
