//! # priu-bench
//!
//! The benchmark harness of the PrIU reproduction: shared experiment runners
//! used both by the `reproduce` binary (which regenerates every table and
//! figure of the paper's §6) and by the Criterion micro-benches.
//!
//! Each experiment follows the paper's protocol:
//!
//! 1. generate the dataset analogue and split it 90% / 10% into training and
//!    validation sets;
//! 2. *cleaning scenario* (Figures 1-3, Tables 3-4): inject dirty samples at
//!    the requested deletion rate by rescaling, train the initial model on
//!    the dirtied training set (provenance capture happens here, offline),
//!    then remove exactly the dirty samples with each method and record the
//!    online update time plus model-quality metrics;
//! 3. *repeated-deletion scenario* (Figure 4): train once on the extended
//!    dataset, then remove ten different random subsets and compare the
//!    cumulative update time of PrIU/PrIU-opt against retraining each time.

#![warn(missing_docs)]
#![warn(rust_2018_idioms)]

pub mod report;
pub mod runner;

pub use report::{FigureRow, RepeatedRow, Table3Row, Table4Row};
pub use runner::{
    default_deletion_rates, fig1_linear, fig2_and_3_logistic, fig3c_large_feature_space,
    fig4_repeated, table1, table2, table3_memory, table4_accuracy, ExperimentOptions,
};
