//! Result-row types and plain-text table rendering for the reproduction
//! harness.

/// One point of an update-time figure (Figures 1-3): a (dataset, deletion
/// rate, method) triple with its online update time and model quality.
#[derive(Debug, Clone)]
pub struct FigureRow {
    /// Dataset / configuration name (paper naming).
    pub dataset: String,
    /// Deletion rate (fraction of training samples removed).
    pub deletion_rate: f64,
    /// Method name (`BaseL`, `PrIU`, `PrIU-opt`, `Closed-form`, `INFL`).
    pub method: String,
    /// Online update time in seconds.
    pub update_seconds: f64,
    /// Validation accuracy (classification) or validation MSE (regression).
    pub quality: f64,
    /// L2 distance of the parameters to the BaseL (retrained) model.
    pub distance: f64,
    /// Cosine similarity of the parameters to the BaseL model.
    pub similarity: f64,
}

impl FigureRow {
    /// Speed-up of this row relative to a BaseL time.
    pub fn speedup_over(&self, basel_seconds: f64) -> f64 {
        if self.update_seconds > 0.0 {
            basel_seconds / self.update_seconds
        } else {
            f64::INFINITY
        }
    }
}

/// One row of the repeated-deletion experiment (Figure 4).
#[derive(Debug, Clone)]
pub struct RepeatedRow {
    /// Dataset name.
    pub dataset: String,
    /// Method name.
    pub method: String,
    /// Number of removed subsets.
    pub num_subsets: usize,
    /// Total time to process all subsets, in seconds.
    pub total_seconds: f64,
}

/// One row of the memory-consumption table (Table 3).
#[derive(Debug, Clone)]
pub struct Table3Row {
    /// Dataset / configuration name.
    pub dataset: String,
    /// Approximate working-set of BaseL (the dataset itself), in MiB.
    pub basel_mib: f64,
    /// Captured provenance of PrIU / PrIU-opt, in MiB.
    pub provenance_mib: f64,
    /// Ratio provenance / BaseL.
    pub ratio: f64,
}

/// One row of the accuracy / similarity comparison (Table 4, deletion rate
/// 0.2).
#[derive(Debug, Clone)]
pub struct Table4Row {
    /// Dataset / configuration name.
    pub dataset: String,
    /// Validation quality of the BaseL (retrained) model (accuracy or MSE).
    pub basel_quality: f64,
    /// Validation quality of the PrIU / PrIU-opt model.
    pub priu_quality: f64,
    /// Validation quality of the INFL model (NaN when INFL was skipped).
    pub infl_quality: f64,
    /// L2 distance PrIU vs BaseL.
    pub priu_distance: f64,
    /// L2 distance INFL vs BaseL.
    pub infl_distance: f64,
    /// Cosine similarity PrIU vs BaseL.
    pub priu_similarity: f64,
    /// Cosine similarity INFL vs BaseL.
    pub infl_similarity: f64,
    /// Sign flips of PrIU vs BaseL (Q4 fine-grained analysis).
    pub priu_sign_flips: usize,
}

/// Minimal JSON encoding for the report rows (offline stand-in for
/// `serde_json`: the workspace builds without network access). Non-finite
/// numbers encode as `null`, matching what lenient JSON consumers expect.
pub trait JsonRow {
    /// This row as a JSON object.
    fn to_json(&self) -> String;
}

/// Encodes a float as a JSON number. Non-finite timings (`NaN` from a 0/0
/// ratio, `inf` from a zero-duration divisor) are not representable in
/// JSON; they encode as `null` so the emitted document always parses.
pub fn json_f64(v: f64) -> String {
    if v.is_finite() {
        let mut s = format!("{v}");
        if !s.contains('.') && !s.contains('e') {
            s.push_str(".0");
        }
        s
    } else {
        "null".to_string()
    }
}

/// Encodes a string as a JSON string literal, escaping quotes, backslashes
/// and control characters — dataset and method names flow into reports
/// verbatim, so the encoder must never trust them to be JSON-clean.
pub fn json_str(s: &str) -> String {
    let mut out = String::with_capacity(s.len() + 2);
    out.push('"');
    for c in s.chars() {
        match c {
            '"' => out.push_str("\\\""),
            '\\' => out.push_str("\\\\"),
            '\n' => out.push_str("\\n"),
            '\r' => out.push_str("\\r"),
            '\t' => out.push_str("\\t"),
            c if (c as u32) < 0x20 => out.push_str(&format!("\\u{:04x}", c as u32)),
            c => out.push(c),
        }
    }
    out.push('"');
    out
}

/// A dynamically-assembled JSON document for nested reports (the loadgen's
/// `BENCH_6.json`-style output: environment block, per-configuration
/// latency objects, decision histograms), sharing the escaping and
/// non-finite rules of the flat row encoders. Object members keep
/// insertion order, so rendered documents are deterministic.
#[derive(Debug, Clone, PartialEq)]
pub enum JsonValue {
    /// `null`.
    Null,
    /// `true` / `false`.
    Bool(bool),
    /// An integer (serialised without a decimal point).
    Int(i64),
    /// A float (non-finite values render as `null`).
    Float(f64),
    /// A string (escaped on render).
    Str(String),
    /// An array of values.
    Array(Vec<JsonValue>),
    /// An object; members render in insertion order.
    Object(Vec<(String, JsonValue)>),
}

impl JsonValue {
    /// An empty object, ready for [`JsonValue::push`].
    pub fn object() -> Self {
        JsonValue::Object(Vec::new())
    }

    /// Appends a member to an object (panics on non-objects — builder
    /// misuse, not data-dependent).
    pub fn push(&mut self, key: &str, value: impl Into<JsonValue>) -> &mut Self {
        match self {
            JsonValue::Object(members) => members.push((key.to_string(), value.into())),
            _ => panic!("JsonValue::push called on a non-object"),
        }
        self
    }

    /// Renders the value as compact JSON text.
    pub fn render(&self) -> String {
        let mut out = String::new();
        self.render_into(&mut out);
        out
    }

    fn render_into(&self, out: &mut String) {
        match self {
            JsonValue::Null => out.push_str("null"),
            JsonValue::Bool(b) => out.push_str(if *b { "true" } else { "false" }),
            JsonValue::Int(i) => out.push_str(&i.to_string()),
            JsonValue::Float(v) => out.push_str(&json_f64(*v)),
            JsonValue::Str(s) => out.push_str(&json_str(s)),
            JsonValue::Array(items) => {
                out.push('[');
                for (i, item) in items.iter().enumerate() {
                    if i > 0 {
                        out.push(',');
                    }
                    item.render_into(out);
                }
                out.push(']');
            }
            JsonValue::Object(members) => {
                out.push('{');
                for (i, (key, value)) in members.iter().enumerate() {
                    if i > 0 {
                        out.push(',');
                    }
                    out.push_str(&json_str(key));
                    out.push(':');
                    value.render_into(out);
                }
                out.push('}');
            }
        }
    }
}

impl From<bool> for JsonValue {
    fn from(b: bool) -> Self {
        JsonValue::Bool(b)
    }
}

impl From<i64> for JsonValue {
    fn from(i: i64) -> Self {
        JsonValue::Int(i)
    }
}

impl From<usize> for JsonValue {
    fn from(i: usize) -> Self {
        JsonValue::Int(i64::try_from(i).expect("count exceeds i64::MAX"))
    }
}

impl From<u64> for JsonValue {
    fn from(i: u64) -> Self {
        JsonValue::Int(i64::try_from(i).expect("count exceeds i64::MAX"))
    }
}

impl From<f64> for JsonValue {
    fn from(v: f64) -> Self {
        JsonValue::Float(v)
    }
}

impl From<&str> for JsonValue {
    fn from(s: &str) -> Self {
        JsonValue::Str(s.to_string())
    }
}

impl From<String> for JsonValue {
    fn from(s: String) -> Self {
        JsonValue::Str(s)
    }
}

impl<T: Into<JsonValue>> From<Vec<T>> for JsonValue {
    fn from(items: Vec<T>) -> Self {
        JsonValue::Array(items.into_iter().map(Into::into).collect())
    }
}

impl JsonRow for FigureRow {
    fn to_json(&self) -> String {
        format!(
            "{{\"dataset\":{},\"deletion_rate\":{},\"method\":{},\"update_seconds\":{},\"quality\":{},\"distance\":{},\"similarity\":{}}}",
            json_str(&self.dataset),
            json_f64(self.deletion_rate),
            json_str(&self.method),
            json_f64(self.update_seconds),
            json_f64(self.quality),
            json_f64(self.distance),
            json_f64(self.similarity),
        )
    }
}

impl JsonRow for RepeatedRow {
    fn to_json(&self) -> String {
        format!(
            "{{\"dataset\":{},\"method\":{},\"num_subsets\":{},\"total_seconds\":{}}}",
            json_str(&self.dataset),
            json_str(&self.method),
            self.num_subsets,
            json_f64(self.total_seconds),
        )
    }
}

impl JsonRow for Table3Row {
    fn to_json(&self) -> String {
        format!(
            "{{\"dataset\":{},\"basel_mib\":{},\"provenance_mib\":{},\"ratio\":{}}}",
            json_str(&self.dataset),
            json_f64(self.basel_mib),
            json_f64(self.provenance_mib),
            json_f64(self.ratio),
        )
    }
}

impl JsonRow for Table4Row {
    fn to_json(&self) -> String {
        format!(
            "{{\"dataset\":{},\"basel_quality\":{},\"priu_quality\":{},\"infl_quality\":{},\"priu_distance\":{},\"infl_distance\":{},\"priu_similarity\":{},\"infl_similarity\":{},\"priu_sign_flips\":{}}}",
            json_str(&self.dataset),
            json_f64(self.basel_quality),
            json_f64(self.priu_quality),
            json_f64(self.infl_quality),
            json_f64(self.priu_distance),
            json_f64(self.infl_distance),
            json_f64(self.priu_similarity),
            json_f64(self.infl_similarity),
            self.priu_sign_flips,
        )
    }
}

/// Encodes a slice of rows as a JSON array.
pub fn to_json_array<T: JsonRow>(rows: &[T]) -> String {
    let items: Vec<String> = rows.iter().map(JsonRow::to_json).collect();
    format!("[{}]", items.join(","))
}

/// Renders a slice of serialisable rows as an aligned plain-text table with
/// the given column headers and per-row cell extractor.
pub fn render_table<T>(headers: &[&str], rows: &[T], cells: impl Fn(&T) -> Vec<String>) -> String {
    let mut table: Vec<Vec<String>> = vec![headers.iter().map(|h| h.to_string()).collect()];
    for row in rows {
        table.push(cells(row));
    }
    let cols = headers.len();
    let mut widths = vec![0usize; cols];
    for row in &table {
        for (i, cell) in row.iter().enumerate() {
            widths[i] = widths[i].max(cell.len());
        }
    }
    let mut out = String::new();
    for (r, row) in table.iter().enumerate() {
        for (i, cell) in row.iter().enumerate() {
            out.push_str(&format!("{:<width$}  ", cell, width = widths[i]));
        }
        out.push('\n');
        if r == 0 {
            for (i, w) in widths.iter().enumerate() {
                out.push_str(&"-".repeat(*w));
                if i + 1 < cols {
                    out.push_str("  ");
                }
            }
            out.push('\n');
        }
    }
    out
}

/// Formats seconds with adaptive precision.
pub fn fmt_seconds(s: f64) -> String {
    if s < 0.001 {
        format!("{:.1}us", s * 1e6)
    } else if s < 1.0 {
        format!("{:.2}ms", s * 1e3)
    } else {
        format!("{s:.3}s")
    }
}

#[cfg(test)]
mod tests {
    use super::*;

    #[test]
    fn speedup_is_relative_to_basel() {
        let row = FigureRow {
            dataset: "x".into(),
            deletion_rate: 0.01,
            method: "PrIU".into(),
            update_seconds: 0.5,
            quality: 0.9,
            distance: 0.0,
            similarity: 1.0,
        };
        assert_eq!(row.speedup_over(5.0), 10.0);
        let zero = FigureRow {
            update_seconds: 0.0,
            ..row
        };
        assert!(zero.speedup_over(5.0).is_infinite());
    }

    #[test]
    fn render_table_aligns_columns() {
        let rows = vec![("a", 1.0), ("longer", 2.5)];
        let text = render_table(&["name", "value"], &rows, |r| {
            vec![r.0.to_string(), format!("{:.1}", r.1)]
        });
        assert!(text.contains("name"));
        assert!(text.contains("longer"));
        assert!(text.lines().count() >= 4);
        // Header separator line present.
        assert!(text.lines().nth(1).unwrap().starts_with('-'));
    }

    #[test]
    fn seconds_formatting_adapts_to_magnitude() {
        assert!(fmt_seconds(0.0000005).ends_with("us"));
        assert!(fmt_seconds(0.005).ends_with("ms"));
        assert!(fmt_seconds(2.0).ends_with('s'));
    }

    #[test]
    fn json_rows_encode_valid_objects() {
        let row = FigureRow {
            dataset: "SGEMM \"ext\"".into(),
            deletion_rate: 0.01,
            method: "PrIU".into(),
            update_seconds: 0.5,
            quality: f64::NAN,
            distance: 2.0,
            similarity: 1.0,
        };
        let json = row.to_json();
        assert!(json.starts_with('{') && json.ends_with('}'));
        assert!(json.contains("\"dataset\":\"SGEMM \\\"ext\\\"\""));
        assert!(json.contains("\"quality\":null"));
        assert!(json.contains("\"distance\":2.0"));

        let arr = to_json_array(&[row.clone(), row]);
        assert!(arr.starts_with('[') && arr.ends_with(']'));
        assert_eq!(arr.matches("\"method\":\"PrIU\"").count(), 2);
        assert!(to_json_array::<FigureRow>(&[]).eq("[]"));
    }

    #[test]
    fn strings_escape_every_hostile_character() {
        assert_eq!(json_str("plain"), "\"plain\"");
        assert_eq!(json_str("a\"b"), "\"a\\\"b\"");
        assert_eq!(json_str("a\\b"), "\"a\\\\b\"");
        assert_eq!(json_str("a\nb\rc\td"), "\"a\\nb\\rc\\td\"");
        // Other control characters take the \u form.
        assert_eq!(json_str("\u{0}x\u{1f}"), "\"\\u0000x\\u001f\"");
        // Non-ASCII passes through unescaped (JSON is UTF-8).
        assert_eq!(json_str("μ-örtchen"), "\"μ-örtchen\"");
    }

    #[test]
    fn non_finite_floats_encode_as_null_everywhere() {
        for bad in [f64::NAN, f64::INFINITY, f64::NEG_INFINITY] {
            assert_eq!(json_f64(bad), "null");
            assert_eq!(JsonValue::Float(bad).render(), "null");
        }
        // Finite values stay numbers, integral ones gaining a decimal
        // point so consumers parse them as floats.
        assert_eq!(json_f64(5.0), "5.0");
        assert_eq!(json_f64(-0.25), "-0.25");
        assert_eq!(json_f64(3.5e-5), "0.000035");
        // Display never emits exponent notation, so huge magnitudes render
        // as long plain decimals — still valid JSON numbers.
        assert!(json_f64(1e300).parse::<f64>().is_ok());

        // Rows with non-finite timings still render parseable objects.
        let row = RepeatedRow {
            dataset: "d".into(),
            method: "PrIU".into(),
            num_subsets: 3,
            total_seconds: f64::INFINITY,
        };
        assert!(row.to_json().contains("\"total_seconds\":null"));
        let t3 = Table3Row {
            dataset: "line\nbreak".into(),
            basel_mib: f64::NAN,
            provenance_mib: 1.5,
            ratio: f64::NAN,
        };
        let json = t3.to_json();
        assert!(json.contains("\"dataset\":\"line\\nbreak\""));
        assert!(json.contains("\"basel_mib\":null"));
        assert!(json.contains("\"ratio\":null"));
        let t4 = Table4Row {
            dataset: "d".into(),
            basel_quality: 0.9,
            priu_quality: 0.9,
            infl_quality: f64::NAN,
            priu_distance: 0.0,
            infl_distance: f64::NAN,
            priu_similarity: 1.0,
            infl_similarity: f64::NAN,
            priu_sign_flips: 0,
        };
        assert_eq!(t4.to_json().matches("null").count(), 3);
    }

    #[test]
    fn json_value_builds_nested_documents() {
        let mut doc = JsonValue::object();
        doc.push("label", "loadgen \"smoke\"");
        doc.push("sessions", 4usize);
        doc.push("p99_seconds", 0.002);
        doc.push("bad_timing", f64::NAN);
        doc.push("coalescing", true);
        doc.push("none", JsonValue::Null);
        let mut nested = JsonValue::object();
        nested.push("PrIU", 12usize);
        nested.push("BaseL", 0usize);
        doc.push("decisions", nested);
        doc.push("latencies", vec![0.5, 1.5]);
        let text = doc.render();
        assert_eq!(
            text,
            "{\"label\":\"loadgen \\\"smoke\\\"\",\"sessions\":4,\
             \"p99_seconds\":0.002,\"bad_timing\":null,\"coalescing\":true,\
             \"none\":null,\"decisions\":{\"PrIU\":12,\"BaseL\":0},\
             \"latencies\":[0.5,1.5]}"
        );
        // Members render in insertion order — rendering is deterministic.
        assert_eq!(text, doc.render());
    }

    #[test]
    #[should_panic(expected = "non-object")]
    fn json_value_push_rejects_non_objects() {
        JsonValue::Array(Vec::new()).push("k", 1i64);
    }
}
