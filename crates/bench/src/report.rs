//! Result-row types and plain-text table rendering for the reproduction
//! harness.

use serde::{Deserialize, Serialize};

/// One point of an update-time figure (Figures 1-3): a (dataset, deletion
/// rate, method) triple with its online update time and model quality.
#[derive(Debug, Clone, Serialize, Deserialize)]
pub struct FigureRow {
    /// Dataset / configuration name (paper naming).
    pub dataset: String,
    /// Deletion rate (fraction of training samples removed).
    pub deletion_rate: f64,
    /// Method name (`BaseL`, `PrIU`, `PrIU-opt`, `Closed-form`, `INFL`).
    pub method: String,
    /// Online update time in seconds.
    pub update_seconds: f64,
    /// Validation accuracy (classification) or validation MSE (regression).
    pub quality: f64,
    /// L2 distance of the parameters to the BaseL (retrained) model.
    pub distance: f64,
    /// Cosine similarity of the parameters to the BaseL model.
    pub similarity: f64,
}

impl FigureRow {
    /// Speed-up of this row relative to a BaseL time.
    pub fn speedup_over(&self, basel_seconds: f64) -> f64 {
        if self.update_seconds > 0.0 {
            basel_seconds / self.update_seconds
        } else {
            f64::INFINITY
        }
    }
}

/// One row of the repeated-deletion experiment (Figure 4).
#[derive(Debug, Clone, Serialize, Deserialize)]
pub struct RepeatedRow {
    /// Dataset name.
    pub dataset: String,
    /// Method name.
    pub method: String,
    /// Number of removed subsets.
    pub num_subsets: usize,
    /// Total time to process all subsets, in seconds.
    pub total_seconds: f64,
}

/// One row of the memory-consumption table (Table 3).
#[derive(Debug, Clone, Serialize, Deserialize)]
pub struct Table3Row {
    /// Dataset / configuration name.
    pub dataset: String,
    /// Approximate working-set of BaseL (the dataset itself), in MiB.
    pub basel_mib: f64,
    /// Captured provenance of PrIU / PrIU-opt, in MiB.
    pub provenance_mib: f64,
    /// Ratio provenance / BaseL.
    pub ratio: f64,
}

/// One row of the accuracy / similarity comparison (Table 4, deletion rate
/// 0.2).
#[derive(Debug, Clone, Serialize, Deserialize)]
pub struct Table4Row {
    /// Dataset / configuration name.
    pub dataset: String,
    /// Validation quality of the BaseL (retrained) model (accuracy or MSE).
    pub basel_quality: f64,
    /// Validation quality of the PrIU / PrIU-opt model.
    pub priu_quality: f64,
    /// Validation quality of the INFL model (NaN when INFL was skipped).
    pub infl_quality: f64,
    /// L2 distance PrIU vs BaseL.
    pub priu_distance: f64,
    /// L2 distance INFL vs BaseL.
    pub infl_distance: f64,
    /// Cosine similarity PrIU vs BaseL.
    pub priu_similarity: f64,
    /// Cosine similarity INFL vs BaseL.
    pub infl_similarity: f64,
    /// Sign flips of PrIU vs BaseL (Q4 fine-grained analysis).
    pub priu_sign_flips: usize,
}

/// Renders a slice of serialisable rows as an aligned plain-text table with
/// the given column headers and per-row cell extractor.
pub fn render_table<T>(headers: &[&str], rows: &[T], cells: impl Fn(&T) -> Vec<String>) -> String {
    let mut table: Vec<Vec<String>> = vec![headers.iter().map(|h| h.to_string()).collect()];
    for row in rows {
        table.push(cells(row));
    }
    let cols = headers.len();
    let mut widths = vec![0usize; cols];
    for row in &table {
        for (i, cell) in row.iter().enumerate() {
            widths[i] = widths[i].max(cell.len());
        }
    }
    let mut out = String::new();
    for (r, row) in table.iter().enumerate() {
        for (i, cell) in row.iter().enumerate() {
            out.push_str(&format!("{:<width$}  ", cell, width = widths[i]));
        }
        out.push('\n');
        if r == 0 {
            for (i, w) in widths.iter().enumerate() {
                out.push_str(&"-".repeat(*w));
                if i + 1 < cols {
                    out.push_str("  ");
                }
            }
            out.push('\n');
        }
    }
    out
}

/// Formats seconds with adaptive precision.
pub fn fmt_seconds(s: f64) -> String {
    if s < 0.001 {
        format!("{:.1}us", s * 1e6)
    } else if s < 1.0 {
        format!("{:.2}ms", s * 1e3)
    } else {
        format!("{s:.3}s")
    }
}

#[cfg(test)]
mod tests {
    use super::*;

    #[test]
    fn speedup_is_relative_to_basel() {
        let row = FigureRow {
            dataset: "x".into(),
            deletion_rate: 0.01,
            method: "PrIU".into(),
            update_seconds: 0.5,
            quality: 0.9,
            distance: 0.0,
            similarity: 1.0,
        };
        assert_eq!(row.speedup_over(5.0), 10.0);
        let zero = FigureRow {
            update_seconds: 0.0,
            ..row
        };
        assert!(zero.speedup_over(5.0).is_infinite());
    }

    #[test]
    fn render_table_aligns_columns() {
        let rows = vec![("a", 1.0), ("longer", 2.5)];
        let text = render_table(&["name", "value"], &rows, |r| {
            vec![r.0.to_string(), format!("{:.1}", r.1)]
        });
        assert!(text.contains("name"));
        assert!(text.contains("longer"));
        assert!(text.lines().count() >= 4);
        // Header separator line present.
        assert!(text.lines().nth(1).unwrap().starts_with('-'));
    }

    #[test]
    fn seconds_formatting_adapts_to_magnitude() {
        assert!(fmt_seconds(0.0000005).ends_with("us"));
        assert!(fmt_seconds(0.005).ends_with("ms"));
        assert!(fmt_seconds(2.0).ends_with('s'));
    }
}
