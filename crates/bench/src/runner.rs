//! Experiment runners regenerating the paper's tables and figures.
//!
//! Every runner programs against the unified [`DeletionEngine`] API: a
//! session is fitted once through [`SessionBuilder`] (the model family
//! follows the dataset's labels) and each update method is addressed through
//! the [`Method`] registry — there is no per-task dispatch left in this
//! module. The repeated-deletion scenario (Figure 4) uses the chained
//! `apply` API: each removal hands a shrunk session to the next arrival.

use priu_core::engine::{DeletionEngine, Method, Session, SessionBuilder};
use priu_core::metrics::{classification_accuracy, compare_models, mean_squared_error};
use priu_core::model::Model;
use priu_core::{CoreError, TrainerConfig};
use priu_data::catalog::{DatasetCatalog, DatasetSpec, GeneratorKind};
use priu_data::dataset::{DenseDataset, SparseDataset, TaskKind};
use priu_data::dirty::{inject_dirty_samples, random_subsets};

use crate::report::{FigureRow, RepeatedRow, Table3Row, Table4Row};

/// Global options of a reproduction run.
#[derive(Debug, Clone, Copy)]
pub struct ExperimentOptions {
    /// Scale factor applied to every spec's sample count and iteration count
    /// (1.0 = the catalog defaults documented in `EXPERIMENTS.md`).
    pub scale: f64,
    /// Whether to run the INFL baseline where it is feasible.
    pub include_influence: bool,
    /// Rescaling factor used to corrupt dirty samples.
    pub dirty_rescale: f64,
    /// Seed for dirty-sample selection and subset sampling.
    pub seed: u64,
}

impl Default for ExperimentOptions {
    fn default() -> Self {
        Self {
            scale: 1.0,
            include_influence: true,
            dirty_rescale: 10.0,
            seed: 7,
        }
    }
}

impl ExperimentOptions {
    /// Applies the scale factor to a spec.
    pub fn apply(&self, spec: &DatasetSpec) -> DatasetSpec {
        if (self.scale - 1.0).abs() < f64::EPSILON {
            spec.clone()
        } else {
            spec.scaled(self.scale)
        }
    }
}

/// The deletion rates swept by the paper's figures (0.01% to 20%).
pub fn default_deletion_rates() -> Vec<f64> {
    vec![0.0001, 0.001, 0.01, 0.05, 0.1, 0.2]
}

/// Maximum flattened parameter count for which the INFL baseline is run in
/// the figure sweeps (its Hessian is `params x params`); Table 4 overrides
/// this for the datasets the paper reports.
const INFL_FIGURE_PARAM_LIMIT: usize = 450;

fn trainer_config(spec: &DatasetSpec, options: &ExperimentOptions) -> TrainerConfig {
    // PrIU-opt capture materialises an m x m eigendecomposition per class;
    // the paper only uses PrIU (not PrIU-opt) for the very large feature
    // spaces, so skip the capture there.
    let capture_opt = spec.num_features <= 256 && !spec.is_sparse();
    let mut config = TrainerConfig::from_hyper(spec.hyper)
        .with_seed(options.seed ^ 0xA11CE)
        .with_opt_capture(capture_opt);
    if matches!(spec.kind, GeneratorKind::Regression { .. }) {
        // For linear regression the dirty samples carry very high leverage
        // (their features are rescaled), so a fixed low truncation rank can
        // violate the Theorem-6 retained-mass assumption at large deletion
        // rates; dense caching keeps the PrIU replay exact and is cheap for
        // the SGEMM-sized feature spaces.
        config = config.with_compression(priu_core::Compression::None);
    }
    config
}

fn fit_dense(dataset: DenseDataset, spec: &DatasetSpec, options: &ExperimentOptions) -> Session {
    SessionBuilder::dense(dataset, trainer_config(spec, options))
        .fit()
        .expect("training the initial model failed")
}

fn fit_sparse(dataset: SparseDataset, spec: &DatasetSpec, options: &ExperimentOptions) -> Session {
    SessionBuilder::sparse(dataset, trainer_config(spec, options))
        .fit()
        .expect("training the sparse model failed")
}

/// The methods a figure sweep runs for a session: everything the session
/// supports, filtered by the spec-level gates the paper applies (PrIU-opt
/// only up to medium feature spaces, INFL only while its Hessian stays
/// tractable).
fn figure_methods(
    session: &Session,
    spec: &DatasetSpec,
    options: &ExperimentOptions,
) -> Vec<Method> {
    session
        .supported_methods()
        .into_iter()
        .filter(|&method| match method {
            Method::PriuOpt => spec.num_features <= 256,
            Method::Influence => {
                options.include_influence && spec.num_parameters() <= INFL_FIGURE_PARAM_LIMIT
            }
            _ => true,
        })
        .collect()
}

fn split_dense(spec: &DatasetSpec, options: &ExperimentOptions) -> (DenseDataset, DenseDataset) {
    let generated = spec.generate();
    let dense = generated
        .as_dense()
        .expect("dense experiment requires a dense spec")
        .clone();
    let split = dense.split(0.9, options.seed ^ 0x5517);
    (split.train, split.validation)
}

fn quality(model: &Model, validation: &DenseDataset) -> f64 {
    match validation.task() {
        TaskKind::Regression => mean_squared_error(model, validation).unwrap_or(f64::NAN),
        _ => classification_accuracy(model, validation).unwrap_or(f64::NAN),
    }
}

fn figure_row(
    dataset: &str,
    rate: f64,
    method: &str,
    seconds: f64,
    model: &Model,
    basel: &Model,
    validation: &DenseDataset,
) -> FigureRow {
    let cmp = compare_models(basel, model).expect("models share kind and size");
    FigureRow {
        dataset: dataset.to_string(),
        deletion_rate: rate,
        method: method.to_string(),
        update_seconds: seconds,
        quality: quality(model, validation),
        distance: cmp.l2_distance,
        similarity: cmp.cosine_similarity,
    }
}

/// One figure sweep: inject dirty samples at each deletion rate, fit a
/// session on the dirtied training set, then remove exactly the dirty
/// samples with every applicable method. Shared by Figures 1-3 — the
/// session's `supported_methods` replaces the per-task dispatch the runner
/// used to hand-roll.
///
/// The per-rate sweeps are fully independent (each fits its own session on
/// its own dirtied copy), so they fan out across the persistent worker
/// pool via [`priu_linalg::par::run_tasks`]; rows come back in rate order
/// regardless of execution order. With `PRIU_THREADS=1` (the
/// timing-fidelity configuration) the tasks run inline sequentially,
/// exactly as before; with more threads the sweep trades per-point timing
/// isolation for wall-clock throughput — the produced models are bitwise
/// unaffected either way, because every kernel's computation tree is
/// thread-independent.
fn figure_sweep(spec: &DatasetSpec, rates: &[f64], options: &ExperimentOptions) -> Vec<FigureRow> {
    let spec = options.apply(spec);
    let (train, validation) = split_dense(&spec, options);
    if priu_linalg::par::current_threads() > 1 && rates.len() > 1 {
        // Make the fidelity trade-off visible at runtime, not only in docs:
        // concurrently timed sweeps contend for cores and their kernels run
        // inline on pool workers, so per-point update times are throughput
        // numbers, not isolated latencies.
        eprintln!(
            "note: {} sweep fans {} rates across {} threads; per-point update times \
             contend — set PRIU_THREADS=1 for timing-fidelity figures",
            spec.name,
            rates.len(),
            priu_linalg::par::current_threads()
        );
    }
    let rate_tasks: Vec<_> = rates
        .iter()
        .map(|&rate| {
            let (train, validation, spec) = (&train, &validation, &spec);
            move || -> Vec<FigureRow> {
                let mut rows = Vec::new();
                let injection =
                    inject_dirty_samples(train, rate, options.dirty_rescale, options.seed);
                let session = fit_dense(injection.dirty_dataset.clone(), spec, options);
                let removed = &injection.dirty_indices;

                let basel = session
                    .update(Method::Retrain, removed)
                    .expect("BaseL retraining failed");
                for method in figure_methods(&session, spec, options) {
                    let outcome = if method == Method::Retrain {
                        basel.clone()
                    } else {
                        match session.update(method, removed) {
                            Ok(outcome) => outcome,
                            // PrIU-opt can hit a singular incremental
                            // eigenproblem at extreme deletion rates; the
                            // paper simply omits those points. Any other
                            // failure is a real regression.
                            Err(CoreError::Linalg(error)) if method == Method::PriuOpt => {
                                eprintln!(
                                    "skipping {method} on {} at rate {rate}: {error}",
                                    spec.name
                                );
                                continue;
                            }
                            Err(error) => panic!("{method} update failed: {error}"),
                        }
                    };
                    rows.push(figure_row(
                        &spec.name,
                        rate,
                        method.name(),
                        outcome.duration.as_secs_f64(),
                        &outcome.model,
                        &basel.model,
                        validation,
                    ));
                }
                rows
            }
        })
        .collect();
    priu_linalg::par::run_tasks(rate_tasks)
        .into_iter()
        .flatten()
        .collect()
}

/// Figure 1 (a/b): update time for linear regression on the SGEMM analogue,
/// sweeping the deletion rate; methods BaseL, PrIU, PrIU-opt, Closed-form and
/// (optionally) INFL.
pub fn fig1_linear(
    spec: &DatasetSpec,
    rates: &[f64],
    options: &ExperimentOptions,
) -> Vec<FigureRow> {
    figure_sweep(spec, rates, options)
}

/// Figures 2 and 3a/3b: update time for (binary or multinomial) logistic
/// regression on a dense dataset, sweeping the deletion rate.
pub fn fig2_and_3_logistic(
    spec: &DatasetSpec,
    rates: &[f64],
    options: &ExperimentOptions,
) -> Vec<FigureRow> {
    figure_sweep(spec, rates, options)
}

/// Figure 3c: the extremely large feature spaces — RCV1 (sparse) and cifar10
/// (dense) — at deletion rate 0.1%, PrIU vs BaseL only.
pub fn fig3c_large_feature_space(
    sparse_spec: &DatasetSpec,
    dense_spec: &DatasetSpec,
    options: &ExperimentOptions,
) -> Vec<FigureRow> {
    let rate = 0.001;
    let mut rows = Vec::new();

    // Sparse: RCV1 analogue.
    let sparse_spec = options.apply(sparse_spec);
    let sparse: SparseDataset = sparse_spec
        .generate()
        .as_sparse()
        .expect("RCV1 spec must be sparse")
        .clone();
    let removed = random_subsets(sparse.num_samples(), rate, 1, options.seed)[0].clone();
    let session = fit_sparse(sparse, &sparse_spec, options);
    let basel = session
        .update(Method::Retrain, &removed)
        .expect("BaseL retraining failed");
    let priu = session
        .update(Method::Priu, &removed)
        .expect("PrIU update failed");
    for outcome in [&basel, &priu] {
        let cmp = compare_models(&basel.model, &outcome.model).expect("same kind");
        rows.push(FigureRow {
            dataset: sparse_spec.name.clone(),
            deletion_rate: rate,
            method: outcome.method.name().to_string(),
            update_seconds: outcome.duration.as_secs_f64(),
            quality: priu_core::metrics::sparse_classification_accuracy(
                &outcome.model,
                session.sparse_dataset().expect("sparse session"),
            )
            .unwrap_or(f64::NAN),
            distance: cmp.l2_distance,
            similarity: cmp.cosine_similarity,
        });
    }

    // Dense: cifar10 analogue (PrIU with randomized compression, no opt).
    let dense_spec = options.apply(dense_spec);
    let (train, validation) = split_dense(&dense_spec, options);
    let injection = inject_dirty_samples(&train, rate, options.dirty_rescale, options.seed);
    let session = fit_dense(injection.dirty_dataset, &dense_spec, options);
    let removed = &injection.dirty_indices;
    let basel = session
        .update(Method::Retrain, removed)
        .expect("BaseL retraining failed");
    let priu = session
        .update(Method::Priu, removed)
        .expect("PrIU update failed");
    for outcome in [&basel, &priu] {
        rows.push(figure_row(
            &dense_spec.name,
            rate,
            outcome.method.name(),
            outcome.duration.as_secs_f64(),
            &outcome.model,
            &basel.model,
            &validation,
        ));
    }
    rows
}

/// Figure 4: repeatedly removing ten random subsets (0.1% each) from the
/// extended datasets — cumulative update time of PrIU / PrIU-opt vs
/// retraining each time.
///
/// This is the chained-deletion scenario: every removal is consumed with
/// [`DeletionEngine::apply`], handing a session over the survivors (with
/// provenance shrunk accordingly) to the next arrival, so each subset is
/// drawn from — and indexed against — the *current* training set. When the
/// logistic PrIU-opt capture is dropped by the first `apply`, the chain
/// falls back to plain PrIU, which `supported_methods` makes discoverable.
pub fn fig4_repeated(specs: &[DatasetSpec], options: &ExperimentOptions) -> Vec<RepeatedRow> {
    let num_subsets = 10usize;
    let mut rows = Vec::new();
    for spec in specs {
        let spec = options.apply(spec);
        let (train, _validation) = split_dense(&spec, options);
        let session = fit_dense(train, &spec, options);
        let use_opt = spec.num_features <= 256 && session.supports(Method::PriuOpt);

        // Returns the cumulative online time plus the distinct methods the
        // chain actually ran, in first-use order. A logistic chain that
        // starts with PrIU-opt drops that capture on the first apply and
        // falls back to plain PrIU, and its label must say so.
        let chain_total =
            |mut chained: Session, prefer_opt: bool, retrain: bool| -> (f64, String) {
                let mut total = 0.0;
                let mut used: Vec<&'static str> = Vec::new();
                for k in 0..num_subsets {
                    let subset = random_subsets(
                        chained.num_samples(),
                        0.001,
                        1,
                        options.seed ^ 0xF16 ^ k as u64,
                    )[0]
                    .clone();
                    let method = if retrain {
                        Method::Retrain
                    } else if prefer_opt && chained.supports(Method::PriuOpt) {
                        Method::PriuOpt
                    } else {
                        Method::Priu
                    };
                    if !used.contains(&method.name()) {
                        used.push(method.name());
                    }
                    let step = chained
                        .apply(method, &subset)
                        .expect("chained deletion failed");
                    total += step.outcome.duration.as_secs_f64();
                    chained = step.session;
                }
                (total, used.join("→"))
            };

        let (basel_total, basel_label) = chain_total(session.clone(), false, true);
        let (priu_total, priu_label) = chain_total(session, use_opt, false);

        rows.push(RepeatedRow {
            dataset: spec.name.clone(),
            method: basel_label,
            num_subsets,
            total_seconds: basel_total,
        });
        rows.push(RepeatedRow {
            dataset: spec.name.clone(),
            method: priu_label,
            num_subsets,
            total_seconds: priu_total,
        });
    }
    rows
}

/// Table 1: the dataset summary (name, features, classes, samples) of the
/// scaled analogues.
pub fn table1(options: &ExperimentOptions) -> Vec<(String, usize, usize, usize, bool)> {
    DatasetCatalog::all()
        .iter()
        .map(|spec| {
            let s = options.apply(spec);
            (
                s.name.clone(),
                s.num_parameters() / s.num_classes().max(1),
                s.num_classes(),
                s.num_samples * s.repeat_copies.max(1),
                s.is_sparse(),
            )
        })
        .collect()
}

/// Table 2: the hyperparameters of every configuration.
pub fn table2(options: &ExperimentOptions) -> Vec<(String, usize, usize, f64, f64)> {
    DatasetCatalog::all()
        .iter()
        .map(|spec| {
            let s = options.apply(spec);
            (
                s.name.clone(),
                s.hyper.batch_size,
                s.hyper.num_iterations,
                s.hyper.learning_rate,
                s.hyper.regularization,
            )
        })
        .collect()
}

/// Table 3: memory consumption of the captured provenance vs the baseline's
/// working set, per configuration.
pub fn table3_memory(specs: &[DatasetSpec], options: &ExperimentOptions) -> Vec<Table3Row> {
    let mut rows = Vec::new();
    for spec in specs {
        let spec = options.apply(spec);
        let mib = |bytes: usize| bytes as f64 / (1024.0 * 1024.0);
        let (basel_bytes, prov_bytes) = if spec.is_sparse() {
            let sparse = spec.generate().as_sparse().unwrap().clone();
            let basel = sparse.x.nnz() * 16 + sparse.num_samples() * 8;
            let session = fit_sparse(sparse, &spec, options);
            (basel, session.provenance_bytes())
        } else {
            let (train, _) = split_dense(&spec, options);
            let basel = train.num_samples() * (train.num_features() + 1) * 8;
            let session = fit_dense(train, &spec, options);
            (basel, session.provenance_bytes())
        };
        rows.push(Table3Row {
            dataset: spec.name.clone(),
            basel_mib: mib(basel_bytes),
            provenance_mib: mib(prov_bytes),
            ratio: prov_bytes as f64 / basel_bytes.max(1) as f64,
        });
    }
    rows
}

/// Table 4: validation quality, parameter distance and cosine similarity of
/// PrIU/PrIU-opt vs INFL against BaseL at deletion rate 0.2.
pub fn table4_accuracy(specs: &[DatasetSpec], options: &ExperimentOptions) -> Vec<Table4Row> {
    let rate = 0.2;
    let mut rows = Vec::new();
    for spec in specs {
        let spec = options.apply(spec);
        let (train, validation) = split_dense(&spec, options);
        let injection = inject_dirty_samples(&train, rate, options.dirty_rescale, options.seed);
        let removed = &injection.dirty_indices;

        let session = fit_dense(injection.dirty_dataset.clone(), &spec, options);
        let basel = session
            .update(Method::Retrain, removed)
            .expect("BaseL retraining failed")
            .model;
        // Prefer PrIU-opt where captured, falling back to plain PrIU — the
        // same preference the paper's table applies.
        let priu = session
            .update(Method::PriuOpt, removed)
            .or_else(|_| session.update(Method::Priu, removed))
            .expect("PrIU update failed")
            .model;
        let infl = (options.include_influence && session.supports(Method::Influence)).then(|| {
            session
                .update(Method::Influence, removed)
                .expect("INFL update failed")
                .model
        });

        let priu_cmp = compare_models(&basel, &priu).expect("same kind");
        let (infl_quality, infl_distance, infl_similarity) = match &infl {
            Some(model) => {
                let cmp = compare_models(&basel, model).expect("same kind");
                (
                    quality(model, &validation),
                    cmp.l2_distance,
                    cmp.cosine_similarity,
                )
            }
            None => (f64::NAN, f64::NAN, f64::NAN),
        };
        rows.push(Table4Row {
            dataset: spec.name.clone(),
            basel_quality: quality(&basel, &validation),
            priu_quality: quality(&priu, &validation),
            infl_quality,
            priu_distance: priu_cmp.l2_distance,
            infl_distance,
            priu_similarity: priu_cmp.cosine_similarity,
            infl_similarity,
            priu_sign_flips: priu_cmp.drift.sign_flips,
        });
    }
    rows
}

#[cfg(test)]
mod tests {
    use super::*;

    fn tiny_options() -> ExperimentOptions {
        ExperimentOptions {
            scale: 0.01,
            include_influence: true,
            dirty_rescale: 10.0,
            seed: 3,
        }
    }

    #[test]
    fn tables_1_and_2_cover_the_whole_catalog() {
        let options = ExperimentOptions::default();
        assert_eq!(table1(&options).len(), 12);
        assert_eq!(table2(&options).len(), 12);
    }

    #[test]
    fn fig1_produces_rows_for_every_method_and_rate() {
        let rows = fig1_linear(
            &DatasetCatalog::sgemm_original(),
            &[0.01, 0.1],
            &tiny_options(),
        );
        // 5 methods × 2 rates.
        assert_eq!(rows.len(), 10);
        let basel: Vec<&FigureRow> = rows.iter().filter(|r| r.method == "BaseL").collect();
        assert_eq!(basel.len(), 2);
        // PrIU stays very close to BaseL on linear regression.
        for row in rows.iter().filter(|r| r.method == "PrIU") {
            assert!(row.similarity > 0.99, "similarity {}", row.similarity);
        }
    }

    #[test]
    fn fig2_produces_rows_for_a_multinomial_dataset() {
        let rows = fig2_and_3_logistic(&DatasetCatalog::cov_small(), &[0.05], &tiny_options());
        let methods: Vec<&str> = rows.iter().map(|r| r.method.as_str()).collect();
        assert!(methods.contains(&"BaseL"));
        assert!(methods.contains(&"PrIU"));
        assert!(methods.contains(&"PrIU-opt"));
        assert!(methods.contains(&"INFL"));
        // The engine knows closed-form is linear-only; no row may claim it.
        assert!(!methods.contains(&"Closed-form"));
        for row in &rows {
            assert!(row.update_seconds >= 0.0);
            assert!(row.quality.is_finite());
        }
    }

    #[test]
    fn fig4_chains_ten_subsets_per_method() {
        let rows = fig4_repeated(&[DatasetCatalog::higgs_extended()], &tiny_options());
        assert_eq!(rows.len(), 2);
        for row in &rows {
            assert_eq!(row.num_subsets, 10);
            assert!(row.total_seconds > 0.0);
        }
        assert_eq!(rows[0].method, "BaseL");
    }

    #[test]
    fn table3_reports_positive_memory() {
        let rows = table3_memory(&[DatasetCatalog::higgs()], &tiny_options());
        assert_eq!(rows.len(), 1);
        assert!(rows[0].provenance_mib > 0.0);
        assert!(rows[0].ratio > 0.0);
    }

    #[test]
    fn table4_compares_priu_and_infl() {
        let rows = table4_accuracy(&[DatasetCatalog::higgs()], &tiny_options());
        assert_eq!(rows.len(), 1);
        let row = &rows[0];
        assert!(row.priu_similarity > row.infl_similarity || row.infl_similarity.is_nan());
        assert!(row.priu_distance <= row.infl_distance || row.infl_distance.is_nan());
    }
}
