//! Ablation bench: the piecewise-linear interpolation of the logistic
//! non-linearity (§4.2). Measures the per-call cost of the interpolated
//! coefficients against the exact sigmoid for different grid resolutions —
//! the grid size trades the Theorem-4 error bound O((Δx)²) against nothing
//! at run time (coefficient lookup is O(1) regardless), which this bench
//! makes visible.

use std::time::Duration;

use criterion::{black_box, criterion_group, criterion_main, BenchmarkId, Criterion};
use priu_core::interpolation::PiecewiseLinearSigmoid;

fn bench_interpolation(c: &mut Criterion) {
    let inputs: Vec<f64> = (0..1024).map(|i| -15.0 + i as f64 * 0.03).collect();

    let mut group = c.benchmark_group("ablation_interpolation");
    group.sample_size(20);
    group.warm_up_time(Duration::from_millis(200));
    group.measurement_time(Duration::from_secs(2));

    group.bench_function("exact_sigmoid_1024_calls", |b| {
        b.iter(|| {
            let mut acc = 0.0;
            for &x in &inputs {
                acc += PiecewiseLinearSigmoid::exact(black_box(x));
            }
            acc
        })
    });

    for intervals in [1_000usize, 100_000, 1_000_000] {
        let interp = PiecewiseLinearSigmoid::new(20.0, intervals);
        group.bench_with_input(
            BenchmarkId::new("interpolated_1024_calls", intervals),
            &interp,
            |b, interp| {
                b.iter(|| {
                    let mut acc = 0.0;
                    for &x in &inputs {
                        let seg = interp.coefficients(black_box(x));
                        acc += seg.evaluate(x);
                    }
                    acc
                })
            },
        );
    }
    group.finish();
}

criterion_group!(benches, bench_interpolation);
criterion_main!(benches);
