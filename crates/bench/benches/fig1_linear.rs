//! Criterion bench for Figure 1: linear-regression update time on the SGEMM
//! analogue — every method the session supports (BaseL, PrIU, PrIU-opt,
//! Closed-form, INFL), discovered through the `DeletionEngine` registry.
//!
//! Training (provenance capture) happens once in the setup; only the online
//! update work is measured, mirroring the paper's protocol.

use std::time::Duration;

use criterion::{criterion_group, criterion_main, BenchmarkId, Criterion};
use priu_core::engine::{DeletionEngine, SessionBuilder};
use priu_core::TrainerConfig;
use priu_data::catalog::DatasetCatalog;
use priu_data::dirty::inject_dirty_samples;

fn bench_fig1(c: &mut Criterion) {
    let dirty_rescale = 10.0;
    let seed = 7;
    let spec = DatasetCatalog::sgemm_original().scaled(0.1);
    let dataset = spec.generate().as_dense().unwrap().clone();
    let train = dataset.split(0.9, 1).train;

    let mut group = c.benchmark_group("fig1_sgemm_update_time");
    group.sample_size(10);
    group.warm_up_time(Duration::from_millis(300));
    group.measurement_time(Duration::from_secs(2));

    for &rate in &[0.001, 0.01, 0.1] {
        let injection = inject_dirty_samples(&train, rate, dirty_rescale, seed);
        let session = SessionBuilder::dense(
            injection.dirty_dataset.clone(),
            TrainerConfig::from_hyper(spec.hyper).with_seed(1),
        )
        .fit()
        .expect("training failed");
        let removed = injection.dirty_indices.clone();

        for method in session.supported_methods() {
            group.bench_with_input(BenchmarkId::new(method.name(), rate), &removed, |b, r| {
                b.iter(|| session.update(method, r).unwrap().model)
            });
        }
    }
    group.finish();
}

criterion_group!(benches, bench_fig1);
criterion_main!(benches);
