//! Criterion bench for Figure 3: update times across datasets with different
//! feature-space sizes (HIGGS: 28 features; Heartbeat: 188 × 7 classes) and
//! for the sparse RCV1 analogue.

use std::time::Duration;

use criterion::{criterion_group, criterion_main, BenchmarkId, Criterion};
use priu_bench::runner::ExperimentOptions;
use priu_core::session::{BinaryLogisticSession, MultinomialSession, SparseLogisticSession};
use priu_core::TrainerConfig;
use priu_data::catalog::DatasetCatalog;
use priu_data::dirty::{inject_dirty_samples, random_subsets};

fn bench_fig3(c: &mut Criterion) {
    let options = ExperimentOptions::default();
    let rate = 0.01;
    let mut group = c.benchmark_group("fig3_update_time");
    group.sample_size(10);
    group.warm_up_time(Duration::from_millis(300));
    group.measurement_time(Duration::from_secs(3));

    // Figure 3b: HIGGS (binary, small feature space).
    {
        let spec = DatasetCatalog::higgs().scaled(0.03);
        let train = spec.generate().as_dense().unwrap().split(0.9, 3).train;
        let injection = inject_dirty_samples(&train, rate, options.dirty_rescale, options.seed);
        let session = BinaryLogisticSession::fit(
            injection.dirty_dataset.clone(),
            TrainerConfig::from_hyper(spec.hyper).with_seed(3),
        )
        .expect("training failed");
        let removed = injection.dirty_indices.clone();
        group.bench_with_input(BenchmarkId::new("BaseL", "HIGGS"), &removed, |b, r| {
            b.iter(|| session.retrain(r).unwrap().model)
        });
        group.bench_with_input(BenchmarkId::new("PrIU-opt", "HIGGS"), &removed, |b, r| {
            b.iter(|| session.priu_opt(r).unwrap().model)
        });
    }

    // Figure 3a: Heartbeat (multinomial, larger feature space).
    {
        let spec = DatasetCatalog::heartbeat().scaled(0.05);
        let train = spec.generate().as_dense().unwrap().split(0.9, 4).train;
        let injection = inject_dirty_samples(&train, rate, options.dirty_rescale, options.seed);
        let session = MultinomialSession::fit(
            injection.dirty_dataset.clone(),
            TrainerConfig::from_hyper(spec.hyper).with_seed(4),
        )
        .expect("training failed");
        let removed = injection.dirty_indices.clone();
        group.bench_with_input(BenchmarkId::new("BaseL", "Heartbeat"), &removed, |b, r| {
            b.iter(|| session.retrain(r).unwrap().model)
        });
        group.bench_with_input(BenchmarkId::new("PrIU", "Heartbeat"), &removed, |b, r| {
            b.iter(|| session.priu(r).unwrap().model)
        });
    }

    // Figure 3c: RCV1 (sparse).
    {
        let mut spec = DatasetCatalog::rcv1();
        spec.num_samples = 1_000;
        spec.num_features = 1_500;
        spec.hyper.num_iterations = 60;
        let sparse = spec.generate().as_sparse().unwrap().clone();
        let removed = random_subsets(sparse.num_samples(), 0.001, 1, options.seed)[0].clone();
        let session = SparseLogisticSession::fit(
            sparse,
            TrainerConfig::from_hyper(spec.hyper).with_seed(5),
        )
        .expect("training failed");
        group.bench_with_input(BenchmarkId::new("BaseL", "RCV1"), &removed, |b, r| {
            b.iter(|| session.retrain(r).unwrap().model)
        });
        group.bench_with_input(BenchmarkId::new("PrIU", "RCV1"), &removed, |b, r| {
            b.iter(|| session.priu(r).unwrap().model)
        });
    }

    group.finish();
}

criterion_group!(benches, bench_fig3);
criterion_main!(benches);
