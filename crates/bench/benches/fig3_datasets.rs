//! Criterion bench for Figure 3: update times across datasets with different
//! feature-space sizes (HIGGS: 28 features; Heartbeat: 188 × 7 classes) and
//! for the sparse RCV1 analogue — every session addressed through the same
//! `DeletionEngine` API.

use std::time::Duration;

use criterion::{criterion_group, criterion_main, BenchmarkId, Criterion};
use priu_core::engine::{DeletionEngine, Method, SessionBuilder};
use priu_core::TrainerConfig;
use priu_data::catalog::DatasetCatalog;
use priu_data::dirty::{inject_dirty_samples, random_subsets};

/// Duck-typed over the group so it compiles against both the vendored
/// criterion stub (non-generic `BenchmarkGroup`) and the real crate
/// (`BenchmarkGroup<'_, M>`).
macro_rules! bench_methods {
    ($group:expr, $session:expr, $label:expr, $methods:expr, $removed:expr) => {
        for &method in $methods {
            if !$session.supports(method) {
                continue;
            }
            let session = &$session;
            $group.bench_with_input(
                BenchmarkId::new(method.name(), $label),
                &$removed.to_vec(),
                |b, r| b.iter(|| session.update(method, r).unwrap().model),
            );
        }
    };
}

fn bench_fig3(c: &mut Criterion) {
    let dirty_rescale = 10.0;
    let seed = 7;
    let rate = 0.01;
    let mut group = c.benchmark_group("fig3_update_time");
    group.sample_size(10);
    group.warm_up_time(Duration::from_millis(300));
    group.measurement_time(Duration::from_secs(3));

    // Figure 3b: HIGGS (binary, small feature space).
    {
        let spec = DatasetCatalog::higgs().scaled(0.03);
        let train = spec.generate().as_dense().unwrap().split(0.9, 3).train;
        let injection = inject_dirty_samples(&train, rate, dirty_rescale, seed);
        let session = SessionBuilder::dense(
            injection.dirty_dataset.clone(),
            TrainerConfig::from_hyper(spec.hyper).with_seed(3),
        )
        .fit()
        .expect("training failed");
        bench_methods!(
            group,
            session,
            "HIGGS",
            &[Method::Retrain, Method::PriuOpt],
            injection.dirty_indices
        );
    }

    // Figure 3a: Heartbeat (multinomial, larger feature space).
    {
        let spec = DatasetCatalog::heartbeat().scaled(0.05);
        let train = spec.generate().as_dense().unwrap().split(0.9, 4).train;
        let injection = inject_dirty_samples(&train, rate, dirty_rescale, seed);
        let session = SessionBuilder::dense(
            injection.dirty_dataset.clone(),
            TrainerConfig::from_hyper(spec.hyper).with_seed(4),
        )
        .fit()
        .expect("training failed");
        bench_methods!(
            group,
            session,
            "Heartbeat",
            &[Method::Retrain, Method::Priu],
            injection.dirty_indices
        );
    }

    // Figure 3c: RCV1 (sparse).
    {
        let mut spec = DatasetCatalog::rcv1();
        spec.num_samples = 1_000;
        spec.num_features = 1_500;
        spec.hyper.num_iterations = 60;
        let sparse = spec.generate().as_sparse().unwrap().clone();
        let removed = random_subsets(sparse.num_samples(), 0.001, 1, seed)[0].clone();
        let session =
            SessionBuilder::sparse(sparse, TrainerConfig::from_hyper(spec.hyper).with_seed(5))
                .fit()
                .expect("training failed");
        bench_methods!(
            group,
            session,
            "RCV1",
            &[Method::Retrain, Method::Priu],
            removed
        );
    }

    group.finish();
}

criterion_group!(benches, bench_fig3);
criterion_main!(benches);
