//! Ablation bench: how the compression strategy used for the per-iteration
//! Gram caches (none / exact truncated / randomized truncated) affects the
//! PrIU update time on a dataset with a medium feature space (the Heartbeat
//! analogue). This is the design choice DESIGN.md §2.3 calls out.

use std::time::Duration;

use criterion::{criterion_group, criterion_main, BenchmarkId, Criterion};
use priu_core::engine::{DeletionEngine, Method, SessionBuilder};
use priu_core::{Compression, TrainerConfig};
use priu_data::catalog::DatasetCatalog;
use priu_data::dirty::inject_dirty_samples;

fn bench_compression(c: &mut Criterion) {
    let mut spec = DatasetCatalog::heartbeat().scaled(0.04);
    // Keep the mini-batch small so the *exact* truncation (whose kernel is a
    // B x B eigendecomposition) stays cheap enough for a micro-bench.
    spec.hyper.batch_size = 96;
    let train = spec.generate().as_dense().unwrap().split(0.9, 7).train;
    let injection = inject_dirty_samples(&train, 0.01, 10.0, 7);
    let removed = injection.dirty_indices.clone();

    let strategies = [
        ("dense", Compression::None),
        ("exact_r16", Compression::Exact { rank: 16 }),
        (
            "randomized_r16",
            Compression::Randomized {
                rank: 16,
                oversample: 8,
            },
        ),
    ];

    let mut group = c.benchmark_group("ablation_compression_priu_update");
    group.sample_size(10);
    group.warm_up_time(Duration::from_millis(300));
    group.measurement_time(Duration::from_secs(3));

    for (label, compression) in strategies {
        let session = SessionBuilder::dense(
            injection.dirty_dataset.clone(),
            TrainerConfig::from_hyper(spec.hyper).with_seed(7),
        )
        .compression(compression)
        .opt_capture(false)
        .fit()
        .expect("training failed");
        group.bench_with_input(BenchmarkId::new("PrIU", label), &removed, |b, r| {
            b.iter(|| session.update(Method::Priu, r).unwrap().model)
        });
    }
    group.finish();
}

criterion_group!(benches, bench_compression);
criterion_main!(benches);
