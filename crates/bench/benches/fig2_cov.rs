//! Criterion bench for Figure 2: multinomial logistic-regression update time
//! on the Covtype analogue with small and large mini-batches (the Q6
//! mini-batch-size effect).

use std::time::Duration;

use criterion::{criterion_group, criterion_main, BenchmarkId, Criterion};
use priu_core::engine::{DeletionEngine, Method, SessionBuilder};
use priu_core::TrainerConfig;
use priu_data::catalog::DatasetCatalog;
use priu_data::dirty::inject_dirty_samples;

fn bench_fig2(c: &mut Criterion) {
    let dirty_rescale = 10.0;
    let seed = 7;
    let mut group = c.benchmark_group("fig2_cov_update_time");
    group.sample_size(10);
    group.warm_up_time(Duration::from_millis(300));
    group.measurement_time(Duration::from_secs(3));

    for (label, spec) in [
        ("Cov (small)", DatasetCatalog::cov_small().scaled(0.05)),
        ("Cov (large 1)", DatasetCatalog::cov_large1().scaled(0.05)),
    ] {
        let dataset = spec.generate().as_dense().unwrap().clone();
        let train = dataset.split(0.9, 2).train;
        let rate = 0.01;
        let injection = inject_dirty_samples(&train, rate, dirty_rescale, seed);
        let session = SessionBuilder::dense(
            injection.dirty_dataset.clone(),
            TrainerConfig::from_hyper(spec.hyper).with_seed(2),
        )
        .fit()
        .expect("training failed");
        let removed = injection.dirty_indices.clone();

        for method in [Method::Retrain, Method::Priu, Method::PriuOpt] {
            if !session.supports(method) {
                continue;
            }
            group.bench_with_input(BenchmarkId::new(method.name(), label), &removed, |b, r| {
                b.iter(|| session.update(method, r).unwrap().model)
            });
        }
    }
    group.finish();
}

criterion_group!(benches, bench_fig2);
criterion_main!(benches);
