//! Criterion bench for Figure 4: the repeated-deletion scenario — removing
//! one random 0.1% subset from the extended HIGGS analogue, comparing one
//! incremental update against one retraining pass (the figure's cumulative
//! times are 10x these).

use std::time::Duration;

use criterion::{criterion_group, criterion_main, BenchmarkId, Criterion};
use priu_core::session::BinaryLogisticSession;
use priu_core::TrainerConfig;
use priu_data::catalog::DatasetCatalog;
use priu_data::dirty::random_subsets;

fn bench_fig4(c: &mut Criterion) {
    let spec = DatasetCatalog::higgs_extended().scaled(0.02);
    let dataset = spec.generate().as_dense().unwrap().clone();
    let n = dataset.num_samples();
    let session = BinaryLogisticSession::fit(
        dataset,
        TrainerConfig::from_hyper(spec.hyper).with_seed(6),
    )
    .expect("training failed");
    let subsets = random_subsets(n, 0.001, 3, 99);

    let mut group = c.benchmark_group("fig4_repeated_removal");
    group.sample_size(10);
    group.warm_up_time(Duration::from_millis(300));
    group.measurement_time(Duration::from_secs(3));

    for (k, subset) in subsets.iter().enumerate() {
        group.bench_with_input(BenchmarkId::new("BaseL", k), subset, |b, r| {
            b.iter(|| session.retrain(r).unwrap().model)
        });
        group.bench_with_input(BenchmarkId::new("PrIU-opt", k), subset, |b, r| {
            b.iter(|| session.priu_opt(r).unwrap().model)
        });
    }
    group.finish();
}

criterion_group!(benches, bench_fig4);
criterion_main!(benches);
