//! Criterion bench for Figure 4: the repeated-deletion scenario. Measures
//! both one-shot updates (removing a 0.1% subset from the extended HIGGS
//! analogue) and a chained `apply` step — the deletion consumed into a
//! successor session, which is what the figure's cumulative protocol chains
//! ten times.

use std::time::Duration;

use criterion::{criterion_group, criterion_main, BenchmarkId, Criterion};
use priu_core::engine::{DeletionEngine, Method, SessionBuilder};
use priu_core::TrainerConfig;
use priu_data::catalog::DatasetCatalog;
use priu_data::dirty::random_subsets;

fn bench_fig4(c: &mut Criterion) {
    let spec = DatasetCatalog::higgs_extended().scaled(0.02);
    let dataset = spec.generate().as_dense().unwrap().clone();
    let n = dataset.num_samples();
    let session =
        SessionBuilder::dense(dataset, TrainerConfig::from_hyper(spec.hyper).with_seed(6))
            .fit()
            .expect("training failed");
    let subsets = random_subsets(n, 0.001, 3, 99);

    let mut group = c.benchmark_group("fig4_repeated_removal");
    group.sample_size(10);
    group.warm_up_time(Duration::from_millis(300));
    group.measurement_time(Duration::from_secs(3));

    for (k, subset) in subsets.iter().enumerate() {
        for method in [Method::Retrain, Method::PriuOpt] {
            group.bench_with_input(BenchmarkId::new(method.name(), k), subset, |b, r| {
                b.iter(|| session.update(method, r).unwrap().model)
            });
        }
    }

    // One chained step: update + provenance shrink (the maintenance cost a
    // deletion service pays per arrival when it folds removals in).
    group.bench_with_input(
        BenchmarkId::new("chained_apply", "PrIU-opt"),
        &subsets[0],
        |b, r| b.iter(|| session.apply(Method::PriuOpt, r).unwrap().session),
    );
    group.finish();
}

criterion_group!(benches, bench_fig4);
criterion_main!(benches);
