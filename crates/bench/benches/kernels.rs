//! Micro-benchmarks of the linear-algebra substrate kernels that dominate
//! PrIU's training and update phases: matrix-vector products, weighted Gram
//! accumulation, truncated eigendecompositions, Jacobi eigendecomposition and
//! sparse matrix-vector products.
//!
//! The `(n, m)` grid compares three variants per hot kernel so regressions
//! (and the speedup of this performance layer) stay visible:
//! * `scalar` — straightforward single-thread loops without unrolling or
//!   register blocking (the pre-performance-layer shape of the kernels);
//! * `unrolled` — the production kernel pinned to one thread
//!   (`par::with_threads(1)`): unrolled/register-blocked, `_into` buffers;
//! * `parallel4` — the production kernel pinned to four threads (only
//!   faster than `unrolled` when real cores exist; on a single-core host it
//!   measures the scoped-thread overhead instead).

use std::time::Duration;

use criterion::{black_box, criterion_group, criterion_main, BenchmarkId, Criterion};
use priu_linalg::decomposition::eigen::SymmetricEigen;
use priu_linalg::decomposition::{GramFactor, TruncationMethod};
use priu_linalg::par;
use priu_linalg::sparse::CooBuilder;
use priu_linalg::{Matrix, Vector};
use priu_rng::Rng64;

fn random_matrix(rows: usize, cols: usize, seed: u64) -> Matrix {
    let mut rng = Rng64::from_seed(seed);
    Matrix::from_fn(rows, cols, |_, _| rng.uniform(-1.0, 1.0))
}

/// Naive single-thread reference kernels (the pre-performance-layer
/// baselines).
mod scalar {
    use priu_linalg::Matrix;

    pub fn matvec(a: &Matrix, x: &[f64], out: &mut [f64]) {
        for (i, slot) in out.iter_mut().enumerate() {
            *slot = a.row(i).iter().zip(x).map(|(r, v)| r * v).sum();
        }
    }

    pub fn transpose_matvec(a: &Matrix, x: &[f64], out: &mut [f64]) {
        out.fill(0.0);
        for (i, &xi) in x.iter().enumerate() {
            if xi == 0.0 {
                continue;
            }
            for (j, &v) in a.row(i).iter().enumerate() {
                out[j] += xi * v;
            }
        }
    }

    pub fn weighted_gram(a: &Matrix, w: &[f64], out: &mut Matrix) {
        let m = a.ncols();
        out.reshape_zeroed(m, m);
        for (i, &wi) in w.iter().enumerate() {
            let row = a.row(i);
            for p in 0..m {
                let vp = wi * row[p];
                let out_row = &mut out.as_mut_slice()[p * m..(p + 1) * m];
                for (q, &rq) in row.iter().enumerate().skip(p) {
                    out_row[q] += vp * rq;
                }
            }
        }
        for p in 0..m {
            for q in (p + 1)..m {
                out[(q, p)] = out[(p, q)];
            }
        }
    }
}

/// The `(n, m)` grid: the paper's batch shapes plus the ≥1000×100 sizes the
/// speedup acceptance gate watches.
const GRID: [(usize, usize); 4] = [(200, 54), (500, 188), (1000, 100), (2000, 256)];

fn bench_kernel_grid(c: &mut Criterion) {
    let mut group = c.benchmark_group("kernel_grid");
    group.sample_size(20);
    group.warm_up_time(Duration::from_millis(200));
    group.measurement_time(Duration::from_secs(1));

    for &(n, m) in &GRID {
        let a = random_matrix(n, m, 11);
        let x: Vec<f64> = (0..m).map(|i| (i as f64).sin()).collect();
        let t: Vec<f64> = (0..n).map(|i| (i as f64 * 0.1).cos()).collect();
        let w = vec![-0.2; n];
        let mut out_n = vec![0.0; n];
        let mut out_m = vec![0.0; m];
        let mut gram = Matrix::zeros(m, m);
        let shape = format!("{n}x{m}");

        group.bench_function(BenchmarkId::new("matvec_scalar", &shape), |b| {
            b.iter(|| scalar::matvec(&a, black_box(&x), &mut out_n))
        });
        group.bench_function(BenchmarkId::new("matvec_unrolled", &shape), |b| {
            b.iter(|| par::with_threads(1, || a.matvec_into(black_box(&x), &mut out_n).unwrap()))
        });
        group.bench_function(BenchmarkId::new("matvec_parallel4", &shape), |b| {
            b.iter(|| par::with_threads(4, || a.matvec_into(black_box(&x), &mut out_n).unwrap()))
        });

        group.bench_function(BenchmarkId::new("transpose_matvec_scalar", &shape), |b| {
            b.iter(|| scalar::transpose_matvec(&a, black_box(&t), &mut out_m))
        });
        group.bench_function(BenchmarkId::new("transpose_matvec_unrolled", &shape), |b| {
            b.iter(|| {
                par::with_threads(1, || {
                    a.transpose_matvec_into(black_box(&t), &mut out_m).unwrap()
                })
            })
        });
        group.bench_function(
            BenchmarkId::new("transpose_matvec_parallel4", &shape),
            |b| {
                b.iter(|| {
                    par::with_threads(4, || {
                        a.transpose_matvec_into(black_box(&t), &mut out_m).unwrap()
                    })
                })
            },
        );

        group.bench_function(BenchmarkId::new("weighted_gram_scalar", &shape), |b| {
            b.iter(|| scalar::weighted_gram(&a, black_box(&w), &mut gram))
        });
        group.bench_function(BenchmarkId::new("weighted_gram_unrolled", &shape), |b| {
            b.iter(|| par::with_threads(1, || a.weighted_gram_into(Some(black_box(&w)), &mut gram)))
        });
        group.bench_function(BenchmarkId::new("weighted_gram_parallel4", &shape), |b| {
            b.iter(|| par::with_threads(4, || a.weighted_gram_into(Some(black_box(&w)), &mut gram)))
        });
    }
    group.finish();
}

fn bench_kernels(c: &mut Criterion) {
    let mut group = c.benchmark_group("linalg_kernels");
    group.sample_size(20);
    group.warm_up_time(Duration::from_millis(200));
    group.measurement_time(Duration::from_secs(2));

    // Dense matvec at the batch sizes PrIU uses.
    for &(rows, cols) in &[(200usize, 54usize), (500, 188)] {
        let a = random_matrix(rows, cols, 1);
        let x = Vector::from_fn(cols, |i| (i as f64).sin());
        group.bench_with_input(
            BenchmarkId::new("matvec", format!("{rows}x{cols}")),
            &a,
            |b, a| b.iter(|| a.matvec(black_box(&x)).unwrap()),
        );
    }

    // Weighted Gram accumulation (the provenance-capture kernel).
    let batch = random_matrix(200, 54, 2);
    let weights = vec![-0.2; 200];
    group.bench_function("weighted_gram_200x54", |b| {
        b.iter(|| batch.weighted_gram(Some(black_box(&weights))))
    });

    // Truncated eigendecompositions of a Gram factor.
    let factor_rows = random_matrix(500, 188, 3);
    group.bench_function("truncated_exact_rank16_500x188", |b| {
        b.iter(|| {
            GramFactor::unweighted(factor_rows.clone())
                .truncate(16, TruncationMethod::Exact)
                .unwrap()
        })
    });
    group.bench_function("truncated_randomized_rank16_500x188", |b| {
        b.iter(|| {
            GramFactor::unweighted(factor_rows.clone())
                .truncate(
                    16,
                    TruncationMethod::Randomized {
                        oversample: 8,
                        seed: 3,
                    },
                )
                .unwrap()
        })
    });

    // Jacobi eigendecomposition (PrIU-opt offline step).
    let sym = {
        let base = random_matrix(54, 54, 4);
        base.gram()
    };
    group.bench_function("jacobi_eigen_54x54", |b| {
        b.iter(|| SymmetricEigen::new(black_box(&sym)).unwrap())
    });

    // Sparse matvec at RCV1-like density.
    let sparse = {
        let mut rng = Rng64::from_seed(5);
        let mut builder = CooBuilder::new(1000, 2000);
        for i in 0..1000 {
            for _ in 0..30 {
                let j = rng.index(2000);
                builder.push(i, j, rng.uniform(0.1, 1.0)).unwrap();
            }
        }
        builder.build()
    };
    let xs = Vector::from_fn(2000, |i| (i as f64 * 0.01).cos());
    group.bench_function("csr_spmv_1000x2000_nnz30", |b| {
        b.iter(|| sparse.spmv(black_box(&xs)).unwrap())
    });

    group.finish();
}

criterion_group!(benches, bench_kernel_grid, bench_kernels);
criterion_main!(benches);
