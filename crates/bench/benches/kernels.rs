//! Micro-benchmarks of the linear-algebra substrate kernels that dominate
//! PrIU's training and update phases: matrix-vector products, weighted Gram
//! accumulation, truncated eigendecompositions, Jacobi eigendecomposition and
//! sparse matrix-vector products.
//!
//! The `(n, m)` grid compares three variants per hot kernel so regressions
//! (and the speedup of this performance layer) stay visible:
//! * `scalar` — straightforward single-thread loops without unrolling or
//!   register blocking (the pre-performance-layer shape of the kernels);
//! * `unrolled` — the production kernel pinned to one thread
//!   (`par::with_threads(1)`): unrolled/register-blocked, `_into` buffers;
//! * `parallel4` — the production kernel pinned to four threads (only
//!   faster than `unrolled` when real cores exist; on a single-core host it
//!   measures the persistent pool's hand-off overhead instead).
//!
//! The `sparse_grid` group applies the same scheme to the CSR kernel family
//! (`spmv`, `transpose_spmv`, `scatter_rows`): `scalar` per-row loops vs the
//! chunked production kernels pinned to one (`parallel1`) and four
//! (`parallel4`) threads.

use std::time::Duration;

use criterion::{black_box, criterion_group, criterion_main, BenchmarkId, Criterion};
use priu_linalg::decomposition::eigen::SymmetricEigen;
use priu_linalg::decomposition::{GramFactor, TruncationMethod};
use priu_linalg::par;
use priu_linalg::sparse::CooBuilder;
use priu_linalg::{CsrMatrix, Matrix, Vector};
use priu_rng::Rng64;

fn random_matrix(rows: usize, cols: usize, seed: u64) -> Matrix {
    let mut rng = Rng64::from_seed(seed);
    Matrix::from_fn(rows, cols, |_, _| rng.uniform(-1.0, 1.0))
}

fn random_csr(rows: usize, cols: usize, nnz_per_row: usize, seed: u64) -> CsrMatrix {
    let mut rng = Rng64::from_seed(seed);
    let mut builder = CooBuilder::new(rows, cols);
    for i in 0..rows {
        for _ in 0..nnz_per_row {
            let j = rng.index(cols);
            builder.push(i, j, rng.uniform(0.1, 1.0)).unwrap();
        }
    }
    builder.build()
}

/// Naive single-thread reference kernels (the pre-performance-layer
/// baselines).
mod scalar {
    use priu_linalg::{CsrMatrix, Matrix};

    pub fn matvec(a: &Matrix, x: &[f64], out: &mut [f64]) {
        for (i, slot) in out.iter_mut().enumerate() {
            *slot = a.row(i).iter().zip(x).map(|(r, v)| r * v).sum();
        }
    }

    pub fn transpose_matvec(a: &Matrix, x: &[f64], out: &mut [f64]) {
        out.fill(0.0);
        for (i, &xi) in x.iter().enumerate() {
            if xi == 0.0 {
                continue;
            }
            for (j, &v) in a.row(i).iter().enumerate() {
                out[j] += xi * v;
            }
        }
    }

    pub fn weighted_gram(a: &Matrix, w: &[f64], out: &mut Matrix) {
        let m = a.ncols();
        out.reshape_zeroed(m, m);
        for (i, &wi) in w.iter().enumerate() {
            let row = a.row(i);
            for p in 0..m {
                let vp = wi * row[p];
                let out_row = &mut out.as_mut_slice()[p * m..(p + 1) * m];
                for (q, &rq) in row.iter().enumerate().skip(p) {
                    out_row[q] += vp * rq;
                }
            }
        }
        for p in 0..m {
            for q in (p + 1)..m {
                out[(q, p)] = out[(p, q)];
            }
        }
    }

    pub fn spmv(a: &CsrMatrix, x: &[f64], out: &mut [f64]) {
        for (i, slot) in out.iter_mut().enumerate() {
            let (cols, vals) = a.row(i);
            *slot = cols.iter().zip(vals.iter()).map(|(&c, &v)| v * x[c]).sum();
        }
    }

    pub fn transpose_spmv(a: &CsrMatrix, x: &[f64], out: &mut [f64]) {
        out.fill(0.0);
        for (i, &xi) in x.iter().enumerate() {
            if xi == 0.0 {
                continue;
            }
            let (cols, vals) = a.row(i);
            for (&c, &v) in cols.iter().zip(vals.iter()) {
                out[c] += xi * v;
            }
        }
    }

    pub fn scatter_rows(a: &CsrMatrix, rows: &[usize], alphas: &[f64], acc: &mut [f64]) {
        acc.fill(0.0);
        for (k, &i) in rows.iter().enumerate() {
            let (cols, vals) = a.row(i);
            for (&c, &v) in cols.iter().zip(vals.iter()) {
                acc[c] += alphas[k] * v;
            }
        }
    }
}

/// The `(n, m)` grid: the paper's batch shapes plus the ≥1000×100 sizes the
/// speedup acceptance gate watches.
const GRID: [(usize, usize); 4] = [(200, 54), (500, 188), (1000, 100), (2000, 256)];

fn bench_kernel_grid(c: &mut Criterion) {
    let mut group = c.benchmark_group("kernel_grid");
    group.sample_size(20);
    group.warm_up_time(Duration::from_millis(200));
    group.measurement_time(Duration::from_secs(1));

    for &(n, m) in &GRID {
        let a = random_matrix(n, m, 11);
        let x: Vec<f64> = (0..m).map(|i| (i as f64).sin()).collect();
        let t: Vec<f64> = (0..n).map(|i| (i as f64 * 0.1).cos()).collect();
        let w = vec![-0.2; n];
        let mut out_n = vec![0.0; n];
        let mut out_m = vec![0.0; m];
        let mut gram = Matrix::zeros(m, m);
        let shape = format!("{n}x{m}");

        group.bench_function(BenchmarkId::new("matvec_scalar", &shape), |b| {
            b.iter(|| scalar::matvec(&a, black_box(&x), &mut out_n))
        });
        group.bench_function(BenchmarkId::new("matvec_unrolled", &shape), |b| {
            b.iter(|| par::with_threads(1, || a.matvec_into(black_box(&x), &mut out_n).unwrap()))
        });
        group.bench_function(BenchmarkId::new("matvec_parallel4", &shape), |b| {
            b.iter(|| par::with_threads(4, || a.matvec_into(black_box(&x), &mut out_n).unwrap()))
        });

        group.bench_function(BenchmarkId::new("transpose_matvec_scalar", &shape), |b| {
            b.iter(|| scalar::transpose_matvec(&a, black_box(&t), &mut out_m))
        });
        group.bench_function(BenchmarkId::new("transpose_matvec_unrolled", &shape), |b| {
            b.iter(|| {
                par::with_threads(1, || {
                    a.transpose_matvec_into(black_box(&t), &mut out_m).unwrap()
                })
            })
        });
        group.bench_function(
            BenchmarkId::new("transpose_matvec_parallel4", &shape),
            |b| {
                b.iter(|| {
                    par::with_threads(4, || {
                        a.transpose_matvec_into(black_box(&t), &mut out_m).unwrap()
                    })
                })
            },
        );

        group.bench_function(BenchmarkId::new("weighted_gram_scalar", &shape), |b| {
            b.iter(|| scalar::weighted_gram(&a, black_box(&w), &mut gram))
        });
        group.bench_function(BenchmarkId::new("weighted_gram_unrolled", &shape), |b| {
            b.iter(|| par::with_threads(1, || a.weighted_gram_into(Some(black_box(&w)), &mut gram)))
        });
        group.bench_function(BenchmarkId::new("weighted_gram_parallel4", &shape), |b| {
            b.iter(|| par::with_threads(4, || a.weighted_gram_into(Some(black_box(&w)), &mut gram)))
        });
    }
    group.finish();
}

/// The sparse `(n, m, nnz_per_row)` grid: RCV1-like shapes from
/// single-chunk batch size up to multi-chunk full-data scans. `scalar` is
/// the pre-performance-layer per-row loop; `parallel1` is the production
/// chunked kernel pinned to one thread (chunk bookkeeping overhead only);
/// `parallel4` runs the same fixed decomposition on the persistent pool
/// (only faster than `parallel1` when real cores exist — on a single-core
/// host it measures pool hand-off latency, which the persistent pool keeps
/// far below the old per-call scoped-thread spawn).
const SPARSE_GRID: [(usize, usize, usize); 3] =
    [(1000, 2000, 30), (4000, 10_000, 50), (8000, 20_000, 80)];

fn bench_sparse_grid(c: &mut Criterion) {
    let mut group = c.benchmark_group("sparse_grid");
    group.sample_size(20);
    group.warm_up_time(Duration::from_millis(200));
    group.measurement_time(Duration::from_secs(1));

    for &(n, m, nnz) in &SPARSE_GRID {
        let a = random_csr(n, m, nnz, 21);
        let x: Vec<f64> = (0..m).map(|i| (i as f64).sin()).collect();
        let t: Vec<f64> = (0..n).map(|i| (i as f64 * 0.1).cos()).collect();
        let mut out_n = vec![0.0; n];
        let mut out_m = vec![0.0; m];
        let shape = format!("{n}x{m}nnz{nnz}");

        group.bench_function(BenchmarkId::new("spmv_scalar", &shape), |b| {
            b.iter(|| scalar::spmv(&a, black_box(&x), &mut out_n))
        });
        group.bench_function(BenchmarkId::new("spmv_parallel1", &shape), |b| {
            b.iter(|| par::with_threads(1, || a.spmv_into(black_box(&x), &mut out_n).unwrap()))
        });
        group.bench_function(BenchmarkId::new("spmv_parallel4", &shape), |b| {
            b.iter(|| par::with_threads(4, || a.spmv_into(black_box(&x), &mut out_n).unwrap()))
        });

        group.bench_function(BenchmarkId::new("transpose_spmv_scalar", &shape), |b| {
            b.iter(|| scalar::transpose_spmv(&a, black_box(&t), &mut out_m))
        });
        group.bench_function(BenchmarkId::new("transpose_spmv_parallel1", &shape), |b| {
            b.iter(|| {
                par::with_threads(1, || {
                    a.transpose_spmv_into(black_box(&t), &mut out_m).unwrap()
                })
            })
        });
        group.bench_function(BenchmarkId::new("transpose_spmv_parallel4", &shape), |b| {
            b.iter(|| {
                par::with_threads(4, || {
                    a.transpose_spmv_into(black_box(&t), &mut out_m).unwrap()
                })
            })
        });

        // The replay-loop scatter at a full-data batch (the sparse PrIU
        // gradient update).
        let rows: Vec<usize> = (0..n).collect();
        let alphas = vec![0.3; n];
        group.bench_function(BenchmarkId::new("scatter_rows_scalar", &shape), |b| {
            b.iter(|| scalar::scatter_rows(&a, black_box(&rows), &alphas, &mut out_m))
        });
        group.bench_function(BenchmarkId::new("scatter_rows_parallel1", &shape), |b| {
            b.iter(|| {
                par::with_threads(1, || {
                    out_m.fill(0.0);
                    a.scatter_rows_into(black_box(&rows), &alphas, &mut out_m)
                        .unwrap()
                })
            })
        });
        group.bench_function(BenchmarkId::new("scatter_rows_parallel4", &shape), |b| {
            b.iter(|| {
                par::with_threads(4, || {
                    out_m.fill(0.0);
                    a.scatter_rows_into(black_box(&rows), &alphas, &mut out_m)
                        .unwrap()
                })
            })
        });
    }
    group.finish();
}

fn bench_kernels(c: &mut Criterion) {
    let mut group = c.benchmark_group("linalg_kernels");
    group.sample_size(20);
    group.warm_up_time(Duration::from_millis(200));
    group.measurement_time(Duration::from_secs(2));

    // Dense matvec at the batch sizes PrIU uses.
    for &(rows, cols) in &[(200usize, 54usize), (500, 188)] {
        let a = random_matrix(rows, cols, 1);
        let x = Vector::from_fn(cols, |i| (i as f64).sin());
        group.bench_with_input(
            BenchmarkId::new("matvec", format!("{rows}x{cols}")),
            &a,
            |b, a| b.iter(|| a.matvec(black_box(&x)).unwrap()),
        );
    }

    // Weighted Gram accumulation (the provenance-capture kernel).
    let batch = random_matrix(200, 54, 2);
    let weights = vec![-0.2; 200];
    group.bench_function("weighted_gram_200x54", |b| {
        b.iter(|| batch.weighted_gram(Some(black_box(&weights))))
    });

    // Truncated eigendecompositions of a Gram factor.
    let factor_rows = random_matrix(500, 188, 3);
    group.bench_function("truncated_exact_rank16_500x188", |b| {
        b.iter(|| {
            GramFactor::unweighted(factor_rows.clone())
                .truncate(16, TruncationMethod::Exact)
                .unwrap()
        })
    });
    group.bench_function("truncated_randomized_rank16_500x188", |b| {
        b.iter(|| {
            GramFactor::unweighted(factor_rows.clone())
                .truncate(
                    16,
                    TruncationMethod::Randomized {
                        oversample: 8,
                        seed: 3,
                    },
                )
                .unwrap()
        })
    });

    // Jacobi eigendecomposition (PrIU-opt offline step).
    let sym = {
        let base = random_matrix(54, 54, 4);
        base.gram()
    };
    group.bench_function("jacobi_eigen_54x54", |b| {
        b.iter(|| SymmetricEigen::new(black_box(&sym)).unwrap())
    });

    // Sparse matvec at RCV1-like density.
    let sparse = {
        let mut rng = Rng64::from_seed(5);
        let mut builder = CooBuilder::new(1000, 2000);
        for i in 0..1000 {
            for _ in 0..30 {
                let j = rng.index(2000);
                builder.push(i, j, rng.uniform(0.1, 1.0)).unwrap();
            }
        }
        builder.build()
    };
    let xs = Vector::from_fn(2000, |i| (i as f64 * 0.01).cos());
    group.bench_function("csr_spmv_1000x2000_nnz30", |b| {
        b.iter(|| sparse.spmv(black_box(&xs)).unwrap())
    });

    group.finish();
}

criterion_group!(benches, bench_kernel_grid, bench_sparse_grid, bench_kernels);
criterion_main!(benches);
