//! Micro-benchmarks of the linear-algebra substrate kernels that dominate
//! PrIU's training and update phases: matrix-vector products, weighted Gram
//! accumulation, truncated eigendecompositions, Jacobi eigendecomposition and
//! sparse matrix-vector products.

use std::time::Duration;

use criterion::{black_box, criterion_group, criterion_main, BenchmarkId, Criterion};
use priu_linalg::decomposition::eigen::SymmetricEigen;
use priu_linalg::decomposition::{GramFactor, TruncationMethod};
use priu_linalg::sparse::CooBuilder;
use priu_linalg::{Matrix, Vector};
use priu_rng::Rng64;

fn random_matrix(rows: usize, cols: usize, seed: u64) -> Matrix {
    let mut rng = Rng64::from_seed(seed);
    Matrix::from_fn(rows, cols, |_, _| rng.uniform(-1.0, 1.0))
}

fn bench_kernels(c: &mut Criterion) {
    let mut group = c.benchmark_group("linalg_kernels");
    group.sample_size(20);
    group.warm_up_time(Duration::from_millis(200));
    group.measurement_time(Duration::from_secs(2));

    // Dense matvec at the batch sizes PrIU uses.
    for &(rows, cols) in &[(200usize, 54usize), (500, 188)] {
        let a = random_matrix(rows, cols, 1);
        let x = Vector::from_fn(cols, |i| (i as f64).sin());
        group.bench_with_input(
            BenchmarkId::new("matvec", format!("{rows}x{cols}")),
            &a,
            |b, a| b.iter(|| a.matvec(black_box(&x)).unwrap()),
        );
    }

    // Weighted Gram accumulation (the provenance-capture kernel).
    let batch = random_matrix(200, 54, 2);
    let weights = vec![-0.2; 200];
    group.bench_function("weighted_gram_200x54", |b| {
        b.iter(|| batch.weighted_gram(Some(black_box(&weights))))
    });

    // Truncated eigendecompositions of a Gram factor.
    let factor_rows = random_matrix(500, 188, 3);
    group.bench_function("truncated_exact_rank16_500x188", |b| {
        b.iter(|| {
            GramFactor::unweighted(factor_rows.clone())
                .truncate(16, TruncationMethod::Exact)
                .unwrap()
        })
    });
    group.bench_function("truncated_randomized_rank16_500x188", |b| {
        b.iter(|| {
            GramFactor::unweighted(factor_rows.clone())
                .truncate(
                    16,
                    TruncationMethod::Randomized {
                        oversample: 8,
                        seed: 3,
                    },
                )
                .unwrap()
        })
    });

    // Jacobi eigendecomposition (PrIU-opt offline step).
    let sym = {
        let base = random_matrix(54, 54, 4);
        base.gram()
    };
    group.bench_function("jacobi_eigen_54x54", |b| {
        b.iter(|| SymmetricEigen::new(black_box(&sym)).unwrap())
    });

    // Sparse matvec at RCV1-like density.
    let sparse = {
        let mut rng = Rng64::from_seed(5);
        let mut builder = CooBuilder::new(1000, 2000);
        for i in 0..1000 {
            for _ in 0..30 {
                let j = rng.index(2000);
                builder.push(i, j, rng.uniform(0.1, 1.0)).unwrap();
            }
        }
        builder.build()
    };
    let xs = Vector::from_fn(2000, |i| (i as f64 * 0.01).cos());
    group.bench_function("csr_spmv_1000x2000_nnz30", |b| {
        b.iter(|| sparse.spmv(black_box(&xs)).unwrap())
    });

    group.finish();
}

criterion_group!(benches, bench_kernels);
criterion_main!(benches);
