//! Micro-benchmarks of the linear-algebra substrate kernels that dominate
//! PrIU's training and update phases: matrix-vector products, weighted Gram
//! accumulation, truncated eigendecompositions, Jacobi eigendecomposition and
//! sparse matrix-vector products.
//!
//! The `(n, m)` grid compares three variants per hot kernel so regressions
//! (and the speedup of this performance layer) stay visible:
//! * `scalar` — straightforward single-thread loops without unrolling or
//!   register blocking (the pre-performance-layer shape of the kernels);
//! * `unrolled` — the production kernel pinned to one thread
//!   (`par::with_threads(1)`): unrolled/register-blocked, `_into` buffers;
//! * `parallel4` — the production kernel pinned to four threads (only
//!   faster than `unrolled` when real cores exist; on a single-core host it
//!   measures the persistent pool's hand-off overhead instead).
//!
//! The `sparse_grid` group applies the same scheme to the CSR kernel family
//! (`spmv`, `transpose_spmv`, `scatter_rows`): `scalar` per-row loops vs the
//! chunked production kernels pinned to one (`parallel1`) and four
//! (`parallel4`) threads.
//!
//! The `decomp_grid` group covers the blocked decomposition layer driving
//! PrIU-opt's offline phase and the closed-form baseline: `scalar` is the
//! pre-blocking textbook implementation (left-looking Cholesky, sequential
//! row-cyclic Jacobi, Householder QR with a full n×n Q accumulation);
//! `blocked1` / `blocked4` are the production blocked kernels pinned to one
//! and four threads, and the `qr_per_reflector*` rows keep the pre-WY QR
//! driver visible next to the compact-WY `qr_blocked*` rows.
//!
//! The `eigen_grid` group is the offline-phase shoot-out: the Jacobi
//! fallback vs the default two-stage tridiag + QL pipeline at 64–512.

use std::time::Duration;

use criterion::{black_box, criterion_group, criterion_main, BenchmarkId, Criterion};
use priu_linalg::decomposition::eigen::SymmetricEigen;
use priu_linalg::decomposition::{
    cholesky_factor_into, qr_factor_into, qr_factor_per_reflector_into, with_eigen_method,
    EigenMethod, EigenScratch, GramFactor, QrScratch, TruncationMethod,
};
use priu_linalg::par;
use priu_linalg::sparse::CooBuilder;
use priu_linalg::{CsrMatrix, Matrix, Vector};
use priu_rng::Rng64;

fn random_matrix(rows: usize, cols: usize, seed: u64) -> Matrix {
    let mut rng = Rng64::from_seed(seed);
    Matrix::from_fn(rows, cols, |_, _| rng.uniform(-1.0, 1.0))
}

fn random_csr(rows: usize, cols: usize, nnz_per_row: usize, seed: u64) -> CsrMatrix {
    let mut rng = Rng64::from_seed(seed);
    let mut builder = CooBuilder::new(rows, cols);
    for i in 0..rows {
        for _ in 0..nnz_per_row {
            let j = rng.index(cols);
            builder.push(i, j, rng.uniform(0.1, 1.0)).unwrap();
        }
    }
    builder.build()
}

/// Naive single-thread reference kernels (the pre-performance-layer
/// baselines).
mod scalar {
    use priu_linalg::{CsrMatrix, Matrix};

    pub fn matvec(a: &Matrix, x: &[f64], out: &mut [f64]) {
        for (i, slot) in out.iter_mut().enumerate() {
            *slot = a.row(i).iter().zip(x).map(|(r, v)| r * v).sum();
        }
    }

    pub fn transpose_matvec(a: &Matrix, x: &[f64], out: &mut [f64]) {
        out.fill(0.0);
        for (i, &xi) in x.iter().enumerate() {
            if xi == 0.0 {
                continue;
            }
            for (j, &v) in a.row(i).iter().enumerate() {
                out[j] += xi * v;
            }
        }
    }

    pub fn weighted_gram(a: &Matrix, w: &[f64], out: &mut Matrix) {
        let m = a.ncols();
        out.reshape_zeroed(m, m);
        for (i, &wi) in w.iter().enumerate() {
            let row = a.row(i);
            for p in 0..m {
                let vp = wi * row[p];
                let out_row = &mut out.as_mut_slice()[p * m..(p + 1) * m];
                for (q, &rq) in row.iter().enumerate().skip(p) {
                    out_row[q] += vp * rq;
                }
            }
        }
        for p in 0..m {
            for q in (p + 1)..m {
                out[(q, p)] = out[(p, q)];
            }
        }
    }

    pub fn spmv(a: &CsrMatrix, x: &[f64], out: &mut [f64]) {
        for (i, slot) in out.iter_mut().enumerate() {
            let (cols, vals) = a.row(i);
            *slot = cols.iter().zip(vals.iter()).map(|(&c, &v)| v * x[c]).sum();
        }
    }

    pub fn transpose_spmv(a: &CsrMatrix, x: &[f64], out: &mut [f64]) {
        out.fill(0.0);
        for (i, &xi) in x.iter().enumerate() {
            if xi == 0.0 {
                continue;
            }
            let (cols, vals) = a.row(i);
            for (&c, &v) in cols.iter().zip(vals.iter()) {
                out[c] += xi * v;
            }
        }
    }

    pub fn scatter_rows(a: &CsrMatrix, rows: &[usize], alphas: &[f64], acc: &mut [f64]) {
        acc.fill(0.0);
        for (k, &i) in rows.iter().enumerate() {
            let (cols, vals) = a.row(i);
            for (&c, &v) in cols.iter().zip(vals.iter()) {
                acc[c] += alphas[k] * v;
            }
        }
    }

    /// Textbook left-looking Cholesky (the pre-blocking decomposition).
    pub fn cholesky(a: &Matrix) -> Matrix {
        let n = a.nrows();
        let mut l = Matrix::zeros(n, n);
        for i in 0..n {
            for j in 0..=i {
                let mut sum = a[(i, j)];
                for k in 0..j {
                    sum -= l[(i, k)] * l[(j, k)];
                }
                if i == j {
                    l[(i, j)] = sum.sqrt();
                } else {
                    l[(i, j)] = sum / l[(j, j)];
                }
            }
        }
        l
    }

    /// Sequential row-cyclic Jacobi sweep (the pre-blocking eigen path).
    pub fn jacobi_eigen(a: &Matrix) -> (Vec<f64>, Matrix) {
        let n = a.nrows();
        let scale = a.max_abs().max(1.0);
        let mut m = a.clone();
        let mut q = Matrix::identity(n);
        let tol = 1e-14 * scale;
        for _sweep in 0..100 {
            let mut off = 0.0;
            for i in 0..n {
                for j in (i + 1)..n {
                    off += m[(i, j)] * m[(i, j)];
                }
            }
            if off.sqrt() <= tol {
                break;
            }
            for p in 0..n {
                for r in (p + 1)..n {
                    let apr = m[(p, r)];
                    if apr.abs() <= tol * 1e-2 {
                        continue;
                    }
                    let theta = (m[(r, r)] - m[(p, p)]) / (2.0 * apr);
                    let t = if theta >= 0.0 {
                        1.0 / (theta + (1.0 + theta * theta).sqrt())
                    } else {
                        -1.0 / (-theta + (1.0 + theta * theta).sqrt())
                    };
                    let c = 1.0 / (1.0 + t * t).sqrt();
                    let s = t * c;
                    for k in 0..n {
                        let (mkp, mkr) = (m[(k, p)], m[(k, r)]);
                        m[(k, p)] = c * mkp - s * mkr;
                        m[(k, r)] = s * mkp + c * mkr;
                    }
                    for k in 0..n {
                        let (mpk, mrk) = (m[(p, k)], m[(r, k)]);
                        m[(p, k)] = c * mpk - s * mrk;
                        m[(r, k)] = s * mpk + c * mrk;
                    }
                    for k in 0..n {
                        let (qkp, qkr) = (q[(k, p)], q[(k, r)]);
                        q[(k, p)] = c * qkp - s * qkr;
                        q[(k, r)] = s * qkp + c * qkr;
                    }
                }
            }
        }
        ((0..n).map(|i| m[(i, i)]).collect(), q)
    }

    /// Textbook Householder QR accumulating a full n×n Q (the pre-blocking
    /// QR path), returning the thin factors.
    pub fn qr(a: &Matrix) -> (Matrix, Matrix) {
        let (n, m) = a.shape();
        let mut r_full = a.clone();
        let mut q_full = Matrix::identity(n);
        for k in 0..m {
            let mut norm = 0.0;
            for i in k..n {
                norm += r_full[(i, k)] * r_full[(i, k)];
            }
            let norm = norm.sqrt();
            if norm == 0.0 {
                continue;
            }
            let alpha = if r_full[(k, k)] >= 0.0 { -norm } else { norm };
            let mut v = vec![0.0; n];
            for i in k..n {
                v[i] = r_full[(i, k)];
            }
            v[k] -= alpha;
            let v_norm_sq: f64 = v.iter().map(|x| x * x).sum();
            if v_norm_sq == 0.0 {
                continue;
            }
            for j in k..m {
                let mut dot = 0.0;
                for i in k..n {
                    dot += v[i] * r_full[(i, j)];
                }
                let scale = 2.0 * dot / v_norm_sq;
                for i in k..n {
                    r_full[(i, j)] -= scale * v[i];
                }
            }
            for i in 0..n {
                let mut dot = 0.0;
                for l in k..n {
                    dot += q_full[(i, l)] * v[l];
                }
                let scale = 2.0 * dot / v_norm_sq;
                for l in k..n {
                    q_full[(i, l)] -= scale * v[l];
                }
            }
        }
        let q = q_full.first_columns(m).unwrap();
        let mut r = Matrix::zeros(m, m);
        for i in 0..m {
            for j in i..m {
                r[(i, j)] = r_full[(i, j)];
            }
        }
        (q, r)
    }
}

/// The `(n, m)` grid: the paper's batch shapes plus the ≥1000×100 sizes the
/// speedup acceptance gate watches.
const GRID: [(usize, usize); 4] = [(200, 54), (500, 188), (1000, 100), (2000, 256)];

fn bench_kernel_grid(c: &mut Criterion) {
    let mut group = c.benchmark_group("kernel_grid");
    group.sample_size(20);
    group.warm_up_time(Duration::from_millis(200));
    group.measurement_time(Duration::from_secs(1));

    for &(n, m) in &GRID {
        let a = random_matrix(n, m, 11);
        let x: Vec<f64> = (0..m).map(|i| (i as f64).sin()).collect();
        let t: Vec<f64> = (0..n).map(|i| (i as f64 * 0.1).cos()).collect();
        let w = vec![-0.2; n];
        let mut out_n = vec![0.0; n];
        let mut out_m = vec![0.0; m];
        let mut gram = Matrix::zeros(m, m);
        let shape = format!("{n}x{m}");

        group.bench_function(BenchmarkId::new("matvec_scalar", &shape), |b| {
            b.iter(|| scalar::matvec(&a, black_box(&x), &mut out_n))
        });
        group.bench_function(BenchmarkId::new("matvec_unrolled", &shape), |b| {
            b.iter(|| par::with_threads(1, || a.matvec_into(black_box(&x), &mut out_n).unwrap()))
        });
        group.bench_function(BenchmarkId::new("matvec_parallel4", &shape), |b| {
            b.iter(|| par::with_threads(4, || a.matvec_into(black_box(&x), &mut out_n).unwrap()))
        });

        group.bench_function(BenchmarkId::new("transpose_matvec_scalar", &shape), |b| {
            b.iter(|| scalar::transpose_matvec(&a, black_box(&t), &mut out_m))
        });
        group.bench_function(BenchmarkId::new("transpose_matvec_unrolled", &shape), |b| {
            b.iter(|| {
                par::with_threads(1, || {
                    a.transpose_matvec_into(black_box(&t), &mut out_m).unwrap()
                })
            })
        });
        group.bench_function(
            BenchmarkId::new("transpose_matvec_parallel4", &shape),
            |b| {
                b.iter(|| {
                    par::with_threads(4, || {
                        a.transpose_matvec_into(black_box(&t), &mut out_m).unwrap()
                    })
                })
            },
        );

        group.bench_function(BenchmarkId::new("weighted_gram_scalar", &shape), |b| {
            b.iter(|| scalar::weighted_gram(&a, black_box(&w), &mut gram))
        });
        group.bench_function(BenchmarkId::new("weighted_gram_unrolled", &shape), |b| {
            b.iter(|| par::with_threads(1, || a.weighted_gram_into(Some(black_box(&w)), &mut gram)))
        });
        group.bench_function(BenchmarkId::new("weighted_gram_parallel4", &shape), |b| {
            b.iter(|| par::with_threads(4, || a.weighted_gram_into(Some(black_box(&w)), &mut gram)))
        });
    }
    group.finish();
}

/// The sparse `(n, m, nnz_per_row)` grid: RCV1-like shapes from
/// single-chunk batch size up to multi-chunk full-data scans. `scalar` is
/// the pre-performance-layer per-row loop; `parallel1` is the production
/// chunked kernel pinned to one thread (chunk bookkeeping overhead only);
/// `parallel4` runs the same fixed decomposition on the persistent pool
/// (only faster than `parallel1` when real cores exist — on a single-core
/// host it measures pool hand-off latency, which the persistent pool keeps
/// far below the old per-call scoped-thread spawn).
const SPARSE_GRID: [(usize, usize, usize); 3] =
    [(1000, 2000, 30), (4000, 10_000, 50), (8000, 20_000, 80)];

fn bench_sparse_grid(c: &mut Criterion) {
    let mut group = c.benchmark_group("sparse_grid");
    group.sample_size(20);
    group.warm_up_time(Duration::from_millis(200));
    group.measurement_time(Duration::from_secs(1));

    for &(n, m, nnz) in &SPARSE_GRID {
        let a = random_csr(n, m, nnz, 21);
        let x: Vec<f64> = (0..m).map(|i| (i as f64).sin()).collect();
        let t: Vec<f64> = (0..n).map(|i| (i as f64 * 0.1).cos()).collect();
        let mut out_n = vec![0.0; n];
        let mut out_m = vec![0.0; m];
        let shape = format!("{n}x{m}nnz{nnz}");

        group.bench_function(BenchmarkId::new("spmv_scalar", &shape), |b| {
            b.iter(|| scalar::spmv(&a, black_box(&x), &mut out_n))
        });
        group.bench_function(BenchmarkId::new("spmv_parallel1", &shape), |b| {
            b.iter(|| par::with_threads(1, || a.spmv_into(black_box(&x), &mut out_n).unwrap()))
        });
        group.bench_function(BenchmarkId::new("spmv_parallel4", &shape), |b| {
            b.iter(|| par::with_threads(4, || a.spmv_into(black_box(&x), &mut out_n).unwrap()))
        });

        group.bench_function(BenchmarkId::new("transpose_spmv_scalar", &shape), |b| {
            b.iter(|| scalar::transpose_spmv(&a, black_box(&t), &mut out_m))
        });
        group.bench_function(BenchmarkId::new("transpose_spmv_parallel1", &shape), |b| {
            b.iter(|| {
                par::with_threads(1, || {
                    a.transpose_spmv_into(black_box(&t), &mut out_m).unwrap()
                })
            })
        });
        group.bench_function(BenchmarkId::new("transpose_spmv_parallel4", &shape), |b| {
            b.iter(|| {
                par::with_threads(4, || {
                    a.transpose_spmv_into(black_box(&t), &mut out_m).unwrap()
                })
            })
        });

        // The replay-loop scatter at a full-data batch (the sparse PrIU
        // gradient update).
        let rows: Vec<usize> = (0..n).collect();
        let alphas = vec![0.3; n];
        group.bench_function(BenchmarkId::new("scatter_rows_scalar", &shape), |b| {
            b.iter(|| scalar::scatter_rows(&a, black_box(&rows), &alphas, &mut out_m))
        });
        group.bench_function(BenchmarkId::new("scatter_rows_parallel1", &shape), |b| {
            b.iter(|| {
                par::with_threads(1, || {
                    out_m.fill(0.0);
                    a.scatter_rows_into(black_box(&rows), &alphas, &mut out_m)
                        .unwrap()
                })
            })
        });
        group.bench_function(BenchmarkId::new("scatter_rows_parallel4", &shape), |b| {
            b.iter(|| {
                par::with_threads(4, || {
                    out_m.fill(0.0);
                    a.scatter_rows_into(black_box(&rows), &alphas, &mut out_m)
                        .unwrap()
                })
            })
        });
    }
    group.finish();
}

/// SPD / symmetric sizes for the decomposition grid. Cholesky reaches the
/// 512×512 acceptance shape; the Jacobi eigen sizes stay smaller because a
/// single factorisation is Θ(n³) *per sweep*.
const CHOL_SIZES: [usize; 3] = [128, 256, 512];
const EIG_SIZES: [usize; 3] = [54, 96, 128];
const QR_SHAPES: [(usize, usize); 2] = [(512, 128), (1000, 200)];

fn bench_decomp_grid(c: &mut Criterion) {
    let mut group = c.benchmark_group("decomp_grid");
    group.sample_size(10);
    group.warm_up_time(Duration::from_millis(200));
    group.measurement_time(Duration::from_secs(1));

    for &n in &CHOL_SIZES {
        let b = random_matrix(n, n, 31);
        let mut a = b.gram();
        a.add_diagonal_mut(n as f64).unwrap();
        let mut l = Matrix::zeros(n, n);
        let shape = format!("{n}x{n}");

        group.bench_function(BenchmarkId::new("cholesky_scalar", &shape), |bench| {
            bench.iter(|| scalar::cholesky(black_box(&a)))
        });
        group.bench_function(BenchmarkId::new("cholesky_blocked1", &shape), |bench| {
            bench.iter(|| par::with_threads(1, || cholesky_factor_into(black_box(&a), &mut l)))
        });
        group.bench_function(BenchmarkId::new("cholesky_blocked4", &shape), |bench| {
            bench.iter(|| par::with_threads(4, || cholesky_factor_into(black_box(&a), &mut l)))
        });
    }

    for &n in &EIG_SIZES {
        let sym = random_matrix(n, n, 32).gram();
        let mut scratch = EigenScratch::default();
        let shape = format!("{n}x{n}");

        group.bench_function(BenchmarkId::new("eigen_scalar", &shape), |bench| {
            bench.iter(|| scalar::jacobi_eigen(black_box(&sym)))
        });
        group.bench_function(BenchmarkId::new("eigen_blocked1", &shape), |bench| {
            bench.iter(|| {
                par::with_threads(1, || {
                    SymmetricEigen::new_with(black_box(&sym), &mut scratch).unwrap()
                })
            })
        });
        group.bench_function(BenchmarkId::new("eigen_blocked4", &shape), |bench| {
            bench.iter(|| {
                par::with_threads(4, || {
                    SymmetricEigen::new_with(black_box(&sym), &mut scratch).unwrap()
                })
            })
        });
    }

    for &(n, m) in &QR_SHAPES {
        let a = random_matrix(n, m, 33);
        let mut scratch = QrScratch::default();
        let (mut q, mut r) = (Matrix::zeros(0, 0), Matrix::zeros(0, 0));
        let shape = format!("{n}x{m}");

        group.bench_function(BenchmarkId::new("qr_scalar", &shape), |bench| {
            bench.iter(|| scalar::qr(black_box(&a)))
        });
        group.bench_function(BenchmarkId::new("qr_blocked1", &shape), |bench| {
            bench.iter(|| {
                par::with_threads(1, || {
                    qr_factor_into(black_box(&a), &mut q, &mut r, &mut scratch).unwrap()
                })
            })
        });
        group.bench_function(BenchmarkId::new("qr_blocked4", &shape), |bench| {
            bench.iter(|| {
                par::with_threads(4, || {
                    qr_factor_into(black_box(&a), &mut q, &mut r, &mut scratch).unwrap()
                })
            })
        });
        // The pre-WY driver (one trailing update per reflector) — the row
        // the compact-WY aggregation is measured against.
        group.bench_function(BenchmarkId::new("qr_per_reflector1", &shape), |bench| {
            bench.iter(|| {
                par::with_threads(1, || {
                    qr_factor_per_reflector_into(black_box(&a), &mut q, &mut r, &mut scratch)
                        .unwrap()
                })
            })
        });
        group.bench_function(BenchmarkId::new("qr_per_reflector4", &shape), |bench| {
            bench.iter(|| {
                par::with_threads(4, || {
                    qr_factor_per_reflector_into(black_box(&a), &mut q, &mut r, &mut scratch)
                        .unwrap()
                })
            })
        });
    }
    group.finish();
}

/// The offline-phase shoot-out: the Jacobi fallback vs the default
/// tridiag + QL pipeline on the same symmetric inputs, up to the 512×512
/// acceptance shape (Jacobi is Θ(n³) *per sweep* there — that is the point).
const EIGEN_GRID_SIZES: [usize; 4] = [64, 128, 256, 512];

fn bench_eigen_grid(c: &mut Criterion) {
    let mut group = c.benchmark_group("eigen_grid");
    group.sample_size(10);
    group.warm_up_time(Duration::from_millis(200));
    group.measurement_time(Duration::from_secs(2));

    let mut scratch = EigenScratch::default();
    for &n in &EIGEN_GRID_SIZES {
        let sym = random_matrix(n, n, 34).gram();
        let shape = format!("{n}x{n}");

        group.bench_function(BenchmarkId::new("jacobi1", &shape), |bench| {
            bench.iter(|| {
                with_eigen_method(EigenMethod::Jacobi, || {
                    par::with_threads(1, || {
                        SymmetricEigen::new_with(black_box(&sym), &mut scratch).unwrap()
                    })
                })
            })
        });
        group.bench_function(BenchmarkId::new("tridiag_ql1", &shape), |bench| {
            bench.iter(|| {
                with_eigen_method(EigenMethod::TridiagQl, || {
                    par::with_threads(1, || {
                        SymmetricEigen::new_with(black_box(&sym), &mut scratch).unwrap()
                    })
                })
            })
        });
        group.bench_function(BenchmarkId::new("tridiag_ql4", &shape), |bench| {
            bench.iter(|| {
                with_eigen_method(EigenMethod::TridiagQl, || {
                    par::with_threads(4, || {
                        SymmetricEigen::new_with(black_box(&sym), &mut scratch).unwrap()
                    })
                })
            })
        });
    }
    group.finish();
}

/// The SIMD microkernel grid: every dot/axpy-class kernel at the
/// acceptance shapes, pinned to one thread, compared across `PRIU_SIMD`
/// levels — `portable` is the unrolled 4-lane scalar path, `avx2` the
/// explicit AVX2+FMA path (skipped when the host lacks the features).
/// Sparse rows compare the gather-dot and fused-scatter paths at an
/// RCV1-like shape.
const SIMD_GRID: [(usize, usize); 3] = [(500, 188), (1000, 100), (2000, 256)];

fn bench_simd_grid(c: &mut Criterion) {
    use priu_linalg::simd::{self, SimdLevel};

    let mut group = c.benchmark_group("simd_grid");
    group.sample_size(20);
    group.warm_up_time(Duration::from_millis(200));
    group.measurement_time(Duration::from_secs(1));

    let mut levels = vec![(SimdLevel::Portable, "portable")];
    if simd::avx2_supported() {
        levels.push((SimdLevel::Avx2, "avx2"));
    } else {
        eprintln!("simd_grid: AVX2+FMA unavailable, benching the portable level only");
    }

    for &(n, m) in &SIMD_GRID {
        let a = random_matrix(n, m, 41);
        let x: Vec<f64> = (0..m).map(|i| (i as f64).sin()).collect();
        let w = vec![-0.2; n];
        let flat_b: Vec<f64> = (0..n * m).map(|i| (i as f64 * 0.001).cos()).collect();
        let mut out_n = vec![0.0; n];
        let mut out_flat = vec![0.0; n * m];
        let mut gram = Matrix::zeros(m, m);
        let shape = format!("{n}x{m}");

        for &(level, name) in &levels {
            // The dot-class workload at this shape: one length-m row dot
            // per matrix row into its own output slot (the matvec inner
            // kernel without the 4-row fusion — exactly how row dots are
            // consumed in production). Not one giant flattened dot, which
            // no code path performs, and no serial accumulator across
            // rows, which would add a dependency real callers don't have.
            group.bench_function(BenchmarkId::new(format!("dot_{name}"), &shape), |b| {
                b.iter(|| {
                    simd::with_level(level, || {
                        for (i, slot) in out_n.iter_mut().enumerate() {
                            *slot = simd::dot(black_box(a.row(i)), black_box(&x));
                        }
                    })
                })
            });
            group.bench_function(BenchmarkId::new(format!("matvec_{name}"), &shape), |b| {
                b.iter(|| {
                    simd::with_level(level, || {
                        par::with_threads(1, || a.matvec_into(black_box(&x), &mut out_n).unwrap())
                    })
                })
            });
            group.bench_function(BenchmarkId::new(format!("axpy_{name}"), &shape), |b| {
                b.iter(|| {
                    simd::with_level(level, || {
                        priu_linalg::axpy_slices(&mut out_flat, 1.0001, black_box(&flat_b))
                    })
                })
            });
            group.bench_function(BenchmarkId::new(format!("scale_add_{name}"), &shape), |b| {
                b.iter(|| {
                    simd::with_level(level, || {
                        priu_linalg::scale_add_slices(
                            &mut out_flat,
                            0.9999,
                            0.0001,
                            black_box(&flat_b),
                        )
                    })
                })
            });
            group.bench_function(
                BenchmarkId::new(format!("weighted_gram_{name}"), &shape),
                |b| {
                    b.iter(|| {
                        simd::with_level(level, || {
                            par::with_threads(1, || {
                                a.weighted_gram_into(Some(black_box(&w)), &mut gram)
                            })
                        })
                    })
                },
            );
        }
    }

    // Sparse gather-dot / scatter at an RCV1-like shape.
    let (sn, sm, snnz) = (4000usize, 10_000usize, 50usize);
    let sp = random_csr(sn, sm, snnz, 43);
    let sx: Vec<f64> = (0..sm).map(|i| (i as f64).sin()).collect();
    let st: Vec<f64> = (0..sn).map(|i| (i as f64 * 0.1).cos()).collect();
    let mut s_out_n = vec![0.0; sn];
    let mut s_out_m = vec![0.0; sm];
    let sshape = format!("{sn}x{sm}nnz{snnz}");
    for &(level, name) in &levels {
        group.bench_function(BenchmarkId::new(format!("spmv_{name}"), &sshape), |b| {
            b.iter(|| {
                simd::with_level(level, || {
                    par::with_threads(1, || sp.spmv_into(black_box(&sx), &mut s_out_n).unwrap())
                })
            })
        });
        group.bench_function(
            BenchmarkId::new(format!("transpose_spmv_{name}"), &sshape),
            |b| {
                b.iter(|| {
                    simd::with_level(level, || {
                        par::with_threads(1, || {
                            sp.transpose_spmv_into(black_box(&st), &mut s_out_m)
                                .unwrap()
                        })
                    })
                })
            },
        );
    }
    group.finish();
}

fn bench_kernels(c: &mut Criterion) {
    let mut group = c.benchmark_group("linalg_kernels");
    group.sample_size(20);
    group.warm_up_time(Duration::from_millis(200));
    group.measurement_time(Duration::from_secs(2));

    // Dense matvec at the batch sizes PrIU uses.
    for &(rows, cols) in &[(200usize, 54usize), (500, 188)] {
        let a = random_matrix(rows, cols, 1);
        let x = Vector::from_fn(cols, |i| (i as f64).sin());
        group.bench_with_input(
            BenchmarkId::new("matvec", format!("{rows}x{cols}")),
            &a,
            |b, a| b.iter(|| a.matvec(black_box(&x)).unwrap()),
        );
    }

    // Weighted Gram accumulation (the provenance-capture kernel).
    let batch = random_matrix(200, 54, 2);
    let weights = vec![-0.2; 200];
    group.bench_function("weighted_gram_200x54", |b| {
        b.iter(|| batch.weighted_gram(Some(black_box(&weights))))
    });

    // Truncated eigendecompositions of a Gram factor.
    let factor_rows = random_matrix(500, 188, 3);
    group.bench_function("truncated_exact_rank16_500x188", |b| {
        b.iter(|| {
            GramFactor::unweighted(factor_rows.clone())
                .truncate(16, TruncationMethod::Exact)
                .unwrap()
        })
    });
    group.bench_function("truncated_randomized_rank16_500x188", |b| {
        b.iter(|| {
            GramFactor::unweighted(factor_rows.clone())
                .truncate(
                    16,
                    TruncationMethod::Randomized {
                        oversample: 8,
                        seed: 3,
                    },
                )
                .unwrap()
        })
    });

    // Jacobi eigendecomposition (PrIU-opt offline step).
    let sym = {
        let base = random_matrix(54, 54, 4);
        base.gram()
    };
    group.bench_function("jacobi_eigen_54x54", |b| {
        b.iter(|| SymmetricEigen::new(black_box(&sym)).unwrap())
    });

    // Sparse matvec at RCV1-like density.
    let sparse = {
        let mut rng = Rng64::from_seed(5);
        let mut builder = CooBuilder::new(1000, 2000);
        for i in 0..1000 {
            for _ in 0..30 {
                let j = rng.index(2000);
                builder.push(i, j, rng.uniform(0.1, 1.0)).unwrap();
            }
        }
        builder.build()
    };
    let xs = Vector::from_fn(2000, |i| (i as f64 * 0.01).cos());
    group.bench_function("csr_spmv_1000x2000_nnz30", |b| {
        b.iter(|| sparse.spmv(black_box(&xs)).unwrap())
    });

    group.finish();
}

criterion_group!(
    benches,
    bench_kernel_grid,
    bench_sparse_grid,
    bench_decomp_grid,
    bench_eigen_grid,
    bench_simd_grid,
    bench_kernels
);
criterion_main!(benches);
