//! Runtime-dispatched SIMD microkernels with bitwise scalar parity.
//!
//! Every hot inner loop of the dense and sparse kernels — dot products,
//! 4-row fused matvec dots, `axpy`, the fused GD step `scale_add`, the QR
//! reflector update, the Jacobi rotation pass, and the CSR gather/scatter
//! loops — funnels through this module. Each microkernel has two
//! implementations selected once per call:
//!
//! * **portable** — plain Rust with the historical lane structure (4-wide
//!   accumulators, mul-then-add rounding). This is the only path on
//!   non-x86_64 targets and whenever AVX2+FMA is unavailable or disabled.
//! * **AVX2+FMA** — explicit `std::arch` intrinsics behind
//!   `#[target_feature(enable = "avx2,fma")]`, reachable only after
//!   [`is_x86_feature_detected!`] has proven support at runtime.
//!
//! # The determinism contract
//!
//! The SIMD lanes map **1:1 onto the portable 4-wide accumulator lanes**:
//! one 256-bit register holds exactly the four `f64` accumulators of the
//! unrolled scalar loop, lane `l` absorbing the elements with index
//! `≡ l (mod 4)`, and the horizontal reduction adds the lanes in the same
//! fixed order `((l0 + l1) + l2) + l3`. The one place SIMD *must* round
//! differently is fused multiply-add: `vfmadd` rounds once where
//! `mul`-then-`add` rounds twice. The contract is therefore **per level**:
//!
//! * within a [`SimdLevel`], every kernel is bitwise reproducible — across
//!   runs, thread counts (`PRIU_THREADS`), and against a scalar reference
//!   built from the same element operations ([`madd`] / [`fnma`] lanes);
//! * across levels, results agree only numerically: the Avx2 level fuses
//!   its multiply-adds (both in the vector bodies and in the scalar tails,
//!   which use [`f64::mul_add`] inside the `target_feature` functions), so
//!   its bits differ from the portable level by the removed intermediate
//!   roundings.
//!
//! The `simd_parity`, `kernels_parity` and `decomp_parity` suites assert
//! the per-level guarantee for both levels on every kernel.
//!
//! # The `mul_add` fallback trap
//!
//! On targets without native FMA, [`f64::mul_add`] compiles to a libm
//! `fma()` call that is orders of magnitude slower than `a * b + c`. The
//! rule enforced here: **production code only executes `f64::mul_add`
//! inside `#[target_feature(enable = "fma")]` functions**, which are only
//! reachable through [`SimdLevel::Avx2`] — and that level is only
//! constructible when runtime detection proved the features (or panics
//! loudly). The portable kernels never call `mul_add`. The dispatched
//! scalar helpers [`madd`] / [`fnma`] may hit libm when forced to the Avx2
//! level outside a `target_feature` context; they exist for *reference
//! implementations* (tests, torture suites) where correctness of the
//! rounding, not speed, is the point.
//!
//! # Dispatch cost
//!
//! The level is resolved once per process from `PRIU_SIMD`
//! (`off` | `avx2`, unset = auto-detect) and cached in a `OnceLock`; a
//! per-call read checks a `const`-initialised thread-local override cell
//! (used by the parity tests and benches via [`with_level`]) and falls
//! back to the cached global. No allocation, no env read, no detection in
//! the warm path — the `zero_alloc` suite pins this down.

use std::cell::Cell;
use std::fmt;
use std::sync::OnceLock;

/// The instruction-set level the microkernels run at.
#[derive(Debug, Clone, Copy, PartialEq, Eq)]
pub enum SimdLevel {
    /// Plain Rust loops, 4-wide accumulator lanes, mul-then-add rounding.
    Portable,
    /// Explicit AVX2 + FMA intrinsics (x86_64 only, runtime-detected).
    Avx2,
}

impl fmt::Display for SimdLevel {
    fn fmt(&self, f: &mut fmt::Formatter<'_>) -> fmt::Result {
        match self {
            SimdLevel::Portable => write!(f, "portable"),
            SimdLevel::Avx2 => write!(f, "avx2"),
        }
    }
}

/// Every level this host can execute, portable first — the canonical
/// iteration set for parity suites and bench grids (a future wider level
/// slots in here once, instead of in every caller).
pub fn available_levels() -> Vec<SimdLevel> {
    let mut levels = vec![SimdLevel::Portable];
    if avx2_supported() {
        levels.push(SimdLevel::Avx2);
    }
    levels
}

/// Whether this process can execute the AVX2+FMA kernels.
pub fn avx2_supported() -> bool {
    #[cfg(target_arch = "x86_64")]
    {
        std::arch::is_x86_feature_detected!("avx2") && std::arch::is_x86_feature_detected!("fma")
    }
    #[cfg(not(target_arch = "x86_64"))]
    {
        false
    }
}

/// Parses a `PRIU_SIMD` value against the detected CPU capability.
/// `None` (unset) and `"auto"` pick the best supported level; `"off"` /
/// `"portable"` force the portable kernels; `"avx2"` demands the SIMD
/// kernels and panics when the CPU cannot run them — silently degrading
/// would change result bits behind the operator's back.
fn parse_priu_simd(value: Option<&str>, supported: bool) -> SimdLevel {
    match value.map(str::trim) {
        None | Some("auto") => {
            if supported {
                SimdLevel::Avx2
            } else {
                SimdLevel::Portable
            }
        }
        Some("off") | Some("portable") => SimdLevel::Portable,
        Some("avx2") => {
            if supported {
                SimdLevel::Avx2
            } else {
                panic!(
                    "PRIU_SIMD=avx2 requires AVX2 and FMA, which this CPU does not support; \
                     unset the variable (auto-detect) or set PRIU_SIMD=off"
                )
            }
        }
        Some(other) => panic!(
            "PRIU_SIMD must be one of off|avx2|auto, got {other:?}; \
             unset the variable to auto-detect"
        ),
    }
}

/// The process-wide level resolved from `PRIU_SIMD` and runtime feature
/// detection, cached on first use.
///
/// # Panics
/// Panics if `PRIU_SIMD` holds an unknown value, or demands `avx2` on a
/// CPU without AVX2+FMA.
pub fn max_level() -> SimdLevel {
    static LEVEL: OnceLock<SimdLevel> = OnceLock::new();
    *LEVEL.get_or_init(|| {
        let value = std::env::var("PRIU_SIMD").ok();
        parse_priu_simd(value.as_deref(), avx2_supported())
    })
}

thread_local! {
    static OVERRIDE: Cell<Option<SimdLevel>> = const { Cell::new(None) };
}

/// The level kernels on the calling thread will use right now: the
/// innermost [`with_level`] override, or [`max_level`].
pub fn current_level() -> SimdLevel {
    OVERRIDE.with(|cell| cell.get()).unwrap_or_else(max_level)
}

/// Runs `f` with the kernel level pinned on the calling thread (nestable;
/// restored afterwards, also on panic). Used by the parity suites and the
/// bench grids to compare levels within one process.
///
/// # Panics
/// Panics when pinning [`SimdLevel::Avx2`] on a CPU without AVX2+FMA —
/// the level must never be reachable without the features.
pub fn with_level<R>(level: SimdLevel, f: impl FnOnce() -> R) -> R {
    assert!(
        level != SimdLevel::Avx2 || avx2_supported(),
        "SimdLevel::Avx2 requires AVX2 and FMA, which this CPU does not support"
    );
    struct Restore(Option<SimdLevel>);
    impl Drop for Restore {
        fn drop(&mut self) {
            OVERRIDE.with(|cell| cell.set(self.0));
        }
    }
    let _restore = Restore(OVERRIDE.with(|cell| cell.replace(Some(level))));
    f()
}

// ---------------------------------------------------------------------------
// Dispatched scalar element operations (reference-implementation building
// blocks — see the module docs for why these may hit libm on the Avx2
// level and must not sit in production hot loops).
// ---------------------------------------------------------------------------

/// `acc + a * b` with the current level's rounding: two roundings on the
/// portable level, fused on the Avx2 level.
#[inline]
pub fn madd(acc: f64, a: f64, b: f64) -> f64 {
    match current_level() {
        SimdLevel::Portable => acc + a * b,
        SimdLevel::Avx2 => a.mul_add(b, acc),
    }
}

/// `acc - a * b` with the current level's rounding (the subtractive twin
/// of [`madd`], the element op of the Cholesky chains).
#[inline]
pub fn fnma(acc: f64, a: f64, b: f64) -> f64 {
    match current_level() {
        SimdLevel::Portable => acc - a * b,
        SimdLevel::Avx2 => (-a).mul_add(b, acc),
    }
}

// ---------------------------------------------------------------------------
// Slice microkernels. Each dispatches once per call.
// ---------------------------------------------------------------------------

/// Dot product of two equal-length slices over the canonical 4-wide lane
/// structure: lane `l` accumulates elements `≡ l (mod 4)`, lanes combine
/// as `((l0 + l1) + l2) + l3`, the tail accumulates sequentially onto the
/// combined sum.
pub fn dot(a: &[f64], b: &[f64]) -> f64 {
    assert_eq!(a.len(), b.len(), "simd::dot requires equal lengths");
    match current_level() {
        SimdLevel::Portable => dot_portable(a, b),
        SimdLevel::Avx2 => {
            // SAFETY: the Avx2 level is only constructible after runtime
            // detection proved AVX2+FMA support.
            #[cfg(target_arch = "x86_64")]
            unsafe {
                avx2::dot(a, b)
            }
            #[cfg(not(target_arch = "x86_64"))]
            unreachable!("SimdLevel::Avx2 is unreachable off x86_64")
        }
    }
}

fn dot_portable(a: &[f64], b: &[f64]) -> f64 {
    let mut acc0 = 0.0;
    let mut acc1 = 0.0;
    let mut acc2 = 0.0;
    let mut acc3 = 0.0;
    let chunks = a.len() / 4;
    for i in 0..chunks {
        let j = i * 4;
        acc0 += a[j] * b[j];
        acc1 += a[j + 1] * b[j + 1];
        acc2 += a[j + 2] * b[j + 2];
        acc3 += a[j + 3] * b[j + 3];
    }
    let mut acc = ((acc0 + acc1) + acc2) + acc3;
    for j in chunks * 4..a.len() {
        acc += a[j] * b[j];
    }
    acc
}

/// Four simultaneous dot products of rows `r0..r3` against a shared `x`,
/// each over the exact lane structure of [`dot`]. The rows and `x` share
/// one length; sharing the loads of `x` across the four rows is what makes
/// this the matvec workhorse.
pub fn dot4(r0: &[f64], r1: &[f64], r2: &[f64], r3: &[f64], x: &[f64]) -> [f64; 4] {
    let len = x.len();
    assert!(
        r0.len() == len && r1.len() == len && r2.len() == len && r3.len() == len,
        "simd::dot4 requires four rows of x's length"
    );
    match current_level() {
        SimdLevel::Portable => dot4_portable(r0, r1, r2, r3, x),
        SimdLevel::Avx2 => {
            // SAFETY: see `dot`.
            #[cfg(target_arch = "x86_64")]
            unsafe {
                avx2::dot4(r0, r1, r2, r3, x)
            }
            #[cfg(not(target_arch = "x86_64"))]
            unreachable!("SimdLevel::Avx2 is unreachable off x86_64")
        }
    }
}

fn dot4_portable(r0: &[f64], r1: &[f64], r2: &[f64], r3: &[f64], x: &[f64]) -> [f64; 4] {
    let len = x.len();
    let mut acc = [[0.0_f64; 4]; 4]; // acc[row][lane]
    let chunks = len / 4;
    for c in 0..chunks {
        let j = c * 4;
        for lane in 0..4 {
            let xj = x[j + lane];
            acc[0][lane] += r0[j + lane] * xj;
            acc[1][lane] += r1[j + lane] * xj;
            acc[2][lane] += r2[j + lane] * xj;
            acc[3][lane] += r3[j + lane] * xj;
        }
    }
    let mut out = [
        ((acc[0][0] + acc[0][1]) + acc[0][2]) + acc[0][3],
        ((acc[1][0] + acc[1][1]) + acc[1][2]) + acc[1][3],
        ((acc[2][0] + acc[2][1]) + acc[2][2]) + acc[2][3],
        ((acc[3][0] + acc[3][1]) + acc[3][2]) + acc[3][3],
    ];
    for j in chunks * 4..len {
        out[0] += r0[j] * x[j];
        out[1] += r1[j] * x[j];
        out[2] += r2[j] * x[j];
        out[3] += r3[j] * x[j];
    }
    out
}

/// `out[j] += alpha * src[j]` over equal-length slices. Element-wise (no
/// cross-element reduction), so vector width never affects bits; the Avx2
/// level fuses each element's multiply-add.
pub fn axpy(out: &mut [f64], alpha: f64, src: &[f64]) {
    assert_eq!(out.len(), src.len(), "simd::axpy requires equal lengths");
    match current_level() {
        SimdLevel::Portable => {
            for (o, s) in out.iter_mut().zip(src) {
                *o += alpha * s;
            }
        }
        SimdLevel::Avx2 => {
            // SAFETY: see `dot`.
            #[cfg(target_arch = "x86_64")]
            unsafe {
                avx2::axpy(out, alpha, src)
            }
            #[cfg(not(target_arch = "x86_64"))]
            unreachable!("SimdLevel::Avx2 is unreachable off x86_64")
        }
    }
}

/// Fused GD step `out[j] = alpha * out[j] + beta * src[j]`. Element-wise;
/// on *both* levels each element performs exactly the operations of
/// `scale_mut(alpha)` followed by `axpy(beta, src)` — the scale's rounding
/// then the (level-dependent) multiply-add — so fusing the two passes
/// never changes bits relative to the unfused pair.
pub fn scale_add(out: &mut [f64], alpha: f64, beta: f64, src: &[f64]) {
    assert_eq!(
        out.len(),
        src.len(),
        "simd::scale_add requires equal lengths"
    );
    match current_level() {
        SimdLevel::Portable => {
            for (o, s) in out.iter_mut().zip(src) {
                *o = (*o * alpha) + beta * s;
            }
        }
        SimdLevel::Avx2 => {
            // SAFETY: see `dot`.
            #[cfg(target_arch = "x86_64")]
            unsafe {
                avx2::scale_add(out, alpha, beta, src)
            }
            #[cfg(not(target_arch = "x86_64"))]
            unreachable!("SimdLevel::Avx2 is unreachable off x86_64")
        }
    }
}

/// Rank-1 reflector update `out[j] -= scales[j] * v` (QR pass 2).
/// Element-wise; the Avx2 level fuses each element's multiply-subtract.
pub fn fnma_scaled(out: &mut [f64], scales: &[f64], v: f64) {
    assert_eq!(
        out.len(),
        scales.len(),
        "simd::fnma_scaled requires equal lengths"
    );
    match current_level() {
        SimdLevel::Portable => {
            for (o, s) in out.iter_mut().zip(scales) {
                *o -= s * v;
            }
        }
        SimdLevel::Avx2 => {
            // SAFETY: see `dot`.
            #[cfg(target_arch = "x86_64")]
            unsafe {
                avx2::fnma_scaled(out, scales, v)
            }
            #[cfg(not(target_arch = "x86_64"))]
            unreachable!("SimdLevel::Avx2 is unreachable off x86_64")
        }
    }
}

/// Jacobi rotation of two equal-length rows:
/// `(x, y) ← (c·x − s·y, s·x + c·y)`.
///
/// Deliberately **FMA-free on every level**: each output element performs
/// the same three roundings (two multiplies, one add/sub) whether
/// vectorised or not, so rotation results are bitwise identical *across
/// levels* — the eigen path's independent plain-loop reference stays valid
/// without dispatching.
pub fn rotate_two(row_p: &mut [f64], row_r: &mut [f64], c: f64, s: f64) {
    assert_eq!(
        row_p.len(),
        row_r.len(),
        "simd::rotate_two requires equal lengths"
    );
    match current_level() {
        SimdLevel::Portable => {
            for (xp, xr) in row_p.iter_mut().zip(row_r.iter_mut()) {
                let a = *xp;
                let b = *xr;
                *xp = c * a - s * b;
                *xr = s * a + c * b;
            }
        }
        SimdLevel::Avx2 => {
            // SAFETY: see `dot`.
            #[cfg(target_arch = "x86_64")]
            unsafe {
                avx2::rotate_two(row_p, row_r, c, s)
            }
            #[cfg(not(target_arch = "x86_64"))]
            unreachable!("SimdLevel::Avx2 is unreachable off x86_64")
        }
    }
}

/// Sparse gather dot `Σ_k vals[k] * x[cols[k]]` over the canonical 4-wide
/// lane structure of [`dot`] (lane `l` accumulates positions `≡ l (mod 4)`,
/// lanes combine `((l0 + l1) + l2) + l3`, sequential tail). The Avx2 level
/// gathers the four `x` values with `vgatherqpd` and fuses the
/// multiply-adds.
///
/// # Panics
/// Panics on mismatched `cols`/`vals` lengths and on any out-of-range
/// column index, on both levels (the AVX2 path checks each index block
/// with a vector compare before gathering, so the bound can never be
/// crossed even transiently).
pub fn sparse_dot(cols: &[usize], vals: &[f64], x: &[f64]) -> f64 {
    assert_eq!(
        cols.len(),
        vals.len(),
        "simd::sparse_dot requires equal lengths"
    );
    match current_level() {
        SimdLevel::Portable => sparse_dot_portable(cols, vals, x),
        SimdLevel::Avx2 => {
            // SAFETY: see `dot`; column indices are validated by the CSR
            // constructor, so the gather stays in bounds.
            #[cfg(target_arch = "x86_64")]
            unsafe {
                avx2::sparse_dot(cols, vals, x)
            }
            #[cfg(not(target_arch = "x86_64"))]
            unreachable!("SimdLevel::Avx2 is unreachable off x86_64")
        }
    }
}

fn sparse_dot_portable(cols: &[usize], vals: &[f64], x: &[f64]) -> f64 {
    let mut acc0 = 0.0;
    let mut acc1 = 0.0;
    let mut acc2 = 0.0;
    let mut acc3 = 0.0;
    let chunks = cols.len() / 4;
    for i in 0..chunks {
        let j = i * 4;
        acc0 += vals[j] * x[cols[j]];
        acc1 += vals[j + 1] * x[cols[j + 1]];
        acc2 += vals[j + 2] * x[cols[j + 2]];
        acc3 += vals[j + 3] * x[cols[j + 3]];
    }
    let mut acc = ((acc0 + acc1) + acc2) + acc3;
    for j in chunks * 4..cols.len() {
        acc += vals[j] * x[cols[j]];
    }
    acc
}

/// Sparse scatter `acc[cols[k]] += alpha * vals[k]`. AVX2 has no scatter
/// instruction, so both levels run the same scalar loop; the Avx2 level
/// fuses each element's multiply-add (elements are independent — the CSR
/// invariant guarantees distinct columns within a row — so per-element
/// fusing keeps the level-internal bitwise guarantee).
pub fn sparse_scatter(cols: &[usize], vals: &[f64], alpha: f64, acc: &mut [f64]) {
    assert_eq!(
        cols.len(),
        vals.len(),
        "simd::sparse_scatter requires equal lengths"
    );
    match current_level() {
        SimdLevel::Portable => {
            for (&c, &v) in cols.iter().zip(vals.iter()) {
                acc[c] += alpha * v;
            }
        }
        SimdLevel::Avx2 => {
            // SAFETY: see `dot`.
            #[cfg(target_arch = "x86_64")]
            unsafe {
                avx2::sparse_scatter(cols, vals, alpha, acc)
            }
            #[cfg(not(target_arch = "x86_64"))]
            unreachable!("SimdLevel::Avx2 is unreachable off x86_64")
        }
    }
}

/// Sequential fused-negative-multiply-add chain
/// `init - a[0]·b[0] - a[1]·b[1] - …`, one term at a time in ascending
/// order — the Cholesky element chain. A single serial dependency, so
/// there is nothing to vectorise; the Avx2 level fuses each step inside a
/// `target_feature` function (native `vfnmadd`, never libm).
pub fn fnma_dot_seq(init: f64, a: &[f64], b: &[f64]) -> f64 {
    assert_eq!(
        a.len(),
        b.len(),
        "simd::fnma_dot_seq requires equal lengths"
    );
    match current_level() {
        SimdLevel::Portable => {
            let mut acc = init;
            for (x, y) in a.iter().zip(b) {
                acc -= x * y;
            }
            acc
        }
        SimdLevel::Avx2 => {
            // SAFETY: see `dot`.
            #[cfg(target_arch = "x86_64")]
            unsafe {
                avx2::fnma_dot_seq(init, a, b)
            }
            #[cfg(not(target_arch = "x86_64"))]
            unreachable!("SimdLevel::Avx2 is unreachable off x86_64")
        }
    }
}

/// The AVX2+FMA implementations. Every function is
/// `#[target_feature(enable = "avx2,fma")]` and therefore `unsafe` to
/// call: the caller must have proven feature support (the dispatchers
/// above only reach here through [`SimdLevel::Avx2`]). Scalar tails use
/// `f64::mul_add`, which lowers to a native `vfmadd` instruction inside
/// these functions.
#[cfg(target_arch = "x86_64")]
mod avx2 {
    use std::arch::x86_64::{
        __m256d, __m256i, _mm256_add_pd, _mm256_castpd256_pd128, _mm256_castsi256_pd,
        _mm256_cmpgt_epi64, _mm256_extractf128_pd, _mm256_fmadd_pd, _mm256_fnmadd_pd,
        _mm256_i64gather_pd, _mm256_loadu_pd, _mm256_loadu_si256, _mm256_movemask_pd,
        _mm256_mul_pd, _mm256_set1_epi64x, _mm256_set1_pd, _mm256_setzero_pd, _mm256_storeu_pd,
        _mm256_sub_pd, _mm_add_sd, _mm_cvtsd_f64, _mm_unpackhi_pd,
    };

    /// Adds the four lanes of `v` in the canonical order
    /// `((l0 + l1) + l2) + l3` (matching the portable lane combine).
    #[target_feature(enable = "avx2,fma")]
    unsafe fn hsum_ordered(v: __m256d) -> f64 {
        let lo = _mm256_castpd256_pd128(v); // l0, l1
        let hi = _mm256_extractf128_pd(v, 1); // l2, l3
        let l1 = _mm_unpackhi_pd(lo, lo);
        let s = _mm_add_sd(lo, l1); // l0 + l1
        let s = _mm_add_sd(s, hi); // + l2
        let l3 = _mm_unpackhi_pd(hi, hi);
        let s = _mm_add_sd(s, l3); // + l3
        _mm_cvtsd_f64(s)
    }

    #[target_feature(enable = "avx2,fma")]
    pub(super) unsafe fn dot(a: &[f64], b: &[f64]) -> f64 {
        let len = a.len();
        let chunks = len / 4;
        let mut acc = _mm256_setzero_pd();
        for i in 0..chunks {
            let j = i * 4;
            let av = _mm256_loadu_pd(a.as_ptr().add(j));
            let bv = _mm256_loadu_pd(b.as_ptr().add(j));
            acc = _mm256_fmadd_pd(av, bv, acc);
        }
        let mut sum = hsum_ordered(acc);
        for j in chunks * 4..len {
            sum = a[j].mul_add(b[j], sum);
        }
        sum
    }

    #[target_feature(enable = "avx2,fma")]
    pub(super) unsafe fn dot4(
        r0: &[f64],
        r1: &[f64],
        r2: &[f64],
        r3: &[f64],
        x: &[f64],
    ) -> [f64; 4] {
        let len = x.len();
        let chunks = len / 4;
        let mut a0 = _mm256_setzero_pd();
        let mut a1 = _mm256_setzero_pd();
        let mut a2 = _mm256_setzero_pd();
        let mut a3 = _mm256_setzero_pd();
        for c in 0..chunks {
            let j = c * 4;
            let xv = _mm256_loadu_pd(x.as_ptr().add(j));
            a0 = _mm256_fmadd_pd(_mm256_loadu_pd(r0.as_ptr().add(j)), xv, a0);
            a1 = _mm256_fmadd_pd(_mm256_loadu_pd(r1.as_ptr().add(j)), xv, a1);
            a2 = _mm256_fmadd_pd(_mm256_loadu_pd(r2.as_ptr().add(j)), xv, a2);
            a3 = _mm256_fmadd_pd(_mm256_loadu_pd(r3.as_ptr().add(j)), xv, a3);
        }
        let mut out = [
            hsum_ordered(a0),
            hsum_ordered(a1),
            hsum_ordered(a2),
            hsum_ordered(a3),
        ];
        for j in chunks * 4..len {
            out[0] = r0[j].mul_add(x[j], out[0]);
            out[1] = r1[j].mul_add(x[j], out[1]);
            out[2] = r2[j].mul_add(x[j], out[2]);
            out[3] = r3[j].mul_add(x[j], out[3]);
        }
        out
    }

    #[target_feature(enable = "avx2,fma")]
    pub(super) unsafe fn axpy(out: &mut [f64], alpha: f64, src: &[f64]) {
        let len = out.len();
        let chunks = len / 4;
        let av = _mm256_set1_pd(alpha);
        for i in 0..chunks {
            let j = i * 4;
            let o = _mm256_loadu_pd(out.as_ptr().add(j));
            let s = _mm256_loadu_pd(src.as_ptr().add(j));
            _mm256_storeu_pd(out.as_mut_ptr().add(j), _mm256_fmadd_pd(av, s, o));
        }
        for j in chunks * 4..len {
            out[j] = alpha.mul_add(src[j], out[j]);
        }
    }

    #[target_feature(enable = "avx2,fma")]
    pub(super) unsafe fn scale_add(out: &mut [f64], alpha: f64, beta: f64, src: &[f64]) {
        let len = out.len();
        let chunks = len / 4;
        let av = _mm256_set1_pd(alpha);
        let bv = _mm256_set1_pd(beta);
        for i in 0..chunks {
            let j = i * 4;
            let o = _mm256_loadu_pd(out.as_ptr().add(j));
            let s = _mm256_loadu_pd(src.as_ptr().add(j));
            // (out * alpha) rounds, then the multiply-add fuses — the exact
            // per-element sequence of scale_mut followed by fused axpy.
            let scaled = _mm256_mul_pd(o, av);
            _mm256_storeu_pd(out.as_mut_ptr().add(j), _mm256_fmadd_pd(bv, s, scaled));
        }
        for j in chunks * 4..len {
            out[j] = beta.mul_add(src[j], out[j] * alpha);
        }
    }

    #[target_feature(enable = "avx2,fma")]
    pub(super) unsafe fn fnma_scaled(out: &mut [f64], scales: &[f64], v: f64) {
        let len = out.len();
        let chunks = len / 4;
        let vv = _mm256_set1_pd(v);
        for i in 0..chunks {
            let j = i * 4;
            let o = _mm256_loadu_pd(out.as_ptr().add(j));
            let s = _mm256_loadu_pd(scales.as_ptr().add(j));
            _mm256_storeu_pd(out.as_mut_ptr().add(j), _mm256_fnmadd_pd(s, vv, o));
        }
        for j in chunks * 4..len {
            out[j] = (-scales[j]).mul_add(v, out[j]);
        }
    }

    #[target_feature(enable = "avx2,fma")]
    pub(super) unsafe fn rotate_two(row_p: &mut [f64], row_r: &mut [f64], c: f64, s: f64) {
        let len = row_p.len();
        let chunks = len / 4;
        let cv = _mm256_set1_pd(c);
        let sv = _mm256_set1_pd(s);
        for i in 0..chunks {
            let j = i * 4;
            let a = _mm256_loadu_pd(row_p.as_ptr().add(j));
            let b = _mm256_loadu_pd(row_r.as_ptr().add(j));
            // FMA-free on purpose: c·a, s·b, c·b, s·a each round once and
            // the add/sub rounds once — the same three roundings as the
            // scalar loop, keeping rotation bits level-invariant.
            let new_p = _mm256_sub_pd(_mm256_mul_pd(cv, a), _mm256_mul_pd(sv, b));
            let new_r = _mm256_add_pd(_mm256_mul_pd(sv, a), _mm256_mul_pd(cv, b));
            _mm256_storeu_pd(row_p.as_mut_ptr().add(j), new_p);
            _mm256_storeu_pd(row_r.as_mut_ptr().add(j), new_r);
        }
        for j in chunks * 4..len {
            let a = row_p[j];
            let b = row_r[j];
            row_p[j] = c * a - s * b;
            row_r[j] = s * a + c * b;
        }
    }

    #[target_feature(enable = "avx2,fma")]
    pub(super) unsafe fn sparse_dot(cols: &[usize], vals: &[f64], x: &[f64]) -> f64 {
        let len = cols.len();
        let chunks = len / 4;
        let mut acc = _mm256_setzero_pd();
        // usize is 64-bit on x86_64 and column indices are < 2^63, so the
        // signed 64-bit compare below is exact.
        let limit = _mm256_set1_epi64x(x.len() as i64);
        for i in 0..chunks {
            let j = i * 4;
            let idx = _mm256_loadu_si256(cols.as_ptr().add(j) as *const __m256i);
            // Bounds-check the whole block before gathering: every lane
            // must satisfy idx < x.len(), or the gather would read out of
            // bounds. One compare + movemask per 4 elements — noise next
            // to the gather itself.
            let in_bounds = _mm256_cmpgt_epi64(limit, idx);
            if _mm256_movemask_pd(_mm256_castsi256_pd(in_bounds)) != 0b1111 {
                out_of_bounds(cols, x.len());
            }
            let xv = _mm256_i64gather_pd::<8>(x.as_ptr(), idx);
            let vv = _mm256_loadu_pd(vals.as_ptr().add(j));
            acc = _mm256_fmadd_pd(vv, xv, acc);
        }
        let mut sum = hsum_ordered(acc);
        for j in chunks * 4..len {
            sum = vals[j].mul_add(x[cols[j]], sum);
        }
        sum
    }

    /// Cold panic path of the gather bounds check.
    #[cold]
    #[inline(never)]
    fn out_of_bounds(cols: &[usize], len: usize) -> ! {
        let bad = cols.iter().find(|&&c| c >= len).copied().unwrap_or(len);
        panic!("simd::sparse_dot column index {bad} out of bounds for x of length {len}");
    }

    #[target_feature(enable = "avx2,fma")]
    pub(super) unsafe fn sparse_scatter(cols: &[usize], vals: &[f64], alpha: f64, acc: &mut [f64]) {
        for (&c, &v) in cols.iter().zip(vals.iter()) {
            acc[c] = alpha.mul_add(v, acc[c]);
        }
    }

    #[target_feature(enable = "avx2,fma")]
    pub(super) unsafe fn fnma_dot_seq(init: f64, a: &[f64], b: &[f64]) -> f64 {
        let mut acc = init;
        for (x, y) in a.iter().zip(b) {
            acc = (-x).mul_add(*y, acc);
        }
        acc
    }
}

#[cfg(test)]
mod tests {
    use super::*;

    #[test]
    fn parsing_rejects_garbage_and_honours_detection() {
        // Auto / unset picks the best supported level.
        assert_eq!(parse_priu_simd(None, true), SimdLevel::Avx2);
        assert_eq!(parse_priu_simd(None, false), SimdLevel::Portable);
        assert_eq!(parse_priu_simd(Some("auto"), true), SimdLevel::Avx2);
        // Off always wins.
        assert_eq!(parse_priu_simd(Some("off"), true), SimdLevel::Portable);
        assert_eq!(
            parse_priu_simd(Some(" portable "), true),
            SimdLevel::Portable
        );
        // Forced avx2 passes through only with the features present.
        assert_eq!(parse_priu_simd(Some("avx2"), true), SimdLevel::Avx2);
        for (value, supported) in [("avx2", false), ("gibberish", true), ("", true)] {
            let result = std::panic::catch_unwind(|| parse_priu_simd(Some(value), supported));
            let payload = result.expect_err(&format!("PRIU_SIMD={value:?} must be rejected"));
            let message = payload
                .downcast_ref::<String>()
                .cloned()
                .or_else(|| payload.downcast_ref::<&str>().map(|s| (*s).to_string()))
                .unwrap_or_default();
            assert!(
                message.contains("PRIU_SIMD"),
                "panic message must name the variable, got {message:?}"
            );
        }
    }

    #[test]
    fn with_level_nests_and_restores() {
        let outer = current_level();
        with_level(SimdLevel::Portable, || {
            assert_eq!(current_level(), SimdLevel::Portable);
            if avx2_supported() {
                with_level(SimdLevel::Avx2, || {
                    assert_eq!(current_level(), SimdLevel::Avx2);
                });
            }
            assert_eq!(current_level(), SimdLevel::Portable);
        });
        assert_eq!(current_level(), outer);
    }

    fn levels() -> Vec<SimdLevel> {
        available_levels()
    }

    #[test]
    fn dot_matches_naive_on_every_level() {
        let a: Vec<f64> = (0..23).map(|i| (i as f64 * 0.37).sin()).collect();
        let b: Vec<f64> = (0..23).map(|i| (i as f64 * 0.11).cos()).collect();
        let naive: f64 = a.iter().zip(&b).map(|(x, y)| x * y).sum();
        for level in levels() {
            let got = with_level(level, || dot(&a, &b));
            assert!((got - naive).abs() < 1e-12, "{level}: {got} vs {naive}");
        }
    }

    #[test]
    fn elementwise_kernels_match_naive_on_every_level() {
        let src: Vec<f64> = (0..13).map(|i| (i as f64 * 0.7).sin()).collect();
        let scales: Vec<f64> = (0..13).map(|i| (i as f64 * 0.3).cos()).collect();
        for level in levels() {
            with_level(level, || {
                let mut out: Vec<f64> = (0..13).map(|i| i as f64 * 0.5).collect();
                axpy(&mut out, 1.5, &src);
                for (j, &o) in out.iter().enumerate() {
                    assert!((o - (j as f64 * 0.5 + 1.5 * src[j])).abs() < 1e-12);
                }
                let mut fused: Vec<f64> = (0..13).map(|i| i as f64 * 0.5).collect();
                let mut pair = fused.clone();
                scale_add(&mut fused, 0.9, -0.4, &src);
                for p in pair.iter_mut() {
                    *p *= 0.9;
                }
                axpy(&mut pair, -0.4, &src);
                // The fusion guarantee is bitwise per level.
                assert_eq!(fused, pair, "{level}");

                let mut rank1 = scales.clone();
                fnma_scaled(&mut rank1, &src, 2.0);
                for (j, &o) in rank1.iter().enumerate() {
                    assert!((o - (scales[j] - src[j] * 2.0)).abs() < 1e-12);
                }
            });
        }
    }

    #[test]
    fn rotation_bits_are_level_invariant() {
        let p: Vec<f64> = (0..11).map(|i| (i as f64 * 0.9).sin()).collect();
        let r: Vec<f64> = (0..11).map(|i| (i as f64 * 0.4).cos()).collect();
        let (c, s) = (0.8, 0.6);
        let run = |level| {
            with_level(level, || {
                let (mut rp, mut rr) = (p.clone(), r.clone());
                rotate_two(&mut rp, &mut rr, c, s);
                (rp, rr)
            })
        };
        let portable = run(SimdLevel::Portable);
        if avx2_supported() {
            assert_eq!(portable, run(SimdLevel::Avx2));
        }
        for j in 0..11 {
            assert_eq!(portable.0[j], c * p[j] - s * r[j]);
            assert_eq!(portable.1[j], s * p[j] + c * r[j]);
        }
    }

    #[test]
    fn sparse_kernels_match_naive_on_every_level() {
        let cols = [0usize, 3, 4, 7, 9, 2, 5];
        let vals = [1.0, -2.0, 0.5, 3.0, -0.25, 1.5, 0.75];
        let x: Vec<f64> = (0..10).map(|i| (i as f64 * 0.2).sin() + 1.0).collect();
        let naive: f64 = cols.iter().zip(&vals).map(|(&c, &v)| v * x[c]).sum();
        for level in levels() {
            with_level(level, || {
                let got = sparse_dot(&cols, &vals, &x);
                assert!((got - naive).abs() < 1e-12, "{level}");
                let mut acc = vec![0.0; 10];
                sparse_scatter(&cols, &vals, 2.0, &mut acc);
                for (k, &c) in cols.iter().enumerate() {
                    assert!((acc[c] - 2.0 * vals[k]).abs() < 1e-12, "{level}");
                }
            });
        }
    }

    #[test]
    fn fnma_dot_seq_matches_textbook_chain() {
        let a: Vec<f64> = (0..9).map(|i| (i as f64 * 0.5).sin()).collect();
        let b: Vec<f64> = (0..9).map(|i| (i as f64 * 0.25).cos()).collect();
        for level in levels() {
            with_level(level, || {
                let got = fnma_dot_seq(10.0, &a, &b);
                let mut want = 10.0;
                for (x, y) in a.iter().zip(&b) {
                    want = fnma(want, *x, *y);
                }
                // The dispatched scalar helper realises the same chain.
                assert_eq!(got, want, "{level}");
            });
        }
    }

    #[test]
    fn mismatched_lengths_panic_on_every_level() {
        // The bound checks are load-bearing: the AVX2 paths write through
        // raw pointers sized by one slice, so a silent truncation would be
        // out-of-bounds. Each kernel must panic instead, in release too.
        for level in levels() {
            with_level(level, || {
                let short = [1.0; 3];
                let long = [2.0; 8];
                assert!(std::panic::catch_unwind(|| dot(&short, &long)).is_err());
                assert!(
                    std::panic::catch_unwind(|| dot4(&long, &long, &long, &short, &long)).is_err()
                );
                let mut out = [0.0; 8];
                assert!(
                    std::panic::catch_unwind(std::panic::AssertUnwindSafe(|| axpy(
                        &mut out, 1.0, &short
                    )))
                    .is_err()
                );
                assert!(
                    std::panic::catch_unwind(std::panic::AssertUnwindSafe(|| rotate_two(
                        &mut out,
                        &mut [0.0; 3],
                        0.8,
                        0.6
                    )))
                    .is_err()
                );
                // Out-of-range gather indices panic before any memory access.
                let cols = [0usize, 9];
                let vals = [1.0, 1.0];
                let x = [1.0; 4];
                assert!(std::panic::catch_unwind(|| sparse_dot(&cols, &vals, &x)).is_err());
                // A full 4-lane block with one bad lane (exercises the
                // vector compare on the Avx2 level, not just the tail).
                let cols4 = [0usize, 1, 2, 9];
                let vals4 = [1.0; 4];
                assert!(std::panic::catch_unwind(|| sparse_dot(&cols4, &vals4, &x)).is_err());
            });
        }
    }

    #[test]
    fn scalar_helpers_round_per_level() {
        // Pick operands where fused and two-step rounding demonstrably
        // differ: with a*b + c where a*b needs more than 53 bits.
        let (a, b, c) = (1.0 + 2f64.powi(-30), 1.0 + 2f64.powi(-30), -1.0);
        let two_step = a * b + c;
        let fused = a.mul_add(b, c);
        assert_ne!(two_step, fused, "operands must expose the rounding gap");
        assert_eq!(with_level(SimdLevel::Portable, || madd(c, a, b)), two_step);
        if avx2_supported() {
            assert_eq!(with_level(SimdLevel::Avx2, || madd(c, a, b)), fused);
        }
    }
}
