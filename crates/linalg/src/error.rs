//! Error types shared by all linear-algebra routines.

use std::fmt;

/// Errors produced by linear-algebra routines.
#[derive(Debug, Clone, PartialEq, Eq)]
pub enum LinalgError {
    /// Two operands had incompatible shapes.
    ShapeMismatch {
        /// Human-readable description of the operation that failed.
        op: &'static str,
        /// Shape of the left operand (rows, cols).
        left: (usize, usize),
        /// Shape of the right operand (rows, cols).
        right: (usize, usize),
    },
    /// A matrix expected to be square was not.
    NotSquare {
        /// Number of rows observed.
        rows: usize,
        /// Number of columns observed.
        cols: usize,
    },
    /// A factorization or solve failed because the matrix is singular (or
    /// not positive definite for Cholesky).
    Singular {
        /// Routine that detected the problem.
        op: &'static str,
    },
    /// A Cholesky factorisation met a non-positive (or non-finite) pivot:
    /// the matrix is not positive definite within numerical tolerance. The
    /// failing pivot index pins down *where* definiteness was lost, which
    /// closed-form / INFL callers surface instead of propagating NaNs.
    NotPositiveDefinite {
        /// Routine that detected the problem.
        op: &'static str,
        /// Index of the failing diagonal pivot.
        pivot: usize,
    },
    /// An iterative routine failed to converge within its iteration budget.
    DidNotConverge {
        /// Routine that failed to converge.
        op: &'static str,
        /// Number of iterations performed.
        iterations: usize,
    },
    /// An index was out of bounds for the container.
    IndexOutOfBounds {
        /// Offending index.
        index: usize,
        /// Length / dimension of the container.
        len: usize,
    },
    /// A parameter was invalid (e.g. zero dimension, rank larger than size).
    InvalidArgument(String),
}

impl fmt::Display for LinalgError {
    fn fmt(&self, f: &mut fmt::Formatter<'_>) -> fmt::Result {
        match self {
            LinalgError::ShapeMismatch { op, left, right } => write!(
                f,
                "shape mismatch in {op}: left is {}x{}, right is {}x{}",
                left.0, left.1, right.0, right.1
            ),
            LinalgError::NotSquare { rows, cols } => {
                write!(f, "expected a square matrix, got {rows}x{cols}")
            }
            LinalgError::Singular { op } => {
                write!(f, "matrix is singular (or not positive definite) in {op}")
            }
            LinalgError::NotPositiveDefinite { op, pivot } => {
                write!(
                    f,
                    "matrix is not positive definite in {op}: non-positive pivot at index {pivot}"
                )
            }
            LinalgError::DidNotConverge { op, iterations } => {
                write!(f, "{op} did not converge after {iterations} iterations")
            }
            LinalgError::IndexOutOfBounds { index, len } => {
                write!(f, "index {index} out of bounds for length {len}")
            }
            LinalgError::InvalidArgument(msg) => write!(f, "invalid argument: {msg}"),
        }
    }
}

impl std::error::Error for LinalgError {}

/// Convenience alias used across the crate.
pub type Result<T> = std::result::Result<T, LinalgError>;
