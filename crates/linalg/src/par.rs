//! Deterministic chunked parallelism for the dense kernels.
//!
//! The hot PrIU kernels (`matvec`, `transpose_matvec`, `matmul`,
//! `weighted_gram`) split their row range into *chunks whose boundaries
//! depend only on the problem size*, never on the thread count. Map-style
//! kernels write disjoint output regions per chunk; reduction-style kernels
//! accumulate each chunk into its own partial buffer and the partials are
//! combined serially in ascending chunk order. Together these two rules make
//! every kernel **bitwise reproducible**: the same input produces the same
//! bits whether `PRIU_THREADS` is 1, 4 or 64, because the floating-point
//! summation tree is a function of the input shape alone.
//!
//! Execution uses `std::thread::scope` — a small chunked pool spun up per
//! kernel call, with an atomic chunk cursor for work stealing. Calls whose
//! chunk decomposition collapses to a single chunk (small batches — the
//! common case inside mb-SGD iterations) run inline on the calling thread
//! and never spawn, so the per-iteration trainer/update hot path stays
//! allocation-free.
//!
//! Thread count resolution order:
//! 1. an active [`with_threads`] override on the calling thread (used by the
//!    parity tests and the kernel benches to pin a count per call-site);
//! 2. the `PRIU_THREADS` environment variable (read once per process);
//! 3. [`std::thread::available_parallelism`].

use std::cell::{Cell, RefCell};
use std::ops::Range;
use std::sync::atomic::{AtomicUsize, Ordering};
use std::sync::OnceLock;

/// Resolves the process-wide thread count from `PRIU_THREADS` (falling back
/// to the machine's available parallelism), caching the answer.
pub fn max_threads() -> usize {
    static ENV: OnceLock<usize> = OnceLock::new();
    *ENV.get_or_init(|| {
        std::env::var("PRIU_THREADS")
            .ok()
            .and_then(|value| value.trim().parse::<usize>().ok())
            .filter(|&threads| threads >= 1)
            .unwrap_or_else(|| {
                std::thread::available_parallelism()
                    .map(|n| n.get())
                    .unwrap_or(1)
            })
    })
}

thread_local! {
    static OVERRIDE: Cell<Option<usize>> = const { Cell::new(None) };
}

/// The thread count kernels on the calling thread will use right now: the
/// innermost [`with_threads`] override, or [`max_threads`].
pub fn current_threads() -> usize {
    OVERRIDE.with(|cell| cell.get()).unwrap_or_else(max_threads)
}

/// Runs `f` with the kernel thread count pinned to `threads` on the calling
/// thread (nestable; restored afterwards, also on panic). Changing the
/// thread count never changes results — kernels are bitwise reproducible —
/// only how many workers execute the fixed chunk decomposition.
pub fn with_threads<R>(threads: usize, f: impl FnOnce() -> R) -> R {
    struct Restore(Option<usize>);
    impl Drop for Restore {
        fn drop(&mut self) {
            OVERRIDE.with(|cell| cell.set(self.0));
        }
    }
    let _restore = Restore(OVERRIDE.with(|cell| cell.replace(Some(threads.max(1)))));
    f()
}

/// A chunk decomposition of `0..n` that depends only on `(n, min_chunk,
/// max_chunks)` — never on the thread count — so the reduction order of
/// chunked kernels is a function of the input shape alone.
#[derive(Debug, Clone, Copy)]
pub struct Chunks {
    n: usize,
    chunk: usize,
    count: usize,
}

impl Chunks {
    /// Decomposes `0..n` into at most `max_chunks` chunks of at least
    /// `min_chunk` items each (only the final chunk, which absorbs the
    /// remainder, may be smaller). In particular `n < 2·min_chunk` always
    /// yields a single chunk — the inline, spawn-free path.
    pub fn new(n: usize, min_chunk: usize, max_chunks: usize) -> Self {
        let min_chunk = min_chunk.max(1);
        let max_chunks = max_chunks.max(1);
        if n == 0 {
            return Self {
                n,
                chunk: min_chunk,
                count: 0,
            };
        }
        // Floor division: never split below `min_chunk` items per chunk.
        let by_size = (n / min_chunk).max(1);
        let count = by_size.min(max_chunks);
        let chunk = n.div_ceil(count);
        Self {
            n,
            chunk,
            count: n.div_ceil(chunk),
        }
    }

    /// Number of chunks.
    pub fn count(&self) -> usize {
        self.count
    }

    /// The item range of chunk `c`.
    ///
    /// # Panics
    /// Panics if `c >= count()`.
    pub fn range(&self, c: usize) -> Range<usize> {
        assert!(
            c < self.count,
            "chunk index {c} out of range ({})",
            self.count
        );
        let start = c * self.chunk;
        start..((start + self.chunk).min(self.n))
    }
}

/// Runs `f(chunk_index)` for every chunk in `0..num_chunks`, using up to
/// [`current_threads`] scoped workers with an atomic work-stealing cursor.
/// `f` must only touch data disjoint per chunk; the order in which chunks
/// *execute* is unspecified, so deterministic reductions must combine
/// per-chunk partials in chunk order afterwards.
pub fn run_chunks<F>(num_chunks: usize, f: F)
where
    F: Fn(usize) + Sync,
{
    let threads = current_threads().min(num_chunks);
    if threads <= 1 {
        for c in 0..num_chunks {
            f(c);
        }
        return;
    }
    let cursor = AtomicUsize::new(0);
    let work = || loop {
        let c = cursor.fetch_add(1, Ordering::Relaxed);
        if c >= num_chunks {
            break;
        }
        f(c);
    };
    std::thread::scope(|scope| {
        for _ in 1..threads {
            scope.spawn(work);
        }
        work();
    });
}

thread_local! {
    static SCRATCH_POOL: RefCell<Vec<Vec<f64>>> = const { RefCell::new(Vec::new()) };
}

/// Lends the calling thread a zeroed scratch buffer of exactly `len` values
/// from a per-thread pool (so steady-state kernel calls allocate nothing),
/// returning it to the pool afterwards. Re-entrant: nested kernels each get
/// their own buffer.
pub fn with_scratch<R>(len: usize, f: impl FnOnce(&mut [f64]) -> R) -> R {
    let mut buf = SCRATCH_POOL
        .with(|pool| pool.borrow_mut().pop())
        .unwrap_or_default();
    buf.clear();
    buf.resize(len, 0.0);
    let result = f(&mut buf);
    SCRATCH_POOL.with(|pool| pool.borrow_mut().push(buf));
    result
}

/// A raw mutable pointer that may cross thread boundaries. Used to hand each
/// chunk worker its disjoint output or partial-buffer region; safety rests on
/// the chunk decomposition making those regions non-overlapping.
pub(crate) struct SendPtr(pub *mut f64);

// SAFETY: the pointer is only dereferenced through disjoint per-chunk
// regions computed from a `Chunks` decomposition.
unsafe impl Send for SendPtr {}
unsafe impl Sync for SendPtr {}

impl SendPtr {
    /// The mutable sub-slice `[offset, offset + len)`.
    ///
    /// # Safety
    /// The caller must guarantee the region is in bounds and not aliased by
    /// any other live reference for the duration of the borrow.
    // The &self → &mut lifetime laundering is the point of this wrapper:
    // each chunk worker derives a unique, disjoint region from the shared
    // pointer.
    #[allow(clippy::mut_from_ref)]
    pub(crate) unsafe fn slice(&self, offset: usize, len: usize) -> &mut [f64] {
        std::slice::from_raw_parts_mut(self.0.add(offset), len)
    }
}

#[cfg(test)]
mod tests {
    use super::*;

    #[test]
    fn chunk_decomposition_depends_only_on_n() {
        let c = Chunks::new(1000, 128, 16);
        assert_eq!(c.count(), 7);
        let mut covered = 0;
        for i in 0..c.count() {
            let r = c.range(i);
            assert_eq!(r.start, covered);
            covered = r.end;
            // The min-chunk contract: only the final chunk may be smaller.
            if i + 1 < c.count() {
                assert!(r.len() >= 128);
            }
        }
        assert_eq!(covered, 1000);

        // Inputs below twice the minimum collapse to a single chunk (the
        // inline, spawn-free path).
        assert_eq!(Chunks::new(100, 128, 16).count(), 1);
        assert_eq!(Chunks::new(255, 128, 16).count(), 1);
        assert_eq!(Chunks::new(257, 256, 16).count(), 1);
        assert_eq!(Chunks::new(256, 128, 16).count(), 2);
        assert_eq!(Chunks::new(0, 128, 16).count(), 0);

        // The cap bounds the chunk count for huge inputs.
        assert_eq!(Chunks::new(1_000_000, 128, 16).count(), 16);
    }

    #[test]
    fn run_chunks_visits_every_chunk_exactly_once() {
        for threads in [1usize, 4] {
            let hits: Vec<AtomicUsize> = (0..23).map(|_| AtomicUsize::new(0)).collect();
            with_threads(threads, || {
                run_chunks(hits.len(), |c| {
                    hits[c].fetch_add(1, Ordering::Relaxed);
                });
            });
            assert!(hits.iter().all(|h| h.load(Ordering::Relaxed) == 1));
        }
    }

    #[test]
    fn with_threads_nests_and_restores() {
        let outer = current_threads();
        with_threads(3, || {
            assert_eq!(current_threads(), 3);
            with_threads(7, || assert_eq!(current_threads(), 7));
            assert_eq!(current_threads(), 3);
        });
        assert_eq!(current_threads(), outer);
    }

    #[test]
    fn scratch_is_zeroed_and_reentrant() {
        with_scratch(8, |a| {
            assert!(a.iter().all(|&x| x == 0.0));
            a[0] = 42.0;
            with_scratch(4, |b| {
                assert!(b.iter().all(|&x| x == 0.0));
                b[0] = 7.0;
            });
            assert_eq!(a[0], 42.0);
        });
        // Buffers return to the pool zeroed on next borrow.
        with_scratch(8, |a| assert!(a.iter().all(|&x| x == 0.0)));
    }
}
