//! Deterministic chunked parallelism for the dense and sparse kernels.
//!
//! The hot PrIU kernels (`matvec`, `transpose_matvec`, `matmul`,
//! `weighted_gram`, and the CSR family `spmv` / `transpose_spmv` /
//! `rows_dot` / `scatter_rows`) split their row range into *chunks whose
//! boundaries depend only on the problem size*, never on the thread count.
//! Map-style kernels write disjoint output regions per chunk;
//! reduction-style kernels accumulate each chunk into its own partial buffer
//! and the partials are combined serially in ascending chunk order. Together
//! these two rules make every kernel **bitwise reproducible**: the same
//! input produces the same bits whether `PRIU_THREADS` is 1, 4 or 64,
//! because the floating-point summation tree is a function of the input
//! shape alone.
//!
//! # The persistent worker pool
//!
//! Execution uses a **lazily-started persistent worker pool**. The first
//! multi-chunk kernel call spawns `threads - 1` workers (named
//! `priu-par-worker`); every later call reuses them, so medium-sized kernels
//! no longer pay a per-call thread-spawn latency (the previous
//! `std::thread::scope` design spun threads up per kernel call). Jobs are
//! handed to the workers through a mutex/condvar epoch signal and consumed
//! with an atomic work-stealing cursor; the submitting thread participates
//! in the steal loop and blocks until every chunk has finished, which is
//! what makes it sound to hand workers a closure that borrows the caller's
//! stack.
//!
//! Pool lifecycle:
//! * **lazy start** — no threads exist until a kernel actually goes
//!   multi-chunk; calls whose decomposition collapses to a single chunk
//!   (small batches — the common case inside mb-SGD iterations) run inline
//!   on the calling thread and never touch the pool, so the per-iteration
//!   trainer/update hot path stays allocation- and synchronisation-free;
//! * **growth** — the pool holds `max(threads seen) - 1` workers; a call
//!   pinned to a higher [`with_threads`] count spawns the difference, and
//!   the pool never shrinks on its own;
//! * **shutdown** — [`shutdown_pool`] signals the workers, joins them and
//!   clears any poison; the next multi-chunk call restarts the pool. Without
//!   an explicit shutdown the workers live (idle, parked on a condvar) for
//!   the rest of the process;
//! * **poisoning** — a panic inside a chunk closure *on a worker thread* is
//!   caught, the remaining chunks are drained without running user code (so
//!   the submitter can unblock), and the pool is marked poisoned: the
//!   in-flight call and every later multi-chunk call panic with the stored
//!   message. A panic on the *submitting* thread simply aborts the job and
//!   propagates after the drain, leaving the pool usable.
//!
//! Nested parallelism is flattened: a chunk closure that itself reaches a
//! multi-chunk kernel runs that kernel inline on its worker thread (no job
//! is submitted), so kernels can never deadlock the single job slot.
//!
//! The pool holds **one job at a time**. Concurrent multi-chunk submissions
//! from different application threads are sound — every submitter drains
//! its own job to completion regardless of worker help — but the later
//! submission takes over the job slot, so the earlier kernel finishes on
//! its submitting thread alone. Parallel throughput therefore assumes one
//! multi-chunk kernel in flight at a time; concurrent callers degrade to
//! serial execution per caller, never to errors or wrong results.
//!
//! Beyond the chunked kernels, [`run_tasks`] exposes the pool for
//! *coarse-grained* independent jobs (the bench runner's per-rate figure
//! sweeps), and [`NnzChunks`] provides a work-balanced decomposition for
//! kernels whose per-item cost is skewed (CSR rows with heavy tails) —
//! still shape-only, so the determinism guarantee is untouched.
//!
//! Thread count resolution order:
//! 1. an active [`with_threads`] override on the calling thread (used by the
//!    parity tests and the kernel benches to pin a count per call-site);
//! 2. the `PRIU_THREADS` environment variable (read once per process;
//!    invalid values are rejected loudly — see [`max_threads`]);
//! 3. [`std::thread::available_parallelism`].

use std::cell::{Cell, RefCell};
use std::ops::Range;
use std::panic::{self, AssertUnwindSafe};
use std::sync::atomic::{AtomicBool, AtomicUsize, Ordering};
use std::sync::{Arc, Condvar, Mutex, MutexGuard, OnceLock, PoisonError};

/// Parses a `PRIU_THREADS` value. `None` (variable unset) falls back to the
/// machine's available parallelism; a present but invalid value (not a
/// positive integer) panics, because silently substituting a different
/// thread count would hide a misconfiguration.
fn parse_priu_threads(value: Option<&str>) -> usize {
    match value {
        None => std::thread::available_parallelism()
            .map(|n| n.get())
            .unwrap_or(1),
        Some(raw) => match raw.trim().parse::<usize>() {
            Ok(threads) if threads >= 1 => threads,
            _ => panic!(
                "PRIU_THREADS must be a positive integer thread count, got {raw:?}; \
                 unset the variable to use the machine's available parallelism"
            ),
        },
    }
}

/// Resolves the process-wide thread count from `PRIU_THREADS` (falling back
/// to the machine's available parallelism when unset), caching the answer.
///
/// # Panics
/// Panics if `PRIU_THREADS` is set to anything other than a positive
/// integer (including `0`): an invalid value is a misconfiguration, and
/// silently falling back would change the thread count behind the
/// operator's back.
pub fn max_threads() -> usize {
    static ENV: OnceLock<usize> = OnceLock::new();
    *ENV.get_or_init(|| {
        let value = std::env::var("PRIU_THREADS").ok();
        parse_priu_threads(value.as_deref())
    })
}

thread_local! {
    static OVERRIDE: Cell<Option<usize>> = const { Cell::new(None) };
    /// Set for the lifetime of a pool worker thread; kernels called from
    /// inside a chunk closure use it to run inline instead of submitting a
    /// nested job.
    static IS_POOL_WORKER: Cell<bool> = const { Cell::new(false) };
}

/// The thread count kernels on the calling thread will use right now: the
/// innermost [`with_threads`] override, or [`max_threads`].
pub fn current_threads() -> usize {
    OVERRIDE.with(|cell| cell.get()).unwrap_or_else(max_threads)
}

/// Runs `f` with the kernel thread count pinned to `threads` on the calling
/// thread (nestable; restored afterwards, also on panic). Changing the
/// thread count never changes results — kernels are bitwise reproducible —
/// only how many workers execute the fixed chunk decomposition.
pub fn with_threads<R>(threads: usize, f: impl FnOnce() -> R) -> R {
    struct Restore(Option<usize>);
    impl Drop for Restore {
        fn drop(&mut self) {
            OVERRIDE.with(|cell| cell.set(self.0));
        }
    }
    let _restore = Restore(OVERRIDE.with(|cell| cell.replace(Some(threads.max(1)))));
    f()
}

/// A chunk decomposition of `0..n` that depends only on `(n, min_chunk,
/// max_chunks)` — never on the thread count — so the reduction order of
/// chunked kernels is a function of the input shape alone.
#[derive(Debug, Clone, Copy)]
pub struct Chunks {
    n: usize,
    chunk: usize,
    count: usize,
}

impl Chunks {
    /// Decomposes `0..n` into at most `max_chunks` chunks of at least
    /// `min_chunk` items each (only the final chunk, which absorbs the
    /// remainder, may be smaller). In particular `n < 2·min_chunk` always
    /// yields a single chunk — the inline, pool-free path.
    pub fn new(n: usize, min_chunk: usize, max_chunks: usize) -> Self {
        let min_chunk = min_chunk.max(1);
        let max_chunks = max_chunks.max(1);
        if n == 0 {
            return Self {
                n,
                chunk: min_chunk,
                count: 0,
            };
        }
        // Floor division: never split below `min_chunk` items per chunk.
        let by_size = (n / min_chunk).max(1);
        let count = by_size.min(max_chunks);
        let chunk = n.div_ceil(count);
        Self {
            n,
            chunk,
            count: n.div_ceil(chunk),
        }
    }

    /// Number of chunks.
    pub fn count(&self) -> usize {
        self.count
    }

    /// The item range of chunk `c`.
    ///
    /// # Panics
    /// Panics if `c >= count()`.
    pub fn range(&self, c: usize) -> Range<usize> {
        assert!(
            c < self.count,
            "chunk index {c} out of range ({})",
            self.count
        );
        let start = c * self.chunk;
        start..((start + self.chunk).min(self.n))
    }
}

/// A chunk decomposition usable by the shared map/reduce orchestration:
/// `count()` disjoint, ascending ranges partitioning `0..n`. Implementors
/// must derive both purely from the problem *shape* (sizes, sparsity
/// structure) — never from the thread count — so the reduction order of
/// chunked kernels stays a function of the input alone.
pub trait RangeDecomp {
    /// Number of chunks.
    fn count(&self) -> usize;
    /// The item range of chunk `c` (ranges are ascending and disjoint, and
    /// together cover `0..n`; individual ranges may be empty).
    fn range(&self, c: usize) -> Range<usize>;
}

impl RangeDecomp for Chunks {
    fn count(&self) -> usize {
        Chunks::count(self)
    }
    fn range(&self, c: usize) -> Range<usize> {
        Chunks::range(self, c)
    }
}

/// A work-balanced chunk decomposition of `0..n` driven by a cumulative
/// work array (`cum[i]` = total work before item `i`, `cum.len() == n + 1`,
/// non-decreasing — a CSR `row_ptr` is exactly this shape). Chunk *count*
/// follows the same rule as [`Chunks`] over the item count; chunk
/// *boundaries* split the total work as evenly as possible, so heavily
/// skewed item costs (long sparse rows) no longer pile into one chunk.
/// Both count and boundaries depend only on the shape, so the determinism
/// guarantee of the chunked kernels survives unchanged. Individual chunks
/// may be empty when a single item carries more than a chunk's share of
/// the work.
#[derive(Debug, Clone, Copy)]
pub struct NnzChunks<'a> {
    ptr: &'a [usize],
    count: usize,
}

impl<'a> NnzChunks<'a> {
    /// Decomposes the `cum.len() - 1` items into at most `max_chunks`
    /// chunks of at least `min_items` items on average (the [`Chunks`]
    /// count rule — in particular fewer than `2 · min_items` items always
    /// yield the single-chunk inline path), with boundaries balancing the
    /// cumulative work in `cum`.
    ///
    /// # Panics
    /// Panics if `cum` is empty (it must hold `n + 1` entries).
    pub fn new(cum: &'a [usize], min_items: usize, max_chunks: usize) -> Self {
        assert!(
            !cum.is_empty(),
            "cumulative work array must hold n + 1 entries"
        );
        let n = cum.len() - 1;
        let count = Chunks::new(n, min_items, max_chunks).count();
        Self { ptr: cum, count }
    }

    /// The first item of chunk `c`: the smallest item index whose
    /// cumulative work reaches `c / count` of the total.
    fn boundary(&self, c: usize) -> usize {
        let n = self.ptr.len() - 1;
        if c == 0 {
            return 0;
        }
        if c >= self.count {
            return n;
        }
        let total = self.ptr[n] as u128;
        let target = (total * c as u128 / self.count as u128) as usize;
        // First index with cum[i] >= target; cum[n] = total >= target keeps
        // this <= n.
        self.ptr.partition_point(|&p| p < target).min(n)
    }
}

impl RangeDecomp for NnzChunks<'_> {
    fn count(&self) -> usize {
        self.count
    }
    fn range(&self, c: usize) -> Range<usize> {
        assert!(
            c < self.count,
            "chunk index {c} out of range ({})",
            self.count
        );
        self.boundary(c)..self.boundary(c + 1)
    }
}

/// A submitted parallel job: the type-erased chunk closure plus the atomic
/// progress counters the steal loop needs.
struct Job {
    /// Type-erased pointer to the submitter's `&(dyn Fn(usize) + Sync)`
    /// chunk closure. Only dereferenced for chunk indices below
    /// `num_chunks`, all of which finish before [`run_chunks`] returns — so
    /// the pointee is alive for every dereference even though the lifetime
    /// has been erased.
    task: *const (dyn Fn(usize) + Sync),
    num_chunks: usize,
    /// Next chunk index to claim (work-stealing cursor).
    cursor: AtomicUsize,
    /// Chunks whose execution (or poisoned/aborted skip) has completed.
    finished: AtomicUsize,
    /// Worker participation permits, `threads - 1` at submission. A pool
    /// that has grown beyond this job's pinned thread count wakes every
    /// worker, but only permit holders join the steal loop — keeping
    /// [`with_threads`] an actual cap on participants, not just a growth
    /// hint.
    permits: AtomicUsize,
    /// The submitter's SIMD level at submission time. Workers pin it for
    /// the duration of their steal loop, so a `simd::with_level` override
    /// on the calling thread governs *every* chunk of the job — a kernel
    /// must never execute at mixed levels.
    simd_level: crate::simd::SimdLevel,
    /// Set when any participant panicked: remaining chunks are claimed and
    /// counted without running user code so the submitter can unblock.
    abort: AtomicBool,
}

/// Decrements `permits` if any remain, reporting whether one was taken.
fn take_permit(permits: &AtomicUsize) -> bool {
    permits
        .fetch_update(Ordering::AcqRel, Ordering::Acquire, |p| p.checked_sub(1))
        .is_ok()
}

// SAFETY: `task` is only dereferenced while the submitting `run_chunks`
// frame is blocked (it waits for `finished == num_chunks` before
// returning), so the borrow it erases is live for every dereference.
unsafe impl Send for Job {}
unsafe impl Sync for Job {}

struct PoolState {
    /// Bumped once per submitted job; sleeping workers compare it against
    /// the last epoch they served to detect new work.
    epoch: u64,
    /// The job of the current epoch; cleared by the submitter on
    /// completion so stale datasets are not kept alive.
    job: Option<Arc<Job>>,
    /// Join handles of the spawned workers (`len()` is the pool size).
    handles: Vec<std::thread::JoinHandle<()>>,
    shutting_down: bool,
    /// First worker-panic message; set once, cleared only by
    /// [`shutdown_pool`].
    poisoned: Option<String>,
}

struct Pool {
    state: Mutex<PoolState>,
    /// Workers park here between jobs.
    job_cv: Condvar,
    /// Submitters park here while late workers drain the last chunks.
    done_cv: Condvar,
}

impl Pool {
    /// Locks the state, recovering from mutex poisoning: the pool's own
    /// poison flag (not the mutex) is the mechanism that reports worker
    /// panics, and the state's invariants hold at every await point.
    fn lock(&self) -> MutexGuard<'_, PoolState> {
        self.state.lock().unwrap_or_else(PoisonError::into_inner)
    }
}

fn pool() -> &'static Pool {
    static POOL: OnceLock<Pool> = OnceLock::new();
    POOL.get_or_init(|| Pool {
        state: Mutex::new(PoolState {
            epoch: 0,
            job: None,
            handles: Vec::new(),
            shutting_down: false,
            poisoned: None,
        }),
        job_cv: Condvar::new(),
        done_cv: Condvar::new(),
    })
}

/// Number of live worker threads in the persistent pool (0 before the
/// first multi-chunk kernel call and after [`shutdown_pool`]). The
/// submitting thread always participates on top of this count.
pub fn pool_workers() -> usize {
    pool().lock().handles.len()
}

/// Whether a worker panic has poisoned the pool. Poison makes every
/// multi-chunk kernel call panic until [`shutdown_pool`] clears it.
pub fn pool_is_poisoned() -> bool {
    pool().lock().poisoned.is_some()
}

/// Why [`try_shutdown_pool`] refused to run.
#[derive(Debug, Clone, Copy, PartialEq, Eq)]
pub enum ShutdownError {
    /// The call was made from inside a pool worker thread (a [`run_tasks`]
    /// task or a chunk closure running on a worker). A worker cannot join
    /// itself, so the request is rejected instead of deadlocking; call
    /// shutdown from a thread the pool does not own.
    CalledFromWorker,
}

impl std::fmt::Display for ShutdownError {
    fn fmt(&self, f: &mut std::fmt::Formatter<'_>) -> std::fmt::Result {
        match self {
            ShutdownError::CalledFromWorker => f.write_str(
                "shutdown_pool called from inside a pool worker thread; \
                 a worker cannot join itself — shut the pool down from a \
                 thread it does not own",
            ),
        }
    }
}

impl std::error::Error for ShutdownError {}

/// Stops and joins every pool worker, clearing any poison. The next
/// multi-chunk kernel call lazily restarts the pool. Safe to call at any
/// time; a job currently in flight finishes first (its submitter drains all
/// chunks itself if the workers exit early), and kernel calls racing the
/// shutdown run inline rather than spawning doomed workers. Concurrent and
/// repeated shutdowns serialise on an internal gate, so the call is
/// idempotent.
///
/// # Panics
/// Panics with [`ShutdownError::CalledFromWorker`]'s message when invoked
/// from inside a pool worker thread (where joining would self-deadlock);
/// use [`try_shutdown_pool`] to handle that case as a typed error.
pub fn shutdown_pool() {
    if let Err(err) = try_shutdown_pool() {
        panic!("priu_linalg::par::shutdown_pool: {err}");
    }
}

/// [`shutdown_pool`] with the self-join hazard reported as a typed error:
/// invoked from a pool worker thread (e.g. from inside a [`run_tasks`]
/// task), it returns [`ShutdownError::CalledFromWorker`] instead of
/// deadlocking on joining the calling thread. In-flight jobs submitted by
/// *other* threads drain to completion — their submitters participate in
/// the steal loop and finish any chunks the exiting workers leave behind —
/// so queued `run_tasks` work is never lost or wedged by a shutdown.
///
/// # Errors
/// [`ShutdownError::CalledFromWorker`] when called on a pool worker thread.
pub fn try_shutdown_pool() -> Result<(), ShutdownError> {
    if IS_POOL_WORKER.with(|flag| flag.get()) {
        return Err(ShutdownError::CalledFromWorker);
    }
    let p = pool();
    // Serialise whole shutdowns: overlapping calls would otherwise race one
    // call's `shutting_down = false` reset against another's join phase,
    // leaking un-joined workers into a pool that believes itself empty.
    static SHUTDOWN_GATE: Mutex<()> = Mutex::new(());
    let _gate = SHUTDOWN_GATE.lock().unwrap_or_else(PoisonError::into_inner);
    let handles = {
        let mut state = p.lock();
        state.shutting_down = true;
        p.job_cv.notify_all();
        std::mem::take(&mut state.handles)
    };
    for handle in handles {
        let _ = handle.join();
    }
    let mut state = p.lock();
    state.shutting_down = false;
    state.poisoned = None;
    Ok(())
}

/// Spawns workers until the pool holds at least `target` of them. Called
/// with the state lock held.
fn ensure_workers(p: &'static Pool, state: &mut PoolState, target: usize) {
    while state.handles.len() < target {
        let handle = std::thread::Builder::new()
            .name("priu-par-worker".to_string())
            .spawn(move || worker_loop(p))
            .expect("spawning a priu-par worker thread failed");
        state.handles.push(handle);
    }
}

fn worker_loop(p: &'static Pool) {
    IS_POOL_WORKER.with(|flag| flag.set(true));
    let mut seen_epoch = 0u64;
    let mut state = p.lock();
    loop {
        while !state.shutting_down && state.epoch == seen_epoch {
            state = p.job_cv.wait(state).unwrap_or_else(PoisonError::into_inner);
        }
        if state.shutting_down {
            return;
        }
        seen_epoch = state.epoch;
        let job = state.job.clone();
        drop(state);
        if let Some(job) = job {
            if take_permit(&job.permits) {
                // Pin the submitter's SIMD level so every chunk of the job
                // executes the same kernel variant.
                crate::simd::with_level(job.simd_level, || steal_loop(p, &job, true));
            }
        }
        state = p.lock();
    }
}

/// Counts one finished chunk, waking the submitter on the last one. The
/// `AcqRel` increment publishes the chunk's output writes to the submitter's
/// final `Acquire` read of the counter.
fn finish_chunk(p: &Pool, job: &Job) {
    if job.finished.fetch_add(1, Ordering::AcqRel) + 1 == job.num_chunks {
        // Notify while holding the state lock so the submitter cannot miss
        // the wakeup between its predicate check and its wait.
        let _state = p.lock();
        p.done_cv.notify_all();
    }
}

/// The shared work-stealing loop. Workers (`catch_panics = true`) trap chunk
/// panics, poison the pool and keep draining so the submitter can unblock;
/// the submitter (`catch_panics = false`) lets the panic unwind — its
/// [`DrainGuard`] aborts the job and waits for stragglers first.
fn steal_loop(p: &Pool, job: &Job, catch_panics: bool) {
    loop {
        let c = job.cursor.fetch_add(1, Ordering::Relaxed);
        if c >= job.num_chunks {
            break;
        }
        // Count the chunk even if the closure unwinds, so accounting stays
        // exact and the submitter never deadlocks.
        struct ChunkDone<'a>(&'a Pool, &'a Job);
        impl Drop for ChunkDone<'_> {
            fn drop(&mut self) {
                finish_chunk(self.0, self.1);
            }
        }
        let _done = ChunkDone(p, job);
        if job.abort.load(Ordering::Acquire) {
            continue;
        }
        // SAFETY: `c < num_chunks`, so the submitter is still blocked inside
        // `run_chunks` and the closure behind `task` is alive.
        let task = unsafe { &*job.task };
        if catch_panics {
            if let Err(payload) = panic::catch_unwind(AssertUnwindSafe(|| task(c))) {
                job.abort.store(true, Ordering::Release);
                let message = panic_message(payload.as_ref());
                let mut state = p.lock();
                if state.poisoned.is_none() {
                    state.poisoned = Some(message);
                }
            }
        } else {
            task(c);
        }
    }
}

fn panic_message(payload: &(dyn std::any::Any + Send)) -> String {
    if let Some(s) = payload.downcast_ref::<&str>() {
        (*s).to_string()
    } else if let Some(s) = payload.downcast_ref::<String>() {
        s.clone()
    } else {
        "worker panicked with a non-string payload".to_string()
    }
}

/// Blocks until every chunk of the job has finished, then clears the pool's
/// reference to it. Runs on normal return *and* on unwind (a submitter-side
/// chunk panic), where it first flips `abort` so workers stop running user
/// code; waiting before the submitter's frame dies is what keeps the
/// type-erased closure borrow sound.
struct DrainGuard<'a> {
    pool: &'static Pool,
    job: &'a Arc<Job>,
}

impl Drop for DrainGuard<'_> {
    fn drop(&mut self) {
        if std::thread::panicking() {
            self.job.abort.store(true, Ordering::Release);
        }
        let mut state = self.pool.lock();
        while self.job.finished.load(Ordering::Acquire) < self.job.num_chunks {
            state = self
                .pool
                .done_cv
                .wait(state)
                .unwrap_or_else(PoisonError::into_inner);
        }
        if state
            .job
            .as_ref()
            .is_some_and(|current| Arc::ptr_eq(current, self.job))
        {
            state.job = None;
        }
        if !std::thread::panicking() {
            if let Some(message) = state.poisoned.clone() {
                drop(state);
                panic!("priu_linalg::par worker pool poisoned: a worker panicked: {message}");
            }
        }
    }
}

/// Runs `f(chunk_index)` for every chunk in `0..num_chunks` on the
/// persistent worker pool (up to [`current_threads`] participants including
/// the calling thread, sharing an atomic work-stealing cursor). `f` must
/// only touch data disjoint per chunk; the order in which chunks *execute*
/// is unspecified, so deterministic reductions must combine per-chunk
/// partials in chunk order afterwards.
///
/// Single-chunk calls, single-thread counts and calls made from inside a
/// pool worker (nested kernels) run inline and never touch the pool.
///
/// # Panics
/// Panics if the pool is poisoned by an earlier worker panic (see
/// [`shutdown_pool`]), or propagates a panic raised by `f` during this call.
pub fn run_chunks<F>(num_chunks: usize, f: F)
where
    F: Fn(usize) + Sync,
{
    let threads = current_threads().min(num_chunks);
    if threads <= 1 || IS_POOL_WORKER.with(|flag| flag.get()) {
        for c in 0..num_chunks {
            f(c);
        }
        return;
    }

    let p = pool();
    let trait_obj: &(dyn Fn(usize) + Sync) = &f;
    // SAFETY: lifetime erasure only — layout of the fat pointer is
    // unchanged. The `DrainGuard` below keeps this frame alive until no
    // worker can dereference the pointer again.
    let task: *const (dyn Fn(usize) + Sync) =
        unsafe { std::mem::transmute::<&(dyn Fn(usize) + Sync), _>(trait_obj) };
    let job = Arc::new(Job {
        task,
        num_chunks,
        cursor: AtomicUsize::new(0),
        finished: AtomicUsize::new(0),
        permits: AtomicUsize::new(threads - 1),
        simd_level: crate::simd::current_level(),
        abort: AtomicBool::new(false),
    });

    {
        let mut state = p.lock();
        if let Some(message) = &state.poisoned {
            panic!("priu_linalg::par worker pool poisoned: a worker panicked: {message}");
        }
        if state.shutting_down {
            // A concurrent `shutdown_pool` has already taken the join
            // handles; any worker spawned now would exit immediately yet
            // leave a dead handle behind, silently capping future
            // parallelism. Run this call inline instead.
            drop(state);
            for c in 0..num_chunks {
                f(c);
            }
            return;
        }
        ensure_workers(p, &mut state, threads - 1);
        state.job = Some(job.clone());
        state.epoch = state.epoch.wrapping_add(1);
        p.job_cv.notify_all();
    }

    let _drain = DrainGuard { pool: p, job: &job };
    steal_loop(p, &job, false);
    // DrainGuard::drop waits for stragglers, clears the job and rethrows
    // worker poison.
}

/// Runs independent coarse-grained tasks on the persistent pool, returning
/// their results **in task order** regardless of execution order — the
/// companion of [`run_chunks`] for heterogeneous jobs (the bench runner's
/// per-rate figure sweeps, batch experiment shards).
///
/// Execution rides the same machinery as the kernels: up to
/// [`current_threads`] participants including the caller, work-stealing
/// over the task list, inline execution when only one thread is available
/// or when called from inside a pool worker. Tasks that themselves invoke
/// multi-chunk kernels run those kernels inline on their worker thread, so
/// fanning out callers of parallel kernels is sound (and the kernels stop
/// competing for the same cores).
///
/// Determinism: the *returned vector* is ordered by task index, and each
/// task's own computation is as deterministic as the task makes it — the
/// linalg kernels it calls stay bitwise reproducible because their chunk
/// decompositions never depend on where they run. Wall-clock *timings*
/// measured inside concurrently running tasks do contend, so timing-
/// sensitive sweeps should pin `PRIU_THREADS=1` when per-point latency
/// fidelity matters more than sweep throughput.
///
/// # Panics
/// Propagates task panics with the pool's usual poisoning contract (a
/// panic on a worker poisons the pool until [`shutdown_pool`]).
pub fn run_tasks<T, F>(tasks: Vec<F>) -> Vec<T>
where
    F: FnOnce() -> T + Send,
    T: Send,
{
    let slots: Vec<Mutex<Option<F>>> = tasks.into_iter().map(|t| Mutex::new(Some(t))).collect();
    let results: Vec<Mutex<Option<T>>> = (0..slots.len()).map(|_| Mutex::new(None)).collect();
    run_chunks(slots.len(), |c| {
        let task = slots[c]
            .lock()
            .unwrap_or_else(PoisonError::into_inner)
            .take()
            .expect("run_chunks claims every index exactly once");
        let result = task();
        *results[c].lock().unwrap_or_else(PoisonError::into_inner) = Some(result);
    });
    results
        .into_iter()
        .map(|slot| {
            slot.into_inner()
                .unwrap_or_else(PoisonError::into_inner)
                .expect("run_chunks finished every task")
        })
        .collect()
}

/// Runs a map-style chunked kernel: each chunk of the decomposition fills
/// its own disjoint `width`-strided region of `out` (`fill(range, region)`
/// must write every element of `region`, which is
/// `out[range.start * width..range.end * width]`). Single-chunk
/// decompositions run inline on the calling thread; empty ones do nothing.
/// The contiguous-region map kernels touch [`SendPtr`] only here, so their
/// disjointness argument lives here once; the Jacobi eigen rotation passes
/// (`dense::decomposition::eigen`) additionally use [`SendPtr`] directly
/// for their scattered row/column pairs, with their own disjointness
/// invariant (tournament pairs) argued at those sites.
pub(crate) fn map_chunks<D, F>(chunks: &D, width: usize, out: &mut [f64], fill: F)
where
    D: RangeDecomp + Sync,
    F: Fn(Range<usize>, &mut [f64]) + Sync,
{
    if chunks.count() == 0 {
        return;
    }
    if chunks.count() == 1 {
        fill(chunks.range(0), out);
        return;
    }
    let ptr = SendPtr(out.as_mut_ptr());
    run_chunks(chunks.count(), |c| {
        let range = chunks.range(c);
        // SAFETY: chunk output regions are disjoint by construction of the
        // decomposition (ranges partition `0..n`, scaled by `width`).
        let region = unsafe { ptr.slice(range.start * width, range.len() * width) };
        fill(range, region);
    });
}

/// Runs a reduction-style chunked kernel deterministically: each chunk
/// accumulates into its own zeroed `m`-sized partial (borrowed from the
/// scratch pool), then the partials are combined into `out` serially in
/// **ascending chunk order** — the rule that makes the summation tree a
/// function of the decomposition alone. `out` is not cleared; single-chunk
/// decompositions accumulate straight into it on the calling thread.
pub(crate) fn reduce_chunks<D, F>(chunks: &D, m: usize, out: &mut [f64], accumulate: F)
where
    D: RangeDecomp + Sync,
    F: Fn(Range<usize>, &mut [f64]) + Sync,
{
    if chunks.count() == 0 {
        return;
    }
    if chunks.count() == 1 {
        accumulate(chunks.range(0), out);
        return;
    }
    with_scratch(chunks.count() * m, |partials| {
        let ptr = SendPtr(partials.as_mut_ptr());
        run_chunks(chunks.count(), |c| {
            // SAFETY: one disjoint m-sized partial per chunk.
            let partial = unsafe { ptr.slice(c * m, m) };
            accumulate(chunks.range(c), partial);
        });
        for c in 0..chunks.count() {
            crate::dense::vector::axpy_slices(out, 1.0, &partials[c * m..(c + 1) * m]);
        }
    });
}

thread_local! {
    static SCRATCH_POOL: RefCell<Vec<Vec<f64>>> = const { RefCell::new(Vec::new()) };
}

/// Lends the calling thread a zeroed scratch buffer of exactly `len` values
/// from a per-thread pool (so steady-state kernel calls allocate nothing),
/// returning it to the pool afterwards. Re-entrant: nested kernels each get
/// their own buffer.
pub fn with_scratch<R>(len: usize, f: impl FnOnce(&mut [f64]) -> R) -> R {
    let mut buf = SCRATCH_POOL
        .with(|pool| pool.borrow_mut().pop())
        .unwrap_or_default();
    buf.clear();
    buf.resize(len, 0.0);
    let result = f(&mut buf);
    SCRATCH_POOL.with(|pool| pool.borrow_mut().push(buf));
    result
}

/// A raw mutable pointer that may cross thread boundaries. Used to hand each
/// chunk worker its disjoint output or partial-buffer region; safety rests on
/// the chunk decomposition making those regions non-overlapping.
pub(crate) struct SendPtr(pub *mut f64);

// SAFETY: the pointer is only dereferenced through disjoint per-chunk
// regions computed from a `Chunks` decomposition.
unsafe impl Send for SendPtr {}
unsafe impl Sync for SendPtr {}

impl SendPtr {
    /// The mutable sub-slice `[offset, offset + len)`.
    ///
    /// # Safety
    /// The caller must guarantee the region is in bounds and not aliased by
    /// any other live reference for the duration of the borrow.
    // The &self → &mut lifetime laundering is the point of this wrapper:
    // each chunk worker derives a unique, disjoint region from the shared
    // pointer.
    #[allow(clippy::mut_from_ref)]
    pub(crate) unsafe fn slice(&self, offset: usize, len: usize) -> &mut [f64] {
        std::slice::from_raw_parts_mut(self.0.add(offset), len)
    }
}

#[cfg(test)]
mod tests {
    use super::*;

    #[test]
    fn chunk_decomposition_depends_only_on_n() {
        let c = Chunks::new(1000, 128, 16);
        assert_eq!(c.count(), 7);
        let mut covered = 0;
        for i in 0..c.count() {
            let r = c.range(i);
            assert_eq!(r.start, covered);
            covered = r.end;
            // The min-chunk contract: only the final chunk may be smaller.
            if i + 1 < c.count() {
                assert!(r.len() >= 128);
            }
        }
        assert_eq!(covered, 1000);

        // Inputs below twice the minimum collapse to a single chunk (the
        // inline, pool-free path).
        assert_eq!(Chunks::new(100, 128, 16).count(), 1);
        assert_eq!(Chunks::new(255, 128, 16).count(), 1);
        assert_eq!(Chunks::new(257, 256, 16).count(), 1);
        assert_eq!(Chunks::new(256, 128, 16).count(), 2);
        assert_eq!(Chunks::new(0, 128, 16).count(), 0);

        // The cap bounds the chunk count for huge inputs.
        assert_eq!(Chunks::new(1_000_000, 128, 16).count(), 16);
    }

    #[test]
    fn chunk_decomposition_edge_cases() {
        // n = 0: zero chunks, nothing to cover.
        let empty = Chunks::new(0, 64, 8);
        assert_eq!(empty.count(), 0);

        // n < 2·min_chunk collapses to exactly one chunk covering 0..n,
        // even right at the boundary.
        for n in [1usize, 63, 64, 127] {
            let c = Chunks::new(n, 64, 8);
            assert_eq!(c.count(), 1, "n={n}");
            assert_eq!(c.range(0), 0..n);
        }

        // max_chunks = 1 forces a single chunk no matter how large n is.
        let capped = Chunks::new(10_000, 16, 1);
        assert_eq!(capped.count(), 1);
        assert_eq!(capped.range(0), 0..10_000);

        // The final chunk absorbs the remainder and is the only one allowed
        // to be smaller than min_chunk.
        let c = Chunks::new(130, 64, 8);
        assert_eq!(c.count(), 2);
        assert_eq!(c.range(0), 0..65);
        assert_eq!(c.range(1), 65..130);
        let c = Chunks::new(1030, 128, 4);
        assert_eq!(c.count(), 4);
        let sizes: Vec<usize> = (0..c.count()).map(|i| c.range(i).len()).collect();
        assert_eq!(sizes.iter().sum::<usize>(), 1030);
        for (i, &s) in sizes.iter().enumerate() {
            if i + 1 < sizes.len() {
                assert!(s >= 128, "chunk {i} has {s} items");
            }
        }
        assert!(*sizes.last().unwrap() <= sizes[0]);

        // min_chunk/max_chunks of 0 are clamped to 1 rather than dividing
        // by zero.
        assert_eq!(Chunks::new(10, 0, 0).count(), 1);
    }

    #[test]
    fn nnz_chunks_balance_skewed_work() {
        // 8 rows; row 0 carries almost all the nnz.
        let cum = [0usize, 1000, 1001, 1002, 1003, 1004, 1005, 1006, 1007];
        let c = NnzChunks::new(&cum, 2, 4);
        // Count follows the Chunks rule over the *item* count.
        assert_eq!(RangeDecomp::count(&c), Chunks::new(8, 2, 4).count());
        // Ranges are ascending, disjoint and cover 0..8.
        let mut covered = 0;
        let mut first_range = 0..0;
        for i in 0..RangeDecomp::count(&c) {
            let r = RangeDecomp::range(&c, i);
            assert_eq!(r.start, covered, "chunk {i}");
            covered = r.end;
            if i == 0 {
                first_range = r;
            }
        }
        assert_eq!(covered, 8);
        // The heavy row is isolated: chunk 0 holds row 0 alone.
        assert_eq!(first_range, 0..1);

        // Uniform work reproduces near-even row splits.
        let uniform: Vec<usize> = (0..=100).map(|i| i * 3).collect();
        let u = NnzChunks::new(&uniform, 10, 8);
        for i in 0..RangeDecomp::count(&u) {
            let r = RangeDecomp::range(&u, i);
            assert!(r.len() >= 10, "uniform chunk {i} has {} items", r.len());
        }

        // Zero items and zero work degrade gracefully.
        assert_eq!(RangeDecomp::count(&NnzChunks::new(&[0], 4, 4)), 0);
        let zero_work = [0usize; 9];
        let z = NnzChunks::new(&zero_work, 2, 4);
        let mut covered = 0;
        for i in 0..RangeDecomp::count(&z) {
            let r = RangeDecomp::range(&z, i);
            assert_eq!(r.start, covered);
            covered = r.end;
        }
        assert_eq!(covered, 8);
    }

    #[test]
    fn run_tasks_returns_results_in_task_order() {
        for threads in [1usize, 4] {
            let tasks: Vec<_> = (0..17)
                .map(|i| move || i * i + usize::from(i % 3 == 0))
                .collect();
            let results = with_threads(threads, || run_tasks(tasks));
            for (i, &r) in results.iter().enumerate() {
                assert_eq!(r, i * i + usize::from(i % 3 == 0), "threads={threads}");
            }
        }
        // Empty task lists are fine.
        let empty: Vec<fn() -> usize> = Vec::new();
        assert!(run_tasks(empty).is_empty());
    }

    #[test]
    fn run_tasks_nests_inside_parallel_kernels() {
        // Tasks that themselves submit chunked work run it inline on their
        // worker thread; totals stay exact.
        let totals = with_threads(4, || {
            run_tasks(
                (0..6)
                    .map(|t| {
                        move || {
                            let hits: Vec<AtomicUsize> =
                                (0..9).map(|_| AtomicUsize::new(0)).collect();
                            run_chunks(hits.len(), |c| {
                                hits[c].fetch_add(t + 1, Ordering::Relaxed);
                            });
                            hits.iter()
                                .map(|h| h.load(Ordering::Relaxed))
                                .sum::<usize>()
                        }
                    })
                    .collect(),
            )
        });
        for (t, &total) in totals.iter().enumerate() {
            assert_eq!(total, 9 * (t + 1));
        }
    }

    #[test]
    fn run_chunks_visits_every_chunk_exactly_once() {
        for threads in [1usize, 4] {
            let hits: Vec<AtomicUsize> = (0..23).map(|_| AtomicUsize::new(0)).collect();
            with_threads(threads, || {
                run_chunks(hits.len(), |c| {
                    hits[c].fetch_add(1, Ordering::Relaxed);
                });
            });
            assert!(hits.iter().all(|h| h.load(Ordering::Relaxed) == 1));
        }
    }

    #[test]
    fn with_threads_nests_and_restores() {
        let outer = current_threads();
        with_threads(3, || {
            assert_eq!(current_threads(), 3);
            with_threads(7, || assert_eq!(current_threads(), 7));
            assert_eq!(current_threads(), 3);
        });
        assert_eq!(current_threads(), outer);
    }

    #[test]
    fn priu_threads_parsing_rejects_garbage_loudly() {
        // Unset: fall back to the machine's parallelism (at least one).
        assert!(parse_priu_threads(None) >= 1);
        // Valid values pass through (whitespace tolerated).
        assert_eq!(parse_priu_threads(Some("3")), 3);
        assert_eq!(parse_priu_threads(Some(" 12 ")), 12);
        // Garbage and zero are rejected with a panic naming the variable.
        for bad in ["0", "", "four", "-2", "1.5", "4x"] {
            let result = panic::catch_unwind(|| parse_priu_threads(Some(bad)));
            let payload = result.expect_err(&format!("PRIU_THREADS={bad:?} must be rejected"));
            let message = payload
                .downcast_ref::<String>()
                .cloned()
                .unwrap_or_default();
            assert!(
                message.contains("PRIU_THREADS"),
                "panic message must name the variable, got {message:?}"
            );
        }
    }

    #[test]
    fn scratch_is_zeroed_and_reentrant() {
        with_scratch(8, |a| {
            assert!(a.iter().all(|&x| x == 0.0));
            a[0] = 42.0;
            with_scratch(4, |b| {
                assert!(b.iter().all(|&x| x == 0.0));
                b[0] = 7.0;
            });
            assert_eq!(a[0], 42.0);
        });
        // Buffers return to the pool zeroed on next borrow.
        with_scratch(8, |a| assert!(a.iter().all(|&x| x == 0.0)));
    }
}
