//! Dense row-major matrices and vectors plus their decompositions.

pub mod decomposition;
pub mod matrix;
pub mod ops;
pub mod vector;

pub use matrix::Matrix;
pub use vector::{axpy_slices, scale_add_slices, Vector};
