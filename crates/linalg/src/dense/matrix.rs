//! Dense row-major `f64` matrices.
//!
//! The four hot kernels (`matvec`, `transpose_matvec`, `matmul`,
//! `weighted_gram`) are chunked through [`crate::par`] — map-style kernels
//! write disjoint output regions per chunk, reduction-style kernels combine
//! per-chunk partials in chunk order — so their results are bitwise
//! reproducible for any `PRIU_THREADS`. Each also has an `_into` variant
//! writing into a caller-owned buffer; the allocating versions delegate to
//! those, so both spellings produce identical bits. The innermost loops
//! (row dots, axpy-style accumulations) dispatch through [`crate::simd`],
//! which preserves the 4-wide lane structure on every level — results are
//! bitwise reproducible per `PRIU_SIMD` level, and differ across levels
//! only by FMA's removed intermediate roundings.

use std::ops::{Add, Index, IndexMut, Mul, Range, Sub};

use crate::dense::vector::{axpy_slices, dot_slices, Vector};
use crate::error::{LinalgError, Result};
use crate::par::{self, Chunks};

/// Minimum rows per chunk, shared by every kernel: inputs under
/// `2 * MIN_CHUNK_ROWS` rows take the inline single-chunk path that spawns
/// nothing and allocates nothing, so mb-SGD-sized batches (≤ 511 rows)
/// never pay parallel overhead; parallelism is reserved for the full-data
/// kernels (opt captures, closed-form views, truncation matmuls).
const MIN_CHUNK_ROWS: usize = 256;
/// Chunk-count caps: map-style kernels (`matvec` / `matmul`, disjoint
/// outputs) can fan wide; reductions (`transpose_matvec` / `weighted_gram`)
/// are capped tighter because each extra chunk costs an `m`- or `m²`-sized
/// partial buffer in the combine step.
const MAP_MAX_CHUNKS: usize = 64;
const TMV_MAX_CHUNKS: usize = 16;
const GRAM_MAX_CHUNKS: usize = 8;

/// A dense, row-major matrix of `f64` values.
///
/// Row-major storage matches the access pattern of the PrIU update rules,
/// where training samples are rows of the feature matrix `X` and the hot
/// kernels are row-dot-vector products.
#[derive(Debug, Clone, Default, PartialEq)]
pub struct Matrix {
    rows: usize,
    cols: usize,
    data: Vec<f64>,
}

impl Matrix {
    /// Creates a matrix from row-major data.
    ///
    /// # Errors
    /// Returns [`LinalgError::InvalidArgument`] if `data.len() != rows * cols`.
    pub fn from_vec(rows: usize, cols: usize, data: Vec<f64>) -> Result<Self> {
        if data.len() != rows * cols {
            return Err(LinalgError::InvalidArgument(format!(
                "expected {} elements for a {}x{} matrix, got {}",
                rows * cols,
                rows,
                cols,
                data.len()
            )));
        }
        Ok(Self { rows, cols, data })
    }

    /// Creates a `rows x cols` matrix of zeros.
    pub fn zeros(rows: usize, cols: usize) -> Self {
        Self {
            rows,
            cols,
            data: vec![0.0; rows * cols],
        }
    }

    /// Creates the `n x n` identity matrix.
    pub fn identity(n: usize) -> Self {
        let mut m = Self::zeros(n, n);
        for i in 0..n {
            m[(i, i)] = 1.0;
        }
        m
    }

    /// Creates a matrix by evaluating `f(row, col)` at every position.
    pub fn from_fn(rows: usize, cols: usize, mut f: impl FnMut(usize, usize) -> f64) -> Self {
        let mut data = Vec::with_capacity(rows * cols);
        for i in 0..rows {
            for j in 0..cols {
                data.push(f(i, j));
            }
        }
        Self { rows, cols, data }
    }

    /// Creates a square diagonal matrix from the given diagonal entries.
    pub fn from_diagonal(diag: &[f64]) -> Self {
        let n = diag.len();
        let mut m = Self::zeros(n, n);
        for (i, &d) in diag.iter().enumerate() {
            m[(i, i)] = d;
        }
        m
    }

    /// Builds a matrix whose rows are the given vectors.
    ///
    /// # Errors
    /// Returns [`LinalgError::InvalidArgument`] if rows have unequal lengths
    /// or the slice is empty.
    pub fn from_rows(rows: &[Vector]) -> Result<Self> {
        if rows.is_empty() {
            return Err(LinalgError::InvalidArgument(
                "Matrix::from_rows requires at least one row".to_string(),
            ));
        }
        let cols = rows[0].len();
        let mut data = Vec::with_capacity(rows.len() * cols);
        for r in rows {
            if r.len() != cols {
                return Err(LinalgError::InvalidArgument(
                    "Matrix::from_rows requires rows of equal length".to_string(),
                ));
            }
            data.extend_from_slice(r.as_slice());
        }
        Ok(Self {
            rows: rows.len(),
            cols,
            data,
        })
    }

    /// Number of rows.
    pub fn nrows(&self) -> usize {
        self.rows
    }

    /// Number of columns.
    pub fn ncols(&self) -> usize {
        self.cols
    }

    /// `(rows, cols)` pair.
    pub fn shape(&self) -> (usize, usize) {
        (self.rows, self.cols)
    }

    /// Whether the matrix is square.
    pub fn is_square(&self) -> bool {
        self.rows == self.cols
    }

    /// Raw row-major data.
    pub fn as_slice(&self) -> &[f64] {
        &self.data
    }

    /// Capacity of the backing allocation in `f64` values (buffer-reuse
    /// accounting for workspace callers).
    pub fn capacity(&self) -> usize {
        self.data.capacity()
    }

    /// Mutable raw row-major data.
    pub fn as_mut_slice(&mut self) -> &mut [f64] {
        &mut self.data
    }

    /// Borrow of the `i`-th row as a slice.
    ///
    /// # Panics
    /// Panics if `i >= nrows()`.
    pub fn row(&self, i: usize) -> &[f64] {
        assert!(i < self.rows, "row index {i} out of bounds ({})", self.rows);
        &self.data[i * self.cols..(i + 1) * self.cols]
    }

    /// Mutable borrow of the `i`-th row.
    ///
    /// # Panics
    /// Panics if `i >= nrows()`.
    pub fn row_mut(&mut self, i: usize) -> &mut [f64] {
        assert!(i < self.rows, "row index {i} out of bounds ({})", self.rows);
        &mut self.data[i * self.cols..(i + 1) * self.cols]
    }

    /// Copy of the `i`-th row as a [`Vector`].
    pub fn row_vector(&self, i: usize) -> Vector {
        Vector::from_vec(self.row(i).to_vec())
    }

    /// Copy of the `j`-th column as a [`Vector`].
    ///
    /// # Panics
    /// Panics if `j >= ncols()`.
    pub fn column(&self, j: usize) -> Vector {
        assert!(
            j < self.cols,
            "column index {j} out of bounds ({})",
            self.cols
        );
        Vector::from_fn(self.rows, |i| self[(i, j)])
    }

    /// Copy of the main diagonal.
    pub fn diagonal(&self) -> Vector {
        let n = self.rows.min(self.cols);
        Vector::from_fn(n, |i| self[(i, i)])
    }

    /// Returns the transpose.
    pub fn transpose(&self) -> Matrix {
        let mut out = Matrix::zeros(self.cols, self.rows);
        for i in 0..self.rows {
            for j in 0..self.cols {
                out[(j, i)] = self[(i, j)];
            }
        }
        out
    }

    /// Returns a new matrix consisting of the selected rows (in order).
    ///
    /// # Panics
    /// Panics if any index is out of bounds.
    pub fn select_rows(&self, indices: &[usize]) -> Matrix {
        let mut out = Matrix::zeros(0, 0);
        self.select_rows_into(indices, &mut out);
        out
    }

    /// Writes the selected rows (in order) into `out`, reshaping it and
    /// reusing its allocation — the workspace counterpart of
    /// [`Matrix::select_rows`] used by the per-iteration hot path.
    ///
    /// # Panics
    /// Panics if any index is out of bounds.
    pub fn select_rows_into(&self, indices: &[usize], out: &mut Matrix) {
        out.rows = indices.len();
        out.cols = self.cols;
        out.data.clear();
        out.data.reserve(indices.len() * self.cols);
        for &i in indices {
            out.data.extend_from_slice(self.row(i));
        }
    }

    /// Appends the rows of `other` beneath this matrix in place — row-major
    /// storage makes this one `memcpy`-style extend, which is what lets the
    /// delta engines grow a feature matrix without rebuilding it.
    ///
    /// # Errors
    /// Returns [`LinalgError::ShapeMismatch`] if the column counts differ.
    pub fn append_rows(&mut self, other: &Matrix) -> Result<()> {
        if other.cols != self.cols {
            return Err(LinalgError::ShapeMismatch {
                op: "Matrix::append_rows",
                left: self.shape(),
                right: other.shape(),
            });
        }
        self.data.extend_from_slice(&other.data);
        self.rows += other.rows;
        Ok(())
    }

    /// Reshapes the matrix to `rows x cols` with every entry zero, reusing
    /// the existing allocation when its capacity suffices.
    pub fn reshape_zeroed(&mut self, rows: usize, cols: usize) {
        self.rows = rows;
        self.cols = cols;
        self.data.clear();
        self.data.resize(rows * cols, 0.0);
    }

    /// Reshapes the matrix to `rows x cols` reusing the allocation *without*
    /// zeroing retained elements — for workspace buffers the caller fully
    /// overwrites before reading (skips the `O(rows·cols)` memset of
    /// [`Matrix::reshape_zeroed`]). Retained contents are unspecified.
    pub fn reshape_for_overwrite(&mut self, rows: usize, cols: usize) {
        self.rows = rows;
        self.cols = cols;
        self.data.resize(rows * cols, 0.0);
    }

    /// Returns the submatrix consisting of the first `k` columns.
    ///
    /// # Errors
    /// Returns [`LinalgError::InvalidArgument`] if `k > ncols()`.
    pub fn first_columns(&self, k: usize) -> Result<Matrix> {
        if k > self.cols {
            return Err(LinalgError::InvalidArgument(format!(
                "cannot take {} columns from a matrix with {}",
                k, self.cols
            )));
        }
        let mut out = Matrix::zeros(self.rows, k);
        for i in 0..self.rows {
            out.row_mut(i).copy_from_slice(&self.row(i)[..k]);
        }
        Ok(out)
    }

    /// Frobenius norm.
    pub fn frobenius_norm(&self) -> f64 {
        dot_slices(&self.data, &self.data).sqrt()
    }

    /// Maximum absolute entry.
    pub fn max_abs(&self) -> f64 {
        self.data.iter().fold(0.0, |acc: f64, x| acc.max(x.abs()))
    }

    /// In-place scaling of every entry by `alpha`.
    pub fn scale_mut(&mut self, alpha: f64) {
        for x in &mut self.data {
            *x *= alpha;
        }
    }

    /// Returns a copy scaled by `alpha`.
    pub fn scaled(&self, alpha: f64) -> Matrix {
        let mut out = self.clone();
        out.scale_mut(alpha);
        out
    }

    /// In-place `self += alpha * other`.
    ///
    /// # Errors
    /// Returns [`LinalgError::ShapeMismatch`] if shapes differ.
    pub fn axpy(&mut self, alpha: f64, other: &Matrix) -> Result<()> {
        if self.shape() != other.shape() {
            return Err(LinalgError::ShapeMismatch {
                op: "Matrix::axpy",
                left: self.shape(),
                right: other.shape(),
            });
        }
        for (x, y) in self.data.iter_mut().zip(other.data.iter()) {
            *x += alpha * y;
        }
        Ok(())
    }

    /// Adds `alpha` to every diagonal entry (shift / ridge regularisation).
    ///
    /// # Errors
    /// Returns [`LinalgError::NotSquare`] if the matrix is not square.
    pub fn add_diagonal_mut(&mut self, alpha: f64) -> Result<()> {
        if !self.is_square() {
            return Err(LinalgError::NotSquare {
                rows: self.rows,
                cols: self.cols,
            });
        }
        for i in 0..self.rows {
            self.data[i * self.cols + i] += alpha;
        }
        Ok(())
    }

    /// Matrix-vector product `self * x`.
    ///
    /// # Errors
    /// Returns [`LinalgError::ShapeMismatch`] if `x.len() != ncols()`.
    pub fn matvec(&self, x: &[f64]) -> Result<Vector> {
        let mut out = Vector::zeros(self.rows);
        self.matvec_into(x, out.as_mut_slice())?;
        Ok(out)
    }

    /// Matrix-vector product into a caller-owned buffer (`out = self * x`).
    /// Row-parallel with 4-row register blocking; bitwise identical to
    /// [`Matrix::matvec`] for any thread count.
    ///
    /// # Errors
    /// Returns [`LinalgError::ShapeMismatch`] if `x.len() != ncols()` or
    /// `out.len() != nrows()`.
    pub fn matvec_into(&self, x: &[f64], out: &mut [f64]) -> Result<()> {
        if x.len() != self.cols {
            return Err(LinalgError::ShapeMismatch {
                op: "Matrix::matvec",
                left: self.shape(),
                right: (x.len(), 1),
            });
        }
        if out.len() != self.rows {
            return Err(LinalgError::ShapeMismatch {
                op: "Matrix::matvec_into(out)",
                left: self.shape(),
                right: (out.len(), 1),
            });
        }
        let chunks = Chunks::new(self.rows, MIN_CHUNK_ROWS, MAP_MAX_CHUNKS);
        par::map_chunks(&chunks, 1, out, |range, chunk_out| {
            matvec_rows(self, range, x, chunk_out)
        });
        Ok(())
    }

    /// Transposed matrix-vector product `self^T * x`.
    ///
    /// # Errors
    /// Returns [`LinalgError::ShapeMismatch`] if `x.len() != nrows()`.
    pub fn transpose_matvec(&self, x: &[f64]) -> Result<Vector> {
        let mut out = Vector::zeros(self.cols);
        self.transpose_matvec_into(x, out.as_mut_slice())?;
        Ok(out)
    }

    /// Transposed matrix-vector product into a caller-owned buffer
    /// (`out = self^T * x`, overwritten). Chunked over rows with a
    /// chunk-ordered reduction, so results are bitwise identical for any
    /// thread count.
    ///
    /// # Errors
    /// Returns [`LinalgError::ShapeMismatch`] if `x.len() != nrows()` or
    /// `out.len() != ncols()`.
    pub fn transpose_matvec_into(&self, x: &[f64], out: &mut [f64]) -> Result<()> {
        if x.len() != self.rows {
            return Err(LinalgError::ShapeMismatch {
                op: "Matrix::transpose_matvec",
                left: (self.cols, self.rows),
                right: (x.len(), 1),
            });
        }
        if out.len() != self.cols {
            return Err(LinalgError::ShapeMismatch {
                op: "Matrix::transpose_matvec_into(out)",
                left: (self.cols, self.rows),
                right: (out.len(), 1),
            });
        }
        out.fill(0.0);
        let chunks = Chunks::new(self.rows, MIN_CHUNK_ROWS, TMV_MAX_CHUNKS);
        par::reduce_chunks(&chunks, self.cols, out, |range, partial| {
            transpose_matvec_rows(self, range, x, partial)
        });
        Ok(())
    }

    /// Matrix-matrix product `self * other`.
    ///
    /// # Errors
    /// Returns [`LinalgError::ShapeMismatch`] if inner dimensions differ.
    pub fn matmul(&self, other: &Matrix) -> Result<Matrix> {
        let mut out = Matrix::zeros(0, 0);
        self.matmul_into(other, &mut out)?;
        Ok(out)
    }

    /// Matrix-matrix product into a caller-owned matrix, which is reshaped
    /// to `nrows x other.ncols()` reusing its allocation. Row-parallel
    /// (each output row is produced by exactly one chunk), i-k-j inner
    /// order; bitwise identical for any thread count.
    ///
    /// # Errors
    /// Returns [`LinalgError::ShapeMismatch`] if inner dimensions differ.
    pub fn matmul_into(&self, other: &Matrix, out: &mut Matrix) -> Result<()> {
        if self.cols != other.rows {
            return Err(LinalgError::ShapeMismatch {
                op: "Matrix::matmul",
                left: self.shape(),
                right: other.shape(),
            });
        }
        out.reshape_zeroed(self.rows, other.cols);
        let chunks = Chunks::new(self.rows, MIN_CHUNK_ROWS, MAP_MAX_CHUNKS);
        par::map_chunks(&chunks, other.cols, &mut out.data, |range, block| {
            matmul_rows(self, other, range, block)
        });
        Ok(())
    }

    /// Gram matrix `self^T * self` (an `ncols x ncols` symmetric matrix).
    pub fn gram(&self) -> Matrix {
        self.weighted_gram(None)
    }

    /// Weighted Gram matrix `self^T * diag(w) * self`.
    ///
    /// With `w = None` this is the plain Gram matrix. This is the kernel that
    /// produces the PrIU intermediate results `Σ_i a_i x_i x_i^T` (Eq. 13/19).
    ///
    /// # Panics
    /// Panics if `w` is provided with a length different from `nrows()`.
    pub fn weighted_gram(&self, w: Option<&[f64]>) -> Matrix {
        let mut out = Matrix::zeros(0, 0);
        self.weighted_gram_into(w, &mut out);
        out
    }

    /// Weighted Gram matrix into a caller-owned matrix, which is reshaped to
    /// `ncols x ncols` reusing its allocation. Chunked over rows with a
    /// chunk-ordered reduction over upper-triangle partials, so results are
    /// bitwise identical for any thread count.
    ///
    /// # Panics
    /// Panics if `w` is provided with a length different from `nrows()`.
    pub fn weighted_gram_into(&self, w: Option<&[f64]>, out: &mut Matrix) {
        if let Some(w) = w {
            assert_eq!(w.len(), self.rows, "weight length must equal row count");
        }
        let m = self.cols;
        out.reshape_zeroed(m, m);
        let chunks = Chunks::new(self.rows, MIN_CHUNK_ROWS, GRAM_MAX_CHUNKS);
        // Chunk-ordered reduction over m*m upper-triangle partials (the
        // strictly lower triangles stay zero until mirrored below).
        par::reduce_chunks(&chunks, m * m, &mut out.data, |range, partial| {
            weighted_gram_rows(self, range, w, partial)
        });
        // Mirror upper triangle to lower triangle.
        for a in 0..m {
            for b in (a + 1)..m {
                out.data[b * m + a] = out.data[a * m + b];
            }
        }
    }

    /// Rank-one update `self += alpha * x * x^T`.
    ///
    /// # Errors
    /// Returns [`LinalgError::ShapeMismatch`] if the matrix is not
    /// `len(x) x len(x)`.
    pub fn rank_one_update(&mut self, alpha: f64, x: &Vector) -> Result<()> {
        if self.rows != x.len() || self.cols != x.len() {
            return Err(LinalgError::ShapeMismatch {
                op: "Matrix::rank_one_update",
                left: self.shape(),
                right: (x.len(), x.len()),
            });
        }
        for i in 0..self.rows {
            let xi = alpha * x[i];
            if xi == 0.0 {
                continue;
            }
            let row = &mut self.data[i * self.cols..(i + 1) * self.cols];
            for j in 0..self.cols {
                row[j] += xi * x[j];
            }
        }
        Ok(())
    }

    /// Outer product `x * y^T`.
    pub fn outer(x: &Vector, y: &Vector) -> Matrix {
        Matrix::from_fn(x.len(), y.len(), |i, j| x[i] * y[j])
    }

    /// Whether all entries are finite.
    pub fn is_finite(&self) -> bool {
        self.data.iter().all(|x| x.is_finite())
    }

    /// Maximum absolute asymmetry `max_ij |A_ij - A_ji|` (0 for symmetric).
    ///
    /// # Errors
    /// Returns [`LinalgError::NotSquare`] for non-square matrices.
    pub fn asymmetry(&self) -> Result<f64> {
        if !self.is_square() {
            return Err(LinalgError::NotSquare {
                rows: self.rows,
                cols: self.cols,
            });
        }
        let mut worst = 0.0_f64;
        for i in 0..self.rows {
            for j in (i + 1)..self.cols {
                worst = worst.max((self[(i, j)] - self[(j, i)]).abs());
            }
        }
        Ok(worst)
    }
}

/// `out[o] = a.row(rows.start + o) · x` with 4-row register blocking that
/// shares the loads of `x`. Both the fused 4-row dots and the single-row
/// remainder dispatch through [`crate::simd`], whose lanes reproduce the
/// exact 4-wide accumulator scheme of [`dot_slices`] on every level — so
/// blocking never changes bits within a SIMD level.
fn matvec_rows(a: &Matrix, rows: Range<usize>, x: &[f64], out: &mut [f64]) {
    debug_assert_eq!(out.len(), rows.len());
    let mut i = rows.start;
    let mut o = 0;
    while i + 4 <= rows.end {
        let block = crate::simd::dot4(a.row(i), a.row(i + 1), a.row(i + 2), a.row(i + 3), x);
        out[o..o + 4].copy_from_slice(&block);
        i += 4;
        o += 4;
    }
    while i < rows.end {
        out[o] = dot_slices(a.row(i), x);
        i += 1;
        o += 1;
    }
}

/// Accumulates `Σ_{i ∈ rows} x[i] · a.row(i)` into `out` (not cleared).
fn transpose_matvec_rows(a: &Matrix, rows: Range<usize>, x: &[f64], out: &mut [f64]) {
    for i in rows {
        let xi = x[i];
        if xi == 0.0 {
            continue;
        }
        axpy_slices(out, xi, a.row(i));
    }
}

/// `out` rows `rows` of `a * b`, i-k-j order with an unrolled j-loop.
/// `out_block` holds `rows.len() * b.ncols()` values, pre-zeroed.
fn matmul_rows(a: &Matrix, b: &Matrix, rows: Range<usize>, out_block: &mut [f64]) {
    let width = b.cols;
    for (local, i) in rows.enumerate() {
        let a_row = a.row(i);
        let out_row = &mut out_block[local * width..(local + 1) * width];
        for (k, &aik) in a_row.iter().enumerate() {
            if aik == 0.0 {
                continue;
            }
            axpy_slices(out_row, aik, b.row(k));
        }
    }
}

/// Accumulates the upper triangle of `Σ_{i ∈ rows} w_i x_i x_iᵀ` into the
/// row-major `m x m` buffer `out` (not cleared, lower triangle untouched).
fn weighted_gram_rows(a: &Matrix, rows: Range<usize>, w: Option<&[f64]>, out: &mut [f64]) {
    let m = a.cols;
    for i in rows {
        let wi = w.map_or(1.0, |w| w[i]);
        if wi == 0.0 {
            continue;
        }
        let row = a.row(i);
        for p in 0..m {
            let vp = wi * row[p];
            if vp == 0.0 {
                continue;
            }
            axpy_slices(&mut out[p * m + p..(p + 1) * m], vp, &row[p..]);
        }
    }
}

impl Index<(usize, usize)> for Matrix {
    type Output = f64;
    fn index(&self, (i, j): (usize, usize)) -> &Self::Output {
        debug_assert!(i < self.rows && j < self.cols);
        &self.data[i * self.cols + j]
    }
}

impl IndexMut<(usize, usize)> for Matrix {
    fn index_mut(&mut self, (i, j): (usize, usize)) -> &mut Self::Output {
        debug_assert!(i < self.rows && j < self.cols);
        &mut self.data[i * self.cols + j]
    }
}

impl Add<&Matrix> for &Matrix {
    type Output = Matrix;
    fn add(self, rhs: &Matrix) -> Matrix {
        assert_eq!(self.shape(), rhs.shape(), "matrix addition shape mismatch");
        let mut out = self.clone();
        out.axpy(1.0, rhs).expect("shapes already checked");
        out
    }
}

impl Sub<&Matrix> for &Matrix {
    type Output = Matrix;
    fn sub(self, rhs: &Matrix) -> Matrix {
        assert_eq!(
            self.shape(),
            rhs.shape(),
            "matrix subtraction shape mismatch"
        );
        let mut out = self.clone();
        out.axpy(-1.0, rhs).expect("shapes already checked");
        out
    }
}

impl Mul<f64> for &Matrix {
    type Output = Matrix;
    fn mul(self, rhs: f64) -> Matrix {
        self.scaled(rhs)
    }
}

#[cfg(test)]
mod tests {
    use super::*;

    fn sample() -> Matrix {
        Matrix::from_vec(2, 3, vec![1.0, 2.0, 3.0, 4.0, 5.0, 6.0]).unwrap()
    }

    #[test]
    fn construction_and_indexing() {
        let m = sample();
        assert_eq!(m.shape(), (2, 3));
        assert_eq!(m[(0, 0)], 1.0);
        assert_eq!(m[(1, 2)], 6.0);
        assert_eq!(m.row(1), &[4.0, 5.0, 6.0]);
        assert_eq!(m.column(1).as_slice(), &[2.0, 5.0]);
        assert!(Matrix::from_vec(2, 2, vec![1.0]).is_err());
        assert!(!m.is_square());
        assert!(Matrix::identity(3).is_square());
    }

    #[test]
    fn identity_and_diagonal() {
        let i = Matrix::identity(3);
        assert_eq!(i.diagonal().as_slice(), &[1.0, 1.0, 1.0]);
        let d = Matrix::from_diagonal(&[2.0, 3.0]);
        assert_eq!(d[(0, 0)], 2.0);
        assert_eq!(d[(0, 1)], 0.0);
        assert_eq!(d[(1, 1)], 3.0);
    }

    #[test]
    fn transpose_roundtrip() {
        let m = sample();
        let t = m.transpose();
        assert_eq!(t.shape(), (3, 2));
        assert_eq!(t[(2, 1)], 6.0);
        assert_eq!(t.transpose(), m);
    }

    #[test]
    fn matvec_and_transpose_matvec() {
        let m = sample();
        let x = Vector::from_vec(vec![1.0, 0.0, -1.0]);
        let y = m.matvec(&x).unwrap();
        assert_eq!(y.as_slice(), &[-2.0, -2.0]);
        let z = m
            .transpose_matvec(&Vector::from_vec(vec![1.0, 1.0]))
            .unwrap();
        assert_eq!(z.as_slice(), &[5.0, 7.0, 9.0]);
        assert!(m.matvec(&Vector::zeros(2)).is_err());
        assert!(m.transpose_matvec(&Vector::zeros(3)).is_err());
    }

    #[test]
    fn matmul_against_hand_computed() {
        let a = Matrix::from_vec(2, 2, vec![1.0, 2.0, 3.0, 4.0]).unwrap();
        let b = Matrix::from_vec(2, 2, vec![5.0, 6.0, 7.0, 8.0]).unwrap();
        let c = a.matmul(&b).unwrap();
        assert_eq!(c.as_slice(), &[19.0, 22.0, 43.0, 50.0]);
        assert!(a.matmul(&sample()).is_ok());
        assert!(sample().matmul(&a).is_err());
    }

    #[test]
    fn gram_matches_explicit_product() {
        let x = sample();
        let g = x.gram();
        let explicit = x.transpose().matmul(&x).unwrap();
        for i in 0..3 {
            for j in 0..3 {
                assert!((g[(i, j)] - explicit[(i, j)]).abs() < 1e-12);
            }
        }
        assert!(g.asymmetry().unwrap() < 1e-15);
    }

    #[test]
    fn weighted_gram_matches_loop() {
        let x = sample();
        let w = [0.5, -2.0];
        let g = x.weighted_gram(Some(&w));
        let mut expected = Matrix::zeros(3, 3);
        for (i, &wi) in w.iter().enumerate() {
            expected.rank_one_update(wi, &x.row_vector(i)).unwrap();
        }
        for i in 0..3 {
            for j in 0..3 {
                assert!((g[(i, j)] - expected[(i, j)]).abs() < 1e-12);
            }
        }
    }

    #[test]
    fn select_rows_and_first_columns() {
        let x = sample();
        let s = x.select_rows(&[1]);
        assert_eq!(s.shape(), (1, 3));
        assert_eq!(s.row(0), &[4.0, 5.0, 6.0]);
        let c = x.first_columns(2).unwrap();
        assert_eq!(c.shape(), (2, 2));
        assert_eq!(c.row(1), &[4.0, 5.0]);
        assert!(x.first_columns(4).is_err());
    }

    #[test]
    fn arithmetic_operators() {
        let a = Matrix::identity(2);
        let b = Matrix::from_vec(2, 2, vec![1.0, 2.0, 3.0, 4.0]).unwrap();
        let sum = &a + &b;
        assert_eq!(sum[(0, 0)], 2.0);
        let diff = &b - &a;
        assert_eq!(diff[(1, 1)], 3.0);
        let scaled = &b * 2.0;
        assert_eq!(scaled[(1, 0)], 6.0);
    }

    #[test]
    fn outer_and_rank_one() {
        let x = Vector::from_vec(vec![1.0, 2.0]);
        let y = Vector::from_vec(vec![3.0, 4.0, 5.0]);
        let o = Matrix::outer(&x, &y);
        assert_eq!(o.shape(), (2, 3));
        assert_eq!(o[(1, 2)], 10.0);
        let mut m = Matrix::zeros(2, 2);
        m.rank_one_update(2.0, &x).unwrap();
        assert_eq!(m[(1, 1)], 8.0);
        assert!(m.rank_one_update(1.0, &y).is_err());
    }

    #[test]
    fn add_diagonal_and_norms() {
        let mut m = Matrix::zeros(2, 2);
        m.add_diagonal_mut(3.0).unwrap();
        assert_eq!(m.diagonal().as_slice(), &[3.0, 3.0]);
        assert!((m.frobenius_norm() - (18.0_f64).sqrt()).abs() < 1e-12);
        assert_eq!(m.max_abs(), 3.0);
        let mut rect = Matrix::zeros(2, 3);
        assert!(rect.add_diagonal_mut(1.0).is_err());
        assert!(rect.asymmetry().is_err());
    }

    #[test]
    fn from_rows_validation() {
        let rows = vec![
            Vector::from_vec(vec![1.0, 2.0]),
            Vector::from_vec(vec![3.0, 4.0]),
        ];
        let m = Matrix::from_rows(&rows).unwrap();
        assert_eq!(m.shape(), (2, 2));
        assert!(Matrix::from_rows(&[]).is_err());
        let bad = vec![Vector::zeros(2), Vector::zeros(3)];
        assert!(Matrix::from_rows(&bad).is_err());
    }
}
