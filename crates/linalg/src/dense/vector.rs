//! Dense `f64` vectors.
//!
//! [`Vector`] is a thin, owned wrapper over `Vec<f64>` that adds the handful
//! of numerical operations the PrIU update rules need (axpy, dot products,
//! norms, elementwise combinators) while still dereferencing to a slice so it
//! interoperates with plain `&[f64]` APIs.

use std::ops::{Add, AddAssign, Deref, DerefMut, Index, IndexMut, Mul, Neg, Sub, SubAssign};

use crate::error::{LinalgError, Result};

/// A dense column vector of `f64` values.
#[derive(Debug, Clone, PartialEq, Default)]
pub struct Vector {
    data: Vec<f64>,
}

impl Vector {
    /// Creates a vector from raw data.
    pub fn from_vec(data: Vec<f64>) -> Self {
        Self { data }
    }

    /// Creates a vector of `len` zeros.
    pub fn zeros(len: usize) -> Self {
        Self {
            data: vec![0.0; len],
        }
    }

    /// Creates a vector of `len` ones.
    pub fn ones(len: usize) -> Self {
        Self {
            data: vec![1.0; len],
        }
    }

    /// Creates a vector filled with `value`.
    pub fn filled(len: usize, value: f64) -> Self {
        Self {
            data: vec![value; len],
        }
    }

    /// Creates a vector by evaluating `f` at every index.
    pub fn from_fn(len: usize, f: impl FnMut(usize) -> f64) -> Self {
        Self {
            data: (0..len).map(f).collect(),
        }
    }

    /// Number of entries.
    pub fn len(&self) -> usize {
        self.data.len()
    }

    /// Whether the vector has zero entries.
    pub fn is_empty(&self) -> bool {
        self.data.is_empty()
    }

    /// Immutable view of the underlying slice.
    pub fn as_slice(&self) -> &[f64] {
        &self.data
    }

    /// Mutable view of the underlying slice.
    pub fn as_mut_slice(&mut self) -> &mut [f64] {
        &mut self.data
    }

    /// Consumes the vector and returns the underlying storage.
    pub fn into_vec(self) -> Vec<f64> {
        self.data
    }

    /// Appends the entries of `other` (the label-append building block of
    /// the delta engines' addition path).
    pub fn extend_from_slice(&mut self, other: &[f64]) {
        self.data.extend_from_slice(other);
    }

    /// Dot product `self · other`.
    ///
    /// # Errors
    /// Returns [`LinalgError::ShapeMismatch`] if the lengths differ.
    pub fn dot(&self, other: &Vector) -> Result<f64> {
        if self.len() != other.len() {
            return Err(LinalgError::ShapeMismatch {
                op: "Vector::dot",
                left: (self.len(), 1),
                right: (other.len(), 1),
            });
        }
        Ok(dot_slices(&self.data, &other.data))
    }

    /// Euclidean (L2) norm.
    pub fn norm2(&self) -> f64 {
        dot_slices(&self.data, &self.data).sqrt()
    }

    /// Squared Euclidean norm.
    pub fn norm2_squared(&self) -> f64 {
        dot_slices(&self.data, &self.data)
    }

    /// L1 norm (sum of absolute values).
    pub fn norm1(&self) -> f64 {
        self.data.iter().map(|x| x.abs()).sum()
    }

    /// Infinity norm (maximum absolute value); 0 for an empty vector.
    pub fn norm_inf(&self) -> f64 {
        self.data.iter().fold(0.0, |acc, x| acc.max(x.abs()))
    }

    /// Sum of all entries.
    pub fn sum(&self) -> f64 {
        self.data.iter().sum()
    }

    /// Mean of all entries; 0 for an empty vector.
    pub fn mean(&self) -> f64 {
        if self.data.is_empty() {
            0.0
        } else {
            self.sum() / self.data.len() as f64
        }
    }

    /// In-place scaling by a scalar.
    pub fn scale_mut(&mut self, alpha: f64) {
        for x in &mut self.data {
            *x *= alpha;
        }
    }

    /// Returns a new vector scaled by `alpha`.
    pub fn scaled(&self, alpha: f64) -> Vector {
        let mut out = self.clone();
        out.scale_mut(alpha);
        out
    }

    /// In-place `self += alpha * other` (BLAS `axpy`). Accepts any slice;
    /// `&Vector` arguments coerce.
    ///
    /// # Errors
    /// Returns [`LinalgError::ShapeMismatch`] if lengths differ.
    pub fn axpy(&mut self, alpha: f64, other: &[f64]) -> Result<()> {
        if self.len() != other.len() {
            return Err(LinalgError::ShapeMismatch {
                op: "Vector::axpy",
                left: (self.len(), 1),
                right: (other.len(), 1),
            });
        }
        axpy_slices(&mut self.data, alpha, other);
        Ok(())
    }

    /// Fused in-place `self = alpha * self + beta * other` — the mb-SGD
    /// parameter step `w ← (1-ηλ) w + η·g` as one pass over memory.
    /// Bitwise identical to [`Vector::scale_mut`] followed by
    /// [`Vector::axpy`] on every SIMD level (see
    /// [`crate::simd::scale_add`]).
    ///
    /// # Errors
    /// Returns [`LinalgError::ShapeMismatch`] if lengths differ.
    pub fn scale_add(&mut self, alpha: f64, beta: f64, other: &[f64]) -> Result<()> {
        if self.len() != other.len() {
            return Err(LinalgError::ShapeMismatch {
                op: "Vector::scale_add",
                left: (self.len(), 1),
                right: (other.len(), 1),
            });
        }
        scale_add_slices(&mut self.data, alpha, beta, other);
        Ok(())
    }

    /// Elementwise application of `f`, producing a new vector.
    pub fn map(&self, f: impl Fn(f64) -> f64) -> Vector {
        Vector::from_vec(self.data.iter().map(|&x| f(x)).collect())
    }

    /// Elementwise in-place application of `f`.
    pub fn map_mut(&mut self, f: impl Fn(f64) -> f64) {
        for x in &mut self.data {
            *x = f(*x);
        }
    }

    /// Elementwise product (Hadamard), producing a new vector.
    ///
    /// # Errors
    /// Returns [`LinalgError::ShapeMismatch`] if lengths differ.
    pub fn hadamard(&self, other: &Vector) -> Result<Vector> {
        if self.len() != other.len() {
            return Err(LinalgError::ShapeMismatch {
                op: "Vector::hadamard",
                left: (self.len(), 1),
                right: (other.len(), 1),
            });
        }
        Ok(Vector::from_vec(
            self.data
                .iter()
                .zip(other.data.iter())
                .map(|(a, b)| a * b)
                .collect(),
        ))
    }

    /// Index of the maximum entry (first one in case of ties).
    ///
    /// Returns `None` for an empty vector.
    pub fn argmax(&self) -> Option<usize> {
        if self.data.is_empty() {
            return None;
        }
        let mut best = 0;
        for i in 1..self.data.len() {
            if self.data[i] > self.data[best] {
                best = i;
            }
        }
        Some(best)
    }

    /// Returns `true` if every entry is finite.
    pub fn is_finite(&self) -> bool {
        self.data.iter().all(|x| x.is_finite())
    }

    /// Concatenates several vectors into one (the `vec([w1, ..., wq])`
    /// flattening used for multinomial logistic regression parameters).
    pub fn concat(parts: &[Vector]) -> Vector {
        let mut data = Vec::with_capacity(parts.iter().map(Vector::len).sum());
        for p in parts {
            data.extend_from_slice(&p.data);
        }
        Vector::from_vec(data)
    }

    /// Splits the vector into `q` equally sized chunks.
    ///
    /// # Errors
    /// Returns [`LinalgError::InvalidArgument`] if the length is not a
    /// multiple of `q` or `q == 0`.
    pub fn split(&self, q: usize) -> Result<Vec<Vector>> {
        if q == 0 || !self.len().is_multiple_of(q) {
            return Err(LinalgError::InvalidArgument(format!(
                "cannot split a vector of length {} into {} equal chunks",
                self.len(),
                q
            )));
        }
        let chunk = self.len() / q;
        Ok(self
            .data
            .chunks(chunk)
            .map(|c| Vector::from_vec(c.to_vec()))
            .collect())
    }
}

/// `out += alpha * src` over equal-length slices, dispatched through the
/// [`crate::simd`] microkernel layer (element-wise, so vector width never
/// changes bits; the Avx2 level fuses each element's multiply-add).
///
/// # Panics
/// Panics if the lengths differ (checked in every build — the SIMD paths
/// write through raw pointers, so the bound is load-bearing).
pub fn axpy_slices(out: &mut [f64], alpha: f64, src: &[f64]) {
    crate::simd::axpy(out, alpha, src);
}

/// `out = alpha * out + beta * src` over equal-length slices — the fused
/// GD step, dispatched through [`crate::simd::scale_add`]. On every SIMD
/// level this is bitwise identical to `scale` by `alpha` followed by
/// [`axpy_slices`] with `beta`, so fusing the two passes is purely a
/// memory-traffic optimisation.
///
/// # Panics
/// Panics if the lengths differ (checked in every build — the SIMD paths
/// write through raw pointers, so the bound is load-bearing).
pub fn scale_add_slices(out: &mut [f64], alpha: f64, beta: f64, src: &[f64]) {
    crate::simd::scale_add(out, alpha, beta, src);
}

/// Dot product of two equal-length slices (caller guarantees lengths
/// match), dispatched through [`crate::simd::dot`] — the canonical 4-wide
/// accumulator lanes shared by the scalar and AVX2 paths.
pub(crate) fn dot_slices(a: &[f64], b: &[f64]) -> f64 {
    debug_assert_eq!(a.len(), b.len());
    crate::simd::dot(a, b)
}

impl Deref for Vector {
    type Target = [f64];
    fn deref(&self) -> &Self::Target {
        &self.data
    }
}

impl DerefMut for Vector {
    fn deref_mut(&mut self) -> &mut Self::Target {
        &mut self.data
    }
}

impl Index<usize> for Vector {
    type Output = f64;
    fn index(&self, index: usize) -> &Self::Output {
        &self.data[index]
    }
}

impl IndexMut<usize> for Vector {
    fn index_mut(&mut self, index: usize) -> &mut Self::Output {
        &mut self.data[index]
    }
}

impl From<Vec<f64>> for Vector {
    fn from(data: Vec<f64>) -> Self {
        Vector::from_vec(data)
    }
}

impl From<&[f64]> for Vector {
    fn from(data: &[f64]) -> Self {
        Vector::from_vec(data.to_vec())
    }
}

impl FromIterator<f64> for Vector {
    fn from_iter<T: IntoIterator<Item = f64>>(iter: T) -> Self {
        Vector::from_vec(iter.into_iter().collect())
    }
}

impl Add<&Vector> for &Vector {
    type Output = Vector;
    fn add(self, rhs: &Vector) -> Vector {
        assert_eq!(self.len(), rhs.len(), "vector addition length mismatch");
        Vector::from_vec(
            self.data
                .iter()
                .zip(rhs.data.iter())
                .map(|(a, b)| a + b)
                .collect(),
        )
    }
}

impl Sub<&Vector> for &Vector {
    type Output = Vector;
    fn sub(self, rhs: &Vector) -> Vector {
        assert_eq!(self.len(), rhs.len(), "vector subtraction length mismatch");
        Vector::from_vec(
            self.data
                .iter()
                .zip(rhs.data.iter())
                .map(|(a, b)| a - b)
                .collect(),
        )
    }
}

impl AddAssign<&Vector> for Vector {
    fn add_assign(&mut self, rhs: &Vector) {
        assert_eq!(self.len(), rhs.len(), "vector += length mismatch");
        for (a, b) in self.data.iter_mut().zip(rhs.data.iter()) {
            *a += b;
        }
    }
}

impl SubAssign<&Vector> for Vector {
    fn sub_assign(&mut self, rhs: &Vector) {
        assert_eq!(self.len(), rhs.len(), "vector -= length mismatch");
        for (a, b) in self.data.iter_mut().zip(rhs.data.iter()) {
            *a -= b;
        }
    }
}

impl Mul<f64> for &Vector {
    type Output = Vector;
    fn mul(self, rhs: f64) -> Vector {
        self.scaled(rhs)
    }
}

impl Neg for &Vector {
    type Output = Vector;
    fn neg(self) -> Vector {
        self.scaled(-1.0)
    }
}

#[cfg(test)]
mod tests {
    use super::*;

    #[test]
    fn construction_and_len() {
        let v = Vector::zeros(4);
        assert_eq!(v.len(), 4);
        assert!(v.iter().all(|&x| x == 0.0));
        let o = Vector::ones(3);
        assert_eq!(o.sum(), 3.0);
        let f = Vector::from_fn(5, |i| i as f64);
        assert_eq!(f.as_slice(), &[0.0, 1.0, 2.0, 3.0, 4.0]);
        assert!(!f.is_empty());
        assert!(Vector::zeros(0).is_empty());
    }

    #[test]
    fn dot_and_norms() {
        let a = Vector::from_vec(vec![1.0, 2.0, 3.0]);
        let b = Vector::from_vec(vec![4.0, -5.0, 6.0]);
        assert_eq!(a.dot(&b).unwrap(), 4.0 - 10.0 + 18.0);
        assert!((a.norm2() - 14.0_f64.sqrt()).abs() < 1e-12);
        assert_eq!(a.norm1(), 6.0);
        assert_eq!(b.norm_inf(), 6.0);
        assert_eq!(a.norm2_squared(), 14.0);
    }

    #[test]
    fn dot_shape_mismatch() {
        let a = Vector::zeros(3);
        let b = Vector::zeros(4);
        assert!(matches!(a.dot(&b), Err(LinalgError::ShapeMismatch { .. })));
    }

    #[test]
    fn axpy_and_scale() {
        let mut a = Vector::from_vec(vec![1.0, 1.0]);
        let b = Vector::from_vec(vec![2.0, 3.0]);
        a.axpy(2.0, &b).unwrap();
        assert_eq!(a.as_slice(), &[5.0, 7.0]);
        a.scale_mut(0.5);
        assert_eq!(a.as_slice(), &[2.5, 3.5]);
        let c = a.scaled(2.0);
        assert_eq!(c.as_slice(), &[5.0, 7.0]);
    }

    #[test]
    fn operators() {
        let a = Vector::from_vec(vec![1.0, 2.0]);
        let b = Vector::from_vec(vec![3.0, 5.0]);
        assert_eq!((&a + &b).as_slice(), &[4.0, 7.0]);
        assert_eq!((&b - &a).as_slice(), &[2.0, 3.0]);
        assert_eq!((&a * 3.0).as_slice(), &[3.0, 6.0]);
        assert_eq!((-&a).as_slice(), &[-1.0, -2.0]);
        let mut c = a.clone();
        c += &b;
        assert_eq!(c.as_slice(), &[4.0, 7.0]);
        c -= &b;
        assert_eq!(c.as_slice(), &[1.0, 2.0]);
    }

    #[test]
    fn map_hadamard_argmax() {
        let a = Vector::from_vec(vec![1.0, -2.0, 3.0]);
        assert_eq!(a.map(|x| x * x).as_slice(), &[1.0, 4.0, 9.0]);
        let h = a.hadamard(&Vector::from_vec(vec![2.0, 2.0, 2.0])).unwrap();
        assert_eq!(h.as_slice(), &[2.0, -4.0, 6.0]);
        assert_eq!(a.argmax(), Some(2));
        assert_eq!(Vector::zeros(0).argmax(), None);
        let mut m = a.clone();
        m.map_mut(f64::abs);
        assert_eq!(m.as_slice(), &[1.0, 2.0, 3.0]);
    }

    #[test]
    fn concat_and_split() {
        let a = Vector::from_vec(vec![1.0, 2.0]);
        let b = Vector::from_vec(vec![3.0, 4.0]);
        let c = Vector::concat(&[a.clone(), b.clone()]);
        assert_eq!(c.as_slice(), &[1.0, 2.0, 3.0, 4.0]);
        let parts = c.split(2).unwrap();
        assert_eq!(parts[0], a);
        assert_eq!(parts[1], b);
        assert!(c.split(3).is_err());
        assert!(c.split(0).is_err());
    }

    #[test]
    fn statistics() {
        let a = Vector::from_vec(vec![1.0, 2.0, 3.0, 4.0]);
        assert_eq!(a.mean(), 2.5);
        assert_eq!(Vector::zeros(0).mean(), 0.0);
        assert!(a.is_finite());
        let b = Vector::from_vec(vec![f64::NAN]);
        assert!(!b.is_finite());
    }

    #[test]
    fn scale_add_matches_scale_then_axpy_bitwise() {
        let src: Vec<f64> = (0..9).map(|i| (i as f64 * 0.3).sin()).collect();
        let mut fused = Vector::from_fn(9, |i| (i as f64 * 0.7).cos());
        let mut pair = fused.clone();
        fused.scale_add(0.95, -0.125, &src).unwrap();
        pair.scale_mut(0.95);
        pair.axpy(-0.125, &src).unwrap();
        assert_eq!(fused, pair);
        assert!(fused.scale_add(1.0, 1.0, &[0.0; 3]).is_err());
    }

    #[test]
    fn dot_slices_unrolled_matches_naive() {
        let a: Vec<f64> = (0..13).map(|i| i as f64 * 0.5).collect();
        let b: Vec<f64> = (0..13).map(|i| (i as f64).sin()).collect();
        let naive: f64 = a.iter().zip(&b).map(|(x, y)| x * y).sum();
        assert!((dot_slices(&a, &b) - naive).abs() < 1e-12);
    }
}
