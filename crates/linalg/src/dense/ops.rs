//! Free-standing helpers on dense containers that do not belong to a single
//! type: column statistics (used for feature standardisation) and small
//! conveniences shared by the trainers.

use crate::dense::matrix::Matrix;
use crate::dense::vector::{axpy_slices, Vector};
use crate::error::{LinalgError, Result};

/// Per-column means of a matrix.
pub fn column_means(x: &Matrix) -> Vector {
    let (n, m) = x.shape();
    let mut means = vec![0.0; m];
    for i in 0..n {
        // axpy with α = 1.0 multiplies exactly, so the accumulation bits
        // match the plain loop on every SIMD level.
        axpy_slices(&mut means, 1.0, x.row(i));
    }
    if n > 0 {
        for v in &mut means {
            *v /= n as f64;
        }
    }
    Vector::from_vec(means)
}

/// Per-column population standard deviations of a matrix.
pub fn column_stds(x: &Matrix, means: &Vector) -> Result<Vector> {
    let (n, m) = x.shape();
    if means.len() != m {
        return Err(LinalgError::ShapeMismatch {
            op: "column_stds",
            left: (n, m),
            right: (means.len(), 1),
        });
    }
    let mut vars = vec![0.0; m];
    for i in 0..n {
        let row = x.row(i);
        for j in 0..m {
            let d = row[j] - means[j];
            vars[j] += d * d;
        }
    }
    if n > 0 {
        for v in &mut vars {
            *v = (*v / n as f64).sqrt();
        }
    }
    Ok(Vector::from_vec(vars))
}

/// Computes `sum_i coeffs[i] * vectors[i]`.
///
/// # Errors
/// Returns [`LinalgError::InvalidArgument`] if the slices have different
/// lengths or are empty, and [`LinalgError::ShapeMismatch`] if the vectors
/// have inconsistent lengths.
pub fn linear_combination(coeffs: &[f64], vectors: &[Vector]) -> Result<Vector> {
    if coeffs.len() != vectors.len() || vectors.is_empty() {
        return Err(LinalgError::InvalidArgument(format!(
            "linear_combination requires equally many non-zero coefficients ({}) and vectors ({})",
            coeffs.len(),
            vectors.len()
        )));
    }
    let mut out = Vector::zeros(vectors[0].len());
    for (c, v) in coeffs.iter().zip(vectors.iter()) {
        out.axpy(*c, v)?;
    }
    Ok(out)
}

/// Squared L2 norms of each row of a matrix (each row through the
/// dispatched dot microkernel's 4-wide lanes).
pub fn row_norms_squared(x: &Matrix) -> Vector {
    Vector::from_fn(x.nrows(), |i| crate::simd::dot(x.row(i), x.row(i)))
}

/// Squared L2 norms of each column of a matrix.
pub fn column_norms_squared(x: &Matrix) -> Vector {
    let (n, m) = x.shape();
    let mut out = vec![0.0; m];
    for i in 0..n {
        let row = x.row(i);
        for j in 0..m {
            out[j] += row[j] * row[j];
        }
    }
    Vector::from_vec(out)
}

#[cfg(test)]
mod tests {
    use super::*;

    #[test]
    fn column_statistics() {
        let x = Matrix::from_vec(2, 2, vec![1.0, 10.0, 3.0, 20.0]).unwrap();
        let means = column_means(&x);
        assert_eq!(means.as_slice(), &[2.0, 15.0]);
        let stds = column_stds(&x, &means).unwrap();
        assert!((stds[0] - 1.0).abs() < 1e-12);
        assert!((stds[1] - 5.0).abs() < 1e-12);
        assert!(column_stds(&x, &Vector::zeros(3)).is_err());
    }

    #[test]
    fn empty_matrix_statistics() {
        let x = Matrix::zeros(0, 2);
        assert_eq!(column_means(&x).as_slice(), &[0.0, 0.0]);
    }

    #[test]
    fn linear_combination_basics() {
        let a = Vector::from_vec(vec![1.0, 0.0]);
        let b = Vector::from_vec(vec![0.0, 1.0]);
        let c = linear_combination(&[2.0, 3.0], &[a, b]).unwrap();
        assert_eq!(c.as_slice(), &[2.0, 3.0]);
        assert!(linear_combination(&[1.0], &[]).is_err());
    }

    #[test]
    fn row_and_column_norms() {
        let x = Matrix::from_vec(2, 2, vec![3.0, 4.0, 0.0, 2.0]).unwrap();
        assert_eq!(row_norms_squared(&x).as_slice(), &[25.0, 4.0]);
        assert_eq!(column_norms_squared(&x).as_slice(), &[9.0, 20.0]);
    }
}
