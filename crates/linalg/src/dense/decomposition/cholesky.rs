//! Cholesky factorisation of symmetric positive-definite matrices.
//!
//! Used by the closed-form ridge-regression baseline (`(X^T X + c I) w = X^T Y`)
//! and by the INFL baseline, which solves against the regularised Hessian of
//! the objective function.

use crate::dense::matrix::Matrix;
use crate::dense::vector::Vector;
use crate::error::{LinalgError, Result};

/// Lower-triangular Cholesky factor `L` with `A = L L^T`.
#[derive(Debug, Clone)]
pub struct Cholesky {
    l: Matrix,
}

impl Cholesky {
    /// Factorises a symmetric positive-definite matrix.
    ///
    /// Only the lower triangle of `a` is read; the strictly upper triangle is
    /// assumed to mirror it.
    ///
    /// # Errors
    /// * [`LinalgError::NotSquare`] if `a` is not square.
    /// * [`LinalgError::Singular`] if a non-positive pivot is encountered
    ///   (matrix not positive definite within numerical tolerance).
    pub fn new(a: &Matrix) -> Result<Self> {
        if !a.is_square() {
            return Err(LinalgError::NotSquare {
                rows: a.nrows(),
                cols: a.ncols(),
            });
        }
        let n = a.nrows();
        let mut l = Matrix::zeros(n, n);
        for i in 0..n {
            for j in 0..=i {
                let mut sum = a[(i, j)];
                for k in 0..j {
                    sum -= l[(i, k)] * l[(j, k)];
                }
                if i == j {
                    if sum <= 0.0 || !sum.is_finite() {
                        return Err(LinalgError::Singular {
                            op: "Cholesky::new",
                        });
                    }
                    l[(i, j)] = sum.sqrt();
                } else {
                    l[(i, j)] = sum / l[(j, j)];
                }
            }
        }
        Ok(Self { l })
    }

    /// The lower-triangular factor `L`.
    pub fn factor(&self) -> &Matrix {
        &self.l
    }

    /// Solves `A x = b` using the factorisation.
    ///
    /// # Errors
    /// Returns [`LinalgError::ShapeMismatch`] if `b` has the wrong length.
    #[allow(clippy::needless_range_loop)] // substitution kernels read clearest indexed
    pub fn solve(&self, b: &Vector) -> Result<Vector> {
        let n = self.l.nrows();
        if b.len() != n {
            return Err(LinalgError::ShapeMismatch {
                op: "Cholesky::solve",
                left: (n, n),
                right: (b.len(), 1),
            });
        }
        // Forward substitution: L y = b.
        let mut y = vec![0.0; n];
        for i in 0..n {
            let mut sum = b[i];
            for k in 0..i {
                sum -= self.l[(i, k)] * y[k];
            }
            y[i] = sum / self.l[(i, i)];
        }
        // Back substitution: L^T x = y.
        let mut x = vec![0.0; n];
        for i in (0..n).rev() {
            let mut sum = y[i];
            for k in (i + 1)..n {
                sum -= self.l[(k, i)] * x[k];
            }
            x[i] = sum / self.l[(i, i)];
        }
        Ok(Vector::from_vec(x))
    }

    /// Computes `A^{-1}` column by column.
    pub fn inverse(&self) -> Result<Matrix> {
        let n = self.l.nrows();
        let mut inv = Matrix::zeros(n, n);
        for j in 0..n {
            let mut e = Vector::zeros(n);
            e[j] = 1.0;
            let col = self.solve(&e)?;
            for i in 0..n {
                inv[(i, j)] = col[i];
            }
        }
        Ok(inv)
    }

    /// Log-determinant of `A` (`2 * Σ log L_ii`).
    pub fn log_determinant(&self) -> f64 {
        (0..self.l.nrows())
            .map(|i| self.l[(i, i)].ln())
            .sum::<f64>()
            * 2.0
    }
}

#[cfg(test)]
mod tests {
    use super::*;

    fn spd() -> Matrix {
        // A = B^T B + I for a small B, guaranteed SPD.
        Matrix::from_vec(3, 3, vec![4.0, 2.0, 0.6, 2.0, 5.0, 1.0, 0.6, 1.0, 3.0]).unwrap()
    }

    #[test]
    fn factor_reconstructs_matrix() {
        let a = spd();
        let chol = Cholesky::new(&a).unwrap();
        let l = chol.factor();
        let rec = l.matmul(&l.transpose()).unwrap();
        for i in 0..3 {
            for j in 0..3 {
                assert!((rec[(i, j)] - a[(i, j)]).abs() < 1e-10);
            }
        }
    }

    #[test]
    fn solve_recovers_known_solution() {
        let a = spd();
        let x_true = Vector::from_vec(vec![1.0, -2.0, 0.5]);
        let b = a.matvec(&x_true).unwrap();
        let chol = Cholesky::new(&a).unwrap();
        let x = chol.solve(&b).unwrap();
        for i in 0..3 {
            assert!((x[i] - x_true[i]).abs() < 1e-10);
        }
        assert!(chol.solve(&Vector::zeros(2)).is_err());
    }

    #[test]
    fn inverse_times_matrix_is_identity() {
        let a = spd();
        let inv = Cholesky::new(&a).unwrap().inverse().unwrap();
        let prod = a.matmul(&inv).unwrap();
        for i in 0..3 {
            for j in 0..3 {
                let expected = if i == j { 1.0 } else { 0.0 };
                assert!((prod[(i, j)] - expected).abs() < 1e-10);
            }
        }
    }

    #[test]
    fn rejects_non_spd_and_non_square() {
        let not_spd = Matrix::from_vec(2, 2, vec![0.0, 1.0, 1.0, 0.0]).unwrap();
        assert!(matches!(
            Cholesky::new(&not_spd),
            Err(LinalgError::Singular { .. })
        ));
        let rect = Matrix::zeros(2, 3);
        assert!(matches!(
            Cholesky::new(&rect),
            Err(LinalgError::NotSquare { .. })
        ));
    }

    #[test]
    fn log_determinant_matches_known_value() {
        let a = Matrix::from_diagonal(&[2.0, 3.0, 4.0]);
        let chol = Cholesky::new(&a).unwrap();
        assert!((chol.log_determinant() - (24.0_f64).ln()).abs() < 1e-12);
    }
}
