//! Cholesky factorisation of symmetric positive-definite matrices.
//!
//! Used by the closed-form ridge-regression baseline (`(X^T X + c I) w = X^T Y`)
//! and by the INFL baseline, which solves against the regularised Hessian of
//! the objective function.
//!
//! # Blocked, pool-parallel factorisation
//!
//! [`cholesky_factor_into`] is a *right-looking blocked* factorisation: the
//! matrix is processed in panels of [`CHOL_BLOCK`] columns — factor the
//! panel's diagonal block serially, solve the sub-diagonal panel rows in
//! parallel, then apply the panel's rank-`nb` downdate to the trailing
//! matrix in parallel (`syrk`-style, one `axpy` per panel column per row).
//! Both parallel phases are row-chunked through [`crate::par`] with
//! shape-only chunk boundaries.
//!
//! **Determinism.** Every element `L[i][j]` is produced by the chain
//! `a[i][j] − l[i][0]·l[j][0] − l[i][1]·l[j][1] − …` applied *one term at a
//! time in ascending `k`* — the trailing updates subtract each panel column
//! individually (an `axpy` per `k`, never a dot-then-subtract) and the panel
//! factorisation continues the same chain for the in-panel columns. That
//! chain is exactly the textbook left-looking loop, so the blocked path is
//! **bitwise identical** to [`cholesky_factor_scalar_into`], and — because
//! chunks only partition independent rows — bitwise identical for any
//! `PRIU_THREADS`. The `decomp_parity` suite asserts all three equalities.
//!
//! Every term of the chain goes through the [`crate::simd`] element ops
//! (`fnma_dot_seq` in the blocked phases, the fused axpy in the trailing
//! update, the dispatched [`crate::simd::fnma`] in the scalar reference),
//! so on the Avx2 level each `−= l·l` subtracts with a *fused*
//! multiply-add on every path at once: the bitwise guarantee holds per
//! `PRIU_SIMD` level, with bits differing across levels only by FMA's
//! removed intermediate rounding.

use crate::dense::matrix::Matrix;
use crate::dense::vector::{axpy_slices, Vector};
use crate::error::{LinalgError, Result};
use crate::par::{self, Chunks};
use crate::simd;

/// Panel width of the blocked factorisation. Chosen so a panel row fits in
/// L1 alongside the trailing row it updates; the value only affects
/// performance, never results (the summation chain is panel-independent).
const CHOL_BLOCK: usize = 64;
/// Minimum trailing rows per chunk: below `2 ×` this the phase runs inline
/// on the calling thread (small problems never touch the pool).
const CHOL_MIN_CHUNK_ROWS: usize = 128;
/// Chunk-count cap for the parallel phases (map-style, disjoint rows).
const CHOL_MAX_CHUNKS: usize = 16;

/// Lower-triangular Cholesky factor `L` with `A = L L^T`.
#[derive(Debug, Clone)]
pub struct Cholesky {
    l: Matrix,
}

impl Cholesky {
    /// Factorises a symmetric positive-definite matrix using the blocked,
    /// pool-parallel algorithm of [`cholesky_factor_into`].
    ///
    /// Only the lower triangle of `a` is read; the strictly upper triangle is
    /// assumed to mirror it.
    ///
    /// # Errors
    /// * [`LinalgError::NotSquare`] if `a` is not square.
    /// * [`LinalgError::NotPositiveDefinite`] (with the failing pivot index)
    ///   if a non-positive or non-finite pivot is encountered.
    pub fn new(a: &Matrix) -> Result<Self> {
        let mut l = Matrix::zeros(0, 0);
        cholesky_factor_into(a, &mut l)?;
        Ok(Self { l })
    }

    /// The lower-triangular factor `L`.
    pub fn factor(&self) -> &Matrix {
        &self.l
    }

    /// Solves `A x = b` using the factorisation.
    ///
    /// # Errors
    /// Returns [`LinalgError::ShapeMismatch`] if `b` has the wrong length.
    pub fn solve(&self, b: &Vector) -> Result<Vector> {
        let mut x = Vector::zeros(self.l.nrows());
        cholesky_solve_into(&self.l, b, x.as_mut_slice())?;
        Ok(x)
    }

    /// Computes `A^{-1}` column by column.
    pub fn inverse(&self) -> Result<Matrix> {
        let n = self.l.nrows();
        let mut inv = Matrix::zeros(n, n);
        for j in 0..n {
            let mut e = Vector::zeros(n);
            e[j] = 1.0;
            let col = self.solve(&e)?;
            for i in 0..n {
                inv[(i, j)] = col[i];
            }
        }
        Ok(inv)
    }

    /// Rank-1 update: rewrites the factor of `A` into the factor of
    /// `A + x xᵀ` in place (allocating convenience wrapper over
    /// [`cholesky_update_into`]).
    ///
    /// # Errors
    /// See [`cholesky_update_scalar_into`].
    pub fn update(&mut self, x: &Vector) -> Result<()> {
        let mut carry = x.as_slice().to_vec();
        let mut col = Vec::new();
        cholesky_update_into(&mut self.l, &mut carry, &mut col)
    }

    /// Log-determinant of `A` (`2 * Σ log L_ii`).
    pub fn log_determinant(&self) -> f64 {
        (0..self.l.nrows())
            .map(|i| self.l[(i, i)].ln())
            .sum::<f64>()
            * 2.0
    }
}

/// Validates the input and reshapes `l` to an `n × n` zeroed matrix holding
/// the lower triangle of `a`.
fn prepare_lower(a: &Matrix, l: &mut Matrix) -> Result<usize> {
    if !a.is_square() {
        return Err(LinalgError::NotSquare {
            rows: a.nrows(),
            cols: a.ncols(),
        });
    }
    let n = a.nrows();
    l.reshape_zeroed(n, n);
    for i in 0..n {
        l.row_mut(i)[..=i].copy_from_slice(&a.row(i)[..=i]);
    }
    Ok(n)
}

/// Checks a diagonal pivot value, converting failures into the typed
/// non-SPD error with the pivot index attached.
fn pivot_sqrt(sum: f64, pivot: usize, op: &'static str) -> Result<f64> {
    if sum <= 0.0 || !sum.is_finite() {
        return Err(LinalgError::NotPositiveDefinite { op, pivot });
    }
    Ok(sum.sqrt())
}

/// The textbook left-looking scalar factorisation — the reference tree the
/// blocked path reproduces bitwise. `l` is reshaped to `n × n`, reusing its
/// allocation, with the factor in the lower triangle.
///
/// # Errors
/// See [`Cholesky::new`].
pub fn cholesky_factor_scalar_into(a: &Matrix, l: &mut Matrix) -> Result<()> {
    let n = prepare_lower(a, l)?;
    for i in 0..n {
        for j in 0..=i {
            let mut sum = l[(i, j)];
            for k in 0..j {
                // The dispatched element op keeps the reference tree in
                // lock-step with the SIMD level: mul-then-sub on the
                // portable level, fused on the Avx2 level — exactly what
                // the blocked path's `fnma_dot_seq` / fused axpy perform.
                sum = simd::fnma(sum, l[(i, k)], l[(j, k)]);
            }
            if i == j {
                l[(i, j)] = pivot_sqrt(sum, i, "cholesky_factor_scalar_into")?;
            } else {
                l[(i, j)] = sum / l[(j, j)];
            }
        }
    }
    Ok(())
}

/// Blocked, pool-parallel Cholesky factorisation into a caller-owned matrix
/// (reshaped to `n × n`, reusing its allocation; factor in the lower
/// triangle). Bitwise identical to [`cholesky_factor_scalar_into`] for any
/// thread count — see the module docs for the determinism argument.
///
/// # Errors
/// See [`Cholesky::new`].
pub fn cholesky_factor_into(a: &Matrix, l: &mut Matrix) -> Result<()> {
    let n = prepare_lower(a, l)?;
    let mut k0 = 0;
    while k0 < n {
        let nb = CHOL_BLOCK.min(n - k0);
        let k1 = k0 + nb;

        // Phase 1 (serial): factor the nb × nb diagonal block. Earlier
        // panels' contributions were already subtracted (in ascending k) by
        // their trailing updates, so the chain continues with k0..j.
        for j in k0..k1 {
            for i in j..k1 {
                // Continue the element chain through the dispatched
                // sequential fnma kernel (fused on the Avx2 level, matching
                // the scalar reference's dispatched element op).
                let sum = simd::fnma_dot_seq(l[(i, j)], &l.row(i)[k0..j], &l.row(j)[k0..j]);
                if i == j {
                    l[(i, j)] = pivot_sqrt(sum, i, "cholesky_factor_into")?;
                } else {
                    l[(i, j)] = sum / l[(j, j)];
                }
            }
        }
        if k1 == n {
            break;
        }

        let below = n - k1;
        // Scratch: the diagonal block (read by every solve) plus the panel
        // transpose (read by every trailing-update row), copied out so the
        // parallel phases borrow them immutably while rows of `l` are
        // written disjointly.
        par::with_scratch(nb * nb + nb * below, |scratch| {
            let (diag, pt) = scratch.split_at_mut(nb * nb);
            for j in k0..k1 {
                diag[(j - k0) * nb..(j - k0 + 1) * nb].copy_from_slice(&l.row(j)[k0..k1]);
            }

            let chunks = Chunks::new(below, CHOL_MIN_CHUNK_ROWS, CHOL_MAX_CHUNKS);
            // Phase 2 (parallel): solve the sub-diagonal panel rows
            // L21 · L11ᵀ = A21, row by row (each row needs only the diagonal
            // block and itself).
            let ncols = l.ncols();
            let rows_below = &mut l.as_mut_slice()[k1 * ncols..];
            par::map_chunks(&chunks, ncols, rows_below, |range, region| {
                for (local, _) in range.enumerate() {
                    let row = &mut region[local * ncols..(local + 1) * ncols];
                    for j in k0..k1 {
                        let jb = j - k0;
                        // Same dispatched sequential fnma chain as the
                        // diagonal block — the panel row against the
                        // contiguous diagonal-block row.
                        let sum = simd::fnma_dot_seq(
                            row[j],
                            &row[k0..j],
                            &diag[jb * nb..jb * nb + (j - k0)],
                        );
                        row[j] = sum / diag[jb * nb + jb];
                    }
                }
            });

            // Transpose the solved panel so each trailing row's update reads
            // contiguous memory (a copy — no floating-point work).
            for (local, i) in (k1..n).enumerate() {
                let row = l.row(i);
                for k in k0..k1 {
                    pt[(k - k0) * below + local] = row[k];
                }
            }

            // Phase 3 (parallel): trailing update
            // A22[i][j] −= Σ_k L21[i][k] · L21[j][k], subtracting one panel
            // column k at a time (ascending) so the element chain matches the
            // scalar reference bitwise. Each row i updates its lower-triangle
            // slice j ∈ k1..=i.
            let rows_below = &mut l.as_mut_slice()[k1 * ncols..];
            par::map_chunks(&chunks, ncols, rows_below, |range, region| {
                for (local, off) in range.enumerate() {
                    let i = k1 + off;
                    let row = &mut region[local * ncols..(local + 1) * ncols];
                    for k in k0..k1 {
                        // No zero-skip: the scalar chain subtracts every
                        // term, and `x − 0·y` is not always bitwise `x`
                        // (signed zeros), so the blocked path must too.
                        let lik = row[k];
                        let pt_row = &pt[(k - k0) * below..(k - k0) * below + off + 1];
                        axpy_slices(&mut row[k1..=i], -lik, pt_row);
                    }
                }
            });
        });
        k0 = k1;
    }
    Ok(())
}

/// Validates the factor/vector shapes shared by the rank-1 update kernels.
fn check_update_shapes(l: &Matrix, xlen: usize, op: &'static str) -> Result<usize> {
    if !l.is_square() {
        return Err(LinalgError::NotSquare {
            rows: l.nrows(),
            cols: l.ncols(),
        });
    }
    let n = l.nrows();
    if xlen != n {
        return Err(LinalgError::ShapeMismatch {
            op,
            left: (n, n),
            right: (xlen, 1),
        });
    }
    Ok(n)
}

/// Generates the Givens pair `(c, s, r)` that rotates `x[k]` into the pivot
/// `d = L[k][k]`: `r = √(d² + x²)`, `c = d/r`, `s = x/r`. Deliberately
/// FMA-free (`d·d + x·x` is two multiplies and one add on every level) so
/// the rotation parameters — and with them the whole update — are bitwise
/// identical across `PRIU_SIMD` levels, not merely within one.
fn update_rotation(d: f64, xk: f64, pivot: usize, op: &'static str) -> Result<(f64, f64, f64)> {
    let sum = d * d + xk * xk;
    if d <= 0.0 || !sum.is_finite() {
        return Err(LinalgError::NotPositiveDefinite { op, pivot });
    }
    let r = sum.sqrt();
    Ok((d / r, xk / r, r))
}

/// The plain-loop rank-1 *up*date reference: given the lower factor `L` of
/// `A` and a row `x`, rewrites `L` in place to the factor of `A + x xᵀ`
/// (the mirror of the closed-form path's downdate). `x` is consumed as the
/// rotation carry and holds rotated garbage on return.
///
/// One Givens rotation per column: zero `x[k]` into the pivot, then rotate
/// the column tail against the carry. Each element performs exactly
/// `c·a − s·b` / `s·a + c·b` — the same three roundings as
/// [`crate::simd::rotate_two`] on every level — so this reference is
/// bitwise identical to [`cholesky_update_into`] on *every* `PRIU_SIMD`
/// level at once (the update path is FMA-free by construction, like the
/// eigen rotations).
///
/// # Errors
/// * [`LinalgError::NotSquare`] / [`LinalgError::ShapeMismatch`] on bad
///   shapes.
/// * [`LinalgError::NotPositiveDefinite`] if a pivot of `l` is non-positive
///   or the rotation is non-finite (garbage input factor).
pub fn cholesky_update_scalar_into(l: &mut Matrix, x: &mut [f64]) -> Result<()> {
    let n = check_update_shapes(l, x.len(), "cholesky_update_scalar_into")?;
    for k in 0..n {
        let (c, s, r) = update_rotation(l[(k, k)], x[k], k, "cholesky_update_scalar_into")?;
        l[(k, k)] = r;
        for i in k + 1..n {
            let a = x[i];
            let b = l[(i, k)];
            x[i] = c * a - s * b;
            l[(i, k)] = s * a + c * b;
        }
    }
    Ok(())
}

/// Rank-1 Cholesky *up*date through the dispatched rotation kernel: the
/// column tail is gathered into `col` (row-major storage strides columns)
/// and rotated against the carry with [`crate::simd::rotate_two`], which is
/// FMA-free on every level — so the result is bitwise identical to
/// [`cholesky_update_scalar_into`] on every `PRIU_SIMD` level and trivially
/// pool-invariant (no parallel phase: each column's rotation is a short
/// dependent chain). `x` is consumed as the rotation carry; `col` is
/// caller-owned scratch reused across calls (grows once, then warm calls
/// allocate nothing).
///
/// # Errors
/// See [`cholesky_update_scalar_into`].
pub fn cholesky_update_into(l: &mut Matrix, x: &mut [f64], col: &mut Vec<f64>) -> Result<()> {
    let n = check_update_shapes(l, x.len(), "cholesky_update_into")?;
    for k in 0..n {
        let (c, s, r) = update_rotation(l[(k, k)], x[k], k, "cholesky_update_into")?;
        l[(k, k)] = r;
        col.clear();
        col.extend((k + 1..n).map(|i| l[(i, k)]));
        simd::rotate_two(&mut x[k + 1..], col, c, s);
        for (off, i) in (k + 1..n).enumerate() {
            l[(i, k)] = col[off];
        }
    }
    Ok(())
}

/// Rank-k Cholesky update: folds every row of `rows` into the factor with
/// one rank-1 pass each (ascending row order — the deterministic chain the
/// engines' addition path relies on). `x` and `col` are caller-owned
/// scratch buffers reused across rows and calls.
///
/// # Errors
/// See [`cholesky_update_scalar_into`]; additionally
/// [`LinalgError::ShapeMismatch`] if `rows` has a column count other than
/// the factor's dimension.
pub fn cholesky_update_rank_k_into(
    l: &mut Matrix,
    rows: &Matrix,
    x: &mut Vec<f64>,
    col: &mut Vec<f64>,
) -> Result<()> {
    if rows.ncols() != l.nrows() {
        return Err(LinalgError::ShapeMismatch {
            op: "cholesky_update_rank_k_into",
            left: (l.nrows(), l.ncols()),
            right: (rows.nrows(), rows.ncols()),
        });
    }
    for r in 0..rows.nrows() {
        x.clear();
        x.extend_from_slice(rows.row(r));
        cholesky_update_into(l, x, col)?;
    }
    Ok(())
}

/// Solves `A x = b` given the lower-triangular factor `l`, writing into a
/// caller-owned buffer (forward then back substitution, both in place — no
/// allocation).
///
/// # Errors
/// Returns [`LinalgError::ShapeMismatch`] if `b` or `x` has the wrong length.
#[allow(clippy::needless_range_loop)] // substitution kernels read clearest indexed
pub fn cholesky_solve_into(l: &Matrix, b: &[f64], x: &mut [f64]) -> Result<()> {
    let n = l.nrows();
    if b.len() != n || x.len() != n {
        return Err(LinalgError::ShapeMismatch {
            op: "cholesky_solve_into",
            left: (n, n),
            right: (b.len().max(x.len()), 1),
        });
    }
    x.copy_from_slice(b);
    // Forward substitution: L y = b (y overwrites x).
    for i in 0..n {
        let row = l.row(i);
        let mut sum = x[i];
        for k in 0..i {
            sum -= row[k] * x[k];
        }
        x[i] = sum / row[i];
    }
    // Back substitution: L^T x = y (in place; x[k] for k > i is final).
    for i in (0..n).rev() {
        let mut sum = x[i];
        for k in (i + 1)..n {
            sum -= l[(k, i)] * x[k];
        }
        x[i] = sum / l[(i, i)];
    }
    Ok(())
}

#[cfg(test)]
mod tests {
    use super::*;

    fn spd() -> Matrix {
        // A = B^T B + I for a small B, guaranteed SPD.
        Matrix::from_vec(3, 3, vec![4.0, 2.0, 0.6, 2.0, 5.0, 1.0, 0.6, 1.0, 3.0]).unwrap()
    }

    #[test]
    fn factor_reconstructs_matrix() {
        let a = spd();
        let chol = Cholesky::new(&a).unwrap();
        let l = chol.factor();
        let rec = l.matmul(&l.transpose()).unwrap();
        for i in 0..3 {
            for j in 0..3 {
                assert!((rec[(i, j)] - a[(i, j)]).abs() < 1e-10);
            }
        }
    }

    #[test]
    fn blocked_factor_is_bitwise_identical_to_scalar() {
        // Cross the panel boundary so phases 2/3 actually run.
        let n = CHOL_BLOCK + 7;
        let b = Matrix::from_fn(n, n, |i, j| (((i * 31 + j * 17) % 13) as f64 - 6.0) / 7.0);
        let mut a = b.gram();
        a.add_diagonal_mut(n as f64).unwrap();
        let mut blocked = Matrix::zeros(0, 0);
        let mut scalar = Matrix::zeros(0, 0);
        cholesky_factor_into(&a, &mut blocked).unwrap();
        cholesky_factor_scalar_into(&a, &mut scalar).unwrap();
        assert_eq!(blocked, scalar);
    }

    #[test]
    fn solve_recovers_known_solution() {
        let a = spd();
        let x_true = Vector::from_vec(vec![1.0, -2.0, 0.5]);
        let b = a.matvec(&x_true).unwrap();
        let chol = Cholesky::new(&a).unwrap();
        let x = chol.solve(&b).unwrap();
        for i in 0..3 {
            assert!((x[i] - x_true[i]).abs() < 1e-10);
        }
        assert!(chol.solve(&Vector::zeros(2)).is_err());
        let mut out = [0.0; 2];
        assert!(cholesky_solve_into(chol.factor(), &b, &mut out).is_err());
    }

    #[test]
    fn inverse_times_matrix_is_identity() {
        let a = spd();
        let inv = Cholesky::new(&a).unwrap().inverse().unwrap();
        let prod = a.matmul(&inv).unwrap();
        for i in 0..3 {
            for j in 0..3 {
                let expected = if i == j { 1.0 } else { 0.0 };
                assert!((prod[(i, j)] - expected).abs() < 1e-10);
            }
        }
    }

    #[test]
    fn rejects_non_spd_and_non_square_with_pivot_index() {
        let not_spd = Matrix::from_vec(2, 2, vec![0.0, 1.0, 1.0, 0.0]).unwrap();
        assert!(matches!(
            Cholesky::new(&not_spd),
            Err(LinalgError::NotPositiveDefinite { pivot: 0, .. })
        ));
        // Definiteness lost at a later pivot: leading 1x1 block fine, 2x2 not.
        let late = Matrix::from_vec(2, 2, vec![1.0, 2.0, 2.0, 1.0]).unwrap();
        assert!(matches!(
            Cholesky::new(&late),
            Err(LinalgError::NotPositiveDefinite { pivot: 1, .. })
        ));
        let mut scalar = Matrix::zeros(0, 0);
        assert!(matches!(
            cholesky_factor_scalar_into(&late, &mut scalar),
            Err(LinalgError::NotPositiveDefinite { pivot: 1, .. })
        ));
        let rect = Matrix::zeros(2, 3);
        assert!(matches!(
            Cholesky::new(&rect),
            Err(LinalgError::NotSquare { .. })
        ));
    }

    #[test]
    fn non_finite_input_is_an_error_not_a_nan_factor() {
        let mut a = spd();
        a[(1, 1)] = f64::NAN;
        assert!(matches!(
            Cholesky::new(&a),
            Err(LinalgError::NotPositiveDefinite { pivot: 1, .. })
        ));
    }

    #[test]
    fn log_determinant_matches_known_value() {
        let a = Matrix::from_diagonal(&[2.0, 3.0, 4.0]);
        let chol = Cholesky::new(&a).unwrap();
        assert!((chol.log_determinant() - (24.0_f64).ln()).abs() < 1e-12);
    }

    #[test]
    fn rank_one_update_matches_refactorisation() {
        let n = 9;
        let b = Matrix::from_fn(n, n, |i, j| (((i * 7 + j * 3) % 11) as f64 - 5.0) / 4.0);
        let mut a = b.gram();
        a.add_diagonal_mut(n as f64).unwrap();
        let x: Vec<f64> = (0..n).map(|i| ((i * 5 % 7) as f64 - 3.0) / 2.0).collect();

        let mut chol = Cholesky::new(&a).unwrap();
        chol.update(&Vector::from_vec(x.clone())).unwrap();

        let mut bumped = a.clone();
        bumped
            .rank_one_update(1.0, &Vector::from_vec(x.clone()))
            .unwrap();
        let fresh = Cholesky::new(&bumped).unwrap();
        for i in 0..n {
            for j in 0..=i {
                assert!((chol.factor()[(i, j)] - fresh.factor()[(i, j)]).abs() < 1e-10);
            }
        }
    }

    #[test]
    fn blocked_update_is_bitwise_identical_to_scalar() {
        let n = 33;
        let b = Matrix::from_fn(n, n, |i, j| (((i * 13 + j * 29) % 17) as f64 - 8.0) / 9.0);
        let mut a = b.gram();
        a.add_diagonal_mut(n as f64).unwrap();
        let mut blocked = Matrix::zeros(0, 0);
        cholesky_factor_into(&a, &mut blocked).unwrap();
        let mut scalar = blocked.clone();
        let x: Vec<f64> = (0..n).map(|i| ((i * 3 % 5) as f64 - 2.0) / 3.0).collect();

        let mut carry = x.clone();
        let mut col = Vec::new();
        cholesky_update_into(&mut blocked, &mut carry, &mut col).unwrap();
        let mut carry = x;
        cholesky_update_scalar_into(&mut scalar, &mut carry).unwrap();
        assert_eq!(blocked, scalar);
    }

    #[test]
    fn rank_k_update_equals_sequential_rank_ones() {
        let n = 6;
        let mut a = Matrix::from_fn(n, n, |i, j| if i == j { 4.0 } else { 0.25 });
        let rows = Matrix::from_fn(3, n, |r, j| ((r * n + j) % 5) as f64 / 3.0 - 0.5);
        let mut batched = Matrix::zeros(0, 0);
        cholesky_factor_into(&a, &mut batched).unwrap();
        let mut sequential = batched.clone();

        let (mut x, mut col) = (Vec::new(), Vec::new());
        cholesky_update_rank_k_into(&mut batched, &rows, &mut x, &mut col).unwrap();
        for r in 0..rows.nrows() {
            let mut carry = rows.row(r).to_vec();
            cholesky_update_into(&mut sequential, &mut carry, &mut col).unwrap();
        }
        assert_eq!(batched, sequential);

        // And the batched factor reconstructs A + Σ x xᵀ.
        for r in 0..rows.nrows() {
            a.rank_one_update(1.0, &Vector::from_vec(rows.row(r).to_vec()))
                .unwrap();
        }
        let rec = batched.matmul(&batched.transpose()).unwrap();
        for i in 0..n {
            for j in 0..n {
                assert!((rec[(i, j)] - a[(i, j)]).abs() < 1e-10);
            }
        }
    }

    #[test]
    fn update_rejects_bad_shapes_and_garbage_factors() {
        let mut l = Matrix::zeros(2, 3);
        assert!(matches!(
            cholesky_update_scalar_into(&mut l, &mut [0.0; 2]),
            Err(LinalgError::NotSquare { .. })
        ));
        let mut l = Matrix::from_diagonal(&[1.0, 1.0]);
        assert!(matches!(
            cholesky_update_scalar_into(&mut l, &mut [0.0; 3]),
            Err(LinalgError::ShapeMismatch { .. })
        ));
        // A non-positive pivot means the input was never a Cholesky factor.
        let mut l = Matrix::from_diagonal(&[1.0, -2.0]);
        let mut col = Vec::new();
        assert!(matches!(
            cholesky_update_into(&mut l, &mut [1.0, 1.0], &mut col),
            Err(LinalgError::NotPositiveDefinite { pivot: 1, .. })
        ));
        let mut l = Matrix::from_diagonal(&[1.0, 2.0]);
        assert!(matches!(
            cholesky_update_scalar_into(&mut l, &mut [f64::NAN, 0.0]),
            Err(LinalgError::NotPositiveDefinite { pivot: 0, .. })
        ));
    }

    #[test]
    fn empty_and_one_by_one() {
        let empty = Cholesky::new(&Matrix::zeros(0, 0)).unwrap();
        assert_eq!(empty.factor().shape(), (0, 0));
        let one = Cholesky::new(&Matrix::from_diagonal(&[9.0])).unwrap();
        assert_eq!(one.factor()[(0, 0)], 3.0);
        assert!(matches!(
            Cholesky::new(&Matrix::from_diagonal(&[-1.0])),
            Err(LinalgError::NotPositiveDefinite { pivot: 0, .. })
        ));
    }
}
