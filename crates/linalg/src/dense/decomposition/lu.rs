//! LU factorisation with partial pivoting for general square systems.

use crate::dense::matrix::Matrix;
use crate::dense::vector::Vector;
use crate::error::{LinalgError, Result};

/// LU factorisation `P A = L U` with partial pivoting.
#[derive(Debug, Clone)]
pub struct Lu {
    /// Combined storage: strictly-lower triangle holds L (unit diagonal
    /// implied), upper triangle holds U.
    lu: Matrix,
    /// Row permutation: row `i` of the factorisation corresponds to row
    /// `perm[i]` of the original matrix.
    perm: Vec<usize>,
    /// Sign of the permutation (+1 or -1), used for the determinant.
    sign: f64,
}

impl Lu {
    /// Factorises a square matrix.
    ///
    /// # Errors
    /// * [`LinalgError::NotSquare`] if `a` is not square.
    /// * [`LinalgError::Singular`] if a zero pivot is found.
    pub fn new(a: &Matrix) -> Result<Self> {
        if !a.is_square() {
            return Err(LinalgError::NotSquare {
                rows: a.nrows(),
                cols: a.ncols(),
            });
        }
        let n = a.nrows();
        let mut lu = a.clone();
        let mut perm: Vec<usize> = (0..n).collect();
        let mut sign = 1.0;

        for k in 0..n {
            // Pivot selection.
            let mut pivot_row = k;
            let mut pivot_val = lu[(k, k)].abs();
            for i in (k + 1)..n {
                let v = lu[(i, k)].abs();
                if v > pivot_val {
                    pivot_val = v;
                    pivot_row = i;
                }
            }
            if pivot_val == 0.0 || !pivot_val.is_finite() {
                return Err(LinalgError::Singular { op: "Lu::new" });
            }
            if pivot_row != k {
                perm.swap(k, pivot_row);
                sign = -sign;
                for j in 0..n {
                    let tmp = lu[(k, j)];
                    lu[(k, j)] = lu[(pivot_row, j)];
                    lu[(pivot_row, j)] = tmp;
                }
            }
            let pivot = lu[(k, k)];
            for i in (k + 1)..n {
                let factor = lu[(i, k)] / pivot;
                lu[(i, k)] = factor;
                for j in (k + 1)..n {
                    let delta = factor * lu[(k, j)];
                    lu[(i, j)] -= delta;
                }
            }
        }
        Ok(Self { lu, perm, sign })
    }

    /// Solves `A x = b`.
    ///
    /// # Errors
    /// Returns [`LinalgError::ShapeMismatch`] if `b` has the wrong length.
    #[allow(clippy::needless_range_loop)] // substitution kernels read clearest indexed
    pub fn solve(&self, b: &Vector) -> Result<Vector> {
        let n = self.lu.nrows();
        if b.len() != n {
            return Err(LinalgError::ShapeMismatch {
                op: "Lu::solve",
                left: (n, n),
                right: (b.len(), 1),
            });
        }
        // Apply permutation, then forward substitution with unit-lower L.
        let mut y = vec![0.0; n];
        for i in 0..n {
            let mut sum = b[self.perm[i]];
            for k in 0..i {
                sum -= self.lu[(i, k)] * y[k];
            }
            y[i] = sum;
        }
        // Back substitution with U.
        let mut x = vec![0.0; n];
        for i in (0..n).rev() {
            let mut sum = y[i];
            for k in (i + 1)..n {
                sum -= self.lu[(i, k)] * x[k];
            }
            x[i] = sum / self.lu[(i, i)];
        }
        Ok(Vector::from_vec(x))
    }

    /// Computes the matrix inverse.
    pub fn inverse(&self) -> Result<Matrix> {
        let n = self.lu.nrows();
        let mut inv = Matrix::zeros(n, n);
        for j in 0..n {
            let mut e = Vector::zeros(n);
            e[j] = 1.0;
            let col = self.solve(&e)?;
            for i in 0..n {
                inv[(i, j)] = col[i];
            }
        }
        Ok(inv)
    }

    /// Determinant of the original matrix.
    pub fn determinant(&self) -> f64 {
        let mut det = self.sign;
        for i in 0..self.lu.nrows() {
            det *= self.lu[(i, i)];
        }
        det
    }
}

#[cfg(test)]
mod tests {
    use super::*;

    #[test]
    fn solve_matches_known_solution() {
        let a =
            Matrix::from_vec(3, 3, vec![2.0, 1.0, 1.0, 4.0, -6.0, 0.0, -2.0, 7.0, 2.0]).unwrap();
        let x_true = Vector::from_vec(vec![1.0, 2.0, -1.0]);
        let b = a.matvec(&x_true).unwrap();
        let lu = Lu::new(&a).unwrap();
        let x = lu.solve(&b).unwrap();
        for i in 0..3 {
            assert!((x[i] - x_true[i]).abs() < 1e-10);
        }
        assert!(lu.solve(&Vector::zeros(4)).is_err());
    }

    #[test]
    fn determinant_and_inverse() {
        let a = Matrix::from_vec(2, 2, vec![4.0, 7.0, 2.0, 6.0]).unwrap();
        let lu = Lu::new(&a).unwrap();
        assert!((lu.determinant() - 10.0).abs() < 1e-12);
        let inv = lu.inverse().unwrap();
        let prod = a.matmul(&inv).unwrap();
        for i in 0..2 {
            for j in 0..2 {
                let expected = if i == j { 1.0 } else { 0.0 };
                assert!((prod[(i, j)] - expected).abs() < 1e-12);
            }
        }
    }

    #[test]
    fn pivoting_handles_zero_leading_entry() {
        let a = Matrix::from_vec(2, 2, vec![0.0, 1.0, 1.0, 0.0]).unwrap();
        let lu = Lu::new(&a).unwrap();
        let x = lu.solve(&Vector::from_vec(vec![3.0, 5.0])).unwrap();
        assert!((x[0] - 5.0).abs() < 1e-12);
        assert!((x[1] - 3.0).abs() < 1e-12);
        assert!((lu.determinant() + 1.0).abs() < 1e-12);
    }

    #[test]
    fn rejects_singular_and_non_square() {
        let singular = Matrix::from_vec(2, 2, vec![1.0, 2.0, 2.0, 4.0]).unwrap();
        assert!(matches!(
            Lu::new(&singular),
            Err(LinalgError::Singular { .. })
        ));
        assert!(matches!(
            Lu::new(&Matrix::zeros(2, 3)),
            Err(LinalgError::NotSquare { .. })
        ));
    }
}
