//! Matrix decompositions used by the PrIU reproduction.
//!
//! * [`cholesky`] — SPD factorisation; used by the closed-form ridge baseline
//!   and the influence-function baseline (Hessian solves).
//! * [`lu`] — general square solves / inverses / determinants.
//! * [`qr`] — Householder QR and modified Gram-Schmidt orthonormalisation;
//!   the building block of the randomized range finder.
//! * [`eigen`] — cyclic Jacobi eigendecomposition of symmetric matrices; the
//!   offline step of PrIU-opt (Eq. 17) and the basis for the incremental
//!   eigenvalue update (Eq. 18).
//! * [`truncated`] — exact and randomized truncated eigendecompositions of
//!   Gram forms `X^T diag(w) X`; the "SVD over the intermediate results"
//!   compression of §5.1 / §5.3.

pub mod cholesky;
pub mod eigen;
pub mod lu;
pub mod qr;
pub mod truncated;

pub use cholesky::Cholesky;
pub use eigen::SymmetricEigen;
pub use lu::Lu;
pub use qr::Qr;
pub use truncated::{GramFactor, TruncatedGram, TruncationMethod};
