//! Matrix decompositions used by the PrIU reproduction.
//!
//! * [`cholesky`] — blocked right-looking SPD factorisation; used by the
//!   closed-form ridge baseline and the influence-function baseline
//!   (Hessian solves).
//! * [`lu`] — general square solves / inverses / determinants.
//! * [`qr`] — compact-WY blocked Householder QR and modified Gram-Schmidt
//!   orthonormalisation; the building block of the randomized range finder.
//! * [`tridiag`] — blocked Householder tridiagonalisation `A = Q T Qᵀ` and
//!   implicit-shift QL iteration; stage one and two of the default
//!   symmetric eigensolver.
//! * [`eigen`] — symmetric eigendecomposition: two-stage tridiag + QL by
//!   default, round-robin cyclic Jacobi as the `PRIU_EIGEN=jacobi`
//!   fallback; the offline step of PrIU-opt (Eq. 17) and the basis for the
//!   incremental eigenvalue update (Eq. 18).
//! * [`truncated`] — exact and randomized truncated eigendecompositions of
//!   Gram forms `X^T diag(w) X`; the "SVD over the intermediate results"
//!   compression of §5.1 / §5.3.
//!
//! Since the blocked rewrite, the three hot decompositions are chunked
//! through [`crate::par`] with shape-only chunk boundaries and expose
//! `_into` / `_with` entry points writing into caller-owned buffers
//! ([`cholesky_factor_into`] / [`cholesky_solve_into`],
//! [`qr_factor_into`] + [`QrScratch`],
//! [`SymmetricEigen::new_with`] + [`JacobiScratch`]) so the PrIU-opt
//! capture and closed-form baseline paths stay allocation-free once warm.
//! Every factorisation is bitwise reproducible for any `PRIU_THREADS`
//! (asserted by the `decomp_parity` torture suite).

pub mod cholesky;
pub mod eigen;
pub mod lu;
pub mod qr;
pub mod tridiag;
pub mod truncated;

pub use cholesky::{
    cholesky_factor_into, cholesky_factor_scalar_into, cholesky_solve_into, cholesky_update_into,
    cholesky_update_rank_k_into, cholesky_update_scalar_into, Cholesky,
};
pub use eigen::{
    eigen_into, eigen_scalar_into, with_eigen_method, EigenMethod, EigenScratch, JacobiScratch,
    SymmetricEigen,
};
pub use lu::Lu;
pub use qr::{
    qr_factor_into, qr_factor_per_reflector_into, qr_factor_scalar_into, Qr, QrScratch, QR_NB,
    QR_WY_MIN_COLS,
};
pub use tridiag::{tridiag_factor_into, tridiag_factor_scalar_into, TridiagScratch};
pub use truncated::{GramFactor, TruncatedGram, TruncationMethod};
