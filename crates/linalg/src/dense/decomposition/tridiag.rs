//! Blocked Householder tridiagonalisation `A = Q T Qᵀ` and implicit-shift
//! QL iteration — the two stages of the default symmetric eigensolver.
//!
//! # Stage one: tridiagonalisation
//!
//! [`tridiag_factor_into`] reduces a symmetric `n × n` matrix to
//! tridiagonal form with `n − 2` Householder similarity transforms
//! (Golub & Van Loan §8.3.1): at step `k` a reflector `H = I − βvvᵀ`
//! (`β = 2/vᵀv`) built from the subdiagonal column annihilates rows
//! `k+2..n` of column `k`, and the trailing block receives the symmetric
//! rank-2 update
//!
//! ```text
//! p = β·A·v,   w = p − (β·pᵀv/2)·v,   A ← A − v·wᵀ − w·vᵀ
//! ```
//!
//! for `4n³/3` total flops. The matvec is chunk-parallel over rows with a
//! shared per-row [`simd::dot`] microkernel; the rank-2 update is
//! chunk-parallel over rows with two [`simd::fnma_scaled`] lanes per row.
//! `Q` is back-accumulated by applying the stored reflectors in reverse to
//! the identity through the same chunk-parallel reflector passes as QR.
//!
//! # Stage two: implicit-shift QL
//!
//! [`tql2_into`] diagonalises the tridiagonal `(d, e)` pair with the
//! EISPACK `tql2` schedule: per eigenvalue a Wilkinson-style shift, then a
//! sequence of Givens rotations chasing the bulge. The `d`/`e` recurrence
//! is inherently serial (and `O(n)` per sweep — negligible); the expensive
//! part, applying each sweep's rotations to the eigenvector accumulator, is
//! chunk-parallel over *column* ranges of `Zᵀ`: every chunk applies the
//! whole rotation sequence to its disjoint column slice through the
//! FMA-free [`simd::rotate_two`] kernel.
//!
//! # Determinism
//!
//! Chunk boundaries depend only on the shape, every per-element chain
//! advances in a chunk-independent order (ascending rows for the matvec
//! dots, the fixed rotation sequence per column), and both entry points
//! execute one shared driver differing only in chunked-vs-sequential
//! passes — so [`tridiag_factor_into`] is **bitwise identical** to
//! [`tridiag_factor_scalar_into`] for any `PRIU_THREADS`, per `PRIU_SIMD`
//! level (the per-row dot and element ops dispatch on both paths alike).
//! The QL stage's rotations are built from serial scalar arithmetic and
//! applied with an FMA-free kernel, so its bits never depend on the level.

use crate::dense::matrix::Matrix;
use crate::error::{LinalgError, Result};
use crate::par::{self, Chunks};
use crate::simd;

use super::qr::{apply_reflector, apply_reflector_scalar, ApplyFn};

/// Minimum rows per chunk for the matvec / rank-2 passes (each row costs a
/// full trailing-width sweep).
const TRI_MIN_CHUNK_ROWS: usize = 64;
/// Minimum columns per chunk for the QL rotation passes.
const TRI_MIN_CHUNK_COLS: usize = 128;
/// Chunk-count cap (map-style, disjoint outputs).
const TRI_MAX_CHUNKS: usize = 8;
/// QL iteration cap per eigenvalue before declaring divergence.
const MAX_QL_ITERS: usize = 50;

/// Scratch buffers for [`tridiag_factor_into`], reusable across
/// factorisations of any size (buffers grow to the largest problem seen and
/// are then allocation-free).
#[derive(Debug, Default, Clone)]
pub struct TridiagScratch {
    /// Symmetrised working copy; the trailing block shrinks per step.
    t: Matrix,
    /// Householder vectors, one per row (`n × n`; row `k` is `v_k`, zero
    /// outside `k+1..n`).
    vs: Matrix,
    /// Squared norms `v_kᵀ v_k` (zero marks a skipped reflector).
    vnorms: Vec<f64>,
    /// Matvec result `p = β·A·v`.
    p: Vec<f64>,
    /// Rank-2 coefficient vector `w`.
    w: Vec<f64>,
    /// Per-column dots of the Q back-accumulation reflector passes.
    dots: Vec<f64>,
}

impl TridiagScratch {
    /// Grows every buffer to factorise `n × n` problems allocation-free.
    pub fn reserve(&mut self, n: usize) {
        self.t.reshape_zeroed(n, n);
        self.vs.reshape_zeroed(n, n);
        self.vnorms.resize(n, 0.0);
        self.p.resize(n, 0.0);
        self.w.resize(n, 0.0);
        self.dots.resize(n, 0.0);
    }
}

/// How the trailing-block matvec `p[k1..n] = β · T[k1.., k1..] · v[k1..n]`
/// is computed.
type TriMatvecFn = fn(&Matrix, &[f64], usize, f64, &mut [f64]);
/// How the symmetric rank-2 update `T ← T − v·wᵀ − w·vᵀ` (trailing block
/// from `k1`) is applied.
type TriRank2Fn = fn(&mut Matrix, &[f64], &[f64], usize);

/// Blocked, pool-parallel Householder tridiagonalisation into caller-owned
/// buffers: `q` becomes the orthogonal `n × n` factor, `d` the `n`
/// diagonal and `e` the subdiagonal of `T` (sized `n` with `e[n−1]` as
/// zero padding for the QL stage; the subdiagonal proper is `e[..n−1]`),
/// such that `A = Q T Qᵀ`. Bitwise identical to
/// [`tridiag_factor_scalar_into`] for any thread count.
///
/// # Errors
/// Returns [`LinalgError::InvalidArgument`] if the matrix is not square or
/// not symmetric.
pub fn tridiag_factor_into(
    a: &Matrix,
    q: &mut Matrix,
    d: &mut Vec<f64>,
    e: &mut Vec<f64>,
    scratch: &mut TridiagScratch,
) -> Result<()> {
    tridiag_driver(a, q, d, e, scratch, tri_matvec, tri_rank2, apply_reflector)
}

/// The plain-loop reference: the same driver as [`tridiag_factor_into`]
/// with sequential matvec / rank-2 / reflector passes — used by the parity
/// suite (bitwise) and the decomposition benches (scalar baseline).
///
/// # Errors
/// See [`tridiag_factor_into`].
pub fn tridiag_factor_scalar_into(
    a: &Matrix,
    q: &mut Matrix,
    d: &mut Vec<f64>,
    e: &mut Vec<f64>,
    scratch: &mut TridiagScratch,
) -> Result<()> {
    tridiag_driver(
        a,
        q,
        d,
        e,
        scratch,
        tri_matvec_scalar,
        tri_rank2_scalar,
        apply_reflector_scalar,
    )
}

/// The shared factorisation driver, parameterised only over how the three
/// heavy passes run (chunk-parallel vs plain loops); everything else — the
/// reflector construction, the `β`/`κ` scalars, the `w` combination — is a
/// single serial computation tree shared by both entry points.
#[allow(clippy::too_many_arguments)]
fn tridiag_driver(
    a: &Matrix,
    q: &mut Matrix,
    d: &mut Vec<f64>,
    e: &mut Vec<f64>,
    scratch: &mut TridiagScratch,
    matvec: TriMatvecFn,
    rank2: TriRank2Fn,
    apply: ApplyFn,
) -> Result<()> {
    if !a.is_square() {
        return Err(LinalgError::InvalidArgument(format!(
            "tridiagonalisation requires a square matrix, got {}x{}",
            a.nrows(),
            a.ncols()
        )));
    }
    let n = a.nrows();
    d.clear();
    d.resize(n, 0.0);
    e.clear();
    e.resize(n, 0.0);
    q.reshape_zeroed(n, n);
    for i in 0..n {
        q[(i, i)] = 1.0;
    }
    if n == 0 {
        return Ok(());
    }
    let scale = a.max_abs().max(1.0);
    if a.asymmetry()? > 1e-8 * scale {
        return Err(LinalgError::InvalidArgument(
            "tridiagonalisation requires a symmetric matrix".to_string(),
        ));
    }

    let TridiagScratch {
        t,
        vs,
        vnorms,
        p,
        w,
        dots,
    } = scratch;
    t.reshape_for_overwrite(n, n);
    for i in 0..n {
        for j in 0..n {
            t[(i, j)] = 0.5 * (a[(i, j)] + a[(j, i)]);
        }
    }
    vs.reshape_zeroed(n, n);
    vnorms.clear();
    vnorms.resize(n, 0.0);
    p.clear();
    p.resize(n, 0.0);
    w.clear();
    w.resize(n, 0.0);
    dots.clear();
    dots.resize(n, 0.0);

    for k in 0..n.saturating_sub(2) {
        let k1 = k + 1;
        d[k] = t[(k, k)];
        // Reflector from the subdiagonal column (rows k+1..n), same sign
        // convention and ascending-row norm accumulation as QR's
        // `build_reflector`.
        let mut norm_sq = 0.0;
        for i in k1..n {
            norm_sq += t[(i, k)] * t[(i, k)];
        }
        let norm = norm_sq.sqrt();
        let v = vs.row_mut(k);
        v.fill(0.0);
        if norm == 0.0 {
            vnorms[k] = 0.0;
            e[k] = 0.0;
            continue;
        }
        let alpha = if t[(k1, k)] >= 0.0 { -norm } else { norm };
        for i in k1..n {
            v[i] = t[(i, k)];
        }
        v[k1] -= alpha;
        let mut v_norm_sq = 0.0;
        for x in v[k1..n].iter() {
            v_norm_sq += x * x;
        }
        vnorms[k] = v_norm_sq;
        // H·col_k = (…, α, 0, …, 0): record the new subdiagonal directly.
        e[k] = alpha;
        let beta = 2.0 / v_norm_sq;
        let v = vs.row(k);
        matvec(t, v, k1, beta, p);
        let kappa = 0.5 * beta * simd::dot(&p[k1..n], &v[k1..n]);
        for i in k1..n {
            w[i] = simd::fnma(p[i], kappa, v[i]);
        }
        rank2(t, v, w, k1);
    }
    if n >= 2 {
        d[n - 2] = t[(n - 2, n - 2)];
        e[n - 2] = t[(n - 1, n - 2)];
    }
    d[n - 1] = t[(n - 1, n - 1)];

    // Back-accumulate Q = H_0 (H_1 (… H_{n-3} I)): reflector k touches
    // rows k+1..n, and column j ≤ k of the partial product is still e_j
    // when it runs, so columns k+1..n cover every non-trivial dot.
    for k in (0..n.saturating_sub(2)).rev() {
        if vnorms[k] == 0.0 {
            continue;
        }
        apply(q, vs.row(k), vnorms[k], k + 1, k + 1, n, dots);
    }
    Ok(())
}

/// Chunk-parallel trailing matvec: `p[i] = β · Σ_j T[i][j]·v[j]` over the
/// block `i, j ∈ k1..n`, rows chunked, every row's dot through the
/// dispatched [`simd::dot`] microkernel (shared with the scalar path, so
/// the lane structure is identical by construction).
fn tri_matvec(t: &Matrix, v: &[f64], k1: usize, beta: f64, p: &mut [f64]) {
    let n = t.nrows();
    let chunks = Chunks::new(n - k1, TRI_MIN_CHUNK_ROWS, TRI_MAX_CHUNKS);
    let out = &mut p[k1..n];
    par::map_chunks(&chunks, 1, out, |range, region| {
        for (slot, off) in region.iter_mut().zip(range) {
            let i = k1 + off;
            *slot = beta * simd::dot(&t.row(i)[k1..n], &v[k1..n]);
        }
    });
}

/// Sequential trailing matvec — same per-row microkernel, plain outer loop.
fn tri_matvec_scalar(t: &Matrix, v: &[f64], k1: usize, beta: f64, p: &mut [f64]) {
    let n = t.nrows();
    #[allow(clippy::needless_range_loop)] // i indexes matrix rows and p alike
    for i in k1..n {
        p[i] = beta * simd::dot(&t.row(i)[k1..n], &v[k1..n]);
    }
}

/// Chunk-parallel symmetric rank-2 update `T[i][j] −= v_i·w_j + w_i·v_j`
/// over the trailing block, row chunks, two fused lanes per row in fixed
/// order (`w`-scaled first, then `v`-scaled).
fn tri_rank2(t: &mut Matrix, v: &[f64], w: &[f64], k1: usize) {
    let n = t.nrows();
    let width = t.ncols();
    let chunks = Chunks::new(n - k1, TRI_MIN_CHUNK_ROWS, TRI_MAX_CHUNKS);
    let rows_below = &mut t.as_mut_slice()[k1 * width..];
    par::map_chunks(&chunks, width, rows_below, |range, region| {
        for (local, off) in range.enumerate() {
            let i = k1 + off;
            let row = &mut region[local * width + k1..local * width + n];
            simd::fnma_scaled(row, &w[k1..n], v[i]);
            simd::fnma_scaled(row, &v[k1..n], w[i]);
        }
    });
}

/// Sequential rank-2 update — the same two lanes per row as element loops
/// through the dispatched `fnma` op.
fn tri_rank2_scalar(t: &mut Matrix, v: &[f64], w: &[f64], k1: usize) {
    let n = t.nrows();
    for i in k1..n {
        let (vi, wi) = (v[i], w[i]);
        for j in k1..n {
            t[(i, j)] = simd::fnma(t[(i, j)], w[j], vi);
        }
        for j in k1..n {
            t[(i, j)] = simd::fnma(t[(i, j)], v[j], wi);
        }
    }
}

/// One Givens rotation of a QL sweep, applied to adjacent rows `i`/`i+1`
/// of the eigenvector accumulator `Zᵀ`.
#[derive(Debug, Clone, Copy)]
pub(crate) struct QlRotation {
    i: usize,
    c: f64,
    s: f64,
}

/// Implicit-shift QL iteration (EISPACK `tql2` schedule) on the
/// tridiagonal `(d, e)` pair, accumulating eigenvectors into `zt`.
///
/// On entry `d` holds the diagonal and `e[..n−1]` the subdiagonal
/// (`e[n−1]` is scratch padding); `zt` holds `Zᵀ` — row `i` of `zt` is the
/// `i`-th column of the current basis (the tridiagonalisation's `Qᵀ`, or
/// the identity to diagonalise `T` alone). On exit `d` holds the
/// (unsorted) eigenvalues and row `i` of `zt` the matching eigenvector.
///
/// The `d`/`e` recurrence runs serially on both paths; `parallel` only
/// selects whether each sweep's rotation sequence is applied to `zt` over
/// chunked column ranges or in one sequential pass — element-wise
/// identical either way, so the bits never depend on the choice.
///
/// # Errors
/// Returns [`LinalgError::DidNotConverge`] if an eigenvalue fails to
/// deflate within [`MAX_QL_ITERS`] sweeps.
pub(crate) fn tql2_into(
    d: &mut [f64],
    e: &mut [f64],
    zt: &mut Matrix,
    rot: &mut Vec<QlRotation>,
    parallel: bool,
) -> Result<()> {
    let n = d.len();
    if n == 0 {
        return Ok(());
    }
    debug_assert_eq!(e.len(), n, "e carries one padding slot for the sweep");
    for l in 0..n {
        let mut iters = 0;
        loop {
            // Find the first negligible coupling at or after l: the block
            // l..=mm is what the sweep rotates.
            let mut mm = l;
            while mm + 1 < n {
                let dd = d[mm].abs() + d[mm + 1].abs();
                if e[mm].abs() <= f64::EPSILON * dd {
                    break;
                }
                mm += 1;
            }
            if mm == l {
                break; // d[l] has deflated to an eigenvalue
            }
            iters += 1;
            if iters > MAX_QL_ITERS {
                return Err(LinalgError::DidNotConverge {
                    op: "implicit-shift QL",
                    iterations: MAX_QL_ITERS,
                });
            }
            // Wilkinson-style shift from the leading 2×2.
            let mut g = (d[l + 1] - d[l]) / (2.0 * e[l]);
            let mut r = g.hypot(1.0);
            let sign_r = if g >= 0.0 { r } else { -r };
            g = d[mm] - d[l] + e[l] / (g + sign_r);
            let (mut s, mut c) = (1.0, 1.0);
            let mut shift = 0.0;
            let mut underflow = false;
            rot.clear();
            // Chase the bulge from the bottom of the block up to l.
            for i in (l..mm).rev() {
                let f = s * e[i];
                let b = c * e[i];
                r = f.hypot(g);
                e[i + 1] = r;
                if r == 0.0 {
                    // Recover from underflow: deflate and re-scan.
                    d[i + 1] -= shift;
                    e[mm] = 0.0;
                    underflow = true;
                    break;
                }
                s = f / r;
                c = g / r;
                g = d[i + 1] - shift;
                r = (d[i] - g) * s + 2.0 * c * b;
                shift = s * r;
                d[i + 1] = g + shift;
                g = c * r - b;
                rot.push(QlRotation { i, c, s });
            }
            apply_ql_rotations(zt, rot, parallel);
            if underflow {
                continue;
            }
            d[l] -= shift;
            e[l] = g;
            e[mm] = 0.0;
        }
    }
    Ok(())
}

/// Applies a sweep's rotation sequence to the rows of `Zᵀ`: rotation
/// `(i, c, s)` maps `(z_i, z_{i+1}) ← (c·z_i − s·z_{i+1}, s·z_i + c·z_{i+1})`
/// element-wise. The parallel path chunks the columns — every chunk applies
/// the full sequence to its disjoint slice, bitwise identical to the
/// sequential pass because [`simd::rotate_two`] is element-wise and
/// FMA-free.
fn apply_ql_rotations(zt: &mut Matrix, rot: &[QlRotation], parallel: bool) {
    if rot.is_empty() {
        return;
    }
    let n = zt.ncols();
    if parallel {
        let chunks = Chunks::new(n, TRI_MIN_CHUNK_COLS, TRI_MAX_CHUNKS);
        let ptr = par::SendPtr(zt.as_mut_slice().as_mut_ptr());
        par::run_chunks(chunks.count(), |ci| {
            let range = chunks.range(ci);
            for qr in rot {
                // SAFETY: chunk `ci` touches only columns `range` of the
                // two rotated rows; ranges are disjoint across chunks.
                let row_i = unsafe { ptr.slice(qr.i * n + range.start, range.len()) };
                let row_j = unsafe { ptr.slice((qr.i + 1) * n + range.start, range.len()) };
                simd::rotate_two(row_i, row_j, qr.c, qr.s);
            }
        });
    } else {
        for qr in rot {
            let (upper, lower) = zt.as_mut_slice().split_at_mut((qr.i + 1) * n);
            simd::rotate_two(&mut upper[qr.i * n..], &mut lower[..n], qr.c, qr.s);
        }
    }
}

#[cfg(test)]
mod tests {
    use super::*;

    fn sym(n: usize, seed: u64) -> Matrix {
        let mut state = seed.wrapping_mul(0x9E37_79B9_7F4A_7C15).wrapping_add(1);
        let mut next = move || {
            state ^= state << 13;
            state ^= state >> 7;
            state ^= state << 17;
            (state >> 11) as f64 / (1u64 << 53) as f64 - 0.5
        };
        let b = Matrix::from_fn(n, n, |_, _| next());
        let mut a = Matrix::zeros(n, n);
        for i in 0..n {
            for j in 0..n {
                a[(i, j)] = 0.5 * (b[(i, j)] + b[(j, i)]);
            }
        }
        a
    }

    fn tridiagonal(d: &[f64], e: &[f64]) -> Matrix {
        let n = d.len();
        let mut t = Matrix::zeros(n, n);
        for i in 0..n {
            t[(i, i)] = d[i];
            if i + 1 < n {
                t[(i + 1, i)] = e[i];
                t[(i, i + 1)] = e[i];
            }
        }
        t
    }

    #[test]
    fn factorisation_reconstructs_and_q_is_orthogonal() {
        for n in [1, 2, 3, 5, 17, 40] {
            let a = sym(n, n as u64);
            let mut q = Matrix::zeros(0, 0);
            let (mut d, mut e) = (Vec::new(), Vec::new());
            let mut scratch = TridiagScratch::default();
            tridiag_factor_into(&a, &mut q, &mut d, &mut e, &mut scratch).unwrap();
            let t = tridiagonal(&d, &e[..n - 1.min(n)]);
            let rec = q.matmul(&t).unwrap().matmul(&q.transpose()).unwrap();
            let qtq = q.transpose().matmul(&q).unwrap();
            for i in 0..n {
                for j in 0..n {
                    assert!(
                        (rec[(i, j)] - a[(i, j)]).abs() < 1e-12 * n as f64,
                        "reconstruction at {i},{j} (n={n})"
                    );
                    let id = if i == j { 1.0 } else { 0.0 };
                    assert!((qtq[(i, j)] - id).abs() < 1e-12 * n as f64, "QᵀQ (n={n})");
                }
            }
        }
    }

    #[test]
    fn blocked_is_bitwise_identical_to_scalar() {
        let a = sym(37, 7);
        let mut scratch = TridiagScratch::default();
        let mut q1 = Matrix::zeros(0, 0);
        let (mut d1, mut e1) = (Vec::new(), Vec::new());
        tridiag_factor_into(&a, &mut q1, &mut d1, &mut e1, &mut scratch).unwrap();
        let mut q2 = Matrix::zeros(0, 0);
        let (mut d2, mut e2) = (Vec::new(), Vec::new());
        tridiag_factor_scalar_into(&a, &mut q2, &mut d2, &mut e2, &mut scratch).unwrap();
        assert_eq!(q1, q2);
        assert_eq!(d1, d2);
        assert_eq!(e1, e2);
    }

    #[test]
    fn ql_diagonalises_a_tridiagonal_pair() {
        let n = 24;
        let mut d: Vec<f64> = (0..n).map(|i| ((i * 7 % 11) as f64) - 5.0).collect();
        let mut e: Vec<f64> = (0..n).map(|i| ((i * 3 % 5) as f64) / 3.0 + 0.1).collect();
        e[n - 1] = 0.0;
        let t = tridiagonal(&d.clone(), &e[..n - 1]);
        let mut zt = Matrix::identity(n);
        let mut rot = Vec::new();
        tql2_into(&mut d, &mut e, &mut zt, &mut rot, false).unwrap();
        // T·z_i = λ_i·z_i for every accumulated row of Zᵀ.
        for (i, &lambda) in d.iter().enumerate() {
            let z = zt.row(i);
            for r in 0..n {
                let mut tz = 0.0;
                for (c, &zc) in z.iter().enumerate() {
                    tz += t[(r, c)] * zc;
                }
                assert!(
                    (tz - lambda * z[r]).abs() < 1e-10,
                    "eigenpair {i} residual at row {r}"
                );
            }
        }
    }

    #[test]
    fn rejects_non_square_and_asymmetric() {
        let mut scratch = TridiagScratch::default();
        let mut q = Matrix::zeros(0, 0);
        let (mut d, mut e) = (Vec::new(), Vec::new());
        assert!(
            tridiag_factor_into(&Matrix::zeros(2, 3), &mut q, &mut d, &mut e, &mut scratch)
                .is_err()
        );
        let mut a = Matrix::zeros(3, 3);
        a[(0, 1)] = 1.0;
        assert!(tridiag_factor_into(&a, &mut q, &mut d, &mut e, &mut scratch).is_err());
    }
}
