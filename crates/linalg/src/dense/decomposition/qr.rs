//! QR factorisation (Householder) and modified Gram-Schmidt
//! orthonormalisation.
//!
//! The orthonormalisation routine is the work-horse of the randomized range
//! finder used to compress PrIU's per-iteration intermediate results.

use crate::dense::matrix::Matrix;
use crate::dense::vector::Vector;
use crate::error::{LinalgError, Result};

/// Thin QR factorisation `A = Q R` with `Q` having orthonormal columns.
#[derive(Debug, Clone)]
pub struct Qr {
    q: Matrix,
    r: Matrix,
}

impl Qr {
    /// Computes a thin Householder QR factorisation of an `n x m` matrix with
    /// `n >= m`.
    ///
    /// # Errors
    /// Returns [`LinalgError::InvalidArgument`] if `n < m` or the matrix is
    /// empty.
    pub fn new(a: &Matrix) -> Result<Self> {
        let (n, m) = a.shape();
        if n == 0 || m == 0 {
            return Err(LinalgError::InvalidArgument(
                "QR of an empty matrix is undefined".to_string(),
            ));
        }
        if n < m {
            return Err(LinalgError::InvalidArgument(format!(
                "thin QR requires rows >= cols, got {n}x{m}"
            )));
        }
        // Work on a copy; accumulate Householder reflectors into Q explicitly.
        let mut r_full = a.clone();
        let mut q_full = Matrix::identity(n);

        for k in 0..m {
            // Build the Householder vector for column k below the diagonal.
            let mut norm = 0.0;
            for i in k..n {
                norm += r_full[(i, k)] * r_full[(i, k)];
            }
            let norm = norm.sqrt();
            if norm == 0.0 {
                continue;
            }
            let alpha = if r_full[(k, k)] >= 0.0 { -norm } else { norm };
            let mut v = vec![0.0; n];
            for i in k..n {
                v[i] = r_full[(i, k)];
            }
            v[k] -= alpha;
            let v_norm_sq: f64 = v.iter().map(|x| x * x).sum();
            if v_norm_sq == 0.0 {
                continue;
            }
            // Apply reflector H = I - 2 v v^T / (v^T v) to R (from the left).
            for j in k..m {
                let mut dot = 0.0;
                for i in k..n {
                    dot += v[i] * r_full[(i, j)];
                }
                let scale = 2.0 * dot / v_norm_sq;
                for i in k..n {
                    r_full[(i, j)] -= scale * v[i];
                }
            }
            // Accumulate into Q: Q = Q * H.
            for i in 0..n {
                let mut dot = 0.0;
                for l in k..n {
                    dot += q_full[(i, l)] * v[l];
                }
                let scale = 2.0 * dot / v_norm_sq;
                for l in k..n {
                    q_full[(i, l)] -= scale * v[l];
                }
            }
        }

        // Extract the thin factors.
        let q = q_full.first_columns(m)?;
        let mut r = Matrix::zeros(m, m);
        for i in 0..m {
            for j in i..m {
                r[(i, j)] = r_full[(i, j)];
            }
        }
        Ok(Self { q, r })
    }

    /// Orthonormal factor `Q` (`n x m`).
    pub fn q(&self) -> &Matrix {
        &self.q
    }

    /// Upper-triangular factor `R` (`m x m`).
    pub fn r(&self) -> &Matrix {
        &self.r
    }
}

/// Orthonormalises the columns of `a` in place using modified Gram-Schmidt,
/// dropping (zeroing) columns that are numerically dependent.
///
/// Returns the number of independent columns kept; dependent columns are
/// moved to the end as zero columns so the leading `rank` columns always form
/// an orthonormal basis of the column space.
pub fn orthonormalize_columns(a: &mut Matrix) -> usize {
    let (n, m) = a.shape();
    let tol = 1e-12;
    let mut rank = 0;
    for j in 0..m {
        // Copy column j into a work buffer.
        let mut col = Vector::from_fn(n, |i| a[(i, j)]);
        // Subtract projections onto previously accepted columns (stored in
        // positions 0..rank).
        for k in 0..rank {
            let mut dot = 0.0;
            for i in 0..n {
                dot += a[(i, k)] * col[i];
            }
            for i in 0..n {
                col[i] -= dot * a[(i, k)];
            }
        }
        let norm = col.norm2();
        if norm > tol {
            for i in 0..n {
                a[(i, rank)] = col[i] / norm;
            }
            rank += 1;
        }
    }
    // Zero out the trailing columns.
    for j in rank..m {
        for i in 0..n {
            a[(i, j)] = 0.0;
        }
    }
    rank
}

#[cfg(test)]
mod tests {
    use super::*;

    fn tall() -> Matrix {
        Matrix::from_vec(
            4,
            3,
            vec![
                1.0, 2.0, 3.0, //
                0.5, -1.0, 2.0, //
                2.0, 0.0, 1.0, //
                -1.0, 1.0, 0.0,
            ],
        )
        .unwrap()
    }

    #[test]
    fn qr_reconstructs_input() {
        let a = tall();
        let qr = Qr::new(&a).unwrap();
        let rec = qr.q().matmul(qr.r()).unwrap();
        for i in 0..4 {
            for j in 0..3 {
                assert!(
                    (rec[(i, j)] - a[(i, j)]).abs() < 1e-10,
                    "mismatch at {i},{j}"
                );
            }
        }
    }

    #[test]
    fn q_has_orthonormal_columns() {
        let a = tall();
        let qr = Qr::new(&a).unwrap();
        let qtq = qr.q().transpose().matmul(qr.q()).unwrap();
        for i in 0..3 {
            for j in 0..3 {
                let expected = if i == j { 1.0 } else { 0.0 };
                assert!((qtq[(i, j)] - expected).abs() < 1e-10);
            }
        }
    }

    #[test]
    fn r_is_upper_triangular() {
        let qr = Qr::new(&tall()).unwrap();
        for i in 0..3 {
            for j in 0..i {
                assert!(qr.r()[(i, j)].abs() < 1e-12);
            }
        }
    }

    #[test]
    fn rejects_wide_and_empty() {
        assert!(Qr::new(&Matrix::zeros(2, 3)).is_err());
        assert!(Qr::new(&Matrix::zeros(0, 0)).is_err());
    }

    #[test]
    fn gram_schmidt_orthonormalizes_and_detects_rank() {
        let mut a = Matrix::from_vec(
            3,
            3,
            vec![
                1.0, 2.0, 2.0, //
                0.0, 1.0, 1.0, //
                1.0, 0.0, 0.0,
            ],
        )
        .unwrap();
        // Third column equals the second: rank 2.
        let rank = orthonormalize_columns(&mut a);
        assert_eq!(rank, 2);
        for k in 0..rank {
            let col = a.column(k);
            assert!((col.norm2() - 1.0).abs() < 1e-10);
        }
        let c0 = a.column(0);
        let c1 = a.column(1);
        assert!(c0.dot(&c1).unwrap().abs() < 1e-10);
        assert!(a.column(2).norm2() < 1e-12);
    }
}
