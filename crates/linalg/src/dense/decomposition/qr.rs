//! QR factorisation (Householder) and modified Gram-Schmidt
//! orthonormalisation.
//!
//! The orthonormalisation routine is the work-horse of the randomized range
//! finder used to compress PrIU's per-iteration intermediate results.
//!
//! # Blocked, pool-parallel factorisation
//!
//! [`qr_factor_into`] reorganises the textbook Householder sweep into
//! row-major friendly, chunk-parallel passes:
//!
//! * **reflector application** — the per-column dots `vᵀ·R[:, j]` are
//!   accumulated row-by-row (`dots[j] += v_i · R[i][j]`, contiguous reads,
//!   vectorisable inner loop) and parallelised over *column* chunks, each of
//!   which owns a disjoint slice of `dots` and still accumulates every
//!   column in ascending row order; the rank-1 update
//!   `R[i][j] −= scale_j · v_i` is parallelised over *row* chunks;
//! * **thin `Q` by back-accumulation** — instead of accumulating a full
//!   `n × n` `Q` (`O(n²m)`), the reflectors are stored and applied in
//!   reverse order to `[I_m; 0]` (`O(n m²)`), with the same
//!   column-chunk/row-chunk parallel passes.
//!
//! **Determinism.** Every dot is accumulated in ascending row order one term
//! at a time and every update element is a single fused expression, so the
//! computation tree is independent of the chunk decomposition: the blocked
//! path is **bitwise identical** to the plain-loop reference
//! [`qr_factor_scalar_into`] and across any `PRIU_THREADS` (asserted by the
//! `decomp_parity` suite). Both paths perform each element's multiply-add
//! through the [`crate::simd`] layer (the chunk-parallel passes via the
//! dispatched axpy / `fnma_scaled` kernels, the reference via the
//! dispatched `madd` / `fnma` element ops), so the guarantee holds per
//! `PRIU_SIMD` level — the Avx2 level fuses every multiply-add on both
//! paths simultaneously.

use crate::dense::matrix::Matrix;
use crate::dense::vector::{axpy_slices, Vector};
use crate::error::{LinalgError, Result};
use crate::par::{self, Chunks};
use crate::simd;

/// Minimum rows per chunk for the rank-1 update passes.
const QR_MIN_CHUNK_ROWS: usize = 256;
/// Minimum columns per chunk for the dot-accumulation passes (each column's
/// dot costs a full row sweep, so columns are cheaper to split than rows).
const QR_MIN_CHUNK_COLS: usize = 64;
/// Chunk-count cap for both passes (map-style, disjoint outputs).
const QR_MAX_CHUNKS: usize = 16;

/// Scratch buffers for [`qr_factor_into`], reusable across factorisations of
/// any shape (buffers grow to the largest problem seen and are then
/// allocation-free).
#[derive(Debug, Default, Clone)]
pub struct QrScratch {
    /// Working copy of the input; upper triangle becomes `R`.
    rf: Matrix,
    /// Householder vectors, one per row (`m × n`; row `k` is `v_k`, zero
    /// outside `k..n`).
    vs: Matrix,
    /// Per-column dots / scales of the current reflector application.
    dots: Vec<f64>,
    /// Squared norms `v_kᵀ v_k` (zero marks a skipped reflector).
    vnorms: Vec<f64>,
}

/// Thin QR factorisation `A = Q R` with `Q` having orthonormal columns.
#[derive(Debug, Clone)]
pub struct Qr {
    q: Matrix,
    r: Matrix,
}

impl Qr {
    /// Computes a thin Householder QR factorisation of an `n x m` matrix with
    /// `n >= m`, using the blocked pool-parallel algorithm of
    /// [`qr_factor_into`].
    ///
    /// # Errors
    /// Returns [`LinalgError::InvalidArgument`] if `n < m` or the matrix is
    /// empty.
    pub fn new(a: &Matrix) -> Result<Self> {
        let mut q = Matrix::zeros(0, 0);
        let mut r = Matrix::zeros(0, 0);
        qr_factor_into(a, &mut q, &mut r, &mut QrScratch::default())?;
        Ok(Self { q, r })
    }

    /// Orthonormal factor `Q` (`n x m`).
    pub fn q(&self) -> &Matrix {
        &self.q
    }

    /// Upper-triangular factor `R` (`m x m`).
    pub fn r(&self) -> &Matrix {
        &self.r
    }
}

fn validate_shape(a: &Matrix) -> Result<(usize, usize)> {
    let (n, m) = a.shape();
    if n == 0 || m == 0 {
        return Err(LinalgError::InvalidArgument(
            "QR of an empty matrix is undefined".to_string(),
        ));
    }
    if n < m {
        return Err(LinalgError::InvalidArgument(format!(
            "thin QR requires rows >= cols, got {n}x{m}"
        )));
    }
    Ok((n, m))
}

/// Builds reflector `k` from column `k` of `rf` into row `k` of `vs`,
/// returning `vᵀv` (`0` marks a skip). Shared by the blocked and scalar
/// paths (identical summation order: ascending rows).
fn build_reflector(rf: &Matrix, vs: &mut Matrix, k: usize, n: usize) -> f64 {
    let mut norm_sq = 0.0;
    for i in k..n {
        norm_sq += rf[(i, k)] * rf[(i, k)];
    }
    let norm = norm_sq.sqrt();
    let v = vs.row_mut(k);
    v.fill(0.0);
    if norm == 0.0 {
        return 0.0;
    }
    let alpha = if rf[(k, k)] >= 0.0 { -norm } else { norm };
    for i in k..n {
        v[i] = rf[(i, k)];
    }
    v[k] -= alpha;
    let mut v_norm_sq = 0.0;
    for x in v[k..n].iter() {
        v_norm_sq += x * x;
    }
    v_norm_sq
}

/// Extracts the upper-triangular `m × m` factor from the worked matrix.
fn extract_r(rf: &Matrix, r: &mut Matrix, m: usize) {
    r.reshape_zeroed(m, m);
    for i in 0..m {
        r.row_mut(i)[i..].copy_from_slice(&rf.row(i)[i..m]);
    }
}

/// Blocked, pool-parallel thin Householder QR into caller-owned matrices
/// (`q` reshaped to `n × m`, `r` to `m × m`, both reusing allocations;
/// `scratch` reused across calls). Bitwise identical to
/// [`qr_factor_scalar_into`] for any thread count.
///
/// # Errors
/// See [`Qr::new`].
pub fn qr_factor_into(
    a: &Matrix,
    q: &mut Matrix,
    r: &mut Matrix,
    scratch: &mut QrScratch,
) -> Result<()> {
    qr_driver(a, q, r, scratch, apply_reflector)
}

/// How a reflector `(x, v, v_norm_sq, row0, col0, col1, dots)` is applied.
type ApplyFn = fn(&mut Matrix, &[f64], f64, usize, usize, usize, &mut [f64]);

/// The shared factorisation driver: the single copy of the computation tree
/// both public entry points execute, parameterised only over how a
/// reflector is applied (chunk-parallel vs plain loops). Keeping one driver
/// means a future change to the sweep structure cannot desynchronise the
/// blocked path from its scalar reference.
fn qr_driver(
    a: &Matrix,
    q: &mut Matrix,
    r: &mut Matrix,
    scratch: &mut QrScratch,
    apply: ApplyFn,
) -> Result<()> {
    let (n, m) = validate_shape(a)?;
    let QrScratch {
        rf,
        vs,
        dots,
        vnorms,
    } = scratch;
    // Capacity-reusing copy (Matrix::clone_from would reallocate).
    rf.reshape_zeroed(n, m);
    rf.as_mut_slice().copy_from_slice(a.as_slice());
    vs.reshape_zeroed(m, n);
    dots.clear();
    dots.resize(m, 0.0);
    vnorms.clear();
    vnorms.resize(m, 0.0);

    // Forward sweep: build and apply each reflector to the trailing columns.
    #[allow(clippy::needless_range_loop)] // k is the reflector index throughout
    for k in 0..m {
        let v_norm_sq = build_reflector(rf, vs, k, n);
        vnorms[k] = v_norm_sq;
        if v_norm_sq == 0.0 {
            continue;
        }
        apply(rf, vs.row(k), v_norm_sq, k, k, m, dots);
    }
    extract_r(rf, r, m);

    // Thin Q by back-accumulation: Q = H_0 (H_1 (… H_{m-1} [I_m; 0])).
    // Reflector k only touches rows k..n, and column j of the partial
    // product is still e_j until step j runs, so the column range k..m
    // covers every non-trivial dot.
    q.reshape_zeroed(n, m);
    for j in 0..m {
        q[(j, j)] = 1.0;
    }
    for k in (0..m).rev() {
        if vnorms[k] == 0.0 {
            continue;
        }
        apply(q, vs.row(k), vnorms[k], k, k, m, dots);
    }
    Ok(())
}

/// Applies `H = I − 2 v vᵀ / (vᵀv)` to `x[row0.., col0..col1]` with the
/// chunk-parallel two-pass scheme (dots over column chunks, update over row
/// chunks). Per-element arithmetic and accumulation order are identical to
/// the plain loops in [`qr_factor_scalar_into`].
fn apply_reflector(
    x: &mut Matrix,
    v: &[f64],
    v_norm_sq: f64,
    row0: usize,
    col0: usize,
    col1: usize,
    dots: &mut [f64],
) {
    let n = x.nrows();
    let width = x.ncols();
    let ncols = col1 - col0;
    let dots = &mut dots[..ncols];
    dots.fill(0.0);

    // Pass 1: dots[j] = Σ_{i ≥ row0} v_i · x[i][j], ascending i per column.
    // Column chunks own disjoint slices of `dots`; every chunk sweeps the
    // same rows, so the per-column chain is chunk-independent.
    let col_chunks = Chunks::new(ncols, QR_MIN_CHUNK_COLS, QR_MAX_CHUNKS);
    {
        let x_ref = &*x;
        par::map_chunks(&col_chunks, 1, dots, |range, region| {
            #[allow(clippy::needless_range_loop)] // i indexes matrix rows and v alike
            for i in row0..n {
                let vi = v[i];
                let row = &x_ref.row(i)[col0 + range.start..col0 + range.end];
                // Per-column chains advance one row at a time; the
                // dispatched axpy fuses each multiply-add on the Avx2 level
                // (element-independent across columns, so vector width
                // never changes bits).
                axpy_slices(region, vi, row);
            }
        });
    }
    // Scales: 2 · dot_j / vᵀv.
    for d in dots.iter_mut() {
        *d = 2.0 * *d / v_norm_sq;
    }

    // Pass 2: x[i][j] −= scale_j · v_i — one fused expression per element,
    // parallel over disjoint row chunks.
    let row_chunks = Chunks::new(n - row0, QR_MIN_CHUNK_ROWS, QR_MAX_CHUNKS);
    let scales = &*dots;
    let rows_below = &mut x.as_mut_slice()[row0 * width..];
    par::map_chunks(&row_chunks, width, rows_below, |range, region| {
        for (local, off) in range.enumerate() {
            let vi = v[row0 + off];
            let row = &mut region[local * width + col0..local * width + col1];
            simd::fnma_scaled(row, scales, vi);
        }
    });
}

/// The plain-loop reference: the same driver as [`qr_factor_into`] with
/// every reflector applied by sequential loops instead of the
/// chunk-parallel passes — used by the parity suite (bitwise) and the
/// decomposition benches (scalar baseline).
///
/// # Errors
/// See [`Qr::new`].
pub fn qr_factor_scalar_into(
    a: &Matrix,
    q: &mut Matrix,
    r: &mut Matrix,
    scratch: &mut QrScratch,
) -> Result<()> {
    qr_driver(a, q, r, scratch, apply_reflector_scalar)
}

/// Plain-loop reflector application (the reference tree).
fn apply_reflector_scalar(
    x: &mut Matrix,
    v: &[f64],
    v_norm_sq: f64,
    row0: usize,
    col0: usize,
    col1: usize,
    dots: &mut [f64],
) {
    let n = x.nrows();
    let dots = &mut dots[..col1 - col0];
    dots.fill(0.0);
    #[allow(clippy::needless_range_loop)] // the plain-loop reference stays indexed
    for i in row0..n {
        let vi = v[i];
        for (slot, j) in dots.iter_mut().zip(col0..col1) {
            // Dispatched element op — mul-then-add on the portable level,
            // fused on the Avx2 level — keeping the reference in lock-step
            // with the chunk-parallel passes' dispatched axpy.
            *slot = simd::madd(*slot, vi, x[(i, j)]);
        }
    }
    for d in dots.iter_mut() {
        *d = 2.0 * *d / v_norm_sq;
    }
    for i in row0..n {
        let vi = v[i];
        for (j, &scale) in (col0..col1).zip(dots.iter()) {
            x[(i, j)] = simd::fnma(x[(i, j)], scale, vi);
        }
    }
}

/// Orthonormalises the columns of `a` in place using modified Gram-Schmidt,
/// dropping (zeroing) columns that are numerically dependent.
///
/// Returns the number of independent columns kept; dependent columns are
/// moved to the end as zero columns so the leading `rank` columns always form
/// an orthonormal basis of the column space.
pub fn orthonormalize_columns(a: &mut Matrix) -> usize {
    let (n, m) = a.shape();
    let tol = 1e-12;
    let mut rank = 0;
    for j in 0..m {
        // Copy column j into a work buffer.
        let mut col = Vector::from_fn(n, |i| a[(i, j)]);
        // Subtract projections onto previously accepted columns (stored in
        // positions 0..rank).
        for k in 0..rank {
            let mut dot = 0.0;
            for i in 0..n {
                dot += a[(i, k)] * col[i];
            }
            for i in 0..n {
                col[i] -= dot * a[(i, k)];
            }
        }
        let norm = col.norm2();
        if norm > tol {
            for i in 0..n {
                a[(i, rank)] = col[i] / norm;
            }
            rank += 1;
        }
    }
    // Zero out the trailing columns.
    for j in rank..m {
        for i in 0..n {
            a[(i, j)] = 0.0;
        }
    }
    rank
}

#[cfg(test)]
mod tests {
    use super::*;

    fn tall() -> Matrix {
        Matrix::from_vec(
            4,
            3,
            vec![
                1.0, 2.0, 3.0, //
                0.5, -1.0, 2.0, //
                2.0, 0.0, 1.0, //
                -1.0, 1.0, 0.0,
            ],
        )
        .unwrap()
    }

    #[test]
    fn qr_reconstructs_input() {
        let a = tall();
        let qr = Qr::new(&a).unwrap();
        let rec = qr.q().matmul(qr.r()).unwrap();
        for i in 0..4 {
            for j in 0..3 {
                assert!(
                    (rec[(i, j)] - a[(i, j)]).abs() < 1e-10,
                    "mismatch at {i},{j}"
                );
            }
        }
    }

    #[test]
    fn q_has_orthonormal_columns() {
        let a = tall();
        let qr = Qr::new(&a).unwrap();
        let qtq = qr.q().transpose().matmul(qr.q()).unwrap();
        for i in 0..3 {
            for j in 0..3 {
                let expected = if i == j { 1.0 } else { 0.0 };
                assert!((qtq[(i, j)] - expected).abs() < 1e-10);
            }
        }
    }

    #[test]
    fn r_is_upper_triangular() {
        let qr = Qr::new(&tall()).unwrap();
        for i in 0..3 {
            for j in 0..i {
                assert!(qr.r()[(i, j)].abs() < 1e-12);
            }
        }
    }

    #[test]
    fn blocked_is_bitwise_identical_to_scalar() {
        let a = Matrix::from_fn(37, 11, |i, j| (((i * 13 + j * 7) % 17) as f64 - 8.0) / 9.0);
        let mut scratch = QrScratch::default();
        let (mut q1, mut r1) = (Matrix::zeros(0, 0), Matrix::zeros(0, 0));
        qr_factor_into(&a, &mut q1, &mut r1, &mut scratch).unwrap();
        let (mut q2, mut r2) = (Matrix::zeros(0, 0), Matrix::zeros(0, 0));
        qr_factor_scalar_into(&a, &mut q2, &mut r2, &mut scratch).unwrap();
        assert_eq!(q1, q2);
        assert_eq!(r1, r2);
    }

    #[test]
    fn rank_deficient_column_is_skipped_not_nan() {
        // A zero column yields a zero reflector norm; the factor must stay
        // finite and still reconstruct the input.
        let mut a = tall();
        for i in 0..4 {
            a[(i, 1)] = 0.0;
        }
        let qr = Qr::new(&a).unwrap();
        assert!(qr.q().is_finite());
        assert!(qr.r().is_finite());
        let rec = qr.q().matmul(qr.r()).unwrap();
        for i in 0..4 {
            for j in 0..3 {
                assert!((rec[(i, j)] - a[(i, j)]).abs() < 1e-10);
            }
        }
    }

    #[test]
    fn rejects_wide_and_empty() {
        assert!(Qr::new(&Matrix::zeros(2, 3)).is_err());
        assert!(Qr::new(&Matrix::zeros(0, 0)).is_err());
    }

    #[test]
    fn gram_schmidt_orthonormalizes_and_detects_rank() {
        let mut a = Matrix::from_vec(
            3,
            3,
            vec![
                1.0, 2.0, 2.0, //
                0.0, 1.0, 1.0, //
                1.0, 0.0, 0.0,
            ],
        )
        .unwrap();
        // Third column equals the second: rank 2.
        let rank = orthonormalize_columns(&mut a);
        assert_eq!(rank, 2);
        for k in 0..rank {
            let col = a.column(k);
            assert!((col.norm2() - 1.0).abs() < 1e-10);
        }
        let c0 = a.column(0);
        let c1 = a.column(1);
        assert!(c0.dot(&c1).unwrap().abs() < 1e-10);
        assert!(a.column(2).norm2() < 1e-12);
    }
}
