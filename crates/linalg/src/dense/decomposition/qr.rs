//! QR factorisation (Householder, compact-WY aggregated) and modified
//! Gram-Schmidt orthonormalisation.
//!
//! The orthonormalisation routine is the work-horse of the randomized range
//! finder used to compress PrIU's per-iteration intermediate results.
//!
//! # Compact-WY blocked, pool-parallel factorisation
//!
//! [`qr_factor_into`] groups the Householder sweep into panels of
//! [`QR_NB`] reflectors. Inside a panel each reflector is built and applied
//! to the *panel columns only* with the classic two-pass scheme (per-column
//! dots over column chunks, rank-1 update over row chunks). The panel's
//! reflectors are then aggregated into compact-WY form
//! `H_{k0} ⋯ H_{k1−1} = I − V·T·Vᵀ` (LAPACK `larft` forward-columnwise
//! recurrence, `T` upper triangular with `T_jj = τ_j = 2/vⱼᵀvⱼ`), so that
//!
//! * the **trailing-matrix update** applies `I − V·Tᵀ·Vᵀ` as two
//!   matmul-shaped pool passes — `W = VᵀX` then `W² = Tᵀ·W` over column
//!   chunks, followed by `X −= V·W²` over row chunks — instead of
//!   `2·nb` separate sweeps;
//! * **thin `Q` by back-accumulation** applies the panels in reverse order
//!   to `[I_m; 0]` as `I − V·T·Vᵀ` with the same two pool passes.
//!
//! **Determinism.** Aggregating reflectors *changes the summation tree*
//! (per-column chains accumulate `nb` reflector contributions through `W`
//! instead of one at a time), so the plain-loop scalar reference
//! [`qr_factor_scalar_into`] moves with it: both entry points execute the
//! *same* panel driver and differ only in whether the three WY passes are
//! chunk-parallel or sequential loops. Every per-element chain advances in
//! ascending row (`i`), reflector (`p`), and accumulator (`q`) order with
//! zero terms uniformly included, and chunk boundaries depend only on the
//! shape — so the blocked path is **bitwise identical** to the scalar
//! reference and across any `PRIU_THREADS` (asserted by `decomp_parity`).
//! Both paths route each multiply-add through the [`crate::simd`] layer
//! (chunked passes via the dispatched axpy / `fnma_scaled` kernels, the
//! reference via the dispatched `madd` / `fnma` element ops), so the
//! guarantee holds per `PRIU_SIMD` level.
//!
//! The pre-aggregation per-reflector driver survives as
//! [`qr_factor_per_reflector_into`]: it computes the same factorisation
//! through a different tree (numerically equal, not bitwise), and anchors
//! the compact-WY equivalence suite and the decomposition benches.

use crate::dense::matrix::Matrix;
use crate::dense::vector::{axpy_slices, Vector};
use crate::error::{LinalgError, Result};
use crate::par::{self, Chunks};
use crate::simd;

/// Minimum rows per chunk for the rank-1 / WY update passes.
const QR_MIN_CHUNK_ROWS: usize = 256;
/// Minimum columns per chunk for the dot-accumulation passes (each column's
/// dot costs a full row sweep, so columns are cheaper to split than rows).
const QR_MIN_CHUNK_COLS: usize = 64;
/// Chunk-count cap for both passes (map-style, disjoint outputs).
const QR_MAX_CHUNKS: usize = 16;
/// Column count below which [`qr_factor_into`] dispatches to the
/// per-reflector driver instead of compact-WY: the `T`-block build is
/// `O(m·nb²)` yet saves only trailing-pass traffic proportional to the
/// trailing width, so it never amortises on narrow problems (BENCH_7:
/// per-reflector wins at 512×128 on one CPU, WY wins by 512×257). The
/// switch is mirrored in [`qr_factor_scalar_into`] so the bitwise
/// scalar == blocked == pool contract is preserved on both sides of the
/// crossover (`decomp_parity` pins it at the boundary).
pub const QR_WY_MIN_COLS: usize = 192;
/// Compact-WY panel width: reflectors aggregated per `I − V·T·Vᵀ` block.
pub const QR_NB: usize = 32;

/// Scratch buffers for [`qr_factor_into`], reusable across factorisations of
/// any shape (buffers grow to the largest problem seen and are then
/// allocation-free).
#[derive(Debug, Default, Clone)]
pub struct QrScratch {
    /// Working copy of the input; upper triangle becomes `R`.
    rf: Matrix,
    /// Householder vectors, one per row (`m × n`; row `k` is `v_k`, zero
    /// outside `k..n`).
    vs: Matrix,
    /// Per-column dots / scales of the current reflector application.
    dots: Vec<f64>,
    /// Squared norms `v_kᵀ v_k` (zero marks a skipped reflector).
    vnorms: Vec<f64>,
    /// Stacked upper-triangular `T` blocks, one `QR_NB × QR_NB` block per
    /// panel (panel `b` occupies rows `b·QR_NB ..`).
    ts: Matrix,
    /// WY pass-1 workspace `W = VᵀX` (`QR_NB` rows, tight `ncols` stride).
    w: Vec<f64>,
    /// WY pass-2 workspace `W² = T'·W` (same layout as `w`).
    w2: Vec<f64>,
    /// `Vᵀ·v_j` accumulator for the `larft` recurrence.
    tmp: Vec<f64>,
}

/// Thin QR factorisation `A = Q R` with `Q` having orthonormal columns.
#[derive(Debug, Clone)]
pub struct Qr {
    q: Matrix,
    r: Matrix,
}

impl Qr {
    /// Computes a thin Householder QR factorisation of an `n x m` matrix with
    /// `n >= m`, using the blocked pool-parallel algorithm of
    /// [`qr_factor_into`].
    ///
    /// # Errors
    /// Returns [`LinalgError::InvalidArgument`] if `n < m` or the matrix is
    /// empty.
    pub fn new(a: &Matrix) -> Result<Self> {
        let mut q = Matrix::zeros(0, 0);
        let mut r = Matrix::zeros(0, 0);
        qr_factor_into(a, &mut q, &mut r, &mut QrScratch::default())?;
        Ok(Self { q, r })
    }

    /// Orthonormal factor `Q` (`n x m`).
    pub fn q(&self) -> &Matrix {
        &self.q
    }

    /// Upper-triangular factor `R` (`m x m`).
    pub fn r(&self) -> &Matrix {
        &self.r
    }
}

fn validate_shape(a: &Matrix) -> Result<(usize, usize)> {
    let (n, m) = a.shape();
    if n == 0 || m == 0 {
        return Err(LinalgError::InvalidArgument(
            "QR of an empty matrix is undefined".to_string(),
        ));
    }
    if n < m {
        return Err(LinalgError::InvalidArgument(format!(
            "thin QR requires rows >= cols, got {n}x{m}"
        )));
    }
    Ok((n, m))
}

/// Builds reflector `k` from column `k` of `rf` into row `k` of `vs`,
/// returning `vᵀv` (`0` marks a skip). Shared by the blocked and scalar
/// paths (identical summation order: ascending rows).
fn build_reflector(rf: &Matrix, vs: &mut Matrix, k: usize, n: usize) -> f64 {
    let mut norm_sq = 0.0;
    for i in k..n {
        norm_sq += rf[(i, k)] * rf[(i, k)];
    }
    let norm = norm_sq.sqrt();
    let v = vs.row_mut(k);
    v.fill(0.0);
    if norm == 0.0 {
        return 0.0;
    }
    let alpha = if rf[(k, k)] >= 0.0 { -norm } else { norm };
    for i in k..n {
        v[i] = rf[(i, k)];
    }
    v[k] -= alpha;
    let mut v_norm_sq = 0.0;
    for x in v[k..n].iter() {
        v_norm_sq += x * x;
    }
    v_norm_sq
}

/// Extracts the upper-triangular `m × m` factor from the worked matrix.
fn extract_r(rf: &Matrix, r: &mut Matrix, m: usize) {
    r.reshape_zeroed(m, m);
    for i in 0..m {
        r.row_mut(i)[i..].copy_from_slice(&rf.row(i)[i..m]);
    }
}

/// Blocked, pool-parallel thin Householder QR into caller-owned matrices
/// (`q` reshaped to `n × m`, `r` to `m × m`, both reusing allocations;
/// `scratch` reused across calls). Runs compact-WY panels at
/// [`QR_WY_MIN_COLS`] columns and above, the per-reflector driver below
/// (where the `T`-block build never amortises). Bitwise identical to
/// [`qr_factor_scalar_into`] for any thread count — the scalar reference
/// switches drivers on the same width.
///
/// # Errors
/// See [`Qr::new`].
pub fn qr_factor_into(
    a: &Matrix,
    q: &mut Matrix,
    r: &mut Matrix,
    scratch: &mut QrScratch,
) -> Result<()> {
    if a.ncols() < QR_WY_MIN_COLS {
        qr_reflector_driver(a, q, r, scratch, apply_reflector)
    } else {
        qr_wy_driver(a, q, r, scratch, apply_reflector, wy_apply)
    }
}

/// How a reflector `(x, v, v_norm_sq, row0, col0, col1, dots)` is applied.
pub(crate) type ApplyFn = fn(&mut Matrix, &[f64], f64, usize, usize, usize, &mut [f64]);

/// One compact-WY panel: `nb` reflectors starting at column `k0`, with the
/// aggregated triangular factor in rows `t_row0 ..` of `ts`.
struct WyPanel<'a> {
    vs: &'a Matrix,
    ts: &'a Matrix,
    t_row0: usize,
    k0: usize,
    nb: usize,
}

/// How a WY block `(x, panel, col0, col1, transpose_t, w, w2)` is applied:
/// `X[k0.., col0..col1] ← (I − V·T'·Vᵀ)·X` with `T' = Tᵀ` when
/// `transpose_t` (trailing update applies the transposed product).
type WyApplyFn = fn(&mut Matrix, &WyPanel<'_>, usize, usize, bool, &mut [f64], &mut [f64]);

/// The shared compact-WY factorisation driver: the single copy of the
/// computation tree both public entry points execute, parameterised only
/// over how a reflector / WY block is applied (chunk-parallel vs plain
/// loops). Keeping one driver means a future change to the panel schedule
/// cannot desynchronise the blocked path from its scalar reference.
fn qr_wy_driver(
    a: &Matrix,
    q: &mut Matrix,
    r: &mut Matrix,
    scratch: &mut QrScratch,
    apply: ApplyFn,
    wy: WyApplyFn,
) -> Result<()> {
    let (n, m) = validate_shape(a)?;
    let QrScratch {
        rf,
        vs,
        dots,
        vnorms,
        ts,
        w,
        w2,
        tmp,
    } = scratch;
    // Capacity-reusing copy (Matrix::clone_from would reallocate).
    rf.reshape_zeroed(n, m);
    rf.as_mut_slice().copy_from_slice(a.as_slice());
    vs.reshape_zeroed(m, n);
    dots.clear();
    dots.resize(m, 0.0);
    vnorms.clear();
    vnorms.resize(m, 0.0);
    let num_panels = m.div_ceil(QR_NB);
    ts.reshape_zeroed(num_panels * QR_NB, QR_NB);
    w.clear();
    w.resize(QR_NB * m, 0.0);
    w2.clear();
    w2.resize(QR_NB * m, 0.0);
    tmp.clear();
    tmp.resize(QR_NB, 0.0);

    // Forward sweep: per panel, build each reflector and apply it to the
    // remaining *panel* columns only, then aggregate the panel into
    // `I − V·T·Vᵀ` and hit the trailing columns with two WY passes.
    for (b, k0) in (0..m).step_by(QR_NB).enumerate() {
        let k1 = (k0 + QR_NB).min(m);
        #[allow(clippy::needless_range_loop)] // k is the reflector index throughout
        for k in k0..k1 {
            let v_norm_sq = build_reflector(rf, vs, k, n);
            vnorms[k] = v_norm_sq;
            if v_norm_sq == 0.0 {
                continue;
            }
            apply(rf, vs.row(k), v_norm_sq, k, k, k1, dots);
        }
        build_t(vs, vnorms, ts, b * QR_NB, k0, k1 - k0, n, tmp);
        if k1 < m && vnorms[k0..k1].iter().any(|&vn| vn != 0.0) {
            let panel = WyPanel {
                vs,
                ts,
                t_row0: b * QR_NB,
                k0,
                nb: k1 - k0,
            };
            // The product applied during factorisation is
            // H_{k1−1} ⋯ H_{k0} = (I − V·T·Vᵀ)ᵀ = I − V·Tᵀ·Vᵀ.
            wy(rf, &panel, k1, m, true, w, w2);
        }
    }
    extract_r(rf, r, m);

    // Thin Q by back-accumulation: Q = P_0 (P_1 (… P_{np−1} [I_m; 0]))
    // with P_b = H_{k0} ⋯ H_{k1−1} = I − V·T·Vᵀ. Columns j < k0 of the
    // partial product are still e_j when panel b runs (later panels only
    // touch columns ≥ their own k0), so the column range k0..m covers
    // every non-trivial column.
    q.reshape_zeroed(n, m);
    for j in 0..m {
        q[(j, j)] = 1.0;
    }
    for (b, k0) in (0..m).step_by(QR_NB).enumerate().rev() {
        let k1 = (k0 + QR_NB).min(m);
        if vnorms[k0..k1].iter().all(|&vn| vn == 0.0) {
            continue;
        }
        let panel = WyPanel {
            vs,
            ts,
            t_row0: b * QR_NB,
            k0,
            nb: k1 - k0,
        };
        wy(q, &panel, k0, m, false, w, w2);
    }
    Ok(())
}

/// Aggregates panel reflectors into the upper-triangular `T` of
/// `H_{k0} ⋯ H_{k0+nb−1} = I − V·T·Vᵀ` (LAPACK `larft` forward-columnwise):
/// `T_jj = τ_j`, `T[0..j, j] = −τ_j · T[0..j, 0..j] · (Vᵀ v_j)`. Shared by
/// both entry points — the per-column recurrence accumulates in ascending
/// `q` order and the cross-reflector dots go through the dispatched
/// [`simd::dot`], so the block is identical on the blocked and scalar paths.
#[allow(clippy::too_many_arguments)]
fn build_t(
    vs: &Matrix,
    vnorms: &[f64],
    ts: &mut Matrix,
    t_row0: usize,
    k0: usize,
    nb: usize,
    n: usize,
    tmp: &mut [f64],
) {
    for p in 0..nb {
        ts.row_mut(t_row0 + p)[..nb].fill(0.0);
    }
    for j in 0..nb {
        let vn = vnorms[k0 + j];
        if vn == 0.0 {
            continue; // skipped reflector: H_j = I, column j of T stays zero
        }
        let tau = 2.0 / vn;
        // tmp[p] = v_pᵀ v_j; v_p is supported on rows k0+p..n and v_j on
        // k0+j..n (j > p), so the dot runs over the intersection.
        let vj = vs.row(k0 + j);
        #[allow(clippy::needless_range_loop)] // p is the reflector index throughout
        for p in 0..j {
            tmp[p] = simd::dot(&vs.row(k0 + p)[k0 + j..n], &vj[k0 + j..n]);
        }
        for p in 0..j {
            let mut acc = 0.0;
            for q in p..j {
                acc = simd::madd(acc, ts[(t_row0 + p, q)], tmp[q]);
            }
            ts[(t_row0 + p, j)] = -tau * acc;
        }
        ts[(t_row0 + j, j)] = tau;
    }
}

/// Applies a compact-WY block `X ← (I − V·T'·Vᵀ)·X` to
/// `x[k0.., col0..col1]` with three chunk-parallel passes:
///
/// 1. `W[p][j] = Σ_{i ≥ k0} v_p[i] · x[i][j]` — column chunks own disjoint
///    column slices of every `W` row and sweep rows in ascending order,
///    accumulating all `nb` reflectors per row (zero `v_p[i]` terms
///    uniformly included, so the chain shape never depends on the data);
/// 2. `W²[p][j] = Σ_q T'[p][q] · W[q][j]` — same column chunks, ascending
///    `q`, zero `T'` entries included;
/// 3. `x[i][j] −= Σ_p v_p[i] · W²[p][j]` — row chunks, ascending `p`, one
///    fused [`simd::fnma_scaled`] lane per reflector.
///
/// Per-element arithmetic and accumulation order are identical to the plain
/// loops in [`wy_apply_scalar`].
fn wy_apply(
    x: &mut Matrix,
    panel: &WyPanel<'_>,
    col0: usize,
    col1: usize,
    transpose_t: bool,
    w: &mut [f64],
    w2: &mut [f64],
) {
    let n = x.nrows();
    let width = x.ncols();
    let ncols = col1 - col0;
    let (k0, nb) = (panel.k0, panel.nb);
    let w = &mut w[..nb * ncols];
    let w2 = &mut w2[..nb * ncols];

    // Passes 1+2 share one column decomposition: each chunk fully computes
    // its column slice of W and then of W², so no barrier is needed
    // between them.
    let col_chunks = Chunks::new(ncols, QR_MIN_CHUNK_COLS, QR_MAX_CHUNKS);
    {
        let x_ref = &*x;
        let w_ptr = par::SendPtr(w.as_mut_ptr());
        let w2_ptr = par::SendPtr(w2.as_mut_ptr());
        par::run_chunks(col_chunks.count(), |ci| {
            let range = col_chunks.range(ci);
            // SAFETY: chunk `ci` touches only columns `range` of every W/W²
            // row; the ranges are disjoint across chunks.
            for p in 0..nb {
                unsafe { w_ptr.slice(p * ncols + range.start, range.len()) }.fill(0.0);
            }
            for i in k0..n {
                let row = &x_ref.row(i)[col0 + range.start..col0 + range.end];
                for p in 0..nb {
                    let w_p = unsafe { w_ptr.slice(p * ncols + range.start, range.len()) };
                    axpy_slices(w_p, panel.vs[(k0 + p, i)], row);
                }
            }
            for p in 0..nb {
                let w2_p = unsafe { w2_ptr.slice(p * ncols + range.start, range.len()) };
                w2_p.fill(0.0);
                for q in 0..nb {
                    let t = if transpose_t {
                        panel.ts[(panel.t_row0 + q, p)]
                    } else {
                        panel.ts[(panel.t_row0 + p, q)]
                    };
                    let w_q = unsafe { w_ptr.slice(q * ncols + range.start, range.len()) };
                    axpy_slices(w2_p, t, w_q);
                }
            }
        });
    }

    // Pass 3 over disjoint row chunks.
    let row_chunks = Chunks::new(n - k0, QR_MIN_CHUNK_ROWS, QR_MAX_CHUNKS);
    let w2_ref = &*w2;
    let vs = panel.vs;
    let rows_below = &mut x.as_mut_slice()[k0 * width..];
    par::map_chunks(&row_chunks, width, rows_below, |range, region| {
        for (local, off) in range.enumerate() {
            let i = k0 + off;
            let row = &mut region[local * width + col0..local * width + col1];
            for p in 0..nb {
                simd::fnma_scaled(row, &w2_ref[p * ncols..(p + 1) * ncols], vs[(k0 + p, i)]);
            }
        }
    });
}

/// Plain-loop WY block application (the reference tree): the same three
/// passes as [`wy_apply`] as sequential loops, every multiply-add through
/// the dispatched element ops in the same `i`/`p`/`q` order.
fn wy_apply_scalar(
    x: &mut Matrix,
    panel: &WyPanel<'_>,
    col0: usize,
    col1: usize,
    transpose_t: bool,
    w: &mut [f64],
    w2: &mut [f64],
) {
    let n = x.nrows();
    let ncols = col1 - col0;
    let (k0, nb) = (panel.k0, panel.nb);
    let w = &mut w[..nb * ncols];
    let w2 = &mut w2[..nb * ncols];

    w.fill(0.0);
    for i in k0..n {
        for p in 0..nb {
            let vpi = panel.vs[(k0 + p, i)];
            for (slot, j) in w[p * ncols..(p + 1) * ncols].iter_mut().zip(col0..col1) {
                *slot = simd::madd(*slot, vpi, x[(i, j)]);
            }
        }
    }
    w2.fill(0.0);
    for p in 0..nb {
        for q in 0..nb {
            let t = if transpose_t {
                panel.ts[(panel.t_row0 + q, p)]
            } else {
                panel.ts[(panel.t_row0 + p, q)]
            };
            for j in 0..ncols {
                w2[p * ncols + j] = simd::madd(w2[p * ncols + j], t, w[q * ncols + j]);
            }
        }
    }
    for i in k0..n {
        for p in 0..nb {
            let vpi = panel.vs[(k0 + p, i)];
            for (j, col) in (col0..col1).enumerate() {
                x[(i, col)] = simd::fnma(x[(i, col)], w2[p * ncols + j], vpi);
            }
        }
    }
}

/// The pre-aggregation driver: one reflector at a time over the full
/// trailing column range, exactly the PR 4 schedule. Kept as a public
/// entry point because it computes the same factorisation through a
/// *different* summation tree — the compact-WY equivalence suite checks
/// `qr_factor_into` against it numerically, and the decomposition benches
/// use it as the per-reflector baseline.
///
/// # Errors
/// See [`Qr::new`].
pub fn qr_factor_per_reflector_into(
    a: &Matrix,
    q: &mut Matrix,
    r: &mut Matrix,
    scratch: &mut QrScratch,
) -> Result<()> {
    qr_reflector_driver(a, q, r, scratch, apply_reflector)
}

/// Per-reflector driver shared by [`qr_factor_per_reflector_into`] and the
/// tridiagonalisation module's Q back-accumulation tests.
fn qr_reflector_driver(
    a: &Matrix,
    q: &mut Matrix,
    r: &mut Matrix,
    scratch: &mut QrScratch,
    apply: ApplyFn,
) -> Result<()> {
    let (n, m) = validate_shape(a)?;
    let QrScratch {
        rf,
        vs,
        dots,
        vnorms,
        ..
    } = scratch;
    rf.reshape_zeroed(n, m);
    rf.as_mut_slice().copy_from_slice(a.as_slice());
    vs.reshape_zeroed(m, n);
    dots.clear();
    dots.resize(m, 0.0);
    vnorms.clear();
    vnorms.resize(m, 0.0);

    #[allow(clippy::needless_range_loop)] // k is the reflector index throughout
    for k in 0..m {
        let v_norm_sq = build_reflector(rf, vs, k, n);
        vnorms[k] = v_norm_sq;
        if v_norm_sq == 0.0 {
            continue;
        }
        apply(rf, vs.row(k), v_norm_sq, k, k, m, dots);
    }
    extract_r(rf, r, m);

    // Thin Q by back-accumulation: Q = H_0 (H_1 (… H_{m-1} [I_m; 0])).
    q.reshape_zeroed(n, m);
    for j in 0..m {
        q[(j, j)] = 1.0;
    }
    for k in (0..m).rev() {
        if vnorms[k] == 0.0 {
            continue;
        }
        apply(q, vs.row(k), vnorms[k], k, k, m, dots);
    }
    Ok(())
}

/// Applies `H = I − 2 v vᵀ / (vᵀv)` to `x[row0.., col0..col1]` with the
/// chunk-parallel two-pass scheme (dots over column chunks, update over row
/// chunks). Per-element arithmetic and accumulation order are identical to
/// the plain loops in [`apply_reflector_scalar`]. Shared with the
/// tridiagonalisation module's Q back-accumulation.
pub(crate) fn apply_reflector(
    x: &mut Matrix,
    v: &[f64],
    v_norm_sq: f64,
    row0: usize,
    col0: usize,
    col1: usize,
    dots: &mut [f64],
) {
    let n = x.nrows();
    let width = x.ncols();
    let ncols = col1 - col0;
    let dots = &mut dots[..ncols];
    dots.fill(0.0);

    // Pass 1: dots[j] = Σ_{i ≥ row0} v_i · x[i][j], ascending i per column.
    // Column chunks own disjoint slices of `dots`; every chunk sweeps the
    // same rows, so the per-column chain is chunk-independent.
    let col_chunks = Chunks::new(ncols, QR_MIN_CHUNK_COLS, QR_MAX_CHUNKS);
    {
        let x_ref = &*x;
        par::map_chunks(&col_chunks, 1, dots, |range, region| {
            #[allow(clippy::needless_range_loop)] // i indexes matrix rows and v alike
            for i in row0..n {
                let vi = v[i];
                let row = &x_ref.row(i)[col0 + range.start..col0 + range.end];
                // Per-column chains advance one row at a time; the
                // dispatched axpy fuses each multiply-add on the Avx2 level
                // (element-independent across columns, so vector width
                // never changes bits).
                axpy_slices(region, vi, row);
            }
        });
    }
    // Scales: 2 · dot_j / vᵀv.
    for d in dots.iter_mut() {
        *d = 2.0 * *d / v_norm_sq;
    }

    // Pass 2: x[i][j] −= scale_j · v_i — one fused expression per element,
    // parallel over disjoint row chunks.
    let row_chunks = Chunks::new(n - row0, QR_MIN_CHUNK_ROWS, QR_MAX_CHUNKS);
    let scales = &*dots;
    let rows_below = &mut x.as_mut_slice()[row0 * width..];
    par::map_chunks(&row_chunks, width, rows_below, |range, region| {
        for (local, off) in range.enumerate() {
            let vi = v[row0 + off];
            let row = &mut region[local * width + col0..local * width + col1];
            simd::fnma_scaled(row, scales, vi);
        }
    });
}

/// The plain-loop reference: the same driver tree as [`qr_factor_into`] —
/// including its [`QR_WY_MIN_COLS`] width switch — with every reflector and
/// WY block applied by sequential loops instead of the chunk-parallel
/// passes; used by the parity suite (bitwise) and the decomposition benches
/// (scalar baseline).
///
/// # Errors
/// See [`Qr::new`].
pub fn qr_factor_scalar_into(
    a: &Matrix,
    q: &mut Matrix,
    r: &mut Matrix,
    scratch: &mut QrScratch,
) -> Result<()> {
    if a.ncols() < QR_WY_MIN_COLS {
        qr_reflector_driver(a, q, r, scratch, apply_reflector_scalar)
    } else {
        qr_wy_driver(a, q, r, scratch, apply_reflector_scalar, wy_apply_scalar)
    }
}

/// Plain-loop reflector application (the reference tree). Shared with the
/// tridiagonalisation module's scalar Q back-accumulation.
pub(crate) fn apply_reflector_scalar(
    x: &mut Matrix,
    v: &[f64],
    v_norm_sq: f64,
    row0: usize,
    col0: usize,
    col1: usize,
    dots: &mut [f64],
) {
    let n = x.nrows();
    let dots = &mut dots[..col1 - col0];
    dots.fill(0.0);
    #[allow(clippy::needless_range_loop)] // the plain-loop reference stays indexed
    for i in row0..n {
        let vi = v[i];
        for (slot, j) in dots.iter_mut().zip(col0..col1) {
            // Dispatched element op — mul-then-add on the portable level,
            // fused on the Avx2 level — keeping the reference in lock-step
            // with the chunk-parallel passes' dispatched axpy.
            *slot = simd::madd(*slot, vi, x[(i, j)]);
        }
    }
    for d in dots.iter_mut() {
        *d = 2.0 * *d / v_norm_sq;
    }
    for i in row0..n {
        let vi = v[i];
        for (j, &scale) in (col0..col1).zip(dots.iter()) {
            x[(i, j)] = simd::fnma(x[(i, j)], scale, vi);
        }
    }
}

/// Orthonormalises the columns of `a` in place using modified Gram-Schmidt,
/// dropping (zeroing) columns that are numerically dependent.
///
/// Returns the number of independent columns kept; dependent columns are
/// moved to the end as zero columns so the leading `rank` columns always form
/// an orthonormal basis of the column space.
pub fn orthonormalize_columns(a: &mut Matrix) -> usize {
    let (n, m) = a.shape();
    let tol = 1e-12;
    let mut rank = 0;
    for j in 0..m {
        // Copy column j into a work buffer.
        let mut col = Vector::from_fn(n, |i| a[(i, j)]);
        // Subtract projections onto previously accepted columns (stored in
        // positions 0..rank).
        for k in 0..rank {
            let mut dot = 0.0;
            for i in 0..n {
                dot += a[(i, k)] * col[i];
            }
            for i in 0..n {
                col[i] -= dot * a[(i, k)];
            }
        }
        let norm = col.norm2();
        if norm > tol {
            for i in 0..n {
                a[(i, rank)] = col[i] / norm;
            }
            rank += 1;
        }
    }
    // Zero out the trailing columns.
    for j in rank..m {
        for i in 0..n {
            a[(i, j)] = 0.0;
        }
    }
    rank
}

#[cfg(test)]
mod tests {
    use super::*;

    fn tall() -> Matrix {
        Matrix::from_vec(
            4,
            3,
            vec![
                1.0, 2.0, 3.0, //
                0.5, -1.0, 2.0, //
                2.0, 0.0, 1.0, //
                -1.0, 1.0, 0.0,
            ],
        )
        .unwrap()
    }

    #[test]
    fn qr_reconstructs_input() {
        let a = tall();
        let qr = Qr::new(&a).unwrap();
        let rec = qr.q().matmul(qr.r()).unwrap();
        for i in 0..4 {
            for j in 0..3 {
                assert!(
                    (rec[(i, j)] - a[(i, j)]).abs() < 1e-10,
                    "mismatch at {i},{j}"
                );
            }
        }
    }

    #[test]
    fn q_has_orthonormal_columns() {
        let a = tall();
        let qr = Qr::new(&a).unwrap();
        let qtq = qr.q().transpose().matmul(qr.q()).unwrap();
        for i in 0..3 {
            for j in 0..3 {
                let expected = if i == j { 1.0 } else { 0.0 };
                assert!((qtq[(i, j)] - expected).abs() < 1e-10);
            }
        }
    }

    #[test]
    fn r_is_upper_triangular() {
        let qr = Qr::new(&tall()).unwrap();
        for i in 0..3 {
            for j in 0..i {
                assert!(qr.r()[(i, j)].abs() < 1e-12);
            }
        }
    }

    #[test]
    fn blocked_is_bitwise_identical_to_scalar() {
        let a = Matrix::from_fn(37, 11, |i, j| (((i * 13 + j * 7) % 17) as f64 - 8.0) / 9.0);
        let mut scratch = QrScratch::default();
        let (mut q1, mut r1) = (Matrix::zeros(0, 0), Matrix::zeros(0, 0));
        qr_factor_into(&a, &mut q1, &mut r1, &mut scratch).unwrap();
        let (mut q2, mut r2) = (Matrix::zeros(0, 0), Matrix::zeros(0, 0));
        qr_factor_scalar_into(&a, &mut q2, &mut r2, &mut scratch).unwrap();
        assert_eq!(q1, q2);
        assert_eq!(r1, r2);
    }

    #[test]
    fn compact_wy_agrees_with_per_reflector() {
        // 67×40 crosses the QR_NB=32 panel boundary. The diagonal boost
        // keeps the columns independent (a rank-deficient input has no
        // unique Q, so the two summation trees could legitimately diverge).
        let a = Matrix::from_fn(67, 40, |i, j| {
            (((i * 31 + j * 17) % 23) as f64 - 11.0) / 7.0 + if i == j { 5.0 } else { 0.0 }
        });
        let mut scratch = QrScratch::default();
        let (mut q1, mut r1) = (Matrix::zeros(0, 0), Matrix::zeros(0, 0));
        qr_factor_into(&a, &mut q1, &mut r1, &mut scratch).unwrap();
        let (mut q2, mut r2) = (Matrix::zeros(0, 0), Matrix::zeros(0, 0));
        qr_factor_per_reflector_into(&a, &mut q2, &mut r2, &mut scratch).unwrap();
        for i in 0..67 {
            for j in 0..40 {
                assert!((q1[(i, j)] - q2[(i, j)]).abs() < 1e-12, "Q at {i},{j}");
            }
        }
        for i in 0..40 {
            for j in 0..40 {
                assert!((r1[(i, j)] - r2[(i, j)]).abs() < 1e-10, "R at {i},{j}");
            }
        }
    }

    #[test]
    fn rank_deficient_column_is_skipped_not_nan() {
        // A zero column yields a zero reflector norm; the factor must stay
        // finite and still reconstruct the input.
        let mut a = tall();
        for i in 0..4 {
            a[(i, 1)] = 0.0;
        }
        let qr = Qr::new(&a).unwrap();
        assert!(qr.q().is_finite());
        assert!(qr.r().is_finite());
        let rec = qr.q().matmul(qr.r()).unwrap();
        for i in 0..4 {
            for j in 0..3 {
                assert!((rec[(i, j)] - a[(i, j)]).abs() < 1e-10);
            }
        }
    }

    #[test]
    fn rejects_wide_and_empty() {
        assert!(Qr::new(&Matrix::zeros(2, 3)).is_err());
        assert!(Qr::new(&Matrix::zeros(0, 0)).is_err());
    }

    #[test]
    fn gram_schmidt_orthonormalizes_and_detects_rank() {
        let mut a = Matrix::from_vec(
            3,
            3,
            vec![
                1.0, 2.0, 2.0, //
                0.0, 1.0, 1.0, //
                1.0, 0.0, 0.0,
            ],
        )
        .unwrap();
        // Third column equals the second: rank 2.
        let rank = orthonormalize_columns(&mut a);
        assert_eq!(rank, 2);
        for k in 0..rank {
            let col = a.column(k);
            assert!((col.norm2() - 1.0).abs() < 1e-10);
        }
        let c0 = a.column(0);
        let c1 = a.column(1);
        assert!(c0.dot(&c1).unwrap().abs() < 1e-10);
        assert!(a.column(2).norm2() < 1e-12);
    }
}
