//! Symmetric eigendecomposition: two-stage tridiagonalisation + QL by
//! default, cyclic Jacobi as a fallback.
//!
//! PrIU-opt (§5.2) relies on an *offline* eigendecomposition of the Gram
//! matrix `M = X^T X` (`M = Q diag(c) Q^T`), followed by an *online*
//! incremental eigenvalue update after a deletion: `c'_i = (Q^T M' Q)_{ii}`
//! (Eq. 18, citing Ning et al.). Both pieces live in this module.
//!
//! # The default pipeline: tridiag + implicit-shift QL
//!
//! [`eigen_into`] (and [`SymmetricEigen::new`] / [`new_with`] on top of it)
//! runs the classic two-stage dense symmetric eigensolver from
//! [`super::tridiag`]: blocked Householder tridiagonalisation
//! (`A = Q_t T Q_tᵀ`, `4n³/3` flops) followed by implicit-shift QL
//! iteration on `(d, e)` with eigenvector back-accumulation into `Zᵀ`
//! seeded with `Q_tᵀ` (`O(n²)` per sweep, `O(1)` sweeps per eigenvalue) —
//! `O(n³)` *total*, where each Jacobi **sweep** costs `Θ(n³)`. The blocked
//! path is bitwise identical to the plain-loop reference
//! [`eigen_scalar_into`] for any `PRIU_THREADS`, per `PRIU_SIMD` level
//! (the shared-driver argument lives in the `tridiag` module docs).
//! Eigenpairs agree with the Jacobi fallback *numerically* (both
//! diagonalise the same matrix), never bitwise — the trees are unrelated.
//!
//! ## Method selection
//!
//! `PRIU_EIGEN` picks the solver process-wide: unset / `auto` / `tridiag` /
//! `ql` select the two-stage pipeline, `jacobi` the sweep solver below
//! (kept as a numerically independent cross-check and escape hatch);
//! anything else panics at first use. Tests and benches pin a method in
//! scope with [`with_eigen_method`], which overrides the environment on the
//! current thread.
//!
//! [`new_with`]: SymmetricEigen::new_with
//!
//! # The Jacobi fallback: blocked, pool-parallel sweeps
//!
//! The sweep is *round-robin cyclic*: each sweep runs `N − 1` rounds of the
//! tournament (circle-method) schedule, every round pairing all indices into
//! `N/2` **disjoint** rotation pairs (`N` is `n` rounded up to even; pairs
//! touching the padding index are skipped). Per round the rotation angles
//! are computed from the round-start matrix, then applied in three
//! element-independent passes — row pairs of `M`, column pairs of `M`, row
//! pairs of the transposed accumulator `Qᵀ` — each chunked over the pair
//! list through [`crate::par`] with shape-only chunk boundaries.
//!
//! The schedule (referenced by the `decomp_parity` reference
//! implementation): in round `t ∈ 0..N−1` the pairs are `{N−1, t}` and
//! `{(t+k) mod (N−1), (t+N−1−k) mod (N−1)}` for `k ∈ 1..N/2`; each pair is
//! normalised to `p < r`. Every unordered pair occurs exactly once per
//! sweep.
//!
//! **Determinism.** Pair disjointness makes every pass a pure element-wise
//! map (each matrix entry is written by exactly one pair), so the result is
//! **bitwise identical for any `PRIU_THREADS`** and for the serial execution
//! of the same schedule. Note the *rotation order* differs from the previous
//! sequential row-cyclic implementation, so eigenpairs agree with it
//! numerically (to convergence tolerance), not bitwise — the bitwise
//! guarantee is over thread counts and executions of this schedule.

use std::cell::Cell;
use std::sync::OnceLock;

use crate::dense::matrix::Matrix;
use crate::dense::vector::Vector;
use crate::error::{LinalgError, Result};
use crate::par::{self, Chunks, SendPtr};

use super::tridiag::{
    tql2_into, tridiag_factor_into, tridiag_factor_scalar_into, QlRotation, TridiagScratch,
};

/// Which symmetric eigensolver [`eigen_into`] runs.
#[derive(Debug, Clone, Copy, PartialEq, Eq)]
pub enum EigenMethod {
    /// Blocked Householder tridiagonalisation + implicit-shift QL (default).
    TridiagQl,
    /// Round-robin cyclic Jacobi sweeps (the `PRIU_EIGEN=jacobi` fallback).
    Jacobi,
}

fn env_eigen_method() -> EigenMethod {
    static METHOD: OnceLock<EigenMethod> = OnceLock::new();
    *METHOD.get_or_init(|| match std::env::var("PRIU_EIGEN") {
        Err(_) => EigenMethod::TridiagQl,
        Ok(v) => match v.to_ascii_lowercase().as_str() {
            "" | "auto" | "tridiag" | "ql" => EigenMethod::TridiagQl,
            "jacobi" => EigenMethod::Jacobi,
            other => panic!("PRIU_EIGEN must be one of auto|tridiag|ql|jacobi, got {other:?}"),
        },
    })
}

thread_local! {
    static METHOD_OVERRIDE: Cell<Option<EigenMethod>> = const { Cell::new(None) };
}

/// The eigensolver [`eigen_into`] will use on this thread: the innermost
/// [`with_eigen_method`] override, else the `PRIU_EIGEN` selection.
pub fn current_eigen_method() -> EigenMethod {
    METHOD_OVERRIDE
        .with(|m| m.get())
        .unwrap_or_else(env_eigen_method)
}

/// Runs `f` with the eigensolver pinned to `method` on the current thread
/// (restored afterwards, panic-safe via the drop guard). Tests and benches
/// use this to exercise a specific solver regardless of `PRIU_EIGEN`.
pub fn with_eigen_method<R>(method: EigenMethod, f: impl FnOnce() -> R) -> R {
    struct Restore(Option<EigenMethod>);
    impl Drop for Restore {
        fn drop(&mut self) {
            METHOD_OVERRIDE.with(|m| m.set(self.0));
        }
    }
    let _guard = Restore(METHOD_OVERRIDE.with(|m| m.replace(Some(method))));
    f()
}

/// Minimum rotation pairs per chunk: a pair's application costs `~6n`
/// fused operations across the three passes, so chunks of at least this
/// many pairs keep the pool hand-off amortised; rounds with fewer than
/// `2 ×` this many pairs (n < 32) run inline on the calling thread.
const EIG_MIN_CHUNK_PAIRS: usize = 8;
/// Chunk-count cap for the rotation passes (map-style, disjoint pairs).
const EIG_MAX_CHUNKS: usize = 8;
/// Sweep budget; Jacobi converges in well under this for symmetric input.
const MAX_SWEEPS: usize = 100;

/// One tournament pair's rotation for the current round. `apply == false`
/// marks padding pairs and below-threshold off-diagonals (identity
/// rotations are *skipped*, not applied — `x − 0·y` is not always bitwise
/// `x`).
#[derive(Debug, Clone, Copy, Default)]
struct PairRotation {
    p: usize,
    r: usize,
    c: f64,
    s: f64,
    apply: bool,
}

/// Reusable scratch for the Jacobi fallback: the working copy of the
/// matrix, the transposed eigenvector accumulator, the per-round rotation
/// list and the sort buffers. Buffers grow to the largest problem seen; a
/// warm scratch makes repeated factorisations allocation-free.
#[derive(Debug, Default, Clone)]
pub struct JacobiScratch {
    m: Matrix,
    qt: Matrix,
    rot: Vec<PairRotation>,
    diag: Vec<f64>,
    idx: Vec<usize>,
}

impl JacobiScratch {
    /// Pre-sizes every buffer for `n × n` inputs (so the first
    /// factorisation is already allocation-free apart from its returned
    /// eigenpairs). Engines call this before starting the offline timer.
    pub fn reserve(&mut self, n: usize) {
        self.m.reshape_zeroed(n, n);
        self.qt.reshape_zeroed(n, n);
        self.rot.reserve(n.div_ceil(2));
        self.diag.reserve(n);
        self.idx.reserve(n);
    }
}

/// Reusable scratch — and warm output storage — for [`eigen_into`]: the
/// tridiag/QL pipeline buffers, the Jacobi fallback scratch, and the
/// eigenpair storage the results land in. Buffers grow to the largest
/// problem seen; a warm scratch makes [`eigen_into`] fully allocation-free
/// (asserted with a counting allocator in `zero_alloc`).
#[derive(Debug, Default, Clone)]
pub struct EigenScratch {
    /// Eigenvalues of the last factorisation, descending.
    values: Vec<f64>,
    /// Eigenvectors of the last factorisation (columns, matching `values`).
    vectors: Matrix,
    /// Tridiagonal diagonal; eigenvalues (unsorted) after the QL stage.
    d: Vec<f64>,
    /// Tridiagonal subdiagonal plus one padding slot for the QL sweep.
    e: Vec<f64>,
    /// Orthogonal factor of the tridiagonalisation.
    q: Matrix,
    /// Transposed eigenvector accumulator (row `i` = candidate vector `i`).
    zt: Matrix,
    /// Rotation sequence of the current QL sweep.
    rot: Vec<QlRotation>,
    /// Sort permutation.
    idx: Vec<usize>,
    /// Stage-one scratch.
    tri: TridiagScratch,
    /// Fallback solver scratch (untouched on the tridiag path).
    jacobi: JacobiScratch,
}

impl EigenScratch {
    /// Pre-sizes every buffer for `n × n` inputs (so the first
    /// factorisation is already allocation-free). Engines call this before
    /// starting the offline timer.
    pub fn reserve(&mut self, n: usize) {
        self.values.reserve(n);
        self.vectors.reshape_zeroed(n, n);
        self.d.reserve(n);
        self.e.reserve(n);
        self.q.reshape_zeroed(n, n);
        self.zt.reshape_zeroed(n, n);
        self.rot.reserve(n);
        self.idx.reserve(n);
        self.tri.reserve(n);
        self.jacobi.reserve(n);
    }

    /// Eigenvalues of the last [`eigen_into`] call, descending.
    pub fn values(&self) -> &[f64] {
        &self.values
    }

    /// Eigenvectors of the last [`eigen_into`] call (columns, matching
    /// [`Self::values`]).
    pub fn vectors(&self) -> &Matrix {
        &self.vectors
    }
}

/// Eigendecomposition `A = Q diag(values) Q^T` of a symmetric matrix, with
/// eigenvalues sorted in descending order and eigenvectors stored as the
/// columns of `Q`.
#[derive(Debug, Clone)]
pub struct SymmetricEigen {
    /// Eigenvalues, descending.
    pub values: Vector,
    /// Orthonormal eigenvectors (columns).
    pub vectors: Matrix,
}

impl SymmetricEigen {
    /// Computes the eigendecomposition of a symmetric matrix with the
    /// solver selected by `PRIU_EIGEN` / [`with_eigen_method`] (module
    /// docs): two-stage tridiagonalisation + QL by default, cyclic Jacobi
    /// as the fallback.
    ///
    /// The strictly upper triangle is trusted; small asymmetries (up to
    /// `1e-8 * max_abs`) are tolerated and symmetrised away.
    ///
    /// # Errors
    /// * [`LinalgError::NotSquare`] if `a` is not square.
    /// * [`LinalgError::InvalidArgument`] if `a` is markedly asymmetric.
    /// * [`LinalgError::DidNotConverge`] if the iteration budget is
    ///   exhausted.
    pub fn new(a: &Matrix) -> Result<Self> {
        let mut scratch = EigenScratch::default();
        eigen_into(a, &mut scratch)?;
        Ok(Self {
            values: Vector::from_vec(std::mem::take(&mut scratch.values)),
            vectors: std::mem::take(&mut scratch.vectors),
        })
    }

    /// Like [`SymmetricEigen::new`], reusing caller-owned scratch buffers:
    /// with a warm [`EigenScratch`] the only allocations are the returned
    /// eigenvalue vector and eigenvector matrix (use [`eigen_into`]
    /// directly and read the results out of the scratch to avoid even
    /// those). This is the entry point the PrIU-opt offline captures use.
    ///
    /// # Errors
    /// See [`SymmetricEigen::new`].
    pub fn new_with(a: &Matrix, scratch: &mut EigenScratch) -> Result<Self> {
        eigen_into(a, scratch)?;
        Ok(Self {
            values: Vector::from_vec(scratch.values.clone()),
            vectors: scratch.vectors.clone(),
        })
    }

    /// Reconstructs `Q diag(values) Q^T` (mainly for testing / diagnostics).
    pub fn reconstruct(&self) -> Matrix {
        let n = self.values.len();
        let mut scaled = self.vectors.clone();
        for j in 0..n {
            for i in 0..n {
                scaled[(i, j)] *= self.values[j];
            }
        }
        scaled
            .matmul(&self.vectors.transpose())
            .expect("shapes are consistent by construction")
    }

    /// Incremental eigenvalue update after a low-rank perturbation
    /// `M' = M - Δ`, following Eq. 18 of the paper: keeping the eigenvectors
    /// `Q` of `M` fixed, the updated eigenvalues are approximated by the
    /// diagonal of `Q^T M' Q`, i.e. `c'_i = c_i - (Q^T Δ Q)_{ii}`.
    ///
    /// `delta_rows` holds the removed sample rows `ΔX` so that
    /// `Δ = ΔX^T ΔX`, and the diagonal entries are computed as
    /// `(Q^T Δ Q)_{ii} = ||ΔX q_i||²` in `O(Δn · m²)`.
    ///
    /// # Errors
    /// Returns [`LinalgError::ShapeMismatch`] if `delta_rows` has a different
    /// column count than the eigenvector dimension.
    pub fn downdated_eigenvalues(&self, delta_rows: &Matrix) -> Result<Vector> {
        let m = self.vectors.nrows();
        if delta_rows.ncols() != m {
            return Err(LinalgError::ShapeMismatch {
                op: "SymmetricEigen::downdated_eigenvalues",
                left: (m, m),
                right: delta_rows.shape(),
            });
        }
        if delta_rows.nrows() == 0 {
            return Ok(self.values.clone());
        }
        // D = ΔX * Q  (Δn x m); correction_i = Σ_k D[k,i]^2.
        let d = delta_rows.matmul(&self.vectors)?;
        let mut corrections = vec![0.0; m];
        for k in 0..d.nrows() {
            let row = d.row(k);
            for i in 0..m {
                corrections[i] += row[i] * row[i];
            }
        }
        Ok(Vector::from_fn(m, |i| self.values[i] - corrections[i]))
    }

    /// Weighted variant of [`Self::downdated_eigenvalues`] for Gram forms
    /// `Δ = ΔX^T diag(w) ΔX` (used by PrIU-opt for logistic regression where
    /// the removed contributions carry linearisation coefficients).
    ///
    /// # Errors
    /// Returns [`LinalgError::ShapeMismatch`] on inconsistent shapes or a
    /// weight count different from the number of removed rows.
    pub fn downdated_eigenvalues_weighted(
        &self,
        delta_rows: &Matrix,
        weights: &[f64],
    ) -> Result<Vector> {
        let m = self.vectors.nrows();
        if delta_rows.ncols() != m {
            return Err(LinalgError::ShapeMismatch {
                op: "SymmetricEigen::downdated_eigenvalues_weighted",
                left: (m, m),
                right: delta_rows.shape(),
            });
        }
        if weights.len() != delta_rows.nrows() {
            return Err(LinalgError::ShapeMismatch {
                op: "SymmetricEigen::downdated_eigenvalues_weighted",
                left: (delta_rows.nrows(), 1),
                right: (weights.len(), 1),
            });
        }
        if delta_rows.nrows() == 0 {
            return Ok(self.values.clone());
        }
        let d = delta_rows.matmul(&self.vectors)?;
        let mut corrections = vec![0.0; m];
        for (k, &w) in weights.iter().enumerate() {
            let row = d.row(k);
            for i in 0..m {
                corrections[i] += w * row[i] * row[i];
            }
        }
        Ok(Vector::from_fn(m, |i| self.values[i] - corrections[i]))
    }
}

/// Symmetric eigendecomposition into caller-owned scratch, fully
/// allocation-free once the scratch is warm: eigenvalues land in
/// [`EigenScratch::values`] (descending) and eigenvectors in
/// [`EigenScratch::vectors`] (columns). Runs the solver selected by
/// `PRIU_EIGEN` / [`with_eigen_method`] — the blocked pool-parallel
/// tridiag + QL pipeline by default, Jacobi sweeps as the fallback.
///
/// # Errors
/// See [`SymmetricEigen::new`].
pub fn eigen_into(a: &Matrix, scratch: &mut EigenScratch) -> Result<()> {
    validate_symmetric(a)?;
    match current_eigen_method() {
        EigenMethod::TridiagQl => tridiag_ql_pipeline(a, scratch, true),
        EigenMethod::Jacobi => jacobi_into(
            a,
            &mut scratch.jacobi,
            &mut scratch.values,
            &mut scratch.vectors,
        ),
    }
}

/// The plain-loop reference for the default pipeline: sequential
/// tridiagonalisation and QL rotation application, ignoring the method
/// selection (it *is* the tridiag + QL reference the parity suite compares
/// [`eigen_into`] against bitwise).
///
/// # Errors
/// See [`SymmetricEigen::new`].
pub fn eigen_scalar_into(a: &Matrix, scratch: &mut EigenScratch) -> Result<()> {
    validate_symmetric(a)?;
    tridiag_ql_pipeline(a, scratch, false)
}

fn validate_symmetric(a: &Matrix) -> Result<()> {
    if !a.is_square() {
        return Err(LinalgError::NotSquare {
            rows: a.nrows(),
            cols: a.ncols(),
        });
    }
    if a.nrows() == 0 {
        return Ok(());
    }
    let scale = a.max_abs().max(1.0);
    if a.asymmetry()? > 1e-8 * scale {
        return Err(LinalgError::InvalidArgument(
            "SymmetricEigen requires a (numerically) symmetric matrix".to_string(),
        ));
    }
    Ok(())
}

/// Stage one + stage two + descending sort; `parallel` selects the
/// chunk-parallel or the sequential passes (same computation tree).
fn tridiag_ql_pipeline(a: &Matrix, scratch: &mut EigenScratch, parallel: bool) -> Result<()> {
    let n = a.nrows();
    let EigenScratch {
        values,
        vectors,
        d,
        e,
        q,
        zt,
        rot,
        idx,
        tri,
        ..
    } = scratch;
    if parallel {
        tridiag_factor_into(a, q, d, e, tri)?;
    } else {
        tridiag_factor_scalar_into(a, q, d, e, tri)?;
    }
    // Seed Zᵀ with Q_tᵀ: row i of zt is the i-th basis column.
    zt.reshape_for_overwrite(n, n);
    for i in 0..n {
        for j in 0..n {
            zt[(i, j)] = q[(j, i)];
        }
    }
    tql2_into(d, e, zt, rot, parallel)?;
    sort_and_extract(d, zt, idx, values, vectors);
    Ok(())
}

/// Sorts the raw eigenvalues descending and writes the permuted eigenpairs
/// into the output storage without allocating (warm buffers reused).
fn sort_and_extract(
    d: &[f64],
    zt: &Matrix,
    idx: &mut Vec<usize>,
    values: &mut Vec<f64>,
    vectors: &mut Matrix,
) {
    let n = d.len();
    idx.clear();
    idx.extend(0..n);
    idx.sort_unstable_by(|&i, &j| d[j].partial_cmp(&d[i]).expect("finite eigenvalues"));
    values.clear();
    values.extend(idx.iter().map(|&i| d[i]));
    vectors.reshape_for_overwrite(n, n);
    for i in 0..n {
        let out = vectors.row_mut(i);
        for (j, &src) in idx.iter().enumerate() {
            out[j] = zt[(src, i)];
        }
    }
}

/// The Jacobi fallback solver (module docs): round-robin cyclic sweeps
/// writing the sorted eigenpairs into the caller's storage. Kept as a
/// numerically independent cross-check of the default pipeline and as the
/// `PRIU_EIGEN=jacobi` escape hatch.
fn jacobi_into(
    a: &Matrix,
    scratch: &mut JacobiScratch,
    values: &mut Vec<f64>,
    vectors: &mut Matrix,
) -> Result<()> {
    let n = a.nrows();
    let scale = a.max_abs().max(1.0);
    if n == 0 {
        values.clear();
        vectors.reshape_zeroed(0, 0);
        return Ok(());
    }

    // Work on a symmetrised copy; accumulate Q transposed (rotations
    // then combine two contiguous rows in every pass).
    let m = &mut scratch.m;
    m.reshape_zeroed(n, n);
    for i in 0..n {
        for j in 0..n {
            m[(i, j)] = 0.5 * (a[(i, j)] + a[(j, i)]);
        }
    }
    let qt = &mut scratch.qt;
    qt.reshape_zeroed(n, n);
    for i in 0..n {
        qt[(i, i)] = 1.0;
    }

    let tol = 1e-14 * scale;
    let skip_tol = tol * 1e-2;
    let big_n = n + (n & 1); // padded to even for the tournament
    let mut converged = false;
    for _sweep in 0..MAX_SWEEPS {
        if off_diagonal_norm(m) <= tol {
            converged = true;
            break;
        }
        for t in 0..big_n.saturating_sub(1) {
            build_round_rotations(m, n, big_n, t, skip_tol, &mut scratch.rot);
            rotate_row_pairs(m, &scratch.rot);
            rotate_column_pairs(m, &scratch.rot);
            rotate_row_pairs(qt, &scratch.rot);
        }
    }
    if !converged {
        // One final check: Jacobi nearly always converges in well under
        // the sweep budget; treat leftover off-diagonal mass as failure.
        if off_diagonal_norm(m) > 1e-8 * scale {
            return Err(LinalgError::DidNotConverge {
                op: "SymmetricEigen::new",
                iterations: MAX_SWEEPS,
            });
        }
    }

    // Collect eigenvalues and sort descending, permuting eigenvectors.
    let diag = &mut scratch.diag;
    diag.clear();
    diag.extend((0..n).map(|i| m[(i, i)]));
    sort_and_extract(diag, qt, &mut scratch.idx, values, vectors);
    Ok(())
}

/// Frobenius norm of the strictly upper triangle, accumulated row-major
/// ascending (fixed order — part of the deterministic tree).
fn off_diagonal_norm(m: &Matrix) -> f64 {
    let n = m.nrows();
    let mut off = 0.0;
    for i in 0..n {
        for j in (i + 1)..n {
            off += m[(i, j)] * m[(i, j)];
        }
    }
    off.sqrt()
}

/// Fills `rot` with round `t` of the tournament schedule (module docs) and
/// each pair's Jacobi rotation computed from the round-start matrix.
fn build_round_rotations(
    m: &Matrix,
    n: usize,
    big_n: usize,
    t: usize,
    skip_tol: f64,
    rot: &mut Vec<PairRotation>,
) {
    rot.clear();
    let last = big_n - 1;
    for k in 0..big_n / 2 {
        let (a, b) = if k == 0 {
            (last, t % last)
        } else {
            ((t + k) % last, (t + last - k) % last)
        };
        let (p, r) = (a.min(b), a.max(b));
        let mut entry = PairRotation {
            p,
            r,
            ..PairRotation::default()
        };
        if r < n {
            let apr = m[(p, r)];
            if apr.abs() > skip_tol {
                let app = m[(p, p)];
                let arr = m[(r, r)];
                // The Jacobi rotation annihilating m[p][r].
                let theta = (arr - app) / (2.0 * apr);
                let tan = if theta >= 0.0 {
                    1.0 / (theta + (1.0 + theta * theta).sqrt())
                } else {
                    -1.0 / (-theta + (1.0 + theta * theta).sqrt())
                };
                entry.c = 1.0 / (1.0 + tan * tan).sqrt();
                entry.s = tan * entry.c;
                entry.apply = true;
            }
        }
        rot.push(entry);
    }
}

/// Combines two equal-length rows: `(x, y) ← (c·x − s·y, s·x + c·y)` via
/// the dispatched rotation microkernel. [`crate::simd::rotate_two`] is
/// deliberately FMA-free, so rotation bits are identical on every
/// `PRIU_SIMD` level — the independent plain-loop reference in
/// `decomp_parity` stays valid without dispatching.
fn rotate_two_rows(row_p: &mut [f64], row_r: &mut [f64], c: f64, s: f64) {
    crate::simd::rotate_two(row_p, row_r, c, s);
}

/// Applies every rotation of the round to its two *rows* of `mat`
/// (`Jᵀ · mat`), chunk-parallel over the pair list. Pairs are disjoint, so
/// every row is written by exactly one pair — an element-wise map, bitwise
/// identical for any chunk-to-thread assignment.
fn rotate_row_pairs(mat: &mut Matrix, rot: &[PairRotation]) {
    let n = mat.ncols();
    let chunks = Chunks::new(rot.len(), EIG_MIN_CHUNK_PAIRS, EIG_MAX_CHUNKS);
    let ptr = SendPtr(mat.as_mut_slice().as_mut_ptr());
    par::run_chunks(chunks.count(), |ci| {
        for pr in &rot[chunks.range(ci)] {
            if !pr.apply {
                continue;
            }
            // SAFETY: tournament pairs are disjoint within a round, so rows
            // `p` and `r` are touched by this pair only.
            let row_p = unsafe { ptr.slice(pr.p * n, n) };
            let row_r = unsafe { ptr.slice(pr.r * n, n) };
            rotate_two_rows(row_p, row_r, pr.c, pr.s);
        }
    });
}

/// Applies every rotation of the round to its two *columns* of `mat`
/// (`mat · J`), chunk-parallel over the pair list (disjoint columns).
fn rotate_column_pairs(mat: &mut Matrix, rot: &[PairRotation]) {
    let n = mat.nrows();
    let width = mat.ncols();
    let chunks = Chunks::new(rot.len(), EIG_MIN_CHUNK_PAIRS, EIG_MAX_CHUNKS);
    let ptr = SendPtr(mat.as_mut_slice().as_mut_ptr());
    par::run_chunks(chunks.count(), |ci| {
        for pr in &rot[chunks.range(ci)] {
            if !pr.apply {
                continue;
            }
            for k in 0..n {
                // SAFETY: disjoint pairs — columns `p` and `r` belong to
                // this pair only; one element of each per row `k`.
                let xp = unsafe { &mut ptr.slice(k * width + pr.p, 1)[0] };
                let xr = unsafe { &mut ptr.slice(k * width + pr.r, 1)[0] };
                let a = *xp;
                let b = *xr;
                *xp = pr.c * a - pr.s * b;
                *xr = pr.s * a + pr.c * b;
            }
        }
    });
}

#[cfg(test)]
mod tests {
    use super::*;

    fn symmetric() -> Matrix {
        Matrix::from_vec(3, 3, vec![4.0, 1.0, -2.0, 1.0, 2.0, 0.0, -2.0, 0.0, 3.0]).unwrap()
    }

    #[test]
    fn tournament_schedule_covers_every_pair_exactly_once() {
        for n in [2usize, 3, 5, 8, 33] {
            let big_n = n + (n & 1);
            let mut seen = std::collections::HashSet::new();
            let dummy = Matrix::identity(n);
            let mut rot = Vec::new();
            for t in 0..big_n - 1 {
                let mut this_round = std::collections::HashSet::new();
                build_round_rotations(&dummy, n, big_n, t, 0.0, &mut rot);
                for pr in &rot {
                    assert!(pr.p < pr.r, "pairs are normalised");
                    // Disjointness within the round.
                    assert!(this_round.insert(pr.p), "index {} reused (n={n})", pr.p);
                    assert!(this_round.insert(pr.r), "index {} reused (n={n})", pr.r);
                    if pr.r < n {
                        assert!(seen.insert((pr.p, pr.r)), "pair repeated (n={n})");
                    }
                }
            }
            assert_eq!(seen.len(), n * (n - 1) / 2, "n={n}");
        }
    }

    #[test]
    fn reconstruction_matches_input() {
        let a = symmetric();
        let eig = SymmetricEigen::new(&a).unwrap();
        let rec = eig.reconstruct();
        for i in 0..3 {
            for j in 0..3 {
                assert!((rec[(i, j)] - a[(i, j)]).abs() < 1e-9);
            }
        }
    }

    #[test]
    fn eigenvalues_of_diagonal_matrix() {
        let a = Matrix::from_diagonal(&[1.0, 5.0, 3.0]);
        let eig = SymmetricEigen::new(&a).unwrap();
        assert!((eig.values[0] - 5.0).abs() < 1e-12);
        assert!((eig.values[1] - 3.0).abs() < 1e-12);
        assert!((eig.values[2] - 1.0).abs() < 1e-12);
    }

    #[test]
    fn eigenvectors_are_orthonormal() {
        let eig = SymmetricEigen::new(&symmetric()).unwrap();
        let qtq = eig.vectors.transpose().matmul(&eig.vectors).unwrap();
        for i in 0..3 {
            for j in 0..3 {
                let expected = if i == j { 1.0 } else { 0.0 };
                assert!((qtq[(i, j)] - expected).abs() < 1e-9);
            }
        }
    }

    #[test]
    fn satisfies_eigen_equation() {
        let a = symmetric();
        let eig = SymmetricEigen::new(&a).unwrap();
        for j in 0..3 {
            let v = eig.vectors.column(j);
            let av = a.matvec(&v).unwrap();
            let lv = v.scaled(eig.values[j]);
            assert!((&av - &lv).norm2() < 1e-9);
        }
    }

    #[test]
    fn scratch_reuse_is_bitwise_stable_across_shapes() {
        // A warm scratch — including one warmed on a *larger* problem —
        // reproduces the fresh-scratch factorisation exactly.
        let small = symmetric();
        let big = Matrix::from_fn(9, 9, |i, j| {
            ((i * 5 + j * 3) % 7) as f64 + if i == j { 9.0 } else { 0.0 }
        });
        let big = Matrix::from_fn(9, 9, |i, j| 0.5 * (big[(i, j)] + big[(j, i)]));
        let fresh = SymmetricEigen::new(&small).unwrap();
        let mut scratch = EigenScratch::default();
        SymmetricEigen::new_with(&big, &mut scratch).unwrap();
        let warm = SymmetricEigen::new_with(&small, &mut scratch).unwrap();
        assert_eq!(fresh.values, warm.values);
        assert_eq!(fresh.vectors, warm.vectors);
    }

    #[test]
    fn rejects_asymmetric_and_non_square() {
        let asym = Matrix::from_vec(2, 2, vec![1.0, 5.0, 0.0, 1.0]).unwrap();
        assert!(SymmetricEigen::new(&asym).is_err());
        assert!(SymmetricEigen::new(&Matrix::zeros(2, 3)).is_err());
    }

    #[test]
    fn empty_and_one_by_one_are_trivial() {
        let eig = SymmetricEigen::new(&Matrix::zeros(0, 0)).unwrap();
        assert_eq!(eig.values.len(), 0);
        let one = SymmetricEigen::new(&Matrix::from_diagonal(&[7.0])).unwrap();
        assert_eq!(one.values[0], 7.0);
        assert_eq!(one.vectors[(0, 0)], 1.0);
    }

    #[test]
    fn downdated_eigenvalues_track_exact_values_for_small_perturbation() {
        // M = X^T X for a random-ish X; remove a single small row.
        let x = Matrix::from_vec(
            5,
            3,
            vec![
                1.0, 0.2, -0.3, //
                0.4, 1.1, 0.0, //
                -0.2, 0.3, 0.9, //
                0.7, -0.5, 0.2, //
                0.05, 0.02, -0.01,
            ],
        )
        .unwrap();
        let m = x.gram();
        let eig = SymmetricEigen::new(&m).unwrap();
        let delta = x.select_rows(&[4]);
        let approx = eig.downdated_eigenvalues(&delta).unwrap();
        // Exact eigenvalues of M - delta^T delta.
        let m_prime = &m - &delta.gram();
        let exact = SymmetricEigen::new(&m_prime).unwrap();
        for i in 0..3 {
            assert!(
                (approx[i] - exact.values[i]).abs() < 1e-2,
                "eigenvalue {i}: approx {} vs exact {}",
                approx[i],
                exact.values[i]
            );
        }
        // Removing nothing leaves eigenvalues unchanged.
        let unchanged = eig.downdated_eigenvalues(&Matrix::zeros(0, 3)).unwrap();
        for i in 0..3 {
            assert_eq!(unchanged[i], eig.values[i]);
        }
    }

    #[test]
    fn weighted_downdate_matches_unweighted_with_unit_weights() {
        let x = Matrix::from_vec(4, 2, vec![1.0, 0.0, 0.0, 1.0, 1.0, 1.0, 0.3, -0.2]).unwrap();
        let eig = SymmetricEigen::new(&x.gram()).unwrap();
        let delta = x.select_rows(&[3]);
        let a = eig.downdated_eigenvalues(&delta).unwrap();
        let b = eig.downdated_eigenvalues_weighted(&delta, &[1.0]).unwrap();
        for i in 0..2 {
            assert!((a[i] - b[i]).abs() < 1e-14);
        }
        assert!(eig
            .downdated_eigenvalues_weighted(&delta, &[1.0, 2.0])
            .is_err());
    }
}
