//! Symmetric eigendecomposition via the cyclic Jacobi method.
//!
//! PrIU-opt (§5.2) relies on an *offline* eigendecomposition of the Gram
//! matrix `M = X^T X` (`M = Q diag(c) Q^T`), followed by an *online*
//! incremental eigenvalue update after a deletion: `c'_i = (Q^T M' Q)_{ii}`
//! (Eq. 18, citing Ning et al.). Both pieces live in this module.

use crate::dense::matrix::Matrix;
use crate::dense::vector::Vector;
use crate::error::{LinalgError, Result};

/// Eigendecomposition `A = Q diag(values) Q^T` of a symmetric matrix, with
/// eigenvalues sorted in descending order and eigenvectors stored as the
/// columns of `Q`.
#[derive(Debug, Clone)]
pub struct SymmetricEigen {
    /// Eigenvalues, descending.
    pub values: Vector,
    /// Orthonormal eigenvectors (columns).
    pub vectors: Matrix,
}

impl SymmetricEigen {
    /// Computes the eigendecomposition of a symmetric matrix using the cyclic
    /// Jacobi method.
    ///
    /// The strictly upper triangle is trusted; small asymmetries (up to
    /// `1e-8 * max_abs`) are tolerated and symmetrised away.
    ///
    /// # Errors
    /// * [`LinalgError::NotSquare`] if `a` is not square.
    /// * [`LinalgError::InvalidArgument`] if `a` is markedly asymmetric.
    /// * [`LinalgError::DidNotConverge`] if the sweep budget is exhausted.
    pub fn new(a: &Matrix) -> Result<Self> {
        if !a.is_square() {
            return Err(LinalgError::NotSquare {
                rows: a.nrows(),
                cols: a.ncols(),
            });
        }
        let n = a.nrows();
        if n == 0 {
            return Ok(Self {
                values: Vector::zeros(0),
                vectors: Matrix::zeros(0, 0),
            });
        }
        let scale = a.max_abs().max(1.0);
        if a.asymmetry()? > 1e-8 * scale {
            return Err(LinalgError::InvalidArgument(
                "SymmetricEigen requires a (numerically) symmetric matrix".to_string(),
            ));
        }

        // Work on a symmetrised copy.
        let mut m = Matrix::from_fn(n, n, |i, j| 0.5 * (a[(i, j)] + a[(j, i)]));
        let mut q = Matrix::identity(n);

        let max_sweeps = 100;
        let tol = 1e-14 * scale;
        let mut converged = false;
        for _sweep in 0..max_sweeps {
            // Off-diagonal Frobenius norm.
            let mut off = 0.0;
            for i in 0..n {
                for j in (i + 1)..n {
                    off += m[(i, j)] * m[(i, j)];
                }
            }
            if off.sqrt() <= tol {
                converged = true;
                break;
            }
            for p in 0..n {
                for r in (p + 1)..n {
                    let apr = m[(p, r)];
                    if apr.abs() <= tol * 1e-2 {
                        continue;
                    }
                    let app = m[(p, p)];
                    let arr = m[(r, r)];
                    // Compute the Jacobi rotation that annihilates m[p][r].
                    let theta = (arr - app) / (2.0 * apr);
                    let t = if theta >= 0.0 {
                        1.0 / (theta + (1.0 + theta * theta).sqrt())
                    } else {
                        -1.0 / (-theta + (1.0 + theta * theta).sqrt())
                    };
                    let c = 1.0 / (1.0 + t * t).sqrt();
                    let s = t * c;

                    // Apply the rotation: M <- J^T M J.
                    for k in 0..n {
                        let mkp = m[(k, p)];
                        let mkr = m[(k, r)];
                        m[(k, p)] = c * mkp - s * mkr;
                        m[(k, r)] = s * mkp + c * mkr;
                    }
                    for k in 0..n {
                        let mpk = m[(p, k)];
                        let mrk = m[(r, k)];
                        m[(p, k)] = c * mpk - s * mrk;
                        m[(r, k)] = s * mpk + c * mrk;
                    }
                    // Accumulate rotations into Q.
                    for k in 0..n {
                        let qkp = q[(k, p)];
                        let qkr = q[(k, r)];
                        q[(k, p)] = c * qkp - s * qkr;
                        q[(k, r)] = s * qkp + c * qkr;
                    }
                }
            }
        }
        if !converged {
            // One final check: Jacobi nearly always converges in well under
            // 100 sweeps; treat leftover off-diagonal mass as failure.
            let mut off = 0.0;
            for i in 0..n {
                for j in (i + 1)..n {
                    off += m[(i, j)] * m[(i, j)];
                }
            }
            if off.sqrt() > 1e-8 * scale {
                return Err(LinalgError::DidNotConverge {
                    op: "SymmetricEigen::new",
                    iterations: max_sweeps,
                });
            }
        }

        // Collect eigenvalues and sort descending, permuting eigenvectors.
        let mut idx: Vec<usize> = (0..n).collect();
        let diag: Vec<f64> = (0..n).map(|i| m[(i, i)]).collect();
        idx.sort_by(|&i, &j| diag[j].partial_cmp(&diag[i]).expect("finite eigenvalues"));
        let values = Vector::from_vec(idx.iter().map(|&i| diag[i]).collect());
        let vectors = Matrix::from_fn(n, n, |i, j| q[(i, idx[j])]);
        Ok(Self { values, vectors })
    }

    /// Reconstructs `Q diag(values) Q^T` (mainly for testing / diagnostics).
    pub fn reconstruct(&self) -> Matrix {
        let n = self.values.len();
        let mut scaled = self.vectors.clone();
        for j in 0..n {
            for i in 0..n {
                scaled[(i, j)] *= self.values[j];
            }
        }
        scaled
            .matmul(&self.vectors.transpose())
            .expect("shapes are consistent by construction")
    }

    /// Incremental eigenvalue update after a low-rank perturbation
    /// `M' = M - Δ`, following Eq. 18 of the paper: keeping the eigenvectors
    /// `Q` of `M` fixed, the updated eigenvalues are approximated by the
    /// diagonal of `Q^T M' Q`, i.e. `c'_i = c_i - (Q^T Δ Q)_{ii}`.
    ///
    /// `delta_rows` holds the removed sample rows `ΔX` so that
    /// `Δ = ΔX^T ΔX`, and the diagonal entries are computed as
    /// `(Q^T Δ Q)_{ii} = ||ΔX q_i||²` in `O(Δn · m²)`.
    ///
    /// # Errors
    /// Returns [`LinalgError::ShapeMismatch`] if `delta_rows` has a different
    /// column count than the eigenvector dimension.
    pub fn downdated_eigenvalues(&self, delta_rows: &Matrix) -> Result<Vector> {
        let m = self.vectors.nrows();
        if delta_rows.ncols() != m {
            return Err(LinalgError::ShapeMismatch {
                op: "SymmetricEigen::downdated_eigenvalues",
                left: (m, m),
                right: delta_rows.shape(),
            });
        }
        if delta_rows.nrows() == 0 {
            return Ok(self.values.clone());
        }
        // D = ΔX * Q  (Δn x m); correction_i = Σ_k D[k,i]^2.
        let d = delta_rows.matmul(&self.vectors)?;
        let mut corrections = vec![0.0; m];
        for k in 0..d.nrows() {
            let row = d.row(k);
            for i in 0..m {
                corrections[i] += row[i] * row[i];
            }
        }
        Ok(Vector::from_fn(m, |i| self.values[i] - corrections[i]))
    }

    /// Weighted variant of [`Self::downdated_eigenvalues`] for Gram forms
    /// `Δ = ΔX^T diag(w) ΔX` (used by PrIU-opt for logistic regression where
    /// the removed contributions carry linearisation coefficients).
    ///
    /// # Errors
    /// Returns [`LinalgError::ShapeMismatch`] on inconsistent shapes or a
    /// weight count different from the number of removed rows.
    pub fn downdated_eigenvalues_weighted(
        &self,
        delta_rows: &Matrix,
        weights: &[f64],
    ) -> Result<Vector> {
        let m = self.vectors.nrows();
        if delta_rows.ncols() != m {
            return Err(LinalgError::ShapeMismatch {
                op: "SymmetricEigen::downdated_eigenvalues_weighted",
                left: (m, m),
                right: delta_rows.shape(),
            });
        }
        if weights.len() != delta_rows.nrows() {
            return Err(LinalgError::ShapeMismatch {
                op: "SymmetricEigen::downdated_eigenvalues_weighted",
                left: (delta_rows.nrows(), 1),
                right: (weights.len(), 1),
            });
        }
        if delta_rows.nrows() == 0 {
            return Ok(self.values.clone());
        }
        let d = delta_rows.matmul(&self.vectors)?;
        let mut corrections = vec![0.0; m];
        for (k, &w) in weights.iter().enumerate() {
            let row = d.row(k);
            for i in 0..m {
                corrections[i] += w * row[i] * row[i];
            }
        }
        Ok(Vector::from_fn(m, |i| self.values[i] - corrections[i]))
    }
}

#[cfg(test)]
mod tests {
    use super::*;

    fn symmetric() -> Matrix {
        Matrix::from_vec(3, 3, vec![4.0, 1.0, -2.0, 1.0, 2.0, 0.0, -2.0, 0.0, 3.0]).unwrap()
    }

    #[test]
    fn reconstruction_matches_input() {
        let a = symmetric();
        let eig = SymmetricEigen::new(&a).unwrap();
        let rec = eig.reconstruct();
        for i in 0..3 {
            for j in 0..3 {
                assert!((rec[(i, j)] - a[(i, j)]).abs() < 1e-9);
            }
        }
    }

    #[test]
    fn eigenvalues_of_diagonal_matrix() {
        let a = Matrix::from_diagonal(&[1.0, 5.0, 3.0]);
        let eig = SymmetricEigen::new(&a).unwrap();
        assert!((eig.values[0] - 5.0).abs() < 1e-12);
        assert!((eig.values[1] - 3.0).abs() < 1e-12);
        assert!((eig.values[2] - 1.0).abs() < 1e-12);
    }

    #[test]
    fn eigenvectors_are_orthonormal() {
        let eig = SymmetricEigen::new(&symmetric()).unwrap();
        let qtq = eig.vectors.transpose().matmul(&eig.vectors).unwrap();
        for i in 0..3 {
            for j in 0..3 {
                let expected = if i == j { 1.0 } else { 0.0 };
                assert!((qtq[(i, j)] - expected).abs() < 1e-9);
            }
        }
    }

    #[test]
    fn satisfies_eigen_equation() {
        let a = symmetric();
        let eig = SymmetricEigen::new(&a).unwrap();
        for j in 0..3 {
            let v = eig.vectors.column(j);
            let av = a.matvec(&v).unwrap();
            let lv = v.scaled(eig.values[j]);
            assert!((&av - &lv).norm2() < 1e-9);
        }
    }

    #[test]
    fn rejects_asymmetric_and_non_square() {
        let asym = Matrix::from_vec(2, 2, vec![1.0, 5.0, 0.0, 1.0]).unwrap();
        assert!(SymmetricEigen::new(&asym).is_err());
        assert!(SymmetricEigen::new(&Matrix::zeros(2, 3)).is_err());
    }

    #[test]
    fn empty_matrix_is_trivial() {
        let eig = SymmetricEigen::new(&Matrix::zeros(0, 0)).unwrap();
        assert_eq!(eig.values.len(), 0);
    }

    #[test]
    fn downdated_eigenvalues_track_exact_values_for_small_perturbation() {
        // M = X^T X for a random-ish X; remove a single small row.
        let x = Matrix::from_vec(
            5,
            3,
            vec![
                1.0, 0.2, -0.3, //
                0.4, 1.1, 0.0, //
                -0.2, 0.3, 0.9, //
                0.7, -0.5, 0.2, //
                0.05, 0.02, -0.01,
            ],
        )
        .unwrap();
        let m = x.gram();
        let eig = SymmetricEigen::new(&m).unwrap();
        let delta = x.select_rows(&[4]);
        let approx = eig.downdated_eigenvalues(&delta).unwrap();
        // Exact eigenvalues of M - delta^T delta.
        let m_prime = &m - &delta.gram();
        let exact = SymmetricEigen::new(&m_prime).unwrap();
        for i in 0..3 {
            assert!(
                (approx[i] - exact.values[i]).abs() < 1e-2,
                "eigenvalue {i}: approx {} vs exact {}",
                approx[i],
                exact.values[i]
            );
        }
        // Removing nothing leaves eigenvalues unchanged.
        let unchanged = eig.downdated_eigenvalues(&Matrix::zeros(0, 3)).unwrap();
        for i in 0..3 {
            assert_eq!(unchanged[i], eig.values[i]);
        }
    }

    #[test]
    fn weighted_downdate_matches_unweighted_with_unit_weights() {
        let x = Matrix::from_vec(4, 2, vec![1.0, 0.0, 0.0, 1.0, 1.0, 1.0, 0.3, -0.2]).unwrap();
        let eig = SymmetricEigen::new(&x.gram()).unwrap();
        let delta = x.select_rows(&[3]);
        let a = eig.downdated_eigenvalues(&delta).unwrap();
        let b = eig.downdated_eigenvalues_weighted(&delta, &[1.0]).unwrap();
        for i in 0..2 {
            assert!((a[i] - b[i]).abs() < 1e-14);
        }
        assert!(eig
            .downdated_eigenvalues_weighted(&delta, &[1.0, 2.0])
            .is_err());
    }
}
