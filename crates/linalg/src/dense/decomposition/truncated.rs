//! Truncated (low-rank) factorisations of Gram forms `X^T diag(w) X`.
//!
//! PrIU's per-iteration provenance intermediates are exactly such Gram forms:
//! `Σ_{i∈B_t} x_i x_i^T` for linear regression (Eq. 13) and
//! `Σ_{i∈B_t} a_{i,(t)} x_i x_i^T` for linearised logistic regression
//! (Eq. 19). §5.1 and §5.3 compress them with an SVD keeping the top `r`
//! singular values, so that applying them to a parameter vector costs
//! `O(r·m)` instead of `O(m²)` (or `O(B·m)` without caching).
//!
//! Because the Gram form is symmetric with uniformly-signed weights, its SVD
//! coincides (up to sign) with its eigendecomposition, which we obtain in two
//! ways:
//!
//! * [`TruncationMethod::Exact`] — eigendecomposition of the *small* `B x B`
//!   kernel matrix `Ã Ã^T` (where `Ã = diag(√|w|) X`), suitable when the
//!   mini-batch size `B` is modest;
//! * [`TruncationMethod::Randomized`] — a Halko-style randomized range finder
//!   with cost `O(B·m·r)`, suitable for large batches and feature spaces.

use priu_rng::Rng64;

use crate::dense::decomposition::eigen::SymmetricEigen;
use crate::dense::decomposition::qr::orthonormalize_columns;
use crate::dense::matrix::Matrix;
use crate::dense::vector::Vector;
use crate::error::{LinalgError, Result};

/// How to compute the truncated factorisation.
#[derive(Debug, Clone, Copy, PartialEq, Eq)]
pub enum TruncationMethod {
    /// Exact eigendecomposition of the `B x B` kernel matrix.
    Exact,
    /// Randomized range finder with the given oversampling (extra columns
    /// beyond the target rank, typically 5-10).
    Randomized {
        /// Extra sampled directions beyond the requested rank.
        oversample: usize,
        /// Seed for the random test matrix (kept explicit for reproducibility).
        seed: u64,
    },
}

/// A Gram form `G = X^T diag(w) X` kept in factored form.
///
/// `rows` is the `B x m` matrix whose rows are the contributing samples and
/// `weights` their (uniformly-signed) coefficients.
#[derive(Debug, Clone)]
pub struct GramFactor {
    rows: Matrix,
    weights: Vec<f64>,
}

impl GramFactor {
    /// Creates a Gram factor.
    ///
    /// # Errors
    /// * [`LinalgError::ShapeMismatch`] if `weights.len() != rows.nrows()`.
    /// * [`LinalgError::InvalidArgument`] if the weights mix signs (the
    ///   truncation routines factor out a common sign).
    pub fn new(rows: Matrix, weights: Vec<f64>) -> Result<Self> {
        if weights.len() != rows.nrows() {
            return Err(LinalgError::ShapeMismatch {
                op: "GramFactor::new",
                left: (rows.nrows(), rows.ncols()),
                right: (weights.len(), 1),
            });
        }
        let has_pos = weights.iter().any(|&w| w > 0.0);
        let has_neg = weights.iter().any(|&w| w < 0.0);
        if has_pos && has_neg {
            return Err(LinalgError::InvalidArgument(
                "GramFactor requires uniformly-signed weights".to_string(),
            ));
        }
        Ok(Self { rows, weights })
    }

    /// Creates an unweighted Gram factor `X^T X`.
    pub fn unweighted(rows: Matrix) -> Self {
        let weights = vec![1.0; rows.nrows()];
        Self { rows, weights }
    }

    /// The number of contributing rows (`B`).
    pub fn batch_size(&self) -> usize {
        self.rows.nrows()
    }

    /// The feature dimension (`m`).
    pub fn dim(&self) -> usize {
        self.rows.ncols()
    }

    /// The dense `m x m` Gram matrix (materialised).
    pub fn dense(&self) -> Matrix {
        self.rows.weighted_gram(Some(&self.weights))
    }

    /// Applies the Gram form to a vector without materialising it:
    /// `G w = X^T (diag(w) (X w))`, costing `O(B·m)`.
    ///
    /// # Errors
    /// Returns [`LinalgError::ShapeMismatch`] if `w.len() != dim()`.
    pub fn apply(&self, w: &Vector) -> Result<Vector> {
        let xw = self.rows.matvec(w)?;
        let scaled = Vector::from_fn(xw.len(), |i| xw[i] * self.weights[i]);
        self.rows.transpose_matvec(&scaled)
    }

    /// The common sign of the weights (+1.0, -1.0, or +1.0 if all zero).
    fn sign(&self) -> f64 {
        if self.weights.iter().any(|&w| w < 0.0) {
            -1.0
        } else {
            1.0
        }
    }

    /// Rows scaled by `√|w_i|` so that `G = sign · Ã^T Ã`.
    fn scaled_rows(&self) -> Matrix {
        let mut scaled = self.rows.clone();
        for i in 0..scaled.nrows() {
            let s = self.weights[i].abs().sqrt();
            for v in scaled.row_mut(i) {
                *v *= s;
            }
        }
        scaled
    }

    /// Computes a rank-`rank` truncated factorisation `G ≈ P V^T`.
    ///
    /// # Errors
    /// Propagates decomposition failures; returns
    /// [`LinalgError::InvalidArgument`] for a zero target rank.
    pub fn truncate(&self, rank: usize, method: TruncationMethod) -> Result<TruncatedGram> {
        if rank == 0 {
            return Err(LinalgError::InvalidArgument(
                "truncation rank must be at least 1".to_string(),
            ));
        }
        let m = self.dim();
        let b = self.batch_size();
        if b == 0 {
            return Ok(TruncatedGram::empty(m));
        }
        let sign = self.sign();
        let a_tilde = self.scaled_rows();
        match method {
            TruncationMethod::Exact => {
                // Kernel trick: the non-zero eigenvalues of Ã^T Ã equal those
                // of the B x B matrix K = Ã Ã^T, whose eigenvectors u map to
                // right singular vectors v = Ã^T u / √λ.
                let k = a_tilde.matmul(&a_tilde.transpose())?;
                let eig = SymmetricEigen::new(&k)?;
                let keep = rank.min(b).min(m);
                let mut cols_v = Vec::with_capacity(keep);
                let mut vals = Vec::with_capacity(keep);
                for j in 0..keep {
                    let lambda = eig.values[j];
                    if lambda <= 1e-12 * eig.values[0].max(1e-300) {
                        break;
                    }
                    let u = eig.vectors.column(j);
                    let v = a_tilde.transpose_matvec(&u)?.scaled(1.0 / lambda.sqrt());
                    cols_v.push(v);
                    vals.push(sign * lambda);
                }
                TruncatedGram::from_eigenpairs(m, &vals, &cols_v)
            }
            TruncationMethod::Randomized { oversample, seed } => {
                let l = (rank + oversample).min(b).min(m);
                // Random test matrix Ω (B x l); uniform entries suffice for a
                // range finder.
                let mut rng = Rng64::from_seed(seed);
                let omega = Matrix::from_fn(b, l, |_, _| rng.uniform(-1.0, 1.0));
                // Y = Ã^T Ω spans (approximately) the dominant range of G.
                let mut y = a_tilde.transpose().matmul(&omega)?;
                let basis_rank = orthonormalize_columns(&mut y);
                if basis_rank == 0 {
                    return Ok(TruncatedGram::empty(m));
                }
                let q = y.first_columns(basis_rank)?;
                // Project: S = (Ã Q)^T (Ã Q) is basis_rank x basis_rank.
                let aq = a_tilde.matmul(&q)?;
                let s = aq.gram();
                let eig = SymmetricEigen::new(&s)?;
                let keep = rank.min(basis_rank);
                let mut cols_v = Vec::with_capacity(keep);
                let mut vals = Vec::with_capacity(keep);
                for j in 0..keep {
                    let lambda = eig.values[j];
                    if lambda <= 1e-12 * eig.values[0].max(1e-300) {
                        break;
                    }
                    let z = eig.vectors.column(j);
                    let v = q.matvec(&z)?;
                    cols_v.push(v);
                    vals.push(sign * lambda);
                }
                TruncatedGram::from_eigenpairs(m, &vals, &cols_v)
            }
        }
    }
}

/// A rank-`r` approximation `G ≈ P V^T` of a Gram form, stored as the two
/// `m x r` matrices that PrIU caches per iteration (`P^{(t)}_{1..r}` and
/// `V^{(t)}_{1..r}` in the paper's notation).
#[derive(Debug, Clone)]
pub struct TruncatedGram {
    /// `P = V diag(λ)`, `m x r`.
    p: Matrix,
    /// `V`, `m x r` (orthonormal columns).
    v: Matrix,
}

impl TruncatedGram {
    /// A rank-0 approximation of the zero matrix.
    pub fn empty(dim: usize) -> Self {
        Self {
            p: Matrix::zeros(dim, 0),
            v: Matrix::zeros(dim, 0),
        }
    }

    /// Reassembles an approximation from previously extracted `P` and `V`
    /// factors (the inverse of [`p`](Self::p)/[`v`](Self::v), used when
    /// deserializing a snapshot).
    ///
    /// # Errors
    /// Returns [`LinalgError::ShapeMismatch`] if the factors do not share
    /// the same `m x r` shape.
    pub fn from_parts(p: Matrix, v: Matrix) -> Result<Self> {
        if p.nrows() != v.nrows() || p.ncols() != v.ncols() {
            return Err(LinalgError::ShapeMismatch {
                op: "TruncatedGram::from_parts",
                left: (p.nrows(), p.ncols()),
                right: (v.nrows(), v.ncols()),
            });
        }
        Ok(Self { p, v })
    }

    fn from_eigenpairs(dim: usize, values: &[f64], vectors: &[Vector]) -> Result<Self> {
        let r = values.len();
        let mut p = Matrix::zeros(dim, r);
        let mut v = Matrix::zeros(dim, r);
        for (j, (val, vec)) in values.iter().zip(vectors.iter()).enumerate() {
            if vec.len() != dim {
                return Err(LinalgError::ShapeMismatch {
                    op: "TruncatedGram::from_eigenpairs",
                    left: (dim, 1),
                    right: (vec.len(), 1),
                });
            }
            for i in 0..dim {
                v[(i, j)] = vec[i];
                p[(i, j)] = val * vec[i];
            }
        }
        Ok(Self { p, v })
    }

    /// The retained rank `r`.
    pub fn rank(&self) -> usize {
        self.p.ncols()
    }

    /// Feature dimension `m`.
    pub fn dim(&self) -> usize {
        self.p.nrows()
    }

    /// The `P` factor (`m x r`).
    pub fn p(&self) -> &Matrix {
        &self.p
    }

    /// The `V` factor (`m x r`).
    pub fn v(&self) -> &Matrix {
        &self.v
    }

    /// Applies the approximation to a vector: `P (V^T w)` in `O(r·m)`.
    ///
    /// # Errors
    /// Returns [`LinalgError::ShapeMismatch`] if `w.len() != dim()`.
    pub fn apply(&self, w: &Vector) -> Result<Vector> {
        let mut out = Vector::zeros(self.dim());
        let mut scratch = Vec::new();
        self.apply_into(w, out.as_mut_slice(), &mut scratch)?;
        Ok(out)
    }

    /// Applies the approximation into a caller-owned buffer, using `scratch`
    /// (resized to the retained rank, reused across calls) for the
    /// intermediate `V^T w` — the allocation-free variant of
    /// [`TruncatedGram::apply`].
    ///
    /// # Errors
    /// Returns [`LinalgError::ShapeMismatch`] if `w.len() != dim()` or
    /// `out.len() != dim()`.
    pub fn apply_into(&self, w: &[f64], out: &mut [f64], scratch: &mut Vec<f64>) -> Result<()> {
        if w.len() != self.dim() || out.len() != self.dim() {
            return Err(LinalgError::ShapeMismatch {
                op: "TruncatedGram::apply",
                left: (self.dim(), self.dim()),
                right: (w.len().max(out.len()), 1),
            });
        }
        if self.rank() == 0 {
            out.fill(0.0);
            return Ok(());
        }
        scratch.clear();
        scratch.resize(self.rank(), 0.0);
        self.v.transpose_matvec_into(w, scratch)?;
        self.p.matvec_into(scratch, out)
    }

    /// Materialises the dense approximation `P V^T` (testing / diagnostics).
    pub fn dense(&self) -> Matrix {
        if self.rank() == 0 {
            return Matrix::zeros(self.dim(), self.dim());
        }
        self.p
            .matmul(&self.v.transpose())
            .expect("factor shapes are consistent by construction")
    }

    /// Number of `f64` values cached by this factorisation (`2·m·r`), used by
    /// the memory-accounting experiment (Table 3 / Q8).
    pub fn stored_values(&self) -> usize {
        2 * self.dim() * self.rank()
    }
}

/// Given eigenvalues sorted by descending magnitude, returns the smallest
/// rank whose retained absolute mass is at least `(1 - epsilon)` of the
/// total — the rank-selection rule justified by Theorem 6 / Theorem 8.
pub fn rank_for_energy(eigenvalues: &[f64], epsilon: f64) -> usize {
    let total: f64 = eigenvalues.iter().map(|v| v.abs()).sum();
    if total == 0.0 {
        return 0;
    }
    let target = (1.0 - epsilon) * total;
    let mut acc = 0.0;
    for (i, v) in eigenvalues.iter().enumerate() {
        acc += v.abs();
        if acc >= target {
            return i + 1;
        }
    }
    eigenvalues.len()
}

#[cfg(test)]
mod tests {
    use super::*;

    fn batch() -> Matrix {
        Matrix::from_vec(
            6,
            4,
            vec![
                1.0, 0.5, -0.2, 0.1, //
                0.3, 1.2, 0.4, -0.5, //
                -0.7, 0.2, 0.9, 0.3, //
                0.2, -0.4, 0.5, 1.1, //
                0.9, 0.1, 0.2, -0.3, //
                -0.1, 0.6, -0.8, 0.4,
            ],
        )
        .unwrap()
    }

    #[test]
    fn dense_and_apply_agree() {
        let f = GramFactor::unweighted(batch());
        let w = Vector::from_vec(vec![0.5, -1.0, 2.0, 0.25]);
        let via_apply = f.apply(&w).unwrap();
        let via_dense = f.dense().matvec(&w).unwrap();
        assert!((&via_apply - &via_dense).norm2() < 1e-10);
    }

    #[test]
    fn full_rank_exact_truncation_reconstructs_gram() {
        let f = GramFactor::unweighted(batch());
        let t = f.truncate(4, TruncationMethod::Exact).unwrap();
        let diff = &t.dense() - &f.dense();
        assert!(diff.frobenius_norm() < 1e-8);
        assert_eq!(t.stored_values(), 2 * 4 * t.rank());
    }

    #[test]
    fn low_rank_truncation_captures_dominant_mass() {
        let f = GramFactor::unweighted(batch());
        let full = f.dense();
        let t = f.truncate(2, TruncationMethod::Exact).unwrap();
        assert_eq!(t.rank(), 2);
        let err = (&t.dense() - &full).frobenius_norm() / full.frobenius_norm();
        assert!(err < 0.6, "relative error {err} unexpectedly large");
        // The rank-2 approximation must do at least as well as rank-1.
        let t1 = f.truncate(1, TruncationMethod::Exact).unwrap();
        let err1 = (&t1.dense() - &full).frobenius_norm() / full.frobenius_norm();
        assert!(err <= err1 + 1e-12);
    }

    #[test]
    fn randomized_matches_exact_at_full_rank() {
        let f = GramFactor::unweighted(batch());
        let exact = f.truncate(4, TruncationMethod::Exact).unwrap();
        let randomized = f
            .truncate(
                4,
                TruncationMethod::Randomized {
                    oversample: 4,
                    seed: 7,
                },
            )
            .unwrap();
        let diff = (&exact.dense() - &randomized.dense()).frobenius_norm();
        assert!(diff < 1e-6, "difference {diff}");
    }

    #[test]
    fn negative_weights_are_supported() {
        let weights = vec![-0.5, -1.0, -0.2, -0.7, -0.9, -0.3];
        let f = GramFactor::new(batch(), weights.clone()).unwrap();
        let dense = f.dense();
        // All-negative weights give a negative semi-definite Gram form.
        let eig = SymmetricEigen::new(&dense).unwrap();
        assert!(eig.values[0] <= 1e-10);
        let t = f.truncate(4, TruncationMethod::Exact).unwrap();
        assert!((&t.dense() - &dense).frobenius_norm() < 1e-8);
        let w = Vector::ones(4);
        assert!((&f.apply(&w).unwrap() - &dense.matvec(&w).unwrap()).norm2() < 1e-10);
    }

    #[test]
    fn mixed_sign_weights_are_rejected() {
        let weights = vec![1.0, -1.0, 0.0, 0.0, 0.0, 0.0];
        assert!(GramFactor::new(batch(), weights).is_err());
        assert!(GramFactor::new(batch(), vec![1.0; 3]).is_err());
    }

    #[test]
    fn empty_batch_yields_zero_operator() {
        let f = GramFactor::unweighted(Matrix::zeros(0, 3));
        let t = f.truncate(2, TruncationMethod::Exact).unwrap();
        assert_eq!(t.rank(), 0);
        let w = Vector::ones(3);
        assert_eq!(t.apply(&w).unwrap().as_slice(), &[0.0, 0.0, 0.0]);
        assert!(t.apply(&Vector::ones(2)).is_err());
    }

    #[test]
    fn zero_rank_request_is_rejected() {
        let f = GramFactor::unweighted(batch());
        assert!(f.truncate(0, TruncationMethod::Exact).is_err());
    }

    #[test]
    fn rank_for_energy_selects_expected_rank() {
        let eigs = [10.0, 5.0, 1.0, 0.5];
        assert_eq!(rank_for_energy(&eigs, 0.5), 1);
        assert_eq!(rank_for_energy(&eigs, 0.1), 2);
        assert_eq!(rank_for_energy(&eigs, 0.0), 4);
        assert_eq!(rank_for_energy(&[], 0.1), 0);
        assert_eq!(rank_for_energy(&[0.0, 0.0], 0.1), 0);
    }
}
