//! Sparse matrices (compressed sparse row), used for the RCV1-style sparse
//! logistic-regression workloads (§5.3 of the paper).

pub mod builder;
pub mod csr;

pub use builder::CooBuilder;
pub use csr::CsrMatrix;
