//! Compressed sparse row (CSR) matrices.
//!
//! The hot kernels (`spmv`, `transpose_spmv`, and the batch-replay pair
//! `rows_dot_into` / `scatter_rows_into`) are chunked through [`crate::par`]
//! exactly like the dense kernels: map-style kernels write disjoint output
//! regions per row chunk, reduction-style kernels accumulate per-chunk
//! partials and combine them in ascending chunk order. The whole-matrix
//! kernels (`spmv`, `transpose_spmv`) use **nnz-balanced** chunk
//! boundaries ([`crate::par::NnzChunks`] over `row_ptr`), so heavily
//! skewed row lengths split by work instead of row count; the selection
//! kernels (`rows_dot_into` / `scatter_rows_into`) chunk over positions of
//! their index list (no cumulative-work array exists for an arbitrary
//! selection without a scan). Either way boundaries depend only on the
//! matrix shape, so every kernel is bitwise reproducible for any
//! `PRIU_THREADS`. The inner loops dispatch through [`crate::simd`]
//! (gather-dot and fused scatter on the AVX2 level). Each kernel has an
//! `_into` variant writing into a caller-owned buffer; the allocating
//! versions delegate to those.

use std::ops::Range;

use crate::dense::matrix::Matrix;
use crate::dense::vector::Vector;
use crate::error::{LinalgError, Result};
use crate::par::{self, Chunks, NnzChunks};
use crate::simd;

/// Minimum rows per chunk: sparse rows carry only tens of non-zeros, so
/// chunks are kept as coarse as the dense kernels' — mb-SGD-sized batches
/// (≤ 511 rows) stay on the inline single-chunk path and never touch the
/// worker pool.
const MIN_CHUNK_ROWS: usize = 256;
/// Chunk-count caps: map-style kernels (disjoint outputs) can fan wide;
/// reductions are capped tighter because each extra chunk costs an
/// `ncols`-sized partial buffer in the combine step — and further by
/// `reduction_chunk_cap`, which bounds the combine cost relative to the
/// actual nnz work (CSR column counts can dwarf the per-row work).
const MAP_MAX_CHUNKS: usize = 64;
const RED_MAX_CHUNKS: usize = 16;

/// A sparse matrix in compressed sparse row format.
///
/// Rows are training samples; the hot operations are `row · w` (per-sample
/// margins) and scatter-adds of scaled rows into a dense accumulator (the
/// gradient update), which is all the sparse path of PrIU needs (§5.3).
///
/// Invariant: within every row the column indices are **sorted and strictly
/// increasing** (no duplicates). [`CsrMatrix::from_raw`] rejects violations;
/// the deterministic chunk-ordered reduction of [`transpose_spmv`] and
/// [`scatter_rows_into`] relies on each `(row, column)` pair contributing
/// exactly once, in a fixed position.
///
/// [`transpose_spmv`]: CsrMatrix::transpose_spmv
/// [`scatter_rows_into`]: CsrMatrix::scatter_rows_into
#[derive(Debug, Clone, PartialEq)]
pub struct CsrMatrix {
    rows: usize,
    cols: usize,
    row_ptr: Vec<usize>,
    col_idx: Vec<usize>,
    values: Vec<f64>,
}

impl CsrMatrix {
    /// Creates a CSR matrix from raw components.
    ///
    /// # Errors
    /// Returns [`LinalgError::InvalidArgument`] if the components are
    /// structurally inconsistent: wrong `row_ptr` length, non-monotone
    /// pointers, column index out of range, mismatched value count, or a
    /// row whose column indices are not sorted strictly increasing
    /// (unsorted or duplicate columns would silently break the
    /// deterministic parallel reductions and double-count entries).
    pub fn from_raw(
        rows: usize,
        cols: usize,
        row_ptr: Vec<usize>,
        col_idx: Vec<usize>,
        values: Vec<f64>,
    ) -> Result<Self> {
        if row_ptr.len() != rows + 1 {
            return Err(LinalgError::InvalidArgument(format!(
                "row_ptr must have {} entries, got {}",
                rows + 1,
                row_ptr.len()
            )));
        }
        if row_ptr[0] != 0 || *row_ptr.last().expect("non-empty") != col_idx.len() {
            return Err(LinalgError::InvalidArgument(
                "row_ptr must start at 0 and end at nnz".to_string(),
            ));
        }
        if col_idx.len() != values.len() {
            return Err(LinalgError::InvalidArgument(
                "col_idx and values must have the same length".to_string(),
            ));
        }
        for w in row_ptr.windows(2) {
            if w[1] < w[0] {
                return Err(LinalgError::InvalidArgument(
                    "row_ptr must be non-decreasing".to_string(),
                ));
            }
        }
        if col_idx.iter().any(|&c| c >= cols) {
            return Err(LinalgError::InvalidArgument(
                "column index out of range".to_string(),
            ));
        }
        for i in 0..rows {
            let row = &col_idx[row_ptr[i]..row_ptr[i + 1]];
            if let Some(w) = row.windows(2).find(|w| w[0] >= w[1]) {
                return Err(LinalgError::InvalidArgument(format!(
                    "column indices within each row must be sorted and strictly increasing \
                     (row {i} has {} before {}{})",
                    w[0],
                    w[1],
                    if w[0] == w[1] {
                        " — duplicate column"
                    } else {
                        ""
                    },
                )));
            }
        }
        Ok(Self {
            rows,
            cols,
            row_ptr,
            col_idx,
            values,
        })
    }

    /// Converts a dense matrix, dropping exact zeros.
    pub fn from_dense(dense: &Matrix) -> Self {
        let (rows, cols) = dense.shape();
        let mut row_ptr = Vec::with_capacity(rows + 1);
        let mut col_idx = Vec::new();
        let mut values = Vec::new();
        row_ptr.push(0);
        for i in 0..rows {
            for (j, &v) in dense.row(i).iter().enumerate() {
                if v != 0.0 {
                    col_idx.push(j);
                    values.push(v);
                }
            }
            row_ptr.push(col_idx.len());
        }
        Self {
            rows,
            cols,
            row_ptr,
            col_idx,
            values,
        }
    }

    /// Number of rows.
    pub fn nrows(&self) -> usize {
        self.rows
    }

    /// Number of columns.
    pub fn ncols(&self) -> usize {
        self.cols
    }

    /// Number of stored (non-zero) entries.
    pub fn nnz(&self) -> usize {
        self.values.len()
    }

    /// The raw row-pointer array (`nrows + 1` entries).
    pub fn row_ptr(&self) -> &[usize] {
        &self.row_ptr
    }

    /// The raw column-index array (`nnz` entries, sorted within each row).
    pub fn col_idx(&self) -> &[usize] {
        &self.col_idx
    }

    /// The raw stored values (`nnz` entries, row-major).
    pub fn values(&self) -> &[f64] {
        &self.values
    }

    /// Fraction of stored entries over the full dense size (0 for an empty
    /// matrix).
    pub fn density(&self) -> f64 {
        let total = self.rows * self.cols;
        if total == 0 {
            0.0
        } else {
            self.nnz() as f64 / total as f64
        }
    }

    /// Selects a subset of rows by index (order preserved, duplicates
    /// allowed), mirroring the dense `Matrix::select_rows`. Used to shrink a
    /// sparse dataset to the survivors of a deletion.
    ///
    /// # Errors
    /// Returns [`LinalgError::IndexOutOfBounds`] if an index is out of
    /// bounds — matching the `Result` convention of the sibling row
    /// operations (`row_dot`, `scatter_row`, `spmv`) instead of panicking.
    pub fn select_rows(&self, indices: &[usize]) -> Result<CsrMatrix> {
        self.check_rows(indices)?;
        let mut row_ptr = Vec::with_capacity(indices.len() + 1);
        row_ptr.push(0usize);
        let mut col_idx = Vec::new();
        let mut values = Vec::new();
        for &i in indices {
            let (cols, vals) = self.row(i);
            col_idx.extend_from_slice(cols);
            values.extend_from_slice(vals);
            row_ptr.push(col_idx.len());
        }
        Ok(CsrMatrix {
            rows: indices.len(),
            cols: self.cols,
            row_ptr,
            col_idx,
            values,
        })
    }

    /// Appends the rows of `other` beneath this matrix in place (values and
    /// column indices extend verbatim, row pointers shift by the current
    /// nnz) — the sparse half of the delta engines' addition path. The
    /// per-row sorted-columns invariant is preserved because `other`
    /// already upholds it.
    ///
    /// # Errors
    /// Returns [`LinalgError::ShapeMismatch`] if the column counts differ.
    pub fn append_rows(&mut self, other: &CsrMatrix) -> Result<()> {
        if other.cols != self.cols {
            return Err(LinalgError::ShapeMismatch {
                op: "CsrMatrix::append_rows",
                left: (self.rows, self.cols),
                right: (other.rows, other.cols),
            });
        }
        let base = *self.row_ptr.last().expect("row_ptr is never empty");
        self.row_ptr
            .extend(other.row_ptr[1..].iter().map(|&p| base + p));
        self.col_idx.extend_from_slice(&other.col_idx);
        self.values.extend_from_slice(&other.values);
        self.rows += other.rows;
        Ok(())
    }

    /// The sparse row `i` as parallel `(column, value)` slices.
    ///
    /// # Panics
    /// Panics if `i >= nrows()`.
    pub fn row(&self, i: usize) -> (&[usize], &[f64]) {
        assert!(i < self.rows, "row index {i} out of bounds ({})", self.rows);
        let start = self.row_ptr[i];
        let end = self.row_ptr[i + 1];
        (&self.col_idx[start..end], &self.values[start..end])
    }

    /// Validates a list of row indices.
    fn check_rows(&self, indices: &[usize]) -> Result<()> {
        if let Some(&bad) = indices.iter().find(|&&i| i >= self.rows) {
            return Err(LinalgError::IndexOutOfBounds {
                index: bad,
                len: self.rows,
            });
        }
        Ok(())
    }

    /// The dot product of row `i` with `x`, assuming shapes were checked —
    /// the dispatched gather-dot microkernel (4-wide lanes shared by the
    /// portable and AVX2 paths, see [`crate::simd::sparse_dot`]).
    #[inline]
    fn row_dot_unchecked(&self, i: usize, x: &[f64]) -> f64 {
        let (cols, vals) = self.row(i);
        simd::sparse_dot(cols, vals, x)
    }

    /// Dot product of sparse row `i` with a dense vector.
    ///
    /// # Errors
    /// Returns [`LinalgError::ShapeMismatch`] if `x.len() != ncols()`, and
    /// [`LinalgError::IndexOutOfBounds`] if `i >= nrows()`.
    pub fn row_dot(&self, i: usize, x: &[f64]) -> Result<f64> {
        if x.len() != self.cols {
            return Err(LinalgError::ShapeMismatch {
                op: "CsrMatrix::row_dot",
                left: (self.rows, self.cols),
                right: (x.len(), 1),
            });
        }
        self.check_rows(std::slice::from_ref(&i))?;
        Ok(self.row_dot_unchecked(i, x))
    }

    /// Adds `alpha * row_i` into the dense accumulator `acc`.
    ///
    /// # Errors
    /// Returns [`LinalgError::ShapeMismatch`] if `acc.len() != ncols()`, and
    /// [`LinalgError::IndexOutOfBounds`] if `i >= nrows()`.
    pub fn scatter_row(&self, i: usize, alpha: f64, acc: &mut [f64]) -> Result<()> {
        if acc.len() != self.cols {
            return Err(LinalgError::ShapeMismatch {
                op: "CsrMatrix::scatter_row",
                left: (self.rows, self.cols),
                right: (acc.len(), 1),
            });
        }
        self.check_rows(std::slice::from_ref(&i))?;
        let (cols, vals) = self.row(i);
        simd::sparse_scatter(cols, vals, alpha, acc);
        Ok(())
    }

    /// Sparse matrix-vector product `self * x`.
    ///
    /// # Errors
    /// Returns [`LinalgError::ShapeMismatch`] if `x.len() != ncols()`.
    pub fn spmv(&self, x: &[f64]) -> Result<Vector> {
        let mut out = Vector::zeros(self.rows);
        self.spmv_into(x, out.as_mut_slice())?;
        Ok(out)
    }

    /// Sparse matrix-vector product into a caller-owned buffer
    /// (`out = self * x`, overwritten). Row-chunked over the pool; each
    /// output entry is one independent row dot, so results are bitwise
    /// identical to [`CsrMatrix::spmv`] for any thread count.
    ///
    /// # Errors
    /// Returns [`LinalgError::ShapeMismatch`] if `x.len() != ncols()` or
    /// `out.len() != nrows()`.
    pub fn spmv_into(&self, x: &[f64], out: &mut [f64]) -> Result<()> {
        if x.len() != self.cols {
            return Err(LinalgError::ShapeMismatch {
                op: "CsrMatrix::spmv",
                left: (self.rows, self.cols),
                right: (x.len(), 1),
            });
        }
        if out.len() != self.rows {
            return Err(LinalgError::ShapeMismatch {
                op: "CsrMatrix::spmv_into(out)",
                left: (self.rows, self.cols),
                right: (out.len(), 1),
            });
        }
        // Nnz-balanced boundaries: skewed row lengths (RCV1-style tails)
        // split by work, not by row count. Shape-only, so bitwise
        // reproducibility for any thread count is unchanged.
        let chunks = NnzChunks::new(&self.row_ptr, MIN_CHUNK_ROWS, MAP_MAX_CHUNKS);
        par::map_chunks(&chunks, 1, out, |range, chunk_out| {
            self.spmv_range(range, x, chunk_out)
        });
        Ok(())
    }

    /// `out[o] = row(range.start + o) · x` for one row chunk.
    fn spmv_range(&self, range: Range<usize>, x: &[f64], out: &mut [f64]) {
        debug_assert_eq!(out.len(), range.len());
        for (o, i) in range.enumerate() {
            out[o] = self.row_dot_unchecked(i, x);
        }
    }

    /// Transposed sparse matrix-vector product `self^T * x`.
    ///
    /// # Errors
    /// Returns [`LinalgError::ShapeMismatch`] if `x.len() != nrows()`.
    pub fn transpose_spmv(&self, x: &[f64]) -> Result<Vector> {
        let mut out = Vector::zeros(self.cols);
        self.transpose_spmv_into(x, out.as_mut_slice())?;
        Ok(out)
    }

    /// Transposed sparse matrix-vector product into a caller-owned buffer
    /// (`out = self^T * x`, overwritten). Chunked over rows with a
    /// chunk-ordered partial reduction (each chunk scatters into its own
    /// `ncols`-sized partial; partials are combined serially in ascending
    /// chunk order), so results are bitwise identical for any thread count.
    ///
    /// # Errors
    /// Returns [`LinalgError::ShapeMismatch`] if `x.len() != nrows()` or
    /// `out.len() != ncols()`.
    pub fn transpose_spmv_into(&self, x: &[f64], out: &mut [f64]) -> Result<()> {
        if x.len() != self.rows {
            return Err(LinalgError::ShapeMismatch {
                op: "CsrMatrix::transpose_spmv",
                left: (self.cols, self.rows),
                right: (x.len(), 1),
            });
        }
        if out.len() != self.cols {
            return Err(LinalgError::ShapeMismatch {
                op: "CsrMatrix::transpose_spmv_into(out)",
                left: (self.cols, self.rows),
                right: (out.len(), 1),
            });
        }
        out.fill(0.0);
        // Nnz-balanced boundaries (see `spmv_into`); the chunk-count cap
        // stays nnz-derived so the serial combine never dominates.
        let chunks = NnzChunks::new(
            &self.row_ptr,
            MIN_CHUNK_ROWS,
            self.reduction_chunk_cap(self.rows),
        );
        par::reduce_chunks(&chunks, self.cols, out, |range, partial| {
            self.scatter_range(range, x, partial)
        });
        Ok(())
    }

    /// Caps the reduction chunk count so the serial combine of the
    /// `ncols`-sized partials stays a small fraction (≤ ~1/4) of the
    /// expected scatter work (`num_rows · avg_nnz_per_row`). Every input is
    /// derived from the matrix structure and the argument row count — never
    /// from the thread count — so the decomposition, and with it the
    /// floating-point summation tree, stays thread-independent.
    fn reduction_chunk_cap(&self, num_rows: usize) -> usize {
        let avg_nnz = self.nnz() / self.rows.max(1);
        (num_rows.saturating_mul(avg_nnz) / (4 * self.cols.max(1))).clamp(1, RED_MAX_CHUNKS)
    }

    /// Accumulates `Σ_{i ∈ range} x[i] · row(i)` into `acc` (not cleared).
    fn scatter_range(&self, range: Range<usize>, x: &[f64], acc: &mut [f64]) {
        for i in range {
            let xi = x[i];
            if xi == 0.0 {
                continue;
            }
            let (cols, vals) = self.row(i);
            simd::sparse_scatter(cols, vals, xi, acc);
        }
    }

    /// Dot products of the selected rows with a dense vector:
    /// `out[k] = row(rows[k]) · x`. The gather half of the sparse replay
    /// loop (per-sample margins of a mini-batch), chunked over positions of
    /// `rows`; each entry is an independent row dot, so results are bitwise
    /// identical to per-position [`CsrMatrix::row_dot`] calls for any
    /// thread count. Allocation-free on the single-chunk path (mb-SGD-sized
    /// batches); a multi-chunk call allocates one small job handle for the
    /// pool hand-off.
    ///
    /// # Errors
    /// Returns [`LinalgError::ShapeMismatch`] if `x.len() != ncols()` or
    /// `out.len() != rows.len()`, and [`LinalgError::IndexOutOfBounds`] for
    /// an out-of-range row index.
    pub fn rows_dot_into(&self, rows: &[usize], x: &[f64], out: &mut [f64]) -> Result<()> {
        if x.len() != self.cols {
            return Err(LinalgError::ShapeMismatch {
                op: "CsrMatrix::rows_dot_into",
                left: (self.rows, self.cols),
                right: (x.len(), 1),
            });
        }
        if out.len() != rows.len() {
            return Err(LinalgError::ShapeMismatch {
                op: "CsrMatrix::rows_dot_into(out)",
                left: (rows.len(), 1),
                right: (out.len(), 1),
            });
        }
        self.check_rows(rows)?;
        let chunks = Chunks::new(rows.len(), MIN_CHUNK_ROWS, MAP_MAX_CHUNKS);
        par::map_chunks(&chunks, 1, out, |range, chunk_out| {
            for (o, &i) in rows[range].iter().enumerate() {
                chunk_out[o] = self.row_dot_unchecked(i, x);
            }
        });
        Ok(())
    }

    /// Accumulates `Σ_k alphas[k] · row(rows[k])` into `acc` (not cleared)
    /// — the scatter half of the sparse replay loop (the mini-batch
    /// gradient update). Chunked over positions of `rows` with a
    /// chunk-ordered partial reduction, so results are bitwise identical
    /// for any thread count. Positions with `alphas[k] == 0.0` are skipped.
    /// Allocation-free on the single-chunk path; multi-chunk calls borrow
    /// pooled thread-local scratch for the partials.
    ///
    /// # Errors
    /// Returns [`LinalgError::ShapeMismatch`] if `acc.len() != ncols()` or
    /// `alphas.len() != rows.len()`, and [`LinalgError::IndexOutOfBounds`]
    /// for an out-of-range row index.
    pub fn scatter_rows_into(&self, rows: &[usize], alphas: &[f64], acc: &mut [f64]) -> Result<()> {
        if acc.len() != self.cols {
            return Err(LinalgError::ShapeMismatch {
                op: "CsrMatrix::scatter_rows_into",
                left: (self.rows, self.cols),
                right: (acc.len(), 1),
            });
        }
        if alphas.len() != rows.len() {
            return Err(LinalgError::ShapeMismatch {
                op: "CsrMatrix::scatter_rows_into(alphas)",
                left: (rows.len(), 1),
                right: (alphas.len(), 1),
            });
        }
        self.check_rows(rows)?;
        let chunks = Chunks::new(
            rows.len(),
            MIN_CHUNK_ROWS,
            self.reduction_chunk_cap(rows.len()),
        );
        par::reduce_chunks(&chunks, self.cols, acc, |range, partial| {
            self.scatter_positions(range, rows, alphas, partial)
        });
        Ok(())
    }

    /// Accumulates `Σ_{k ∈ range} alphas[k] · row(rows[k])` into `acc`.
    fn scatter_positions(
        &self,
        range: Range<usize>,
        rows: &[usize],
        alphas: &[f64],
        acc: &mut [f64],
    ) {
        for k in range {
            let alpha = alphas[k];
            if alpha == 0.0 {
                continue;
            }
            let (cols, vals) = self.row(rows[k]);
            simd::sparse_scatter(cols, vals, alpha, acc);
        }
    }

    /// Materialises the dense equivalent (testing / small matrices only).
    pub fn to_dense(&self) -> Matrix {
        let mut dense = Matrix::zeros(self.rows, self.cols);
        for i in 0..self.rows {
            let (cols, vals) = self.row(i);
            for (&c, &v) in cols.iter().zip(vals.iter()) {
                dense[(i, c)] = v;
            }
        }
        dense
    }
}

#[cfg(test)]
mod tests {
    use super::*;

    fn sample() -> CsrMatrix {
        // [[1, 0, 2], [0, 0, 0], [0, 3, 4]]
        CsrMatrix::from_raw(
            3,
            3,
            vec![0, 2, 2, 4],
            vec![0, 2, 1, 2],
            vec![1.0, 2.0, 3.0, 4.0],
        )
        .unwrap()
    }

    #[test]
    fn select_rows_preserves_order_and_content() {
        let m = sample();
        let s = m.select_rows(&[2, 0, 2]).unwrap();
        assert_eq!(s.nrows(), 3);
        assert_eq!(s.ncols(), 3);
        assert_eq!(s.row(0), m.row(2));
        assert_eq!(s.row(1), m.row(0));
        assert_eq!(s.row(2), m.row(2));
        assert_eq!(s.nnz(), 6);
        // Empty selection yields an empty matrix with the same column count.
        let e = m.select_rows(&[]).unwrap();
        assert_eq!(e.nrows(), 0);
        assert_eq!(e.ncols(), 3);
        assert_eq!(e.nnz(), 0);
    }

    #[test]
    fn select_rows_rejects_out_of_bounds_like_the_sibling_ops() {
        let m = sample();
        assert!(matches!(
            m.select_rows(&[0, 3]),
            Err(LinalgError::IndexOutOfBounds { index: 3, len: 3 })
        ));
        assert!(matches!(
            m.row_dot(9, &[0.0; 3]),
            Err(LinalgError::IndexOutOfBounds { index: 9, len: 3 })
        ));
        assert!(matches!(
            m.scatter_row(7, 1.0, &mut [0.0; 3]),
            Err(LinalgError::IndexOutOfBounds { index: 7, len: 3 })
        ));
    }

    #[test]
    fn construction_and_accessors() {
        let m = sample();
        assert_eq!(m.nrows(), 3);
        assert_eq!(m.ncols(), 3);
        assert_eq!(m.nnz(), 4);
        assert!((m.density() - 4.0 / 9.0).abs() < 1e-12);
        let (cols, vals) = m.row(2);
        assert_eq!(cols, &[1, 2]);
        assert_eq!(vals, &[3.0, 4.0]);
        let (cols, vals) = m.row(1);
        assert!(cols.is_empty());
        assert!(vals.is_empty());
    }

    #[test]
    fn invalid_structures_are_rejected() {
        assert!(CsrMatrix::from_raw(2, 2, vec![0, 1], vec![0], vec![1.0]).is_err());
        assert!(CsrMatrix::from_raw(1, 2, vec![0, 2], vec![0], vec![1.0]).is_err());
        assert!(CsrMatrix::from_raw(1, 2, vec![0, 1], vec![5], vec![1.0]).is_err());
        assert!(CsrMatrix::from_raw(2, 2, vec![0, 2, 1], vec![0], vec![1.0]).is_err());
        assert!(CsrMatrix::from_raw(1, 2, vec![0, 1], vec![0, 1], vec![1.0, 2.0]).is_err());
    }

    #[test]
    fn unsorted_or_duplicate_columns_are_rejected() {
        // Unsorted columns within a row.
        let err = CsrMatrix::from_raw(1, 3, vec![0, 2], vec![2, 0], vec![1.0, 2.0]).unwrap_err();
        assert!(
            err.to_string().contains("sorted"),
            "unexpected message: {err}"
        );
        // Duplicate column within a row.
        let err = CsrMatrix::from_raw(1, 3, vec![0, 2], vec![1, 1], vec![1.0, 2.0]).unwrap_err();
        assert!(
            err.to_string().contains("duplicate column"),
            "unexpected message: {err}"
        );
        // Violations in a later row are caught too.
        assert!(CsrMatrix::from_raw(2, 4, vec![0, 2, 4], vec![0, 3, 2, 1], vec![1.0; 4]).is_err());
        // Equal columns in *different* rows remain fine.
        assert!(CsrMatrix::from_raw(2, 2, vec![0, 1, 2], vec![1, 1], vec![1.0, 2.0]).is_ok());
    }

    #[test]
    fn spmv_matches_dense() {
        let m = sample();
        let x = Vector::from_vec(vec![1.0, -1.0, 0.5]);
        let sparse = m.spmv(&x).unwrap();
        let dense = m.to_dense().matvec(&x).unwrap();
        assert!((&sparse - &dense).norm2() < 1e-12);
        assert!(m.spmv(&Vector::zeros(2)).is_err());
        // The _into variant produces the same bits.
        let mut out = vec![0.0; 3];
        m.spmv_into(&x, &mut out).unwrap();
        assert_eq!(out, sparse.into_vec());
        assert!(m.spmv_into(&x, &mut [0.0; 2]).is_err());
    }

    #[test]
    fn transpose_spmv_matches_dense() {
        let m = sample();
        let x = Vector::from_vec(vec![2.0, 1.0, -1.0]);
        let sparse = m.transpose_spmv(&x).unwrap();
        let dense = m.to_dense().transpose_matvec(&x).unwrap();
        assert!((&sparse - &dense).norm2() < 1e-12);
        assert!(m.transpose_spmv(&Vector::zeros(4)).is_err());
        let mut out = vec![0.0; 3];
        m.transpose_spmv_into(&x, &mut out).unwrap();
        assert_eq!(out, sparse.into_vec());
        assert!(m.transpose_spmv_into(&x, &mut [0.0; 4]).is_err());
    }

    #[test]
    fn row_dot_and_scatter() {
        let m = sample();
        let x = Vector::from_vec(vec![1.0, 2.0, 3.0]);
        assert_eq!(m.row_dot(0, &x).unwrap(), 7.0);
        assert_eq!(m.row_dot(1, &x).unwrap(), 0.0);
        let mut acc = Vector::zeros(3);
        m.scatter_row(2, 2.0, &mut acc).unwrap();
        assert_eq!(acc.as_slice(), &[0.0, 6.0, 8.0]);
        assert!(m.row_dot(0, &Vector::zeros(1)).is_err());
        assert!(m.scatter_row(0, 1.0, &mut Vector::zeros(1)).is_err());
    }

    #[test]
    fn rows_dot_and_scatter_rows_match_per_row_ops() {
        let m = sample();
        let x = vec![1.0, 2.0, 3.0];
        let rows = [2usize, 0, 2, 1];
        let mut dots = vec![0.0; rows.len()];
        m.rows_dot_into(&rows, &x, &mut dots).unwrap();
        for (k, &i) in rows.iter().enumerate() {
            assert_eq!(dots[k], m.row_dot(i, &x).unwrap());
        }

        let alphas = [0.5, -1.0, 0.0, 2.0];
        let mut acc = vec![0.0; 3];
        m.scatter_rows_into(&rows, &alphas, &mut acc).unwrap();
        let mut expected = vec![0.0; 3];
        for (k, &i) in rows.iter().enumerate() {
            m.scatter_row(i, alphas[k], &mut expected).unwrap();
        }
        assert_eq!(acc, expected);

        // Shape and bound errors.
        assert!(m.rows_dot_into(&rows, &x, &mut [0.0; 2]).is_err());
        assert!(m.rows_dot_into(&rows, &[0.0; 2], &mut dots).is_err());
        assert!(m.rows_dot_into(&[5], &x, &mut [0.0; 1]).is_err());
        assert!(m.scatter_rows_into(&rows, &alphas[..2], &mut acc).is_err());
        assert!(m.scatter_rows_into(&rows, &alphas, &mut [0.0; 2]).is_err());
        assert!(m.scatter_rows_into(&[9], &[1.0], &mut acc).is_err());
    }

    #[test]
    fn dense_round_trip() {
        let dense = Matrix::from_vec(2, 3, vec![0.0, 1.5, 0.0, -2.0, 0.0, 3.0]).unwrap();
        let sparse = CsrMatrix::from_dense(&dense);
        assert_eq!(sparse.nnz(), 3);
        assert_eq!(sparse.to_dense(), dense);
    }
}
