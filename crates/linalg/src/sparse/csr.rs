//! Compressed sparse row (CSR) matrices.

use crate::dense::matrix::Matrix;
use crate::dense::vector::Vector;
use crate::error::{LinalgError, Result};

/// A sparse matrix in compressed sparse row format.
///
/// Rows are training samples; the hot operations are `row · w` (per-sample
/// margins) and scatter-adds of scaled rows into a dense accumulator (the
/// gradient update), which is all the sparse path of PrIU needs (§5.3).
#[derive(Debug, Clone, PartialEq)]
pub struct CsrMatrix {
    rows: usize,
    cols: usize,
    row_ptr: Vec<usize>,
    col_idx: Vec<usize>,
    values: Vec<f64>,
}

impl CsrMatrix {
    /// Creates a CSR matrix from raw components.
    ///
    /// # Errors
    /// Returns [`LinalgError::InvalidArgument`] if the components are
    /// structurally inconsistent (wrong `row_ptr` length, non-monotone
    /// pointers, column index out of range, or mismatched value count).
    pub fn from_raw(
        rows: usize,
        cols: usize,
        row_ptr: Vec<usize>,
        col_idx: Vec<usize>,
        values: Vec<f64>,
    ) -> Result<Self> {
        if row_ptr.len() != rows + 1 {
            return Err(LinalgError::InvalidArgument(format!(
                "row_ptr must have {} entries, got {}",
                rows + 1,
                row_ptr.len()
            )));
        }
        if row_ptr[0] != 0 || *row_ptr.last().expect("non-empty") != col_idx.len() {
            return Err(LinalgError::InvalidArgument(
                "row_ptr must start at 0 and end at nnz".to_string(),
            ));
        }
        if col_idx.len() != values.len() {
            return Err(LinalgError::InvalidArgument(
                "col_idx and values must have the same length".to_string(),
            ));
        }
        for w in row_ptr.windows(2) {
            if w[1] < w[0] {
                return Err(LinalgError::InvalidArgument(
                    "row_ptr must be non-decreasing".to_string(),
                ));
            }
        }
        if col_idx.iter().any(|&c| c >= cols) {
            return Err(LinalgError::InvalidArgument(
                "column index out of range".to_string(),
            ));
        }
        Ok(Self {
            rows,
            cols,
            row_ptr,
            col_idx,
            values,
        })
    }

    /// Converts a dense matrix, dropping exact zeros.
    pub fn from_dense(dense: &Matrix) -> Self {
        let (rows, cols) = dense.shape();
        let mut row_ptr = Vec::with_capacity(rows + 1);
        let mut col_idx = Vec::new();
        let mut values = Vec::new();
        row_ptr.push(0);
        for i in 0..rows {
            for (j, &v) in dense.row(i).iter().enumerate() {
                if v != 0.0 {
                    col_idx.push(j);
                    values.push(v);
                }
            }
            row_ptr.push(col_idx.len());
        }
        Self {
            rows,
            cols,
            row_ptr,
            col_idx,
            values,
        }
    }

    /// Number of rows.
    pub fn nrows(&self) -> usize {
        self.rows
    }

    /// Number of columns.
    pub fn ncols(&self) -> usize {
        self.cols
    }

    /// Number of stored (non-zero) entries.
    pub fn nnz(&self) -> usize {
        self.values.len()
    }

    /// Fraction of stored entries over the full dense size (0 for an empty
    /// matrix).
    pub fn density(&self) -> f64 {
        let total = self.rows * self.cols;
        if total == 0 {
            0.0
        } else {
            self.nnz() as f64 / total as f64
        }
    }

    /// Selects a subset of rows by index (order preserved, duplicates
    /// allowed), mirroring the dense `Matrix::select_rows`. Used to shrink a
    /// sparse dataset to the survivors of a deletion.
    ///
    /// # Panics
    /// Panics if an index is out of bounds.
    pub fn select_rows(&self, indices: &[usize]) -> CsrMatrix {
        let mut row_ptr = Vec::with_capacity(indices.len() + 1);
        row_ptr.push(0usize);
        let mut col_idx = Vec::new();
        let mut values = Vec::new();
        for &i in indices {
            let (cols, vals) = self.row(i);
            col_idx.extend_from_slice(cols);
            values.extend_from_slice(vals);
            row_ptr.push(col_idx.len());
        }
        CsrMatrix {
            rows: indices.len(),
            cols: self.cols,
            row_ptr,
            col_idx,
            values,
        }
    }

    /// The sparse row `i` as parallel `(column, value)` slices.
    ///
    /// # Panics
    /// Panics if `i >= nrows()`.
    pub fn row(&self, i: usize) -> (&[usize], &[f64]) {
        assert!(i < self.rows, "row index {i} out of bounds ({})", self.rows);
        let start = self.row_ptr[i];
        let end = self.row_ptr[i + 1];
        (&self.col_idx[start..end], &self.values[start..end])
    }

    /// Dot product of sparse row `i` with a dense vector.
    ///
    /// # Errors
    /// Returns [`LinalgError::ShapeMismatch`] if `x.len() != ncols()`.
    pub fn row_dot(&self, i: usize, x: &[f64]) -> Result<f64> {
        if x.len() != self.cols {
            return Err(LinalgError::ShapeMismatch {
                op: "CsrMatrix::row_dot",
                left: (self.rows, self.cols),
                right: (x.len(), 1),
            });
        }
        let (cols, vals) = self.row(i);
        Ok(cols.iter().zip(vals.iter()).map(|(&c, &v)| v * x[c]).sum())
    }

    /// Adds `alpha * row_i` into the dense accumulator `acc`.
    ///
    /// # Errors
    /// Returns [`LinalgError::ShapeMismatch`] if `acc.len() != ncols()`.
    pub fn scatter_row(&self, i: usize, alpha: f64, acc: &mut [f64]) -> Result<()> {
        if acc.len() != self.cols {
            return Err(LinalgError::ShapeMismatch {
                op: "CsrMatrix::scatter_row",
                left: (self.rows, self.cols),
                right: (acc.len(), 1),
            });
        }
        let (cols, vals) = self.row(i);
        for (&c, &v) in cols.iter().zip(vals.iter()) {
            acc[c] += alpha * v;
        }
        Ok(())
    }

    /// Sparse matrix-vector product `self * x`.
    ///
    /// # Errors
    /// Returns [`LinalgError::ShapeMismatch`] if `x.len() != ncols()`.
    pub fn spmv(&self, x: &Vector) -> Result<Vector> {
        if x.len() != self.cols {
            return Err(LinalgError::ShapeMismatch {
                op: "CsrMatrix::spmv",
                left: (self.rows, self.cols),
                right: (x.len(), 1),
            });
        }
        let mut out = Vec::with_capacity(self.rows);
        for i in 0..self.rows {
            let (cols, vals) = self.row(i);
            out.push(cols.iter().zip(vals.iter()).map(|(&c, &v)| v * x[c]).sum());
        }
        Ok(Vector::from_vec(out))
    }

    /// Transposed sparse matrix-vector product `self^T * x`.
    ///
    /// # Errors
    /// Returns [`LinalgError::ShapeMismatch`] if `x.len() != nrows()`.
    pub fn transpose_spmv(&self, x: &Vector) -> Result<Vector> {
        if x.len() != self.rows {
            return Err(LinalgError::ShapeMismatch {
                op: "CsrMatrix::transpose_spmv",
                left: (self.cols, self.rows),
                right: (x.len(), 1),
            });
        }
        let mut out = Vector::zeros(self.cols);
        for i in 0..self.rows {
            let xi = x[i];
            if xi == 0.0 {
                continue;
            }
            self.scatter_row(i, xi, &mut out)?;
        }
        Ok(out)
    }

    /// Materialises the dense equivalent (testing / small matrices only).
    pub fn to_dense(&self) -> Matrix {
        let mut dense = Matrix::zeros(self.rows, self.cols);
        for i in 0..self.rows {
            let (cols, vals) = self.row(i);
            for (&c, &v) in cols.iter().zip(vals.iter()) {
                dense[(i, c)] = v;
            }
        }
        dense
    }
}

#[cfg(test)]
mod tests {
    use super::*;

    fn sample() -> CsrMatrix {
        // [[1, 0, 2], [0, 0, 0], [0, 3, 4]]
        CsrMatrix::from_raw(
            3,
            3,
            vec![0, 2, 2, 4],
            vec![0, 2, 1, 2],
            vec![1.0, 2.0, 3.0, 4.0],
        )
        .unwrap()
    }

    #[test]
    fn select_rows_preserves_order_and_content() {
        let m = sample();
        let s = m.select_rows(&[2, 0, 2]);
        assert_eq!(s.nrows(), 3);
        assert_eq!(s.ncols(), 3);
        assert_eq!(s.row(0), m.row(2));
        assert_eq!(s.row(1), m.row(0));
        assert_eq!(s.row(2), m.row(2));
        assert_eq!(s.nnz(), 6);
        // Empty selection yields an empty matrix with the same column count.
        let e = m.select_rows(&[]);
        assert_eq!(e.nrows(), 0);
        assert_eq!(e.ncols(), 3);
        assert_eq!(e.nnz(), 0);
    }

    #[test]
    fn construction_and_accessors() {
        let m = sample();
        assert_eq!(m.nrows(), 3);
        assert_eq!(m.ncols(), 3);
        assert_eq!(m.nnz(), 4);
        assert!((m.density() - 4.0 / 9.0).abs() < 1e-12);
        let (cols, vals) = m.row(2);
        assert_eq!(cols, &[1, 2]);
        assert_eq!(vals, &[3.0, 4.0]);
        let (cols, vals) = m.row(1);
        assert!(cols.is_empty());
        assert!(vals.is_empty());
    }

    #[test]
    fn invalid_structures_are_rejected() {
        assert!(CsrMatrix::from_raw(2, 2, vec![0, 1], vec![0], vec![1.0]).is_err());
        assert!(CsrMatrix::from_raw(1, 2, vec![0, 2], vec![0], vec![1.0]).is_err());
        assert!(CsrMatrix::from_raw(1, 2, vec![0, 1], vec![5], vec![1.0]).is_err());
        assert!(CsrMatrix::from_raw(2, 2, vec![0, 2, 1], vec![0], vec![1.0]).is_err());
        assert!(CsrMatrix::from_raw(1, 2, vec![0, 1], vec![0, 1], vec![1.0, 2.0]).is_err());
    }

    #[test]
    fn spmv_matches_dense() {
        let m = sample();
        let x = Vector::from_vec(vec![1.0, -1.0, 0.5]);
        let sparse = m.spmv(&x).unwrap();
        let dense = m.to_dense().matvec(&x).unwrap();
        assert!((&sparse - &dense).norm2() < 1e-12);
        assert!(m.spmv(&Vector::zeros(2)).is_err());
    }

    #[test]
    fn transpose_spmv_matches_dense() {
        let m = sample();
        let x = Vector::from_vec(vec![2.0, 1.0, -1.0]);
        let sparse = m.transpose_spmv(&x).unwrap();
        let dense = m.to_dense().transpose_matvec(&x).unwrap();
        assert!((&sparse - &dense).norm2() < 1e-12);
        assert!(m.transpose_spmv(&Vector::zeros(4)).is_err());
    }

    #[test]
    fn row_dot_and_scatter() {
        let m = sample();
        let x = Vector::from_vec(vec![1.0, 2.0, 3.0]);
        assert_eq!(m.row_dot(0, &x).unwrap(), 7.0);
        assert_eq!(m.row_dot(1, &x).unwrap(), 0.0);
        let mut acc = Vector::zeros(3);
        m.scatter_row(2, 2.0, &mut acc).unwrap();
        assert_eq!(acc.as_slice(), &[0.0, 6.0, 8.0]);
        assert!(m.row_dot(0, &Vector::zeros(1)).is_err());
        assert!(m.scatter_row(0, 1.0, &mut Vector::zeros(1)).is_err());
    }

    #[test]
    fn dense_round_trip() {
        let dense = Matrix::from_vec(2, 3, vec![0.0, 1.5, 0.0, -2.0, 0.0, 3.0]).unwrap();
        let sparse = CsrMatrix::from_dense(&dense);
        assert_eq!(sparse.nnz(), 3);
        assert_eq!(sparse.to_dense(), dense);
    }
}
