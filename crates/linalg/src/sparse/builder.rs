//! Incremental (COO-style) construction of CSR matrices.

use crate::error::{LinalgError, Result};
use crate::sparse::csr::CsrMatrix;

/// A coordinate-format accumulator that is converted into a [`CsrMatrix`]
/// once all entries have been pushed. Duplicate `(row, col)` entries are
/// summed, matching the usual COO→CSR semantics.
#[derive(Debug, Clone)]
pub struct CooBuilder {
    rows: usize,
    cols: usize,
    entries: Vec<(usize, usize, f64)>,
}

impl CooBuilder {
    /// Creates a builder for a `rows x cols` matrix.
    pub fn new(rows: usize, cols: usize) -> Self {
        Self {
            rows,
            cols,
            entries: Vec::new(),
        }
    }

    /// Records `value` at `(row, col)`; zeros are skipped.
    ///
    /// # Errors
    /// Returns [`LinalgError::IndexOutOfBounds`] for out-of-range indices.
    pub fn push(&mut self, row: usize, col: usize, value: f64) -> Result<()> {
        if row >= self.rows {
            return Err(LinalgError::IndexOutOfBounds {
                index: row,
                len: self.rows,
            });
        }
        if col >= self.cols {
            return Err(LinalgError::IndexOutOfBounds {
                index: col,
                len: self.cols,
            });
        }
        if value != 0.0 {
            self.entries.push((row, col, value));
        }
        Ok(())
    }

    /// Number of recorded (pre-deduplication) entries.
    pub fn len(&self) -> usize {
        self.entries.len()
    }

    /// Whether no entries have been recorded.
    pub fn is_empty(&self) -> bool {
        self.entries.is_empty()
    }

    /// Builds the CSR matrix, summing duplicates.
    pub fn build(mut self) -> CsrMatrix {
        self.entries.sort_by_key(|a| (a.0, a.1));
        let mut row_ptr = Vec::with_capacity(self.rows + 1);
        let mut col_idx = Vec::with_capacity(self.entries.len());
        let mut values = Vec::with_capacity(self.entries.len());
        row_ptr.push(0);
        let mut current_row = 0;
        let mut i = 0;
        while i < self.entries.len() {
            let (r, c, mut v) = self.entries[i];
            // Merge duplicates.
            let mut j = i + 1;
            while j < self.entries.len() && self.entries[j].0 == r && self.entries[j].1 == c {
                v += self.entries[j].2;
                j += 1;
            }
            while current_row < r {
                row_ptr.push(col_idx.len());
                current_row += 1;
            }
            if v != 0.0 {
                col_idx.push(c);
                values.push(v);
            }
            i = j;
        }
        while current_row < self.rows {
            row_ptr.push(col_idx.len());
            current_row += 1;
        }
        CsrMatrix::from_raw(self.rows, self.cols, row_ptr, col_idx, values)
            .expect("builder produces structurally valid CSR")
    }
}

#[cfg(test)]
mod tests {
    use super::*;
    use crate::dense::matrix::Matrix;

    #[test]
    fn builds_expected_matrix() {
        let mut b = CooBuilder::new(2, 3);
        b.push(0, 1, 2.0).unwrap();
        b.push(1, 0, 3.0).unwrap();
        b.push(1, 2, -1.0).unwrap();
        b.push(0, 0, 0.0).unwrap(); // ignored zero
        assert_eq!(b.len(), 3);
        assert!(!b.is_empty());
        let m = b.build();
        let expected = Matrix::from_vec(2, 3, vec![0.0, 2.0, 0.0, 3.0, 0.0, -1.0]).unwrap();
        assert_eq!(m.to_dense(), expected);
    }

    #[test]
    fn duplicates_are_summed_and_cancelled() {
        let mut b = CooBuilder::new(1, 2);
        b.push(0, 0, 1.0).unwrap();
        b.push(0, 0, 2.0).unwrap();
        b.push(0, 1, 1.0).unwrap();
        b.push(0, 1, -1.0).unwrap();
        let m = b.build();
        assert_eq!(m.nnz(), 1);
        assert_eq!(m.row(0), (&[0_usize][..], &[3.0][..]));
    }

    #[test]
    fn out_of_range_is_rejected() {
        let mut b = CooBuilder::new(1, 1);
        assert!(b.push(1, 0, 1.0).is_err());
        assert!(b.push(0, 1, 1.0).is_err());
        assert!(b.is_empty());
    }

    #[test]
    fn empty_and_trailing_rows_are_handled() {
        let b = CooBuilder::new(3, 2);
        let m = b.build();
        assert_eq!(m.nnz(), 0);
        assert_eq!(m.nrows(), 3);

        let mut b = CooBuilder::new(3, 2);
        b.push(0, 0, 1.0).unwrap();
        let m = b.build();
        assert_eq!(m.row(1).0.len(), 0);
        assert_eq!(m.row(2).0.len(), 0);
    }
}
