//! Vector-comparison metrics used by the paper's model-comparison analysis
//! (§6.2: "Model comparison" and question Q4).

use crate::dense::vector::Vector;
use crate::error::{LinalgError, Result};

/// L2 distance between two parameter vectors (the paper's "distance" column).
///
/// # Errors
/// Returns [`LinalgError::ShapeMismatch`] if lengths differ.
pub fn l2_distance(a: &Vector, b: &Vector) -> Result<f64> {
    if a.len() != b.len() {
        return Err(LinalgError::ShapeMismatch {
            op: "l2_distance",
            left: (a.len(), 1),
            right: (b.len(), 1),
        });
    }
    Ok((a - b).norm2())
}

/// Cosine similarity between two parameter vectors (the paper's "similarity"
/// column). Returns 0 if either vector is (numerically) zero.
///
/// # Errors
/// Returns [`LinalgError::ShapeMismatch`] if lengths differ.
pub fn cosine_similarity(a: &Vector, b: &Vector) -> Result<f64> {
    if a.len() != b.len() {
        return Err(LinalgError::ShapeMismatch {
            op: "cosine_similarity",
            left: (a.len(), 1),
            right: (b.len(), 1),
        });
    }
    let na = a.norm2();
    let nb = b.norm2();
    if na == 0.0 || nb == 0.0 {
        return Ok(0.0);
    }
    Ok(a.dot(b)? / (na * nb))
}

/// Coordinate-wise drift between a reference parameter vector and an
/// approximation (the paper's fine-grained Q4 analysis: sign flips and
/// magnitude changes of individual coordinates).
#[derive(Debug, Clone, Copy, PartialEq)]
pub struct CoordinateDrift {
    /// Number of coordinates whose sign differs between the two vectors.
    pub sign_flips: usize,
    /// Largest absolute coordinate-wise difference.
    pub max_abs_change: f64,
    /// Mean absolute coordinate-wise difference.
    pub mean_abs_change: f64,
    /// Largest relative magnitude change `|a_i - b_i| / max(|a_i|, eps)`.
    pub max_relative_change: f64,
}

/// Computes [`CoordinateDrift`] between a reference vector `reference` and an
/// approximation `approx`. Coordinates smaller than `zero_tol` in both
/// vectors are not counted as sign flips.
///
/// # Errors
/// Returns [`LinalgError::ShapeMismatch`] if lengths differ.
pub fn coordinate_drift(
    reference: &Vector,
    approx: &Vector,
    zero_tol: f64,
) -> Result<CoordinateDrift> {
    if reference.len() != approx.len() {
        return Err(LinalgError::ShapeMismatch {
            op: "coordinate_drift",
            left: (reference.len(), 1),
            right: (approx.len(), 1),
        });
    }
    let mut sign_flips = 0;
    let mut max_abs = 0.0_f64;
    let mut sum_abs = 0.0_f64;
    let mut max_rel = 0.0_f64;
    for i in 0..reference.len() {
        let r = reference[i];
        let a = approx[i];
        let diff = (r - a).abs();
        max_abs = max_abs.max(diff);
        sum_abs += diff;
        if r.abs() > zero_tol || a.abs() > zero_tol {
            if r.signum() != a.signum() && r.abs() > zero_tol && a.abs() > zero_tol {
                sign_flips += 1;
            }
            max_rel = max_rel.max(diff / r.abs().max(zero_tol));
        }
    }
    let mean_abs = if reference.is_empty() {
        0.0
    } else {
        sum_abs / reference.len() as f64
    };
    Ok(CoordinateDrift {
        sign_flips,
        max_abs_change: max_abs,
        mean_abs_change: mean_abs,
        max_relative_change: max_rel,
    })
}

#[cfg(test)]
mod tests {
    use super::*;

    #[test]
    fn l2_distance_basics() {
        let a = Vector::from_vec(vec![1.0, 2.0]);
        let b = Vector::from_vec(vec![4.0, 6.0]);
        assert!((l2_distance(&a, &b).unwrap() - 5.0).abs() < 1e-12);
        assert_eq!(l2_distance(&a, &a).unwrap(), 0.0);
        assert!(l2_distance(&a, &Vector::zeros(3)).is_err());
    }

    #[test]
    fn cosine_similarity_basics() {
        let a = Vector::from_vec(vec![1.0, 0.0]);
        let b = Vector::from_vec(vec![0.0, 1.0]);
        assert!(cosine_similarity(&a, &b).unwrap().abs() < 1e-12);
        assert!((cosine_similarity(&a, &a).unwrap() - 1.0).abs() < 1e-12);
        let c = Vector::from_vec(vec![-2.0, 0.0]);
        assert!((cosine_similarity(&a, &c).unwrap() + 1.0).abs() < 1e-12);
        assert_eq!(cosine_similarity(&a, &Vector::zeros(2)).unwrap(), 0.0);
        assert!(cosine_similarity(&a, &Vector::zeros(3)).is_err());
    }

    #[test]
    fn coordinate_drift_counts_sign_flips() {
        let reference = Vector::from_vec(vec![1.0, -2.0, 0.5, 1e-12]);
        let approx = Vector::from_vec(vec![1.1, 2.0, 0.4, -1e-12]);
        let drift = coordinate_drift(&reference, &approx, 1e-9).unwrap();
        assert_eq!(drift.sign_flips, 1);
        assert!((drift.max_abs_change - 4.0).abs() < 1e-12);
        assert!(drift.mean_abs_change > 0.0);
        assert!(drift.max_relative_change >= 2.0);
        assert!(coordinate_drift(&reference, &Vector::zeros(2), 1e-9).is_err());
    }

    #[test]
    fn identical_vectors_have_no_drift() {
        let a = Vector::from_vec(vec![0.3, -0.7, 2.0]);
        let drift = coordinate_drift(&a, &a, 1e-9).unwrap();
        assert_eq!(drift.sign_flips, 0);
        assert_eq!(drift.max_abs_change, 0.0);
        assert_eq!(drift.mean_abs_change, 0.0);
        assert_eq!(drift.max_relative_change, 0.0);
    }
}
