//! # priu-linalg
//!
//! Self-contained dense and sparse linear-algebra substrate for the PrIU
//! reproduction (Wu, Tannen, Davidson, SIGMOD 2020).
//!
//! The original paper runs its dense experiments on PyTorch and its sparse
//! experiments on SciPy. This crate provides the equivalent kernels in pure
//! Rust so that every method compared in the paper (PrIU, PrIU-opt, BaseL,
//! Closed-form, INFL) runs on exactly the same primitives:
//!
//! * [`Matrix`] / [`Vector`] — dense row-major storage with BLAS-like
//!   kernels (`gemv`, `gemm`, rank-k Gram updates, outer products, norms).
//! * [`sparse::CsrMatrix`] — compressed sparse rows with `spmv` /
//!   `transpose_spmv`, used for the RCV1-style sparse workloads (§5.3).
//! * [`decomposition`] — Cholesky, LU (partial pivoting), Householder QR,
//!   symmetric Jacobi eigendecomposition, and randomized / exact truncated
//!   eigendecompositions of Gram forms. The truncated factorisations are the
//!   "SVD over the intermediate results" used by PrIU (§5.1, §5.3); the
//!   symmetric eigendecomposition plus the incremental eigenvalue update is
//!   what PrIU-opt builds on (§5.2, Eq. 17–18).
//! * [`stats`] — vector comparison metrics (L2 distance, cosine similarity,
//!   sign flips) used by the evaluation's model-comparison section (Q4).
//! * [`par`] — the performance layer: a deterministic, lazily-started
//!   persistent worker pool (`PRIU_THREADS`) behind the hot dense and
//!   sparse kernels, plus a coarse-grained [`par::run_tasks`] API for
//!   independent jobs (figure sweeps). Every kernel also has an
//!   allocation-free `_into` variant writing into caller-owned buffers,
//!   and all results are bitwise reproducible for any thread count.
//! * [`simd`] — the microkernel layer underneath everything above:
//!   runtime-dispatched AVX2+FMA implementations (`PRIU_SIMD`) of the
//!   shared inner loops with a portable fallback whose 4-wide accumulator
//!   lanes the SIMD paths reproduce exactly, so results are bitwise
//!   reproducible per SIMD level for any thread count.
//!
//! All numerics are `f64`. The crate is deliberately dependency-free apart
//! from the workspace's own `priu-rng` (random test matrices, randomized
//! range finder), so it builds in fully offline environments.

#![warn(missing_docs)]
#![warn(rust_2018_idioms)]

pub mod dense;
pub mod error;
pub mod par;
pub mod simd;
pub mod sparse;
pub mod stats;

pub mod decomposition {
    //! Matrix decompositions: Cholesky, LU, QR, symmetric eigen, truncated
    //! eigen/SVD of Gram forms.
    pub use crate::dense::decomposition::*;
}

pub use dense::matrix::Matrix;
pub use dense::vector::{axpy_slices, scale_add_slices, Vector};
pub use error::{LinalgError, Result};
pub use sparse::csr::CsrMatrix;
