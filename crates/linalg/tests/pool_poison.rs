//! Worker-panic poisoning of the persistent pool.
//!
//! This test deliberately panics inside a chunk closure *on a worker
//! thread* and asserts the documented poisoning contract. It lives in its
//! own integration-test binary (its own process) so the poisoned global
//! pool cannot leak into unrelated tests.

use std::panic;
use std::sync::atomic::{AtomicBool, Ordering};
use std::time::{Duration, Instant};

use priu_linalg::{par, Matrix};

/// Whether the current thread is one of the pool's workers (they are
/// spawned with a fixed name).
fn on_worker_thread() -> bool {
    std::thread::current()
        .name()
        .is_some_and(|name| name.starts_with("priu-par-worker"))
}

#[test]
fn worker_panic_poisons_the_pool_and_shutdown_clears_it() {
    let worker_panicked = AtomicBool::new(false);

    // Submit a job with many chunks. The submitting thread parks inside its
    // first chunk until a worker has panicked (or a timeout passes), which
    // guarantees the panic happens on a worker thread, not the submitter.
    let result = panic::catch_unwind(|| {
        par::with_threads(4, || {
            par::run_chunks(64, |_c| {
                if on_worker_thread() {
                    worker_panicked.store(true, Ordering::SeqCst);
                    panic!("deliberate worker panic (poisoning test)");
                }
                // Submitter: wait for the poison to land so we never finish
                // the job before a worker had the chance to panic.
                let deadline = Instant::now() + Duration::from_secs(10);
                while !par::pool_is_poisoned() && Instant::now() < deadline {
                    std::thread::yield_now();
                }
            });
        })
    });

    assert!(
        worker_panicked.load(Ordering::SeqCst),
        "test setup: no chunk ever ran on a worker thread"
    );
    // The submitting call itself reports the poison as a panic...
    let payload = result.expect_err("a poisoned job must panic on the submitter");
    let message = payload
        .downcast_ref::<String>()
        .cloned()
        .unwrap_or_default();
    assert!(
        message.contains("poisoned") && message.contains("deliberate worker panic"),
        "unexpected poison message: {message:?}"
    );
    assert!(par::pool_is_poisoned());

    // ...and every later multi-chunk call fails loudly instead of computing
    // on a broken pool.
    let a = Matrix::from_fn(1100, 16, |i, j| (i + j) as f64);
    let x = vec![1.0; 16];
    let later = panic::catch_unwind(|| par::with_threads(4, || a.matvec(&x).unwrap()));
    assert!(
        later.is_err(),
        "multi-chunk kernels must refuse a poisoned pool"
    );

    // Inline paths are unaffected: single-thread calls never touch the pool.
    let serial = par::with_threads(1, || a.matvec(&x).unwrap());

    // Shutdown clears the poison and the pool restarts cleanly.
    par::shutdown_pool();
    assert!(!par::pool_is_poisoned());
    assert_eq!(par::pool_workers(), 0);
    let parallel = par::with_threads(4, || a.matvec(&x).unwrap());
    assert_eq!(serial, parallel, "restarted pool must compute correct bits");
}
