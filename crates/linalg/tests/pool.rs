//! Lifecycle tests for the persistent worker pool behind `priu_linalg::par`.
//!
//! Everything runs inside a single `#[test]` executed in this binary's own
//! process, so the assertions about worker counts and shutdown cannot race
//! against other tests submitting jobs to the same global pool.

use priu_linalg::{par, Matrix};
use priu_rng::Rng64;

fn random_matrix(rows: usize, cols: usize, seed: u64) -> Matrix {
    let mut rng = Rng64::from_seed(seed);
    Matrix::from_fn(rows, cols, |_, _| rng.uniform(-1.0, 1.0))
}

#[test]
fn pool_lifecycle() {
    // Multi-chunk shape: 1100 rows split into >1 chunks of >=256 rows.
    let a = random_matrix(1100, 64, 0x700);
    let x: Vec<f64> = (0..64).map(|i| (i as f64).sin()).collect();
    let t: Vec<f64> = (0..1100).map(|i| (i as f64 * 0.01).cos()).collect();

    // Lazy start: nothing has gone parallel yet, so no workers exist.
    assert_eq!(par::pool_workers(), 0, "pool must start empty");

    // Inline paths never touch the pool: a single-thread call...
    let serial = par::with_threads(1, || a.matvec(&x).unwrap());
    assert_eq!(par::pool_workers(), 0, "threads=1 must not spawn workers");
    // ...and a single-chunk shape even at high thread counts.
    let small = random_matrix(100, 8, 0x701);
    let xs = vec![1.0; 8];
    par::with_threads(4, || small.matvec(&xs).unwrap());
    assert_eq!(
        par::pool_workers(),
        0,
        "single-chunk calls must not spawn workers"
    );

    // First multi-chunk call lazily starts threads-1 workers.
    let parallel = par::with_threads(4, || a.matvec(&x).unwrap());
    assert_eq!(par::pool_workers(), 3, "4 threads = caller + 3 workers");
    assert_eq!(serial, parallel, "pool execution must be bitwise identical");

    // Reuse: many sequential kernel calls reuse the same workers — no
    // thread leak, and results stay deterministic across thread counts.
    let serial_tmv = par::with_threads(1, || a.transpose_matvec(&t).unwrap());
    for _ in 0..50 {
        let mv = par::with_threads(4, || a.matvec(&x).unwrap());
        let tmv = par::with_threads(4, || a.transpose_matvec(&t).unwrap());
        assert_eq!(mv, parallel);
        assert_eq!(tmv, serial_tmv);
        assert_eq!(
            par::pool_workers(),
            3,
            "sequential calls must not leak threads"
        );
    }

    // Lower pinned counts reuse the existing pool without shrinking it;
    // higher counts grow it by exactly the difference (given enough chunks
    // to occupy them — participants are capped at the chunk count).
    par::with_threads(2, || a.matvec(&x).unwrap());
    assert_eq!(par::pool_workers(), 3, "the pool never shrinks on its own");
    par::with_threads(6, || par::run_chunks(8, |_| {}));
    assert_eq!(par::pool_workers(), 5, "6 threads = caller + 5 workers");

    // with_threads stays an actual cap on participants even after the pool
    // has grown past it: a job pinned to 2 threads is executed by at most 2
    // distinct threads (submitter + at most one permit-holding worker).
    let seen = std::sync::Mutex::new(std::collections::HashSet::new());
    par::with_threads(2, || {
        par::run_chunks(16, |_c| {
            seen.lock().unwrap().insert(std::thread::current().id());
            std::thread::sleep(std::time::Duration::from_millis(1));
        });
    });
    let participants = seen.lock().unwrap().len();
    assert!(
        participants <= 2,
        "with_threads(2) must cap participants at 2, saw {participants}"
    );

    // Deterministic under the PRIU_THREADS values CI pins ({1, 4}-style):
    // results are a function of the input alone.
    for threads in [1usize, 4] {
        let mv = par::with_threads(threads, || a.matvec(&x).unwrap());
        let tmv = par::with_threads(threads, || a.transpose_matvec(&t).unwrap());
        let gram = par::with_threads(threads, || a.gram());
        assert_eq!(mv, parallel, "matvec differs at {threads} threads");
        assert_eq!(
            tmv, serial_tmv,
            "transpose_matvec differs at {threads} threads"
        );
        assert_eq!(
            gram,
            par::with_threads(1, || a.gram()),
            "gram differs at {threads} threads"
        );
    }

    // The sparse kernels ride the same pool.
    let csr = priu_linalg::CsrMatrix::from_dense(&a);
    let spmv1 = par::with_threads(1, || csr.spmv(&x).unwrap());
    let spmv4 = par::with_threads(4, || csr.spmv(&x).unwrap());
    assert_eq!(
        spmv1, spmv4,
        "spmv must be bitwise identical across thread counts"
    );
    // Numerically (the sparse and dense kernels use different summation
    // trees, so only closeness is expected here).
    assert!((&spmv1 - &parallel).norm_inf() < 1e-12 * 64.0);

    // Coarse-grained tasks ride the same pool: results come back in task
    // order, the tasks' own nested kernels run inline on their worker
    // threads (bitwise identical to serial execution), and no extra
    // workers appear.
    let workers_before = par::pool_workers();
    let task_results = par::with_threads(4, || {
        par::run_tasks(
            (0..8)
                .map(|k| {
                    let a = &a;
                    let x = &x;
                    move || {
                        let mv = a.matvec(x).unwrap();
                        (k, mv)
                    }
                })
                .collect(),
        )
    });
    for (k, (got_k, mv)) in task_results.iter().enumerate() {
        assert_eq!(*got_k, k, "run_tasks must preserve task order");
        assert_eq!(*mv, parallel, "nested kernels inside tasks must match");
    }
    assert_eq!(
        par::pool_workers(),
        workers_before,
        "run_tasks must reuse the existing pool"
    );

    // Shutdown joins every worker and the next call restarts the pool.
    par::shutdown_pool();
    assert_eq!(par::pool_workers(), 0, "shutdown must join all workers");
    let after_restart = par::with_threads(4, || a.matvec(&x).unwrap());
    assert_eq!(
        after_restart, parallel,
        "restarted pool must compute the same bits"
    );
    assert_eq!(
        par::pool_workers(),
        3,
        "pool restarts lazily after shutdown"
    );

    // Shutdown is idempotent.
    par::shutdown_pool();
    par::shutdown_pool();
    assert_eq!(par::pool_workers(), 0);

    // Shutdown racing in-flight `run_tasks` jobs from other OS threads:
    // every submitted job must complete with correct results (drained, not
    // dropped), every shutdown call must return without deadlocking, and
    // the pool must still work afterwards. Loop a few rounds so shutdowns
    // land in different phases of the jobs.
    let expected = parallel.clone();
    for round in 0..5u64 {
        let submitters: Vec<_> = (0..3)
            .map(|s| {
                let a = a.clone();
                let x = x.clone();
                let expected = expected.clone();
                std::thread::spawn(move || {
                    for _ in 0..4 {
                        let results = par::with_threads(4, || {
                            par::run_tasks(
                                (0..6)
                                    .map(|k| {
                                        let a = &a;
                                        let x = &x;
                                        move || {
                                            std::thread::sleep(std::time::Duration::from_micros(
                                                200 * s + 50,
                                            ));
                                            (k, a.matvec(x).unwrap())
                                        }
                                    })
                                    .collect(),
                            )
                        });
                        for (k, (got_k, mv)) in results.iter().enumerate() {
                            assert_eq!(*got_k, k, "task order lost under shutdown race");
                            assert_eq!(*mv, expected, "task result corrupted under shutdown race");
                        }
                    }
                })
            })
            .collect();
        // Concurrent + repeated shutdowns from the main thread while the
        // submitters hammer the pool.
        for _ in 0..10 {
            par::try_shutdown_pool().expect("shutdown from a non-worker thread must succeed");
            std::thread::sleep(std::time::Duration::from_micros(100 * (round + 1)));
        }
        for handle in submitters {
            handle
                .join()
                .expect("submitter panicked under shutdown race");
        }
        par::shutdown_pool();
        assert_eq!(par::pool_workers(), 0, "round {round}: workers leaked");
    }

    // Two threads shutting down simultaneously: both must return, no
    // worker may survive.
    par::with_threads(4, || a.matvec(&x).unwrap()); // repopulate
    let concurrent: Vec<_> = (0..2)
        .map(|_| std::thread::spawn(par::try_shutdown_pool))
        .collect();
    for handle in concurrent {
        handle.join().unwrap().expect("concurrent shutdown failed");
    }
    assert_eq!(
        par::pool_workers(),
        0,
        "concurrent shutdowns leaked workers"
    );

    // Calling shutdown from inside a pool task is rejected with the typed
    // error instead of self-join deadlocking. Tasks may also run inline on
    // the submitter (which is allowed to shut down), so only tasks that
    // landed on actual pool workers assert the rejection.
    let verdicts = par::with_threads(4, || {
        par::run_tasks(
            (0..8)
                .map(|_| {
                    || {
                        std::thread::sleep(std::time::Duration::from_millis(1));
                        let on_worker = std::thread::current()
                            .name()
                            .is_some_and(|name| name == "priu-par-worker");
                        (on_worker, par::try_shutdown_pool())
                    }
                })
                .collect(),
        )
    });
    let mut worker_calls = 0;
    for (on_worker, verdict) in verdicts {
        if on_worker {
            worker_calls += 1;
            assert!(
                matches!(verdict, Err(par::ShutdownError::CalledFromWorker)),
                "shutdown from a worker must be rejected, got {verdict:?}"
            );
        } else {
            verdict.expect("shutdown from the submitter thread must succeed");
        }
    }
    assert!(
        worker_calls > 0,
        "at least one task must have run on a pool worker"
    );

    // The pool remains fully usable after the torture.
    let survived = par::with_threads(4, || a.matvec(&x).unwrap());
    assert_eq!(survived, parallel, "pool must compute the same bits after");
    par::shutdown_pool();
    assert_eq!(par::pool_workers(), 0);
}
