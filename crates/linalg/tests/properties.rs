//! Property-based tests of the linear-algebra substrate: decomposition
//! invariants that must hold for arbitrary well-conditioned inputs.
//!
//! Inputs are drawn from the workspace's deterministic RNG (one seed per
//! case) rather than an external property-testing framework, so the suite
//! runs in fully offline builds while still sweeping many random instances.

use priu_linalg::decomposition::{Cholesky, GramFactor, Lu, Qr, SymmetricEigen, TruncationMethod};
use priu_linalg::{Matrix, Vector};
use priu_rng::Rng64;

const CASES: u64 = 48;

fn matrix(rng: &mut Rng64, rows: usize, cols: usize) -> Matrix {
    Matrix::from_fn(rows, cols, |_, _| rng.uniform(-1.0, 1.0))
}

fn vector(rng: &mut Rng64, len: usize) -> Vector {
    Vector::from_fn(len, |_| rng.uniform(-1.0, 1.0))
}

#[test]
fn matvec_distributes_over_addition() {
    for case in 0..CASES {
        let mut rng = Rng64::from_seed_stream(0xA001, case);
        let a = matrix(&mut rng, 5, 4);
        let x = vector(&mut rng, 4);
        let y = vector(&mut rng, 4);
        let lhs = a.matvec(&(&x + &y)).unwrap();
        let rhs = &a.matvec(&x).unwrap() + &a.matvec(&y).unwrap();
        assert!((&lhs - &rhs).norm_inf() < 1e-12, "case {case}");
    }
}

#[test]
fn transpose_is_involutive_and_compatible_with_matvec() {
    for case in 0..CASES {
        let mut rng = Rng64::from_seed_stream(0xA002, case);
        let a = matrix(&mut rng, 4, 6);
        let x = vector(&mut rng, 4);
        assert_eq!(a.transpose().transpose(), a.clone());
        let via_transpose = a.transpose().matvec(&x).unwrap();
        let via_dedicated = a.transpose_matvec(&x).unwrap();
        assert!(
            (&via_transpose - &via_dedicated).norm_inf() < 1e-12,
            "case {case}"
        );
    }
}

#[test]
fn gram_matrices_are_symmetric_positive_semidefinite() {
    for case in 0..CASES {
        let mut rng = Rng64::from_seed_stream(0xA003, case);
        let a = matrix(&mut rng, 6, 3);
        let x = vector(&mut rng, 3);
        let g = a.gram();
        assert!(g.asymmetry().unwrap() < 1e-12);
        let quad = x.dot(&g.matvec(&x).unwrap()).unwrap();
        assert!(
            quad >= -1e-10,
            "quadratic form {quad} must be non-negative (case {case})"
        );
    }
}

#[test]
fn cholesky_solves_spd_systems() {
    for case in 0..CASES {
        let mut rng = Rng64::from_seed_stream(0xA004, case);
        let a = matrix(&mut rng, 5, 3);
        let x = vector(&mut rng, 3);
        // A = GᵀG + I is SPD for any G.
        let mut spd = a.gram();
        spd.add_diagonal_mut(1.0).unwrap();
        let b = spd.matvec(&x).unwrap();
        let solved = Cholesky::new(&spd).unwrap().solve(&b).unwrap();
        assert!((&solved - &x).norm_inf() < 1e-8, "case {case}");
    }
}

#[test]
fn lu_solves_diagonally_dominant_systems() {
    for case in 0..CASES {
        let mut rng = Rng64::from_seed_stream(0xA005, case);
        let a = matrix(&mut rng, 4, 4);
        let x = vector(&mut rng, 4);
        let mut dd = a.clone();
        dd.add_diagonal_mut(5.0).unwrap();
        let b = dd.matvec(&x).unwrap();
        let solved = Lu::new(&dd).unwrap().solve(&b).unwrap();
        assert!((&solved - &x).norm_inf() < 1e-8, "case {case}");
    }
}

#[test]
fn qr_reconstructs_and_q_is_orthonormal() {
    for case in 0..CASES {
        let mut rng = Rng64::from_seed_stream(0xA006, case);
        let a = matrix(&mut rng, 6, 3);
        let qr = Qr::new(&a).unwrap();
        let rec = qr.q().matmul(qr.r()).unwrap();
        assert!((&rec - &a).frobenius_norm() < 1e-9, "case {case}");
        let qtq = qr.q().transpose().matmul(qr.q()).unwrap();
        let identity = Matrix::identity(3);
        assert!((&qtq - &identity).frobenius_norm() < 1e-9, "case {case}");
    }
}

#[test]
fn symmetric_eigen_reconstructs_gram_matrices() {
    for case in 0..CASES {
        let mut rng = Rng64::from_seed_stream(0xA007, case);
        let a = matrix(&mut rng, 5, 4);
        let g = a.gram();
        let eig = SymmetricEigen::new(&g).unwrap();
        assert!(
            (&eig.reconstruct() - &g).frobenius_norm() < 1e-8,
            "case {case}"
        );
        // Eigenvalues of a PSD matrix are non-negative and sorted descending.
        for i in 0..eig.values.len() {
            assert!(eig.values[i] >= -1e-9);
            if i + 1 < eig.values.len() {
                assert!(eig.values[i] >= eig.values[i + 1] - 1e-12);
            }
        }
    }
}

#[test]
fn full_rank_truncation_is_exact_and_apply_matches_dense() {
    for case in 0..CASES {
        let mut rng = Rng64::from_seed_stream(0xA008, case);
        let a = matrix(&mut rng, 6, 3);
        let x = vector(&mut rng, 3);
        let weight = rng.uniform(0.1, 2.0);
        let weights = vec![weight; 6];
        let factor = GramFactor::new(a, weights).unwrap();
        let truncated = factor.truncate(3, TruncationMethod::Exact).unwrap();
        let dense = factor.dense();
        assert!(
            (&truncated.dense() - &dense).frobenius_norm() < 1e-8,
            "case {case}"
        );
        let via_factor = factor.apply(&x).unwrap();
        let via_truncated = truncated.apply(&x).unwrap();
        assert!((&via_factor - &via_truncated).norm2() < 1e-8, "case {case}");
    }
}

#[test]
fn eigenvalue_downdate_is_exact_in_trace() {
    for case in 0..CASES {
        let mut rng = Rng64::from_seed_stream(0xA009, case);
        let a = matrix(&mut rng, 6, 3);
        let k = rng.index(6);
        // The trace of M - ΔXᵀΔX equals the sum of the downdated eigenvalues
        // (the diagonal approximation preserves the trace exactly).
        let g = a.gram();
        let eig = SymmetricEigen::new(&g).unwrap();
        let delta = a.select_rows(&[k]);
        let downdated = eig.downdated_eigenvalues(&delta).unwrap();
        let exact = &g - &delta.gram();
        let trace_exact: f64 = (0..3).map(|i| exact[(i, i)]).sum();
        assert!((downdated.sum() - trace_exact).abs() < 1e-9, "case {case}");
    }
}
