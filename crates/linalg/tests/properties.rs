//! Property-based tests of the linear-algebra substrate: decomposition
//! invariants that must hold for arbitrary well-conditioned inputs.

use proptest::prelude::*;
use priu_linalg::decomposition::{Cholesky, GramFactor, Lu, Qr, SymmetricEigen, TruncationMethod};
use priu_linalg::{Matrix, Vector};

/// Strategy: a dense matrix with entries in [-1, 1].
fn matrix(rows: usize, cols: usize) -> impl Strategy<Value = Matrix> {
    proptest::collection::vec(-1.0f64..1.0, rows * cols)
        .prop_map(move |data| Matrix::from_vec(rows, cols, data).expect("sized strategy"))
}

/// Strategy: a vector with entries in [-1, 1].
fn vector(len: usize) -> impl Strategy<Value = Vector> {
    proptest::collection::vec(-1.0f64..1.0, len).prop_map(Vector::from_vec)
}

proptest! {
    #![proptest_config(ProptestConfig::with_cases(48))]

    #[test]
    fn matvec_distributes_over_addition(a in matrix(5, 4), x in vector(4), y in vector(4)) {
        let lhs = a.matvec(&(&x + &y)).unwrap();
        let rhs = &a.matvec(&x).unwrap() + &a.matvec(&y).unwrap();
        prop_assert!((&lhs - &rhs).norm_inf() < 1e-12);
    }

    #[test]
    fn transpose_is_involutive_and_compatible_with_matvec(a in matrix(4, 6), x in vector(4)) {
        prop_assert_eq!(a.transpose().transpose(), a.clone());
        let via_transpose = a.transpose().matvec(&x).unwrap();
        let via_dedicated = a.transpose_matvec(&x).unwrap();
        prop_assert!((&via_transpose - &via_dedicated).norm_inf() < 1e-12);
    }

    #[test]
    fn gram_matrices_are_symmetric_positive_semidefinite(a in matrix(6, 3), x in vector(3)) {
        let g = a.gram();
        prop_assert!(g.asymmetry().unwrap() < 1e-12);
        let quad = x.dot(&g.matvec(&x).unwrap()).unwrap();
        prop_assert!(quad >= -1e-10, "quadratic form {} must be non-negative", quad);
    }

    #[test]
    fn cholesky_solves_spd_systems(a in matrix(5, 3), x in vector(3)) {
        // A = GᵀG + I is SPD for any G.
        let mut spd = a.gram();
        spd.add_diagonal_mut(1.0).unwrap();
        let b = spd.matvec(&x).unwrap();
        let solved = Cholesky::new(&spd).unwrap().solve(&b).unwrap();
        prop_assert!((&solved - &x).norm_inf() < 1e-8);
    }

    #[test]
    fn lu_solves_diagonally_dominant_systems(a in matrix(4, 4), x in vector(4)) {
        let mut dd = a.clone();
        dd.add_diagonal_mut(5.0).unwrap();
        let b = dd.matvec(&x).unwrap();
        let solved = Lu::new(&dd).unwrap().solve(&b).unwrap();
        prop_assert!((&solved - &x).norm_inf() < 1e-8);
    }

    #[test]
    fn qr_reconstructs_and_q_is_orthonormal(a in matrix(6, 3)) {
        let qr = Qr::new(&a).unwrap();
        let rec = qr.q().matmul(qr.r()).unwrap();
        prop_assert!((&rec - &a).frobenius_norm() < 1e-9);
        let qtq = qr.q().transpose().matmul(qr.q()).unwrap();
        let identity = Matrix::identity(3);
        prop_assert!((&qtq - &identity).frobenius_norm() < 1e-9);
    }

    #[test]
    fn symmetric_eigen_reconstructs_gram_matrices(a in matrix(5, 4)) {
        let g = a.gram();
        let eig = SymmetricEigen::new(&g).unwrap();
        prop_assert!((&eig.reconstruct() - &g).frobenius_norm() < 1e-8);
        // Eigenvalues of a PSD matrix are non-negative and sorted descending.
        for i in 0..eig.values.len() {
            prop_assert!(eig.values[i] >= -1e-9);
            if i + 1 < eig.values.len() {
                prop_assert!(eig.values[i] >= eig.values[i + 1] - 1e-12);
            }
        }
    }

    #[test]
    fn full_rank_truncation_is_exact_and_apply_matches_dense(
        a in matrix(6, 3),
        x in vector(3),
        weight in 0.1f64..2.0,
    ) {
        let weights = vec![weight; 6];
        let factor = GramFactor::new(a, weights).unwrap();
        let truncated = factor.truncate(3, TruncationMethod::Exact).unwrap();
        let dense = factor.dense();
        prop_assert!((&truncated.dense() - &dense).frobenius_norm() < 1e-8);
        let via_factor = factor.apply(&x).unwrap();
        let via_truncated = truncated.apply(&x).unwrap();
        prop_assert!((&via_factor - &via_truncated).norm2() < 1e-8);
    }

    #[test]
    fn eigenvalue_downdate_is_exact_in_trace(a in matrix(6, 3), k in 0usize..6) {
        // The trace of M - ΔXᵀΔX equals the sum of the downdated eigenvalues
        // (the diagonal approximation preserves the trace exactly).
        let g = a.gram();
        let eig = SymmetricEigen::new(&g).unwrap();
        let delta = a.select_rows(&[k]);
        let downdated = eig.downdated_eigenvalues(&delta).unwrap();
        let exact = &g - &delta.gram();
        let trace_exact: f64 = (0..3).map(|i| exact[(i, i)]).sum();
        prop_assert!((downdated.sum() - trace_exact).abs() < 1e-9);
    }
}
