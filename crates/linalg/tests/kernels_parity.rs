//! Property suite for the performance layer: every `_into` kernel variant
//! must match its allocating counterpart bitwise, the unrolled/blocked
//! kernels must match straightforward reference implementations numerically,
//! and every kernel — dense and sparse CSR alike — must be **bitwise
//! identical** across thread counts (`PRIU_THREADS ∈ {1, 4}` pinned per
//! call via `par::with_threads`).
//!
//! Shapes are swept over a deterministic seed-per-case grid (the workspace
//! convention replacing proptest) including sizes small enough to stay on
//! the single-chunk inline path and large enough to exercise multi-chunk
//! parallel reductions on the persistent worker pool.

use priu_linalg::par;
use priu_linalg::simd;
use priu_linalg::sparse::CooBuilder;
use priu_linalg::{CsrMatrix, Matrix, Vector};
use priu_rng::Rng64;

/// The SIMD levels this host can execute; thread-count bitwise assertions
/// run under each (cross-level bits differ by FMA's removed roundings, so
/// the guarantee is per level).
fn simd_levels() -> Vec<simd::SimdLevel> {
    simd::available_levels()
}

/// (rows, cols) grid: single-chunk, boundary and multi-chunk shapes, with
/// non-multiples of the unroll width everywhere.
const SHAPES: [(usize, usize); 6] = [(1, 1), (7, 5), (64, 33), (257, 19), (600, 41), (1100, 103)];

fn random_matrix(rows: usize, cols: usize, seed: u64) -> Matrix {
    let mut rng = Rng64::from_seed(seed);
    Matrix::from_fn(rows, cols, |_, _| rng.uniform(-2.0, 2.0))
}

fn random_vec(len: usize, seed: u64) -> Vec<f64> {
    let mut rng = Rng64::from_seed(seed);
    (0..len).map(|_| rng.uniform(-2.0, 2.0)).collect()
}

/// Naive reference kernels — no unrolling, no chunking.
mod reference {
    use priu_linalg::Matrix;

    pub fn matvec(a: &Matrix, x: &[f64]) -> Vec<f64> {
        (0..a.nrows())
            .map(|i| a.row(i).iter().zip(x).map(|(r, v)| r * v).sum())
            .collect()
    }

    pub fn transpose_matvec(a: &Matrix, x: &[f64]) -> Vec<f64> {
        let mut out = vec![0.0; a.ncols()];
        for (i, &xi) in x.iter().enumerate() {
            for (j, &v) in a.row(i).iter().enumerate() {
                out[j] += xi * v;
            }
        }
        out
    }

    pub fn weighted_gram(a: &Matrix, w: Option<&[f64]>) -> Matrix {
        let m = a.ncols();
        let mut out = Matrix::zeros(m, m);
        for i in 0..a.nrows() {
            let wi = w.map_or(1.0, |w| w[i]);
            let row = a.row(i);
            for p in 0..m {
                for q in 0..m {
                    out[(p, q)] += wi * row[p] * row[q];
                }
            }
        }
        out
    }

    pub fn matmul(a: &Matrix, b: &Matrix) -> Matrix {
        let mut out = Matrix::zeros(a.nrows(), b.ncols());
        for i in 0..a.nrows() {
            for j in 0..b.ncols() {
                let mut acc = 0.0;
                for k in 0..a.ncols() {
                    acc += a[(i, k)] * b[(k, j)];
                }
                out[(i, j)] = acc;
            }
        }
        out
    }
}

fn max_abs_diff(a: &[f64], b: &[f64]) -> f64 {
    a.iter()
        .zip(b)
        .fold(0.0_f64, |acc, (x, y)| acc.max((x - y).abs()))
}

#[test]
fn into_variants_match_allocating_counterparts_bitwise() {
    for (case, &(n, m)) in SHAPES.iter().enumerate() {
        let seed = 0xA0 + case as u64;
        let a = random_matrix(n, m, seed);
        let x = random_vec(m, seed ^ 1);
        let t = random_vec(n, seed ^ 2);
        let w = random_vec(n, seed ^ 3);
        let b = random_matrix(m, (case % 3) + 1, seed ^ 4);

        let mut out_n = vec![0.0; n];
        a.matvec_into(&x, &mut out_n).unwrap();
        assert_eq!(out_n, a.matvec(&x).unwrap().into_vec(), "matvec {n}x{m}");

        let mut out_m = vec![0.0; m];
        a.transpose_matvec_into(&t, &mut out_m).unwrap();
        assert_eq!(
            out_m,
            a.transpose_matvec(&t).unwrap().into_vec(),
            "transpose_matvec {n}x{m}"
        );

        let mut gram = Matrix::zeros(0, 0);
        a.weighted_gram_into(Some(&w), &mut gram);
        assert_eq!(gram, a.weighted_gram(Some(&w)), "weighted_gram {n}x{m}");

        let mut prod = Matrix::zeros(0, 0);
        a.matmul_into(&b, &mut prod).unwrap();
        assert_eq!(prod, a.matmul(&b).unwrap(), "matmul {n}x{m}");
    }
}

#[test]
fn kernels_match_naive_references_numerically() {
    for (case, &(n, m)) in SHAPES.iter().enumerate() {
        let seed = 0xB0 + case as u64;
        let a = random_matrix(n, m, seed);
        let x = random_vec(m, seed ^ 1);
        let t = random_vec(n, seed ^ 2);
        let w = random_vec(n, seed ^ 3);
        let b = random_matrix(m, 8, seed ^ 4);
        // Chunked/unrolled summation reassociates, so compare with a
        // tolerance scaled to the reduction length.
        let tol = 1e-12 * (n.max(m) as f64);

        assert!(max_abs_diff(&a.matvec(&x).unwrap(), &reference::matvec(&a, &x)) < tol);
        assert!(
            max_abs_diff(
                &a.transpose_matvec(&t).unwrap(),
                &reference::transpose_matvec(&a, &t)
            ) < tol
        );
        let gram = a.weighted_gram(Some(&w));
        let gram_ref = reference::weighted_gram(&a, Some(&w));
        assert!(max_abs_diff(gram.as_slice(), gram_ref.as_slice()) < tol);
        let prod = a.matmul(&b).unwrap();
        let prod_ref = reference::matmul(&a, &b);
        assert!(max_abs_diff(prod.as_slice(), prod_ref.as_slice()) < tol);
    }
}

#[test]
fn results_are_bitwise_identical_across_thread_counts() {
    for level in simd_levels() {
        for (case, &(n, m)) in SHAPES.iter().enumerate() {
            let seed = 0xC0 + case as u64;
            let a = random_matrix(n, m, seed);
            let x = random_vec(m, seed ^ 1);
            let t = random_vec(n, seed ^ 2);
            let w = random_vec(n, seed ^ 3);
            let b = random_matrix(m, 16, seed ^ 4);

            let run = |threads| {
                simd::with_level(level, || {
                    par::with_threads(threads, || {
                        (
                            a.matvec(&x).unwrap(),
                            a.transpose_matvec(&t).unwrap(),
                            a.weighted_gram(Some(&w)),
                            a.matmul(&b).unwrap(),
                        )
                    })
                })
            };
            let serial = run(1);
            let parallel = run(4);
            // PartialEq on f64 containers is exact equality — the
            // determinism guarantee is bitwise, not approximate.
            assert_eq!(serial.0, parallel.0, "matvec {n}x{m} ({level})");
            assert_eq!(serial.1, parallel.1, "transpose_matvec {n}x{m} ({level})");
            assert_eq!(serial.2, parallel.2, "weighted_gram {n}x{m} ({level})");
            assert_eq!(serial.3, parallel.3, "matmul {n}x{m} ({level})");
        }
    }
}

#[test]
fn unweighted_gram_equals_weighted_gram_with_unit_weights() {
    let a = random_matrix(300, 21, 0xD0);
    let ones = vec![1.0; 300];
    assert_eq!(a.gram(), a.weighted_gram(Some(&ones)));
}

#[test]
fn truncated_apply_into_matches_apply() {
    use priu_linalg::decomposition::{GramFactor, TruncationMethod};
    let a = random_matrix(40, 12, 0xE0);
    let t = GramFactor::unweighted(a)
        .truncate(6, TruncationMethod::Exact)
        .unwrap();
    let w = Vector::from_vec(random_vec(12, 0xE1));
    let via_apply = t.apply(&w).unwrap();
    let mut out = vec![0.0; 12];
    let mut scratch = Vec::new();
    t.apply_into(&w, &mut out, &mut scratch).unwrap();
    assert_eq!(out, via_apply.into_vec());
}

/// Sparse `(rows, cols, nnz_per_row)` grid: single-chunk, boundary and
/// multi-chunk row counts at RCV1-ish per-row densities.
const SPARSE_SHAPES: [(usize, usize, usize); 4] =
    [(7, 5, 2), (300, 40, 6), (600, 90, 12), (1500, 200, 25)];

fn random_csr(rows: usize, cols: usize, nnz_per_row: usize, seed: u64) -> CsrMatrix {
    let mut rng = Rng64::from_seed(seed);
    let mut builder = CooBuilder::new(rows, cols);
    for i in 0..rows {
        for _ in 0..nnz_per_row {
            // Duplicate (i, j) draws are summed by the builder, preserving
            // the sorted-strictly-increasing column invariant.
            let j = rng.index(cols);
            builder.push(i, j, rng.uniform(-2.0, 2.0)).unwrap();
        }
    }
    builder.build()
}

/// A deterministic pseudo-batch of row indices (with repeats) for the
/// replay kernels.
fn batch_rows(nrows: usize, len: usize, seed: u64) -> Vec<usize> {
    let mut rng = Rng64::from_seed(seed);
    (0..len).map(|_| rng.index(nrows)).collect()
}

#[test]
fn sparse_into_variants_match_allocating_counterparts_bitwise() {
    for (case, &(n, m, nnz)) in SPARSE_SHAPES.iter().enumerate() {
        let seed = 0x5A0 + case as u64;
        let a = random_csr(n, m, nnz, seed);
        let x = random_vec(m, seed ^ 1);
        let t = random_vec(n, seed ^ 2);

        let mut out_n = vec![0.0; n];
        a.spmv_into(&x, &mut out_n).unwrap();
        assert_eq!(out_n, a.spmv(&x).unwrap().into_vec(), "spmv {n}x{m}");

        let mut out_m = vec![0.0; m];
        a.transpose_spmv_into(&t, &mut out_m).unwrap();
        assert_eq!(
            out_m,
            a.transpose_spmv(&t).unwrap().into_vec(),
            "transpose_spmv {n}x{m}"
        );

        // The batch replay kernels against their per-row counterparts
        // (bitwise on the single-chunk path; the multi-chunk reduction uses
        // a different summation tree, checked numerically below).
        let rows = batch_rows(n, (n / 2).max(3), seed ^ 3);
        let mut dots = vec![0.0; rows.len()];
        a.rows_dot_into(&rows, &x, &mut dots).unwrap();
        for (k, &i) in rows.iter().enumerate() {
            assert_eq!(dots[k], a.row_dot(i, &x).unwrap(), "rows_dot {n}x{m}");
        }
    }
}

#[test]
fn sparse_kernels_match_dense_equivalents_numerically() {
    for (case, &(n, m, nnz)) in SPARSE_SHAPES.iter().enumerate() {
        let seed = 0x5B0 + case as u64;
        let a = random_csr(n, m, nnz, seed);
        let dense = a.to_dense();
        let x = random_vec(m, seed ^ 1);
        let t = random_vec(n, seed ^ 2);
        let tol = 1e-12 * (n.max(m) as f64);

        let spmv = a.spmv(&x).unwrap();
        let dense_mv = dense.matvec(&x).unwrap();
        assert!(max_abs_diff(&spmv, &dense_mv) < tol, "spmv {n}x{m}");

        let tspmv = a.transpose_spmv(&t).unwrap();
        let dense_tmv = dense.transpose_matvec(&t).unwrap();
        assert!(
            max_abs_diff(&tspmv, &dense_tmv) < tol,
            "transpose_spmv {n}x{m}"
        );

        // scatter_rows_into == Σ_k alphas[k] · row(rows[k]), via the dense
        // selected-rows transpose-matvec.
        let rows = batch_rows(n, n, seed ^ 3);
        let alphas = random_vec(rows.len(), seed ^ 4);
        let mut acc = vec![0.0; m];
        a.scatter_rows_into(&rows, &alphas, &mut acc).unwrap();
        let selected = dense.select_rows(&rows);
        let expected = selected.transpose_matvec(&alphas).unwrap();
        assert!(max_abs_diff(&acc, &expected) < tol, "scatter_rows {n}x{m}");
    }
}

#[test]
fn sparse_results_are_bitwise_identical_across_thread_counts() {
    for level in simd_levels() {
        for (case, &(n, m, nnz)) in SPARSE_SHAPES.iter().enumerate() {
            let seed = 0x5C0 + case as u64;
            let a = random_csr(n, m, nnz, seed);
            let x = random_vec(m, seed ^ 1);
            let t = random_vec(n, seed ^ 2);
            let rows = batch_rows(n, n, seed ^ 3);
            let alphas = random_vec(rows.len(), seed ^ 4);

            let run = |threads| {
                simd::with_level(level, || {
                    par::with_threads(threads, || {
                        let mut dots = vec![0.0; rows.len()];
                        a.rows_dot_into(&rows, &x, &mut dots).unwrap();
                        let mut acc = vec![0.0; m];
                        a.scatter_rows_into(&rows, &alphas, &mut acc).unwrap();
                        (
                            a.spmv(&x).unwrap(),
                            a.transpose_spmv(&t).unwrap(),
                            dots,
                            acc,
                        )
                    })
                })
            };
            let serial = run(1);
            let parallel = run(4);
            // PartialEq on f64 containers is exact equality — the
            // determinism guarantee is bitwise, not approximate.
            assert_eq!(serial.0, parallel.0, "spmv {n}x{m} ({level})");
            assert_eq!(serial.1, parallel.1, "transpose_spmv {n}x{m} ({level})");
            assert_eq!(serial.2, parallel.2, "rows_dot {n}x{m} ({level})");
            assert_eq!(serial.3, parallel.3, "scatter_rows {n}x{m} ({level})");
        }
    }
}

/// Builds a CSR matrix with a heavy-tailed row-length distribution: a few
/// huge rows (RCV1-style frequent-feature rows) among many short ones, so
/// the nnz-balanced chunk decomposition actually separates work by nnz.
fn skewed_csr(rows: usize, cols: usize, seed: u64) -> CsrMatrix {
    let mut rng = Rng64::from_seed(seed);
    let mut builder = CooBuilder::new(rows, cols);
    for i in 0..rows {
        // Rows 0, 97, 194, … carry ~cols/2 entries; the rest carry 3.
        let nnz = if i % 97 == 0 { cols / 2 } else { 3 };
        for _ in 0..nnz {
            let j = rng.index(cols);
            builder.push(i, j, rng.uniform(-2.0, 2.0)).unwrap();
        }
    }
    builder.build()
}

#[test]
fn skewed_row_lengths_stay_bitwise_identical_and_match_dense() {
    // The nnz-balanced chunking closes the ROADMAP skew item: boundaries
    // depend on row_ptr (shape), so results must stay bitwise identical
    // across thread counts on every SIMD level, and numerically equal to
    // the dense equivalents.
    let (n, m) = (1100, 600);
    let a = skewed_csr(n, m, 0x5E0);
    let dense = a.to_dense();
    let x = random_vec(m, 0x5E1);
    let t = random_vec(n, 0x5E2);
    let tol = 1e-12 * (n.max(m) as f64);

    for level in simd_levels() {
        let run = |threads: usize| {
            simd::with_level(level, || {
                par::with_threads(threads, || {
                    (a.spmv(&x).unwrap(), a.transpose_spmv(&t).unwrap())
                })
            })
        };
        let serial = run(1);
        let parallel = run(4);
        assert_eq!(serial.0, parallel.0, "skewed spmv ({level})");
        assert_eq!(serial.1, parallel.1, "skewed transpose_spmv ({level})");

        let dense_mv = dense.matvec(&x).unwrap();
        let dense_tmv = dense.transpose_matvec(&t).unwrap();
        assert!(
            max_abs_diff(&serial.0, &dense_mv) < tol,
            "skewed spmv vs dense ({level})"
        );
        assert!(
            max_abs_diff(&serial.1, &dense_tmv) < tol,
            "skewed transpose_spmv vs dense ({level})"
        );
    }
}

#[test]
fn into_variants_report_shape_mismatches() {
    let a = random_matrix(6, 4, 0xF0);
    assert!(a.matvec_into(&[0.0; 3], &mut [0.0; 6]).is_err());
    assert!(a.matvec_into(&[0.0; 4], &mut [0.0; 5]).is_err());
    assert!(a.transpose_matvec_into(&[0.0; 5], &mut [0.0; 4]).is_err());
    assert!(a.transpose_matvec_into(&[0.0; 6], &mut [0.0; 3]).is_err());
    let mut out = Matrix::zeros(0, 0);
    assert!(a.matmul_into(&random_matrix(5, 2, 0xF1), &mut out).is_err());
}
