//! Torture suite for the blocked decomposition layer: seeded-random
//! SPD / symmetric / rectangular grids up to 512×512 asserting
//!
//! * **reconstruction** — `L·Lᵀ ≈ A`, `Q·R ≈ A`, `V·Λ·Vᵀ ≈ A`;
//! * **orthogonality** — `QᵀQ ≈ I` (QR) and `VᵀV ≈ I` (eigen);
//! * **bitwise equality of the scalar, blocked and pool paths** — the
//!   plain-loop scalar references produce the *same bits* as the blocked
//!   kernels, under `PRIU_THREADS ∈ {1, 4}` pinned per call via
//!   `par::with_threads` (for the Jacobi fallback the scalar reference is an
//!   independent plain-loop reimplementation of the documented round-robin
//!   schedule — same tree, zero shared code with the chunked production
//!   path; the default tridiag + QL pipeline checks `eigen_scalar_into`
//!   against the pool path, and the Jacobi fallback numerically);
//! * **edge cases** — 1×1, panel/chunk-boundary sizes, ill-conditioned
//!   inputs (typed error or finite factor, never a NaN factor), and
//!   non-SPD rejection with the failing pivot index on every path.
//!
//! Sizes deliberately straddle the blocked-Cholesky panel width (64) and
//! the parallel chunk minima, so the suite exercises the inline
//! single-chunk path *and* the persistent-pool multi-chunk path of every
//! decomposition.

use priu_linalg::decomposition::{
    cholesky_factor_into, cholesky_factor_scalar_into, cholesky_solve_into, cholesky_update_into,
    cholesky_update_rank_k_into, cholesky_update_scalar_into, eigen_into, eigen_scalar_into,
    qr_factor_into, qr_factor_per_reflector_into, qr_factor_scalar_into, tridiag_factor_into,
    tridiag_factor_scalar_into, with_eigen_method, Cholesky, EigenMethod, EigenScratch, Qr,
    QrScratch, SymmetricEigen, TridiagScratch, QR_WY_MIN_COLS,
};
use priu_linalg::{par, simd, LinalgError, Matrix, Vector};
use priu_rng::Rng64;

/// The SIMD levels this host can execute — every bitwise assertion runs
/// under each, because the Avx2 level fuses multiply-adds (different bits,
/// same per-level guarantee).
fn simd_levels() -> Vec<simd::SimdLevel> {
    simd::available_levels()
}

fn random_matrix(rows: usize, cols: usize, seed: u64) -> Matrix {
    let mut rng = Rng64::from_seed(seed);
    Matrix::from_fn(rows, cols, |_, _| rng.uniform(-1.0, 1.0))
}

/// A well-conditioned SPD matrix `BᵀB + n·I`.
fn random_spd(n: usize, seed: u64) -> Matrix {
    let b = random_matrix(n, n, seed);
    let mut a = b.gram();
    a.add_diagonal_mut(n as f64).unwrap();
    a
}

/// A random symmetric (indefinite) matrix `(B + Bᵀ) / 2`.
fn random_symmetric(n: usize, seed: u64) -> Matrix {
    let b = random_matrix(n, n, seed);
    Matrix::from_fn(n, n, |i, j| 0.5 * (b[(i, j)] + b[(j, i)]))
}

fn max_abs_diff(a: &Matrix, b: &Matrix) -> f64 {
    assert_eq!(a.shape(), b.shape());
    a.as_slice()
        .iter()
        .zip(b.as_slice())
        .fold(0.0_f64, |acc, (x, y)| acc.max((x - y).abs()))
}

// ---------------------------------------------------------------------------
// Cholesky
// ---------------------------------------------------------------------------

/// Sizes straddling the 64-column panel and the 128-row chunk minimum,
/// up to the 512×512 acceptance shape.
const SPD_SIZES: [usize; 9] = [1, 2, 63, 64, 65, 127, 129, 256, 512];

/// Independent textbook left-looking loop — validates that the exported
/// scalar reference *and* the blocked kernel realise the documented chain.
/// The single shared piece is the per-element `acc − a·b` op
/// ([`simd::fnma`]), which *is* the thing whose rounding the SIMD level
/// controls: mul-then-sub on the portable level, fused on the Avx2 level.
fn textbook_cholesky(a: &Matrix) -> Matrix {
    let n = a.nrows();
    let mut l = Matrix::zeros(n, n);
    for i in 0..n {
        for j in 0..=i {
            let mut sum = a[(i, j)];
            for k in 0..j {
                sum = simd::fnma(sum, l[(i, k)], l[(j, k)]);
            }
            if i == j {
                assert!(sum > 0.0, "textbook reference hit a non-SPD pivot");
                l[(i, j)] = sum.sqrt();
            } else {
                l[(i, j)] = sum / l[(j, j)];
            }
        }
    }
    l
}

#[test]
fn cholesky_scalar_blocked_and_pool_paths_are_bitwise_identical() {
    let mut blocked = Matrix::zeros(0, 0);
    let mut scalar = Matrix::zeros(0, 0);
    for level in simd_levels() {
        simd::with_level(level, || {
            for (case, &n) in SPD_SIZES.iter().enumerate() {
                let a = random_spd(n, 0x10 + case as u64);
                cholesky_factor_scalar_into(&a, &mut scalar).unwrap();
                assert_eq!(
                    scalar,
                    textbook_cholesky(&a),
                    "scalar vs textbook n={n} ({level})"
                );
                for threads in [1usize, 4] {
                    par::with_threads(threads, || cholesky_factor_into(&a, &mut blocked).unwrap());
                    assert_eq!(
                        blocked, scalar,
                        "blocked({threads} threads) vs scalar n={n} ({level})"
                    );
                }
                // The allocating wrapper rides the same kernel.
                assert_eq!(*Cholesky::new(&a).unwrap().factor(), scalar, "n={n}");
            }
        });
    }
}

#[test]
fn cholesky_reconstructs_and_solves() {
    let mut l = Matrix::zeros(0, 0);
    for (case, &n) in SPD_SIZES.iter().enumerate() {
        let a = random_spd(n, 0x30 + case as u64);
        cholesky_factor_into(&a, &mut l).unwrap();
        assert!(l.is_finite(), "n={n}");
        let rec = l.matmul(&l.transpose()).unwrap();
        let tol = 1e-11 * (n as f64) * a.max_abs();
        assert!(
            max_abs_diff(&rec, &a) < tol,
            "L·Lᵀ reconstruction n={n}: {} >= {tol}",
            max_abs_diff(&rec, &a)
        );

        // Solve round-trip through the in-place `_into` substitution.
        let x_true: Vec<f64> = (0..n).map(|i| (i as f64 * 0.7).sin() + 0.1).collect();
        let b = a.matvec(&x_true).unwrap();
        let mut x = vec![0.0; n];
        cholesky_solve_into(&l, &b, &mut x).unwrap();
        let worst = x
            .iter()
            .zip(&x_true)
            .fold(0.0_f64, |acc, (got, want)| acc.max((got - want).abs()));
        assert!(worst < 1e-8 * (n as f64).max(1.0), "solve n={n}: {worst}");
    }
}

#[test]
fn cholesky_rejects_non_spd_with_pivot_index_on_every_path() {
    // Indefinite: definiteness is lost at pivot 2 (the leading 2×2 block is
    // fine, the third pivot is driven negative).
    let mut a = random_spd(5, 0x50);
    a[(2, 2)] = -100.0;
    for i in 0..5 {
        let v = 0.5 * (a[(2, i)] + a[(i, 2)]);
        a[(2, i)] = v;
        a[(i, 2)] = v;
    }
    a[(2, 2)] = -100.0;
    let mut l = Matrix::zeros(0, 0);
    for threads in [1usize, 4] {
        let blocked = par::with_threads(threads, || cholesky_factor_into(&a, &mut l));
        assert!(
            matches!(
                blocked,
                Err(LinalgError::NotPositiveDefinite { pivot: 2, .. })
            ),
            "blocked({threads}) must name pivot 2, got {blocked:?}"
        );
    }
    assert!(matches!(
        cholesky_factor_scalar_into(&a, &mut l),
        Err(LinalgError::NotPositiveDefinite { pivot: 2, .. })
    ));

    // Pivot index survives past the first panel (failure at index 70 > 64).
    let n = 80;
    let mut late = random_spd(n, 0x51);
    // Make row/column 70 a duplicate of row 3 with a strictly smaller
    // diagonal: the Schur complement at pivot 70 is forced below zero.
    for i in 0..n {
        let v = late[(3, i)];
        late[(70, i)] = v;
        late[(i, 70)] = v;
    }
    late[(70, 70)] = late[(3, 3)] - 1.0;
    let result = cholesky_factor_into(&late, &mut l);
    match result {
        Err(LinalgError::NotPositiveDefinite { pivot, .. }) => {
            assert_eq!(pivot, 70, "failure must name the duplicated pivot")
        }
        other => panic!("expected a typed non-SPD error, got {other:?}"),
    }
    let scalar = cholesky_factor_scalar_into(&late, &mut l);
    assert!(matches!(
        scalar,
        Err(LinalgError::NotPositiveDefinite { pivot: 70, .. })
    ));

    // NaN poisoning is reported as the typed error, never a NaN factor.
    let mut poisoned = random_spd(65, 0x52);
    poisoned[(64, 64)] = f64::NAN;
    assert!(matches!(
        cholesky_factor_into(&poisoned, &mut l),
        Err(LinalgError::NotPositiveDefinite { pivot: 64, .. })
    ));
}

#[test]
fn cholesky_survives_ill_conditioning_without_nans() {
    // BᵀB for a rank-deficient-ish B plus a tiny ridge: condition number
    // ~1e12. The factorisation must either succeed with a finite factor or
    // fail with the typed error — never return NaNs or panic.
    let n = 96;
    let thin = random_matrix(n, 3, 0x60);
    let mut a = thin.matmul(&thin.transpose()).unwrap(); // rank 3, PSD
    a.add_diagonal_mut(1e-10).unwrap();
    let mut l = Matrix::zeros(0, 0);
    match cholesky_factor_into(&a, &mut l) {
        Ok(()) => {
            assert!(l.is_finite());
            let rec = l.matmul(&l.transpose()).unwrap();
            assert!(max_abs_diff(&rec, &a) < 1e-8 * a.max_abs().max(1.0));
        }
        Err(LinalgError::NotPositiveDefinite { .. }) => {}
        Err(other) => panic!("unexpected error kind: {other:?}"),
    }
    // Whatever the outcome, scalar and blocked agree on it bitwise.
    let mut scalar = Matrix::zeros(0, 0);
    let blocked_result = cholesky_factor_into(&a, &mut l);
    let scalar_result = cholesky_factor_scalar_into(&a, &mut scalar);
    match (blocked_result, scalar_result) {
        (Ok(()), Ok(())) => assert_eq!(l, scalar),
        (Err(e1), Err(e2)) => assert_eq!(e1, e2),
        (b, s) => panic!("paths disagree: blocked {b:?} vs scalar {s:?}"),
    }
}

// ---------------------------------------------------------------------------
// QR
// ---------------------------------------------------------------------------

/// (rows, cols) straddling the column-chunk minimum (64) and the row-chunk
/// minimum (256), up to the 512-row acceptance shape.
const QR_SHAPES: [(usize, usize); 8] = [
    (1, 1),
    (7, 3),
    (64, 33),
    (129, 64),
    (257, 19),
    (300, 129),
    (512, 128),
    (512, 257),
];

#[test]
fn qr_scalar_blocked_and_pool_paths_are_bitwise_identical() {
    let mut scratch = QrScratch::default();
    let (mut qs, mut rs) = (Matrix::zeros(0, 0), Matrix::zeros(0, 0));
    let (mut qb, mut rb) = (Matrix::zeros(0, 0), Matrix::zeros(0, 0));
    for level in simd_levels() {
        simd::with_level(level, || {
            for (case, &(n, m)) in QR_SHAPES.iter().enumerate() {
                let a = random_matrix(n, m, 0x70 + case as u64);
                qr_factor_scalar_into(&a, &mut qs, &mut rs, &mut scratch).unwrap();
                for threads in [1usize, 4] {
                    par::with_threads(threads, || {
                        qr_factor_into(&a, &mut qb, &mut rb, &mut scratch).unwrap()
                    });
                    assert_eq!(qb, qs, "Q blocked({threads}) vs scalar {n}x{m} ({level})");
                    assert_eq!(rb, rs, "R blocked({threads}) vs scalar {n}x{m} ({level})");
                }
                let qr = Qr::new(&a).unwrap();
                assert_eq!(*qr.q(), qs, "{n}x{m}");
                assert_eq!(*qr.r(), rs, "{n}x{m}");
            }
        });
    }
}

#[test]
fn qr_reconstructs_with_orthonormal_q_and_triangular_r() {
    let mut scratch = QrScratch::default();
    let (mut q, mut r) = (Matrix::zeros(0, 0), Matrix::zeros(0, 0));
    for (case, &(n, m)) in QR_SHAPES.iter().enumerate() {
        let a = random_matrix(n, m, 0x90 + case as u64);
        qr_factor_into(&a, &mut q, &mut r, &mut scratch).unwrap();
        let tol = 1e-12 * (n as f64);

        let rec = q.matmul(&r).unwrap();
        assert!(
            max_abs_diff(&rec, &a) < tol,
            "Q·R reconstruction {n}x{m}: {}",
            max_abs_diff(&rec, &a)
        );

        let qtq = q.transpose().matmul(&q).unwrap();
        assert!(
            max_abs_diff(&qtq, &Matrix::identity(m)) < tol,
            "QᵀQ orthogonality {n}x{m}"
        );

        for i in 0..m {
            for j in 0..i {
                assert!(r[(i, j)].abs() < 1e-12, "R lower triangle {n}x{m}");
            }
        }
    }
}

// ---------------------------------------------------------------------------
// Eigen
// ---------------------------------------------------------------------------

/// Sizes straddling the 8-pair chunk minimum (multi-chunk from n = 32) —
/// kept ≤ 192 because every Jacobi factorisation is Θ(n³) *per sweep* and
/// the suite runs each case on three paths.
const EIGEN_SIZES: [usize; 7] = [1, 2, 5, 31, 33, 64, 192];

/// Independent plain-loop reimplementation of the documented round-robin
/// Jacobi tree (module docs of `priu_linalg::decomposition::eigen`): same
/// schedule, rotation formulas, thresholds and sort — zero shared code with
/// the chunked production path. Bitwise agreement here proves the chunk /
/// pool machinery never alters the computation tree.
fn reference_round_robin_eigen(a: &Matrix) -> (Vec<f64>, Matrix) {
    let n = a.nrows();
    let scale = a.max_abs().max(1.0);
    let tol = 1e-14 * scale;
    let skip_tol = tol * 1e-2;
    let mut m = Matrix::from_fn(n, n, |i, j| 0.5 * (a[(i, j)] + a[(j, i)]));
    let mut qt = Matrix::identity(n);
    let big_n = n + (n & 1);

    let off = |m: &Matrix| {
        let mut off = 0.0;
        for i in 0..n {
            for j in (i + 1)..n {
                off += m[(i, j)] * m[(i, j)];
            }
        }
        off.sqrt()
    };

    for _sweep in 0..100 {
        if off(&m) <= tol {
            break;
        }
        for t in 0..big_n.saturating_sub(1) {
            let last = big_n - 1;
            // Collect the round's rotations from the round-start matrix.
            let mut rots: Vec<(usize, usize, f64, f64)> = Vec::new();
            for k in 0..big_n / 2 {
                let (x, y) = if k == 0 {
                    (last, t % last)
                } else {
                    ((t + k) % last, (t + last - k) % last)
                };
                let (p, r) = (x.min(y), x.max(y));
                if r >= n {
                    continue;
                }
                let apr = m[(p, r)];
                if apr.abs() <= skip_tol {
                    continue;
                }
                let (app, arr) = (m[(p, p)], m[(r, r)]);
                let theta = (arr - app) / (2.0 * apr);
                let tan = if theta >= 0.0 {
                    1.0 / (theta + (1.0 + theta * theta).sqrt())
                } else {
                    -1.0 / (-theta + (1.0 + theta * theta).sqrt())
                };
                let c = 1.0 / (1.0 + tan * tan).sqrt();
                rots.push((p, r, c, tan * c));
            }
            // Row pass, column pass, accumulator pass — pairs disjoint.
            for &(p, r, c, s) in &rots {
                for k in 0..n {
                    let (x, y) = (m[(p, k)], m[(r, k)]);
                    m[(p, k)] = c * x - s * y;
                    m[(r, k)] = s * x + c * y;
                }
            }
            for &(p, r, c, s) in &rots {
                for k in 0..n {
                    let (x, y) = (m[(k, p)], m[(k, r)]);
                    m[(k, p)] = c * x - s * y;
                    m[(k, r)] = s * x + c * y;
                }
            }
            for &(p, r, c, s) in &rots {
                for k in 0..n {
                    let (x, y) = (qt[(p, k)], qt[(r, k)]);
                    qt[(p, k)] = c * x - s * y;
                    qt[(r, k)] = s * x + c * y;
                }
            }
        }
    }
    let diag: Vec<f64> = (0..n).map(|i| m[(i, i)]).collect();
    let mut idx: Vec<usize> = (0..n).collect();
    idx.sort_unstable_by(|&i, &j| diag[j].partial_cmp(&diag[i]).unwrap());
    let values: Vec<f64> = idx.iter().map(|&i| diag[i]).collect();
    let vectors = Matrix::from_fn(n, n, |i, j| qt[(idx[j], i)]);
    (values, vectors)
}

#[test]
fn eigen_scalar_blocked_and_pool_paths_are_bitwise_identical() {
    // The rotation microkernel is deliberately FMA-free, so the plain-loop
    // reference (computed once, outside any level override) must match the
    // production path bitwise on *every* SIMD level — eigenpairs are
    // level-invariant, not merely level-consistent. Pinned to the Jacobi
    // fallback: the reference reimplements the round-robin schedule, not the
    // (default) tridiag + QL pipeline, which has its own parity suite below.
    let mut scratch = EigenScratch::default();
    with_eigen_method(EigenMethod::Jacobi, || {
        for (case, &n) in EIGEN_SIZES.iter().enumerate() {
            let a = random_symmetric(n, 0xB0 + case as u64);
            let (ref_values, ref_vectors) = reference_round_robin_eigen(&a);
            for level in simd_levels() {
                simd::with_level(level, || {
                    for threads in [1usize, 4] {
                        let eig = par::with_threads(threads, || {
                            SymmetricEigen::new_with(&a, &mut scratch)
                        })
                        .unwrap();
                        assert_eq!(
                            eig.values.as_slice(),
                            &ref_values[..],
                            "eigenvalues blocked({threads}) vs scalar reference n={n} ({level})"
                        );
                        assert_eq!(
                            eig.vectors, ref_vectors,
                            "eigenvectors blocked({threads}) vs scalar reference n={n} ({level})"
                        );
                    }
                });
            }
        }
    });
}

#[test]
fn eigen_reconstructs_with_orthonormal_vectors() {
    // Includes a 256 case (pool path at scale) checked for the spectral
    // properties only — the O(n³)-per-sweep reference would dominate the
    // suite's runtime there.
    let mut scratch = EigenScratch::default();
    for (case, &n) in [5usize, 33, 64, 192, 256].iter().enumerate() {
        let a = random_symmetric(n, 0xD0 + case as u64);
        let serial = par::with_threads(1, || SymmetricEigen::new_with(&a, &mut scratch)).unwrap();
        let pooled = par::with_threads(4, || SymmetricEigen::new_with(&a, &mut scratch)).unwrap();
        assert_eq!(serial.values, pooled.values, "n={n}");
        assert_eq!(serial.vectors, pooled.vectors, "n={n}");

        let tol = 1e-10 * (n as f64).max(1.0);
        let rec = serial.reconstruct();
        assert!(
            max_abs_diff(&rec, &a) < tol,
            "V·Λ·Vᵀ reconstruction n={n}: {}",
            max_abs_diff(&rec, &a)
        );
        let vtv = serial.vectors.transpose().matmul(&serial.vectors).unwrap();
        assert!(
            max_abs_diff(&vtv, &Matrix::identity(n)) < tol,
            "VᵀV orthogonality n={n}"
        );
        // Eigenvalues are sorted descending.
        for w in serial.values.as_slice().windows(2) {
            assert!(w[0] >= w[1], "descending order n={n}");
        }
    }
}

#[test]
fn eigen_of_spd_gram_matches_cholesky_determinant() {
    // Cross-decomposition consistency on one mid-sized SPD matrix: the
    // product of eigenvalues equals det(A) computed from the Cholesky
    // factor (via log-determinants, which are robust at this scale).
    let a = random_spd(65, 0xE0);
    let eig = SymmetricEigen::new(&a).unwrap();
    let chol = Cholesky::new(&a).unwrap();
    let log_det_eig: f64 = eig.values.as_slice().iter().map(|v| v.ln()).sum();
    let log_det_chol = chol.log_determinant();
    assert!(
        (log_det_eig - log_det_chol).abs() < 1e-8 * log_det_chol.abs().max(1.0),
        "log-det: eigen {log_det_eig} vs cholesky {log_det_chol}"
    );
}

#[test]
fn decompositions_compose_under_nested_parallel_sections() {
    // A decomposition invoked from inside a `with_threads` override and a
    // second one nested behind it must still match the scalar references
    // bitwise (the pool runs nested kernels inline on worker threads).
    let a = random_spd(150, 0xF0);
    let sym = random_symmetric(40, 0xF1);
    let mut scalar = Matrix::zeros(0, 0);
    cholesky_factor_scalar_into(&a, &mut scalar).unwrap();
    let (ref_values, _) = reference_round_robin_eigen(&sym);
    par::with_threads(4, || {
        let mut l = Matrix::zeros(0, 0);
        cholesky_factor_into(&a, &mut l).unwrap();
        assert_eq!(l, scalar);
        let eig = with_eigen_method(EigenMethod::Jacobi, || SymmetricEigen::new(&sym)).unwrap();
        assert_eq!(eig.values.as_slice(), &ref_values[..]);
        // The default tridiag + QL pipeline nests the same way: inside the
        // override it still matches its own scalar reference bitwise.
        let mut pooled = EigenScratch::default();
        let mut reference = EigenScratch::default();
        eigen_into(&sym, &mut pooled).unwrap();
        eigen_scalar_into(&sym, &mut reference).unwrap();
        assert_eq!(pooled.values(), reference.values());
        assert_eq!(pooled.vectors(), reference.vectors());
    });
}

#[test]
fn solve_matches_eigen_inverse_application() {
    // Ax = b solved via Cholesky equals V Λ⁻¹ Vᵀ b within tolerance.
    let a = random_spd(48, 0xF8);
    let b: Vec<f64> = (0..48).map(|i| (i as f64 * 0.3).cos()).collect();
    let chol = Cholesky::new(&a).unwrap();
    let x_chol = chol.solve(&Vector::from_vec(b.clone())).unwrap();
    let eig = SymmetricEigen::new(&a).unwrap();
    let vt_b = eig.vectors.transpose_matvec(&b).unwrap();
    let scaled = Vector::from_fn(48, |i| vt_b[i] / eig.values[i]);
    let x_eig = eig.vectors.matvec(&scaled).unwrap();
    let worst = x_chol
        .as_slice()
        .iter()
        .zip(x_eig.as_slice())
        .fold(0.0_f64, |acc, (p, q)| acc.max((p - q).abs()));
    assert!(worst < 1e-9, "cholesky vs eigen solve: {worst}");
}

// ---------------------------------------------------------------------------
// Tridiagonalization + implicit-shift QL (the default eigen pipeline)
// ---------------------------------------------------------------------------

/// Symmetric sizes straddling every boundary the two-stage pipeline has:
/// the reflector row-chunk minimum, the rank-2 chunk minimum, the QL
/// column-chunk minimum (128), up to the 512×512 acceptance shape.
const TRI_SIZES: [usize; 12] = [1, 2, 3, 5, 31, 33, 64, 65, 127, 129, 256, 512];

fn tridiagonal_from(d: &[f64], e: &[f64]) -> Matrix {
    let n = d.len();
    Matrix::from_fn(n, n, |i, j| {
        if i == j {
            d[i]
        } else if i + 1 == j || j + 1 == i {
            e[i.min(j)]
        } else {
            0.0
        }
    })
}

#[test]
fn tridiag_scalar_blocked_and_pool_paths_are_bitwise_identical() {
    // Both paths share the per-row `simd::dot` / `fnma` microkernels, so the
    // bits agree *per SIMD level* (the Avx2 level fuses, the portable level
    // does not) — exactly the Cholesky / QR contract.
    let mut scratch = TridiagScratch::default();
    let (mut qs, mut qb) = (Matrix::zeros(0, 0), Matrix::zeros(0, 0));
    let (mut ds, mut es) = (Vec::new(), Vec::new());
    let (mut db, mut eb) = (Vec::new(), Vec::new());
    for level in simd_levels() {
        simd::with_level(level, || {
            for (case, &n) in TRI_SIZES.iter().enumerate() {
                let a = random_symmetric(n, 0x100 + case as u64);
                tridiag_factor_scalar_into(&a, &mut qs, &mut ds, &mut es, &mut scratch).unwrap();
                for threads in [1usize, 4] {
                    par::with_threads(threads, || {
                        tridiag_factor_into(&a, &mut qb, &mut db, &mut eb, &mut scratch).unwrap()
                    });
                    assert_eq!(qb, qs, "Q blocked({threads}) vs scalar n={n} ({level})");
                    assert_eq!(db, ds, "d blocked({threads}) vs scalar n={n} ({level})");
                    assert_eq!(eb, es, "e blocked({threads}) vs scalar n={n} ({level})");
                }
            }
        });
    }
}

#[test]
fn tridiag_reconstructs_with_orthogonal_q() {
    let mut scratch = TridiagScratch::default();
    let mut q = Matrix::zeros(0, 0);
    let (mut d, mut e) = (Vec::new(), Vec::new());
    for (case, &n) in [1usize, 2, 5, 33, 65, 129, 256, 512].iter().enumerate() {
        let a = random_symmetric(n, 0x120 + case as u64);
        tridiag_factor_into(&a, &mut q, &mut d, &mut e, &mut scratch).unwrap();
        let t = tridiagonal_from(&d, &e);
        let rec = q.matmul(&t).unwrap().matmul(&q.transpose()).unwrap();
        let tol = 1e-12 * (n as f64).max(1.0);
        assert!(
            max_abs_diff(&rec, &a) < tol,
            "Q·T·Qᵀ reconstruction n={n}: {}",
            max_abs_diff(&rec, &a)
        );
        let qtq = q.transpose().matmul(&q).unwrap();
        assert!(
            max_abs_diff(&qtq, &Matrix::identity(n)) < tol,
            "QᵀQ orthogonality n={n}"
        );
    }
}

#[test]
fn eigen_pipeline_scalar_blocked_and_pool_paths_are_bitwise_identical() {
    // `eigen_scalar_into` runs the plain-loop tridiagonalisation and the
    // serial QL rotation application; the production path chunks both
    // through the pool. Same summation tree per SIMD level, same bits.
    let mut blocked = EigenScratch::default();
    let mut reference = EigenScratch::default();
    for level in simd_levels() {
        simd::with_level(level, || {
            for (case, &n) in [1usize, 2, 5, 31, 33, 64, 65, 127, 129, 256]
                .iter()
                .enumerate()
            {
                let a = random_symmetric(n, 0x140 + case as u64);
                eigen_scalar_into(&a, &mut reference).unwrap();
                for threads in [1usize, 4] {
                    par::with_threads(threads, || eigen_into(&a, &mut blocked).unwrap());
                    assert_eq!(
                        blocked.values(),
                        reference.values(),
                        "eigenvalues blocked({threads}) vs scalar n={n} ({level})"
                    );
                    assert_eq!(
                        blocked.vectors(),
                        reference.vectors(),
                        "eigenvectors blocked({threads}) vs scalar n={n} ({level})"
                    );
                }
            }
        });
    }
}

#[test]
fn eigen_pipeline_agrees_with_jacobi_numerically() {
    // Different algorithms, different bits — but the same spectrum and the
    // same invariant subspaces. Eigenvalues compare elementwise (both sort
    // descending); eigenvectors compare through the reconstruction, which is
    // basis-independent.
    let mut pipeline = EigenScratch::default();
    for (case, &n) in [2usize, 5, 31, 64, 127, 192].iter().enumerate() {
        let a = random_symmetric(n, 0x160 + case as u64);
        eigen_into(&a, &mut pipeline).unwrap();
        let jacobi = with_eigen_method(EigenMethod::Jacobi, || SymmetricEigen::new(&a)).unwrap();
        let tol = 1e-10 * (n as f64).max(1.0);
        for (i, (got, want)) in pipeline
            .values()
            .iter()
            .zip(jacobi.values.as_slice())
            .enumerate()
        {
            assert!(
                (got - want).abs() < tol,
                "eigenvalue {i} n={n}: tridiag+QL {got} vs Jacobi {want}"
            );
        }
        let lambda = Matrix::from_fn(n, n, |i, j| if i == j { pipeline.values()[i] } else { 0.0 });
        let v = pipeline.vectors();
        let rec = v.matmul(&lambda).unwrap().matmul(&v.transpose()).unwrap();
        assert!(
            max_abs_diff(&rec, &a) < tol,
            "V·Λ·Vᵀ reconstruction n={n}: {}",
            max_abs_diff(&rec, &a)
        );
        let vtv = v.transpose().matmul(v).unwrap();
        assert!(
            max_abs_diff(&vtv, &Matrix::identity(n)) < tol,
            "VᵀV orthogonality n={n}"
        );
    }
}

#[test]
fn eigen_pipeline_resolves_clustered_eigenvalues() {
    // A = Q·D·Qᵀ with a heavily clustered spectrum (repeated eigenvalues
    // force the QL deflation logic down the degenerate branch, and panel
    // sizes 65/129 put the cluster across chunk boundaries). The recovered
    // spectrum must match D and the reconstruction must close even though
    // the eigenbasis inside a cluster is not unique.
    let mut scratch = EigenScratch::default();
    let mut qr_scratch = QrScratch::default();
    let (mut q, mut r) = (Matrix::zeros(0, 0), Matrix::zeros(0, 0));
    for (case, &n) in [65usize, 129].iter().enumerate() {
        // Exact-multiplicity spectrum: half at 4, a quarter at −2, rest spread.
        let spectrum: Vec<f64> = (0..n)
            .map(|i| {
                if i < n / 2 {
                    4.0
                } else if i < 3 * n / 4 {
                    -2.0
                } else {
                    (i as f64) / (n as f64)
                }
            })
            .collect();
        let m = random_matrix(n, n, 0x180 + case as u64);
        qr_factor_into(&m, &mut q, &mut r, &mut qr_scratch).unwrap();
        let d = Matrix::from_fn(n, n, |i, j| if i == j { spectrum[i] } else { 0.0 });
        let a = q.matmul(&d).unwrap().matmul(&q.transpose()).unwrap();

        eigen_into(&a, &mut scratch).unwrap();
        let mut want = spectrum.clone();
        want.sort_unstable_by(|x, y| y.partial_cmp(x).unwrap());
        let tol = 1e-10 * (n as f64);
        for (i, (got, want)) in scratch.values().iter().zip(&want).enumerate() {
            assert!(
                (got - want).abs() < tol,
                "clustered eigenvalue {i} n={n}: got {got}, want {want}"
            );
        }
        let v = scratch.vectors();
        let lambda = Matrix::from_fn(n, n, |i, j| if i == j { scratch.values()[i] } else { 0.0 });
        let rec = v.matmul(&lambda).unwrap().matmul(&v.transpose()).unwrap();
        assert!(
            max_abs_diff(&rec, &a) < tol,
            "clustered reconstruction n={n}: {}",
            max_abs_diff(&rec, &a)
        );
        let vtv = v.transpose().matmul(v).unwrap();
        assert!(
            max_abs_diff(&vtv, &Matrix::identity(n)) < tol,
            "clustered VᵀV orthogonality n={n}"
        );
    }
}

// ---------------------------------------------------------------------------
// Compact-WY vs per-reflector QR
// ---------------------------------------------------------------------------

/// Panel-boundary shapes around `QR_NB = 32` on top of the main grid.
const WY_EXTRA_SHAPES: [(usize, usize); 4] = [(32, 32), (33, 33), (64, 64), (96, 65)];

#[test]
fn compact_wy_qr_matches_per_reflector_numerically() {
    // The WY aggregation reassociates the trailing update (two pool matmuls
    // instead of m rank-1 applies), so the bits differ — but on a full-rank
    // input the thin Householder Q/R pair is unique given the sign
    // convention, so both drivers converge to the same factors numerically.
    // Random dense matrices are full column rank (rows ≥ cols throughout).
    let mut scratch = QrScratch::default();
    let (mut q_wy, mut r_wy) = (Matrix::zeros(0, 0), Matrix::zeros(0, 0));
    let (mut q_pr, mut r_pr) = (Matrix::zeros(0, 0), Matrix::zeros(0, 0));
    let (mut q_pr4, mut r_pr4) = (Matrix::zeros(0, 0), Matrix::zeros(0, 0));
    let shapes = QR_SHAPES.iter().chain(WY_EXTRA_SHAPES.iter());
    for (case, &(n, m)) in shapes.enumerate() {
        let a = random_matrix(n, m, 0x1A0 + case as u64);
        qr_factor_into(&a, &mut q_wy, &mut r_wy, &mut scratch).unwrap();
        qr_factor_per_reflector_into(&a, &mut q_pr, &mut r_pr, &mut scratch).unwrap();
        let tol = 1e-11 * (n as f64).max(1.0);
        assert!(
            max_abs_diff(&q_wy, &q_pr) < tol,
            "Q compact-WY vs per-reflector {n}x{m}: {}",
            max_abs_diff(&q_wy, &q_pr)
        );
        assert!(
            max_abs_diff(&r_wy, &r_pr) < tol,
            "R compact-WY vs per-reflector {n}x{m}: {}",
            max_abs_diff(&r_wy, &r_pr)
        );
        // The surviving per-reflector driver keeps its own pool-invariance
        // guarantee: 1 thread and 4 threads produce identical bits.
        par::with_threads(4, || {
            qr_factor_per_reflector_into(&a, &mut q_pr4, &mut r_pr4, &mut scratch).unwrap()
        });
        let serial = par::with_threads(1, || {
            qr_factor_per_reflector_into(&a, &mut q_pr, &mut r_pr, &mut scratch)
        });
        serial.unwrap();
        assert_eq!(q_pr4, q_pr, "per-reflector pool invariance Q {n}x{m}");
        assert_eq!(r_pr4, r_pr, "per-reflector pool invariance R {n}x{m}");
    }
}

#[test]
#[allow(clippy::assertions_on_constants)]
fn qr_width_switch_pins_equivalence_at_the_wy_crossover() {
    // BENCH_7 bounds the crossover: per-reflector wins at 512×128 on one
    // CPU, compact-WY wins by 512×257 — the switch must sit between them.
    assert!(QR_WY_MIN_COLS > 128 && QR_WY_MIN_COLS <= 257);
    let mut scratch = QrScratch::default();
    let (mut q1, mut r1) = (Matrix::zeros(0, 0), Matrix::zeros(0, 0));
    let (mut q2, mut r2) = (Matrix::zeros(0, 0), Matrix::zeros(0, 0));

    // One column below the switch the public entry point IS the
    // per-reflector driver — bitwise, not merely close.
    let narrow = random_matrix(320, QR_WY_MIN_COLS - 1, 0x1B0);
    qr_factor_into(&narrow, &mut q1, &mut r1, &mut scratch).unwrap();
    qr_factor_per_reflector_into(&narrow, &mut q2, &mut r2, &mut scratch).unwrap();
    assert_eq!(q1, q2, "below-crossover Q must be the per-reflector bits");
    assert_eq!(r1, r2, "below-crossover R must be the per-reflector bits");

    // At the switch compact-WY takes over: same reflector sequence through
    // a reassociated trailing tree, so the factors agree numerically across
    // the crossover.
    let wide = random_matrix(320, QR_WY_MIN_COLS, 0x1B1);
    qr_factor_into(&wide, &mut q1, &mut r1, &mut scratch).unwrap();
    qr_factor_per_reflector_into(&wide, &mut q2, &mut r2, &mut scratch).unwrap();
    let tol = 1e-11 * 320.0;
    assert!(max_abs_diff(&q1, &q2) < tol, "crossover Q drift");
    assert!(max_abs_diff(&r1, &r2) < tol, "crossover R drift");

    // The scalar == blocked == pool contract holds on both sides of the
    // boundary (the scalar reference switches drivers on the same width).
    let (mut qs, mut rs) = (Matrix::zeros(0, 0), Matrix::zeros(0, 0));
    for (case, m) in [QR_WY_MIN_COLS - 1, QR_WY_MIN_COLS].into_iter().enumerate() {
        let a = random_matrix(320, m, 0x1B2 + case as u64);
        qr_factor_scalar_into(&a, &mut qs, &mut rs, &mut scratch).unwrap();
        for threads in [1usize, 4] {
            par::with_threads(threads, || {
                qr_factor_into(&a, &mut q1, &mut r1, &mut scratch).unwrap()
            });
            assert_eq!(q1, qs, "Q blocked({threads}) vs scalar 320x{m}");
            assert_eq!(r1, rs, "R blocked({threads}) vs scalar 320x{m}");
        }
    }
}

// ---------------------------------------------------------------------------
// Rank-1 / rank-k Cholesky updates
// ---------------------------------------------------------------------------

#[test]
fn cholesky_update_scalar_and_kernel_paths_are_bitwise_identical() {
    // The update is FMA-free by construction (rotation element ops perform
    // the same three roundings on every level), so the kernel path must
    // match the plain-loop reference bitwise on every level × thread count.
    // (Across levels the update of a *given* factor is also bit-stable, but
    // the base factorisation is not — FMA — so that is not asserted here.)
    for level in simd_levels() {
        simd::with_level(level, || {
            for (case, &n) in SPD_SIZES.iter().enumerate() {
                let a = random_spd(n, 0x2C0 + case as u64);
                let mut base = Matrix::zeros(0, 0);
                cholesky_factor_into(&a, &mut base).unwrap();
                let x: Vec<f64> = (0..n).map(|i| ((i * 7 % 13) as f64 - 6.0) / 5.0).collect();

                let mut scalar = base.clone();
                let mut carry = x.clone();
                cholesky_update_scalar_into(&mut scalar, &mut carry).unwrap();

                let mut col = Vec::new();
                for threads in [1usize, 4] {
                    let mut kernel = base.clone();
                    let mut carry = x.clone();
                    par::with_threads(threads, || {
                        cholesky_update_into(&mut kernel, &mut carry, &mut col).unwrap()
                    });
                    assert_eq!(
                        kernel, scalar,
                        "update({threads}) vs scalar n={n} ({level})"
                    );
                }
            }
        });
    }
}

#[test]
fn cholesky_update_matches_refactorisation_and_inverts_downdate() {
    for (case, &n) in SPD_SIZES.iter().enumerate() {
        if n < 2 {
            continue;
        }
        let a = random_spd(n, 0x2D0 + case as u64);
        let mut l = Matrix::zeros(0, 0);
        cholesky_factor_into(&a, &mut l).unwrap();
        let x = Vector::from_fn(n, |i| ((i * 11 % 17) as f64 - 8.0) / 7.0);

        // update(L, x) == factor(A + x xᵀ), numerically.
        let mut carry = x.as_slice().to_vec();
        let mut col = Vec::new();
        cholesky_update_into(&mut l, &mut carry, &mut col).unwrap();
        let mut bumped = a.clone();
        bumped.rank_one_update(1.0, &x).unwrap();
        let mut fresh = Matrix::zeros(0, 0);
        cholesky_factor_into(&bumped, &mut fresh).unwrap();
        let tol = 1e-10 * (n as f64).max(1.0);
        let mut worst = 0.0f64;
        for i in 0..n {
            for j in 0..=i {
                worst = worst.max((l[(i, j)] - fresh[(i, j)]).abs());
            }
        }
        assert!(worst < tol, "update vs refactor n={n}: {worst}");

        // Round trip: updating the factor of A − x xᵀ recovers factor(A).
        // (The closed-form engine downdates the Gram matrix itself; the
        // factor-level inverse direction exercises the same identity.)
        let mut shrunk = a.clone();
        shrunk.rank_one_update(-1.0, &x).unwrap();
        let mut round = Matrix::zeros(0, 0);
        if cholesky_factor_into(&shrunk, &mut round).is_err() {
            continue; // x too large for this A: downdate not SPD, skip.
        }
        let mut carry = x.as_slice().to_vec();
        cholesky_update_into(&mut round, &mut carry, &mut col).unwrap();
        let mut orig = Matrix::zeros(0, 0);
        cholesky_factor_into(&a, &mut orig).unwrap();
        let mut worst = 0.0f64;
        for i in 0..n {
            for j in 0..=i {
                worst = worst.max((round[(i, j)] - orig[(i, j)]).abs());
            }
        }
        assert!(worst < tol, "update∘downdate round trip n={n}: {worst}");
    }
}

#[test]
fn cholesky_rank_k_update_matches_gram_growth() {
    let (n, k) = (96, 5);
    let a = random_spd(n, 0x2E0);
    let rows = random_matrix(k, n, 0x2E1);
    let mut l = Matrix::zeros(0, 0);
    cholesky_factor_into(&a, &mut l).unwrap();
    let (mut xbuf, mut col) = (Vec::new(), Vec::new());
    cholesky_update_rank_k_into(&mut l, &rows, &mut xbuf, &mut col).unwrap();

    let mut grown = a.clone();
    for r in 0..k {
        grown
            .rank_one_update(1.0, &Vector::from_vec(rows.row(r).to_vec()))
            .unwrap();
    }
    let mut fresh = Matrix::zeros(0, 0);
    cholesky_factor_into(&grown, &mut fresh).unwrap();
    let mut worst = 0.0f64;
    for i in 0..n {
        for j in 0..=i {
            worst = worst.max((l[(i, j)] - fresh[(i, j)]).abs());
        }
    }
    assert!(worst < 1e-9, "rank-k update vs refactor: {worst}");
}
