//! Bitwise parity suite for the `priu_linalg::simd` microkernel layer:
//! for every dispatched kernel, the production path must produce the
//! *same bits* as a hand-written scalar reference built from that level's
//! element operations — plain mul-then-add on the portable level,
//! [`f64::mul_add`] on the Avx2 level (libm `fma` and hardware `vfmadd`
//! are both correctly rounded, so the reference is exact) — across
//! `PRIU_THREADS ∈ {1, 4}` for the chunked kernels. The cross-level
//! relationship is numeric only, and one test pins down that FMA really
//! does change bits (so the per-level framing is not vacuous).

use priu_linalg::simd::{self, SimdLevel};
use priu_linalg::{par, scale_add_slices, CsrMatrix, Matrix};
use priu_rng::Rng64;

fn levels() -> Vec<SimdLevel> {
    simd::available_levels()
}

fn random_vec(len: usize, seed: u64) -> Vec<f64> {
    let mut rng = Rng64::from_seed(seed);
    (0..len).map(|_| rng.uniform(-2.0, 2.0)).collect()
}

fn random_matrix(rows: usize, cols: usize, seed: u64) -> Matrix {
    let mut rng = Rng64::from_seed(seed);
    Matrix::from_fn(rows, cols, |_, _| rng.uniform(-2.0, 2.0))
}

/// The level's element op: `acc + a·b` with that level's rounding.
fn ref_madd(level: SimdLevel, acc: f64, a: f64, b: f64) -> f64 {
    match level {
        SimdLevel::Portable => acc + a * b,
        SimdLevel::Avx2 => a.mul_add(b, acc),
    }
}

/// Reference dot over the canonical 4-wide lanes: lane `l` accumulates
/// elements `≡ l (mod 4)`, lanes combine `((l0+l1)+l2)+l3`, sequential
/// tail — with the level's element op in every position.
fn ref_dot(level: SimdLevel, a: &[f64], b: &[f64]) -> f64 {
    let mut lanes = [0.0_f64; 4];
    let chunks = a.len() / 4;
    for i in 0..chunks {
        let j = i * 4;
        for (l, lane) in lanes.iter_mut().enumerate() {
            *lane = ref_madd(level, *lane, a[j + l], b[j + l]);
        }
    }
    let mut acc = ((lanes[0] + lanes[1]) + lanes[2]) + lanes[3];
    for j in chunks * 4..a.len() {
        acc = ref_madd(level, acc, a[j], b[j]);
    }
    acc
}

/// Lengths straddling the lane width and the remainder cases.
const LENGTHS: [usize; 8] = [0, 1, 3, 4, 5, 8, 33, 103];

#[test]
fn dot_matches_lane_structured_reference_bitwise() {
    for level in levels() {
        for (case, &len) in LENGTHS.iter().enumerate() {
            let a = random_vec(len, 0x900 + case as u64);
            let b = random_vec(len, 0x910 + case as u64);
            let got = simd::with_level(level, || simd::dot(&a, &b));
            assert_eq!(got, ref_dot(level, &a, &b), "dot len={len} ({level})");
        }
    }
}

#[test]
fn dot4_rows_match_single_dot_bitwise() {
    // dot4's per-row lanes are exactly dot's lanes; the fusion across rows
    // shares loads, never accumulators.
    for level in levels() {
        for (case, &len) in LENGTHS.iter().enumerate() {
            let rows: Vec<Vec<f64>> = (0..4)
                .map(|r| random_vec(len, 0x920 + case as u64 * 8 + r as u64))
                .collect();
            let x = random_vec(len, 0x9F0 + case as u64);
            let got = simd::with_level(level, || {
                simd::dot4(&rows[0], &rows[1], &rows[2], &rows[3], &x)
            });
            for (r, row) in rows.iter().enumerate() {
                assert_eq!(
                    got[r],
                    ref_dot(level, row, &x),
                    "dot4 row {r} len={len} ({level})"
                );
            }
        }
    }
}

#[test]
fn elementwise_kernels_match_references_bitwise() {
    for level in levels() {
        for (case, &len) in LENGTHS.iter().enumerate() {
            let src = random_vec(len, 0xA00 + case as u64);
            let base = random_vec(len, 0xA10 + case as u64);
            let scales = random_vec(len, 0xA20 + case as u64);
            simd::with_level(level, || {
                // axpy: out[j] += α·src[j].
                let mut out = base.clone();
                simd::axpy(&mut out, 1.75, &src);
                for j in 0..len {
                    assert_eq!(
                        out[j],
                        ref_madd(level, base[j], 1.75, src[j]),
                        "axpy ({level})"
                    );
                }

                // scale_add == scale_mut then axpy, bitwise, per level.
                let mut fused = base.clone();
                scale_add_slices(&mut fused, 0.93, -0.61, &src);
                let mut pair = base.clone();
                for p in pair.iter_mut() {
                    *p *= 0.93;
                }
                simd::axpy(&mut pair, -0.61, &src);
                assert_eq!(fused, pair, "scale_add len={len} ({level})");

                // fnma_scaled: out[j] -= scales[j]·v.
                let mut rank1 = base.clone();
                simd::fnma_scaled(&mut rank1, &scales, 1.3);
                for j in 0..len {
                    let want = match level {
                        SimdLevel::Portable => base[j] - scales[j] * 1.3,
                        SimdLevel::Avx2 => (-scales[j]).mul_add(1.3, base[j]),
                    };
                    assert_eq!(rank1[j], want, "fnma_scaled ({level})");
                }

                // rotate_two: level-invariant three-rounding expressions.
                let mut rp = base.clone();
                let mut rr = src.clone();
                simd::rotate_two(&mut rp, &mut rr, 0.8, 0.6);
                for j in 0..len {
                    assert_eq!(rp[j], 0.8 * base[j] - 0.6 * src[j], "rotate p ({level})");
                    assert_eq!(rr[j], 0.6 * base[j] + 0.8 * src[j], "rotate r ({level})");
                }
            });
        }
    }
}

#[test]
fn sparse_kernels_match_lane_structured_references_bitwise() {
    let mut rng = Rng64::from_seed(0xB00);
    for &nnz in &[0usize, 1, 3, 4, 7, 30, 113] {
        let ncols = (4 * nnz).max(8);
        let mut cols: Vec<usize> = Vec::new();
        while cols.len() < nnz {
            let c = rng.index(ncols);
            if !cols.contains(&c) {
                cols.push(c);
            }
        }
        cols.sort_unstable();
        let vals = random_vec(nnz, 0xB10 + nnz as u64);
        let x = random_vec(ncols, 0xB20 + nnz as u64);

        for level in levels() {
            simd::with_level(level, || {
                // Gather dot: the same 4-wide lane tree as the dense dot.
                let gathered: Vec<f64> = cols.iter().map(|&c| x[c]).collect();
                let got = simd::sparse_dot(&cols, &vals, &x);
                assert_eq!(
                    got,
                    ref_dot(level, &vals, &gathered),
                    "sparse_dot nnz={nnz} ({level})"
                );

                // Scatter: element-independent, level's element op per slot.
                let base = random_vec(ncols, 0xB30 + nnz as u64);
                let mut acc = base.clone();
                simd::sparse_scatter(&cols, &vals, -0.7, &mut acc);
                let mut want = base;
                for (k, &c) in cols.iter().enumerate() {
                    want[c] = ref_madd(level, want[c], -0.7, vals[k]);
                }
                assert_eq!(acc, want, "sparse_scatter nnz={nnz} ({level})");
            });
        }
    }
}

#[test]
fn fnma_dot_seq_matches_sequential_reference_bitwise() {
    for level in levels() {
        for (case, &len) in LENGTHS.iter().enumerate() {
            let a = random_vec(len, 0xC00 + case as u64);
            let b = random_vec(len, 0xC10 + case as u64);
            let got = simd::with_level(level, || simd::fnma_dot_seq(2.5, &a, &b));
            let mut want = 2.5;
            for j in 0..len {
                want = match level {
                    SimdLevel::Portable => want - a[j] * b[j],
                    SimdLevel::Avx2 => (-a[j]).mul_add(b[j], want),
                };
            }
            assert_eq!(got, want, "fnma_dot_seq len={len} ({level})");
        }
    }
}

#[test]
fn full_kernels_are_bitwise_stable_per_level_and_numerically_equal_across() {
    // Kernel-level closure: per level the chunked kernels are bitwise
    // reproducible across thread counts (the per-slice parity above plus
    // the shape-only decomposition make this hold by construction — this
    // asserts the composition); across levels they agree numerically.
    let a = random_matrix(700, 57, 0xD00);
    let x = random_vec(57, 0xD01);
    let t = random_vec(700, 0xD02);
    let w = random_vec(700, 0xD03);

    let mut per_level = Vec::new();
    for level in levels() {
        let run = |threads: usize| {
            simd::with_level(level, || {
                par::with_threads(threads, || {
                    (
                        a.matvec(&x).unwrap(),
                        a.transpose_matvec(&t).unwrap(),
                        a.weighted_gram(Some(&w)),
                    )
                })
            })
        };
        let serial = run(1);
        let pooled = run(4);
        assert_eq!(serial.0, pooled.0, "matvec pool ({level})");
        assert_eq!(serial.1, pooled.1, "transpose_matvec pool ({level})");
        assert_eq!(serial.2, pooled.2, "weighted_gram pool ({level})");
        per_level.push(serial);
    }
    if per_level.len() == 2 {
        let (p, v) = (&per_level[0], &per_level[1]);
        let close =
            |u: &[f64], w: &[f64], tol: f64| u.iter().zip(w).all(|(a, b)| (a - b).abs() <= tol);
        assert!(close(&p.0, &v.0, 1e-10), "matvec across levels");
        assert!(close(&p.1, &v.1, 1e-10), "transpose_matvec across levels");
        assert!(
            close(p.2.as_slice(), v.2.as_slice(), 1e-8),
            "gram across levels"
        );
    }
}

#[test]
fn fma_actually_changes_bits_between_levels() {
    // Guard against the suite silently testing nothing: on hosts with
    // AVX2+FMA the levels must produce *different* bits for a dot whose
    // products round. (With exact inputs like small integers they would
    // agree — use irrationals.)
    if !simd::avx2_supported() {
        return;
    }
    let a: Vec<f64> = (1..200).map(|i| 1.0 + (i as f64).sqrt()).collect();
    let b: Vec<f64> = (1..200).map(|i| 1.0 + (i as f64).cbrt()).collect();
    let portable = simd::with_level(SimdLevel::Portable, || simd::dot(&a, &b));
    let avx2 = simd::with_level(SimdLevel::Avx2, || simd::dot(&a, &b));
    assert_ne!(portable, avx2, "FMA must remove intermediate roundings");
    assert!((portable - avx2).abs() < 1e-9, "…but only by rounding");
}

#[test]
fn csr_row_kernels_ride_the_dispatched_microkernels() {
    // End-to-end: CsrMatrix::row_dot / scatter_row produce exactly the
    // microkernel results on every level (they are thin shape-checked
    // wrappers — this pins the wiring).
    let dense = random_matrix(40, 60, 0xE00);
    // Sparsify: zero out ~70% of entries.
    let mut rng = Rng64::from_seed(0xE01);
    let dense = Matrix::from_fn(40, 60, |i, j| {
        if rng.uniform(0.0, 1.0) < 0.7 {
            0.0
        } else {
            dense[(i, j)]
        }
    });
    let csr = CsrMatrix::from_dense(&dense);
    let x = random_vec(60, 0xE02);
    for level in levels() {
        simd::with_level(level, || {
            for i in 0..40 {
                let (cols, vals) = csr.row(i);
                assert_eq!(
                    csr.row_dot(i, &x).unwrap(),
                    simd::sparse_dot(cols, vals, &x),
                    "row_dot row {i} ({level})"
                );
            }
            let mut via_method = vec![0.0; 60];
            csr.scatter_row(7, 1.25, &mut via_method).unwrap();
            let mut via_kernel = vec![0.0; 60];
            let (cols, vals) = csr.row(7);
            simd::sparse_scatter(cols, vals, 1.25, &mut via_kernel);
            assert_eq!(via_method, via_kernel, "scatter_row ({level})");
        });
    }
}
