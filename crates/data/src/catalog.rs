//! Named dataset / hyperparameter configurations mirroring Table 1 and
//! Table 2 of the paper.
//!
//! The sample counts and iteration counts are scaled down from the paper so
//! the whole evaluation runs on a laptop-class machine (the scaling factors
//! are recorded per experiment in `EXPERIMENTS.md`); feature counts, class
//! counts, density and batch-size *ratios* follow the paper. Learning rates
//! are re-tuned for the standardised synthetic analogues (the paper itself
//! notes that its rates had to be adapted to the dirty-data setting).

use crate::dataset::{DenseDataset, SparseDataset};
use crate::synthetic::classification::{
    generate_binary_classification, generate_multiclass_classification, ClassificationConfig,
};
use crate::synthetic::regression::{generate_regression, RegressionConfig};
use crate::synthetic::sparse_text::{generate_sparse_binary, SparseConfig};

/// Training hyperparameters (Table 2: mini-batch size, iteration count,
/// learning rate `η`, regularisation rate `λ`).
#[derive(Debug, Clone, Copy, PartialEq)]
pub struct Hyperparameters {
    /// Mini-batch size `B`.
    pub batch_size: usize,
    /// Number of mb-SGD iterations `τ`.
    pub num_iterations: usize,
    /// Learning rate `η` (constant across iterations, per Lemma 1).
    pub learning_rate: f64,
    /// L2 regularisation rate `λ`.
    pub regularization: f64,
}

/// What kind of synthetic generator backs a spec.
#[derive(Debug, Clone, Copy, PartialEq)]
pub enum GeneratorKind {
    /// Dense linear-regression data (SGEMM stand-in).
    Regression {
        /// Extra uninformative features appended to the feature space
        /// (the "SGEMM (extended)" construction).
        extra_features: usize,
    },
    /// Dense binary classification (HIGGS stand-in).
    Binary,
    /// Dense multiclass classification (Covtype / Heartbeat / CIFAR-10
    /// stand-ins).
    Multiclass {
        /// Number of classes `q`.
        num_classes: usize,
    },
    /// Sparse binary classification (RCV1 stand-in).
    SparseBinary {
        /// Average non-zeros per row.
        nnz_per_row: usize,
    },
}

/// A named dataset + hyperparameter configuration (one row of Table 1 joined
/// with the matching row of Table 2).
#[derive(Debug, Clone, PartialEq)]
pub struct DatasetSpec {
    /// Experiment name as used in the paper (e.g. "Cov (large 1)").
    pub name: String,
    /// Which generator to use.
    pub kind: GeneratorKind,
    /// Number of samples `n` (scaled-down analogue).
    pub num_samples: usize,
    /// Number of base features `m`.
    pub num_features: usize,
    /// Training hyperparameters.
    pub hyper: Hyperparameters,
    /// How many times to repeat-concatenate the base dataset (the paper's
    /// "(extended)" datasets for the repeated-deletion scenario).
    pub repeat_copies: usize,
    /// Generation seed.
    pub seed: u64,
}

/// A generated dataset: dense or sparse, depending on the spec.
#[derive(Debug, Clone)]
pub enum GeneratedDataset {
    /// A dense dataset.
    Dense(DenseDataset),
    /// A sparse dataset.
    Sparse(SparseDataset),
}

impl GeneratedDataset {
    /// The dense dataset, if this is one.
    pub fn as_dense(&self) -> Option<&DenseDataset> {
        match self {
            GeneratedDataset::Dense(d) => Some(d),
            GeneratedDataset::Sparse(_) => None,
        }
    }

    /// The sparse dataset, if this is one.
    pub fn as_sparse(&self) -> Option<&SparseDataset> {
        match self {
            GeneratedDataset::Sparse(d) => Some(d),
            GeneratedDataset::Dense(_) => None,
        }
    }

    /// Number of samples.
    pub fn num_samples(&self) -> usize {
        match self {
            GeneratedDataset::Dense(d) => d.num_samples(),
            GeneratedDataset::Sparse(d) => d.num_samples(),
        }
    }

    /// Number of features.
    pub fn num_features(&self) -> usize {
        match self {
            GeneratedDataset::Dense(d) => d.num_features(),
            GeneratedDataset::Sparse(d) => d.num_features(),
        }
    }
}

impl DatasetSpec {
    /// Total number of model parameters (features × classes for multinomial
    /// models), the quantity the paper's Q7 analysis varies.
    pub fn num_parameters(&self) -> usize {
        match self.kind {
            GeneratorKind::Regression { extra_features } => self.num_features + extra_features,
            GeneratorKind::Binary | GeneratorKind::SparseBinary { .. } => self.num_features,
            GeneratorKind::Multiclass { num_classes } => self.num_features * num_classes,
        }
    }

    /// Number of classes (1 for regression, 2 for binary).
    pub fn num_classes(&self) -> usize {
        match self.kind {
            GeneratorKind::Regression { .. } => 1,
            GeneratorKind::Binary | GeneratorKind::SparseBinary { .. } => 2,
            GeneratorKind::Multiclass { num_classes } => num_classes,
        }
    }

    /// Whether the backing dataset is sparse.
    pub fn is_sparse(&self) -> bool {
        matches!(self.kind, GeneratorKind::SparseBinary { .. })
    }

    /// Returns a copy with the sample count and iteration count scaled by
    /// `factor` (rounded, minimum 1 / 10 respectively). Used by the criterion
    /// micro-benches, which need much smaller workloads than the reproduction
    /// harness.
    pub fn scaled(&self, factor: f64) -> DatasetSpec {
        let mut out = self.clone();
        out.num_samples = ((self.num_samples as f64 * factor).round() as usize).max(32);
        out.hyper.num_iterations =
            ((self.hyper.num_iterations as f64 * factor).round() as usize).max(10);
        out.hyper.batch_size = out.hyper.batch_size.min(out.num_samples);
        out
    }

    /// Generates the dataset (including repeat-concatenation for the
    /// "(extended)" variants).
    pub fn generate(&self) -> GeneratedDataset {
        match self.kind {
            GeneratorKind::Regression { extra_features } => {
                let base = generate_regression(&RegressionConfig {
                    num_samples: self.num_samples,
                    num_features: self.num_features,
                    noise_std: 0.5,
                    num_noise_features: extra_features,
                    seed: self.seed,
                });
                GeneratedDataset::Dense(base.repeat(self.repeat_copies.max(1)))
            }
            GeneratorKind::Binary => {
                let base = generate_binary_classification(&ClassificationConfig {
                    num_samples: self.num_samples,
                    num_features: self.num_features,
                    num_classes: 2,
                    separation: 2.0,
                    label_noise: 1.0,
                    seed: self.seed,
                });
                GeneratedDataset::Dense(base.repeat(self.repeat_copies.max(1)))
            }
            GeneratorKind::Multiclass { num_classes } => {
                let base = generate_multiclass_classification(&ClassificationConfig {
                    num_samples: self.num_samples,
                    num_features: self.num_features,
                    num_classes,
                    separation: 2.5,
                    label_noise: 1.0,
                    seed: self.seed,
                });
                GeneratedDataset::Dense(base.repeat(self.repeat_copies.max(1)))
            }
            GeneratorKind::SparseBinary { nnz_per_row } => {
                let base = generate_sparse_binary(&SparseConfig {
                    num_samples: self.num_samples,
                    num_features: self.num_features,
                    nnz_per_row,
                    informative_fraction: 0.05,
                    seed: self.seed,
                });
                GeneratedDataset::Sparse(base)
            }
        }
    }
}

/// The catalog of all experiment configurations used in §6.
#[derive(Debug, Clone, Default)]
pub struct DatasetCatalog;

impl DatasetCatalog {
    /// All specs, in the order they appear in the paper's tables.
    pub fn all() -> Vec<DatasetSpec> {
        vec![
            Self::sgemm_original(),
            Self::sgemm_extended(),
            Self::cov_small(),
            Self::cov_large1(),
            Self::cov_large2(),
            Self::higgs(),
            Self::heartbeat(),
            Self::rcv1(),
            Self::cifar10(),
            Self::cov_extended(),
            Self::higgs_extended(),
            Self::heartbeat_extended(),
        ]
    }

    /// Looks a spec up by its (case-insensitive) name.
    pub fn by_name(name: &str) -> Option<DatasetSpec> {
        let needle = name.to_lowercase();
        Self::all()
            .into_iter()
            .find(|s| s.name.to_lowercase() == needle)
    }

    /// SGEMM (original): dense linear regression, 18 features.
    pub fn sgemm_original() -> DatasetSpec {
        DatasetSpec {
            name: "SGEMM (original)".to_string(),
            kind: GeneratorKind::Regression { extra_features: 0 },
            num_samples: 20_000,
            num_features: 18,
            hyper: Hyperparameters {
                batch_size: 200,
                num_iterations: 400,
                learning_rate: 5e-3,
                regularization: 0.1,
            },
            repeat_copies: 1,
            seed: 101,
        }
    }

    /// SGEMM (extended): the feature space padded with 300 random features.
    pub fn sgemm_extended() -> DatasetSpec {
        DatasetSpec {
            name: "SGEMM (extended)".to_string(),
            kind: GeneratorKind::Regression {
                extra_features: 300,
            },
            num_samples: 20_000,
            num_features: 18,
            hyper: Hyperparameters {
                batch_size: 200,
                num_iterations: 400,
                learning_rate: 5e-3,
                regularization: 0.1,
            },
            repeat_copies: 1,
            seed: 102,
        }
    }

    /// Cov (small): multinomial, small mini-batch, many iterations.
    pub fn cov_small() -> DatasetSpec {
        DatasetSpec {
            name: "Cov (small)".to_string(),
            kind: GeneratorKind::Multiclass { num_classes: 7 },
            num_samples: 50_000,
            num_features: 54,
            hyper: Hyperparameters {
                batch_size: 200,
                num_iterations: 1_000,
                learning_rate: 0.1,
                regularization: 1e-3,
            },
            repeat_copies: 1,
            seed: 103,
        }
    }

    /// Cov (large 1): multinomial, large mini-batch, few iterations.
    pub fn cov_large1() -> DatasetSpec {
        DatasetSpec {
            name: "Cov (large 1)".to_string(),
            kind: GeneratorKind::Multiclass { num_classes: 7 },
            num_samples: 50_000,
            num_features: 54,
            hyper: Hyperparameters {
                batch_size: 5_000,
                num_iterations: 200,
                learning_rate: 0.1,
                regularization: 1e-3,
            },
            repeat_copies: 1,
            seed: 103,
        }
    }

    /// Cov (large 2): like Cov (large 1) with 3x the iterations.
    pub fn cov_large2() -> DatasetSpec {
        DatasetSpec {
            name: "Cov (large 2)".to_string(),
            kind: GeneratorKind::Multiclass { num_classes: 7 },
            num_samples: 50_000,
            num_features: 54,
            hyper: Hyperparameters {
                batch_size: 5_000,
                num_iterations: 600,
                learning_rate: 0.1,
                regularization: 1e-3,
            },
            repeat_copies: 1,
            seed: 103,
        }
    }

    /// HIGGS: binary, 28 features, many samples.
    pub fn higgs() -> DatasetSpec {
        DatasetSpec {
            name: "HIGGS".to_string(),
            kind: GeneratorKind::Binary,
            num_samples: 100_000,
            num_features: 28,
            hyper: Hyperparameters {
                batch_size: 2_000,
                num_iterations: 500,
                learning_rate: 0.1,
                regularization: 0.01,
            },
            repeat_copies: 1,
            seed: 104,
        }
    }

    /// Heartbeat: multinomial, 188 features, 7 classes.
    pub fn heartbeat() -> DatasetSpec {
        DatasetSpec {
            name: "Heartbeat".to_string(),
            kind: GeneratorKind::Multiclass { num_classes: 7 },
            num_samples: 15_000,
            num_features: 188,
            hyper: Hyperparameters {
                batch_size: 500,
                num_iterations: 300,
                learning_rate: 0.1,
                regularization: 0.01,
            },
            repeat_copies: 1,
            seed: 105,
        }
    }

    /// RCV1: sparse binary, large feature space.
    pub fn rcv1() -> DatasetSpec {
        DatasetSpec {
            name: "RCV1".to_string(),
            kind: GeneratorKind::SparseBinary { nnz_per_row: 60 },
            num_samples: 8_000,
            num_features: 6_000,
            hyper: Hyperparameters {
                batch_size: 500,
                num_iterations: 300,
                learning_rate: 0.05,
                regularization: 1e-4,
            },
            repeat_copies: 1,
            seed: 106,
        }
    }

    /// cifar10: dense multinomial with a large feature space.
    pub fn cifar10() -> DatasetSpec {
        DatasetSpec {
            name: "cifar10".to_string(),
            kind: GeneratorKind::Multiclass { num_classes: 10 },
            num_samples: 10_000,
            num_features: 512,
            hyper: Hyperparameters {
                batch_size: 500,
                num_iterations: 100,
                learning_rate: 0.05,
                regularization: 0.01,
            },
            repeat_copies: 1,
            seed: 107,
        }
    }

    /// Cov (extended): repeat-concatenated Cov for repeated deletions.
    pub fn cov_extended() -> DatasetSpec {
        DatasetSpec {
            name: "Cov (extended)".to_string(),
            kind: GeneratorKind::Multiclass { num_classes: 7 },
            num_samples: 50_000,
            num_features: 54,
            hyper: Hyperparameters {
                batch_size: 1_000,
                num_iterations: 800,
                learning_rate: 0.1,
                regularization: 1e-3,
            },
            repeat_copies: 2,
            seed: 103,
        }
    }

    /// HIGGS (extended): repeat-concatenated HIGGS for repeated deletions.
    pub fn higgs_extended() -> DatasetSpec {
        DatasetSpec {
            name: "HIGGS (extended)".to_string(),
            kind: GeneratorKind::Binary,
            num_samples: 100_000,
            num_features: 28,
            hyper: Hyperparameters {
                batch_size: 2_000,
                num_iterations: 1_000,
                learning_rate: 0.1,
                regularization: 0.01,
            },
            repeat_copies: 2,
            seed: 104,
        }
    }

    /// Heartbeat (extended): repeat-concatenated Heartbeat.
    pub fn heartbeat_extended() -> DatasetSpec {
        DatasetSpec {
            name: "Heartbeat (extended)".to_string(),
            kind: GeneratorKind::Multiclass { num_classes: 7 },
            num_samples: 15_000,
            num_features: 188,
            hyper: Hyperparameters {
                batch_size: 500,
                num_iterations: 500,
                learning_rate: 0.1,
                regularization: 0.01,
            },
            repeat_copies: 2,
            seed: 105,
        }
    }
}

#[cfg(test)]
mod tests {
    use super::*;

    #[test]
    fn catalog_contains_all_paper_configurations() {
        let all = DatasetCatalog::all();
        assert_eq!(all.len(), 12);
        let names: Vec<&str> = all.iter().map(|s| s.name.as_str()).collect();
        assert!(names.contains(&"SGEMM (original)"));
        assert!(names.contains(&"Cov (large 2)"));
        assert!(names.contains(&"RCV1"));
        assert!(names.contains(&"HIGGS (extended)"));
    }

    #[test]
    fn lookup_by_name_is_case_insensitive() {
        assert!(DatasetCatalog::by_name("higgs").is_some());
        assert!(DatasetCatalog::by_name("CIFAR10").is_some());
        assert!(DatasetCatalog::by_name("nope").is_none());
    }

    #[test]
    fn parameter_counts_follow_task_structure() {
        assert_eq!(DatasetCatalog::sgemm_original().num_parameters(), 18);
        assert_eq!(DatasetCatalog::sgemm_extended().num_parameters(), 318);
        assert_eq!(DatasetCatalog::cov_small().num_parameters(), 54 * 7);
        assert_eq!(DatasetCatalog::higgs().num_parameters(), 28);
        assert_eq!(DatasetCatalog::cifar10().num_parameters(), 512 * 10);
        assert_eq!(DatasetCatalog::higgs().num_classes(), 2);
        assert_eq!(DatasetCatalog::sgemm_original().num_classes(), 1);
        assert!(DatasetCatalog::rcv1().is_sparse());
        assert!(!DatasetCatalog::higgs().is_sparse());
    }

    #[test]
    fn scaled_specs_shrink_samples_and_iterations() {
        let base = DatasetCatalog::cov_small();
        let small = base.scaled(0.1);
        assert_eq!(small.num_samples, 5_000);
        assert_eq!(small.hyper.num_iterations, 100);
        assert_eq!(small.hyper.batch_size, 200);
        // Scaling far down clamps to sane minima and batch <= n.
        let tiny = base.scaled(1e-6);
        assert!(tiny.num_samples >= 32);
        assert!(tiny.hyper.num_iterations >= 10);
        assert!(tiny.hyper.batch_size <= tiny.num_samples);
    }

    #[test]
    fn generation_produces_matching_shapes() {
        let spec = DatasetCatalog::cov_small().scaled(0.01);
        let d = spec.generate();
        assert_eq!(d.num_samples(), spec.num_samples);
        assert_eq!(d.num_features(), 54);
        assert!(d.as_dense().is_some());
        assert!(d.as_sparse().is_none());

        let mut sparse_spec = DatasetCatalog::rcv1();
        sparse_spec.num_samples = 100;
        sparse_spec.num_features = 200;
        let s = sparse_spec.generate();
        assert!(s.as_sparse().is_some());
        assert!(s.as_dense().is_none());
        assert_eq!(s.num_samples(), 100);
    }

    #[test]
    fn extended_specs_repeat_the_base_dataset() {
        let mut spec = DatasetCatalog::cov_extended();
        spec.num_samples = 100;
        spec.hyper.batch_size = 10;
        let d = spec.generate();
        assert_eq!(d.num_samples(), 200);
    }
}
