//! # priu-data
//!
//! Dataset substrate for the PrIU reproduction.
//!
//! The paper evaluates on six public datasets (UCI SGEMM, Covtype, HIGGS,
//! RCV1, Kaggle Heartbeat, CIFAR-10). Those files are not available in this
//! offline build, so this crate provides **seeded synthetic generators whose
//! shape matches each dataset**: feature count, class count, dense/sparse
//! layout and (scaled-down) sample count, with labels produced by a ground
//! truth model plus noise so that training converges and validation accuracy
//! is meaningful. The substitution is documented in `DESIGN.md` §3/§4.
//!
//! The crate also provides the experiment plumbing the evaluation needs:
//!
//! * [`dataset`] — dense and sparse dataset containers with train/validation
//!   splits and row selection;
//! * [`standardize`] — feature standardisation fitted on training data;
//! * [`synthetic`] — the generators themselves;
//! * [`dirty`] — dirty-sample injection by rescaling (the cleaning scenario
//!   of §6.2) and random deletion-subset selection (the interpretability
//!   scenario);
//! * [`minibatch`] — deterministic mini-batch schedules shared by training,
//!   retraining and incremental updates;
//! * [`catalog`] — named dataset/hyperparameter configurations mirroring
//!   Table 1 and Table 2 of the paper.

#![warn(missing_docs)]
#![warn(rust_2018_idioms)]

pub mod catalog;
pub mod dataset;
pub mod dirty;
pub mod minibatch;
pub mod rng;
pub mod standardize;
pub mod synthetic;

pub use catalog::{DatasetCatalog, DatasetSpec, Hyperparameters};
pub use dataset::{DenseDataset, Labels, SparseDataset, TaskKind, TrainValidationSplit};
pub use dirty::{inject_dirty_samples, random_subsets, DirtyInjection};
pub use minibatch::BatchSchedule;

/// Convenience prelude bringing the most commonly used types into scope.
pub mod prelude {
    pub use crate::catalog::{DatasetCatalog, DatasetSpec, Hyperparameters};
    pub use crate::dataset::{DenseDataset, Labels, SparseDataset, TaskKind};
    pub use crate::dirty::{inject_dirty_samples, random_subsets};
    pub use crate::minibatch::BatchSchedule;
}
