//! Dataset containers: dense and sparse feature matrices with typed labels.

use crate::rng::seeded_rng;
use priu_linalg::{CsrMatrix, Matrix, Vector};

/// The learning task a dataset is meant for.
#[derive(Debug, Clone, Copy, PartialEq, Eq)]
pub enum TaskKind {
    /// Continuous labels, linear regression (Eq. 2).
    Regression,
    /// Labels in `{-1, +1}`, binary logistic regression (Eq. 3).
    BinaryClassification,
    /// Labels in `{0, .., q-1}`, multinomial logistic regression (Eq. 4).
    MulticlassClassification {
        /// Number of classes `q`.
        num_classes: usize,
    },
}

/// Labels attached to a dataset.
#[derive(Debug, Clone, PartialEq)]
pub enum Labels {
    /// Continuous targets for linear regression.
    Continuous(Vector),
    /// Binary targets encoded as `-1.0` / `+1.0`.
    Binary(Vector),
    /// Multiclass targets encoded as class indices.
    Multiclass {
        /// Class index of each sample.
        classes: Vec<u32>,
        /// Number of classes `q`.
        num_classes: usize,
    },
}

impl Labels {
    /// Number of labelled samples.
    pub fn len(&self) -> usize {
        match self {
            Labels::Continuous(v) | Labels::Binary(v) => v.len(),
            Labels::Multiclass { classes, .. } => classes.len(),
        }
    }

    /// Whether there are no labels.
    pub fn is_empty(&self) -> bool {
        self.len() == 0
    }

    /// The task kind implied by the label type.
    pub fn task(&self) -> TaskKind {
        match self {
            Labels::Continuous(_) => TaskKind::Regression,
            Labels::Binary(_) => TaskKind::BinaryClassification,
            Labels::Multiclass { num_classes, .. } => TaskKind::MulticlassClassification {
                num_classes: *num_classes,
            },
        }
    }

    /// Selects a subset of labels by row index (order preserved).
    ///
    /// # Panics
    /// Panics if an index is out of bounds.
    pub fn select(&self, indices: &[usize]) -> Labels {
        match self {
            Labels::Continuous(v) => {
                Labels::Continuous(Vector::from_vec(indices.iter().map(|&i| v[i]).collect()))
            }
            Labels::Binary(v) => {
                Labels::Binary(Vector::from_vec(indices.iter().map(|&i| v[i]).collect()))
            }
            Labels::Multiclass {
                classes,
                num_classes,
            } => Labels::Multiclass {
                classes: indices.iter().map(|&i| classes[i]).collect(),
                num_classes: *num_classes,
            },
        }
    }

    /// Appends labels of the same kind (the delta engines' addition path).
    ///
    /// # Panics
    /// Panics if the label kinds (or class counts) differ, mirroring the
    /// length assertions of the dataset constructors — the engines validate
    /// task agreement before appending.
    pub fn append(&mut self, other: &Labels) {
        match (self, other) {
            (Labels::Continuous(v), Labels::Continuous(o))
            | (Labels::Binary(v), Labels::Binary(o)) => v.extend_from_slice(o.as_slice()),
            (
                Labels::Multiclass {
                    classes,
                    num_classes,
                },
                Labels::Multiclass {
                    classes: other_classes,
                    num_classes: other_num_classes,
                },
            ) => {
                assert_eq!(
                    *num_classes, *other_num_classes,
                    "class counts must match to append labels"
                );
                classes.extend_from_slice(other_classes);
            }
            _ => panic!("label kinds must match to append"),
        }
    }

    /// The continuous targets, if this is a regression label set.
    pub fn as_continuous(&self) -> Option<&Vector> {
        match self {
            Labels::Continuous(v) => Some(v),
            _ => None,
        }
    }

    /// The `±1` targets, if this is a binary label set.
    pub fn as_binary(&self) -> Option<&Vector> {
        match self {
            Labels::Binary(v) => Some(v),
            _ => None,
        }
    }

    /// The class indices and class count, if this is a multiclass label set.
    pub fn as_multiclass(&self) -> Option<(&[u32], usize)> {
        match self {
            Labels::Multiclass {
                classes,
                num_classes,
            } => Some((classes, *num_classes)),
            _ => None,
        }
    }
}

/// A dense dataset: an `n x m` feature matrix plus labels.
#[derive(Debug, Clone, PartialEq)]
pub struct DenseDataset {
    /// Feature matrix (rows are samples).
    pub x: Matrix,
    /// Labels (one per row of `x`).
    pub labels: Labels,
}

/// A sparse dataset: a CSR feature matrix plus labels.
#[derive(Debug, Clone, PartialEq)]
pub struct SparseDataset {
    /// Sparse feature matrix (rows are samples).
    pub x: CsrMatrix,
    /// Labels (one per row of `x`).
    pub labels: Labels,
}

/// A train/validation split of a dense dataset (the paper uses 90%/10%).
#[derive(Debug, Clone)]
pub struct TrainValidationSplit<D> {
    /// Training portion.
    pub train: D,
    /// Validation portion.
    pub validation: D,
}

impl DenseDataset {
    /// Creates a dataset, checking that features and labels agree in length.
    ///
    /// # Panics
    /// Panics if `x.nrows() != labels.len()`.
    pub fn new(x: Matrix, labels: Labels) -> Self {
        assert_eq!(
            x.nrows(),
            labels.len(),
            "feature rows ({}) and labels ({}) must match",
            x.nrows(),
            labels.len()
        );
        Self { x, labels }
    }

    /// Number of samples.
    pub fn num_samples(&self) -> usize {
        self.x.nrows()
    }

    /// Number of features.
    pub fn num_features(&self) -> usize {
        self.x.ncols()
    }

    /// The task kind implied by the labels.
    pub fn task(&self) -> TaskKind {
        self.labels.task()
    }

    /// Number of model parameters for this task (features × classes for the
    /// multinomial case, matching the paper's Q7 discussion).
    pub fn num_parameters(&self) -> usize {
        match self.task() {
            TaskKind::Regression | TaskKind::BinaryClassification => self.num_features(),
            TaskKind::MulticlassClassification { num_classes } => self.num_features() * num_classes,
        }
    }

    /// Selects a subset of samples by index (order preserved).
    pub fn select(&self, indices: &[usize]) -> DenseDataset {
        DenseDataset {
            x: self.x.select_rows(indices),
            labels: self.labels.select(indices),
        }
    }

    /// Appends the samples of `other` in place (same feature width, same
    /// label kind) — the delta engines' addition path. Nothing is mutated
    /// when the widths differ.
    ///
    /// # Errors
    /// Returns [`priu_linalg::LinalgError::ShapeMismatch`] if the feature
    /// counts differ.
    ///
    /// # Panics
    /// Panics if the label kinds differ (see [`Labels::append`]).
    pub fn append(&mut self, other: &DenseDataset) -> priu_linalg::Result<()> {
        if other.num_features() != self.num_features() {
            return Err(priu_linalg::LinalgError::ShapeMismatch {
                op: "DenseDataset::append",
                left: (self.num_samples(), self.num_features()),
                right: (other.num_samples(), other.num_features()),
            });
        }
        self.labels.append(&other.labels);
        self.x.append_rows(&other.x)
    }

    /// Splits into train/validation with the given training fraction, after a
    /// seeded shuffle (the paper uses 90% / 10%).
    ///
    /// # Panics
    /// Panics if `train_fraction` is not in `(0, 1]`.
    pub fn split(&self, train_fraction: f64, seed: u64) -> TrainValidationSplit<DenseDataset> {
        assert!(
            train_fraction > 0.0 && train_fraction <= 1.0,
            "train_fraction must be in (0, 1], got {train_fraction}"
        );
        let n = self.num_samples();
        let mut indices: Vec<usize> = (0..n).collect();
        let mut rng = seeded_rng(seed, 0xDA7A);
        rng.shuffle(&mut indices);
        let n_train = ((n as f64) * train_fraction).round().max(1.0) as usize;
        let n_train = n_train.min(n);
        let train_idx = &indices[..n_train];
        let val_idx = &indices[n_train..];
        TrainValidationSplit {
            train: self.select(train_idx),
            validation: if val_idx.is_empty() {
                self.select(&[]) // empty validation set
            } else {
                self.select(val_idx)
            },
        }
    }

    /// Concatenates `copies` copies of this dataset (the paper's "extended"
    /// datasets for the repeated-deletion scenario are built this way).
    pub fn repeat(&self, copies: usize) -> DenseDataset {
        if copies <= 1 {
            return self.clone();
        }
        let indices: Vec<usize> = (0..copies).flat_map(|_| 0..self.num_samples()).collect();
        self.select(&indices)
    }
}

impl SparseDataset {
    /// Creates a sparse dataset, checking length agreement.
    ///
    /// # Panics
    /// Panics if `x.nrows() != labels.len()`.
    pub fn new(x: CsrMatrix, labels: Labels) -> Self {
        assert_eq!(
            x.nrows(),
            labels.len(),
            "feature rows ({}) and labels ({}) must match",
            x.nrows(),
            labels.len()
        );
        Self { x, labels }
    }

    /// Number of samples.
    pub fn num_samples(&self) -> usize {
        self.x.nrows()
    }

    /// Number of features.
    pub fn num_features(&self) -> usize {
        self.x.ncols()
    }

    /// The task kind implied by the labels.
    pub fn task(&self) -> TaskKind {
        self.labels.task()
    }

    /// Selects a subset of samples by index (order preserved), like
    /// [`DenseDataset::select`]. Used to shrink a session to the survivors of
    /// a chained deletion.
    ///
    /// # Errors
    /// Returns [`priu_linalg::LinalgError::IndexOutOfBounds`] if an index is
    /// out of bounds (propagated from [`CsrMatrix::select_rows`]).
    pub fn select(&self, indices: &[usize]) -> priu_linalg::Result<SparseDataset> {
        Ok(SparseDataset {
            x: self.x.select_rows(indices)?,
            labels: self.labels.select(indices),
        })
    }

    /// Appends the samples of `other` in place, like
    /// [`DenseDataset::append`]. Nothing is mutated when the widths differ.
    ///
    /// # Errors
    /// Returns [`priu_linalg::LinalgError::ShapeMismatch`] if the feature
    /// counts differ.
    ///
    /// # Panics
    /// Panics if the label kinds differ (see [`Labels::append`]).
    pub fn append(&mut self, other: &SparseDataset) -> priu_linalg::Result<()> {
        if other.num_features() != self.num_features() {
            return Err(priu_linalg::LinalgError::ShapeMismatch {
                op: "SparseDataset::append",
                left: (self.num_samples(), self.num_features()),
                right: (other.num_samples(), other.num_features()),
            });
        }
        self.labels.append(&other.labels);
        self.x.append_rows(&other.x)
    }
}

#[cfg(test)]
mod tests {
    use super::*;

    fn toy() -> DenseDataset {
        let x = Matrix::from_fn(10, 3, |i, j| (i * 3 + j) as f64);
        let y = Vector::from_fn(10, |i| i as f64);
        DenseDataset::new(x, Labels::Continuous(y))
    }

    #[test]
    fn accessors_and_task() {
        let d = toy();
        assert_eq!(d.num_samples(), 10);
        assert_eq!(d.num_features(), 3);
        assert_eq!(d.task(), TaskKind::Regression);
        assert_eq!(d.num_parameters(), 3);
        let mc = DenseDataset::new(
            Matrix::zeros(4, 2),
            Labels::Multiclass {
                classes: vec![0, 1, 2, 1],
                num_classes: 3,
            },
        );
        assert_eq!(mc.num_parameters(), 6);
        assert_eq!(
            mc.task(),
            TaskKind::MulticlassClassification { num_classes: 3 }
        );
    }

    #[test]
    #[should_panic(expected = "must match")]
    fn mismatched_lengths_panic() {
        DenseDataset::new(Matrix::zeros(3, 2), Labels::Continuous(Vector::zeros(4)));
    }

    #[test]
    fn select_preserves_order_and_pairing() {
        let d = toy();
        let s = d.select(&[7, 2, 2]);
        assert_eq!(s.num_samples(), 3);
        assert_eq!(s.x.row(0)[0], 21.0);
        assert_eq!(s.x.row(1)[0], 6.0);
        assert_eq!(
            s.labels.as_continuous().unwrap().as_slice(),
            &[7.0, 2.0, 2.0]
        );
    }

    #[test]
    fn split_is_deterministic_and_partitions() {
        let d = toy();
        let s1 = d.split(0.8, 99);
        let s2 = d.split(0.8, 99);
        assert_eq!(s1.train.x, s2.train.x);
        assert_eq!(s1.train.num_samples(), 8);
        assert_eq!(s1.validation.num_samples(), 2);
        let s3 = d.split(0.8, 100);
        // Different seed very likely shuffles differently.
        assert_ne!(
            s1.train.labels.as_continuous().unwrap().as_slice(),
            s3.train.labels.as_continuous().unwrap().as_slice()
        );
        // Full-train split keeps everything.
        let full = d.split(1.0, 1);
        assert_eq!(full.train.num_samples(), 10);
        assert_eq!(full.validation.num_samples(), 0);
    }

    #[test]
    fn repeat_concatenates_copies() {
        let d = toy();
        let r = d.repeat(3);
        assert_eq!(r.num_samples(), 30);
        assert_eq!(r.x.row(10), d.x.row(0));
        assert_eq!(d.repeat(1).num_samples(), 10);
    }

    #[test]
    fn labels_select_and_casts() {
        let bin = Labels::Binary(Vector::from_vec(vec![1.0, -1.0, 1.0]));
        assert_eq!(bin.task(), TaskKind::BinaryClassification);
        assert_eq!(
            bin.select(&[2, 0]).as_binary().unwrap().as_slice(),
            &[1.0, 1.0]
        );
        assert!(bin.as_continuous().is_none());
        assert!(bin.as_multiclass().is_none());
        let mc = Labels::Multiclass {
            classes: vec![0, 2, 1],
            num_classes: 3,
        };
        assert_eq!(mc.select(&[1]).as_multiclass().unwrap().0, &[2]);
        assert!(!mc.is_empty());
        assert_eq!(mc.len(), 3);
    }

    #[test]
    fn append_grows_dense_and_sparse_datasets_in_place() {
        let mut d = toy();
        let extra = DenseDataset::new(
            Matrix::from_fn(2, 3, |i, j| (100 + i * 3 + j) as f64),
            Labels::Continuous(Vector::from_vec(vec![100.0, 101.0])),
        );
        d.append(&extra).unwrap();
        assert_eq!(d.num_samples(), 12);
        assert_eq!(d.x.row(10)[0], 100.0);
        assert_eq!(d.labels.as_continuous().unwrap()[11], 101.0);
        // Width mismatch is an error and leaves the dataset untouched.
        let wrong = DenseDataset::new(Matrix::zeros(1, 2), Labels::Continuous(Vector::zeros(1)));
        assert!(d.append(&wrong).is_err());
        assert_eq!(d.num_samples(), 12);

        let dense = Matrix::from_vec(2, 3, vec![0.0, 1.0, 0.0, 2.0, 0.0, 3.0]).unwrap();
        let mut s = SparseDataset::new(
            CsrMatrix::from_dense(&dense),
            Labels::Binary(Vector::from_vec(vec![1.0, -1.0])),
        );
        let extra_dense = Matrix::from_vec(1, 3, vec![4.0, 0.0, 5.0]).unwrap();
        let extra = SparseDataset::new(
            CsrMatrix::from_dense(&extra_dense),
            Labels::Binary(Vector::from_vec(vec![1.0])),
        );
        s.append(&extra).unwrap();
        assert_eq!(s.num_samples(), 3);
        let (cols, vals) = s.x.row(2);
        assert_eq!(cols, &[0, 2]);
        assert_eq!(vals, &[4.0, 5.0]);
        assert_eq!(s.labels.as_binary().unwrap().as_slice(), &[1.0, -1.0, 1.0]);
    }

    #[test]
    #[should_panic(expected = "label kinds must match")]
    fn append_rejects_mismatched_label_kinds() {
        let mut d = toy();
        let extra = DenseDataset::new(
            Matrix::zeros(1, 3),
            Labels::Binary(Vector::from_vec(vec![1.0])),
        );
        let _ = d.append(&extra);
    }

    #[test]
    fn sparse_dataset_accessors() {
        let dense = Matrix::from_vec(2, 3, vec![0.0, 1.0, 0.0, 2.0, 0.0, 0.0]).unwrap();
        let d = SparseDataset::new(
            CsrMatrix::from_dense(&dense),
            Labels::Binary(Vector::from_vec(vec![1.0, -1.0])),
        );
        assert_eq!(d.num_samples(), 2);
        assert_eq!(d.num_features(), 3);
        assert_eq!(d.task(), TaskKind::BinaryClassification);
        let s = d.select(&[1]).unwrap();
        assert_eq!(s.num_samples(), 1);
        assert_eq!(s.labels.as_binary().unwrap().as_slice(), &[-1.0]);
        // Out-of-bounds indices surface as an error, not a panic.
        assert!(d.select(&[5]).is_err());
    }
}
