//! Seeded random-number helpers shared by the synthetic generators.
//!
//! Everything in this crate is reproducible from explicit `u64` seeds; the
//! helpers here add the two distributions `rand` does not provide without
//! `rand_distr`: standard normal samples (Box-Muller) and Gumbel noise (used
//! to sample classes from a softmax ground truth).

use rand::Rng;
use rand_chacha::rand_core::SeedableRng;
use rand_chacha::ChaCha8Rng;

/// Creates a deterministic RNG from a seed and a stream identifier, so that
/// independent components (features, labels, noise, batches) never share a
/// stream even when they share a user-facing seed.
pub fn seeded_rng(seed: u64, stream: u64) -> ChaCha8Rng {
    let mut rng = ChaCha8Rng::seed_from_u64(seed);
    rng.set_stream(stream);
    rng
}

/// Draws one standard-normal sample using the Box-Muller transform.
pub fn standard_normal(rng: &mut impl Rng) -> f64 {
    loop {
        let u1: f64 = rng.gen_range(f64::EPSILON..1.0);
        let u2: f64 = rng.gen_range(0.0..1.0);
        let v = (-2.0 * u1.ln()).sqrt() * (2.0 * std::f64::consts::PI * u2).cos();
        if v.is_finite() {
            return v;
        }
    }
}

/// Draws one standard Gumbel sample (`-ln(-ln(U))`), used for sampling from a
/// categorical distribution via the Gumbel-max trick.
pub fn standard_gumbel(rng: &mut impl Rng) -> f64 {
    let u: f64 = rng.gen_range(f64::EPSILON..1.0);
    -(-u.ln()).ln()
}

#[cfg(test)]
mod tests {
    use super::*;

    #[test]
    fn seeded_rng_is_deterministic_and_stream_separated() {
        let a: Vec<f64> = {
            let mut rng = seeded_rng(42, 0);
            (0..5).map(|_| rng.gen::<f64>()).collect()
        };
        let b: Vec<f64> = {
            let mut rng = seeded_rng(42, 0);
            (0..5).map(|_| rng.gen::<f64>()).collect()
        };
        let c: Vec<f64> = {
            let mut rng = seeded_rng(42, 1);
            (0..5).map(|_| rng.gen::<f64>()).collect()
        };
        assert_eq!(a, b);
        assert_ne!(a, c);
    }

    #[test]
    fn normal_samples_have_reasonable_moments() {
        let mut rng = seeded_rng(7, 0);
        let n = 20_000;
        let samples: Vec<f64> = (0..n).map(|_| standard_normal(&mut rng)).collect();
        let mean = samples.iter().sum::<f64>() / n as f64;
        let var = samples.iter().map(|x| (x - mean) * (x - mean)).sum::<f64>() / n as f64;
        assert!(mean.abs() < 0.05, "mean {mean}");
        assert!((var - 1.0).abs() < 0.1, "variance {var}");
    }

    #[test]
    fn gumbel_samples_are_finite() {
        let mut rng = seeded_rng(3, 0);
        for _ in 0..1000 {
            assert!(standard_gumbel(&mut rng).is_finite());
        }
    }
}
