//! Seeded random-number helpers shared by the synthetic generators.
//!
//! Everything in this crate is reproducible from explicit `u64` seeds. The
//! underlying generator is the workspace's self-contained [`priu_rng::Rng64`]
//! (xoshiro256**), so the whole data pipeline builds without any external
//! dependencies; the helpers here add the stream-separation convention and
//! the two distributions the generators need (standard normal and Gumbel).

pub use priu_rng::Rng64;

/// Creates a deterministic RNG from a seed and a stream identifier, so that
/// independent components (features, labels, noise, batches) never share a
/// stream even when they share a user-facing seed.
pub fn seeded_rng(seed: u64, stream: u64) -> Rng64 {
    Rng64::from_seed_stream(seed, stream)
}

/// Draws one standard-normal sample using the Box-Muller transform.
pub fn standard_normal(rng: &mut Rng64) -> f64 {
    rng.standard_normal()
}

/// Draws one standard Gumbel sample (`-ln(-ln(U))`), used for sampling from a
/// categorical distribution via the Gumbel-max trick.
pub fn standard_gumbel(rng: &mut Rng64) -> f64 {
    rng.standard_gumbel()
}

#[cfg(test)]
mod tests {
    use super::*;

    #[test]
    fn seeded_rng_is_deterministic_and_stream_separated() {
        let a: Vec<f64> = {
            let mut rng = seeded_rng(42, 0);
            (0..5).map(|_| rng.next_f64()).collect()
        };
        let b: Vec<f64> = {
            let mut rng = seeded_rng(42, 0);
            (0..5).map(|_| rng.next_f64()).collect()
        };
        let c: Vec<f64> = {
            let mut rng = seeded_rng(42, 1);
            (0..5).map(|_| rng.next_f64()).collect()
        };
        assert_eq!(a, b);
        assert_ne!(a, c);
    }

    #[test]
    fn normal_samples_have_reasonable_moments() {
        let mut rng = seeded_rng(7, 0);
        let n = 20_000;
        let samples: Vec<f64> = (0..n).map(|_| standard_normal(&mut rng)).collect();
        let mean = samples.iter().sum::<f64>() / n as f64;
        let var = samples.iter().map(|x| (x - mean) * (x - mean)).sum::<f64>() / n as f64;
        assert!(mean.abs() < 0.05, "mean {mean}");
        assert!((var - 1.0).abs() < 0.1, "variance {var}");
    }

    #[test]
    fn gumbel_samples_are_finite() {
        let mut rng = seeded_rng(3, 0);
        for _ in 0..1000 {
            assert!(standard_gumbel(&mut rng).is_finite());
        }
    }
}
