//! Deletion-set construction: dirty-sample injection for the cleaning
//! scenario (§6.2, first experiment set) and random subset selection for the
//! repeated-deletion / interpretability scenario (second experiment set).

use priu_linalg::{Matrix, Vector};

use crate::dataset::{DenseDataset, Labels};
use crate::rng::seeded_rng;

/// The result of injecting dirty samples into a clean training set.
#[derive(Debug, Clone)]
pub struct DirtyInjection {
    /// The corrupted dataset `T_dirty` the initial model is trained on.
    pub dirty_dataset: DenseDataset,
    /// Indices of the corrupted samples — the removal set `R` of the
    /// incremental-update phase.
    pub dirty_indices: Vec<usize>,
}

/// Injects dirty samples into a dataset by rescaling, as in the paper's
/// cleaning experiments: a fraction `deletion_rate` of the training samples
/// is selected and "modified to incorrect values by rescaling" — the selected
/// samples' feature vectors are multiplied by `rescale_factor` while their
/// labels are left untouched, which makes them genuinely inconsistent with
/// the ground truth (rescaling features *and* labels of a linear model would
/// leave the sample on the regression surface).
///
/// Returns the corrupted dataset along with the indices of the corrupted
/// samples (sorted ascending), which become the deletion set.
///
/// # Panics
/// Panics if `deletion_rate` is not in `[0, 1]`.
pub fn inject_dirty_samples(
    clean: &DenseDataset,
    deletion_rate: f64,
    rescale_factor: f64,
    seed: u64,
) -> DirtyInjection {
    assert!(
        (0.0..=1.0).contains(&deletion_rate),
        "deletion_rate must be in [0, 1], got {deletion_rate}"
    );
    let n = clean.num_samples();
    let num_dirty = ((n as f64) * deletion_rate).round() as usize;
    let num_dirty = num_dirty.min(n);
    let mut rng = seeded_rng(seed, 0xD1B7);
    let mut dirty_indices = if num_dirty == 0 {
        Vec::new()
    } else {
        rng.sample_indices(n, num_dirty)
    };
    dirty_indices.sort_unstable();

    let mut x = clean.x.clone();
    for &i in &dirty_indices {
        for v in x.row_mut(i) {
            *v *= rescale_factor;
        }
    }
    DirtyInjection {
        dirty_dataset: DenseDataset::new(x, clean.labels.clone()),
        dirty_indices,
    }
}

/// Draws `count` independent random subsets of `[0, n)` each containing
/// `rate · n` samples (rounded, at least 1 if `rate > 0`), as used by the
/// repeated-deletion experiments (Figure 4: ten different subsets at 0.1%).
///
/// # Panics
/// Panics if `rate` is not in `[0, 1]` or `n == 0`.
pub fn random_subsets(n: usize, rate: f64, count: usize, seed: u64) -> Vec<Vec<usize>> {
    assert!(n > 0, "cannot draw subsets from an empty index range");
    assert!(
        (0.0..=1.0).contains(&rate),
        "rate must be in [0, 1], got {rate}"
    );
    let size = if rate == 0.0 {
        0
    } else {
        (((n as f64) * rate).round() as usize).clamp(1, n)
    };
    (0..count)
        .map(|k| {
            if size == 0 {
                return Vec::new();
            }
            let mut rng = seeded_rng(seed, 0x5B5E7 ^ k as u64);
            let mut indices = rng.sample_indices(n, size);
            indices.sort_unstable();
            indices
        })
        .collect()
}

/// Helper: the rows of the removed samples as a dense matrix `ΔX`, plus their
/// labels (`ΔY`), in removal-set order. Used by PrIU-opt and the closed-form
/// baseline, which work with `ΔXᵀΔX` and `ΔXᵀΔY` directly.
pub fn removed_block(dataset: &DenseDataset, removed: &[usize]) -> (Matrix, Vector) {
    let delta_x = dataset.x.select_rows(removed);
    let delta_y = match &dataset.labels {
        Labels::Continuous(y) | Labels::Binary(y) => {
            Vector::from_vec(removed.iter().map(|&i| y[i]).collect())
        }
        Labels::Multiclass { classes, .. } => {
            Vector::from_vec(removed.iter().map(|&i| classes[i] as f64).collect())
        }
    };
    (delta_x, delta_y)
}

#[cfg(test)]
mod tests {
    use super::*;
    use crate::synthetic::regression::{generate_regression, RegressionConfig};

    fn toy() -> DenseDataset {
        generate_regression(&RegressionConfig {
            num_samples: 100,
            num_features: 4,
            seed: 1,
            ..Default::default()
        })
    }

    #[test]
    fn injection_marks_expected_fraction() {
        let clean = toy();
        let inj = inject_dirty_samples(&clean, 0.1, 100.0, 7);
        assert_eq!(inj.dirty_indices.len(), 10);
        assert_eq!(inj.dirty_dataset.num_samples(), 100);
        // Dirty rows are rescaled, clean rows untouched.
        let first_dirty = inj.dirty_indices[0];
        for j in 0..4 {
            assert!(
                (inj.dirty_dataset.x[(first_dirty, j)] - 100.0 * clean.x[(first_dirty, j)]).abs()
                    < 1e-9
            );
        }
        let clean_row = (0..100).find(|i| !inj.dirty_indices.contains(i)).unwrap();
        for j in 0..4 {
            assert_eq!(inj.dirty_dataset.x[(clean_row, j)], clean.x[(clean_row, j)]);
        }
        // Labels are never touched: only the features are corrupted, which is
        // what makes the dirty samples inconsistent with the ground truth.
        assert_eq!(inj.dirty_dataset.labels, clean.labels);
    }

    #[test]
    fn zero_rate_injects_nothing() {
        let clean = toy();
        let inj = inject_dirty_samples(&clean, 0.0, 100.0, 7);
        assert!(inj.dirty_indices.is_empty());
        assert_eq!(inj.dirty_dataset, clean);
    }

    #[test]
    fn injection_is_deterministic() {
        let clean = toy();
        let a = inject_dirty_samples(&clean, 0.05, 10.0, 3);
        let b = inject_dirty_samples(&clean, 0.05, 10.0, 3);
        assert_eq!(a.dirty_indices, b.dirty_indices);
        assert_eq!(a.dirty_dataset, b.dirty_dataset);
        let c = inject_dirty_samples(&clean, 0.05, 10.0, 4);
        assert_ne!(a.dirty_indices, c.dirty_indices);
    }

    #[test]
    fn classification_labels_are_not_rescaled() {
        let d = DenseDataset::new(
            Matrix::from_fn(10, 2, |i, j| (i + j) as f64),
            Labels::Binary(Vector::from_fn(10, |i| if i % 2 == 0 { 1.0 } else { -1.0 })),
        );
        let inj = inject_dirty_samples(&d, 0.3, 50.0, 1);
        assert_eq!(inj.dirty_dataset.labels, d.labels);
    }

    #[test]
    fn random_subsets_have_requested_size_and_differ() {
        let subsets = random_subsets(1000, 0.01, 5, 42);
        assert_eq!(subsets.len(), 5);
        for s in &subsets {
            assert_eq!(s.len(), 10);
            assert!(s.windows(2).all(|w| w[0] < w[1]));
            assert!(s.iter().all(|&i| i < 1000));
        }
        assert_ne!(subsets[0], subsets[1]);
        // Deterministic.
        assert_eq!(subsets, random_subsets(1000, 0.01, 5, 42));
        // Zero rate gives empty subsets; tiny rates round up to one sample.
        assert!(random_subsets(1000, 0.0, 2, 1).iter().all(Vec::is_empty));
        assert_eq!(random_subsets(50, 0.001, 1, 1)[0].len(), 1);
    }

    #[test]
    fn removed_block_extracts_rows_and_labels() {
        let d = toy();
        let removed = vec![3, 8];
        let (dx, dy) = removed_block(&d, &removed);
        assert_eq!(dx.shape(), (2, 4));
        assert_eq!(dx.row(0), d.x.row(3));
        assert_eq!(dy[1], d.labels.as_continuous().unwrap()[8]);
    }
}
