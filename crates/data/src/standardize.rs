//! Feature standardisation (zero mean, unit variance), fitted on training
//! data and applied to both training and validation features.

use priu_linalg::dense::ops::{column_means, column_stds};
use priu_linalg::{Matrix, Vector};

/// A fitted standardiser: per-column means and standard deviations.
#[derive(Debug, Clone, PartialEq)]
pub struct Standardizer {
    means: Vector,
    stds: Vector,
}

impl Standardizer {
    /// Fits a standardiser to the columns of `x`. Columns with (near-)zero
    /// variance are left unscaled to avoid dividing by zero.
    pub fn fit(x: &Matrix) -> Self {
        let means = column_means(x);
        let mut stds = column_stds(x, &means).expect("means computed from the same matrix");
        for s in stds.iter_mut() {
            if *s < 1e-12 {
                *s = 1.0;
            }
        }
        Self { means, stds }
    }

    /// Applies the fitted transformation to a (possibly different) matrix.
    ///
    /// # Panics
    /// Panics if the column count differs from the fitted one.
    pub fn transform(&self, x: &Matrix) -> Matrix {
        assert_eq!(
            x.ncols(),
            self.means.len(),
            "standardizer fitted on {} columns, got {}",
            self.means.len(),
            x.ncols()
        );
        Matrix::from_fn(x.nrows(), x.ncols(), |i, j| {
            (x[(i, j)] - self.means[j]) / self.stds[j]
        })
    }

    /// Fits on `x` and immediately transforms it.
    pub fn fit_transform(x: &Matrix) -> (Self, Matrix) {
        let s = Self::fit(x);
        let t = s.transform(x);
        (s, t)
    }

    /// The fitted per-column means.
    pub fn means(&self) -> &Vector {
        &self.means
    }

    /// The fitted per-column standard deviations.
    pub fn stds(&self) -> &Vector {
        &self.stds
    }
}

#[cfg(test)]
mod tests {
    use super::*;
    use priu_linalg::dense::ops::{column_means, column_stds};

    #[test]
    fn fit_transform_centres_and_scales() {
        let x = Matrix::from_vec(4, 2, vec![1.0, 10.0, 2.0, 20.0, 3.0, 30.0, 4.0, 40.0]).unwrap();
        let (_, t) = Standardizer::fit_transform(&x);
        let means = column_means(&t);
        let stds = column_stds(&t, &means).unwrap();
        for j in 0..2 {
            assert!(means[j].abs() < 1e-12);
            assert!((stds[j] - 1.0).abs() < 1e-12);
        }
    }

    #[test]
    fn constant_columns_are_left_alone() {
        let x = Matrix::from_vec(3, 2, vec![5.0, 1.0, 5.0, 2.0, 5.0, 3.0]).unwrap();
        let s = Standardizer::fit(&x);
        let t = s.transform(&x);
        for i in 0..3 {
            assert_eq!(t[(i, 0)], 0.0);
        }
        assert_eq!(s.stds()[0], 1.0);
        assert_eq!(s.means()[0], 5.0);
    }

    #[test]
    fn transform_applies_training_statistics_to_new_data() {
        let train = Matrix::from_vec(2, 1, vec![0.0, 2.0]).unwrap();
        let s = Standardizer::fit(&train);
        let test = Matrix::from_vec(1, 1, vec![4.0]).unwrap();
        let t = s.transform(&test);
        // mean 1, std 1 → (4-1)/1 = 3.
        assert!((t[(0, 0)] - 3.0).abs() < 1e-12);
    }

    #[test]
    #[should_panic(expected = "columns")]
    fn mismatched_columns_panic() {
        let s = Standardizer::fit(&Matrix::zeros(2, 2));
        s.transform(&Matrix::zeros(2, 3));
    }
}
