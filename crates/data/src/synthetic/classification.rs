//! Synthetic dense classification data (the Covtype / HIGGS / Heartbeat /
//! CIFAR-10 stand-ins).

use crate::dataset::{DenseDataset, Labels};
use crate::rng::{seeded_rng, standard_gumbel, standard_normal};
use priu_linalg::{Matrix, Vector};

/// Configuration of the classification generators.
#[derive(Debug, Clone, Copy, PartialEq)]
pub struct ClassificationConfig {
    /// Number of samples `n`.
    pub num_samples: usize,
    /// Number of features `m`.
    pub num_features: usize,
    /// Number of classes `q` (2 for the binary generator).
    pub num_classes: usize,
    /// Scale of the ground-truth class separators; larger values make the
    /// classes more separable (higher attainable accuracy).
    pub separation: f64,
    /// Scale of the label noise injected through the Gumbel-max sampling
    /// (1.0 = softmax sampling; 0.0 = deterministic argmax labels).
    pub label_noise: f64,
    /// Seed for all randomness.
    pub seed: u64,
}

impl Default for ClassificationConfig {
    fn default() -> Self {
        Self {
            num_samples: 1000,
            num_features: 20,
            num_classes: 2,
            separation: 1.5,
            label_noise: 1.0,
            seed: 0,
        }
    }
}

/// Generates a dense binary classification dataset with labels in `{-1, +1}`.
///
/// Features are standard normal; labels are sampled from a logistic ground
/// truth `P(y=+1|x) = σ(separation · w*ᵀx)` (with optional extra noise), so a
/// logistic regression can recover most but not all labels — mirroring the
/// moderate accuracies the paper reports on HIGGS.
pub fn generate_binary_classification(config: &ClassificationConfig) -> DenseDataset {
    let mut feat_rng = seeded_rng(config.seed, 10);
    let mut weight_rng = seeded_rng(config.seed, 11);
    let mut label_rng = seeded_rng(config.seed, 12);

    let x = Matrix::from_fn(config.num_samples, config.num_features, |_, _| {
        standard_normal(&mut feat_rng)
    });
    let norm = (config.num_features as f64).sqrt();
    let w_star = Vector::from_fn(config.num_features, |_| {
        config.separation * standard_normal(&mut weight_rng) / norm
    });
    let margins = x
        .matvec(&w_star)
        .expect("shapes consistent by construction");
    let y = Vector::from_fn(config.num_samples, |i| {
        let p = 1.0 / (1.0 + (-margins[i]).exp());
        let noisy = if config.label_noise > 0.0 {
            let u: f64 = label_rng.next_f64();
            u < p
        } else {
            p >= 0.5
        };
        if noisy {
            1.0
        } else {
            -1.0
        }
    });
    DenseDataset::new(x, Labels::Binary(y))
}

/// Generates a dense multiclass classification dataset with labels in
/// `{0, .., q-1}`, sampled from a softmax ground truth via the Gumbel-max
/// trick (the Covtype / Heartbeat / CIFAR-10 stand-ins).
pub fn generate_multiclass_classification(config: &ClassificationConfig) -> DenseDataset {
    assert!(
        config.num_classes >= 2,
        "multiclass generation needs at least 2 classes"
    );
    let mut feat_rng = seeded_rng(config.seed, 20);
    let mut weight_rng = seeded_rng(config.seed, 21);
    let mut label_rng = seeded_rng(config.seed, 22);

    let x = Matrix::from_fn(config.num_samples, config.num_features, |_, _| {
        standard_normal(&mut feat_rng)
    });
    let norm = (config.num_features as f64).sqrt();
    // One ground-truth separator per class.
    let w_stars: Vec<Vector> = (0..config.num_classes)
        .map(|_| {
            Vector::from_fn(config.num_features, |_| {
                config.separation * standard_normal(&mut weight_rng) / norm
            })
        })
        .collect();
    let logits: Vec<Vector> = w_stars
        .iter()
        .map(|w| x.matvec(w).expect("shapes consistent by construction"))
        .collect();
    let classes: Vec<u32> = (0..config.num_samples)
        .map(|i| {
            let mut best_class = 0u32;
            let mut best_score = f64::NEG_INFINITY;
            for (k, logit) in logits.iter().enumerate() {
                let noise = if config.label_noise > 0.0 {
                    config.label_noise * standard_gumbel(&mut label_rng)
                } else {
                    0.0
                };
                let score = logit[i] + noise;
                if score > best_score {
                    best_score = score;
                    best_class = k as u32;
                }
            }
            best_class
        })
        .collect();
    DenseDataset::new(
        x,
        Labels::Multiclass {
            classes,
            num_classes: config.num_classes,
        },
    )
}

#[cfg(test)]
mod tests {
    use super::*;
    use crate::dataset::TaskKind;

    #[test]
    fn binary_shapes_and_label_values() {
        let cfg = ClassificationConfig {
            num_samples: 200,
            num_features: 8,
            ..Default::default()
        };
        let d = generate_binary_classification(&cfg);
        assert_eq!(d.num_samples(), 200);
        assert_eq!(d.num_features(), 8);
        assert_eq!(d.task(), TaskKind::BinaryClassification);
        let y = d.labels.as_binary().unwrap();
        assert!(y.iter().all(|&v| v == 1.0 || v == -1.0));
        // Both classes occur.
        assert!(y.contains(&1.0));
        assert!(y.iter().any(|&v| v == -1.0));
    }

    #[test]
    fn multiclass_shapes_and_label_values() {
        let cfg = ClassificationConfig {
            num_samples: 300,
            num_features: 10,
            num_classes: 5,
            ..Default::default()
        };
        let d = generate_multiclass_classification(&cfg);
        assert_eq!(
            d.task(),
            TaskKind::MulticlassClassification { num_classes: 5 }
        );
        let (classes, q) = d.labels.as_multiclass().unwrap();
        assert_eq!(q, 5);
        assert!(classes.iter().all(|&c| c < 5));
        // With 300 samples and separation 1.5 all five classes should appear.
        let mut seen = [false; 5];
        for &c in classes {
            seen[c as usize] = true;
        }
        assert!(seen.iter().all(|&s| s), "all classes should be represented");
    }

    #[test]
    fn generators_are_deterministic() {
        let cfg = ClassificationConfig {
            num_samples: 50,
            num_features: 4,
            num_classes: 3,
            seed: 5,
            ..Default::default()
        };
        assert_eq!(
            generate_multiclass_classification(&cfg),
            generate_multiclass_classification(&cfg)
        );
        assert_eq!(
            generate_binary_classification(&cfg),
            generate_binary_classification(&cfg)
        );
        let other = ClassificationConfig { seed: 6, ..cfg };
        assert_ne!(
            generate_multiclass_classification(&cfg),
            generate_multiclass_classification(&other)
        );
    }

    #[test]
    fn zero_label_noise_gives_deterministic_argmax_labels() {
        let cfg = ClassificationConfig {
            num_samples: 40,
            num_features: 6,
            num_classes: 3,
            label_noise: 0.0,
            seed: 9,
            ..Default::default()
        };
        let a = generate_multiclass_classification(&cfg);
        let b = generate_multiclass_classification(&cfg);
        assert_eq!(a, b);
        let bin = generate_binary_classification(&ClassificationConfig {
            num_classes: 2,
            ..cfg
        });
        assert_eq!(bin.num_samples(), 40);
    }

    #[test]
    #[should_panic(expected = "at least 2 classes")]
    fn multiclass_requires_two_classes() {
        generate_multiclass_classification(&ClassificationConfig {
            num_classes: 1,
            ..Default::default()
        });
    }
}
