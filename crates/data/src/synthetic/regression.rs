//! Synthetic linear-regression data (the SGEMM stand-in).

use crate::dataset::{DenseDataset, Labels};
use crate::rng::{seeded_rng, standard_normal};
use priu_linalg::{Matrix, Vector};

/// Configuration of the regression generator.
#[derive(Debug, Clone, Copy, PartialEq)]
pub struct RegressionConfig {
    /// Number of samples `n`.
    pub num_samples: usize,
    /// Number of features `m`.
    pub num_features: usize,
    /// Standard deviation of the label noise.
    pub noise_std: f64,
    /// Number of trailing "uninformative" features whose ground-truth weight
    /// is zero (used to build the paper's SGEMM (extended) variant, which
    /// pads the feature space with random features).
    pub num_noise_features: usize,
    /// Seed for all randomness.
    pub seed: u64,
}

impl Default for RegressionConfig {
    fn default() -> Self {
        Self {
            num_samples: 1000,
            num_features: 18,
            noise_std: 0.1,
            num_noise_features: 0,
            seed: 0,
        }
    }
}

/// Generates a dense regression dataset `y = X w* + ε` with standard-normal
/// features. The informative block of `w*` has entries drawn from `N(0, 1)`;
/// the trailing `num_noise_features` columns carry weight zero.
pub fn generate_regression(config: &RegressionConfig) -> DenseDataset {
    let m_total = config.num_features + config.num_noise_features;
    let mut feat_rng = seeded_rng(config.seed, 1);
    let mut weight_rng = seeded_rng(config.seed, 2);
    let mut noise_rng = seeded_rng(config.seed, 3);

    let x = Matrix::from_fn(config.num_samples, m_total, |_, _| {
        standard_normal(&mut feat_rng)
    });
    let w_star = Vector::from_fn(m_total, |j| {
        if j < config.num_features {
            standard_normal(&mut weight_rng)
        } else {
            0.0
        }
    });
    let clean = x
        .matvec(&w_star)
        .expect("shapes consistent by construction");
    let y = Vector::from_fn(config.num_samples, |i| {
        clean[i] + config.noise_std * standard_normal(&mut noise_rng)
    });
    DenseDataset::new(x, Labels::Continuous(y))
}

#[cfg(test)]
mod tests {
    use super::*;
    use crate::dataset::TaskKind;

    #[test]
    fn generates_requested_shape() {
        let cfg = RegressionConfig {
            num_samples: 50,
            num_features: 4,
            num_noise_features: 2,
            ..Default::default()
        };
        let d = generate_regression(&cfg);
        assert_eq!(d.num_samples(), 50);
        assert_eq!(d.num_features(), 6);
        assert_eq!(d.task(), TaskKind::Regression);
    }

    #[test]
    fn is_deterministic_per_seed() {
        let cfg = RegressionConfig {
            num_samples: 20,
            num_features: 3,
            seed: 11,
            ..Default::default()
        };
        let a = generate_regression(&cfg);
        let b = generate_regression(&cfg);
        assert_eq!(a, b);
        let c = generate_regression(&RegressionConfig { seed: 12, ..cfg });
        assert_ne!(a, c);
    }

    #[test]
    fn labels_correlate_with_features() {
        // With low noise, an exact least-squares fit explains most variance;
        // here we only sanity-check that labels are not pure noise by
        // verifying their variance greatly exceeds the injected noise.
        let cfg = RegressionConfig {
            num_samples: 500,
            num_features: 5,
            noise_std: 0.01,
            num_noise_features: 0,
            seed: 3,
        };
        let d = generate_regression(&cfg);
        let y = d.labels.as_continuous().unwrap();
        let mean = y.mean();
        let var = y.iter().map(|v| (v - mean) * (v - mean)).sum::<f64>() / y.len() as f64;
        assert!(var > 1.0, "label variance {var} too small to carry signal");
    }
}
