//! Synthetic sparse binary-classification data (the RCV1 stand-in).
//!
//! RCV1 is a bag-of-words text corpus: each document touches a few hundred
//! of ~47k features with positive tf-idf-like weights. The generator mimics
//! that layout: a configurable number of non-zeros per row placed at random
//! feature positions, values drawn from a log-normal-ish positive
//! distribution, and labels produced by a sparse ground-truth separator.

use crate::dataset::{Labels, SparseDataset};
use crate::rng::{seeded_rng, standard_normal};
use priu_linalg::sparse::CooBuilder;
use priu_linalg::Vector;

/// Configuration of the sparse generator.
#[derive(Debug, Clone, Copy, PartialEq)]
pub struct SparseConfig {
    /// Number of samples `n`.
    pub num_samples: usize,
    /// Number of features `m` (large, RCV1-like).
    pub num_features: usize,
    /// Average number of non-zero features per sample.
    pub nnz_per_row: usize,
    /// Fraction of features that carry signal in the ground-truth separator.
    pub informative_fraction: f64,
    /// Seed for all randomness.
    pub seed: u64,
}

impl Default for SparseConfig {
    fn default() -> Self {
        Self {
            num_samples: 2000,
            num_features: 5000,
            nnz_per_row: 50,
            informative_fraction: 0.05,
            seed: 0,
        }
    }
}

/// Generates a sparse binary classification dataset with labels in `{-1,+1}`.
pub fn generate_sparse_binary(config: &SparseConfig) -> SparseDataset {
    let mut pos_rng = seeded_rng(config.seed, 30);
    let mut val_rng = seeded_rng(config.seed, 31);
    let mut weight_rng = seeded_rng(config.seed, 32);
    let mut label_rng = seeded_rng(config.seed, 33);

    // Sparse ground-truth separator over the informative features.
    let num_informative =
        ((config.num_features as f64) * config.informative_fraction).ceil() as usize;
    let informative = weight_rng.sample_indices(config.num_features, num_informative.max(1));
    let mut w_star = vec![0.0; config.num_features];
    for &idx in informative.iter() {
        w_star[idx] = standard_normal(&mut weight_rng);
    }

    let mut builder = CooBuilder::new(config.num_samples, config.num_features);
    let mut margins = vec![0.0; config.num_samples];
    let nnz = config.nnz_per_row.min(config.num_features).max(1);
    #[allow(clippy::needless_range_loop)] // `i` also names the COO row being filled
    for i in 0..config.num_samples {
        let cols = pos_rng.sample_indices(config.num_features, nnz);
        for &c in cols.iter() {
            // Positive, heavy-tailed values resembling tf-idf weights.
            let v = (0.5 * standard_normal(&mut val_rng)).exp();
            builder.push(i, c, v).expect("indices generated in range");
            margins[i] += v * w_star[c];
        }
    }
    let x = builder.build();

    let scale = (nnz as f64).sqrt();
    let y = Vector::from_fn(config.num_samples, |i| {
        let p = 1.0 / (1.0 + (-(margins[i] / scale * 3.0)).exp());
        let u: f64 = label_rng.next_f64();
        if u < p {
            1.0
        } else {
            -1.0
        }
    });
    SparseDataset::new(x, Labels::Binary(y))
}

#[cfg(test)]
mod tests {
    use super::*;
    use crate::dataset::TaskKind;

    #[test]
    fn shape_density_and_labels() {
        let cfg = SparseConfig {
            num_samples: 100,
            num_features: 500,
            nnz_per_row: 20,
            ..Default::default()
        };
        let d = generate_sparse_binary(&cfg);
        assert_eq!(d.num_samples(), 100);
        assert_eq!(d.num_features(), 500);
        assert_eq!(d.task(), TaskKind::BinaryClassification);
        // Density should be close to nnz_per_row / num_features.
        let expected = 20.0 / 500.0;
        assert!((d.x.density() - expected).abs() < expected * 0.5);
        let y = d.labels.as_binary().unwrap();
        assert!(y.iter().all(|&v| v == 1.0 || v == -1.0));
        assert!(y.contains(&1.0));
        assert!(y.iter().any(|&v| v == -1.0));
    }

    #[test]
    fn deterministic_per_seed() {
        let cfg = SparseConfig {
            num_samples: 30,
            num_features: 100,
            nnz_per_row: 5,
            seed: 42,
            ..Default::default()
        };
        assert_eq!(generate_sparse_binary(&cfg), generate_sparse_binary(&cfg));
        assert_ne!(
            generate_sparse_binary(&cfg),
            generate_sparse_binary(&SparseConfig { seed: 43, ..cfg })
        );
    }

    #[test]
    fn feature_values_are_positive() {
        let d = generate_sparse_binary(&SparseConfig {
            num_samples: 10,
            num_features: 50,
            nnz_per_row: 8,
            ..Default::default()
        });
        for i in 0..10 {
            let (_, vals) = d.x.row(i);
            assert!(vals.iter().all(|&v| v > 0.0));
        }
    }
}
