//! Seeded synthetic dataset generators standing in for the paper's six
//! public datasets (see `DESIGN.md` §3 for the substitution rationale).
//!
//! All generators draw features from a standard normal (optionally with a
//! planted low-rank correlation structure so the Gram spectra are realistic)
//! and produce labels from a ground-truth model plus noise, so trained models
//! achieve non-trivial validation accuracy and the deletion experiments have
//! signal to disturb.

pub mod classification;
pub mod regression;
pub mod sparse_text;

pub use classification::{
    generate_binary_classification, generate_multiclass_classification, ClassificationConfig,
};
pub use regression::{generate_regression, RegressionConfig};
pub use sparse_text::{generate_sparse_binary, SparseConfig};
