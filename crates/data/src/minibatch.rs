//! Deterministic mini-batch schedules.
//!
//! PrIU's correctness argument relies on the incremental update replaying the
//! *same* mini-batch sequence `B^{(t)}` as the original training run, with
//! removed samples excluded (Eq. 8/13/19). [`BatchSchedule`] therefore derives
//! batch `t` purely from `(seed, t)`, so the training phase, the BaseL
//! retraining baseline and the incremental update all observe identical batch
//! composition without storing `τ · B` indices.

use crate::rng::seeded_rng;

/// A deterministic mini-batch schedule over `n` samples.
#[derive(Debug, Clone, PartialEq, Eq)]
pub struct BatchSchedule {
    num_samples: usize,
    batch_size: usize,
    num_iterations: usize,
    seed: u64,
    /// Materialised batches. `None` for the usual seed-derived schedule;
    /// `Some` for schedules produced by [`BatchSchedule::restrict`], whose
    /// batches live in a re-indexed (survivor) sample space and therefore
    /// cannot be re-derived from `(seed, t)`.
    explicit: Option<Vec<Vec<usize>>>,
}

impl BatchSchedule {
    /// Creates a schedule.
    ///
    /// # Panics
    /// Panics if `num_samples == 0` or `batch_size == 0`.
    pub fn new(num_samples: usize, batch_size: usize, num_iterations: usize, seed: u64) -> Self {
        assert!(num_samples > 0, "a schedule needs at least one sample");
        assert!(batch_size > 0, "a schedule needs a positive batch size");
        Self {
            num_samples,
            batch_size: batch_size.min(num_samples),
            num_iterations,
            seed,
            explicit: None,
        }
    }

    /// A full-gradient-descent schedule: every batch is the whole dataset.
    pub fn full_batch(num_samples: usize, num_iterations: usize) -> Self {
        Self::new(num_samples, num_samples, num_iterations, 0)
    }

    /// Number of samples the schedule draws from.
    pub fn num_samples(&self) -> usize {
        self.num_samples
    }

    /// Nominal batch size `B`.
    pub fn batch_size(&self) -> usize {
        self.batch_size
    }

    /// Total number of iterations `τ`.
    pub fn num_iterations(&self) -> usize {
        self.num_iterations
    }

    /// The seed the schedule derives batches from.
    pub fn seed(&self) -> u64 {
        self.seed
    }

    /// Whether every batch covers the entire dataset (plain GD).
    pub fn is_full_batch(&self) -> bool {
        self.batch_size == self.num_samples
    }

    /// The materialised batches, if this schedule carries them (schedules
    /// produced by [`BatchSchedule::restrict_from`] / `extend_with`);
    /// `None` for seed-derived schedules.
    pub fn explicit_batches(&self) -> Option<&[Vec<usize>]> {
        self.explicit.as_deref()
    }

    /// Rebuilds a schedule from serialized parts (the inverse of the field
    /// accessors, used when deserializing a snapshot). An explicit batch
    /// list takes precedence over seed derivation exactly as in the
    /// schedules produced by `restrict_from`/`extend_with`.
    ///
    /// # Panics
    /// Panics if `num_samples == 0` or `batch_size == 0` (same contract as
    /// [`BatchSchedule::new`]).
    pub fn from_parts(
        num_samples: usize,
        batch_size: usize,
        num_iterations: usize,
        seed: u64,
        explicit: Option<Vec<Vec<usize>>>,
    ) -> Self {
        assert!(num_samples > 0, "a schedule needs at least one sample");
        assert!(batch_size > 0, "a schedule needs a positive batch size");
        Self {
            num_samples,
            batch_size,
            num_iterations,
            seed,
            explicit,
        }
    }

    /// The sample indices of mini-batch `t`, drawn without replacement.
    /// Deterministic: the same `(schedule, t)` always yields the same batch.
    ///
    /// # Panics
    /// Panics if `t >= num_iterations`.
    pub fn batch(&self, t: usize) -> Vec<usize> {
        let mut out = Vec::new();
        let mut scratch = Vec::new();
        self.batch_into(t, &mut out, &mut scratch);
        out
    }

    /// Writes the sample indices of mini-batch `t` into `out`, using
    /// `scratch` as working storage. Both buffers are reused across calls, so
    /// the per-iteration replay loops derive batches without allocating.
    /// Produces exactly the indices of [`BatchSchedule::batch`].
    ///
    /// # Panics
    /// Panics if `t >= num_iterations`.
    pub fn batch_into(&self, t: usize, out: &mut Vec<usize>, scratch: &mut Vec<usize>) {
        assert!(
            t < self.num_iterations,
            "iteration {t} out of range ({} iterations)",
            self.num_iterations
        );
        out.clear();
        if let Some(batches) = &self.explicit {
            out.extend_from_slice(&batches[t]);
            return;
        }
        if self.is_full_batch() {
            out.extend(0..self.num_samples);
            return;
        }
        // A distinct stream per iteration gives random access to the
        // schedule without storing it.
        let mut rng = seeded_rng(self.seed, 0xB47C_0000 ^ t as u64);
        rng.sample_indices_into(self.num_samples, self.batch_size, out, scratch);
        out.sort_unstable();
    }

    /// The batch at iteration `t` with the removal set excluded, plus the
    /// surviving batch size `B_U^{(t)}` — the quantities the incremental
    /// update rules iterate with. `removed` must be a sorted-or-not slice of
    /// sample indices; membership is tested via binary search after sorting
    /// internally, so pass the same set used elsewhere.
    pub fn batch_excluding(&self, t: usize, removed: &[usize]) -> (Vec<usize>, usize) {
        let mut removed_sorted = removed.to_vec();
        removed_sorted.sort_unstable();
        let batch = self.batch(t);
        let kept: Vec<usize> = batch
            .into_iter()
            .filter(|i| removed_sorted.binary_search(i).is_err())
            .collect();
        let size = kept.len();
        (kept, size)
    }

    /// Number of passes over the full training set (`τ · B / n`), the
    /// quantity the paper's Q6 discussion calls "passes".
    pub fn num_passes(&self) -> f64 {
        (self.num_iterations * self.batch_size) as f64 / self.num_samples as f64
    }

    /// Restricts the schedule to the samples surviving a deletion: every
    /// batch is materialised with the removed indices filtered out and each
    /// survivor re-indexed by its rank among the survivors — the sample space
    /// of a dataset shrunk with `select(survivors)`. Chained deletions use
    /// this to hand a session's provenance over to the shrunk dataset while
    /// preserving the original batch composition (Eq. 8's requirement).
    ///
    /// `removed` must be sorted ascending and deduplicated, with every index
    /// in `[0, num_samples)`.
    ///
    /// # Panics
    /// Panics if removing the set would leave no samples.
    pub fn restrict(&self, removed: &[usize]) -> BatchSchedule {
        let batches = (0..self.num_iterations).map(|t| self.batch(t)).collect();
        self.restrict_from(removed, batches)
    }

    /// Like [`BatchSchedule::restrict`], reusing batches the caller already
    /// materialised — callers that just iterated the schedule (deletion
    /// propagation walks every batch anyway) avoid deriving it twice.
    ///
    /// `batches` must be exactly `self.batch(t)` for `t` in iteration order.
    ///
    /// # Panics
    /// Panics if removing the set would leave no samples or the batch count
    /// does not match the schedule.
    pub fn restrict_from(&self, removed: &[usize], batches: Vec<Vec<usize>>) -> BatchSchedule {
        debug_assert!(removed.windows(2).all(|w| w[0] < w[1]));
        debug_assert!(removed.iter().all(|&i| i < self.num_samples));
        assert_eq!(
            batches.len(),
            self.num_iterations,
            "restrict_from needs one batch per iteration"
        );
        let surviving = self.num_samples - removed.len();
        assert!(surviving > 0, "cannot restrict a schedule to zero samples");
        let batches: Vec<Vec<usize>> = batches
            .into_iter()
            .map(|batch| {
                batch
                    .into_iter()
                    .filter(|i| removed.binary_search(i).is_err())
                    .map(|i| i - removed.partition_point(|&r| r < i))
                    .collect()
            })
            .collect();
        BatchSchedule {
            num_samples: surviving,
            batch_size: self.batch_size.min(surviving),
            num_iterations: self.num_iterations,
            seed: self.seed,
            explicit: Some(batches),
        }
    }

    /// Extends the schedule with explicit batches over newly appended rows:
    /// every existing batch is materialised (so prior iterations replay
    /// byte-for-byte), the extra batches become additional trailing
    /// iterations, and the sample count grows by `added_samples`. The delta
    /// engines run one exact SGD step per appended batch and capture it
    /// like any other iteration, so later deletions of added rows flow
    /// through the standard replay machinery.
    ///
    /// # Panics
    /// Panics if an extra batch is empty or references a row at or beyond
    /// `num_samples() + added_samples`.
    pub fn extend_with(&self, extra: Vec<Vec<usize>>, added_samples: usize) -> BatchSchedule {
        let new_n = self.num_samples + added_samples;
        for batch in &extra {
            assert!(!batch.is_empty(), "appended batches must be non-empty");
            assert!(
                batch.iter().all(|&i| i < new_n),
                "appended batch indexes a row beyond the extended range"
            );
        }
        let mut batches: Vec<Vec<usize>> =
            (0..self.num_iterations).map(|t| self.batch(t)).collect();
        let num_iterations = self.num_iterations + extra.len();
        batches.extend(extra);
        BatchSchedule {
            num_samples: new_n,
            batch_size: self.batch_size,
            num_iterations,
            seed: self.seed,
            explicit: Some(batches),
        }
    }
}

#[cfg(test)]
mod tests {
    use super::*;

    #[test]
    fn batches_are_deterministic_and_within_range() {
        let s = BatchSchedule::new(100, 10, 50, 7);
        let b1 = s.batch(3);
        let b2 = s.batch(3);
        assert_eq!(b1, b2);
        assert_eq!(b1.len(), 10);
        assert!(b1.iter().all(|&i| i < 100));
        // Sorted and distinct.
        for w in b1.windows(2) {
            assert!(w[0] < w[1]);
        }
        // Different iterations give different batches (overwhelmingly likely).
        assert_ne!(s.batch(3), s.batch(4));
        // Different seeds give different batches.
        let s2 = BatchSchedule::new(100, 10, 50, 8);
        assert_ne!(s.batch(3), s2.batch(3));
    }

    #[test]
    fn extend_with_appends_explicit_batches_and_preserves_history() {
        let s = BatchSchedule::new(20, 4, 6, 11);
        let before: Vec<Vec<usize>> = (0..6).map(|t| s.batch(t)).collect();
        let grown = s.extend_with(vec![vec![20, 21], vec![22]], 3);
        assert_eq!(grown.num_samples(), 23);
        assert_eq!(grown.num_iterations(), 8);
        // Prior iterations replay byte-for-byte.
        for (t, batch) in before.iter().enumerate() {
            assert_eq!(&grown.batch(t), batch);
        }
        assert_eq!(grown.batch(6), vec![20, 21]);
        assert_eq!(grown.batch(7), vec![22]);
        // Restriction still composes: drop an old and a new row.
        let filtered: Vec<Vec<usize>> = (0..8)
            .map(|t| {
                grown
                    .batch(t)
                    .into_iter()
                    .filter(|i| ![3usize, 21].contains(i))
                    .collect()
            })
            .collect();
        let restricted = grown.restrict_from(&[3, 21], filtered);
        assert_eq!(restricted.num_samples(), 21);
        assert_eq!(restricted.batch(6), vec![19]); // 20 shifts past removed 3
        assert_eq!(restricted.batch(7), vec![20]); // 22 shifts past 3 and 21
    }

    #[test]
    #[should_panic(expected = "beyond the extended range")]
    fn extend_with_rejects_out_of_range_rows() {
        BatchSchedule::new(10, 2, 3, 1).extend_with(vec![vec![12]], 2);
    }

    #[test]
    fn full_batch_schedule_returns_everything() {
        let s = BatchSchedule::full_batch(5, 3);
        assert!(s.is_full_batch());
        assert_eq!(s.batch(0), vec![0, 1, 2, 3, 4]);
        assert_eq!(s.batch(2), vec![0, 1, 2, 3, 4]);
        assert_eq!(s.num_passes(), 3.0);
    }

    #[test]
    fn batch_size_is_clamped_to_population() {
        let s = BatchSchedule::new(4, 10, 2, 0);
        assert_eq!(s.batch_size(), 4);
        assert!(s.is_full_batch());
    }

    #[test]
    fn excluding_removes_only_requested_samples() {
        let s = BatchSchedule::new(20, 20, 1, 0);
        let (kept, size) = s.batch_excluding(0, &[3, 17, 99]);
        assert_eq!(size, 18);
        assert!(!kept.contains(&3));
        assert!(!kept.contains(&17));
        assert!(kept.contains(&0));
        // Excluding nothing keeps the batch intact.
        let (all, b) = s.batch_excluding(0, &[]);
        assert_eq!(b, 20);
        assert_eq!(all, s.batch(0));
    }

    #[test]
    #[should_panic(expected = "out of range")]
    fn out_of_range_iteration_panics() {
        BatchSchedule::new(10, 2, 5, 0).batch(5);
    }

    #[test]
    #[should_panic(expected = "at least one sample")]
    fn zero_samples_panics() {
        BatchSchedule::new(0, 2, 5, 0);
    }

    #[test]
    fn restrict_filters_and_reindexes_batches() {
        let s = BatchSchedule::new(10, 4, 6, 3);
        let removed = vec![2, 5];
        let r = s.restrict(&removed);
        assert_eq!(r.num_samples(), 8);
        assert_eq!(r.num_iterations(), 6);
        for t in 0..6 {
            let (kept, _) = s.batch_excluding(t, &removed);
            let expected: Vec<usize> = kept
                .iter()
                .map(|&i| i - removed.iter().filter(|&&x| x < i).count())
                .collect();
            assert_eq!(r.batch(t), expected);
            assert!(r.batch(t).iter().all(|&i| i < 8));
        }
        // Restricting twice composes: remove survivor-index 0 (original 0).
        let r2 = r.restrict(&[0]);
        assert_eq!(r2.num_samples(), 7);
        for t in 0..6 {
            assert!(r2.batch(t).iter().all(|&i| i < 7));
        }
    }

    #[test]
    #[should_panic(expected = "zero samples")]
    fn restrict_to_nothing_panics() {
        let s = BatchSchedule::new(3, 2, 2, 0);
        s.restrict(&[0, 1, 2]);
    }

    #[test]
    fn accessors() {
        let s = BatchSchedule::new(100, 25, 8, 3);
        assert_eq!(s.num_samples(), 100);
        assert_eq!(s.batch_size(), 25);
        assert_eq!(s.num_iterations(), 8);
        assert_eq!(s.seed(), 3);
        assert_eq!(s.num_passes(), 2.0);
    }
}
