//! End-to-end wire test: a client speaking the length-prefixed protocol
//! over the in-memory duplex transport against a live server.

use std::collections::HashMap;
use std::io::Write;

use priu_core::{Method, TrainerConfig};
use priu_core::{Session, SessionBuilder};
use priu_data::catalog::Hyperparameters;
use priu_data::synthetic::regression::{generate_regression, RegressionConfig};
use priu_server::{
    decode_response, duplex, encode_request, read_frame, write_frame, PlannerConfig, Request,
    RequestEnvelope, Response, SchedulerConfig, Server, ServerConfig,
};

fn session() -> Session {
    let data = generate_regression(&RegressionConfig {
        num_samples: 120,
        num_features: 4,
        noise_std: 0.1,
        seed: 0xF00D,
        ..Default::default()
    });
    let config = TrainerConfig::from_hyper(Hyperparameters {
        batch_size: 30,
        num_iterations: 40,
        learning_rate: 0.05,
        regularization: 0.05,
    });
    SessionBuilder::dense(data, config)
        .seed(9)
        .opt_capture(false)
        .fit()
        .unwrap()
}

#[test]
fn a_full_client_conversation_over_the_duplex_transport() {
    let server = Server::start(ServerConfig {
        planner: PlannerConfig {
            window: std::time::Duration::from_secs(3600), // flush-driven
            ..PlannerConfig::default()
        },
        scheduler: SchedulerConfig {
            force_method: Some(Method::Priu),
            ..SchedulerConfig::default()
        },
        ..ServerConfig::default()
    });
    server.register_session("m", session()).unwrap();

    let ((mut client_w, mut client_r), (server_w, server_r)) = duplex();
    let connection = server.serve_connection(server_r, server_w);

    let mut send = |id: u64, request: Request| {
        let payload = encode_request(&RequestEnvelope { id, request });
        write_frame(&mut client_w, &payload).unwrap();
    };
    let probe = vec![0.25, 0.5, 0.75, 1.0];

    // Predict, then delete twice (answered later, out of order), then
    // flush and predict again — all pipelined on one connection.
    send(
        1,
        Request::Predict {
            session: "m".into(),
            features: probe.clone(),
        },
    );
    send(
        2,
        Request::Delete {
            session: "m".into(),
            ids: vec![3, 4],
        },
    );
    send(
        3,
        Request::Delete {
            session: "m".into(),
            ids: vec![4, 9],
        },
    );
    send(
        4,
        Request::Stats {
            session: "m".into(),
        },
    );
    send(
        5,
        Request::Flush {
            session: "m".into(),
        },
    );
    send(
        6,
        Request::Predict {
            session: "nope".into(),
            features: probe.clone(),
        },
    );

    let mut responses: HashMap<u64, Response> = HashMap::new();
    while responses.len() < 6 {
        let payload = read_frame(&mut client_r).unwrap().expect("open stream");
        let envelope = decode_response(&payload).unwrap();
        responses.insert(envelope.id, envelope.response);
    }

    match &responses[&1] {
        Response::Predicted { class, epoch, .. } => {
            assert_eq!(*class, None);
            assert_eq!(*epoch, 0, "predict before the flush sees epoch 0");
        }
        other => panic!("want Predicted, got {other:?}"),
    }
    for id in [2u64, 3] {
        match &responses[&id] {
            Response::Deleted {
                batch_rows,
                method,
                epoch,
                ..
            } => {
                assert_eq!(*batch_rows, 3, "union {{3,4,9}}");
                assert_eq!(*method, Some(Method::Priu));
                assert_eq!(*epoch, 1);
            }
            other => panic!("want Deleted, got {other:?}"),
        }
    }
    assert!(matches!(&responses[&4], Response::Stats { .. }));
    assert!(matches!(&responses[&5], Response::Flushed));
    match &responses[&6] {
        Response::Error { message } => assert!(message.contains("unknown session")),
        other => panic!("want Error, got {other:?}"),
    }

    // The post-flush model answers follow-up predicts at epoch 1 with the
    // same value the typed API computes.
    send(
        7,
        Request::Predict {
            session: "m".into(),
            features: probe.clone(),
        },
    );
    let payload = read_frame(&mut client_r).unwrap().unwrap();
    let envelope = decode_response(&payload).unwrap();
    match envelope.response {
        Response::Predicted { value, epoch, .. } => {
            assert_eq!(envelope.id, 7);
            assert_eq!(epoch, 1);
            let typed = server.predict("m", &probe).unwrap();
            assert_eq!(value.to_bits(), typed.value.to_bits());
        }
        other => panic!("want Predicted, got {other:?}"),
    }

    // Closing the client write half ends the connection cleanly.
    drop(client_w);
    connection.join();
    server.shutdown();
}

#[test]
fn undecodable_bytes_get_one_error_frame_and_a_hangup() {
    let server = Server::start(ServerConfig::default());
    let ((mut client_w, mut client_r), (server_w, server_r)) = duplex();
    let connection = server.serve_connection(server_r, server_w);

    // A frame whose payload is garbage (bad tag after the id).
    let mut payload = 99u64.to_le_bytes().to_vec();
    payload.push(0xEE);
    write_frame(&mut client_w, &payload).unwrap();
    // And then bytes that are not even a complete frame.
    client_w.write_all(&1000u32.to_le_bytes()).unwrap();
    client_w.write_all(b"nope").unwrap();
    drop(client_w);

    let frame = read_frame(&mut client_r).unwrap().expect("error frame");
    let envelope = decode_response(&frame).unwrap();
    assert_eq!(envelope.id, 0, "protocol errors are not correlatable");
    match envelope.response {
        Response::Error { message } => assert!(message.contains("unknown message tag")),
        other => panic!("want Error, got {other:?}"),
    }
    assert!(
        read_frame(&mut client_r).unwrap().is_none(),
        "server hangs up after a protocol error"
    );
    connection.join();
    server.shutdown();
}
