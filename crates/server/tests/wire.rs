//! End-to-end wire test: a client speaking the length-prefixed protocol
//! over the in-memory duplex transport against a live server.

use std::collections::HashMap;
use std::io::Write;

use priu_core::{compare_models, DeletionEngine, Method, TrainerConfig};
use priu_core::{Session, SessionBuilder};
use priu_data::catalog::Hyperparameters;
use priu_data::synthetic::regression::{generate_regression, RegressionConfig};
use priu_server::{
    decode_response, duplex, encode_request, read_frame, write_frame, PlannerConfig, Request,
    RequestEnvelope, Response, SchedulerConfig, Server, ServerConfig,
};

fn session() -> Session {
    let data = generate_regression(&RegressionConfig {
        num_samples: 120,
        num_features: 4,
        noise_std: 0.1,
        seed: 0xF00D,
        ..Default::default()
    });
    let config = TrainerConfig::from_hyper(Hyperparameters {
        batch_size: 30,
        num_iterations: 40,
        learning_rate: 0.05,
        regularization: 0.05,
    });
    SessionBuilder::dense(data, config)
        .seed(9)
        .opt_capture(false)
        .fit()
        .unwrap()
}

#[test]
fn a_full_client_conversation_over_the_duplex_transport() {
    let server = Server::start(ServerConfig {
        planner: PlannerConfig {
            window: std::time::Duration::from_secs(3600), // flush-driven
            ..PlannerConfig::default()
        },
        scheduler: SchedulerConfig {
            force_method: Some(Method::Priu),
            ..SchedulerConfig::default()
        },
        ..ServerConfig::default()
    })
    .expect("start server");
    server.register_session("m", session()).unwrap();

    let ((mut client_w, mut client_r), (server_w, server_r)) = duplex();
    let connection = server.serve_connection(server_r, server_w);

    let mut send = |id: u64, request: Request| {
        let payload = encode_request(&RequestEnvelope { id, request });
        write_frame(&mut client_w, &payload).unwrap();
    };
    let probe = vec![0.25, 0.5, 0.75, 1.0];

    // Predict, then delete twice (answered later, out of order), then
    // flush and predict again — all pipelined on one connection.
    send(
        1,
        Request::Predict {
            session: "m".into(),
            features: probe.clone(),
        },
    );
    send(
        2,
        Request::Delete {
            session: "m".into(),
            ids: vec![3, 4],
        },
    );
    send(
        3,
        Request::Delete {
            session: "m".into(),
            ids: vec![4, 9],
        },
    );
    send(
        4,
        Request::Stats {
            session: "m".into(),
        },
    );
    send(
        5,
        Request::Flush {
            session: "m".into(),
        },
    );
    send(
        6,
        Request::Predict {
            session: "nope".into(),
            features: probe.clone(),
        },
    );

    let mut responses: HashMap<u64, Response> = HashMap::new();
    while responses.len() < 6 {
        let payload = read_frame(&mut client_r).unwrap().expect("open stream");
        let envelope = decode_response(&payload).unwrap();
        responses.insert(envelope.id, envelope.response);
    }

    match &responses[&1] {
        Response::Predicted { class, epoch, .. } => {
            assert_eq!(*class, None);
            assert_eq!(*epoch, 0, "predict before the flush sees epoch 0");
        }
        other => panic!("want Predicted, got {other:?}"),
    }
    for id in [2u64, 3] {
        match &responses[&id] {
            Response::Deleted {
                batch_rows,
                method,
                epoch,
                ..
            } => {
                assert_eq!(*batch_rows, 3, "union {{3,4,9}}");
                assert_eq!(*method, Some(Method::Priu));
                assert_eq!(*epoch, 1);
            }
            other => panic!("want Deleted, got {other:?}"),
        }
    }
    assert!(matches!(&responses[&4], Response::Stats { .. }));
    assert!(matches!(&responses[&5], Response::Flushed));
    match &responses[&6] {
        Response::Error { message } => assert!(message.contains("unknown session")),
        other => panic!("want Error, got {other:?}"),
    }

    // The post-flush model answers follow-up predicts at epoch 1 with the
    // same value the typed API computes.
    send(
        7,
        Request::Predict {
            session: "m".into(),
            features: probe.clone(),
        },
    );
    let payload = read_frame(&mut client_r).unwrap().unwrap();
    let envelope = decode_response(&payload).unwrap();
    match envelope.response {
        Response::Predicted { value, epoch, .. } => {
            assert_eq!(envelope.id, 7);
            assert_eq!(epoch, 1);
            let typed = server.predict("m", &probe).unwrap();
            assert_eq!(value.to_bits(), typed.value.to_bits());
        }
        other => panic!("want Predicted, got {other:?}"),
    }

    // Closing the client write half ends the connection cleanly.
    drop(client_w);
    connection.join();
    server.shutdown();
}

/// Hyperparameters for the interleaved-stream fixture: long enough to
/// converge near the ridge optimum, so a from-scratch fit on the final
/// survivors (whose batch schedule necessarily differs) lands on the
/// same model and the comparison isolates the update arithmetic.
fn stream_hyper() -> Hyperparameters {
    Hyperparameters {
        batch_size: 30,
        num_iterations: 400,
        learning_rate: 0.05,
        regularization: 0.05,
    }
}

#[test]
fn a_wire_driven_interleaved_stream_matches_a_fresh_fit_on_the_survivors() {
    let server = Server::start(ServerConfig {
        planner: PlannerConfig {
            window: std::time::Duration::from_secs(3600), // flush-driven
            ..PlannerConfig::default()
        },
        scheduler: SchedulerConfig {
            force_method: Some(Method::Priu),
            retrain_drift: 2.0, // never force a retrain mid-stream
            ..SchedulerConfig::default()
        },
        ..ServerConfig::default()
    })
    .expect("start server");
    // One 150-row pool from a single generative model: the session starts
    // on rows 0..120 and the stream appends rows 120..132 two at a time,
    // so stable id == pool row throughout (ids are never reused).
    let pool = generate_regression(&RegressionConfig {
        num_samples: 150,
        num_features: 4,
        noise_std: 0.1,
        seed: 0xF00D,
        ..Default::default()
    });
    let initial: Vec<usize> = (0..120).collect();
    let fixture = SessionBuilder::dense(
        pool.select(&initial),
        TrainerConfig::from_hyper(stream_hyper()),
    )
    .seed(9)
    .opt_capture(false)
    .fit()
    .unwrap();
    server.register_session("m", fixture).unwrap();

    let ((mut client_w, mut client_r), (server_w, server_r)) = duplex();
    let connection = server.serve_connection(server_r, server_w);
    let mut send = |id: u64, request: Request| {
        let payload = encode_request(&RequestEnvelope { id, request });
        write_frame(&mut client_w, &payload).unwrap();
    };
    let recv_wave = |client_r: &mut _, ids: &[u64]| -> HashMap<u64, Response> {
        let mut responses = HashMap::new();
        while responses.len() < ids.len() {
            let payload = read_frame(client_r).unwrap().expect("open stream");
            let envelope = decode_response(&payload).unwrap();
            assert!(ids.contains(&envelope.id), "unexpected id {}", envelope.id);
            responses.insert(envelope.id, envelope.response);
        }
        responses
    };

    // Client-side mirror of the live stable-id set.
    let mut live: Vec<u64> = (0..120).collect();
    let mut next_id = 120u64;
    let mut state = 0x5EED_u64;
    let mut rng = move || {
        state = state
            .wrapping_mul(6364136223846793005)
            .wrapping_add(1442695040888963407);
        state >> 33
    };

    // Six waves, each one coalesced batch: two random live deletions, a
    // two-row addition, and (every other wave) a window tick that shrinks
    // retention by three rows.
    for wave in 0..6u64 {
        let a = rng() as usize % live.len();
        let b = (a + 1 + rng() as usize % (live.len() - 1)) % live.len();
        let deleted = [live[a], live[b]];
        let first_row = 120 + 2 * wave as usize;
        let features: Vec<f64> = pool
            .x
            .row(first_row)
            .iter()
            .chain(pool.x.row(first_row + 1))
            .copied()
            .collect();
        let labels: Vec<f64> =
            pool.labels.as_continuous().unwrap().as_slice()[first_row..first_row + 2].to_vec();
        let ticking = wave % 2 == 1;
        let keep = live.len() as u64 - 3;

        let base = 10 * wave;
        send(
            base + 1,
            Request::Delete {
                session: "m".into(),
                ids: deleted.to_vec(),
            },
        );
        send(
            base + 2,
            Request::Add {
                session: "m".into(),
                num_features: 4,
                features: features.clone(),
                labels: labels.clone(),
            },
        );
        let mut wave_ids = vec![base + 1, base + 2, base + 4];
        if ticking {
            send(
                base + 3,
                Request::Tick {
                    session: "m".into(),
                    num_features: 4,
                    features: vec![],
                    labels: vec![],
                    keep_last: keep,
                },
            );
            wave_ids.push(base + 3);
        }
        send(
            base + 4,
            Request::Flush {
                session: "m".into(),
            },
        );
        let responses = recv_wave(&mut client_r, &wave_ids);

        // Shape of the wave's replies: deletions answer `Deleted`, adds
        // and ticks answer `Applied`; expiry is batch-level.
        let expired = if ticking { 3 } else { 0 };
        match &responses[&(base + 1)] {
            Response::Deleted {
                applied,
                batch_rows,
                epoch,
                ..
            } => {
                assert_eq!(*applied, 2, "wave {wave}");
                assert_eq!(*batch_rows, 2 + expired);
                assert_eq!(*epoch, wave + 1);
            }
            other => panic!("want Deleted, got {other:?}"),
        }
        match &responses[&(base + 2)] {
            Response::Applied {
                added,
                expired: batch_expired,
                batch_rows,
                method,
                epoch,
                ..
            } => {
                assert_eq!(*added, 2, "wave {wave}");
                assert_eq!(*batch_expired, expired);
                assert_eq!(*batch_rows, 2 + expired);
                assert_eq!(*method, Some(Method::Priu));
                assert_eq!(*epoch, wave + 1);
            }
            other => panic!("want Applied, got {other:?}"),
        }
        if ticking {
            match &responses[&(base + 3)] {
                Response::Applied { added, expired, .. } => {
                    assert_eq!((*added, *expired), (0, 3), "wave {wave}");
                }
                other => panic!("want Applied, got {other:?}"),
            }
        }

        // Mirror the batch: deletes land first, then retention expires the
        // oldest survivors, then the additions take fresh stable ids.
        live.retain(|id| !deleted.contains(id));
        if ticking {
            live.drain(..3);
        }
        for _ in 0..2 {
            live.push(next_id);
            next_id += 1;
        }
    }

    // The stream settles on 111 survivors: 120 − 12 deleted − 9 expired
    // + 12 added.
    send(
        100,
        Request::Stats {
            session: "m".into(),
        },
    );
    let payload = read_frame(&mut client_r).unwrap().unwrap();
    let envelope = decode_response(&payload).unwrap();
    match envelope.response {
        Response::Stats {
            num_samples, epoch, ..
        } => {
            assert_eq!(num_samples, live.len() as u64);
            assert_eq!(num_samples, 111);
            assert_eq!(epoch, 6);
        }
        other => panic!("want Stats, got {other:?}"),
    }

    // Numerical acceptance: the wire-driven incrementally-updated model
    // agrees with a fresh from-scratch fit on the final survivor rows.
    let survivors: Vec<usize> = live.iter().map(|&id| id as usize).collect();
    let fresh = SessionBuilder::dense(
        pool.select(&survivors),
        TrainerConfig::from_hyper(stream_hyper()),
    )
    .seed(9)
    .opt_capture(false)
    .fit()
    .unwrap();
    let (snapshot, _) = server.model_snapshot("m").unwrap();
    let cmp = compare_models(fresh.model(), snapshot.model()).unwrap();
    assert!(
        cmp.cosine_similarity > 0.99,
        "wire stream drifted from the from-scratch fit: similarity {} (l2 {})",
        cmp.cosine_similarity,
        cmp.l2_distance
    );

    drop(client_w);
    connection.join();
    server.shutdown();
}

#[test]
fn undecodable_bytes_get_one_error_frame_and_a_hangup() {
    let server = Server::start(ServerConfig::default()).expect("start server");
    let ((mut client_w, mut client_r), (server_w, server_r)) = duplex();
    let connection = server.serve_connection(server_r, server_w);

    // A frame whose payload is garbage (bad tag after the id).
    let mut payload = 99u64.to_le_bytes().to_vec();
    payload.push(0xEE);
    write_frame(&mut client_w, &payload).unwrap();
    // And then bytes that are not even a complete frame.
    client_w.write_all(&1000u32.to_le_bytes()).unwrap();
    client_w.write_all(b"nope").unwrap();
    drop(client_w);

    let frame = read_frame(&mut client_r).unwrap().expect("error frame");
    let envelope = decode_response(&frame).unwrap();
    assert_eq!(envelope.id, 0, "protocol errors are not correlatable");
    match envelope.response {
        Response::Error { message } => assert!(message.contains("unknown message tag")),
        other => panic!("want Error, got {other:?}"),
    }
    assert!(
        read_frame(&mut client_r).unwrap().is_none(),
        "server hangs up after a protocol error"
    );
    connection.join();
    server.shutdown();
}
