//! Concurrency + determinism torture for the deletion service.
//!
//! The invariants under test, each per `apply_threads` × SIMD-level leg
//! (the same {1, 4} × {off, avx2} grid CI pins via `PRIU_THREADS` /
//! `PRIU_SIMD`):
//!
//! 1. A coalesced batch is **bitwise** identical to one direct
//!    `DeletionEngine::apply` with the union removal set under the same
//!    pin — the server adds scheduling, not arithmetic.
//! 2. Coalesced deletion is **numerically** equivalent to applying the
//!    same requests sequentially (exactly equivalent in exact arithmetic
//!    for the closed-form path; FP rounding differs because the downdates
//!    associate differently).
//! 3. Predictions racing deletion batches observe a committed model —
//!    pre-batch or post-batch, never a torn intermediate — and epochs are
//!    monotone per observer.

use std::collections::HashMap;
use std::sync::atomic::{AtomicBool, Ordering};
use std::sync::Arc;

use priu_core::{DeletionEngine, Method, Model, ModelKind, Session, SessionBuilder, TrainerConfig};
use priu_data::catalog::Hyperparameters;
use priu_data::synthetic::classification::{generate_binary_classification, ClassificationConfig};
use priu_data::synthetic::regression::{generate_regression, RegressionConfig};
use priu_linalg::par;
use priu_linalg::simd::{self, SimdLevel};
use priu_server::{PlannerConfig, SchedulerConfig, Server, ServerConfig};

const N: usize = 200;

fn linear_session(seed: u64) -> Session {
    let data = generate_regression(&RegressionConfig {
        num_samples: N,
        num_features: 5,
        noise_std: 0.1,
        seed,
        ..Default::default()
    });
    let config = TrainerConfig::from_hyper(Hyperparameters {
        batch_size: 25,
        num_iterations: 60,
        learning_rate: 0.05,
        regularization: 0.05,
    });
    SessionBuilder::dense(data, config)
        .seed(4)
        .opt_capture(false)
        .fit()
        .expect("linear fixture")
}

fn logistic_session(seed: u64) -> Session {
    let data = generate_binary_classification(&ClassificationConfig {
        num_samples: N,
        num_features: 6,
        separation: 3.0,
        label_noise: 0.5,
        seed,
        ..Default::default()
    });
    let config = TrainerConfig::from_hyper(Hyperparameters {
        batch_size: 25,
        num_iterations: 60,
        learning_rate: 0.3,
        regularization: 0.02,
    });
    SessionBuilder::dense(data, config)
        .seed(5)
        .opt_capture(false)
        .fit()
        .expect("logistic fixture")
}

/// The CI determinism grid: apply-thread counts × available SIMD levels.
fn legs() -> Vec<(usize, SimdLevel)> {
    let mut legs = Vec::new();
    for threads in [1usize, 4] {
        for level in simd::available_levels() {
            legs.push((threads, level));
        }
    }
    legs
}

fn model_bits(model: &Model) -> Vec<u64> {
    model.flatten().iter().map(|w| w.to_bits()).collect()
}

fn pinned_apply(
    threads: usize,
    level: SimdLevel,
    session: &Session,
    method: Method,
    rows: &[usize],
) -> Session {
    par::with_threads(threads, || {
        simd::with_level(level, || session.apply(method, rows))
    })
    .expect("reference apply")
    .session
}

fn server_config(
    threads: usize,
    level: SimdLevel,
    coalesce: bool,
    force: Option<Method>,
) -> ServerConfig {
    ServerConfig {
        planner: PlannerConfig {
            // Batches form on flush only: the huge window keeps wall-clock
            // timing out of the test's batch boundaries.
            window: std::time::Duration::from_secs(3600),
            max_batch: 1 << 20,
            coalesce,
        },
        scheduler: SchedulerConfig {
            force_method: force,
            retrain_drift: 2.0, // never force a retrain mid-test
            ..SchedulerConfig::default()
        },
        apply_threads: Some(threads),
        simd_level: Some(level),
    }
}

#[test]
fn coalesced_batch_is_bitwise_one_union_apply_across_the_grid() {
    for (threads, level) in legs() {
        for (name, session, reference) in [
            ("lin", linear_session(0xA1), linear_session(0xA1)),
            ("log", logistic_session(0xB2), logistic_session(0xB2)),
        ] {
            let server = Server::start(server_config(threads, level, true, Some(Method::Priu)));
            server.register_session(name, session).unwrap();

            // Three overlapping requests fold into the union {3, 10, 11, 42}.
            let t1 = server.delete(name, &[3]).unwrap();
            let t2 = server.delete(name, &[10, 11]).unwrap();
            let t3 = server.delete(name, &[42, 3]).unwrap();
            server.flush(name).unwrap();
            let r1 = t1.wait().unwrap();
            let r2 = t2.wait().unwrap();
            let r3 = t3.wait().unwrap();
            for reply in [&r1, &r2, &r3] {
                assert_eq!(reply.batch_rows, 4, "{name}@{threads}x{level:?}");
                assert_eq!(reply.method, Some(Method::Priu));
                assert_eq!(reply.epoch, 1);
                assert_eq!(reply.stale, 0);
            }
            assert_eq!((r1.requested, r1.applied), (1, 1));
            assert_eq!((r2.requested, r2.applied), (2, 2));
            assert_eq!((r3.requested, r3.applied), (2, 2));

            // Bitwise: the server committed exactly the model one direct
            // union apply produces under the same pin.
            let expected = pinned_apply(threads, level, &reference, Method::Priu, &[3, 10, 11, 42]);
            let (snapshot, epoch) = server.model_snapshot(name).unwrap();
            assert_eq!(epoch, 1);
            assert_eq!(
                model_bits(snapshot.model()),
                model_bits(expected.model()),
                "coalesced batch differs from union apply for {name} at \
                 threads={threads} level={level:?}"
            );

            // A second batch re-deleting id 3 is stale for that id and the
            // translation maps surviving stable ids to shifted rows.
            let t4 = server.delete(name, &[3, 7]).unwrap();
            server.flush(name).unwrap();
            let r4 = t4.wait().unwrap();
            assert_eq!((r4.requested, r4.applied, r4.stale), (2, 1, 1));
            assert_eq!(r4.batch_rows, 1);
            assert_eq!(r4.epoch, 2);
            // Stable id 7 sits at row 6 after {3} dropped out below it.
            let expected2 = pinned_apply(threads, level, &expected, Method::Priu, &[6]);
            let (snapshot2, _) = server.model_snapshot(name).unwrap();
            assert_eq!(
                model_bits(snapshot2.model()),
                model_bits(expected2.model()),
                "stable-id translation broke for {name}"
            );

            // An all-stale batch commits nothing and touches no state.
            let t5 = server.delete(name, &[3, 42]).unwrap();
            server.flush(name).unwrap();
            let r5 = t5.wait().unwrap();
            assert_eq!((r5.applied, r5.stale, r5.batch_rows), (0, 2, 0));
            assert_eq!(r5.method, None);
            assert_eq!(server.model_snapshot(name).unwrap().1, 2, "no epoch bump");
            server.shutdown();
        }
    }
}

#[test]
fn coalesced_and_sequential_deletion_agree_numerically() {
    let (threads, level) = (1, simd::available_levels()[0]);
    let batched = Server::start(server_config(
        threads,
        level,
        true,
        Some(Method::ClosedForm),
    ));
    let one_by_one = Server::start(server_config(
        threads,
        level,
        false,
        Some(Method::ClosedForm),
    ));
    batched.register_session("s", linear_session(0xC3)).unwrap();
    one_by_one
        .register_session("s", linear_session(0xC3))
        .unwrap();

    let waves: [&[u64]; 3] = [&[5, 17], &[29], &[17, 88, 120]];
    for ids in waves {
        let tb = batched.delete("s", ids).unwrap();
        let ts = one_by_one.delete("s", ids).unwrap();
        batched.flush("s").unwrap();
        one_by_one.flush("s").unwrap();
        tb.wait().unwrap();
        ts.wait().unwrap();
    }
    let (mb, _) = batched.model_snapshot("s").unwrap();
    let (ms, _) = one_by_one.model_snapshot("s").unwrap();
    assert_eq!(mb.num_samples(), ms.num_samples());
    assert_eq!(mb.num_samples(), N - 5, "5 distinct rows (17 repeats)");
    let diff: f64 = mb
        .model()
        .flatten()
        .iter()
        .zip(ms.model().flatten().iter())
        .map(|(a, b)| (a - b).abs())
        .fold(0.0, f64::max);
    assert!(
        diff < 1e-8,
        "closed-form batched vs sequential drifted: max |Δw| = {diff:e}"
    );
    batched.shutdown();
    one_by_one.shutdown();
}

/// Expected per-epoch predictions, mirroring the server's predict rules.
fn expected_prediction(model: &Model, probe: &[f64]) -> (u64, Option<u64>) {
    match model.kind() {
        ModelKind::Linear => (model.predict_linear(probe).to_bits(), None),
        ModelKind::BinaryLogistic => (
            model.decision_value(probe).to_bits(),
            Some(model.predict_class(probe) as u64),
        ),
        ModelKind::MultinomialLogistic { .. } => {
            let class = model.predict_class(probe);
            (model.logits(probe)[class].to_bits(), Some(class as u64))
        }
    }
}

#[test]
fn predictions_race_deletion_batches_without_tearing() {
    const WAVES: usize = 5;
    // Per-wave deletion schedule: disjoint stable ids so every wave removes
    // exactly 6 live rows; shared across the four sessions.
    let wave_ids = |w: usize| -> [Vec<u64>; 3] {
        let base = (w as u64) * 6;
        [
            vec![base, base + 1],
            vec![base + 2, base + 3],
            vec![base + 4, base + 5, base], // overlap inside the wave
        ]
    };

    for (threads, level) in legs() {
        let sessions: Vec<(String, Session)> = vec![
            ("lin-a".into(), linear_session(0xD0)),
            ("lin-b".into(), linear_session(0xD1)),
            ("log-a".into(), logistic_session(0xD2)),
            ("log-b".into(), logistic_session(0xD3)),
        ];
        let references: Vec<Session> = vec![
            linear_session(0xD0),
            linear_session(0xD1),
            logistic_session(0xD2),
            logistic_session(0xD3),
        ];

        // Reference chain: for each session, the model expected at every
        // epoch (epoch w = after wave w-1), built by direct pinned applies
        // of each wave's union.
        let probe_for = |session: &Session| -> Vec<f64> {
            (0..session.model().num_features())
                .map(|i| 0.25 * (i as f64 + 1.0))
                .collect()
        };
        let mut expected: Vec<HashMap<u64, (u64, Option<u64>)>> = Vec::new();
        let mut finals: Vec<Vec<u64>> = Vec::new();
        for reference in references {
            let probe = probe_for(&reference);
            let mut ids: Vec<u64> = (0..N as u64).collect();
            let mut by_epoch = HashMap::new();
            by_epoch.insert(0u64, expected_prediction(reference.model(), &probe));
            let mut current = reference;
            for w in 0..WAVES {
                let union: std::collections::BTreeSet<u64> =
                    wave_ids(w).iter().flatten().copied().collect();
                let rows: Vec<usize> = union
                    .iter()
                    .filter_map(|id| ids.binary_search(id).ok())
                    .collect();
                current = pinned_apply(threads, level, &current, Method::Priu, &rows);
                ids.retain(|id| !union.contains(id));
                by_epoch.insert(w as u64 + 1, expected_prediction(current.model(), &probe));
            }
            expected.push(by_epoch);
            finals.push(model_bits(current.model()));
        }

        let server = Arc::new(Server::start(server_config(
            threads,
            level,
            true,
            Some(Method::Priu),
        )));
        for (name, session) in sessions {
            server.register_session(&name, session).unwrap();
        }
        let names = ["lin-a", "lin-b", "log-a", "log-b"];

        // Four deleter threads (one per session) drive the waves while
        // eight predict threads hammer the snapshots.
        let done = Arc::new(AtomicBool::new(false));
        let predictors: Vec<_> = (0..8)
            .map(|p| {
                let server = Arc::clone(&server);
                let done = Arc::clone(&done);
                let name = names[p % names.len()];
                std::thread::spawn(move || {
                    let features = server.model_snapshot(name).unwrap().0;
                    let probe: Vec<f64> = (0..features.model().num_features())
                        .map(|i| 0.25 * (i as f64 + 1.0))
                        .collect();
                    let mut observed: Vec<(u64, u64, Option<u64>)> = Vec::new();
                    let mut last_epoch = 0;
                    while !done.load(Ordering::Acquire) {
                        let prediction = server.predict(name, &probe).unwrap();
                        assert!(
                            prediction.epoch >= last_epoch,
                            "epochs must be monotone per observer"
                        );
                        last_epoch = prediction.epoch;
                        observed.push((
                            prediction.epoch,
                            prediction.value.to_bits(),
                            prediction.class.map(|c| c as u64),
                        ));
                    }
                    (name, observed)
                })
            })
            .collect();

        let deleters: Vec<_> = names
            .iter()
            .map(|&name| {
                let server = Arc::clone(&server);
                std::thread::spawn(move || {
                    for w in 0..WAVES {
                        let tickets: Vec<_> = wave_ids(w)
                            .iter()
                            .map(|ids| server.delete(name, ids).unwrap())
                            .collect();
                        server.flush(name).unwrap();
                        for ticket in tickets {
                            let reply = ticket.wait().unwrap();
                            assert_eq!(reply.epoch, w as u64 + 1, "{name} wave {w}");
                            assert_eq!(reply.batch_rows, 6, "{name} wave {w}");
                            assert_eq!(reply.method, Some(Method::Priu));
                        }
                    }
                })
            })
            .collect();
        for deleter in deleters {
            deleter.join().expect("deleter panicked");
        }
        done.store(true, Ordering::Release);

        // Every observed prediction must exactly match the committed model
        // of its epoch — a torn read could match no epoch.
        for predictor in predictors {
            let (name, observed) = predictor.join().expect("predictor panicked");
            let session_ix = names.iter().position(|&n| n == name).unwrap();
            for (epoch, value_bits, class) in observed {
                let (expected_bits, expected_class) = expected[session_ix]
                    .get(&epoch)
                    .unwrap_or_else(|| panic!("{name}: impossible epoch {epoch}"));
                assert_eq!(
                    (value_bits, class),
                    (*expected_bits, *expected_class),
                    "{name}@epoch {epoch}: prediction does not match any \
                     committed model (threads={threads} level={level:?})"
                );
            }
        }

        // Final models are bitwise the reference chain's.
        for (session_ix, &name) in names.iter().enumerate() {
            let (snapshot, epoch) = server.model_snapshot(name).unwrap();
            assert_eq!(epoch, WAVES as u64);
            assert_eq!(
                model_bits(snapshot.model()),
                finals[session_ix],
                "{name}: final model differs from the reference chain"
            );
            let stats = server.stats(name).unwrap();
            assert_eq!(stats.num_samples, N - WAVES * 6);
            assert_eq!(stats.pending, 0);
            let priu_decides: u64 = stats
                .decisions
                .iter()
                .find(|(m, _)| *m == Method::Priu)
                .unwrap()
                .1;
            assert_eq!(priu_decides, WAVES as u64);
        }
        server.shutdown();
    }
}

#[test]
fn admission_errors_and_shutdown_are_typed() {
    use priu_server::ServerError;
    let server = Server::start(ServerConfig::default());
    server.register_session("s", linear_session(0xE4)).unwrap();
    assert!(matches!(
        server.register_session("s", linear_session(0xE5)),
        Err(ServerError::SessionExists(_))
    ));
    assert!(matches!(
        server.predict("nope", &[0.0; 5]),
        Err(ServerError::UnknownSession(_))
    ));
    assert!(matches!(
        server.predict("s", &[0.0; 3]),
        Err(ServerError::FeatureMismatch {
            expected: 5,
            got: 3
        })
    ));
    assert!(matches!(
        server.delete("nope", &[1]),
        Err(ServerError::UnknownSession(_))
    ));

    // Shutdown drains pending work (tickets resolve), then rejects new
    // deletions; predictions keep working on the frozen snapshot. Repeat
    // shutdowns are no-ops.
    let ticket = server.delete("s", &[0, 1]).unwrap();
    server.shutdown();
    let reply = ticket.wait().expect("pending batch must drain on shutdown");
    assert_eq!(reply.applied, 2);
    assert!(matches!(
        server.delete("s", &[2]),
        Err(ServerError::ShuttingDown)
    ));
    server.predict("s", &[0.0; 5]).unwrap();
    server.shutdown();
    server.shutdown();
}
