//! Concurrency + determinism torture for the deletion service.
//!
//! The invariants under test, each per `apply_threads` × SIMD-level leg
//! (the same {1, 4} × {off, avx2} grid CI pins via `PRIU_THREADS` /
//! `PRIU_SIMD`):
//!
//! 1. A coalesced batch is **bitwise** identical to one direct
//!    `DeletionEngine::apply` with the union removal set under the same
//!    pin — the server adds scheduling, not arithmetic.
//! 2. Coalesced deletion is **numerically** equivalent to applying the
//!    same requests sequentially (exactly equivalent in exact arithmetic
//!    for the closed-form path; FP rounding differs because the downdates
//!    associate differently).
//! 3. Predictions racing deletion batches observe a committed model —
//!    pre-batch or post-batch, never a torn intermediate — and epochs are
//!    monotone per observer.

use std::collections::HashMap;
use std::sync::atomic::{AtomicBool, Ordering};
use std::sync::Arc;

use priu_core::{
    DeletionEngine, Delta, DeltaRows, Method, Model, ModelKind, Session, SessionBuilder,
    TrainerConfig,
};
use priu_data::catalog::Hyperparameters;
use priu_data::dataset::{DenseDataset, Labels};
use priu_data::synthetic::classification::{generate_binary_classification, ClassificationConfig};
use priu_data::synthetic::regression::{generate_regression, RegressionConfig};
use priu_linalg::par;
use priu_linalg::simd::{self, SimdLevel};
use priu_linalg::{Matrix, Vector};
use priu_server::{AddedRows, PlannerConfig, SchedulerConfig, Server, ServerConfig};

const N: usize = 200;

fn linear_session(seed: u64) -> Session {
    let data = generate_regression(&RegressionConfig {
        num_samples: N,
        num_features: 5,
        noise_std: 0.1,
        seed,
        ..Default::default()
    });
    let config = TrainerConfig::from_hyper(Hyperparameters {
        batch_size: 25,
        num_iterations: 60,
        learning_rate: 0.05,
        regularization: 0.05,
    });
    SessionBuilder::dense(data, config)
        .seed(4)
        .opt_capture(false)
        .fit()
        .expect("linear fixture")
}

fn logistic_session(seed: u64) -> Session {
    let data = generate_binary_classification(&ClassificationConfig {
        num_samples: N,
        num_features: 6,
        separation: 3.0,
        label_noise: 0.5,
        seed,
        ..Default::default()
    });
    let config = TrainerConfig::from_hyper(Hyperparameters {
        batch_size: 25,
        num_iterations: 60,
        learning_rate: 0.3,
        regularization: 0.02,
    });
    SessionBuilder::dense(data, config)
        .seed(5)
        .opt_capture(false)
        .fit()
        .expect("logistic fixture")
}

/// The CI determinism grid: apply-thread counts × available SIMD levels.
fn legs() -> Vec<(usize, SimdLevel)> {
    let mut legs = Vec::new();
    for threads in [1usize, 4] {
        for level in simd::available_levels() {
            legs.push((threads, level));
        }
    }
    legs
}

fn model_bits(model: &Model) -> Vec<u64> {
    model.flatten().iter().map(|w| w.to_bits()).collect()
}

fn pinned_apply(
    threads: usize,
    level: SimdLevel,
    session: &Session,
    method: Method,
    rows: &[usize],
) -> Session {
    par::with_threads(threads, || {
        simd::with_level(level, || session.apply(method, rows))
    })
    .expect("reference apply")
    .session
}

fn server_config(
    threads: usize,
    level: SimdLevel,
    coalesce: bool,
    force: Option<Method>,
) -> ServerConfig {
    ServerConfig {
        planner: PlannerConfig {
            // Batches form on flush only: the huge window keeps wall-clock
            // timing out of the test's batch boundaries.
            window: std::time::Duration::from_secs(3600),
            max_batch: 1 << 20,
            coalesce,
        },
        scheduler: SchedulerConfig {
            force_method: force,
            retrain_drift: 2.0, // never force a retrain mid-test
            ..SchedulerConfig::default()
        },
        apply_threads: Some(threads),
        simd_level: Some(level),
        durability: None,
    }
}

#[test]
fn coalesced_batch_is_bitwise_one_union_apply_across_the_grid() {
    for (threads, level) in legs() {
        for (name, session, reference) in [
            ("lin", linear_session(0xA1), linear_session(0xA1)),
            ("log", logistic_session(0xB2), logistic_session(0xB2)),
        ] {
            let server = Server::start(server_config(threads, level, true, Some(Method::Priu)))
                .expect("start server");
            server.register_session(name, session).unwrap();

            // Three overlapping requests fold into the union {3, 10, 11, 42}.
            let t1 = server.delete(name, &[3]).unwrap();
            let t2 = server.delete(name, &[10, 11]).unwrap();
            let t3 = server.delete(name, &[42, 3]).unwrap();
            server.flush(name).unwrap();
            let r1 = t1.wait().unwrap();
            let r2 = t2.wait().unwrap();
            let r3 = t3.wait().unwrap();
            for reply in [&r1, &r2, &r3] {
                assert_eq!(reply.batch_rows, 4, "{name}@{threads}x{level:?}");
                assert_eq!(reply.method, Some(Method::Priu));
                assert_eq!(reply.epoch, 1);
                assert_eq!(reply.stale, 0);
            }
            assert_eq!((r1.requested, r1.applied), (1, 1));
            assert_eq!((r2.requested, r2.applied), (2, 2));
            assert_eq!((r3.requested, r3.applied), (2, 2));

            // Bitwise: the server committed exactly the model one direct
            // union apply produces under the same pin.
            let expected = pinned_apply(threads, level, &reference, Method::Priu, &[3, 10, 11, 42]);
            let (snapshot, epoch) = server.model_snapshot(name).unwrap();
            assert_eq!(epoch, 1);
            assert_eq!(
                model_bits(snapshot.model()),
                model_bits(expected.model()),
                "coalesced batch differs from union apply for {name} at \
                 threads={threads} level={level:?}"
            );

            // A second batch re-deleting id 3 is stale for that id and the
            // translation maps surviving stable ids to shifted rows.
            let t4 = server.delete(name, &[3, 7]).unwrap();
            server.flush(name).unwrap();
            let r4 = t4.wait().unwrap();
            assert_eq!((r4.requested, r4.applied, r4.stale), (2, 1, 1));
            assert_eq!(r4.batch_rows, 1);
            assert_eq!(r4.epoch, 2);
            // Stable id 7 sits at row 6 after {3} dropped out below it.
            let expected2 = pinned_apply(threads, level, &expected, Method::Priu, &[6]);
            let (snapshot2, _) = server.model_snapshot(name).unwrap();
            assert_eq!(
                model_bits(snapshot2.model()),
                model_bits(expected2.model()),
                "stable-id translation broke for {name}"
            );

            // An all-stale batch commits nothing and touches no state.
            let t5 = server.delete(name, &[3, 42]).unwrap();
            server.flush(name).unwrap();
            let r5 = t5.wait().unwrap();
            assert_eq!((r5.applied, r5.stale, r5.batch_rows), (0, 2, 0));
            assert_eq!(r5.method, None);
            assert_eq!(server.model_snapshot(name).unwrap().1, 2, "no epoch bump");
            server.shutdown();
        }
    }
}

/// Deterministic appended rows for the mixed-batch tests: xorshift
/// features, labels following the task (`±1` when `binary`).
fn fresh_rows(count: usize, width: usize, seed: u64, binary: bool) -> AddedRows {
    let mut state = seed.wrapping_mul(0x9E37_79B9_7F4A_7C15) | 1;
    let mut next = move || {
        state ^= state << 13;
        state ^= state >> 7;
        state ^= state << 17;
        (state >> 11) as f64 / (1u64 << 53) as f64 - 0.5
    };
    let features: Vec<f64> = (0..count * width).map(|_| next()).collect();
    let labels: Vec<f64> = (0..count)
        .map(|i| {
            if binary {
                if (seed + i as u64).is_multiple_of(2) {
                    1.0
                } else {
                    -1.0
                }
            } else {
                features[i * width..(i + 1) * width].iter().sum::<f64>() * 0.5
            }
        })
        .collect();
    AddedRows {
        num_features: width,
        features,
        labels,
    }
}

/// The dense block a list of `AddedRows` folds into, in admission order.
fn concat_rows(blocks: &[&AddedRows], binary: bool) -> DenseDataset {
    let width = blocks[0].num_features;
    let mut features = Vec::new();
    let mut labels = Vec::new();
    for block in blocks {
        features.extend_from_slice(&block.features);
        labels.extend_from_slice(&block.labels);
    }
    let x = Matrix::from_vec(labels.len(), width, features).expect("added block");
    let labels = if binary {
        Labels::Binary(Vector::from_vec(labels))
    } else {
        Labels::Continuous(Vector::from_vec(labels))
    };
    DenseDataset::new(x, labels)
}

fn pinned_apply_delta(
    threads: usize,
    level: SimdLevel,
    session: &Session,
    method: Method,
    delta: &Delta,
) -> Session {
    par::with_threads(threads, || {
        simd::with_level(level, || session.apply_delta(method, delta))
    })
    .expect("reference apply_delta")
    .session
}

#[test]
fn coalesced_mixed_batch_is_bitwise_one_union_apply_delta_across_the_grid() {
    for (threads, level) in legs() {
        for (name, session, reference, binary) in [
            ("lin", linear_session(0xA7), linear_session(0xA7), false),
            ("log", logistic_session(0xB8), logistic_session(0xB8), true),
        ] {
            let width = session.model().num_features();
            let server = Server::start(server_config(threads, level, true, Some(Method::Priu)))
                .expect("start server");
            server.register_session(name, session).unwrap();

            // One coalesced batch mixing all three request kinds: deletes
            // {3, 10, 11}, 8 appended rows across two blocks, and a tick
            // whose retention (197 pre-batch survivors + 8 added against
            // keep_last = 203) expires the two oldest rows {0, 1}.
            let block_a = fresh_rows(5, width, 0x11, binary);
            let block_b = fresh_rows(3, width, 0x22, binary);
            let keep = (N - 3 + 8 - 2) as u64;
            let t1 = server.delete(name, &[3]).unwrap();
            let t2 = server.add(name, block_a.clone()).unwrap();
            let t3 = server.delete(name, &[10, 11]).unwrap();
            let t4 = server.tick(name, Some(block_b.clone()), keep).unwrap();
            server.flush(name).unwrap();
            let replies = [
                t1.wait().unwrap(),
                t2.wait().unwrap(),
                t3.wait().unwrap(),
                t4.wait().unwrap(),
            ];
            for reply in &replies {
                assert_eq!(
                    reply.batch_rows, 5,
                    "{name}@{threads}x{level:?}: 3 deleted + 2 expired"
                );
                assert_eq!(reply.expired, 2);
                assert_eq!(reply.method, Some(Method::Priu));
                assert_eq!(reply.epoch, 1);
                assert_eq!(reply.stale, 0);
            }
            assert_eq!((replies[0].applied, replies[0].added), (1, 0));
            assert_eq!((replies[1].applied, replies[1].added), (0, 5));
            assert_eq!((replies[2].applied, replies[2].added), (2, 0));
            assert_eq!((replies[3].applied, replies[3].added), (0, 3));

            // Bitwise: the server committed exactly the model ONE direct
            // `apply_delta` with the union delta produces under the same
            // pin — expired rows ride the same removal set, additions fold
            // in admission order.
            let delta = Delta {
                removed: vec![0, 1, 3, 10, 11],
                added: Some(DeltaRows::Dense(concat_rows(&[&block_a, &block_b], binary))),
            };
            let expected = pinned_apply_delta(threads, level, &reference, Method::Priu, &delta);
            let (snapshot, epoch) = server.model_snapshot(name).unwrap();
            assert_eq!(epoch, 1);
            assert_eq!(snapshot.num_samples(), N - 5 + 8);
            assert_eq!(
                model_bits(snapshot.model()),
                model_bits(expected.model()),
                "mixed batch differs from one union apply_delta for {name} \
                 at threads={threads} level={level:?}"
            );

            // Appended rows got fresh stable ids N..N+8: deleting the
            // first appended row lands on survivor row N-5 (five rows
            // dropped out below it), while a retired id is stale.
            let t5 = server.delete(name, &[N as u64, 0]).unwrap();
            server.flush(name).unwrap();
            let r5 = t5.wait().unwrap();
            assert_eq!((r5.requested, r5.applied, r5.stale), (2, 1, 1));
            assert_eq!(r5.epoch, 2);
            let expected2 = pinned_apply(threads, level, &expected, Method::Priu, &[N - 5]);
            let (snapshot2, _) = server.model_snapshot(name).unwrap();
            assert_eq!(
                model_bits(snapshot2.model()),
                model_bits(expected2.model()),
                "stable ids of appended rows broke for {name}"
            );
            server.shutdown();
        }
    }
}

/// Client-side mirror of the planner's batch semantics: the union of
/// deletes lands first, then retention expires the oldest pre-batch
/// survivors (clamped to leave one), then additions take fresh ids.
struct Mirror {
    live: Vec<u64>,
    next_id: u64,
}

impl Mirror {
    fn new(n: usize) -> Self {
        Self {
            live: (0..n as u64).collect(),
            next_id: n as u64,
        }
    }

    fn apply(&mut self, deleted: &[u64], added: usize, keep_last: Option<u64>) {
        self.live.retain(|id| !deleted.contains(id));
        if let Some(keep) = keep_last {
            let over = (self.live.len() + added).saturating_sub(keep as usize);
            let expire = over.min(self.live.len().saturating_sub(1));
            self.live.drain(..expire);
        }
        for _ in 0..added {
            self.live.push(self.next_id);
            self.next_id += 1;
        }
    }
}

#[test]
fn randomized_interleaved_stream_tracks_retrain_from_scratch() {
    // A randomized interleaved stream of deletions, additions, and window
    // ticks applied incrementally (PrIU) must stay numerically close to a
    // server that refits offline on every batch — the paper's accuracy
    // claim carried to the serving layer. Both servers see the identical
    // stream, so any divergence is the update arithmetic itself.
    let (threads, level) = (1, simd::available_levels()[0]);
    for (name, binary, seed) in [("lin", false, 0xC301u64), ("log", true, 0xC302u64)] {
        let incremental = Server::start(server_config(threads, level, true, Some(Method::Priu)))
            .expect("start server");
        let refit = Server::start(server_config(threads, level, true, Some(Method::Retrain)))
            .expect("start server");
        incremental
            .register_session(
                name,
                if binary {
                    logistic_session(0xEE)
                } else {
                    linear_session(0xEE)
                },
            )
            .unwrap();
        refit
            .register_session(
                name,
                if binary {
                    logistic_session(0xEE)
                } else {
                    linear_session(0xEE)
                },
            )
            .unwrap();
        let width = if binary { 6 } else { 5 };

        let mut state = seed;
        let mut rng = move || {
            state = state
                .wrapping_mul(6364136223846793005)
                .wrapping_add(1442695040888963407);
            state >> 33
        };
        let mut mirror = Mirror::new(N);
        for wave in 0..8u64 {
            // Three random live deletions + a 2-row addition; every third
            // wave also shrinks the window by a few rows.
            let deleted: Vec<u64> = (0..3)
                .map(|_| mirror.live[rng() as usize % mirror.live.len()])
                .collect();
            let block = fresh_rows(2, width, seed ^ wave, binary);
            let keep = (wave % 3 == 2).then(|| mirror.live.len() as u64 - 3);
            let mut tickets = Vec::new();
            for server in [&incremental, &refit] {
                tickets.push(server.delete(name, &deleted).unwrap());
                tickets.push(server.add(name, block.clone()).unwrap());
                if let Some(keep) = keep {
                    tickets.push(server.tick(name, None, keep).unwrap());
                }
                server.flush(name).unwrap();
            }
            for ticket in tickets {
                ticket.wait().unwrap();
            }
            let distinct: std::collections::BTreeSet<u64> = deleted.iter().copied().collect();
            let distinct: Vec<u64> = distinct.into_iter().collect();
            mirror.apply(&distinct, block.num_rows(), keep);
        }

        let (priu_model, _) = incremental.model_snapshot(name).unwrap();
        let (refit_model, _) = refit.model_snapshot(name).unwrap();
        assert_eq!(priu_model.num_samples(), mirror.live.len());
        assert_eq!(refit_model.num_samples(), mirror.live.len());
        let cmp = priu_core::compare_models(refit_model.model(), priu_model.model()).unwrap();
        assert!(
            cmp.cosine_similarity > 0.99,
            "{name}: incremental stream drifted from per-batch refit: \
             similarity {} (l2 {})",
            cmp.cosine_similarity,
            cmp.l2_distance
        );
        incremental.shutdown();
        refit.shutdown();
    }
}

#[test]
fn coalesced_and_sequential_deletion_agree_numerically() {
    let (threads, level) = (1, simd::available_levels()[0]);
    let batched = Server::start(server_config(
        threads,
        level,
        true,
        Some(Method::ClosedForm),
    ))
    .expect("start server");
    let one_by_one = Server::start(server_config(
        threads,
        level,
        false,
        Some(Method::ClosedForm),
    ))
    .expect("start server");
    batched.register_session("s", linear_session(0xC3)).unwrap();
    one_by_one
        .register_session("s", linear_session(0xC3))
        .unwrap();

    let waves: [&[u64]; 3] = [&[5, 17], &[29], &[17, 88, 120]];
    for ids in waves {
        let tb = batched.delete("s", ids).unwrap();
        let ts = one_by_one.delete("s", ids).unwrap();
        batched.flush("s").unwrap();
        one_by_one.flush("s").unwrap();
        tb.wait().unwrap();
        ts.wait().unwrap();
    }
    let (mb, _) = batched.model_snapshot("s").unwrap();
    let (ms, _) = one_by_one.model_snapshot("s").unwrap();
    assert_eq!(mb.num_samples(), ms.num_samples());
    assert_eq!(mb.num_samples(), N - 5, "5 distinct rows (17 repeats)");
    let diff: f64 = mb
        .model()
        .flatten()
        .iter()
        .zip(ms.model().flatten().iter())
        .map(|(a, b)| (a - b).abs())
        .fold(0.0, f64::max);
    assert!(
        diff < 1e-8,
        "closed-form batched vs sequential drifted: max |Δw| = {diff:e}"
    );
    batched.shutdown();
    one_by_one.shutdown();
}

/// Expected per-epoch predictions, mirroring the server's predict rules.
fn expected_prediction(model: &Model, probe: &[f64]) -> (u64, Option<u64>) {
    match model.kind() {
        ModelKind::Linear => (model.predict_linear(probe).to_bits(), None),
        ModelKind::BinaryLogistic => (
            model.decision_value(probe).to_bits(),
            Some(model.predict_class(probe) as u64),
        ),
        ModelKind::MultinomialLogistic { .. } => {
            let class = model.predict_class(probe);
            (model.logits(probe)[class].to_bits(), Some(class as u64))
        }
    }
}

#[test]
fn predictions_race_deletion_batches_without_tearing() {
    const WAVES: usize = 5;
    // Per-wave deletion schedule: disjoint stable ids so every wave removes
    // exactly 6 live rows; shared across the four sessions.
    let wave_ids = |w: usize| -> [Vec<u64>; 3] {
        let base = (w as u64) * 6;
        [
            vec![base, base + 1],
            vec![base + 2, base + 3],
            vec![base + 4, base + 5, base], // overlap inside the wave
        ]
    };

    for (threads, level) in legs() {
        let sessions: Vec<(String, Session)> = vec![
            ("lin-a".into(), linear_session(0xD0)),
            ("lin-b".into(), linear_session(0xD1)),
            ("log-a".into(), logistic_session(0xD2)),
            ("log-b".into(), logistic_session(0xD3)),
        ];
        let references: Vec<Session> = vec![
            linear_session(0xD0),
            linear_session(0xD1),
            logistic_session(0xD2),
            logistic_session(0xD3),
        ];

        // Reference chain: for each session, the model expected at every
        // epoch (epoch w = after wave w-1), built by direct pinned applies
        // of each wave's union.
        let probe_for = |session: &Session| -> Vec<f64> {
            (0..session.model().num_features())
                .map(|i| 0.25 * (i as f64 + 1.0))
                .collect()
        };
        let mut expected: Vec<HashMap<u64, (u64, Option<u64>)>> = Vec::new();
        let mut finals: Vec<Vec<u64>> = Vec::new();
        for reference in references {
            let probe = probe_for(&reference);
            let mut ids: Vec<u64> = (0..N as u64).collect();
            let mut by_epoch = HashMap::new();
            by_epoch.insert(0u64, expected_prediction(reference.model(), &probe));
            let mut current = reference;
            for w in 0..WAVES {
                let union: std::collections::BTreeSet<u64> =
                    wave_ids(w).iter().flatten().copied().collect();
                let rows: Vec<usize> = union
                    .iter()
                    .filter_map(|id| ids.binary_search(id).ok())
                    .collect();
                current = pinned_apply(threads, level, &current, Method::Priu, &rows);
                ids.retain(|id| !union.contains(id));
                by_epoch.insert(w as u64 + 1, expected_prediction(current.model(), &probe));
            }
            expected.push(by_epoch);
            finals.push(model_bits(current.model()));
        }

        let server = Arc::new(
            Server::start(server_config(threads, level, true, Some(Method::Priu)))
                .expect("start server"),
        );
        for (name, session) in sessions {
            server.register_session(&name, session).unwrap();
        }
        let names = ["lin-a", "lin-b", "log-a", "log-b"];

        // Four deleter threads (one per session) drive the waves while
        // eight predict threads hammer the snapshots.
        let done = Arc::new(AtomicBool::new(false));
        let predictors: Vec<_> = (0..8)
            .map(|p| {
                let server = Arc::clone(&server);
                let done = Arc::clone(&done);
                let name = names[p % names.len()];
                std::thread::spawn(move || {
                    let features = server.model_snapshot(name).unwrap().0;
                    let probe: Vec<f64> = (0..features.model().num_features())
                        .map(|i| 0.25 * (i as f64 + 1.0))
                        .collect();
                    let mut observed: Vec<(u64, u64, Option<u64>)> = Vec::new();
                    let mut last_epoch = 0;
                    while !done.load(Ordering::Acquire) {
                        let prediction = server.predict(name, &probe).unwrap();
                        assert!(
                            prediction.epoch >= last_epoch,
                            "epochs must be monotone per observer"
                        );
                        last_epoch = prediction.epoch;
                        observed.push((
                            prediction.epoch,
                            prediction.value.to_bits(),
                            prediction.class.map(|c| c as u64),
                        ));
                    }
                    (name, observed)
                })
            })
            .collect();

        let deleters: Vec<_> = names
            .iter()
            .map(|&name| {
                let server = Arc::clone(&server);
                std::thread::spawn(move || {
                    for w in 0..WAVES {
                        let tickets: Vec<_> = wave_ids(w)
                            .iter()
                            .map(|ids| server.delete(name, ids).unwrap())
                            .collect();
                        server.flush(name).unwrap();
                        for ticket in tickets {
                            let reply = ticket.wait().unwrap();
                            assert_eq!(reply.epoch, w as u64 + 1, "{name} wave {w}");
                            assert_eq!(reply.batch_rows, 6, "{name} wave {w}");
                            assert_eq!(reply.method, Some(Method::Priu));
                        }
                    }
                })
            })
            .collect();
        for deleter in deleters {
            deleter.join().expect("deleter panicked");
        }
        done.store(true, Ordering::Release);

        // Every observed prediction must exactly match the committed model
        // of its epoch — a torn read could match no epoch.
        for predictor in predictors {
            let (name, observed) = predictor.join().expect("predictor panicked");
            let session_ix = names.iter().position(|&n| n == name).unwrap();
            for (epoch, value_bits, class) in observed {
                let (expected_bits, expected_class) = expected[session_ix]
                    .get(&epoch)
                    .unwrap_or_else(|| panic!("{name}: impossible epoch {epoch}"));
                assert_eq!(
                    (value_bits, class),
                    (*expected_bits, *expected_class),
                    "{name}@epoch {epoch}: prediction does not match any \
                     committed model (threads={threads} level={level:?})"
                );
            }
        }

        // Final models are bitwise the reference chain's.
        for (session_ix, &name) in names.iter().enumerate() {
            let (snapshot, epoch) = server.model_snapshot(name).unwrap();
            assert_eq!(epoch, WAVES as u64);
            assert_eq!(
                model_bits(snapshot.model()),
                finals[session_ix],
                "{name}: final model differs from the reference chain"
            );
            let stats = server.stats(name).unwrap();
            assert_eq!(stats.num_samples, N - WAVES * 6);
            assert_eq!(stats.pending, 0);
            let priu_decides: u64 = stats
                .decisions
                .iter()
                .find(|(m, _)| *m == Method::Priu)
                .unwrap()
                .1;
            assert_eq!(priu_decides, WAVES as u64);
        }
        server.shutdown();
    }
}

#[test]
fn admission_errors_and_shutdown_are_typed() {
    use priu_server::ServerError;
    let server = Server::start(ServerConfig::default()).expect("start server");
    server.register_session("s", linear_session(0xE4)).unwrap();
    assert!(matches!(
        server.register_session("s", linear_session(0xE5)),
        Err(ServerError::SessionExists(_))
    ));
    assert!(matches!(
        server.predict("nope", &[0.0; 5]),
        Err(ServerError::UnknownSession(_))
    ));
    assert!(matches!(
        server.predict("s", &[0.0; 3]),
        Err(ServerError::FeatureMismatch {
            expected: 5,
            got: 3
        })
    ));
    assert!(matches!(
        server.delete("nope", &[1]),
        Err(ServerError::UnknownSession(_))
    ));

    // Shutdown drains pending work (tickets resolve), then rejects new
    // deletions; predictions keep working on the frozen snapshot. Repeat
    // shutdowns are no-ops.
    let ticket = server.delete("s", &[0, 1]).unwrap();
    server.shutdown();
    let reply = ticket.wait().expect("pending batch must drain on shutdown");
    assert_eq!(reply.applied, 2);
    assert!(matches!(
        server.delete("s", &[2]),
        Err(ServerError::ShuttingDown)
    ));
    server.predict("s", &[0.0; 5]).unwrap();
    server.shutdown();
    server.shutdown();
}
