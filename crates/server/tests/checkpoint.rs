//! Group commit + WAL checkpoint behavior under load.
//!
//! Three contracts on top of the crash suite in `recovery.rs`:
//!
//! 1. **Chained speculative resolution is invisible**: a durable server
//!    applying a burst of uncoalesced batches as group-committed chains
//!    lands bitwise on the state a non-durable server reaches applying
//!    the same batches one by one — and a restart reproduces it again.
//! 2. **Group commit amortizes fsyncs**: a burst of single-row deletes
//!    shares fsyncs across WAL frames instead of paying one per batch.
//! 3. **Checkpoints bound the log**: with aggressive compaction the WAL
//!    file plateaus while the cumulative appended byte count keeps
//!    growing — the log never outlives its snapshot coverage.

use std::fs;
use std::path::PathBuf;
use std::time::Duration;

use priu_core::{DeletionEngine, Method, Session, SessionBuilder, TrainerConfig};
use priu_data::catalog::Hyperparameters;
use priu_data::synthetic::regression::{generate_regression, RegressionConfig};
use priu_server::{
    AddedRows, DeleteTicket, DurabilityConfig, PlannerConfig, SchedulerConfig, Server,
    ServerConfig, WAL_FILE,
};

const NAME: &str = "ckpt/lin";
const N: usize = 200;
const WIDTH: usize = 5;

fn fixture() -> Session {
    let data = generate_regression(&RegressionConfig {
        num_samples: N,
        num_features: WIDTH,
        noise_std: 0.1,
        seed: 0xC1,
        ..Default::default()
    });
    let config = TrainerConfig::from_hyper(Hyperparameters {
        batch_size: 25,
        num_iterations: 60,
        learning_rate: 0.05,
        regularization: 0.05,
    });
    SessionBuilder::dense(data, config)
        .seed(4)
        .opt_capture(false)
        .fit()
        .expect("linear fixture")
}

/// Uncoalesced planner + pinned method: every request is its own batch
/// (so bursts form chains) and the scheduler cannot diverge on timing.
fn config(coalesce: bool, durability: Option<DurabilityConfig>) -> ServerConfig {
    ServerConfig {
        planner: PlannerConfig {
            window: Duration::from_secs(3600),
            max_batch: 1 << 20,
            coalesce,
        },
        scheduler: SchedulerConfig {
            force_method: Some(Method::Priu),
            retrain_drift: 2.0,
            ..SchedulerConfig::default()
        },
        apply_threads: None,
        simd_level: None,
        durability,
    }
}

fn tempdir(tag: &str) -> PathBuf {
    let dir = std::env::temp_dir().join(format!("priu-checkpoint-{tag}-{}", std::process::id()));
    let _ = fs::remove_dir_all(&dir);
    fs::create_dir_all(&dir).expect("create temp dir");
    dir
}

fn model_bits(server: &Server) -> (Vec<u64>, u64) {
    let (session, epoch) = server.model_snapshot(NAME).expect("session present");
    (
        session
            .model()
            .flatten()
            .iter()
            .map(|w| w.to_bits())
            .collect(),
        epoch,
    )
}

fn added(rows: usize, salt: usize) -> AddedRows {
    let mut features = Vec::with_capacity(rows * WIDTH);
    for r in 0..rows {
        for c in 0..WIDTH {
            features.push(((salt * 31 + r * 7 + c) as f64 * 0.37).sin());
        }
    }
    let labels = (0..rows)
        .map(|r| ((salt * 5 + r) as f64 * 0.23).cos())
        .collect();
    AddedRows {
        num_features: WIDTH,
        features,
        labels,
    }
}

/// The burst script both servers in the bitwise test replay: single-row
/// deletes, appended rows, a retention tick whose expiry must be
/// speculated mid-chain, and deliberately stale deletes that become
/// no-op links of a chain. Submitted without waiting, so on the durable
/// server the backlog forms chains of speculatively resolved batches.
fn submit_burst(server: &Server) -> Vec<DeleteTicket> {
    let mut tickets = Vec::new();
    for id in 0..40u64 {
        tickets.push(server.delete(NAME, &[id]).expect("delete"));
    }
    tickets.push(server.add(NAME, added(3, 1)).expect("add"));
    for id in 40..80u64 {
        tickets.push(server.delete(NAME, &[id]).expect("delete"));
    }
    // 123 live rows + 2 appended, keep 100: expires the oldest ~25.
    tickets.push(server.tick(NAME, Some(added(2, 2)), 100).expect("tick"));
    // The tick's expiry retired the oldest surviving ids — these are
    // stale by the time their chain link resolves.
    for id in 80..85u64 {
        tickets.push(server.delete(NAME, &[id]).expect("stale delete"));
    }
    for id in 110..130u64 {
        tickets.push(server.delete(NAME, &[id]).expect("delete"));
    }
    tickets
}

/// Chains must be invisible: the group-committed durable run, the
/// batch-at-a-time reference run, and a post-restart recovery all land
/// on identical model bits and epochs.
#[test]
fn chained_group_commit_matches_sequential_application_bitwise() {
    let reference = Server::start(config(false, None)).expect("reference server");
    reference
        .register_session(NAME, fixture())
        .expect("register");
    for ticket in submit_burst(&reference) {
        ticket.wait().expect("reference ack");
    }
    let (want_bits, want_epoch) = model_bits(&reference);
    reference.shutdown();

    let dir = tempdir("bitwise");
    let durable =
        Server::start(config(false, Some(DurabilityConfig::new(&dir)))).expect("durable server");
    durable.register_session(NAME, fixture()).expect("register");
    for ticket in submit_burst(&durable) {
        ticket.wait().expect("durable ack");
    }
    let (bits, epoch) = model_bits(&durable);
    assert_eq!(epoch, want_epoch, "chains changed the commit count");
    assert_eq!(bits, want_bits, "group-committed chains diverged bitwise");
    let before = durable
        .model_snapshot(NAME)
        .expect("session")
        .0
        .to_snapshot_bytes();
    durable.shutdown();

    let recovered =
        Server::start(config(false, Some(DurabilityConfig::new(&dir)))).expect("recovery");
    let (bits, epoch) = model_bits(&recovered);
    assert_eq!(epoch, want_epoch);
    assert_eq!(bits, want_bits, "recovery of a chained log diverged");
    assert_eq!(
        recovered
            .model_snapshot(NAME)
            .expect("session")
            .0
            .to_snapshot_bytes(),
        before,
        "restart changed the serialized session"
    );
    recovered.shutdown();
    let _ = fs::remove_dir_all(&dir);
}

/// Group commit's whole point: a burst of durable single-row deletes
/// shares fsyncs, so the fsync count stays strictly below the frame
/// count and at least one fsync covered a multi-frame group.
#[test]
fn group_commit_amortizes_fsyncs_across_a_burst() {
    let dir = tempdir("amortize");
    let server =
        Server::start(config(false, Some(DurabilityConfig::new(&dir)))).expect("durable server");
    server.register_session(NAME, fixture()).expect("register");
    let tickets: Vec<DeleteTicket> = (0..150u64)
        .map(|id| server.delete(NAME, &[id]).expect("delete"))
        .collect();
    for ticket in tickets {
        ticket.wait().expect("ack");
    }
    let stats = server.durability_stats().expect("durable server has stats");
    assert_eq!(stats.frames, 150, "one WAL frame per applied batch");
    assert!(
        stats.fsyncs < stats.frames,
        "no fsync was shared: {} fsyncs for {} frames",
        stats.fsyncs,
        stats.frames
    );
    assert!(
        stats.max_group >= 2,
        "no group ever held more than one frame"
    );
    server.shutdown();
    let _ = fs::remove_dir_all(&dir);
}

/// With aggressive compaction the on-disk log plateaus: after every
/// phase the file holds at most a phase's worth of frames, while the
/// cumulative appended bytes keep growing and ≥3 checkpoints fire.
#[test]
fn checkpoints_bound_the_wal_across_a_long_stream() {
    let dir = tempdir("bounded");
    let mut durability = DurabilityConfig::new(&dir);
    durability.snapshot_every = 2;
    durability.checkpoint_bytes = 1; // compaction after every snapshot
    let server = Server::start(config(true, Some(durability.clone()))).expect("durable server");
    server.register_session(NAME, fixture()).expect("register");

    let wal_path = dir.join(WAL_FILE);
    let mut phase_end_sizes = Vec::new();
    let mut wave = 0usize;
    for _phase in 0..3 {
        for _ in 0..8 {
            let base = (wave * 3) as u64;
            let del = server
                .delete(NAME, &[base, base + 1, base + 2])
                .expect("delete");
            let add = server.add(NAME, added(2, 100 + wave)).expect("add");
            server.flush(NAME).expect("flush");
            del.wait().expect("delete ack");
            add.wait().expect("add ack");
            wave += 1;
        }
        // Barrier: every queued snapshot lands and its compaction runs.
        server.drain_durability();
        phase_end_sizes.push(fs::metadata(&wal_path).expect("wal exists").len());
    }
    let stats = server.durability_stats().expect("stats");
    assert!(
        stats.checkpoints >= 3,
        "expected ≥3 checkpoints, got {}",
        stats.checkpoints
    );
    // Plateau: the file never holds more than about one phase of frames,
    // even though three phases' worth of bytes were appended in total.
    let one_phase = stats.bytes / 3;
    for (phase, &size) in phase_end_sizes.iter().enumerate() {
        assert!(
            size <= one_phase,
            "phase {phase}: WAL is {size} bytes, more than one phase's {one_phase}"
        );
    }
    let (want_bits, want_epoch) = model_bits(&server);
    server.shutdown();

    // A checkpoint-headed log + snapshots recover bitwise like any other.
    let recovered = Server::start(config(true, Some(durability))).expect("recovery");
    let (bits, epoch) = model_bits(&recovered);
    assert_eq!(epoch, want_epoch);
    assert_eq!(bits, want_bits, "recovery from a compacted log diverged");
    recovered.shutdown();
    let _ = fs::remove_dir_all(&dir);
}
