//! Crash-recovery torture for the durability layer.
//!
//! The contract under test: a change is acknowledged only after its WAL
//! record is fsync'd, and a restarted server recovers **bitwise** the
//! committed prefix of the delta stream — never a torn intermediate,
//! never a lost acknowledged batch — under the same `PRIU_THREADS` ×
//! `PRIU_SIMD` pin (this binary inherits both from the environment, so
//! the CI grid pins parent, child, and recovery identically).
//!
//! Three attack surfaces:
//!
//! 1. **Process crashes** at every [`fail_point`] on the commit,
//!    snapshot, and recovery paths: the suite re-execs itself
//!    (`crash_child` below) with `PRIU_FAILPOINT` armed, lets the child
//!    `abort()` mid-commit, then recovers the store and checks the
//!    surviving state against a reference chain of all committed
//!    prefixes. The child journals every acknowledged wave to an fsync'd
//!    ack journal, so the parent knows exactly which waves the durability
//!    contract covers: recovered state must be ≥ the acked prefix and at
//!    most one un-acked batch ahead.
//! 2. **Media corruption**: the WAL truncated at seeded random offsets
//!    and bit-flipped mid-file, snapshots torn (stray `.tmp`) and
//!    corrupted. Recovery must degrade to an older committed prefix with
//!    a typed report — no panics, no partial states.
//! 3. **Crashes during recovery itself**: redo is read-only until the
//!    next commit, so a crash mid-redo must leave the store recoverable.
//!
//! Every wave of the 6-wave stream mixes the request kinds the WAL must
//! reproduce exactly: overlapping deletes that coalesce, dense row adds,
//! and retention ticks whose expiry resolution is recorded (not
//! re-derived) so redo cannot diverge.

use std::collections::HashMap;
use std::fs::{self, OpenOptions};
use std::io::Write;
use std::path::{Path, PathBuf};
use std::process::{Command, Stdio};
use std::sync::OnceLock;
use std::time::Duration;

use priu_core::{DeletionEngine, Method, Session, SessionBuilder, TrainerConfig};
use priu_data::catalog::Hyperparameters;
use priu_data::synthetic::classification::{generate_binary_classification, ClassificationConfig};
use priu_data::synthetic::regression::{generate_regression, RegressionConfig};
use priu_server::{
    scan_wal, AddedRows, DeleteTicket, DurabilityConfig, PlannerConfig, SchedulerConfig, Server,
    ServerConfig, FAILPOINT_ENV, WAL_FILE,
};

const N: usize = 200;
const WAVES: usize = 6;

struct Spec {
    name: &'static str,
    width: usize,
    binary: bool,
}

const SPECS: [Spec; 2] = [
    // Slashes in the names exercise the hex snapshot-filename encoding.
    Spec {
        name: "crash/lin",
        width: 5,
        binary: false,
    },
    Spec {
        name: "crash/log",
        width: 6,
        binary: true,
    },
];

fn fixture(spec: &Spec) -> Session {
    if spec.binary {
        let data = generate_binary_classification(&ClassificationConfig {
            num_samples: N,
            num_features: spec.width,
            separation: 3.0,
            label_noise: 0.5,
            seed: 0xD2,
            ..Default::default()
        });
        let config = TrainerConfig::from_hyper(Hyperparameters {
            batch_size: 25,
            num_iterations: 60,
            learning_rate: 0.3,
            regularization: 0.02,
        });
        SessionBuilder::dense(data, config)
            .seed(5)
            .opt_capture(false)
            .fit()
            .expect("logistic fixture")
    } else {
        let data = generate_regression(&RegressionConfig {
            num_samples: N,
            num_features: spec.width,
            noise_std: 0.1,
            seed: 0xD1,
            ..Default::default()
        });
        let config = TrainerConfig::from_hyper(Hyperparameters {
            batch_size: 25,
            num_iterations: 60,
            learning_rate: 0.05,
            regularization: 0.05,
        });
        SessionBuilder::dense(data, config)
            .seed(4)
            .opt_capture(false)
            .fit()
            .expect("linear fixture")
    }
}

fn config(durability: Option<DurabilityConfig>) -> ServerConfig {
    ServerConfig {
        planner: PlannerConfig {
            // Batches form on flush only, so wave boundaries are exact.
            window: Duration::from_secs(3600),
            max_batch: 1 << 20,
            coalesce: true,
        },
        scheduler: SchedulerConfig {
            force_method: Some(Method::Priu),
            retrain_drift: 2.0,
            ..SchedulerConfig::default()
        },
        // Inherit the ambient PRIU_THREADS / PRIU_SIMD pin: the spawned
        // child and the recovering parent then run the same leg.
        apply_threads: None,
        simd_level: None,
        durability,
    }
}

/// Durable config with the default group commit and checkpoint
/// threshold, overridable through the same env vars the crash children
/// inherit (`PRIU_CRASH_MAX_GROUP`, `PRIU_CRASH_CKPT_BYTES`) so a parent
/// can steer the child's grouping and compaction without new plumbing.
fn durable(dir: &Path, snapshot_every: u64) -> ServerConfig {
    let mut durability = DurabilityConfig::new(dir);
    durability.snapshot_every = snapshot_every;
    if let Some(max_group) = std::env::var("PRIU_CRASH_MAX_GROUP")
        .ok()
        .and_then(|v| v.parse().ok())
    {
        durability.group.max_group = max_group;
    }
    if let Some(bytes) = std::env::var("PRIU_CRASH_CKPT_BYTES")
        .ok()
        .and_then(|v| v.parse().ok())
    {
        durability.checkpoint_bytes = bytes;
    }
    config(Some(durability))
}

fn tempdir(tag: &str) -> PathBuf {
    let dir = std::env::temp_dir().join(format!("priu-recovery-{tag}-{}", std::process::id()));
    let _ = fs::remove_dir_all(&dir);
    fs::create_dir_all(&dir).expect("create temp dir");
    dir
}

/// Deterministic dense rows for wave `wave`: same call sites in the
/// child, the reference run, and redo must see identical values.
fn added(spec: &Spec, count: usize, wave: usize) -> AddedRows {
    let mut features = Vec::with_capacity(count * spec.width);
    for r in 0..count {
        for c in 0..spec.width {
            features.push(((wave * 31 + r * 7 + c) as f64 * 0.37).sin());
        }
    }
    let labels = (0..count)
        .map(|r| {
            if spec.binary {
                if (wave + r).is_multiple_of(2) {
                    1.0
                } else {
                    -1.0
                }
            } else {
                ((wave * 5 + r) as f64 * 0.23).cos()
            }
        })
        .collect();
    AddedRows {
        num_features: spec.width,
        features,
        labels,
    }
}

/// Issues wave `w`'s requests for one session and flushes them into a
/// single coalesced batch. Every wave is non-empty, so each one bumps
/// the epoch by exactly one and changes the model bits — state index
/// `w + 1` in the reference chain is unambiguous.
fn drive_wave(server: &Server, spec: &Spec, w: usize) -> Vec<DeleteTicket> {
    let name = spec.name;
    let mut tickets = Vec::new();
    match w {
        0 => {
            // Overlapping deletes coalesce to the union {3, 10, 11, 42}.
            tickets.push(server.delete(name, &[3]).expect("delete"));
            tickets.push(server.delete(name, &[10, 11]).expect("delete"));
            tickets.push(server.delete(name, &[42, 3]).expect("delete"));
        }
        1 => tickets.push(server.add(name, added(spec, 5, w)).expect("add")),
        2 => {
            tickets.push(server.delete(name, &[20, 21]).expect("delete"));
            tickets.push(server.add(name, added(spec, 4, w)).expect("add"));
        }
        // Retention tick: expiry of the 6 oldest live rows is resolved
        // against live state and must be *recorded* in the WAL, not
        // re-derived on redo.
        3 => tickets.push(
            server
                .tick(name, Some(added(spec, 2, w)), 199)
                .expect("tick"),
        ),
        4 => tickets.push(server.delete(name, &[150, 151]).expect("delete")),
        5 => {
            tickets.push(server.add(name, added(spec, 3, w)).expect("add"));
            tickets.push(server.delete(name, &[60]).expect("delete"));
        }
        _ => unreachable!("wave script has {WAVES} waves"),
    }
    server.flush(name).expect("flush");
    tickets
}

fn snapshot_bytes(server: &Server, name: &str) -> Vec<u8> {
    server
        .model_snapshot(name)
        .expect("session present")
        .0
        .to_snapshot_bytes()
}

/// Weight bits of a committed model: the durability contract's unit of
/// comparison. (Full serialized snapshots also carry the *measured*
/// training wall-clock of the original fit, so independently fitted
/// reference fixtures can never byte-match — model bits are the
/// deterministic part. Byte-exact round-trips are asserted separately
/// where both sides share one fit.)
fn model_bits(server: &Server, name: &str) -> (Vec<u64>, u64) {
    let (session, epoch) = server.model_snapshot(name).expect("session present");
    (
        session
            .model()
            .flatten()
            .iter()
            .map(|w| w.to_bits())
            .collect(),
        epoch,
    )
}

/// The committed-prefix chain: model bits after registration (index 0)
/// and after each wave (index `w + 1`), computed once on a non-durable
/// server under the ambient pin. Recovery must land **exactly** on one
/// of these states — anything else is a torn or diverged model.
fn reference_states() -> &'static HashMap<String, Vec<Vec<u64>>> {
    static REF: OnceLock<HashMap<String, Vec<Vec<u64>>>> = OnceLock::new();
    REF.get_or_init(|| {
        let server = Server::start(config(None)).expect("reference server");
        let mut states: HashMap<String, Vec<Vec<u64>>> = HashMap::new();
        for spec in &SPECS {
            server
                .register_session(spec.name, fixture(spec))
                .expect("register");
            states.insert(
                spec.name.to_string(),
                vec![model_bits(&server, spec.name).0],
            );
        }
        for w in 0..WAVES {
            let mut waves = Vec::new();
            for spec in &SPECS {
                waves.push((spec.name, drive_wave(&server, spec, w)));
            }
            for (name, tickets) in waves {
                for ticket in tickets {
                    ticket.wait().expect("reference wave");
                }
                states
                    .get_mut(name)
                    .expect("known session")
                    .push(model_bits(&server, name).0);
            }
        }
        server.shutdown();
        states
    })
}

/// Re-exec this test binary running only `crash_child`.
fn child_cmd() -> Command {
    let exe = std::env::current_exe().expect("current exe");
    let mut cmd = Command::new(exe);
    cmd.args(["--exact", "crash_child", "--nocapture"]);
    // The abort banners are expected; keep the parent's output clean.
    cmd.stdout(Stdio::null()).stderr(Stdio::null());
    cmd
}

/// Parses the child's ack journal: session name → waves fully
/// acknowledged (a count, so state index `acked` is the durable floor).
fn read_acked(dir: &Path) -> HashMap<String, usize> {
    let mut acked = HashMap::new();
    let Ok(text) = fs::read_to_string(dir.join("ack.journal")) else {
        return acked;
    };
    for line in text.lines() {
        let Some((name, wave)) = line.rsplit_once(' ') else {
            continue;
        };
        let Ok(wave) = wave.parse::<usize>() else {
            continue;
        };
        let entry = acked.entry(name.to_string()).or_insert(0usize);
        *entry = (*entry).max(wave + 1);
    }
    acked
}

/// Core durability assertion: every recovered session sits bitwise on
/// the committed-prefix chain, at least as far as its acked floor and at
/// most one un-acked batch past it.
fn assert_recovered_prefix(point: &str, server: &Server, acked: &HashMap<String, usize>) {
    for spec in &SPECS {
        let states = &reference_states()[spec.name];
        let floor = acked.get(spec.name).copied().unwrap_or(0);
        match server.model_snapshot(spec.name) {
            Ok((session, epoch)) => {
                let bits: Vec<u64> = session
                    .model()
                    .flatten()
                    .iter()
                    .map(|w| w.to_bits())
                    .collect();
                let pos = states.iter().position(|s| *s == bits).unwrap_or_else(|| {
                    panic!(
                        "{point}: {} recovered to a state that matches no \
                             committed prefix (torn or diverged)",
                        spec.name
                    )
                });
                assert_eq!(
                    epoch as usize, pos,
                    "{point}: {} epoch disagrees with its recovered state",
                    spec.name
                );
                assert!(
                    pos >= floor,
                    "{point}: {} lost an acknowledged wave (recovered {pos}, acked {floor})",
                    spec.name
                );
                assert!(
                    pos <= floor + 1,
                    "{point}: {} recovered past the ack boundary (recovered {pos}, acked {floor})",
                    spec.name
                );
            }
            // A session may only be missing if its registration itself
            // was never acknowledged (crash during the baseline
            // snapshot) — so nothing about it can have been acked.
            Err(_) => assert_eq!(
                floor, 0,
                "{point}: session {} was acknowledged but is gone",
                spec.name
            ),
        }
    }
}

/// Child-process driver. A no-op unless spawned by a parent test with
/// one of the role env vars set; `PRIU_FAILPOINT` (set by the parent)
/// then aborts the process at the armed instant.
#[test]
fn crash_child() {
    if let Some(dir) = std::env::var_os("PRIU_CRASH_RECOVER_DIR") {
        // Recovery role: just start (= recover) and exit.
        let server = Server::start(durable(Path::new(&dir), 2)).expect("recovery in child");
        server.shutdown();
        return;
    }
    let Some(dir) = std::env::var_os("PRIU_CRASH_RUN_DIR") else {
        return;
    };
    let dir = PathBuf::from(dir);
    let snapshot_every = std::env::var("PRIU_CRASH_SNAP_EVERY")
        .ok()
        .and_then(|v| v.parse().ok())
        .unwrap_or(2);
    let server = Server::start(durable(&dir, snapshot_every)).expect("child server");
    for spec in &SPECS {
        server
            .register_session(spec.name, fixture(spec))
            .expect("child register");
    }
    let mut journal = OpenOptions::new()
        .create(true)
        .append(true)
        .open(dir.join("ack.journal"))
        .expect("open ack journal");
    for w in 0..WAVES {
        let mut waves = Vec::new();
        for spec in &SPECS {
            waves.push((spec.name, drive_wave(&server, spec, w)));
        }
        for (name, tickets) in waves {
            if tickets.into_iter().all(|t| t.wait().is_ok()) {
                // The journal line is the "application observed the ack"
                // record; fsync'd so the parent can trust it survived.
                writeln!(journal, "{name} {w}").expect("journal write");
                journal.sync_data().expect("journal fsync");
            }
        }
    }
    server.shutdown();
}

/// Tentpole: kill the server at every commit-path and snapshot-path fail
/// point mid-stream; recovery must land bitwise on the acked prefix.
/// The `:N` suffixes spread the crashes across different waves and
/// sessions (each wave applies two batches, one per session; snapshot
/// writes 1–2 are the registration baselines).
#[test]
fn crash_at_every_fail_point_recovers_the_acked_prefix() {
    let points = [
        "wal-after-append",         // wave 0, lin: record in page cache, not fsync'd
        "wal-before-fsync:2",       // wave 0, log: record written, fsync pending
        "wal-after-fsync:4",        // wave 1, log: durable but not applied
        "apply-before-commit:5",    // wave 2, lin: applied but not committed
        "before-ack:7",             // wave 3, lin: committed but never acked
        "snapshot-mid-write:3",     // wave 1, lin: torn periodic snapshot tmp
        "snapshot-before-rename:3", // complete tmp, never renamed
        "snapshot-after-rename:4",  // wave 1, log: renamed, dir fsync pending
        "group-leader-sync:3",      // wave 1, lin: elected leader, fsync pending
        "snapshot-handoff:2",       // wave 1, log: committed, snapshot job never enqueued
    ];
    for point in points {
        let dir = tempdir(&format!("crash-{}", point.replace(':', "-")));
        let status = child_cmd()
            .env("PRIU_CRASH_RUN_DIR", &dir)
            .env(FAILPOINT_ENV, point)
            .status()
            .expect("spawn crash child");
        assert!(!status.success(), "fail point {point} never fired");
        let acked = read_acked(&dir);
        let server = Server::start(durable(&dir, 2))
            .unwrap_or_else(|e| panic!("{point}: recovery failed: {e}"));
        assert_recovered_prefix(point, &server, &acked);
        server.shutdown();
        let _ = fs::remove_dir_all(&dir);
    }
}

/// Kill the server mid-checkpoint. The child checkpoints aggressively
/// (`PRIU_CRASH_CKPT_BYTES=1`: compaction after every periodic
/// snapshot), so the first periodic snapshot triggers a rewrite and the
/// armed point fires during it. A crash before the rename must leave the
/// pre-checkpoint log serving (the torn `.tmp` is ignored); a crash
/// after it must leave the complete rewritten log — either way recovery
/// pairs whatever log survives with the durable snapshots and lands
/// bitwise on the acked floor.
#[test]
fn crash_during_checkpoint_recovers_the_acked_prefix() {
    let points = [
        "checkpoint-mid-rewrite",   // torn tmp beside the untouched old log
        "checkpoint-before-rename", // complete tmp, never renamed
        "checkpoint-after-rename",  // new log in place, dir fsync pending
    ];
    for point in points {
        let dir = tempdir(&format!("ckpt-{point}"));
        let status = child_cmd()
            .env("PRIU_CRASH_RUN_DIR", &dir)
            .env("PRIU_CRASH_CKPT_BYTES", "1")
            .env(FAILPOINT_ENV, point)
            .status()
            .expect("spawn crash child");
        assert!(!status.success(), "fail point {point} never fired");
        let acked = read_acked(&dir);
        // Recover with compaction effectively off (the default 1 MiB
        // threshold), so the assertion sees exactly what the crash left.
        let server = Server::start(durable(&dir, 2))
            .unwrap_or_else(|e| panic!("{point}: recovery failed: {e}"));
        assert_recovered_prefix(point, &server, &acked);
        server.shutdown();
        let _ = fs::remove_dir_all(&dir);
    }
}

/// A crash *during* recovery redo must leave the store recoverable: redo
/// mutates nothing on disk, so a second recovery sees the same WAL and
/// snapshots and completes.
#[test]
fn crash_during_recovery_is_itself_recoverable() {
    let dir = tempdir("mid-redo");
    // Clean run with snapshots effectively disabled (baselines only), so
    // recovery has the full 12-record WAL suffix to redo.
    let clean = child_cmd()
        .env("PRIU_CRASH_RUN_DIR", &dir)
        .env("PRIU_CRASH_SNAP_EVERY", "1000000")
        .status()
        .expect("spawn clean child");
    assert!(clean.success(), "clean child run failed");
    let acked = read_acked(&dir);
    for spec in &SPECS {
        assert_eq!(acked[spec.name], WAVES, "clean run acked every wave");
    }
    let crashed = child_cmd()
        .env("PRIU_CRASH_RECOVER_DIR", &dir)
        .env(FAILPOINT_ENV, "recovery-mid-redo:3")
        .status()
        .expect("spawn recovering child");
    assert!(!crashed.success(), "recovery fail point never fired");

    let server = Server::start(durable(&dir, 2)).expect("second recovery");
    assert_recovered_prefix("recovery-mid-redo", &server, &acked);
    let report = server.recovery_report().expect("durable server reports");
    assert_eq!(report.wal_records, (WAVES * SPECS.len()) as u64);
    assert!(report.wal_tail.is_none());
    assert_eq!(report.orphan_records, 0);
    assert!(report.snapshot_skips.is_empty());
    for session in &report.sessions {
        assert_eq!(session.snapshot_epoch, 0, "recovered from the baseline");
        assert_eq!(session.redone, WAVES as u64);
        assert!(session.skipped.is_empty());
        assert_eq!(session.final_epoch, WAVES as u64);
    }
    server.shutdown();
    let _ = fs::remove_dir_all(&dir);
}

/// Clean shutdown + restart is bitwise lossless, reports a clean WAL,
/// and the recovered server keeps accepting (and persisting) deltas.
#[test]
fn clean_restart_recovers_bitwise_and_accepts_new_deltas() {
    let dir = tempdir("clean-restart");
    let server = Server::start(durable(&dir, 2)).expect("first start");
    for spec in &SPECS {
        server
            .register_session(spec.name, fixture(spec))
            .expect("register");
    }
    for w in 0..WAVES {
        let mut waves = Vec::new();
        for spec in &SPECS {
            waves.push(drive_wave(&server, spec, w));
        }
        for tickets in waves {
            for ticket in tickets {
                ticket.wait().expect("wave");
            }
        }
    }
    let before: HashMap<&str, Vec<u8>> = SPECS
        .iter()
        .map(|s| (s.name, snapshot_bytes(&server, s.name)))
        .collect();
    server.shutdown();

    // Restart: the epoch-6 snapshots cover the whole WAL, so redo is
    // empty, and state is byte-identical to the pre-shutdown capture.
    let server = Server::start(durable(&dir, 2)).expect("restart");
    let report = server.recovery_report().expect("report").clone();
    assert_eq!(report.wal_records, (WAVES * SPECS.len()) as u64);
    assert!(report.wal_tail.is_none());
    assert_eq!(report.orphan_records, 0);
    assert!(report.snapshot_skips.is_empty());
    for session in &report.sessions {
        assert_eq!(session.snapshot_epoch, WAVES as u64);
        assert_eq!(session.redone, 0, "snapshot covered the full WAL");
        assert_eq!(session.final_epoch, WAVES as u64);
    }
    for spec in &SPECS {
        let (session, epoch) = server.model_snapshot(spec.name).expect("recovered");
        assert_eq!(epoch, WAVES as u64);
        assert_eq!(
            session.to_snapshot_bytes(),
            before[spec.name],
            "{}: restart changed the model",
            spec.name
        );
    }

    // The recovered server is live: a new delete commits at epoch 7 and
    // survives a further restart via WAL redo (7 is odd, no snapshot).
    let ticket = server
        .delete("crash/lin", &[100])
        .expect("post-recovery delete");
    server.flush("crash/lin").expect("flush");
    ticket.wait().expect("post-recovery ack");
    let (after, epoch) = server
        .model_snapshot("crash/lin")
        .expect("post-recovery model");
    assert_eq!(epoch, WAVES as u64 + 1);
    let after = after.to_snapshot_bytes();
    server.shutdown();

    let server = Server::start(durable(&dir, 2)).expect("third start");
    let report = server.recovery_report().expect("report");
    let lin = report
        .sessions
        .iter()
        .find(|s| s.session == "crash/lin")
        .expect("lin recovered");
    assert_eq!(lin.snapshot_epoch, WAVES as u64);
    assert_eq!(
        lin.redone, 1,
        "the post-recovery delete was redone from the WAL"
    );
    let (session, epoch) = server.model_snapshot("crash/lin").expect("recovered");
    assert_eq!(epoch, WAVES as u64 + 1);
    assert_eq!(session.to_snapshot_bytes(), after);
    server.shutdown();
    let _ = fs::remove_dir_all(&dir);
}

/// Runs the full stream durably with snapshots disabled past the
/// baselines, so every recovered state is pure WAL replay. Returns the
/// store directory.
fn durable_run_baselines_only(tag: &str) -> PathBuf {
    let dir = tempdir(tag);
    let server = Server::start(durable(&dir, 1_000_000)).expect("durable run");
    for spec in &SPECS {
        server
            .register_session(spec.name, fixture(spec))
            .expect("register");
    }
    for w in 0..WAVES {
        let mut waves = Vec::new();
        for spec in &SPECS {
            waves.push(drive_wave(&server, spec, w));
        }
        for tickets in waves {
            for ticket in tickets {
                ticket.wait().expect("wave");
            }
        }
    }
    server.shutdown();
    dir
}

/// Truncate the WAL at seeded random byte offsets (plus the empty and
/// full cuts): recovery must always land on a committed prefix, report a
/// torn tail exactly when the cut is mid-frame, and never panic. Longer
/// surviving prefixes recover monotonically further states.
#[test]
fn truncated_wal_tail_recovers_a_committed_prefix_at_every_cut() {
    let dir = durable_run_baselines_only("wal-truncate");
    let wal_path = dir.join(WAL_FILE);
    let pristine = fs::read(&wal_path).expect("read WAL");

    let mut cuts = vec![0usize, pristine.len()];
    let mut state = 0x9E37_79B9_7F4A_7C15u64; // fixed seed: reproducible cuts
    for _ in 0..14 {
        state ^= state << 13;
        state ^= state >> 7;
        state ^= state << 17;
        cuts.push((state % pristine.len() as u64) as usize);
    }
    cuts.sort_unstable();
    cuts.dedup();

    let mut prev: HashMap<&str, usize> = HashMap::new();
    for cut in cuts {
        fs::write(&wal_path, &pristine[..cut]).expect("truncate WAL");
        let scan = scan_wal(&wal_path).expect("scan never errors on torn logs");
        assert!(scan.valid_bytes as usize <= cut);
        let mid_frame = scan.valid_bytes as usize != cut;

        let server = Server::start(durable(&dir, 1_000_000))
            .unwrap_or_else(|e| panic!("cut {cut}: recovery failed: {e}"));
        let report = server.recovery_report().expect("report");
        assert_eq!(
            report.wal_tail.is_some(),
            mid_frame,
            "cut {cut}: torn tail misreported"
        );
        for spec in &SPECS {
            // Baseline snapshots exist regardless of the WAL, so the
            // sessions themselves can never be lost.
            let (bits, epoch) = model_bits(&server, spec.name);
            let states = &reference_states()[spec.name];
            let pos = states
                .iter()
                .position(|s| *s == bits)
                .unwrap_or_else(|| panic!("cut {cut}: {} is not a committed prefix", spec.name));
            assert_eq!(epoch as usize, pos, "cut {cut}: {} epoch drift", spec.name);
            let floor = prev.insert(spec.name, pos).unwrap_or(0);
            assert!(
                pos >= floor,
                "cut {cut}: {} recovered less than a shorter prefix did",
                spec.name
            );
        }
        server.shutdown();
    }
    let _ = fs::remove_dir_all(&dir);
}

/// A flipped bit mid-WAL: the checksum catches it, recovery keeps the
/// clean prefix, reports the tail, and discards the poisoned suffix.
#[test]
fn flipped_wal_byte_is_detected_and_the_prefix_recovered() {
    let dir = durable_run_baselines_only("wal-bitflip");
    let wal_path = dir.join(WAL_FILE);
    let pristine = fs::read(&wal_path).expect("read WAL");
    let flip_at = pristine.len() * 2 / 3;
    let mut poisoned = pristine.clone();
    poisoned[flip_at] ^= 0x40;
    fs::write(&wal_path, &poisoned).expect("write poisoned WAL");

    let server = Server::start(durable(&dir, 1_000_000)).expect("recovery");
    let report = server.recovery_report().expect("report");
    assert!(
        report.wal_tail.is_some(),
        "bit flip went undetected: {report:?}"
    );
    assert!(report.wal_records < (WAVES * SPECS.len()) as u64);
    for spec in &SPECS {
        let (bits, epoch) = model_bits(&server, spec.name);
        let states = &reference_states()[spec.name];
        let pos = states
            .iter()
            .position(|s| *s == bits)
            .unwrap_or_else(|| panic!("{}: not a committed prefix", spec.name));
        assert_eq!(epoch as usize, pos);
        assert!(
            pos < WAVES + 1,
            "{}: poisoned suffix was replayed",
            spec.name
        );
    }
    server.shutdown();
    // Reopen truncated the WAL back to its valid prefix.
    assert!(fs::metadata(&wal_path).expect("WAL exists").len() <= flip_at as u64);
    let _ = fs::remove_dir_all(&dir);
}

fn hex(name: &str) -> String {
    name.bytes().map(|b| format!("{b:02x}")).collect()
}

/// Torn snapshot temp files are ignored; a corrupted newest snapshot
/// falls back to the previous epoch and the WAL redoes the difference —
/// the final state is still the full committed stream, bitwise.
#[test]
fn torn_and_corrupt_snapshots_fall_back_to_older_epochs() {
    let dir = tempdir("snap-corrupt");
    let server = Server::start(durable(&dir, 2)).expect("durable run");
    for spec in &SPECS {
        server
            .register_session(spec.name, fixture(spec))
            .expect("register");
    }
    for w in 0..WAVES {
        let mut waves = Vec::new();
        for spec in &SPECS {
            waves.push(drive_wave(&server, spec, w));
        }
        for tickets in waves {
            for ticket in tickets {
                ticket.wait().expect("wave");
            }
        }
    }
    let before: HashMap<&str, Vec<u8>> = SPECS
        .iter()
        .map(|s| (s.name, snapshot_bytes(&server, s.name)))
        .collect();
    server.shutdown();

    // A torn temp file from a crashed snapshot write: must be ignored.
    let snapdir = dir.join("snapshots");
    fs::write(
        snapdir.join("deadbeef-00000000000000000099.snap.tmp"),
        b"torn",
    )
    .expect("torn tmp");

    // Corrupt crash/lin's newest snapshot (epoch 6): one flipped byte.
    let lin_hex = hex("crash/lin");
    let newest = fs::read_dir(&snapdir)
        .expect("snapshot dir")
        .filter_map(|e| e.ok().map(|e| e.path()))
        .filter(|p| {
            p.file_name()
                .and_then(|f| f.to_str())
                .is_some_and(|f| f.starts_with(&lin_hex) && f.ends_with(".snap"))
        })
        .max()
        .expect("lin snapshots exist");
    let mut bytes = fs::read(&newest).expect("read snapshot");
    let mid = bytes.len() / 2;
    bytes[mid] ^= 0x01;
    fs::write(&newest, &bytes).expect("corrupt snapshot");

    let server = Server::start(durable(&dir, 2)).expect("recovery");
    let report = server.recovery_report().expect("report");
    assert_eq!(report.snapshot_skips.len(), 1, "{report:?}");
    let lin = report
        .sessions
        .iter()
        .find(|s| s.session == "crash/lin")
        .expect("lin recovered");
    // Fell back from the corrupt epoch-6 snapshot to epoch 4; the two
    // missing waves were redone from the WAL.
    assert_eq!(lin.snapshot_epoch, 4);
    assert_eq!(lin.redone, 2);
    assert!(lin.skipped.is_empty());
    for spec in &SPECS {
        let (session, epoch) = server.model_snapshot(spec.name).expect("session");
        assert_eq!(epoch, WAVES as u64);
        assert_eq!(
            session.to_snapshot_bytes(),
            before[spec.name],
            "{}: fallback recovery diverged",
            spec.name
        );
    }
    server.shutdown();
    let _ = fs::remove_dir_all(&dir);
}
