//! The admission + coalescing batch planner.
//!
//! Per-user change requests — deletions, additions, sliding-window ticks —
//! arrive one row (or a few rows) at a time; the engines' `apply_delta`
//! takes an arbitrary bidirectional [`Delta`] and its cost is heavily
//! sub-linear in the change-set size (one downdate/update pass instead of
//! N). The planner therefore *coalesces*: requests for one session
//! accumulate in a FIFO queue and are folded into a single batched delta
//! when any of
//!
//! * the oldest pending request has waited the **coalescing window**,
//! * the folded change set (removal union + appended rows) reaches the
//!   **max batch size**,
//! * a flush was requested (or the server is shutting down)
//!
//! holds. The removal side is plain set union over *stable row ids*
//! (assigned monotonically, never reused — unlike current row indices,
//! which shift whenever an earlier row is removed); the addition side
//! concatenates appended rows in FIFO admission order. The resulting batch
//! is applied as **one** `apply_delta` call, so its outcome is *identical*
//! to a single apply with the union delta — not merely close, the same
//! call. Duplicate ids across requests dedup; ids already deleted are
//! counted per request as `stale` and acknowledged without work; `Tick`
//! retention windows fold by minimum.
//!
//! With coalescing disabled every request becomes its own batch (the
//! baseline the loadgen compares against).
//!
//! [`Delta`]: priu_core::Delta

use std::collections::{BTreeSet, HashMap};
use std::sync::mpsc::{channel, Receiver, Sender};
use std::time::{Duration, Instant};

use priu_core::Method;

use crate::error::{Result, ServerError};

/// Planner tuning knobs.
#[derive(Debug, Clone, Copy)]
pub struct PlannerConfig {
    /// How long a pending request may wait for company before its batch is
    /// forced out. `ZERO` makes every poll cycle flush.
    pub window: Duration,
    /// Union size that forces a batch out early. A single request larger
    /// than this still forms one batch — requests are never split.
    pub max_batch: usize,
    /// `false` disables coalescing: every request is applied on its own
    /// (the baseline configuration for the loadgen's on/off comparison).
    pub coalesce: bool,
}

impl Default for PlannerConfig {
    fn default() -> Self {
        Self {
            window: Duration::from_millis(5),
            max_batch: 256,
            coalesce: true,
        }
    }
}

/// Rows one request appends: a row-major dense block plus one label per
/// row (interpreted against the session's task at apply time).
#[derive(Debug, Clone, PartialEq)]
pub struct AddedRows {
    /// Feature width of every row.
    pub num_features: usize,
    /// Row-major features, `labels.len() * num_features` values.
    pub features: Vec<f64>,
    /// One label per row.
    pub labels: Vec<f64>,
}

impl AddedRows {
    /// Number of rows in the block.
    pub fn num_rows(&self) -> usize {
        self.labels.len()
    }
}

/// What a change request learns once its batch has been applied.
#[derive(Debug, Clone)]
pub struct BatchReply {
    /// Distinct rows this request asked to delete.
    pub requested: usize,
    /// How many of them were live and removed by the batch.
    pub applied: usize,
    /// How many were already gone (acknowledged without work).
    pub stale: usize,
    /// Rows this request appended.
    pub added: usize,
    /// Rows the batch's sliding-window retention expired (batch-level:
    /// expiry is a property of the whole coalesced batch, not of one
    /// request).
    pub expired: usize,
    /// Distinct rows the whole coalesced batch removed (deletions plus
    /// retention expiry).
    pub batch_rows: usize,
    /// The method the scheduler picked (`None` when the batch changed
    /// nothing and no engine call ran).
    pub method: Option<Method>,
    /// Engine-measured seconds of the online update (0 when nothing ran).
    pub seconds: f64,
    /// Session epoch after the batch committed.
    pub epoch: u64,
}

/// A waiter on an enqueued deletion request; resolves when the coalesced
/// batch containing the request has been applied.
#[derive(Debug)]
pub struct DeleteTicket {
    rx: Receiver<Result<BatchReply>>,
}

impl DeleteTicket {
    /// Blocks until the batch is applied.
    ///
    /// # Errors
    /// The batch's failure, or [`ServerError::ShuttingDown`] when the
    /// server died without resolving the ticket.
    pub fn wait(self) -> Result<BatchReply> {
        match self.rx.recv() {
            Ok(result) => result,
            Err(_) => Err(ServerError::ShuttingDown),
        }
    }
}

/// One enqueued change request: deletions, appended rows, and/or a
/// sliding-window retention bound.
#[derive(Debug)]
pub(crate) struct PendingChange {
    /// Stable row ids the request wants gone (possibly with duplicates).
    pub ids: Vec<u64>,
    /// Rows the request appends.
    pub added: Option<AddedRows>,
    /// Retention window (`Tick`): retain at most this many rows after the
    /// batch commits.
    pub keep_last: Option<u64>,
    /// Admission time; the coalescing window counts from the oldest one.
    pub enqueued: Instant,
    /// Resolution channel of the request's [`DeleteTicket`].
    pub reply: Sender<Result<BatchReply>>,
}

impl PendingChange {
    /// Rows this request appends.
    pub(crate) fn num_added(&self) -> usize {
        self.added.as_ref().map_or(0, AddedRows::num_rows)
    }
}

/// A batch the planner has decided to apply now.
#[derive(Debug)]
pub(crate) struct ReadyBatch {
    /// The session the batch belongs to.
    pub session: String,
    /// The folded requests, FIFO order; each is answered individually.
    /// Appended rows are consumed in this order, so the batch delta is the
    /// FIFO concatenation of every request's additions.
    pub requests: Vec<PendingChange>,
    /// Sorted distinct stable ids — the union removal set.
    pub union: Vec<u64>,
    /// The tightest retention window among the folded requests (`Tick`
    /// windows fold by minimum).
    pub keep_last: Option<u64>,
}

impl ReadyBatch {
    /// Total rows the batch appends, across every folded request.
    pub fn num_added(&self) -> usize {
        self.requests.iter().map(PendingChange::num_added).sum()
    }
}

#[derive(Debug, Default)]
struct SessionQueue {
    pending: Vec<PendingChange>,
    flush: bool,
}

/// The planner's mutable state; the server guards it with one mutex +
/// condvar pair (admission signals the applier through that condvar).
#[derive(Debug, Default)]
pub(crate) struct PlannerState {
    queues: HashMap<String, SessionQueue>,
}

impl PlannerState {
    /// Admits a deletion-only request, returning the ticket its submitter
    /// waits on.
    #[cfg(test)]
    pub fn enqueue(&mut self, session: &str, ids: Vec<u64>) -> DeleteTicket {
        self.enqueue_change(session, ids, None, None)
    }

    /// Admits a general change request — deletions, appended rows, and/or
    /// a retention window — returning the ticket its submitter waits on.
    pub fn enqueue_change(
        &mut self,
        session: &str,
        ids: Vec<u64>,
        added: Option<AddedRows>,
        keep_last: Option<u64>,
    ) -> DeleteTicket {
        let (tx, rx) = channel();
        self.queues
            .entry(session.to_string())
            .or_default()
            .pending
            .push(PendingChange {
                ids,
                added,
                keep_last,
                enqueued: Instant::now(),
                reply: tx,
            });
        DeleteTicket { rx }
    }

    /// Marks one session's queue for immediate batching.
    pub fn flush(&mut self, session: &str) {
        if let Some(queue) = self.queues.get_mut(session) {
            queue.flush = true;
        }
    }

    /// Marks every queue for immediate batching (shutdown drain).
    pub fn flush_all(&mut self) {
        for queue in self.queues.values_mut() {
            queue.flush = true;
        }
    }

    /// Pending request count for one session.
    pub fn pending(&self, session: &str) -> usize {
        self.queues.get(session).map_or(0, |q| q.pending.len())
    }

    /// Whether no request is pending anywhere.
    #[cfg(test)]
    pub fn is_empty(&self) -> bool {
        self.queues.values().all(|q| q.pending.is_empty())
    }

    /// The earliest instant at which some queue becomes window-ready; the
    /// applier sleeps until then. `None` when nothing is pending.
    pub fn next_deadline(&self, cfg: &PlannerConfig) -> Option<Instant> {
        self.queues
            .values()
            .filter_map(|q| q.pending.first())
            .map(|oldest| oldest.enqueued + cfg.window)
            .min()
    }

    /// Takes every batch that is ready at `now`, in session-name order
    /// (deterministic fan-out). With coalescing on, a ready queue folds
    /// FIFO requests until the change set — removal union plus appended
    /// rows — would exceed `max_batch` (a single oversized request still
    /// forms one batch); the remainder stays queued — and stays ready, so
    /// the applier picks it up on its next pass. With coalescing off, the
    /// whole queue drains as *individual* single-request batches in FIFO
    /// order — the applier chains them (resolving each against the
    /// previous batch's predicted outcome) so an uncoalesced backlog can
    /// share one group fsync without folding the deltas together.
    pub fn take_ready(&mut self, now: Instant, cfg: &PlannerConfig) -> Vec<ReadyBatch> {
        let mut names: Vec<&String> = self
            .queues
            .iter()
            .filter(|(_, q)| !q.pending.is_empty())
            .map(|(name, _)| name)
            .collect();
        names.sort();
        let names: Vec<String> = names.into_iter().cloned().collect();

        let mut batches = Vec::new();
        for name in names {
            let queue = self.queues.get_mut(&name).expect("listed above");
            let union_all: BTreeSet<u64> = queue
                .pending
                .iter()
                .flat_map(|r| r.ids.iter().copied())
                .collect();
            let added_all: usize = queue.pending.iter().map(PendingChange::num_added).sum();
            let window_ready = queue
                .pending
                .first()
                .is_some_and(|oldest| oldest.enqueued + cfg.window <= now);
            let ready = queue.flush
                || !cfg.coalesce
                || union_all.len() + added_all >= cfg.max_batch
                || window_ready;
            if !ready {
                continue;
            }

            if !cfg.coalesce {
                // Drain the whole backlog as individual batches, FIFO:
                // same-session batches stay adjacent in the output so the
                // applier can chain them under one group fsync.
                for request in queue.pending.drain(..) {
                    let union: Vec<u64> = request
                        .ids
                        .iter()
                        .copied()
                        .collect::<BTreeSet<u64>>()
                        .into_iter()
                        .collect();
                    let keep_last = request.keep_last;
                    batches.push(ReadyBatch {
                        session: name.clone(),
                        requests: vec![request],
                        union,
                        keep_last,
                    });
                }
                queue.flush = false;
                continue;
            }
            let requests: Vec<PendingChange> = {
                let mut union = BTreeSet::new();
                let mut added = 0;
                let mut take = 0;
                for request in &queue.pending {
                    let mut grown = union.clone();
                    grown.extend(request.ids.iter().copied());
                    if take > 0 && grown.len() + added + request.num_added() > cfg.max_batch {
                        break;
                    }
                    union = grown;
                    added += request.num_added();
                    take += 1;
                }
                queue.pending.drain(..take).collect()
            };
            if queue.pending.is_empty() {
                queue.flush = false;
            }
            let union: Vec<u64> = requests
                .iter()
                .flat_map(|r| r.ids.iter().copied())
                .collect::<BTreeSet<u64>>()
                .into_iter()
                .collect();
            let keep_last = requests.iter().filter_map(|r| r.keep_last).min();
            batches.push(ReadyBatch {
                session: name,
                requests,
                union,
                keep_last,
            });
        }
        batches
    }

    /// Fails every pending request with [`ServerError::ShuttingDown`]
    /// (server teardown after the drain window).
    pub fn fail_all(&mut self) {
        for queue in self.queues.values_mut() {
            for request in queue.pending.drain(..) {
                let _ = request.reply.send(Err(ServerError::ShuttingDown));
            }
        }
    }
}

#[cfg(test)]
mod tests {
    use super::*;

    fn cfg(window_ms: u64, max_batch: usize, coalesce: bool) -> PlannerConfig {
        PlannerConfig {
            window: Duration::from_millis(window_ms),
            max_batch,
            coalesce,
        }
    }

    #[test]
    fn window_gates_batching_and_flush_overrides_it() {
        let mut state = PlannerState::default();
        let long = cfg(120_000, 100, true);
        let _t1 = state.enqueue("s", vec![3]);
        let _t2 = state.enqueue("s", vec![1, 3]);
        assert_eq!(state.pending("s"), 2);
        // Window far away: nothing ready, deadline is oldest + window.
        assert!(state.take_ready(Instant::now(), &long).is_empty());
        assert!(state.next_deadline(&long).unwrap() > Instant::now());
        // Flush forces the fold: one batch, union deduplicated and sorted.
        state.flush("s");
        let batches = state.take_ready(Instant::now(), &long);
        assert_eq!(batches.len(), 1);
        assert_eq!(batches[0].session, "s");
        assert_eq!(batches[0].requests.len(), 2);
        assert_eq!(batches[0].union, vec![1, 3]);
        assert!(state.is_empty());
        assert!(state.next_deadline(&long).is_none());

        // Zero window: ready immediately.
        let zero = cfg(0, 100, true);
        let _t3 = state.enqueue("s", vec![9]);
        let batches = state.take_ready(Instant::now(), &zero);
        assert_eq!(batches.len(), 1);
        assert_eq!(batches[0].union, vec![9]);
    }

    #[test]
    fn max_batch_caps_the_union_without_splitting_requests() {
        let mut state = PlannerState::default();
        let config = cfg(120_000, 4, true);
        let _tickets: Vec<DeleteTicket> = vec![
            state.enqueue("s", vec![0, 1]),
            state.enqueue("s", vec![1, 2]), // overlaps: union stays small
            state.enqueue("s", vec![3, 4]),
            state.enqueue("s", vec![5]),
        ];
        // Union of all pending = {0..5} ≥ max_batch → ready without window.
        let batches = state.take_ready(Instant::now(), &config);
        assert_eq!(batches.len(), 1);
        // Folding stops before request 2 ({3,4}) would push past 4 distinct.
        assert_eq!(batches[0].requests.len(), 2);
        assert_eq!(batches[0].union, vec![0, 1, 2]);
        assert_eq!(state.pending("s"), 2);

        // A single oversized request still forms one (oversized) batch.
        let _t = state.enqueue("s", vec![10, 11, 12, 13, 14, 15]);
        state.flush("s");
        let batches = state.take_ready(Instant::now(), &config);
        assert_eq!(batches.len(), 1);
        assert_eq!(batches[0].union, vec![3, 4, 5]);
        // Flush sticks until the queue drains: the oversized leftover goes
        // out on the next pass, unsplit.
        let batches = state.take_ready(Instant::now(), &config);
        assert_eq!(batches.len(), 1);
        assert_eq!(batches[0].union.len(), 6);
        assert!(state.is_empty());
    }

    #[test]
    fn coalescing_off_applies_requests_individually_in_fifo_order() {
        let mut state = PlannerState::default();
        let config = cfg(120_000, 100, false);
        let _a = state.enqueue("s", vec![7]);
        let _b = state.enqueue("s", vec![8]);
        // The backlog drains in one call, but as separate single-request
        // batches in FIFO order — never folded together.
        let batches = state.take_ready(Instant::now(), &config);
        assert_eq!(batches.len(), 2);
        assert_eq!(batches[0].union, vec![7]);
        assert_eq!(batches[1].union, vec![8]);
        assert_eq!(batches[0].requests.len(), 1);
        assert_eq!(batches[1].requests.len(), 1);
        assert!(state.is_empty());
        assert!(state.take_ready(Instant::now(), &config).is_empty());
    }

    #[test]
    fn sessions_batch_independently_and_sort_deterministically() {
        let mut state = PlannerState::default();
        let config = cfg(0, 100, true);
        let _b = state.enqueue("b", vec![2]);
        let _a = state.enqueue("a", vec![1]);
        let batches = state.take_ready(Instant::now(), &config);
        assert_eq!(batches.len(), 2);
        assert_eq!(batches[0].session, "a");
        assert_eq!(batches[1].session, "b");
    }

    fn rows(n: usize) -> AddedRows {
        AddedRows {
            num_features: 2,
            features: vec![0.0; n * 2],
            labels: vec![1.0; n],
        }
    }

    #[test]
    fn mixed_requests_fold_into_one_batch_with_min_retention() {
        let mut state = PlannerState::default();
        let config = cfg(0, 100, true);
        let _a = state.enqueue("s", vec![3, 5]);
        let _b = state.enqueue_change("s", vec![], Some(rows(4)), None);
        let _c = state.enqueue_change("s", vec![5, 9], Some(rows(2)), Some(120));
        let _d = state.enqueue_change("s", vec![], None, Some(100));
        let batches = state.take_ready(Instant::now(), &config);
        assert_eq!(batches.len(), 1);
        let batch = &batches[0];
        assert_eq!(batch.requests.len(), 4);
        assert_eq!(batch.union, vec![3, 5, 9]);
        assert_eq!(batch.num_added(), 6);
        // Tick windows fold by minimum: the tightest retention governs.
        assert_eq!(batch.keep_last, Some(100));
        assert!(state.is_empty());
    }

    #[test]
    fn added_rows_count_toward_the_batch_cap() {
        let mut state = PlannerState::default();
        let config = cfg(120_000, 4, true);
        let _a = state.enqueue_change("s", vec![0, 1], Some(rows(1)), None);
        let _b = state.enqueue_change("s", vec![], Some(rows(3)), None);
        // Change set = 2 removals + 4 additions ≥ max_batch → ready without
        // the window; folding stops before the second request would push
        // the set past the cap.
        let batches = state.take_ready(Instant::now(), &config);
        assert_eq!(batches.len(), 1);
        assert_eq!(batches[0].requests.len(), 1);
        assert_eq!(batches[0].num_added(), 1);
        assert_eq!(batches[0].union, vec![0, 1]);
        assert_eq!(state.pending("s"), 1);
    }

    #[test]
    fn fail_all_resolves_tickets_with_shutting_down() {
        let mut state = PlannerState::default();
        let ticket = state.enqueue("s", vec![1]);
        state.fail_all();
        assert!(matches!(ticket.wait(), Err(ServerError::ShuttingDown)));
        // A ticket whose sender is dropped resolves the same way.
        let ticket = state.enqueue("s", vec![2]);
        state.queues.clear();
        assert!(matches!(ticket.wait(), Err(ServerError::ShuttingDown)));
    }
}
