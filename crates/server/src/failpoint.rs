//! Crash-point injection for durability testing.
//!
//! A fail point is a named location in the commit / snapshot / recovery
//! path where the process can be made to die abruptly — `abort()`, no
//! destructors, no flushes — so the crash-recovery suite can prove that
//! every interleaving of "crashed here" recovers to a consistent state.
//!
//! Arming is environment-driven so the torture harness can re-exec the
//! test binary as a child with one point armed per run:
//!
//! ```text
//! PRIU_FAILPOINT=wal-before-fsync        # abort on the 1st hit
//! PRIU_FAILPOINT=snapshot-mid-write:3    # abort on the 3rd hit
//! ```
//!
//! The armed configuration is parsed once (`OnceLock`); when the variable
//! is unset, every [`fail_point`] call is a single static load and a
//! `None` check — cheap enough to leave in release builds, which is what
//! makes the injected points trustworthy: the tested binary *is* the
//! shipped code path.
//!
//! # Catalog
//!
//! | name | crashes |
//! |---|---|
//! | `wal-after-append`      | after the WAL frame hits the file, before fsync |
//! | `wal-before-fsync`      | immediately before the WAL fsync |
//! | `wal-after-fsync`       | after the WAL fsync, before the engine applies |
//! | `apply-before-commit`   | after the engine applied, before the registry commit |
//! | `before-ack`            | after commit, before any ticket resolves |
//! | `snapshot-mid-write`    | half-way through writing the snapshot temp file |
//! | `snapshot-before-rename`| temp file complete + fsync'd, not yet renamed |
//! | `snapshot-after-rename` | after the atomic rename, before the dir fsync |
//! | `recovery-mid-redo`     | between two WAL records during recovery redo |
//! | `group-leader-sync`     | as the elected group-commit leader, before its shared fsync |
//! | `snapshot-handoff`      | after commit, before the snapshot job reaches the snapshot thread |
//! | `checkpoint-mid-rewrite`| half-way through writing the checkpoint's rewritten log |
//! | `checkpoint-before-rename` | rewritten log complete + fsync'd, not yet renamed |
//! | `checkpoint-after-rename`  | after the checkpoint rename, before the dir fsync |

use std::sync::atomic::{AtomicU64, Ordering};
use std::sync::OnceLock;

/// Environment variable arming a fail point: `name` or `name:N`.
pub const FAILPOINT_ENV: &str = "PRIU_FAILPOINT";

struct Armed {
    name: String,
    /// Abort on the `nth` hit (1-based).
    nth: u64,
    hits: AtomicU64,
}

static ARMED: OnceLock<Option<Armed>> = OnceLock::new();

fn armed() -> &'static Option<Armed> {
    ARMED.get_or_init(|| {
        let spec = std::env::var(FAILPOINT_ENV).ok()?;
        let spec = spec.trim();
        if spec.is_empty() {
            return None;
        }
        let (name, nth) = match spec.split_once(':') {
            Some((name, n)) => (name, n.parse().ok().filter(|&n| n > 0)?),
            None => (spec, 1),
        };
        Some(Armed {
            name: name.to_string(),
            nth,
            hits: AtomicU64::new(0),
        })
    })
}

/// Declares a named crash point. If the `PRIU_FAILPOINT` environment
/// variable armed this name, the process aborts on the configured hit —
/// no unwinding, no buffers flushed, the closest a test can get to
/// `kill -9`-ing itself at an exact instruction. Disarmed points cost one
/// static load.
pub fn fail_point(name: &str) {
    if let Some(armed) = armed() {
        if armed.name == name && armed.hits.fetch_add(1, Ordering::Relaxed) + 1 == armed.nth {
            // Write straight to fd 2: stderr may be line-buffered and
            // abort() won't flush it.
            let msg = format!("fail point {name} hit #{}: aborting\n", armed.nth);
            let _ = std::io::Write::write_all(&mut std::io::stderr(), msg.as_bytes());
            std::process::abort();
        }
    }
}

#[cfg(test)]
mod tests {
    use super::*;

    // The OnceLock caches the environment at first use, so in-process
    // tests can only exercise the disarmed path; the armed path is
    // covered by the child-process crash suite in tests/recovery.rs.
    #[test]
    fn disarmed_points_are_noops() {
        fail_point("wal-after-append");
        fail_point("no-such-point");
    }
}
