//! Restart recovery: latest valid snapshot per session + WAL suffix redo.
//!
//! # Algorithm
//!
//! 1. Open the WAL, which scans the valid frame prefix and truncates any
//!    torn tail (a torn tail is by construction unacknowledged — the ack
//!    only goes out after the fsync).
//! 2. For every session with a snapshot file, load the newest epoch that
//!    passes magic + CRC + decode, falling back to the previous epoch and
//!    reporting what was skipped.
//! 3. Redo the session's WAL records with `lsn >= covered_lsn`, in LSN
//!    order, through the **same** [`apply_delta`] path the live server
//!    uses, under the same `PRIU_THREADS` × `PRIU_SIMD` pin — which is
//!    what makes the recovered model bitwise identical to the pre-crash
//!    one.
//!
//! Redo never re-derives anything timing-dependent: the record carries
//! the *resolved* removal set (stable ids, retention expiry folded in)
//! and the method the cost model chose. Translation back to row indices
//! is a binary search against the recovered id map; commits replicate the
//! registry's id/epoch/drift arithmetic exactly.
//!
//! A record whose apply fails is *skipped, deterministically*: the live
//! server writes the WAL frame before running the engine, so a batch that
//! failed its apply (and answered an error) leaves a record whose redo
//! fails the same way — the skip converges to the live outcome instead of
//! diverging from it.
//!
//! Group commit appends *chains* of speculatively-resolved records before
//! any of them applies; each record carries the LSN of its predecessor in
//! the chain (`prev_lsn`). Live, an apply failure fails every later batch
//! of its chain without applying them — so redo skips transitively: a
//! record whose `prev_lsn` points at a skipped record is itself skipped,
//! exactly as the live chain abandoned it.
//!
//! [`apply_delta`]: priu_core::DeletionEngine::apply_delta

use std::path::Path;
use std::sync::Arc;

use priu_core::{DeletionEngine, Delta, DeltaRows};

use crate::error::Result;
use crate::failpoint::fail_point;
use crate::registry::DurableState;
use crate::server::{dense_added, run_pinned, ServerConfig};
use crate::snapshot::{ensure_store_dirs, list_sessions, load_latest, SkippedSnapshot};
use crate::wal::{Wal, WalRecord};

/// The WAL file inside a durability directory.
pub const WAL_FILE: &str = "deltas.wal";

/// What recovery did for one session.
#[derive(Debug, Clone)]
pub struct SessionRecovery {
    /// The session restored.
    pub session: String,
    /// Epoch of the snapshot recovery started from.
    pub snapshot_epoch: u64,
    /// The LSN the snapshot covered; records at or past it were redone.
    pub covered_lsn: u64,
    /// WAL records successfully redone.
    pub redone: u64,
    /// Records skipped because their apply failed (deterministically —
    /// the live batch failed the same way) or their ids did not resolve;
    /// `(lsn, reason)`.
    pub skipped: Vec<(u64, String)>,
    /// The epoch the session recovered to.
    pub final_epoch: u64,
}

/// The full restart-recovery outcome, kept on the server and queryable
/// over the wire (`Request::Recovery`).
#[derive(Debug, Clone, Default)]
pub struct RecoveryReport {
    /// Per-session outcomes, sorted by session name.
    pub sessions: Vec<SessionRecovery>,
    /// Valid WAL records in the scanned prefix (all sessions).
    pub wal_records: u64,
    /// Rendered torn-tail description, if the WAL did not end cleanly.
    /// The tail was truncated; it contained no acknowledged change.
    pub wal_tail: Option<String>,
    /// Snapshot files that existed but were unusable (corrupt, torn,
    /// wrong magic); recovery fell back past them.
    pub snapshot_skips: Vec<SkippedSnapshot>,
    /// WAL records naming a session with no usable snapshot — nothing to
    /// redo onto. Zero unless a snapshot set was lost or corrupted
    /// wholesale (registration writes a baseline snapshot before any WAL
    /// record for the session can exist).
    pub orphan_records: u64,
}

/// Everything recovery hands the starting server: the restored sessions,
/// the opened WAL (positioned after the valid prefix), and the report.
#[derive(Debug)]
pub(crate) struct Recovered {
    pub sessions: Vec<(String, DurableState)>,
    pub wal: Wal,
    pub report: RecoveryReport,
}

/// Recovers a durability directory: loads snapshots, redoes the WAL
/// suffix, returns the restored state. An empty or absent directory
/// recovers to an empty server (first boot).
///
/// # Errors
/// [`crate::error::ServerError::Durability`] on genuine I/O failure;
/// corruption is skipped and reported, never an error and never a panic.
pub(crate) fn recover(cfg: &ServerConfig, dir: &Path) -> Result<Recovered> {
    ensure_store_dirs(dir)?;
    let (wal, scan) = Wal::open(&dir.join(WAL_FILE))?;
    let mut report = RecoveryReport {
        wal_records: scan.records.len() as u64,
        wal_tail: scan.tail.as_ref().map(|t| t.to_string()),
        ..RecoveryReport::default()
    };

    let mut sessions = Vec::new();
    let names = list_sessions(dir)?;
    let mut claimed = vec![false; scan.records.len()];
    for name in names {
        let (loaded, skips) = load_latest(dir, &name)?;
        report.snapshot_skips.extend(skips);
        let Some(snapshot) = loaded else {
            continue; // every epoch unusable; its records become orphans
        };
        let mut state = snapshot.state;
        let mut outcome = SessionRecovery {
            session: name.clone(),
            snapshot_epoch: state.epoch,
            covered_lsn: snapshot.covered_lsn,
            redone: 0,
            skipped: Vec::new(),
            final_epoch: state.epoch,
        };
        let mut failed = std::collections::BTreeSet::new();
        for (ix, record) in scan.records.iter().enumerate() {
            if record.session != name {
                continue;
            }
            claimed[ix] = true;
            if record.lsn < snapshot.covered_lsn {
                continue; // already folded into the snapshot
            }
            fail_point("recovery-mid-redo");
            // A chained record downstream of a skipped one was never
            // applied live — skip it without attempting the redo (its
            // removal set was resolved against state that never existed).
            if let Some(prev) = record.prev_lsn.filter(|p| failed.contains(p)) {
                failed.insert(record.lsn);
                outcome
                    .skipped
                    .push((record.lsn, format!("chained onto skipped record {prev}")));
                continue;
            }
            match redo_record(cfg, &mut state, record) {
                Ok(()) => outcome.redone += 1,
                Err(reason) => {
                    failed.insert(record.lsn);
                    outcome.skipped.push((record.lsn, reason));
                }
            }
        }
        outcome.final_epoch = state.epoch;
        report.sessions.push(outcome);
        sessions.push((name, state));
    }
    report.orphan_records = claimed.iter().filter(|&&c| !c).count() as u64;
    report.sessions.sort_by(|a, b| a.session.cmp(&b.session));
    sessions.sort_by(|a, b| a.0.cmp(&b.0));
    Ok(Recovered {
        sessions,
        wal,
        report,
    })
}

/// Redoes one WAL record onto a recovered slot state, replicating the
/// live commit arithmetic (survivor ids, fresh ids from `next_id`, epoch
/// bump, drift counter). `Err` skips the record without mutating state.
fn redo_record(
    cfg: &ServerConfig,
    state: &mut DurableState,
    record: &WalRecord,
) -> std::result::Result<(), String> {
    // The record stores the resolved removal set — every id was present
    // when the live batch ran, so every id must resolve here too. The
    // ids are ascending (resolved from ascending indices), hence the
    // translated indices are ascending and duplicate-free as `Delta`
    // requires.
    let mut rows = Vec::with_capacity(record.removed_ids.len());
    for &id in &record.removed_ids {
        match state.ids.binary_search(&id) {
            Ok(ix) => rows.push(ix),
            Err(_) => return Err(format!("stable id {id} not in the recovered id map")),
        }
    }
    let added = record.added.as_ref().map(|(width, features, labels)| {
        dense_added(
            state.session.task(),
            *width,
            features.clone(),
            labels.clone(),
        )
    });
    let num_added = added.as_ref().map_or(0, |d| d.num_samples());
    let delta = Delta {
        removed: rows.clone(),
        added: added.map(DeltaRows::Dense),
    };
    let chained = run_pinned(cfg, || state.session.apply_delta(record.method, &delta))
        .map_err(|e| format!("apply failed (as it did live): {e}"))?;

    let mut survivors = Vec::with_capacity(state.ids.len() - rows.len());
    let mut next_removed = 0;
    for (ix, &id) in state.ids.iter().enumerate() {
        if next_removed < rows.len() && rows[next_removed] == ix {
            next_removed += 1;
        } else {
            survivors.push(id);
        }
    }
    for _ in 0..num_added {
        survivors.push(state.next_id);
        state.next_id += 1;
    }
    state.session = Arc::new(chained.session);
    state.ids = survivors;
    state.epoch += 1;
    if record.method == priu_core::Method::Retrain {
        state.removed_since_refit = 0;
    } else {
        state.removed_since_refit += rows.len();
    }
    Ok(())
}
