//! The session registry: named tenant × model sessions with per-session
//! shared/exclusive access.
//!
//! # Locking model
//!
//! Each [`SessionSlot`] separates the *shared* path (predictions) from the
//! *exclusive* path (deletion batches) the way a lock table grants
//! shared/exclusive locks — but the shared grant is made O(1) by
//! snapshotting:
//!
//! * **Predictions** take the slot's state lock in *read* mode only long
//!   enough to clone the `Arc<Session>` pointer and the epoch, then compute
//!   on that immutable snapshot lock-free. An in-flight deletion batch
//!   therefore never blocks a prediction, no matter how long its downdate
//!   runs.
//! * **Deletion batches** hold the slot's `apply_gate` (the exclusive
//!   grant — one batch per session at a time), run the expensive
//!   [`DeletionEngine::apply`] on the snapshot *outside* the state lock,
//!   and commit by swapping the `Arc` under a brief state *write* lock.
//!
//! A predict observes either the pre-batch or the post-batch session —
//! never a torn intermediate — because the only mutation is an atomic
//! pointer swap under the write lock.
//!
//! **Lock order** (deadlock freedom): registry map lock ≺ slot
//! `apply_gate` ≺ slot state lock. The map lock is never held while
//! acquiring a slot lock — callers clone the `Arc<SessionSlot>` out of the
//! map first.
//!
//! [`DeletionEngine::apply`]: priu_core::DeletionEngine::apply

use std::collections::HashMap;
use std::sync::{Arc, Mutex, MutexGuard, PoisonError, RwLock};

use priu_core::{DeletionEngine, Session};

use crate::error::{Result, ServerError};

/// The per-slot state behind the read/write lock: the current session
/// snapshot plus the bookkeeping the planner and scheduler introspect.
#[derive(Debug)]
struct SlotState {
    /// The current session; replaced wholesale on batch commit.
    session: Arc<Session>,
    /// Stable row id of each current row, ascending (registration assigns
    /// `0..n`; survivors keep their ids across batches; appended rows get
    /// fresh ids from `next_id`). Requests address rows by stable id, so
    /// ids stay valid while current indices shift under coalesced
    /// deletions.
    ids: Vec<u64>,
    /// The next stable id to assign. Strictly monotonic: every id ever
    /// handed out is `< next_id`, so a retired id is never reallocated —
    /// a delete request that races a sliding window can therefore never
    /// remove a *different* row than the one it named.
    next_id: u64,
    /// Bumped once per committed batch; predictions report the epoch of
    /// the snapshot they used.
    epoch: u64,
    /// Sample count at registration — the denominator of the drift ratio.
    initial_samples: usize,
    /// Rows removed by incremental methods since the last full retrain
    /// (reset when a batch commits with `Method::Retrain`).
    removed_since_refit: usize,
}

/// A registered session: the unit the registry hands out. See the module
/// docs for the shared/exclusive locking model.
#[derive(Debug)]
pub struct SessionSlot {
    state: RwLock<SlotState>,
    /// The exclusive grant: serialises deletion batches on this session.
    apply_gate: Mutex<()>,
}

/// Everything a batch applier needs from a slot, read under one shared
/// lock acquisition: the immutable session snapshot, the stable-id map,
/// and the drift bookkeeping.
#[derive(Debug, Clone)]
pub(crate) struct ApplyView {
    /// The session snapshot the batch will be computed on.
    pub session: Arc<Session>,
    /// Stable ids of the snapshot's rows (ascending).
    pub ids: Vec<u64>,
    /// The monotonic fresh-id counter — what the next committed append
    /// will assign from. Chained (speculative) resolution needs it to
    /// predict the ids a not-yet-committed batch will hand out.
    pub next_id: u64,
    /// Epoch of the snapshot.
    pub epoch: u64,
    /// Registration-time sample count.
    pub initial_samples: usize,
    /// Incrementally removed rows since the last full retrain.
    pub removed_since_refit: usize,
}

/// Everything the durability layer must persist to reconstruct a slot
/// bit-exactly: the session snapshot plus the registry bookkeeping a
/// [`SessionSlot::commit`] mutates.
#[derive(Debug, Clone)]
pub(crate) struct DurableState {
    /// The current session snapshot.
    pub session: Arc<Session>,
    /// Stable ids of the snapshot's rows (ascending).
    pub ids: Vec<u64>,
    /// The monotonic fresh-id counter (never rewinds, even when the tail
    /// ids were retired — reallocating one would resurrect a deleted row).
    pub next_id: u64,
    /// Epoch of the snapshot.
    pub epoch: u64,
    /// Registration-time sample count (drift denominator).
    pub initial_samples: usize,
    /// Incrementally removed rows since the last full retrain.
    pub removed_since_refit: usize,
}

impl SessionSlot {
    fn new(session: Session) -> Self {
        let n = session.num_samples();
        Self {
            state: RwLock::new(SlotState {
                session: Arc::new(session),
                ids: (0..n as u64).collect(),
                next_id: n as u64,
                epoch: 0,
                initial_samples: n,
                removed_since_refit: 0,
            }),
            apply_gate: Mutex::new(()),
        }
    }

    /// Rebuilds a slot from persisted durable state (recovery path).
    pub(crate) fn restore(state: DurableState) -> Self {
        Self {
            state: RwLock::new(SlotState {
                session: state.session,
                ids: state.ids,
                next_id: state.next_id,
                epoch: state.epoch,
                initial_samples: state.initial_samples,
                removed_since_refit: state.removed_since_refit,
            }),
            apply_gate: Mutex::new(()),
        }
    }

    fn read(&self) -> std::sync::RwLockReadGuard<'_, SlotState> {
        self.state.read().unwrap_or_else(PoisonError::into_inner)
    }

    /// Reads everything the durability layer persists, in one shared
    /// acquisition — the snapshot writer calls this right after a commit.
    pub(crate) fn durable_state(&self) -> DurableState {
        let state = self.read();
        DurableState {
            session: state.session.clone(),
            ids: state.ids.clone(),
            next_id: state.next_id,
            epoch: state.epoch,
            initial_samples: state.initial_samples,
            removed_since_refit: state.removed_since_refit,
        }
    }

    /// The shared grant: the current session snapshot and its epoch. The
    /// lock is held only for the pointer clone; computation on the
    /// returned session proceeds without blocking writers.
    pub fn snapshot(&self) -> (Arc<Session>, u64) {
        let state = self.read();
        (state.session.clone(), state.epoch)
    }

    /// The epoch of the current snapshot (bumped once per committed batch).
    pub fn epoch(&self) -> u64 {
        self.read().epoch
    }

    /// Rows removed incrementally since the last full retrain, as a
    /// fraction of the registration-time sample count — the accumulated
    /// drift the scheduler folds into its retrain decision.
    pub fn drift(&self) -> f64 {
        let state = self.read();
        if state.initial_samples == 0 {
            0.0
        } else {
            state.removed_since_refit as f64 / state.initial_samples as f64
        }
    }

    /// Takes the exclusive grant for one deletion batch. Held across
    /// compute + commit, so batches on one session never interleave.
    pub(crate) fn begin_apply(&self) -> MutexGuard<'_, ()> {
        self.apply_gate
            .lock()
            .unwrap_or_else(PoisonError::into_inner)
    }

    /// Reads everything a batch applier needs in one shared acquisition.
    pub(crate) fn apply_view(&self) -> ApplyView {
        let state = self.read();
        ApplyView {
            session: state.session.clone(),
            ids: state.ids.clone(),
            next_id: state.next_id,
            epoch: state.epoch,
            initial_samples: state.initial_samples,
            removed_since_refit: state.removed_since_refit,
        }
    }

    /// Commits a batch: swaps in the successor session and the surviving
    /// id map, assigns `added` fresh stable ids to the rows the batch
    /// appended (indexed after the survivors), bumps the epoch and updates
    /// the drift counter (`refit` resets it — a full retrain re-anchors
    /// the model on the survivors). Returns the new epoch. Caller must
    /// hold the `apply_gate`.
    ///
    /// # Panics
    /// If `ids` contains an id the slot never assigned: fresh ids come
    /// from the strictly monotonic `next_id` counter, so every committed
    /// id must be below it — the invariant that makes retired ids
    /// unreusable.
    pub(crate) fn commit(
        &self,
        session: Arc<Session>,
        mut ids: Vec<u64>,
        removed: usize,
        added: usize,
        refit: bool,
    ) -> u64 {
        let mut state = self.state.write().unwrap_or_else(PoisonError::into_inner);
        if let Some(&max) = ids.last() {
            assert!(
                max < state.next_id,
                "stable id {max} was never assigned (next_id {})",
                state.next_id
            );
        }
        for _ in 0..added {
            ids.push(state.next_id);
            state.next_id += 1;
        }
        state.session = session;
        state.ids = ids;
        state.epoch += 1;
        if refit {
            state.removed_since_refit = 0;
        } else {
            state.removed_since_refit += removed;
        }
        state.epoch
    }
}

/// The registry of named sessions (tenant × model → slot).
#[derive(Debug, Default)]
pub struct SessionRegistry {
    slots: Mutex<HashMap<String, Arc<SessionSlot>>>,
}

impl SessionRegistry {
    /// An empty registry.
    pub fn new() -> Self {
        Self::default()
    }

    fn lock(&self) -> MutexGuard<'_, HashMap<String, Arc<SessionSlot>>> {
        self.slots.lock().unwrap_or_else(PoisonError::into_inner)
    }

    /// Registers a fitted session under `name`, assigning stable row ids
    /// `0..n`.
    ///
    /// # Errors
    /// [`ServerError::SessionExists`] if the name is taken.
    pub fn register(&self, name: &str, session: Session) -> Result<Arc<SessionSlot>> {
        let slot = Arc::new(SessionSlot::new(session));
        let mut slots = self.lock();
        if slots.contains_key(name) {
            return Err(ServerError::SessionExists(name.to_string()));
        }
        slots.insert(name.to_string(), slot.clone());
        Ok(slot)
    }

    /// Registers a slot rebuilt from persisted durable state (recovery
    /// path) — unlike [`SessionRegistry::register`], the id map, epoch and
    /// drift counters come from the snapshot, not from scratch.
    ///
    /// # Errors
    /// [`ServerError::SessionExists`] if the name is taken.
    pub(crate) fn register_restored(
        &self,
        name: &str,
        state: DurableState,
    ) -> Result<Arc<SessionSlot>> {
        let slot = Arc::new(SessionSlot::restore(state));
        let mut slots = self.lock();
        if slots.contains_key(name) {
            return Err(ServerError::SessionExists(name.to_string()));
        }
        slots.insert(name.to_string(), slot.clone());
        Ok(slot)
    }

    /// The slot registered under `name`.
    ///
    /// # Errors
    /// [`ServerError::UnknownSession`] if nothing is registered.
    pub fn get(&self, name: &str) -> Result<Arc<SessionSlot>> {
        self.lock()
            .get(name)
            .cloned()
            .ok_or_else(|| ServerError::UnknownSession(name.to_string()))
    }

    /// Removes the session registered under `name`. In-flight snapshots
    /// keep the session alive until they drop.
    ///
    /// # Errors
    /// [`ServerError::UnknownSession`] if nothing is registered.
    pub fn remove(&self, name: &str) -> Result<()> {
        self.lock()
            .remove(name)
            .map(|_| ())
            .ok_or_else(|| ServerError::UnknownSession(name.to_string()))
    }

    /// Registered session names, sorted (deterministic iteration order for
    /// reports and tests).
    pub fn names(&self) -> Vec<String> {
        let mut names: Vec<String> = self.lock().keys().cloned().collect();
        names.sort();
        names
    }

    /// Number of registered sessions.
    pub fn len(&self) -> usize {
        self.lock().len()
    }

    /// Whether no session is registered.
    pub fn is_empty(&self) -> bool {
        self.lock().is_empty()
    }
}

#[cfg(test)]
mod tests {
    use super::*;
    use priu_core::SessionBuilder;
    use priu_core::TrainerConfig;
    use priu_data::catalog::Hyperparameters;
    use priu_data::synthetic::regression::{generate_regression, RegressionConfig};

    fn session(n: usize, seed: u64) -> Session {
        let data = generate_regression(&RegressionConfig {
            num_samples: n,
            num_features: 4,
            seed,
            ..Default::default()
        });
        let hyper = Hyperparameters {
            batch_size: 25,
            num_iterations: 40,
            learning_rate: 0.05,
            regularization: 0.01,
        };
        SessionBuilder::dense(data, TrainerConfig::from_hyper(hyper))
            .seed(1)
            .fit()
            .unwrap()
    }

    #[test]
    fn register_get_remove_round_trip() {
        let registry = SessionRegistry::new();
        assert!(registry.is_empty());
        registry.register("t1/model-a", session(60, 1)).unwrap();
        registry.register("t2/model-b", session(60, 2)).unwrap();
        assert_eq!(registry.len(), 2);
        assert_eq!(registry.names(), vec!["t1/model-a", "t2/model-b"]);
        assert!(matches!(
            registry.register("t1/model-a", session(60, 3)),
            Err(ServerError::SessionExists(_))
        ));
        assert!(registry.get("t1/model-a").is_ok());
        assert!(matches!(
            registry.get("nope"),
            Err(ServerError::UnknownSession(_))
        ));
        registry.remove("t1/model-a").unwrap();
        assert!(matches!(
            registry.remove("t1/model-a"),
            Err(ServerError::UnknownSession(_))
        ));
        assert_eq!(registry.len(), 1);
    }

    #[test]
    fn slots_track_epoch_ids_and_drift_across_commits() {
        let registry = SessionRegistry::new();
        let slot = registry.register("s", session(50, 7)).unwrap();
        let (snap, epoch) = slot.snapshot();
        assert_eq!(epoch, 0);
        assert_eq!(slot.drift(), 0.0);
        let view = slot.apply_view();
        assert_eq!(view.ids, (0..50).collect::<Vec<u64>>());
        assert_eq!(view.initial_samples, 50);

        // Commit a fake batch removing current rows {1, 3}: ids 1 and 3
        // drop out of the id map, drift accumulates.
        let chained = {
            use priu_core::{DeletionEngine, Method};
            snap.apply(Method::Priu, &[1, 3]).unwrap()
        };
        let _gate = slot.begin_apply();
        let ids: Vec<u64> = view
            .ids
            .iter()
            .copied()
            .filter(|&id| id != 1 && id != 3)
            .collect();
        let epoch = slot.commit(Arc::new(chained.session), ids, 2, 0, false);
        assert_eq!(epoch, 1);
        assert_eq!(slot.epoch(), 1);
        assert_eq!(slot.apply_view().ids.len(), 48);
        assert!((slot.drift() - 2.0 / 50.0).abs() < 1e-15);

        // A refit commit resets the drift counter.
        let (snap, _) = slot.snapshot();
        let epoch = slot.commit(snap, (0..48).collect(), 0, 0, true);
        assert_eq!(epoch, 2);
        assert_eq!(slot.drift(), 0.0);
    }

    #[test]
    fn retired_ids_are_never_reallocated() {
        let registry = SessionRegistry::new();
        let slot = registry.register("s", session(10, 3)).unwrap();
        let (snap, _) = slot.snapshot();

        // Retire ids {0, 1} and append 3 rows in the same commit: the
        // fresh ids continue from the monotonic counter, skipping nothing
        // and reusing nothing.
        let survivors: Vec<u64> = (2..10).collect();
        slot.commit(snap.clone(), survivors, 2, 3, false);
        let ids = slot.apply_view().ids;
        assert_eq!(ids, (2..13).collect::<Vec<u64>>());
        assert!(!ids.contains(&0) && !ids.contains(&1));

        // Retire an appended row and append again: still no reuse — the
        // next fresh id is 13 even though 0, 1 and 10 are free.
        let survivors: Vec<u64> = ids.into_iter().filter(|&id| id != 10).collect();
        slot.commit(snap, survivors, 1, 1, false);
        let ids = slot.apply_view().ids;
        assert_eq!(*ids.last().unwrap(), 13);
        assert!(!ids.contains(&10));
        // Every id ever retired stays retired.
        for retired in [0, 1, 10] {
            assert!(!ids.contains(&retired));
        }
    }

    #[test]
    #[should_panic(expected = "never assigned")]
    fn committing_an_unassigned_id_panics() {
        let registry = SessionRegistry::new();
        let slot = registry.register("s", session(10, 4)).unwrap();
        let (snap, _) = slot.snapshot();
        slot.commit(snap, vec![0, 99], 0, 0, false);
    }
}
