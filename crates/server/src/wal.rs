//! The deletion write-ahead log.
//!
//! An append-only file of length-prefixed, CRC-checksummed frames, one per
//! committed union delta. A batch is acknowledged on the wire only after
//! its frame is fsync'd (see `server::apply_batch` — WAL append + fsync →
//! engine apply → registry commit → ack), so an acknowledged deletion can
//! always be redone after a crash.
//!
//! # Frame format
//!
//! ```text
//! [u32 len][u32 crc32][payload: len bytes]
//! payload = u64 lsn
//!           u32 session-name len + bytes (UTF-8)
//!           u8  method index into Method::ALL
//!           u64 removed-id count + that many u64 stable ids
//!           u8  keep_last flag (+ u64 keep_last)
//!           u8  added flag (+ u64 num_features, u64 num_rows,
//!                           num_rows*num_features f64 bit patterns,
//!                           num_rows f64 label bit patterns)
//! ```
//!
//! All integers little-endian; all `f64`s as [`f64::to_bits`] so redo
//! reconstructs the exact added block the live path applied. The CRC
//! (CRC-32/IEEE, hand-rolled table — no dependencies) covers the payload
//! only: a torn length prefix already fails the length check.
//!
//! # Torn-tail semantics
//!
//! The reader returns the longest valid frame prefix plus a typed
//! [`WalTail`] describing why it stopped (truncated frame, bad checksum,
//! undecodable payload). A torn tail is *normal* after a crash — the
//! frame that was mid-write was by definition unacknowledged — so
//! recovery logs the tail and truncates the file back to the valid
//! prefix before appending again. What the reader never does is panic or
//! apply half a frame.
//!
//! # Records store *resolved* deltas
//!
//! A record carries the union removal set as **stable ids after retention
//! expiry** and the method the cost model chose. Both resolutions are
//! timing-dependent (the planner's coalescing window decides what folds
//! into the batch; the EMA cost model decides the method from measured
//! seconds), so redo must not re-derive them. Everything downstream of
//! the record — id translation, `apply_delta`, survivor computation,
//! fresh-id assignment — is deterministic, which is what makes replay
//! bitwise-exact.

use std::fs::{File, OpenOptions};
use std::io::{Seek, SeekFrom, Write};
use std::path::{Path, PathBuf};

use priu_core::snapshot::{SnapshotReader, SnapshotWriter};
use priu_core::Method;

use crate::error::{Result, ServerError};
use crate::failpoint::fail_point;

/// Frames larger than this are rejected as corrupt (a length prefix of
/// garbage bytes would otherwise ask for gigabytes).
pub const MAX_WAL_FRAME_BYTES: u32 = 1 << 30;

/// One committed union delta, as redo needs it.
#[derive(Debug, Clone, PartialEq)]
pub struct WalRecord {
    /// Log sequence number, strictly increasing across the file.
    pub lsn: u64,
    /// The session the batch targeted.
    pub session: String,
    /// The method the cost model chose (recorded because the choice is
    /// timing-dependent and must not be re-derived on redo).
    pub method: Method,
    /// Resolved union removal set as stable ids — deletion requests plus
    /// retention expiry, exactly what the live batch removed.
    pub removed_ids: Vec<u64>,
    /// The retention bound the batch carried, if any (informational: the
    /// expiry it induced is already folded into `removed_ids`).
    pub keep_last: Option<u64>,
    /// Appended rows in FIFO admission order: `(num_features, features,
    /// labels)`. `None` when the batch appended nothing.
    pub added: Option<(usize, Vec<f64>, Vec<f64>)>,
}

/// Why WAL reading stopped before end-of-file. A torn tail after a crash
/// is expected; recovery reports it and truncates.
#[derive(Debug, Clone, PartialEq, Eq)]
pub enum WalTail {
    /// The file ends inside a frame header or payload.
    TruncatedFrame {
        /// Byte offset of the incomplete frame.
        at: u64,
    },
    /// A frame's payload does not match its stored CRC.
    BadChecksum {
        /// Byte offset of the corrupt frame.
        at: u64,
    },
    /// The frame passed its CRC but the payload did not decode — format
    /// corruption rather than torn bytes.
    BadPayload {
        /// Byte offset of the undecodable frame.
        at: u64,
        /// What failed to decode.
        reason: String,
    },
    /// A length prefix exceeding [`MAX_WAL_FRAME_BYTES`].
    OversizedFrame {
        /// Byte offset of the oversized frame.
        at: u64,
        /// The claimed length.
        len: u32,
    },
}

impl std::fmt::Display for WalTail {
    fn fmt(&self, f: &mut std::fmt::Formatter<'_>) -> std::fmt::Result {
        match self {
            WalTail::TruncatedFrame { at } => write!(f, "truncated frame at byte {at}"),
            WalTail::BadChecksum { at } => write!(f, "checksum mismatch at byte {at}"),
            WalTail::BadPayload { at, reason } => {
                write!(f, "undecodable payload at byte {at}: {reason}")
            }
            WalTail::OversizedFrame { at, len } => {
                write!(f, "oversized frame ({len} bytes) at byte {at}")
            }
        }
    }
}

/// Result of scanning a WAL file: the valid record prefix, where it ends,
/// and why scanning stopped (if not clean EOF).
#[derive(Debug)]
pub struct WalScan {
    /// Every record of the valid prefix, in LSN order.
    pub records: Vec<WalRecord>,
    /// Byte offset where the valid prefix ends; appending resumes here.
    pub valid_bytes: u64,
    /// Why the scan stopped early; `None` means the whole file was valid.
    pub tail: Option<WalTail>,
}

// --- CRC-32 (IEEE 802.3, reflected) ---------------------------------------

fn crc32_table() -> &'static [u32; 256] {
    static TABLE: std::sync::OnceLock<[u32; 256]> = std::sync::OnceLock::new();
    TABLE.get_or_init(|| {
        let mut table = [0u32; 256];
        for (i, entry) in table.iter_mut().enumerate() {
            let mut c = i as u32;
            for _ in 0..8 {
                c = if c & 1 != 0 {
                    0xEDB8_8320 ^ (c >> 1)
                } else {
                    c >> 1
                };
            }
            *entry = c;
        }
        table
    })
}

/// CRC-32 (IEEE) of a byte slice.
pub fn crc32(bytes: &[u8]) -> u32 {
    let table = crc32_table();
    let mut c = 0xFFFF_FFFFu32;
    for &b in bytes {
        c = table[((c ^ b as u32) & 0xFF) as usize] ^ (c >> 8);
    }
    c ^ 0xFFFF_FFFF
}

// --- record codec ---------------------------------------------------------

fn method_index(method: Method) -> u8 {
    Method::ALL
        .iter()
        .position(|&m| m == method)
        .expect("every method is in Method::ALL") as u8
}

fn encode_record(record: &WalRecord) -> Vec<u8> {
    let mut w = SnapshotWriter::new();
    w.u64(record.lsn);
    let name = record.session.as_bytes();
    w.u32(name.len() as u32);
    for &b in name {
        w.u8(b);
    }
    w.u8(method_index(record.method));
    w.usize(record.removed_ids.len());
    for &id in &record.removed_ids {
        w.u64(id);
    }
    match record.keep_last {
        None => w.bool(false),
        Some(keep) => {
            w.bool(true);
            w.u64(keep);
        }
    }
    match &record.added {
        None => w.bool(false),
        Some((num_features, features, labels)) => {
            w.bool(true);
            w.usize(*num_features);
            w.usize(labels.len());
            for &x in features {
                w.f64(x);
            }
            for &y in labels {
                w.f64(y);
            }
        }
    }
    w.into_bytes()
}

fn decode_record(payload: &[u8]) -> std::result::Result<WalRecord, String> {
    let fail = |e: priu_core::CoreError| e.to_string();
    let mut r = SnapshotReader::new(payload);
    let lsn = r.u64("lsn").map_err(fail)?;
    let name_len = r.u32("session name length").map_err(fail)? as usize;
    if name_len > r.remaining() {
        return Err("session name longer than payload".to_string());
    }
    let mut name = Vec::with_capacity(name_len);
    for _ in 0..name_len {
        name.push(r.u8("session name").map_err(fail)?);
    }
    let session = String::from_utf8(name).map_err(|_| "session name not UTF-8".to_string())?;
    let method_ix = r.u8("method").map_err(fail)? as usize;
    let method = *Method::ALL
        .get(method_ix)
        .ok_or_else(|| format!("bad method index {method_ix}"))?;
    let n = r.len(8, "removed ids").map_err(fail)?;
    let mut removed_ids = Vec::with_capacity(n);
    for _ in 0..n {
        removed_ids.push(r.u64("removed id").map_err(fail)?);
    }
    let keep_last = if r.bool("keep_last flag").map_err(fail)? {
        Some(r.u64("keep_last").map_err(fail)?)
    } else {
        None
    };
    let added = if r.bool("added flag").map_err(fail)? {
        let num_features = r.usize("num_features").map_err(fail)?;
        let num_rows = r.usize("num_rows").map_err(fail)?;
        let total = num_rows
            .checked_mul(num_features)
            .ok_or_else(|| "added block overflows".to_string())?;
        if total
            .checked_add(num_rows)
            .and_then(|n| n.checked_mul(8))
            .ok_or_else(|| "added block overflows".to_string())?
            > r.remaining()
        {
            return Err("added block larger than payload".to_string());
        }
        let mut features = Vec::with_capacity(total);
        for _ in 0..total {
            features.push(r.f64("added features").map_err(fail)?);
        }
        let mut labels = Vec::with_capacity(num_rows);
        for _ in 0..num_rows {
            labels.push(r.f64("added labels").map_err(fail)?);
        }
        Some((num_features, features, labels))
    } else {
        None
    };
    r.finish().map_err(fail)?;
    Ok(WalRecord {
        lsn,
        session,
        method,
        removed_ids,
        keep_last,
        added,
    })
}

// --- scanning -------------------------------------------------------------

/// Scans a WAL file, returning the longest valid frame prefix. A missing
/// file is an empty log. Never panics on any byte sequence.
///
/// # Errors
/// Only genuine I/O failures ([`ServerError::Durability`]); corruption is
/// reported in [`WalScan::tail`], not as an error.
pub fn scan_wal(path: &Path) -> Result<WalScan> {
    let bytes = match std::fs::read(path) {
        Ok(bytes) => bytes,
        Err(e) if e.kind() == std::io::ErrorKind::NotFound => {
            return Ok(WalScan {
                records: Vec::new(),
                valid_bytes: 0,
                tail: None,
            })
        }
        Err(e) => return Err(ServerError::Durability(format!("reading WAL: {e}"))),
    };
    let mut records = Vec::new();
    let mut at = 0usize;
    let mut tail = None;
    while at < bytes.len() {
        if bytes.len() - at < 8 {
            tail = Some(WalTail::TruncatedFrame { at: at as u64 });
            break;
        }
        let len = u32::from_le_bytes(bytes[at..at + 4].try_into().expect("4 bytes"));
        let crc = u32::from_le_bytes(bytes[at + 4..at + 8].try_into().expect("4 bytes"));
        if len > MAX_WAL_FRAME_BYTES {
            tail = Some(WalTail::OversizedFrame { at: at as u64, len });
            break;
        }
        let body_start = at + 8;
        let Some(body_end) = body_start
            .checked_add(len as usize)
            .filter(|&e| e <= bytes.len())
        else {
            tail = Some(WalTail::TruncatedFrame { at: at as u64 });
            break;
        };
        let payload = &bytes[body_start..body_end];
        if crc32(payload) != crc {
            tail = Some(WalTail::BadChecksum { at: at as u64 });
            break;
        }
        match decode_record(payload) {
            Ok(record) => records.push(record),
            Err(reason) => {
                tail = Some(WalTail::BadPayload {
                    at: at as u64,
                    reason,
                });
                break;
            }
        }
        at = body_end;
    }
    Ok(WalScan {
        records,
        valid_bytes: at as u64,
        tail,
    })
}

// --- appending ------------------------------------------------------------

/// The append half of the log: owns the file handle and the LSN counter.
#[derive(Debug)]
pub struct Wal {
    file: File,
    path: PathBuf,
    next_lsn: u64,
}

impl Wal {
    /// Opens (or creates) the WAL at `path`, scanning the existing
    /// contents: the valid prefix seeds the LSN counter, and any torn
    /// tail is truncated away so new frames never land behind garbage.
    /// Returns the scan so the caller can redo / report it.
    ///
    /// # Errors
    /// [`ServerError::Durability`] on I/O failure.
    pub fn open(path: &Path) -> Result<(Wal, WalScan)> {
        let scan = scan_wal(path)?;
        let io = |what: &str, e: std::io::Error| {
            ServerError::Durability(format!("{what} {}: {e}", path.display()))
        };
        let mut file = OpenOptions::new()
            .create(true)
            .read(true)
            .append(false)
            .truncate(false)
            .write(true)
            .open(path)
            .map_err(|e| io("opening WAL", e))?;
        file.set_len(scan.valid_bytes)
            .map_err(|e| io("truncating WAL tail", e))?;
        file.seek(SeekFrom::Start(scan.valid_bytes))
            .map_err(|e| io("seeking WAL", e))?;
        sync_parent_dir(path)?;
        let next_lsn = scan.records.last().map_or(0, |r| r.lsn + 1);
        Ok((
            Wal {
                file,
                path: path.to_path_buf(),
                next_lsn,
            },
            scan,
        ))
    }

    /// The LSN the next appended record will get.
    pub fn next_lsn(&self) -> u64 {
        self.next_lsn
    }

    /// Appends one record and makes it durable: frame write, fsync, LSN
    /// assignment — with the `wal-after-append` / `wal-before-fsync` /
    /// `wal-after-fsync` crash points between the steps. Returns the
    /// record's LSN.
    ///
    /// # Errors
    /// [`ServerError::Durability`] on I/O failure; the caller must then
    /// fail the batch (nothing was acknowledged).
    pub fn append_sync(&mut self, record: &mut WalRecord) -> Result<u64> {
        let lsn = self.next_lsn;
        record.lsn = lsn;
        let payload = encode_record(record);
        let mut frame = Vec::with_capacity(8 + payload.len());
        frame.extend_from_slice(&(payload.len() as u32).to_le_bytes());
        frame.extend_from_slice(&crc32(&payload).to_le_bytes());
        frame.extend_from_slice(&payload);
        let io = |what: &str, e: std::io::Error| {
            ServerError::Durability(format!("{what} {}: {e}", self.path.display()))
        };
        self.file
            .write_all(&frame)
            .map_err(|e| io("appending WAL frame", e))?;
        fail_point("wal-after-append");
        fail_point("wal-before-fsync");
        self.file.sync_data().map_err(|e| io("syncing WAL", e))?;
        fail_point("wal-after-fsync");
        self.next_lsn = lsn + 1;
        Ok(lsn)
    }
}

/// Fsyncs the directory containing `path`, making a create/rename in it
/// durable (no-op on platforms where directories cannot be opened).
pub fn sync_parent_dir(path: &Path) -> Result<()> {
    let Some(parent) = path.parent().filter(|p| !p.as_os_str().is_empty()) else {
        return Ok(());
    };
    match File::open(parent) {
        Ok(dir) => dir.sync_all().map_err(|e| {
            ServerError::Durability(format!("syncing directory {}: {e}", parent.display()))
        }),
        // Directories aren't openable everywhere; the rename itself is
        // still atomic, we just lose the metadata flush.
        Err(_) => Ok(()),
    }
}

/// Reads a whole file, distinguishing "missing" from other I/O failures.
pub(crate) fn read_file(path: &Path) -> Result<Option<Vec<u8>>> {
    match std::fs::read(path) {
        Ok(bytes) => Ok(Some(bytes)),
        Err(e) if e.kind() == std::io::ErrorKind::NotFound => Ok(None),
        Err(e) => Err(ServerError::Durability(format!(
            "reading {}: {e}",
            path.display()
        ))),
    }
}

#[cfg(test)]
mod tests {
    use super::*;

    fn record(lsn: u64, session: &str) -> WalRecord {
        WalRecord {
            lsn,
            session: session.to_string(),
            method: Method::Priu,
            removed_ids: vec![3, 5, 8],
            keep_last: Some(40),
            added: Some((2, vec![1.5, -2.0, 0.25, 4.0], vec![1.0, -1.0])),
        }
    }

    #[test]
    fn crc32_matches_known_vectors() {
        assert_eq!(crc32(b""), 0);
        assert_eq!(crc32(b"123456789"), 0xCBF4_3926);
        assert_eq!(
            crc32(b"The quick brown fox jumps over the lazy dog"),
            0x414F_A339
        );
    }

    #[test]
    fn append_scan_round_trip() {
        let dir = tempdir("wal-roundtrip");
        let path = dir.join("deltas.wal");
        let (mut wal, scan) = Wal::open(&path).unwrap();
        assert!(scan.records.is_empty());
        assert!(scan.tail.is_none());
        for i in 0..5u64 {
            let mut r = record(999, &format!("s{}", i % 2));
            let lsn = wal.append_sync(&mut r).unwrap();
            assert_eq!(lsn, i); // LSN is assigned by the log, not the caller
        }
        drop(wal);
        let scan = scan_wal(&path).unwrap();
        assert_eq!(scan.records.len(), 5);
        assert!(scan.tail.is_none());
        assert_eq!(scan.records[3].lsn, 3);
        assert_eq!(scan.records[3].session, "s1");
        assert_eq!(scan.records[3].removed_ids, vec![3, 5, 8]);
        assert_eq!(scan.records[3].keep_last, Some(40));
        let (num_features, features, labels) = scan.records[3].added.clone().unwrap();
        assert_eq!(num_features, 2);
        assert_eq!(features, vec![1.5, -2.0, 0.25, 4.0]);
        assert_eq!(labels, vec![1.0, -1.0]);

        // Reopening resumes the LSN sequence after the valid prefix.
        let (wal, scan) = Wal::open(&path).unwrap();
        assert_eq!(scan.records.len(), 5);
        assert_eq!(wal.next_lsn(), 5);
    }

    #[test]
    fn torn_tail_is_reported_and_truncated() {
        let dir = tempdir("wal-torn");
        let path = dir.join("deltas.wal");
        let (mut wal, _) = Wal::open(&path).unwrap();
        for _ in 0..3 {
            wal.append_sync(&mut record(0, "s")).unwrap();
        }
        drop(wal);
        let full = std::fs::read(&path).unwrap();

        // Frame boundaries: a cut exactly there is indistinguishable from
        // a shorter log that ended cleanly.
        let clean = scan_wal(&path).unwrap();
        let mut boundaries = vec![0u64];
        for _ in &clean.records {
            // All frames are the same size here; recompute from the scan.
            boundaries.push(clean.valid_bytes / 3 * boundaries.len() as u64);
        }

        // Every truncation offset yields a clean prefix, never a panic; a
        // mid-frame cut is reported as a torn tail.
        for cut in 0..full.len() {
            std::fs::write(&path, &full[..cut]).unwrap();
            let scan = scan_wal(&path).unwrap();
            assert!(scan.records.len() <= 3);
            assert!(scan.valid_bytes <= cut as u64);
            if boundaries.contains(&(cut as u64)) {
                assert!(scan.tail.is_none(), "boundary cut at {cut} misreported");
            } else {
                assert!(scan.tail.is_some(), "cut at {cut} lost a record silently");
            }
        }

        // A bit flip in the last frame's payload fails its checksum; the
        // prefix survives.
        let mut flipped = full.clone();
        let last = flipped.len() - 3;
        flipped[last] ^= 0x40;
        std::fs::write(&path, &flipped).unwrap();
        let scan = scan_wal(&path).unwrap();
        assert_eq!(scan.records.len(), 2);
        assert!(matches!(scan.tail, Some(WalTail::BadChecksum { .. })));

        // Reopening truncates the corrupt tail and appends cleanly after.
        let (mut wal, _) = Wal::open(&path).unwrap();
        assert_eq!(wal.next_lsn(), 2);
        wal.append_sync(&mut record(0, "s")).unwrap();
        drop(wal);
        let scan = scan_wal(&path).unwrap();
        assert_eq!(scan.records.len(), 3);
        assert!(scan.tail.is_none());
    }

    #[test]
    fn oversized_length_prefix_is_rejected() {
        let dir = tempdir("wal-oversized");
        let path = dir.join("deltas.wal");
        let mut bytes = Vec::new();
        bytes.extend_from_slice(&u32::MAX.to_le_bytes());
        bytes.extend_from_slice(&0u32.to_le_bytes());
        bytes.extend_from_slice(&[0u8; 64]);
        std::fs::write(&path, &bytes).unwrap();
        let scan = scan_wal(&path).unwrap();
        assert!(scan.records.is_empty());
        assert!(matches!(scan.tail, Some(WalTail::OversizedFrame { .. })));
    }

    fn tempdir(tag: &str) -> PathBuf {
        let dir = std::env::temp_dir().join(format!("priu-{tag}-{}", std::process::id(),));
        let _ = std::fs::remove_dir_all(&dir);
        std::fs::create_dir_all(&dir).unwrap();
        dir
    }
}
